// Opaque message payload carried by the simulated network.
//
// The network layer is protocol-agnostic: it only needs a wire size (for
// latency/bandwidth accounting) and a debug name. Protocol modules derive
// their message types from Payload and downcast in their node handlers.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

namespace idem::sim {

class Payload {
 public:
  virtual ~Payload() = default;

  /// Serialized size in bytes (excluding transport headers; the network
  /// adds a fixed per-message header itself).
  virtual std::size_t wire_size() const = 0;

  /// Short human-readable message name for logs and traces.
  virtual std::string kind() const = 0;
};

using PayloadPtr = std::shared_ptr<const Payload>;

}  // namespace idem::sim
