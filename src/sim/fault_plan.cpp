#include "sim/fault_plan.hpp"

#include <algorithm>
#include <stdexcept>

namespace idem::sim {

Fault Fault::crash(Time at, std::int32_t replica) {
  Fault f;
  f.kind = Kind::Crash;
  f.at = at;
  f.replica = replica;
  return f;
}

Fault Fault::recover(Time at, std::int32_t replica) {
  Fault f;
  f.kind = Kind::Recover;
  f.at = at;
  f.replica = replica;
  return f;
}

Fault Fault::partition(Time at, std::vector<std::uint32_t> side_a,
                       std::vector<std::uint32_t> side_b, Duration duration) {
  Fault f;
  f.kind = Kind::Partition;
  f.at = at;
  f.side_a = std::move(side_a);
  f.side_b = std::move(side_b);
  f.duration = duration;
  return f;
}

Fault Fault::partition_one_way(Time at, std::vector<std::uint32_t> from,
                               std::vector<std::uint32_t> to, Duration duration) {
  Fault f;
  f.kind = Kind::PartitionOneWay;
  f.at = at;
  f.side_a = std::move(from);
  f.side_b = std::move(to);
  f.duration = duration;
  return f;
}

Fault Fault::heal(Time at) {
  Fault f;
  f.kind = Kind::Heal;
  f.at = at;
  return f;
}

Fault Fault::delay_spike(Time at, double factor, Duration duration) {
  Fault f;
  f.kind = Kind::DelaySpike;
  f.at = at;
  f.magnitude = factor;
  f.duration = duration;
  return f;
}

Fault Fault::drop_burst(Time at, double drop_probability, Duration duration) {
  Fault f;
  f.kind = Kind::DropBurst;
  f.at = at;
  f.magnitude = drop_probability;
  f.duration = duration;
  return f;
}

const char* fault_kind_name(Fault::Kind kind) {
  switch (kind) {
    case Fault::Kind::Crash: return "crash";
    case Fault::Kind::Recover: return "recover";
    case Fault::Kind::Partition: return "partition";
    case Fault::Kind::PartitionOneWay: return "partition_one_way";
    case Fault::Kind::Heal: return "heal";
    case Fault::Kind::DelaySpike: return "delay_spike";
    case Fault::Kind::DropBurst: return "drop_burst";
  }
  return "?";
}

namespace {

Fault::Kind kind_from_name(const std::string& name) {
  for (Fault::Kind kind :
       {Fault::Kind::Crash, Fault::Kind::Recover, Fault::Kind::Partition,
        Fault::Kind::PartitionOneWay, Fault::Kind::Heal, Fault::Kind::DelaySpike,
        Fault::Kind::DropBurst}) {
    if (name == fault_kind_name(kind)) return kind;
  }
  throw json::ParseError("unknown fault kind: " + name);
}

json::Value endpoints_to_json(const std::vector<std::uint32_t>& side) {
  json::Array array;
  array.reserve(side.size());
  for (std::uint32_t e : side) array.emplace_back(static_cast<std::uint64_t>(e));
  return json::Value(std::move(array));
}

std::vector<std::uint32_t> endpoints_from_json(const json::Value& value) {
  std::vector<std::uint32_t> side;
  for (const json::Value& e : value.as_array()) {
    side.push_back(static_cast<std::uint32_t>(e.as_uint()));
  }
  return side;
}

}  // namespace

json::Value Fault::to_json() const {
  json::Object object;
  object.emplace("kind", fault_kind_name(kind));
  object.emplace("at_ns", static_cast<std::int64_t>(at));
  switch (kind) {
    case Kind::Crash:
    case Kind::Recover:
      object.emplace("replica", static_cast<std::int64_t>(replica));
      break;
    case Kind::Partition:
    case Kind::PartitionOneWay:
      object.emplace("a", endpoints_to_json(side_a));
      object.emplace("b", endpoints_to_json(side_b));
      if (duration > 0) object.emplace("duration_ns", static_cast<std::int64_t>(duration));
      break;
    case Kind::Heal:
      break;
    case Kind::DelaySpike:
    case Kind::DropBurst:
      object.emplace("magnitude", magnitude);
      if (duration > 0) object.emplace("duration_ns", static_cast<std::int64_t>(duration));
      break;
  }
  return json::Value(std::move(object));
}

Fault Fault::from_json(const json::Value& value) {
  Fault f;
  f.kind = kind_from_name(value.at("kind").as_string());
  f.at = value.at("at_ns").as_int();
  f.replica = static_cast<std::int32_t>(value.get_or<std::int64_t>("replica", 0));
  if (value.contains("a")) f.side_a = endpoints_from_json(value.at("a"));
  if (value.contains("b")) f.side_b = endpoints_from_json(value.at("b"));
  f.duration = value.get_or<std::int64_t>("duration_ns", 0);
  f.magnitude = value.get_or<double>("magnitude", 0.0);
  return f;
}

Time FaultPlan::end_time() const {
  Time end = 0;
  for (const Fault& fault : faults) {
    end = std::max(end, fault.at + std::max<Duration>(fault.duration, 0));
  }
  return end;
}

json::Value FaultPlan::to_json() const {
  json::Array array;
  array.reserve(faults.size());
  for (const Fault& fault : faults) array.push_back(fault.to_json());
  return json::Value(std::move(array));
}

FaultPlan FaultPlan::from_json(const json::Value& value) {
  FaultPlan plan;
  for (const json::Value& entry : value.as_array()) {
    plan.faults.push_back(Fault::from_json(entry));
  }
  return plan;
}

}  // namespace idem::sim
