// Pluggable service-queue disciplines for sim::Node.
//
// A node's normal service lane used to be a hard-coded FIFO ring; it is now
// a ServiceDiscipline so deployments can order pending messages by deadline
// instead of arrival. Two implementations:
//   - FifoDiscipline: the original grow-only power-of-two ring buffer,
//     bit-identical to the pre-refactor behavior and the default.
//   - EdfDiscipline:  earliest-deadline-first via a binary heap keyed on
//     (due time, push sequence). Messages without a deadline get
//     due = arrival time, i.e. they are treated as due immediately — so
//     agreement traffic between replicas keeps priority over
//     deadline-carrying client requests, and ties (same due) preserve
//     arrival order through the monotone push counter, keeping the
//     discipline deterministic under simulation.
//
// Both disciplines are allocation-free once warmed up (the FIFO ring and
// the EDF heap vector only ever grow), preserving the kernel's
// steady-state zero-allocation budget (tests/alloc_test.cpp).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/time.hpp"
#include "sim/payload.hpp"
#include "sim/transport.hpp"

namespace idem::sim {

/// Which discipline a deployment wants; resolved by make_discipline().
enum class DisciplineKind : std::uint8_t { Fifo, Edf };

/// Returns the stable CLI/config name ("fifo" / "edf").
const char* to_label(DisciplineKind kind);

/// Orders the messages waiting for a node's CPU. push() receives the due
/// time the node computed at delivery (arrival + deadline, or arrival for
/// deadline-less messages); FIFO ignores it.
class ServiceDiscipline {
 public:
  struct Item {
    NodeId from;
    PayloadPtr message;
  };

  virtual ~ServiceDiscipline() = default;

  virtual void push(NodeId from, PayloadPtr message, Time due) = 0;
  /// Precondition: count() > 0.
  virtual Item pop() = 0;
  virtual std::size_t count() const = 0;
  /// Drops everything (crash semantics: queued work is lost).
  virtual void clear() = 0;

  /// True for the FIFO discipline: the node skips deadline extraction and
  /// keeps the inline-dispatch fast path unconditional on this answer.
  virtual bool fifo() const { return false; }
  virtual const char* name() const = 0;
};

/// The original service queue: a grow-only power-of-two ring buffer; once
/// warmed up, enqueue/dequeue never allocate (std::deque allocates a block
/// roughly every page of churn, which breaks the zero-allocation budget).
class FifoDiscipline final : public ServiceDiscipline {
 public:
  void push(NodeId from, PayloadPtr message, Time due) override;
  Item pop() override;
  std::size_t count() const override { return count_; }
  void clear() override;
  bool fifo() const override { return true; }
  const char* name() const override { return "fifo"; }

 private:
  std::vector<Item> slots_;  // capacity is a power of two
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

/// Earliest-deadline-first: a binary heap on (due, push sequence). The
/// sequence number makes the heap a total order, so equal due times pop in
/// arrival order and simulated trajectories stay deterministic.
class EdfDiscipline final : public ServiceDiscipline {
 public:
  void push(NodeId from, PayloadPtr message, Time due) override;
  Item pop() override;
  std::size_t count() const override { return heap_.size(); }
  void clear() override;
  const char* name() const override { return "edf"; }

 private:
  struct Entry {
    Time due = 0;
    std::uint64_t seq = 0;
    Item item;
    bool operator<(const Entry& other) const {
      // std::push_heap builds a max-heap; invert so the earliest due (then
      // the earliest push) surfaces at the top.
      if (due != other.due) return due > other.due;
      return seq > other.seq;
    }
  };

  std::vector<Entry> heap_;
  std::uint64_t next_seq_ = 0;
};

/// Factory for config/CLI plumbing.
std::unique_ptr<ServiceDiscipline> make_discipline(DisciplineKind kind);

}  // namespace idem::sim
