// Transport abstraction: how nodes address and reach each other.
//
// Two implementations exist: sim::SimNetwork (deterministic simulated
// fair-loss links; all experiments run on it) and rpc::TcpTransport
// (real kernel TCP over an event loop; see src/rpc/). Protocol code is
// written against this interface and runs unchanged on either.
#pragma once

#include <compare>
#include <cstdint>

#include "sim/payload.hpp"

namespace idem::sim {

/// Transport-level address of a node (replicas and clients share one space).
struct NodeId {
  std::uint32_t value = 0;
  auto operator<=>(const NodeId&) const = default;
};

/// Used to classify traffic for accounting (client<->replica vs replica<->replica).
enum class NodeKind : std::uint8_t { Replica, Client };

/// Receiving side of the transport; implemented by sim::Node.
class Endpoint {
 public:
  virtual ~Endpoint() = default;
  virtual void deliver(NodeId from, PayloadPtr message) = 0;
};

/// Message-passing fabric between nodes.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Registers a node. Ids must be unique; the endpoint must stay valid
  /// until remove_node.
  virtual void add_node(NodeId id, NodeKind kind, Endpoint* endpoint) = 0;
  virtual void remove_node(NodeId id) = 0;

  /// Sends `message` from `from` to `to`. Fair-loss semantics: delivery
  /// is not guaranteed (drops, crashes, disconnects); retransmission is
  /// the protocol's job.
  virtual void send(NodeId from, NodeId to, PayloadPtr message) = 0;
};

}  // namespace idem::sim
