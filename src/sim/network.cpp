#include "sim/network.hpp"

#include "common/logging.hpp"

namespace idem::sim {

SimNetwork::SimNetwork(Simulator& sim, NetworkConfig config)
    : sim_(sim),
      config_(config),
      jitter_rng_(sim.rng("net.jitter")),
      drop_rng_(sim.rng("net.drop")) {}

void SimNetwork::add_node(NodeId id, NodeKind kind, Endpoint* endpoint) {
  nodes_[id.value] = NodeEntry{kind, endpoint};
}

void SimNetwork::remove_node(NodeId id) { nodes_.erase(id.value); }

Duration SimNetwork::sample_latency(std::size_t total_bytes) {
  Duration latency = config_.base_latency;
  if (config_.jitter_mean > 0) {
    latency += static_cast<Duration>(
        jitter_rng_.exponential(static_cast<double>(config_.jitter_mean)));
  }
  if (latency_factor_ != 1.0) {
    latency = static_cast<Duration>(static_cast<double>(latency) * latency_factor_);
  }
  latency += static_cast<Duration>(config_.ns_per_byte * static_cast<double>(total_bytes));
  return latency;
}

void SimNetwork::send(NodeId from, NodeId to, PayloadPtr message) {
  auto from_it = nodes_.find(from.value);
  auto to_it = nodes_.find(to.value);
  std::size_t total_bytes = message->wire_size() + config_.header_bytes;

  // Traffic is counted at the sender: a real NIC transmits the bytes
  // whether or not the peer is alive.
  bool crosses_client = (from_it != nodes_.end() && from_it->second.kind == NodeKind::Client) ||
                        (to_it != nodes_.end() && to_it->second.kind == NodeKind::Client);
  if (crosses_client) {
    client_traffic_.add(total_bytes);
  } else {
    replica_traffic_.add(total_bytes);
  }
  if (from_it != nodes_.end()) from_it->second.sent.add(total_bytes);

  if (to_it == nodes_.end() || to_it->second.endpoint == nullptr) {
    ++dropped_;
    return;
  }
  auto blocked_it = blocked_.find(link_key(from, to));
  if (blocked_it != blocked_.end() && blocked_it->second > 0) {
    ++dropped_;
    return;
  }
  if (config_.drop_probability > 0 && drop_rng_.bernoulli(config_.drop_probability)) {
    ++dropped_;
    return;
  }

  Duration latency = sample_latency(total_bytes);
  Endpoint* endpoint = to_it->second.endpoint;
  NodeId dest = to;
  auto delivery = [this, from, dest, endpoint, message = std::move(message)]() {
    // Re-check liveness at delivery time: the destination may have crashed
    // (been removed) while the message was in flight.
    auto it = nodes_.find(dest.value);
    if (it == nodes_.end() || it->second.endpoint != endpoint) return;
    endpoint->deliver(from, message);
  };
  static_assert(EventQueue::Callback::stores_inline<decltype(delivery)>,
                "message delivery must not allocate");
  sim_.schedule_after(latency, std::move(delivery));
}

void SimNetwork::partition(const std::vector<NodeId>& side_a, const std::vector<NodeId>& side_b) {
  for (NodeId a : side_a) {
    for (NodeId b : side_b) {
      block_link(a, b);
      block_link(b, a);
    }
  }
}

void SimNetwork::partition_one_way(const std::vector<NodeId>& from,
                                   const std::vector<NodeId>& to) {
  for (NodeId a : from) {
    for (NodeId b : to) {
      block_link(a, b);
    }
  }
}

void SimNetwork::heal() { blocked_.clear(); }

void SimNetwork::block_link(NodeId from, NodeId to) { blocked_[link_key(from, to)] += 1; }

void SimNetwork::unblock_link(NodeId from, NodeId to) {
  auto it = blocked_.find(link_key(from, to));
  if (it == blocked_.end()) return;
  if (--it->second <= 0) blocked_.erase(it);
}

void SimNetwork::reset_traffic() {
  client_traffic_ = TrafficStats{};
  replica_traffic_ = TrafficStats{};
  for (auto& [id, entry] : nodes_) entry.sent = TrafficStats{};
  dropped_ = 0;
}

}  // namespace idem::sim
