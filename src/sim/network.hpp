// Simulated fair-loss point-to-point network (paper Section 2.1).
//
// Models a data-center network: per-message latency = propagation base +
// exponentially distributed jitter + a size-dependent transmission term.
// Messages can be dropped with a configurable probability and links can be
// partitioned (both model the "fair-loss" part; retransmission is the
// protocols' job). Per-category byte counters feed the Table 1 experiment.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/time.hpp"
#include "sim/payload.hpp"
#include "sim/simulator.hpp"
#include "sim/transport.hpp"

namespace idem::sim {

struct NetworkConfig {
  /// Fixed one-way propagation delay. 150 us one-way matches the paper's
  /// observed minimum end-to-end latencies (~0.9 ms across the protocol's
  /// two round trips) and makes small reject thresholds concurrency-bound,
  /// as in Figure 8.
  Duration base_latency = 150 * kMicrosecond;
  /// Mean of the exponential jitter added to every message.
  Duration jitter_mean = 10 * kMicrosecond;
  /// Transmission time per byte (1 ns/B ~ 8 Gbit/s effective link speed).
  double ns_per_byte = 1.0;
  /// Per-message transport/framing overhead in bytes (Ethernet+IP+TCP-ish).
  std::size_t header_bytes = 66;
  /// Probability that any given message is silently dropped.
  double drop_probability = 0.0;
};

struct TrafficStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;  ///< payload + per-message header

  void add(std::size_t message_bytes) {
    messages += 1;
    bytes += message_bytes;
  }
};

class SimNetwork final : public Transport {
 public:
  SimNetwork(Simulator& sim, NetworkConfig config);

  /// Registers a node. Ids must be unique; the endpoint must outlive the
  /// network or be detached with remove_node.
  void add_node(NodeId id, NodeKind kind, Endpoint* endpoint) override;
  void remove_node(NodeId id) override;

  /// Sends `message` from `from` to `to`. Messages to unknown or removed
  /// nodes are counted as sent and silently dropped (a crashed node's
  /// peers cannot tell the difference — exactly as in a real network).
  void send(NodeId from, NodeId to, PayloadPtr message) override;

  /// Cuts both directions between every pair in (side_a x side_b).
  void partition(const std::vector<NodeId>& side_a, const std::vector<NodeId>& side_b);

  /// Cuts only the from -> to direction of every pair in (from x to): an
  /// asymmetric link failure. A node on `from` can still *receive* from
  /// `to` — the classic "can send but not receive" (or vice versa) fault
  /// that symmetric partitions cannot express.
  void partition_one_way(const std::vector<NodeId>& from, const std::vector<NodeId>& to);

  /// Removes all partitions.
  void heal();

  /// Cuts / restores a single directed link. Blocks are counted, so
  /// overlapping partitions compose: a link stays cut until every block
  /// placed on it is removed (or heal() wipes them all). Unblocking a
  /// link with no active block is a no-op.
  void block_link(NodeId from, NodeId to);
  void unblock_link(NodeId from, NodeId to);

  const NetworkConfig& config() const { return config_; }
  void set_drop_probability(double p) { config_.drop_probability = p; }

  /// Global latency multiplier applied to propagation + jitter (not the
  /// per-byte transmission term); models congestion-style delay spikes.
  double latency_factor() const { return latency_factor_; }
  void set_latency_factor(double factor) { latency_factor_ = factor < 0 ? 0 : factor; }

  /// Traffic between a client and a replica (either direction).
  const TrafficStats& client_traffic() const { return client_traffic_; }
  /// Traffic between two replicas.
  const TrafficStats& replica_traffic() const { return replica_traffic_; }
  TrafficStats total_traffic() const {
    return TrafficStats{client_traffic_.messages + replica_traffic_.messages,
                        client_traffic_.bytes + replica_traffic_.bytes};
  }
  /// Traffic transmitted by one node (per-link egress aggregated at the
  /// sender), or nullptr for unknown nodes. Feeds per-node gauges.
  const TrafficStats* node_traffic(NodeId id) const {
    auto it = nodes_.find(id.value);
    return it == nodes_.end() ? nullptr : &it->second.sent;
  }
  void reset_traffic();

  std::uint64_t dropped_messages() const { return dropped_; }

 private:
  struct NodeEntry {
    NodeKind kind = NodeKind::Replica;
    Endpoint* endpoint = nullptr;
    TrafficStats sent;  ///< egress of this node (counted at the sender)
  };

  static std::uint64_t link_key(NodeId from, NodeId to) {
    return (static_cast<std::uint64_t>(from.value) << 32) | to.value;
  }

  Duration sample_latency(std::size_t total_bytes);

  Simulator& sim_;
  NetworkConfig config_;
  Rng& jitter_rng_;
  Rng& drop_rng_;
  double latency_factor_ = 1.0;
  std::unordered_map<std::uint32_t, NodeEntry> nodes_;
  std::unordered_map<std::uint64_t, int> blocked_;  // directed link -> block count
  TrafficStats client_traffic_;
  TrafficStats replica_traffic_;
  std::uint64_t dropped_ = 0;
};

}  // namespace idem::sim
