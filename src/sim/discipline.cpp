#include "sim/discipline.hpp"

#include <algorithm>
#include <memory>
#include <utility>

namespace idem::sim {

const char* to_label(DisciplineKind kind) {
  return kind == DisciplineKind::Edf ? "edf" : "fifo";
}

void FifoDiscipline::push(NodeId from, PayloadPtr message, Time /*due*/) {
  if (count_ == slots_.size()) {
    // Full (or never allocated): grow to the next power of two, unrolling
    // the ring so the live elements are contiguous again from index 0.
    std::vector<Item> bigger;
    std::size_t cap = slots_.empty() ? 8 : slots_.size() * 2;
    bigger.reserve(cap);
    for (std::size_t i = 0; i < count_; ++i) {
      bigger.push_back(std::move(slots_[(head_ + i) & (slots_.size() - 1)]));
    }
    bigger.resize(cap);
    slots_ = std::move(bigger);
    head_ = 0;
  }
  slots_[(head_ + count_) & (slots_.size() - 1)] = Item{from, std::move(message)};
  ++count_;
}

ServiceDiscipline::Item FifoDiscipline::pop() {
  Item out = std::move(slots_[head_]);
  slots_[head_] = Item{};  // drop the payload ref now, not at reuse
  head_ = (head_ + 1) & (slots_.size() - 1);
  --count_;
  return out;
}

void FifoDiscipline::clear() {
  for (std::size_t i = 0; i < count_; ++i) {
    slots_[(head_ + i) & (slots_.size() - 1)] = Item{};
  }
  head_ = 0;
  count_ = 0;
}

void EdfDiscipline::push(NodeId from, PayloadPtr message, Time due) {
  heap_.push_back(Entry{due, next_seq_++, Item{from, std::move(message)}});
  std::push_heap(heap_.begin(), heap_.end());
}

ServiceDiscipline::Item EdfDiscipline::pop() {
  std::pop_heap(heap_.begin(), heap_.end());
  Item out = std::move(heap_.back().item);
  heap_.pop_back();
  return out;
}

void EdfDiscipline::clear() { heap_.clear(); }

std::unique_ptr<ServiceDiscipline> make_discipline(DisciplineKind kind) {
  if (kind == DisciplineKind::Edf) return std::make_unique<EdfDiscipline>();
  return std::make_unique<FifoDiscipline>();
}

}  // namespace idem::sim
