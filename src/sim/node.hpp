// Actor base class for simulated processes (replicas and clients).
//
// A node owns a FIFO service queue driven by a simple CPU model: every
// incoming message occupies the node's (single) CPU for a per-message cost
// the subclass declares, and handlers can charge additional work (request
// execution, checkpoint creation). This queueing is what turns offered
// load beyond capacity into the latency explosion the paper measures —
// see DESIGN.md Section 1.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/inline_function.hpp"
#include "common/time.hpp"
#include "sim/discipline.hpp"
#include "sim/runtime.hpp"
#include "sim/transport.hpp"

namespace idem::sim {

/// Handle for a pending timer; cancel with Node::cancel_timer.
struct TimerId {
  EventId event;
  bool valid() const { return event.valid(); }
};

/// Timer callback storage. 64 inline bytes fit every protocol timer in the
/// tree (request timeouts capture an id plus a couple of pointers); the
/// node's liveness wrapper around it then fills EventQueue::Callback's 96
/// bytes exactly, so arming a timer never allocates.
using TimerCallback = InlineFunction<void(), 64>;

class Node : public Endpoint {
 public:
  /// Registers the node with the network. The node must outlive the
  /// simulation run (events capture a liveness token, so destruction is
  /// safe, but a destroyed node simply vanishes from the network).
  Node(Runtime& runtime, Transport& net, NodeId id, NodeKind kind);
  ~Node() override;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeId id() const { return id_; }
  bool crashed() const { return crashed_; }

  /// Simulates a process crash: all queued and in-flight work is lost and
  /// no further messages or timers are processed.
  void crash();

  /// Restarts a crashed node. Durable protocol state (log, promises,
  /// store) is preserved — this models a crash-recovery process whose
  /// persistent state survived — but everything queued or in flight at
  /// crash time is gone and timers that fired while down were lost, so
  /// subclasses re-arm their periodic timers in on_restart(). No-op on a
  /// live node.
  void restart();

  /// Endpoint: called by the network when a message arrives.
  void deliver(NodeId from, PayloadPtr message) final;

  /// Length of the service queue (messages waiting for CPU), exposed for
  /// tests and load metrics. Counts both lanes.
  std::size_t queue_length() const { return queue_->count() + urgent_.count(); }

  /// Messages waiting in the urgent lane only.
  std::size_t urgent_queue_length() const { return urgent_.count(); }

  /// Replaces the normal lane's service discipline (FIFO by default; the
  /// pre-refactor ring, bit-identical). Call before traffic arrives — a
  /// swap does not migrate already-queued messages. EDF nodes consult
  /// message_deadline() at delivery and serve the earliest due first;
  /// deadline-less messages count as due immediately, so agreement traffic
  /// keeps priority and FIFO order among itself.
  void set_discipline(std::unique_ptr<ServiceDiscipline> discipline);

  /// Discipline currently installed (display / tests).
  const ServiceDiscipline& discipline() const { return *queue_; }

  /// Sender-based service-queue prioritization: messages whose sender the
  /// classifier marks urgent are dispatched before anything in the normal
  /// lane. Off (nullptr) by default — the single-lane FIFO is part of the
  /// pinned simulation trajectory; real deployments switch it on so
  /// agreement traffic between replicas keeps a guaranteed share of loop
  /// time while a flood of client requests is being rejected (the paper's
  /// goodput-under-overload promise). Plain function pointer: classifying
  /// happens on every delivery, and the classifiers are stateless.
  using UrgentClassifier = bool (*)(NodeId from);
  void set_urgent_classifier(UrgentClassifier classifier) { urgent_classifier_ = classifier; }

  /// Dispatch a delivery inline when the node is idle (nothing queued, not
  /// mid-message, no outstanding CPU charge) and the message itself is
  /// free. Skips the schedule-at-now hop through the runtime's event queue
  /// — per-message timer-heap traffic that exists only to model service
  /// time, which real mode does not model. Off by default: inline dispatch
  /// reorders events relative to the pinned simulation trajectories.
  void set_inline_dispatch(bool on) { inline_dispatch_ = on; }

 protected:
  /// Handles one message. Invoked when the message's service time has
  /// elapsed, i.e. sends made here already account for processing delay.
  virtual void on_message(NodeId from, const Payload& message) = 0;

  /// Invoked by restart() after the node is live again; subclasses re-arm
  /// periodic timers here (timers pending across the crash window fired as
  /// no-ops). Default: nothing.
  virtual void on_restart() {}

  /// CPU cost of receiving/handling `message`. Subclasses model their
  /// protocol's per-message work here. Default: free.
  virtual Duration message_cost(const Payload& message) const;

  /// Latency budget the sender attached to `message` (0 = none). Consulted
  /// only by non-FIFO disciplines, at delivery: the message's due time in
  /// the service queue is arrival + deadline. Default: no deadline.
  virtual Duration message_deadline(const Payload& message) const;

  /// CPU cost of transmitting `message` (serialization + syscall). Charged
  /// on every send; this is what makes naive leader fan-out of full
  /// requests a bottleneck (cf. S-Paxos and paper Section 4.2).
  virtual Duration send_cost(const Payload& message) const;

  void send(NodeId to, PayloadPtr message) {
    charge(send_cost(*message));
    net_.send(id_, to, std::move(message));
  }

  /// Charges extra CPU time to this node (e.g. executing a request while
  /// handling a commit); it delays all subsequently queued messages.
  void charge(Duration extra);

  /// Schedules `fn` after `delay`. Timer callbacks fire even while the CPU
  /// is busy (they model interrupt-driven timeouts) but never after a crash.
  TimerId set_timer(Duration delay, TimerCallback fn);

  /// Cancels a pending timer; invalidates the id. No-op when already fired.
  void cancel_timer(TimerId& id);

  Runtime& sim() { return runtime_; }
  const Runtime& sim() const { return runtime_; }
  Transport& network() { return net_; }
  Time now() const { return runtime_.now(); }

 private:
  void maybe_start_processing();

  Runtime& runtime_;
  Transport& net_;
  NodeId id_;
  bool crashed_ = false;
  /// Normal lane (everything, when no classifier is set). Pluggable; the
  /// default FifoDiscipline is the pre-refactor ring buffer.
  std::unique_ptr<ServiceDiscipline> queue_;
  /// Cached queue_->fifo(): the hot path must not pay a virtual call just
  /// to learn that deadlines are irrelevant.
  bool fifo_discipline_ = true;
  FifoDiscipline urgent_;  ///< dispatched first; fed only by the classifier
  UrgentClassifier urgent_classifier_ = nullptr;
  bool inline_dispatch_ = false;
  bool processing_ = false;
  Time busy_until_ = 0;
  // Liveness token: scheduled lambdas hold a weak_ptr and become no-ops
  // once the node is destroyed.
  std::shared_ptr<Node*> alive_;
};

}  // namespace idem::sim
