// Declarative fault schedules (chaos plans).
//
// A FaultPlan is a sim-time-stamped list of faults — crashes, recoveries,
// symmetric and one-way partitions, heals, link-delay spikes and drop-rate
// bursts — that harness::Cluster::apply() arms onto the simulator. Plans
// replace the ad-hoc crash wiring previously duplicated across the crash
// benches and the partition/property tests, and they serialize to JSON so
// any failing schedule can be checked in as a deterministic replay artifact
// (see tests/corpus/ and tools/chaos_run).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.hpp"
#include "common/time.hpp"

namespace idem::sim {

/// Partition endpoints name replicas by index and clients by index offset
/// with kFaultClientBase, so plans stay portable across cluster sizes and
/// transport address conventions.
constexpr std::uint32_t kFaultClientBase = 100000;

constexpr std::uint32_t fault_endpoint_replica(std::uint32_t index) { return index; }
constexpr std::uint32_t fault_endpoint_client(std::uint32_t index) {
  return kFaultClientBase + index;
}
constexpr bool fault_endpoint_is_client(std::uint32_t endpoint) {
  return endpoint >= kFaultClientBase;
}
constexpr std::uint32_t fault_endpoint_index(std::uint32_t endpoint) {
  return fault_endpoint_is_client(endpoint) ? endpoint - kFaultClientBase : endpoint;
}

struct Fault {
  enum class Kind : std::uint8_t {
    Crash,             ///< process crash of one replica (loses queued work)
    Recover,           ///< restart a crashed replica (durable state intact)
    Partition,         ///< cut both directions between side_a and side_b
    PartitionOneWay,   ///< cut only side_a -> side_b (asymmetric failure)
    Heal,              ///< remove every active link block
    DelaySpike,        ///< multiply link latency by `magnitude`
    DropBurst,         ///< add `magnitude` to the message drop probability
  };

  /// Crash/Recover targets resolved when the fault fires, not when the plan
  /// is armed — "the leader" may have moved by then.
  static constexpr std::int32_t kLeader = -1;       ///< current leader
  static constexpr std::int32_t kFollower = -2;     ///< (leader + 1) mod n
  static constexpr std::int32_t kLastCrashed = -3;  ///< most recent Crash victim

  Kind kind = Kind::Crash;
  Time at = 0;               ///< absolute sim time (plus any apply() offset)
  std::int32_t replica = 0;  ///< Crash/Recover target (index or sentinel)
  std::vector<std::uint32_t> side_a, side_b;  ///< partition endpoints
  /// Partition*/DelaySpike/DropBurst: auto-revert after this window
  /// (0 = sticky until an explicit Heal).
  Duration duration = 0;
  double magnitude = 0;  ///< DelaySpike factor / DropBurst drop probability

  // Readable constructors for plan literals in tests and benches.
  static Fault crash(Time at, std::int32_t replica);
  static Fault recover(Time at, std::int32_t replica = kLastCrashed);
  static Fault partition(Time at, std::vector<std::uint32_t> side_a,
                         std::vector<std::uint32_t> side_b, Duration duration = 0);
  static Fault partition_one_way(Time at, std::vector<std::uint32_t> from,
                                 std::vector<std::uint32_t> to, Duration duration = 0);
  static Fault heal(Time at);
  static Fault delay_spike(Time at, double factor, Duration duration);
  static Fault drop_burst(Time at, double drop_probability, Duration duration);

  json::Value to_json() const;
  static Fault from_json(const json::Value& value);

  bool operator==(const Fault&) const = default;
};

const char* fault_kind_name(Fault::Kind kind);

struct FaultPlan {
  std::vector<Fault> faults;

  FaultPlan() = default;
  FaultPlan(std::initializer_list<Fault> list) : faults(list) {}

  FaultPlan& add(Fault fault) {
    faults.push_back(std::move(fault));
    return *this;
  }
  bool empty() const { return faults.empty(); }
  std::size_t size() const { return faults.size(); }

  /// Latest time at which the plan still changes the system (including
  /// auto-revert windows) — runs should quiesce after this.
  Time end_time() const;

  json::Value to_json() const;
  std::string to_json_string() const { return to_json().dump(); }
  static FaultPlan from_json(const json::Value& value);
  static FaultPlan parse(std::string_view text) {
    return from_json(json::Value::parse(text));
  }

  bool operator==(const FaultPlan&) const = default;
};

}  // namespace idem::sim
