#include "sim/node.hpp"

#include <cassert>
#include <utility>

namespace idem::sim {

Node::Node(Runtime& runtime, Transport& net, NodeId id, NodeKind kind)
    : runtime_(runtime),
      net_(net),
      id_(id),
      queue_(std::make_unique<FifoDiscipline>()),
      alive_(std::make_shared<Node*>(this)) {
  net_.add_node(id_, kind, this);
}

Node::~Node() {
  *alive_ = nullptr;
  net_.remove_node(id_);
}

void Node::set_discipline(std::unique_ptr<ServiceDiscipline> discipline) {
  assert(discipline != nullptr);
  assert(queue_->count() == 0 && "swap the discipline before traffic arrives");
  queue_ = std::move(discipline);
  fifo_discipline_ = queue_->fifo();
}

void Node::crash() {
  if (crashed_) return;
  crashed_ = true;
  queue_->clear();
  urgent_.clear();
  processing_ = false;
  // Stay registered with the network so traffic addressed to the crashed
  // node is still *sent* (and counted) by peers; deliveries are dropped in
  // deliver().
}

void Node::restart() {
  if (!crashed_) return;
  crashed_ = false;
  processing_ = false;
  busy_until_ = runtime_.now();
  on_restart();
}

void Node::deliver(NodeId from, PayloadPtr message) {
  if (crashed_) return;
  // Deadline-carrying messages under a non-FIFO discipline never take the
  // inline fast path: on a real event loop a recv burst would otherwise be
  // handled strictly in arrival order. Routed through the discipline they
  // accumulate across the iteration's I/O batch and drain earliest-due
  // first in the deferred (timer) phase, at zero added wall-clock — the
  // schedule-at-now hop fires before the loop goes back to sleep.
  Duration deadline = fifo_discipline_ ? 0 : message_deadline(*message);
  if (inline_dispatch_ && deadline <= 0 && !processing_ && queue_->count() == 0 &&
      urgent_.count() == 0 && busy_until_ <= runtime_.now() && message_cost(*message) <= 0) {
    // Idle node, free message: handle it right here instead of taking a
    // round trip through the runtime's event queue. processing_ guards
    // against recursion when on_message triggers a same-thread delivery.
    processing_ = true;
    on_message(from, *message);
    if (crashed_) return;  // on_message may have crashed this node
    processing_ = false;
    maybe_start_processing();  // drain anything that queued up meanwhile
    return;
  }
  if (urgent_classifier_ != nullptr && urgent_classifier_(from)) {
    urgent_.push(from, std::move(message), 0);
  } else {
    Time due = runtime_.now() + (deadline > 0 ? deadline : 0);
    queue_->push(from, std::move(message), due);
  }
  maybe_start_processing();
}

Duration Node::message_cost(const Payload&) const { return 0; }

Duration Node::message_deadline(const Payload&) const { return 0; }

Duration Node::send_cost(const Payload&) const { return 0; }

void Node::charge(Duration extra) {
  if (extra <= 0) return;
  Time base = std::max(busy_until_, now());
  busy_until_ = base + extra;
}

void Node::maybe_start_processing() {
  if (processing_ || (queue_->count() == 0 && urgent_.count() == 0) || crashed_) return;
  processing_ = true;

  ServiceDiscipline::Item next = urgent_.count() > 0 ? urgent_.pop() : queue_->pop();

  Time start = std::max(now(), busy_until_);
  Duration cost = message_cost(*next.message);
  Time finish = start + (cost > 0 ? cost : 0);
  busy_until_ = finish;

  std::weak_ptr<Node*> weak = alive_;
  auto process = [weak, next = std::move(next)]() {
    auto token = weak.lock();
    if (!token || *token == nullptr) return;
    Node* self = *token;
    if (self->crashed_) return;
    self->processing_ = false;
    self->on_message(next.from, *next.message);
    self->maybe_start_processing();
  };
  static_assert(EventQueue::Callback::stores_inline<decltype(process)>,
                "per-message dispatch must not allocate");
  runtime_.schedule_at(finish, std::move(process));
}

TimerId Node::set_timer(Duration delay, TimerCallback fn) {
  std::weak_ptr<Node*> weak = alive_;
  auto fire = [weak, fn = std::move(fn)]() mutable {
    auto token = weak.lock();
    if (!token || *token == nullptr) return;
    if ((*token)->crashed_) return;
    fn();
  };
  static_assert(EventQueue::Callback::stores_inline<decltype(fire)>,
                "timer arming must not allocate");
  EventId event = runtime_.schedule_after(delay, std::move(fire));
  return TimerId{event};
}

void Node::cancel_timer(TimerId& id) {
  if (id.valid()) {
    runtime_.cancel(id.event);
    id = TimerId{};
  }
}

}  // namespace idem::sim
