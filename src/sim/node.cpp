#include "sim/node.hpp"

#include <utility>

namespace idem::sim {

Node::Node(Runtime& runtime, Transport& net, NodeId id, NodeKind kind)
    : runtime_(runtime), net_(net), id_(id), alive_(std::make_shared<Node*>(this)) {
  net_.add_node(id_, kind, this);
}

Node::~Node() {
  *alive_ = nullptr;
  net_.remove_node(id_);
}

void Node::crash() {
  if (crashed_) return;
  crashed_ = true;
  queue_.clear();
  processing_ = false;
  // Stay registered with the network so traffic addressed to the crashed
  // node is still *sent* (and counted) by peers; deliveries are dropped in
  // deliver().
}

void Node::deliver(NodeId from, PayloadPtr message) {
  if (crashed_) return;
  queue_.push_back(Pending{from, std::move(message)});
  maybe_start_processing();
}

Duration Node::message_cost(const Payload&) const { return 0; }

Duration Node::send_cost(const Payload&) const { return 0; }

void Node::charge(Duration extra) {
  if (extra <= 0) return;
  Time base = std::max(busy_until_, now());
  busy_until_ = base + extra;
}

void Node::maybe_start_processing() {
  if (processing_ || queue_.empty() || crashed_) return;
  processing_ = true;

  Pending next = std::move(queue_.front());
  queue_.pop_front();

  Time start = std::max(now(), busy_until_);
  Duration cost = message_cost(*next.message);
  Time finish = start + (cost > 0 ? cost : 0);
  busy_until_ = finish;

  std::weak_ptr<Node*> weak = alive_;
  runtime_.schedule_at(finish, [weak, next = std::move(next)]() {
    auto token = weak.lock();
    if (!token || *token == nullptr) return;
    Node* self = *token;
    if (self->crashed_) return;
    self->processing_ = false;
    self->on_message(next.from, *next.message);
    self->maybe_start_processing();
  });
}

TimerId Node::set_timer(Duration delay, std::function<void()> fn) {
  std::weak_ptr<Node*> weak = alive_;
  EventId event = runtime_.schedule_after(delay, [weak, fn = std::move(fn)]() {
    auto token = weak.lock();
    if (!token || *token == nullptr) return;
    if ((*token)->crashed_) return;
    fn();
  });
  return TimerId{event};
}

void Node::cancel_timer(TimerId& id) {
  if (id.valid()) {
    runtime_.cancel(id.event);
    id = TimerId{};
  }
}

}  // namespace idem::sim
