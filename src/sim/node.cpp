#include "sim/node.hpp"

#include <utility>

namespace idem::sim {

Node::Node(Runtime& runtime, Transport& net, NodeId id, NodeKind kind)
    : runtime_(runtime), net_(net), id_(id), alive_(std::make_shared<Node*>(this)) {
  net_.add_node(id_, kind, this);
}

Node::~Node() {
  *alive_ = nullptr;
  net_.remove_node(id_);
}

void Node::crash() {
  if (crashed_) return;
  crashed_ = true;
  queue_.clear();
  urgent_.clear();
  processing_ = false;
  // Stay registered with the network so traffic addressed to the crashed
  // node is still *sent* (and counted) by peers; deliveries are dropped in
  // deliver().
}

void Node::restart() {
  if (!crashed_) return;
  crashed_ = false;
  processing_ = false;
  busy_until_ = runtime_.now();
  on_restart();
}

void Node::deliver(NodeId from, PayloadPtr message) {
  if (crashed_) return;
  if (inline_dispatch_ && !processing_ && queue_.count == 0 && urgent_.count == 0 &&
      busy_until_ <= runtime_.now() && message_cost(*message) <= 0) {
    // Idle node, free message: handle it right here instead of taking a
    // round trip through the runtime's event queue. processing_ guards
    // against recursion when on_message triggers a same-thread delivery.
    processing_ = true;
    on_message(from, *message);
    if (crashed_) return;  // on_message may have crashed this node
    processing_ = false;
    maybe_start_processing();  // drain anything that queued up meanwhile
    return;
  }
  Ring& lane =
      (urgent_classifier_ != nullptr && urgent_classifier_(from)) ? urgent_ : queue_;
  lane.push(Pending{from, std::move(message)});
  maybe_start_processing();
}

void Node::Ring::push(Pending p) {
  if (count == slots.size()) {
    // Full (or never allocated): grow to the next power of two, unrolling
    // the ring so the live elements are contiguous again from index 0.
    std::vector<Pending> bigger;
    std::size_t cap = slots.empty() ? 8 : slots.size() * 2;
    bigger.reserve(cap);
    for (std::size_t i = 0; i < count; ++i) {
      bigger.push_back(std::move(slots[(head + i) & (slots.size() - 1)]));
    }
    bigger.resize(cap);
    slots = std::move(bigger);
    head = 0;
  }
  slots[(head + count) & (slots.size() - 1)] = std::move(p);
  ++count;
}

Node::Pending Node::Ring::pop() {
  Pending out = std::move(slots[head]);
  slots[head] = Pending{};  // drop the payload ref now, not at reuse
  head = (head + 1) & (slots.size() - 1);
  --count;
  return out;
}

void Node::Ring::clear() {
  for (std::size_t i = 0; i < count; ++i) {
    slots[(head + i) & (slots.size() - 1)] = Pending{};
  }
  head = 0;
  count = 0;
}

Duration Node::message_cost(const Payload&) const { return 0; }

Duration Node::send_cost(const Payload&) const { return 0; }

void Node::charge(Duration extra) {
  if (extra <= 0) return;
  Time base = std::max(busy_until_, now());
  busy_until_ = base + extra;
}

void Node::maybe_start_processing() {
  if (processing_ || (queue_.count == 0 && urgent_.count == 0) || crashed_) return;
  processing_ = true;

  Pending next = urgent_.count > 0 ? urgent_.pop() : queue_.pop();

  Time start = std::max(now(), busy_until_);
  Duration cost = message_cost(*next.message);
  Time finish = start + (cost > 0 ? cost : 0);
  busy_until_ = finish;

  std::weak_ptr<Node*> weak = alive_;
  auto process = [weak, next = std::move(next)]() {
    auto token = weak.lock();
    if (!token || *token == nullptr) return;
    Node* self = *token;
    if (self->crashed_) return;
    self->processing_ = false;
    self->on_message(next.from, *next.message);
    self->maybe_start_processing();
  };
  static_assert(EventQueue::Callback::stores_inline<decltype(process)>,
                "per-message dispatch must not allocate");
  runtime_.schedule_at(finish, std::move(process));
}

TimerId Node::set_timer(Duration delay, TimerCallback fn) {
  std::weak_ptr<Node*> weak = alive_;
  auto fire = [weak, fn = std::move(fn)]() mutable {
    auto token = weak.lock();
    if (!token || *token == nullptr) return;
    if ((*token)->crashed_) return;
    fn();
  };
  static_assert(EventQueue::Callback::stores_inline<decltype(fire)>,
                "timer arming must not allocate");
  EventId event = runtime_.schedule_after(delay, std::move(fire));
  return TimerId{event};
}

void Node::cancel_timer(TimerId& id) {
  if (id.valid()) {
    runtime_.cancel(id.event);
    id = TimerId{};
  }
}

}  // namespace idem::sim
