// The simulation kernel: virtual clock + event loop + named RNG streams.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>
#include <unordered_map>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "sim/event_queue.hpp"
#include "sim/runtime.hpp"

namespace idem::sim {

class Simulator final : public Runtime {
 public:
  explicit Simulator(std::uint64_t seed = 1) : seed_(seed) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time now() const override { return now_; }
  std::uint64_t seed() const override { return seed_; }

  /// Schedules `fn` to run at `now() + delay` (delay clamped to >= 0).
  EventId schedule_after(Duration delay, EventQueue::Callback fn) override {
    if (delay < 0) delay = 0;
    return queue_.push(now_ + delay, std::move(fn));
  }

  /// Schedules `fn` at an absolute time (clamped to >= now()).
  EventId schedule_at(Time at, EventQueue::Callback fn) override {
    if (at < now_) at = now_;
    return queue_.push(at, std::move(fn));
  }

  bool cancel(EventId id) override { return queue_.cancel(id); }

  /// Runs events until the queue empties or the clock would pass `until`.
  /// The clock is left at min(until, time of last event) — i.e. exactly
  /// `until` when events remain.
  void run_until(Time until) {
    while (!queue_.empty() && queue_.next_time() <= until) {
      step();
    }
    if (now_ < until) now_ = until;
  }

  /// Runs events for `span` of simulated time from now().
  void run_for(Duration span) { run_until(now_ + span); }

  /// Runs until the queue is empty or `stop` returns true (checked before
  /// each event). Returns the number of events executed.
  std::uint64_t run_while(const std::function<bool()>& keep_going) {
    std::uint64_t executed = 0;
    while (!queue_.empty() && keep_going()) {
      step();
      ++executed;
    }
    return executed;
  }

  /// Executes a single event. Requires a non-empty queue.
  void step() {
    auto ev = queue_.pop();
    now_ = ev.at;
    ++executed_;
    ev.fn();
  }

  bool idle() const { return queue_.empty(); }
  std::size_t pending_events() const { return queue_.size(); }

  /// Total events dispatched since construction (for benchmarks).
  std::uint64_t events_executed() const { return executed_; }

  /// Returns a deterministic per-component RNG. The same (seed, name) pair
  /// always yields the same stream; distinct names are independent.
  Rng& rng(std::string_view name) override {
    std::uint64_t key = hash_name(name);
    auto it = rngs_.find(key);
    if (it == rngs_.end()) {
      it = rngs_.emplace(key, std::make_unique<Rng>(seed_, key)).first;
    }
    return *it->second;
  }

 private:
  static std::uint64_t hash_name(std::string_view name) {
    // FNV-1a, stable across platforms (std::hash<string_view> is not).
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (char c : name) {
      h ^= static_cast<unsigned char>(c);
      h *= 0x100000001b3ull;
    }
    return h;
  }

  std::uint64_t seed_;
  Time now_ = 0;
  std::uint64_t executed_ = 0;
  EventQueue queue_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Rng>> rngs_;
};

}  // namespace idem::sim
