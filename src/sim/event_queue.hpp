// Discrete-event queue with stable ordering and O(log n) cancellation.
//
// Events at equal timestamps fire in insertion order (FIFO), which makes
// whole simulation runs deterministic for a fixed seed — a property the
// tests rely on heavily.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/time.hpp"

namespace idem::sim {

/// Token returned by EventQueue::push; can be used to cancel the event.
struct EventId {
  std::uint64_t value = 0;
  bool valid() const { return value != 0; }
  auto operator<=>(const EventId&) const = default;
};

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `fn` at absolute time `at`. Requires at >= the time of the
  /// last popped event (no scheduling into the past).
  EventId push(Time at, Callback fn);

  /// Cancels a pending event. Cancelling an already-fired or already-
  /// cancelled event is a no-op. Returns true if the event was pending.
  bool cancel(EventId id);

  bool empty() const { return live_ == 0; }
  std::size_t size() const { return live_; }

  /// Time of the earliest pending event; kTimeNever when empty.
  Time next_time() const;

  struct Popped {
    Time at = 0;
    Callback fn;
  };

  /// Removes and returns the earliest event. Requires !empty().
  Popped pop();

 private:
  struct Entry {
    Time at = 0;
    std::uint64_t seq = 0;  // tie-break: earlier insertion fires first
    EventId id;
    // mutable so pop() can move the callback out of the priority queue's
    // const top() reference.
    mutable Callback fn;

    bool operator<(const Entry& other) const {
      // std::priority_queue is a max-heap; invert for earliest-first.
      if (at != other.at) return at > other.at;
      return seq > other.seq;
    }
  };

  void drop_cancelled();

  std::priority_queue<Entry> heap_;
  std::unordered_set<std::uint64_t> cancelled_;
  std::uint64_t next_seq_ = 1;
  std::size_t live_ = 0;
};

inline EventId EventQueue::push(Time at, Callback fn) {
  EventId id{next_seq_};
  heap_.push(Entry{at, next_seq_, id, std::move(fn)});
  ++next_seq_;
  ++live_;
  return id;
}

inline bool EventQueue::cancel(EventId id) {
  if (!id.valid()) return false;
  auto [it, inserted] = cancelled_.insert(id.value);
  (void)it;
  if (inserted && live_ > 0) {
    --live_;
    return true;
  }
  return false;
}

inline void EventQueue::drop_cancelled() {
  while (!heap_.empty()) {
    const Entry& top = heap_.top();
    auto it = cancelled_.find(top.id.value);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    heap_.pop();
  }
}

inline Time EventQueue::next_time() const {
  const_cast<EventQueue*>(this)->drop_cancelled();
  return heap_.empty() ? kTimeNever : heap_.top().at;
}

inline EventQueue::Popped EventQueue::pop() {
  drop_cancelled();
  const Entry& top = heap_.top();
  Popped out{top.at, std::move(top.fn)};
  heap_.pop();
  --live_;
  return out;
}

}  // namespace idem::sim
