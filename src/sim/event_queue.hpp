// Discrete-event queue with stable ordering and O(log n) in-place
// cancellation, allocation-free in steady state.
//
// Events at equal timestamps fire in insertion order (FIFO), which makes
// whole simulation runs deterministic for a fixed seed — a property the
// tests rely on heavily.
//
// Layout (see DESIGN.md "Kernel performance model"): a 4-ary min-heap of
// 24-byte index entries ordered by (time, sequence), plus a slot map that
// owns the callbacks. Heap sifts move only the small entries; callbacks
// never move after push. Cancellation looks the event up via its slot,
// removes the heap entry in place (O(log n)) and recycles the slot through
// a free list — no tombstones, so size() is exact and a cancelled event's
// captures are released immediately. Slots carry a generation counter so a
// stale EventId (already fired, already cancelled, or never issued) is
// recognized and rejected instead of corrupting the queue.
#pragma once

#include <cstdint>
#include <vector>

#include "common/inline_function.hpp"
#include "common/time.hpp"

namespace idem::sim {

/// Token returned by EventQueue::push; can be used to cancel the event.
struct EventId {
  std::uint64_t value = 0;
  bool valid() const { return value != 0; }
  auto operator<=>(const EventId&) const = default;
};

class EventQueue {
 public:
  /// 96 inline bytes cover every kernel lambda: the largest is the Node
  /// timer wrapper (weak_ptr liveness token + a 64-byte TimerCallback).
  using Callback = InlineFunction<void(), 96>;

  /// Schedules `fn` at absolute time `at`. Requires at >= the time of the
  /// last popped event (no scheduling into the past).
  EventId push(Time at, Callback fn) {
    std::uint32_t slot;
    if (free_head_ != kNpos) {
      slot = free_head_;
      free_head_ = slots_[slot].next_free;
    } else {
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
    }
    Slot& s = slots_[slot];
    s.fn = std::move(fn);
    s.heap_pos = static_cast<std::uint32_t>(heap_.size());
    heap_.push_back(HeapEntry{at, next_seq_++, slot});
    sift_up(heap_.size() - 1);
    return EventId{(static_cast<std::uint64_t>(s.generation) << 32) | (slot + 1)};
  }

  /// Cancels a pending event in place. Cancelling an already-fired,
  /// already-cancelled or never-issued event is a no-op returning false.
  bool cancel(EventId id) {
    Slot* s = find(id);
    if (s == nullptr) return false;
    std::uint32_t pos = s->heap_pos;
    release_slot(heap_[pos].slot);
    remove_at(pos);
    return true;
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Time of the earliest pending event; kTimeNever when empty.
  Time next_time() const { return heap_.empty() ? kTimeNever : heap_.front().at; }

  struct Popped {
    Time at = 0;
    Callback fn;
  };

  /// Removes and returns the earliest event. Requires !empty().
  Popped pop() {
    const HeapEntry& top = heap_.front();
    Popped out{top.at, std::move(slots_[top.slot].fn)};
    release_slot(top.slot);
    remove_at(0);
    return out;
  }

 private:
  static constexpr std::uint32_t kNpos = UINT32_MAX;

  struct HeapEntry {
    Time at = 0;
    std::uint64_t seq = 0;  // tie-break: earlier insertion fires first
    std::uint32_t slot = 0;

    bool before(const HeapEntry& other) const {
      return at != other.at ? at < other.at : seq < other.seq;
    }
  };

  struct Slot {
    Callback fn;
    std::uint32_t heap_pos = kNpos;   // kNpos when the slot is free
    std::uint32_t generation = 0;     // bumped on release; stale ids mismatch
    std::uint32_t next_free = kNpos;  // free-list link, valid when free
  };

  Slot* find(EventId id) {
    if (!id.valid()) return nullptr;
    std::uint32_t slot = static_cast<std::uint32_t>(id.value & 0xFFFFFFFFu) - 1;
    if (slot >= slots_.size()) return nullptr;
    Slot& s = slots_[slot];
    if (s.heap_pos == kNpos) return nullptr;
    if (s.generation != static_cast<std::uint32_t>(id.value >> 32)) return nullptr;
    return &s;
  }

  void release_slot(std::uint32_t slot) {
    Slot& s = slots_[slot];
    s.fn = nullptr;  // drop captures (e.g. payload refs) immediately
    s.heap_pos = kNpos;
    ++s.generation;
    s.next_free = free_head_;
    free_head_ = slot;
  }

  /// Removes the heap entry at `pos`, restoring the heap invariant.
  void remove_at(std::size_t pos) {
    std::size_t last = heap_.size() - 1;
    if (pos == last) {
      heap_.pop_back();
      return;
    }
    heap_[pos] = heap_[last];
    heap_.pop_back();
    slots_[heap_[pos].slot].heap_pos = static_cast<std::uint32_t>(pos);
    if (pos > 0 && heap_[pos].before(heap_[(pos - 1) >> 2])) {
      sift_up(pos);
    } else {
      sift_down(pos);
    }
  }

  void sift_up(std::size_t pos) {
    HeapEntry entry = heap_[pos];
    while (pos > 0) {
      std::size_t parent = (pos - 1) >> 2;
      if (!entry.before(heap_[parent])) break;
      heap_[pos] = heap_[parent];
      slots_[heap_[pos].slot].heap_pos = static_cast<std::uint32_t>(pos);
      pos = parent;
    }
    heap_[pos] = entry;
    slots_[entry.slot].heap_pos = static_cast<std::uint32_t>(pos);
  }

  void sift_down(std::size_t pos) {
    HeapEntry entry = heap_[pos];
    const std::size_t n = heap_.size();
    for (;;) {
      std::size_t first = 4 * pos + 1;
      if (first >= n) break;
      std::size_t best = first;
      std::size_t end = first + 4 < n ? first + 4 : n;
      for (std::size_t c = first + 1; c < end; ++c) {
        if (heap_[c].before(heap_[best])) best = c;
      }
      if (!heap_[best].before(entry)) break;
      heap_[pos] = heap_[best];
      slots_[heap_[pos].slot].heap_pos = static_cast<std::uint32_t>(pos);
      pos = best;
    }
    heap_[pos] = entry;
    slots_[entry.slot].heap_pos = static_cast<std::uint32_t>(pos);
  }

  std::vector<HeapEntry> heap_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNpos;
  std::uint64_t next_seq_ = 1;
};

}  // namespace idem::sim
