// Runtime abstraction: clock, timers and randomness for protocol code.
//
// sim::Simulator implements it with a virtual clock (deterministic,
// fast-forwarding); rpc::RealtimeRuntime implements it with the steady
// clock and an epoll loop. Protocol nodes only see this interface.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "sim/event_queue.hpp"

namespace idem::sim {

class Runtime {
 public:
  virtual ~Runtime() = default;

  /// Current time in nanoseconds since runtime start.
  virtual Time now() const = 0;

  /// Schedules `fn` at now() + delay (clamped to >= 0).
  virtual EventId schedule_after(Duration delay, EventQueue::Callback fn) = 0;

  /// Schedules `fn` at an absolute time (clamped to >= now()).
  virtual EventId schedule_at(Time at, EventQueue::Callback fn) = 0;

  /// Cancels a pending event; no-op if it already fired.
  virtual bool cancel(EventId id) = 0;

  /// Deterministic per-component RNG stream (same (seed, name) pair =>
  /// same stream).
  virtual Rng& rng(std::string_view name) = 0;

  /// The experiment seed the RNG streams derive from.
  virtual std::uint64_t seed() const = 0;
};

}  // namespace idem::sim
