#include "paxos/client.hpp"

#include <cassert>

namespace idem::paxos {

PaxosClient::PaxosClient(sim::Runtime& sim, sim::Transport& net, ClientId id,
                         PaxosClientConfig config)
    : sim::Node(sim, net, consensus::client_address(id), sim::NodeKind::Client),
      config_(config),
      cid_(id) {}

void PaxosClient::invoke(std::vector<std::byte> command, Callback callback) {
  assert(!pending_ && "one pending request per client");
  ++onr_;
  PendingOp op;
  op.id = RequestId{cid_, OpNum{onr_}};
  op.request = std::make_shared<const msg::Request>(op.id, std::move(command), request_deadline_);
  op.callback = std::move(callback);
  op.issued = now();
  pending_ = std::move(op);
  IDEM_TRACE(config_.trace, now(), obs::TraceEventKind::RequestIssued, id().value, pending_->id);

  send_attempt();
  if (config_.operation_timeout > 0) {
    deadline_timer_ = set_timer(config_.operation_timeout, [this] {
      deadline_timer_ = sim::TimerId{};
      if (pending_) complete(consensus::Outcome::Kind::Timeout, {}, 0);
    });
  }
}

void PaxosClient::send_attempt() {
  send(consensus::replica_address(presumed_leader_), pending_->request);
  ++pending_->attempts_at_current;

  cancel_timer(retry_timer_);
  retry_timer_ = set_timer(config_.retry_interval, [this] {
    retry_timer_ = sim::TimerId{};
    if (!pending_) return;
    IDEM_TRACE(config_.trace, now(), obs::TraceEventKind::RequestRetry, id().value,
               pending_->id);
    if (pending_->attempts_at_current >= config_.attempts_per_replica) {
      presumed_leader_ =
          ReplicaId{static_cast<std::uint32_t>((presumed_leader_.value + 1) % config_.n)};
      pending_->attempts_at_current = 0;
    }
    send_attempt();
  });
}

void PaxosClient::on_message(sim::NodeId from, const sim::Payload& message) {
  if (!pending_) return;
  const auto* base = dynamic_cast<const msg::Message*>(&message);
  if (base == nullptr) return;

  if (base->type() == msg::Type::Reply) {
    const auto& reply = static_cast<const msg::Reply&>(*base);
    if (reply.id != pending_->id) return;
    // The responder is (or was) the leader — keep talking to it.
    presumed_leader_ = consensus::replica_of_address(from);
    complete(consensus::Outcome::Kind::Reply, reply.result, 0);
    return;
  }
  if (base->type() == msg::Type::Reject) {
    const auto& reject = static_cast<const msg::Reject&>(*base);
    if (reject.id != pending_->id) return;
    IDEM_TRACE(config_.trace, now(), obs::TraceEventKind::RejectSeen, id().value, pending_->id,
               pack_reject_seen(from.value, reject.reason));
    presumed_leader_ = consensus::replica_of_address(from);
    complete(consensus::Outcome::Kind::Rejected, {}, 1);
  }
}

void PaxosClient::complete(consensus::Outcome::Kind kind, std::vector<std::byte> result,
                           std::size_t rejects) {
  cancel_timer(retry_timer_);
  cancel_timer(deadline_timer_);
  IDEM_TRACE(config_.trace, now(), obs::TraceEventKind::RequestOutcome, id().value,
             pending_->id, static_cast<std::uint64_t>(kind));

  consensus::Outcome outcome;
  outcome.kind = kind;
  outcome.issued = pending_->issued;
  outcome.completed = now();
  outcome.result = std::move(result);
  outcome.rejects_seen = rejects;
  outcome.definitive_failure = kind == consensus::Outcome::Kind::Rejected;
  outcome.deadline = pending_->request->deadline;

  Callback callback = std::move(pending_->callback);
  pending_.reset();
  callback(outcome);
}

}  // namespace idem::paxos
