#include "paxos/replica.hpp"

#include <algorithm>
#include <cassert>

namespace idem::paxos {

PaxosReplica::PaxosReplica(sim::Runtime& sim, sim::Transport& net, ReplicaId id,
                           PaxosConfig config, std::unique_ptr<app::StateMachine> state_machine)
    : sim::Node(sim, net, consensus::replica_address(id), sim::NodeKind::Replica),
      config_(config),
      me_(id),
      sm_(std::move(state_machine)),
      cost_rng_(sim.seed(), 0xC057'1000ull + id.value) {
  assert(config_.n == 2 * config_.f + 1);
  if (is_leader()) send_heartbeat();
  arm_failure_timer();
  retransmit_tick();
}

void PaxosReplica::on_restart() {
  // Pending timers fired as no-ops while down; restart the periodic chains
  // from scratch like the constructor does.
  cancel_timer(heartbeat_timer_);
  cancel_timer(failure_timer_);
  cancel_timer(retransmit_timer_);
  if (is_leader()) send_heartbeat();
  arm_failure_timer();
  retransmit_tick();
}

Duration PaxosReplica::message_cost(const sim::Payload& message) const {
  return config_.costs.cost(message, cost_rng_);
}

Duration PaxosReplica::send_cost(const sim::Payload& message) const {
  return config_.costs.send_cost(message, cost_rng_);
}

void PaxosReplica::multicast(sim::PayloadPtr message) {
  for (std::uint32_t i = 0; i < config_.n; ++i) {
    if (i == me_.value) continue;
    send(consensus::replica_address(ReplicaId{i}), message);
  }
}

std::size_t PaxosReplica::active_requests() const {
  return pending_.size() + inflight_requests_;
}

void PaxosReplica::on_message(sim::NodeId from, const sim::Payload& message) {
  (void)from;
  const auto* base = dynamic_cast<const msg::Message*>(&message);
  if (base == nullptr) return;
  switch (base->type()) {
    case msg::Type::Request:
      handle_request(static_cast<const msg::Request&>(*base));
      break;
    case msg::Type::PaxosPropose:
      handle_propose(static_cast<const msg::PaxosPropose&>(*base));
      break;
    case msg::Type::PaxosAccept:
      handle_accept(static_cast<const msg::PaxosAccept&>(*base));
      break;
    case msg::Type::PaxosHeartbeat:
      handle_heartbeat(static_cast<const msg::PaxosHeartbeat&>(*base));
      break;
    case msg::Type::PaxosViewChange:
      handle_viewchange(static_cast<const msg::PaxosViewChange&>(*base));
      break;
    default:
      break;
  }
}

// ---------------------------------------------------------------------------
// Request handling (leader only — followers drop client requests)
// ---------------------------------------------------------------------------

void PaxosReplica::handle_request(const msg::Request& request) {
  ++stats_.requests_received;
  if (!is_leader()) return;  // clients discover the leader by timeout

  const RequestId id = request.id;
  auto last_it = last_exec_.find(id.cid.value);
  if (last_it != last_exec_.end() && id.onr.value <= last_it->second) {
    auto reply_it = last_reply_.find(id.cid.value);
    if (reply_it != last_reply_.end() && reply_it->second->id == id) {
      send(consensus::client_address(id.cid), reply_it->second);
    }
    return;
  }
  if (queued_.contains(id)) return;  // retransmission; already in the pipeline

  // Leader-based rejection (Paxos_LBR): the single leader decides.
  if (config_.reject_threshold > 0 && active_requests() >= config_.reject_threshold) {
    ++stats_.rejected;
    IDEM_TRACE(config_.trace, now(), obs::TraceEventKind::AcceptVerdict, me_.value, id, 0);
    send(consensus::client_address(id.cid), std::make_shared<const msg::Reject>(id));
    return;
  }

  ++stats_.accepted;
  IDEM_TRACE(config_.trace, now(), obs::TraceEventKind::AcceptVerdict, me_.value, id, 1);
  queued_.insert(id);
  pending_.push_back(request);
  try_propose();
  arm_failure_timer();
}

void PaxosReplica::try_propose() {
  if (!is_leader()) return;
  const std::uint64_t window_end = next_exec_ + config_.window_size;
  while (!pending_.empty() && next_sqn_ < window_end) {
    while (instances_.contains(next_sqn_) && instances_[next_sqn_].has_binding) ++next_sqn_;
    if (next_sqn_ >= window_end) break;

    std::vector<msg::Request> batch;
    while (!pending_.empty() && batch.size() < config_.batch_max) {
      batch.push_back(std::move(pending_.front()));
      pending_.pop_front();
    }
    inflight_requests_ += batch.size();

    Instance& inst = instances_[next_sqn_];
    inst.view = view_;
    inst.requests = batch;
    inst.has_binding = true;
    inst.own_accept_sent = true;
    inst.accept_votes.insert(me_.value);
    for (const msg::Request& request : inst.requests) {
      IDEM_TRACE(config_.trace, now(), obs::TraceEventKind::Proposed, me_.value, request.id,
                 next_sqn_);
    }
    IDEM_TRACE(config_.trace, now(), obs::TraceEventKind::ProposeReceived, me_.value, next_sqn_);

    auto propose = std::make_shared<msg::PaxosPropose>();
    propose->view = view_;
    propose->sqn = SeqNum{next_sqn_};
    propose->requests = std::move(batch);
    multicast(std::move(propose));
    ++stats_.proposals_sent;
    ++next_sqn_;
  }
  try_execute();
}

bool PaxosReplica::observe_view(ViewId view) {
  if (view < view_) return false;
  if (view == view_) return !in_viewchange_;
  enter_view(view);
  return true;
}

void PaxosReplica::adopt_binding(std::uint64_t sqn, ViewId view,
                                 std::vector<msg::Request> requests) {
  Instance& inst = instances_[sqn];
  if (inst.executed) return;  // applied state is immutable
  if (inst.has_binding && inst.view >= view) return;
  if (!inst.has_binding) {
    IDEM_TRACE(config_.trace, now(), obs::TraceEventKind::ProposeReceived, me_.value, sqn);
  }
  inst.view = view;
  inst.requests = std::move(requests);
  inst.has_binding = true;
  inst.own_accept_sent = false;
  inst.accept_votes.clear();
}

void PaxosReplica::note_accept_quorum(std::uint64_t sqn, Instance& inst) {
  if (inst.quorum_traced || inst.accept_votes.size() < config_.quorum()) return;
  inst.quorum_traced = true;
  IDEM_TRACE(config_.trace, now(), obs::TraceEventKind::CommitQuorum, me_.value, sqn);
}

void PaxosReplica::handle_propose(const msg::PaxosPropose& propose) {
  if (!observe_view(propose.view)) return;
  const std::uint64_t sqn = propose.sqn.value;
  if (sqn < next_exec_) {
    // A retransmission for an instance we already executed: the sender is
    // missing our ACCEPT (it was lost), so repeat it or it stalls forever.
    if (instances_.contains(sqn)) {
      auto accept = std::make_shared<msg::PaxosAccept>();
      accept->from = me_;
      accept->view = propose.view;
      accept->sqn = SeqNum{sqn};
      multicast(std::move(accept));
    }
    return;
  }

  adopt_binding(sqn, propose.view, propose.requests);
  Instance& inst = instances_[sqn];
  if (inst.view != propose.view) return;

  inst.accept_votes.insert(consensus::leader_of(propose.view, config_.n).value);
  // Re-sending on a duplicate PROPOSE makes the accept path idempotent
  // under message loss (the leader retransmits stalled proposals).
  auto accept = std::make_shared<msg::PaxosAccept>();
  accept->from = me_;
  accept->view = inst.view;
  accept->sqn = SeqNum{sqn};
  multicast(std::move(accept));
  inst.own_accept_sent = true;
  inst.accept_votes.insert(me_.value);
  note_accept_quorum(sqn, inst);
  note_liveness();
  try_execute();
}

void PaxosReplica::handle_accept(const msg::PaxosAccept& accept) {
  if (!observe_view(accept.view)) return;
  auto it = instances_.find(accept.sqn.value);
  if (it == instances_.end()) return;
  if (it->second.view != accept.view) return;
  it->second.accept_votes.insert(accept.from.value);
  note_accept_quorum(accept.sqn.value, it->second);
  try_execute();
}

void PaxosReplica::try_execute() {
  for (;;) {
    auto it = instances_.find(next_exec_);
    if (it == instances_.end()) return;
    Instance& inst = it->second;
    if (!inst.has_binding || inst.executed) return;
    if (inst.accept_votes.size() < config_.quorum()) return;

    for (const msg::Request& request : inst.requests) {
      const RequestId id = request.id;
      auto last_it = last_exec_.find(id.cid.value);
      if (last_it != last_exec_.end() && id.onr.value <= last_it->second) {
        ++stats_.duplicates_skipped;
        continue;
      }
      charge(config_.costs.apply_jitter(sm_->execution_cost(request.command), cost_rng_));
      std::vector<std::byte> result = sm_->execute(request.command);
      ++stats_.executed;
      IDEM_TRACE(config_.trace, now(), obs::TraceEventKind::Executed, me_.value, id, next_exec_);
      last_exec_[id.cid.value] = id.onr.value;
      auto reply = std::make_shared<const msg::Reply>(id, std::move(result));
      last_reply_[id.cid.value] = reply;
      queued_.erase(id);
      if (is_leader()) {
        send(consensus::client_address(id.cid), reply);
        IDEM_TRACE(config_.trace, now(), obs::TraceEventKind::ReplySent, me_.value, id);
      }
      if (on_execute) on_execute(SeqNum{next_exec_}, id);
    }
    if (is_leader() && inflight_requests_ >= inst.requests.size()) {
      inflight_requests_ -= inst.requests.size();
    }
    inst.executed = true;
    // Old instances are not needed once executed (crash tolerance for the
    // baseline does not include lagging-replica state transfer).
    if (next_exec_ >= 2 * config_.window_size) {
      instances_.erase(instances_.begin(),
                       instances_.lower_bound(next_exec_ - 2 * config_.window_size));
    }
    ++next_exec_;
    note_liveness();
  }
}

// ---------------------------------------------------------------------------
// Liveness: heartbeats and view change
// ---------------------------------------------------------------------------

void PaxosReplica::retransmit_tick() {
  retransmit_timer_ = set_timer(config_.retransmit_interval, [this] { retransmit_tick(); });
  if (!is_leader()) {
    retransmit_watermark_ = UINT64_MAX;
    return;
  }
  auto it = instances_.find(next_exec_);
  if (it == instances_.end() || !it->second.has_binding || it->second.executed ||
      it->second.view != view_) {
    retransmit_watermark_ = UINT64_MAX;
    return;
  }
  if (retransmit_watermark_ == next_exec_) {
    // The head of the log made no progress for a full interval: assume the
    // PROPOSE (or the accepts) got lost and retransmit.
    auto propose = std::make_shared<msg::PaxosPropose>();
    propose->view = view_;
    propose->sqn = SeqNum{next_exec_};
    propose->requests = it->second.requests;
    multicast(std::move(propose));
  }
  retransmit_watermark_ = next_exec_;
}

void PaxosReplica::send_heartbeat() {
  if (!is_leader()) return;
  auto heartbeat = std::make_shared<msg::PaxosHeartbeat>();
  heartbeat->from = me_;
  heartbeat->view = view_;
  multicast(std::move(heartbeat));
  heartbeat_timer_ = set_timer(config_.heartbeat_interval, [this] {
    heartbeat_timer_ = sim::TimerId{};
    send_heartbeat();
  });
}

void PaxosReplica::handle_heartbeat(const msg::PaxosHeartbeat& heartbeat) {
  if (!observe_view(heartbeat.view)) return;
  note_liveness();
}

void PaxosReplica::arm_failure_timer() {
  if (failure_timer_.valid()) return;
  failure_timer_ = set_timer(config_.viewchange_timeout, [this] {
    failure_timer_ = sim::TimerId{};
    if (is_leader()) {
      // A leader only abandons its own view when the head of the log is
      // stalled: the quorum is gone (e.g. a follower falsely abandoned
      // the view while another is crashed) and retransmission alone
      // cannot fix that.
      auto it = instances_.find(next_exec_);
      bool stalled =
          it != instances_.end() && it->second.has_binding && !it->second.executed;
      if (!stalled) {
        arm_failure_timer();
        return;
      }
    }
    ViewId target{(in_viewchange_ ? vc_target_.value : view_.value) + 1};
    start_viewchange(target);
  });
}

void PaxosReplica::note_liveness() {
  cancel_timer(failure_timer_);
  arm_failure_timer();
}

void PaxosReplica::start_viewchange(ViewId target) {
  if (target <= view_) return;
  if (in_viewchange_ && vc_target_ >= target) return;
  in_viewchange_ = true;
  vc_target_ = target;
  ++stats_.view_changes;
  IDEM_TRACE(config_.trace, now(), obs::TraceEventKind::ViewChangeStart, me_.value,
             target.value);

  auto viewchange = std::make_shared<msg::PaxosViewChange>();
  viewchange->from = me_;
  viewchange->target = target;
  viewchange->window_start = SeqNum{next_exec_};
  for (const auto& [sqn, inst] : instances_) {
    // Executed instances must be shipped too: a committed binding that
    // only this replica executed would otherwise be invisible to the new
    // leader's merge, which could then rebind the slot - a safety
    // violation.
    if (!inst.has_binding) continue;
    msg::PaxosWindowEntry entry;
    entry.sqn = SeqNum{sqn};
    entry.view = inst.view;
    entry.requests = inst.requests;
    viewchange->proposals.push_back(std::move(entry));
  }
  viewchange_store_[me_.value] = *viewchange;
  multicast(viewchange);

  cancel_timer(failure_timer_);
  arm_failure_timer();
  maybe_become_leader(target);
}

void PaxosReplica::handle_viewchange(const msg::PaxosViewChange& viewchange) {
  if (viewchange.target <= view_) return;
  auto it = viewchange_store_.find(viewchange.from.value);
  if (it == viewchange_store_.end() || it->second.target <= viewchange.target) {
    viewchange_store_[viewchange.from.value] = viewchange;
  }
  // Synchronize escalating stragglers on the highest demanded target.
  if (in_viewchange_ && viewchange.target > vc_target_) {
    start_viewchange(viewchange.target);
    return;
  }
  std::size_t matching = 0;
  for (const auto& [from, stored] : viewchange_store_) {
    if (stored.target == viewchange.target) ++matching;
  }
  bool joined = in_viewchange_ && vc_target_ >= viewchange.target;
  if (!joined && matching >= config_.quorum()) {
    start_viewchange(viewchange.target);
    return;
  }
  maybe_become_leader(viewchange.target);
}

void PaxosReplica::maybe_become_leader(ViewId target) {
  if (consensus::leader_of(target, config_.n) != me_) return;
  if (view_ >= target) return;
  if (!in_viewchange_ || vc_target_ != target) return;

  std::size_t matching = 0;
  for (const auto& [from, stored] : viewchange_store_) {
    if (stored.target == target) ++matching;
  }
  if (matching < config_.quorum()) return;

  for (const auto& [from, stored] : viewchange_store_) {
    if (stored.target != target) continue;
    for (const auto& entry : stored.proposals) {
      adopt_binding(entry.sqn.value, entry.view, entry.requests);
    }
  }

  enter_view(target);

  std::uint64_t high = next_exec_;
  for (const auto& [sqn, inst] : instances_) {
    if (inst.has_binding && !inst.executed && sqn + 1 > high) high = sqn + 1;
  }
  if (next_sqn_ < high) next_sqn_ = high;

  for (std::uint64_t sqn = next_exec_; sqn < high; ++sqn) {
    Instance& inst = instances_[sqn];
    if (inst.executed) continue;
    if (!inst.has_binding) {
      inst.requests.clear();  // no-op filler for window gaps
      inst.has_binding = true;
    }
    inst.view = view_;
    inst.accept_votes.clear();
    inst.accept_votes.insert(me_.value);
    inst.own_accept_sent = true;

    auto propose = std::make_shared<msg::PaxosPropose>();
    propose->view = view_;
    propose->sqn = SeqNum{sqn};
    propose->requests = inst.requests;
    multicast(std::move(propose));
    ++stats_.proposals_sent;
  }

  send_heartbeat();
  try_propose();
  try_execute();
}

void PaxosReplica::enter_view(ViewId view) {
  bool was_leader = is_leader();
  view_ = view;
  in_viewchange_ = false;
  IDEM_TRACE(config_.trace, now(), obs::TraceEventKind::ViewChangeDone, me_.value, view.value);
  for (auto it = viewchange_store_.begin(); it != viewchange_store_.end();) {
    if (it->second.target <= view_) {
      it = viewchange_store_.erase(it);
    } else {
      ++it;
    }
  }
  if (was_leader && !is_leader()) {
    cancel_timer(heartbeat_timer_);
    // A demoted leader's pending queue dies with its leadership; clients
    // retransmit to the new leader.
    pending_.clear();
    queued_.clear();
    inflight_requests_ = 0;
  }
  note_liveness();
}

}  // namespace idem::paxos
