#include "paxos/replica.hpp"

#include <algorithm>
#include <cassert>

#include "core/lifecycle.hpp"

namespace idem::paxos {

namespace core = idem::core;

PaxosReplica::PaxosReplica(sim::Runtime& sim, sim::Transport& net, ReplicaId id,
                           PaxosConfig config, std::unique_ptr<app::StateMachine> state_machine)
    : sim::Node(sim, net, consensus::replica_address(id), sim::NodeKind::Replica),
      config_(config),
      me_(id),
      sm_(std::move(state_machine)),
      cost_rng_(sim.seed(), 0xC057'1000ull + id.value) {
  assert(config_.n == 2 * config_.f + 1);
  batch_.configure({config_.batch_max, config_.batch_min, config_.batch_flush_delay});
  if (is_leader()) send_heartbeat();
  arm_failure_timer();
  retransmit_tick();
}

void PaxosReplica::on_restart() {
  // Pending timers fired as no-ops while down; restart the periodic chains
  // from scratch like the constructor does.
  cancel_timer(heartbeat_timer_);
  cancel_timer(failure_timer_);
  cancel_timer(retransmit_timer_);
  cancel_timer(batch_timer_);
  if (is_leader()) send_heartbeat();
  arm_failure_timer();
  retransmit_tick();
}

Duration PaxosReplica::message_cost(const sim::Payload& message) const {
  return config_.costs.cost(message, cost_rng_);
}

Duration PaxosReplica::send_cost(const sim::Payload& message) const {
  return config_.costs.send_cost(message, cost_rng_);
}

void PaxosReplica::multicast(sim::PayloadPtr message) {
  for (std::uint32_t i = 0; i < config_.n; ++i) {
    if (i == me_.value) continue;
    send(consensus::replica_address(ReplicaId{i}), message);
  }
}

std::size_t PaxosReplica::active_requests() const {
  return batch_.size() + inflight_requests_;
}

void PaxosReplica::on_message(sim::NodeId from, const sim::Payload& message) {
  (void)from;
  const auto* base = dynamic_cast<const msg::Message*>(&message);
  if (base == nullptr) return;
  switch (base->type()) {
    case msg::Type::Request:
      handle_request(static_cast<const msg::Request&>(*base));
      break;
    case msg::Type::PaxosPropose:
      handle_propose(static_cast<const msg::PaxosPropose&>(*base));
      break;
    case msg::Type::PaxosAccept:
      handle_accept(static_cast<const msg::PaxosAccept&>(*base));
      break;
    case msg::Type::PaxosHeartbeat:
      handle_heartbeat(static_cast<const msg::PaxosHeartbeat&>(*base));
      break;
    case msg::Type::PaxosViewChange:
      handle_viewchange(static_cast<const msg::PaxosViewChange&>(*base));
      break;
    default:
      break;
  }
}

// ---------------------------------------------------------------------------
// Request handling (leader only — followers drop client requests)
// ---------------------------------------------------------------------------

void PaxosReplica::handle_request(const msg::Request& request) {
  ++stats_.requests_received;
  if (!is_leader()) return;  // clients discover the leader by timeout

  const RequestId id = request.id;
  if (clients_.executed(id)) {
    if (auto reply = clients_.cached_reply(id)) {
      send(consensus::client_address(id.cid), std::move(reply));
    }
    return;
  }
  if (queued_.contains(id)) return;  // retransmission; already in the pipeline

  // Leader-based rejection (Paxos_LBR): the single leader decides. LBR
  // only ever sheds for load, so the reason is always rt-queue-full.
  if (config_.reject_threshold > 0 && active_requests() >= config_.reject_threshold) {
    ++stats_.rejected;
    core::lifecycle::accept_verdict(config_.trace, now(), me_.value, id, false,
                                    RejectReason::RtQueueFull);
    send(consensus::client_address(id.cid),
         std::make_shared<const msg::Reject>(id, RejectReason::RtQueueFull));
    return;
  }

  ++stats_.accepted;
  core::lifecycle::accept_verdict(config_.trace, now(), me_.value, id, true);
  queued_.insert(id);
  batch_.push(request, now());
  try_propose();
  arm_failure_timer();
}

void PaxosReplica::try_propose() {
  if (!is_leader()) return;
  const std::uint64_t window_end = log_.next_exec() + config_.window_size;
  while (!batch_.empty() && next_sqn_ < window_end) {
    if (!batch_.ready(now())) {
      arm_batch_timer();
      break;
    }
    next_sqn_ = log_.skip_bound(next_sqn_);
    if (next_sqn_ >= window_end) break;

    std::vector<msg::Request> batch;
    batch_.cut([&](msg::Request& request) {
      batch.push_back(std::move(request));
      return core::BatchPipeline<msg::Request>::Verdict::Take;
    });
    inflight_requests_ += batch.size();

    Instance& inst = log_.at(next_sqn_);
    inst.view = views_.view();
    inst.requests = batch;
    inst.has_binding = true;
    inst.own_accept_sent = true;
    inst.accept_votes.insert(me_.value);
    for (const msg::Request& request : inst.requests) {
      core::lifecycle::proposed(config_.trace, now(), me_.value, request.id, next_sqn_);
    }
    core::lifecycle::propose_received(config_.trace, now(), me_.value, next_sqn_);

    auto propose = std::make_shared<msg::PaxosPropose>();
    propose->view = views_.view();
    propose->sqn = SeqNum{next_sqn_};
    propose->requests = std::move(batch);
    multicast(std::move(propose));
    ++stats_.proposals_sent;
    ++next_sqn_;
  }
  try_execute();
}

void PaxosReplica::arm_batch_timer() {
  // Only reachable with batch_min > 1 and a nonzero flush delay.
  if (batch_timer_.valid()) return;
  batch_timer_ = set_timer(batch_.delay_until_ready(now()), [this] {
    batch_timer_ = sim::TimerId{};
    try_propose();
  });
}

bool PaxosReplica::observe_view(ViewId view) {
  switch (views_.observe(view)) {
    case core::ViewEngine<msg::PaxosViewChange>::Observe::Ignore:
      return false;
    case core::ViewEngine<msg::PaxosViewChange>::Observe::Process:
      return true;
    case core::ViewEngine<msg::PaxosViewChange>::Observe::Enter:
      enter_view(view);
      return true;
  }
  return false;
}

void PaxosReplica::adopt_binding(std::uint64_t sqn, ViewId view,
                                 std::vector<msg::Request> requests) {
  Instance& inst = log_.at(sqn);
  if (inst.executed) return;  // applied state is immutable
  if (inst.has_binding && inst.view >= view) return;
  if (!inst.has_binding) {
    core::lifecycle::propose_received(config_.trace, now(), me_.value, sqn);
  }
  inst.view = view;
  inst.requests = std::move(requests);
  inst.has_binding = true;
  inst.own_accept_sent = false;
  inst.accept_votes.clear();
}

void PaxosReplica::note_accept_quorum(std::uint64_t sqn, Instance& inst) {
  core::lifecycle::decision_quorum(config_.trace, now(), me_.value, sqn, inst,
                                   inst.accept_votes.size(), config_.quorum());
}

void PaxosReplica::handle_propose(const msg::PaxosPropose& propose) {
  if (!observe_view(propose.view)) return;
  const std::uint64_t sqn = propose.sqn.value;
  if (sqn < log_.next_exec()) {
    // A retransmission for an instance we already executed: the sender is
    // missing our ACCEPT (it was lost), so repeat it or it stalls forever.
    if (log_.contains(sqn)) {
      auto accept = std::make_shared<msg::PaxosAccept>();
      accept->from = me_;
      accept->view = propose.view;
      accept->sqn = SeqNum{sqn};
      multicast(std::move(accept));
    }
    return;
  }

  adopt_binding(sqn, propose.view, propose.requests);
  Instance& inst = log_.at(sqn);
  if (inst.view != propose.view) return;

  inst.accept_votes.insert(consensus::leader_of(propose.view, config_.n).value);
  // Re-sending on a duplicate PROPOSE makes the accept path idempotent
  // under message loss (the leader retransmits stalled proposals).
  auto accept = std::make_shared<msg::PaxosAccept>();
  accept->from = me_;
  accept->view = inst.view;
  accept->sqn = SeqNum{sqn};
  multicast(std::move(accept));
  inst.own_accept_sent = true;
  inst.accept_votes.insert(me_.value);
  note_accept_quorum(sqn, inst);
  note_liveness();
  try_execute();
}

void PaxosReplica::handle_accept(const msg::PaxosAccept& accept) {
  if (!observe_view(accept.view)) return;
  Instance* inst = log_.find(accept.sqn.value);
  if (inst == nullptr) return;
  if (inst->view != accept.view) return;
  inst->accept_votes.insert(accept.from.value);
  note_accept_quorum(accept.sqn.value, *inst);
  try_execute();
}

void PaxosReplica::try_execute() {
  for (;;) {
    Instance* inst = log_.head();
    if (inst == nullptr) return;
    if (!inst->has_binding || inst->executed) return;
    if (inst->accept_votes.size() < config_.quorum()) return;

    for (const msg::Request& request : inst->requests) {
      const RequestId id = request.id;
      if (clients_.executed(id)) {
        ++stats_.duplicates_skipped;
        continue;
      }
      charge(config_.costs.apply_jitter(sm_->execution_cost(request.command), cost_rng_));
      std::vector<std::byte> result = sm_->execute(request.command);
      ++stats_.executed;
      core::lifecycle::executed(config_.trace, now(), me_.value, id, log_.next_exec());
      auto reply = std::make_shared<const msg::Reply>(id, std::move(result));
      clients_.record(id, reply);
      queued_.erase(id);
      if (is_leader()) {
        send(consensus::client_address(id.cid), reply);
        core::lifecycle::reply_sent(config_.trace, now(), me_.value, id);
      }
      if (on_execute) on_execute(SeqNum{log_.next_exec()}, id);
    }
    if (is_leader() && inflight_requests_ >= inst->requests.size()) {
      inflight_requests_ -= inst->requests.size();
    }
    inst->executed = true;
    // Old instances are not needed once executed (crash tolerance for the
    // baseline does not include lagging-replica state transfer).
    log_.gc_executed(config_.window_size);
    log_.advance_head();
    note_liveness();
  }
}

// ---------------------------------------------------------------------------
// Liveness: heartbeats and view change
// ---------------------------------------------------------------------------

void PaxosReplica::retransmit_tick() {
  retransmit_timer_ = set_timer(config_.retransmit_interval, [this] { retransmit_tick(); });
  if (!is_leader()) {
    retransmit_stall_.reset();
    return;
  }
  Instance* head = log_.head();
  if (head == nullptr || !head->has_binding || head->executed ||
      head->view != views_.view()) {
    retransmit_stall_.reset();
    return;
  }
  if (retransmit_stall_.stalled_at(log_.next_exec())) {
    // The head of the log made no progress for a full interval: assume the
    // PROPOSE (or the accepts) got lost and retransmit.
    auto propose = std::make_shared<msg::PaxosPropose>();
    propose->view = views_.view();
    propose->sqn = SeqNum{log_.next_exec()};
    propose->requests = head->requests;
    multicast(std::move(propose));
  }
}

void PaxosReplica::send_heartbeat() {
  if (!is_leader()) return;
  auto heartbeat = std::make_shared<msg::PaxosHeartbeat>();
  heartbeat->from = me_;
  heartbeat->view = views_.view();
  multicast(std::move(heartbeat));
  heartbeat_timer_ = set_timer(config_.heartbeat_interval, [this] {
    heartbeat_timer_ = sim::TimerId{};
    send_heartbeat();
  });
}

void PaxosReplica::handle_heartbeat(const msg::PaxosHeartbeat& heartbeat) {
  if (!observe_view(heartbeat.view)) return;
  note_liveness();
}

void PaxosReplica::arm_failure_timer() {
  if (failure_timer_.valid()) return;
  failure_timer_ = set_timer(config_.viewchange_timeout, [this] {
    failure_timer_ = sim::TimerId{};
    if (is_leader()) {
      // A leader only abandons its own view when the head of the log is
      // stalled: the quorum is gone (e.g. a follower falsely abandoned
      // the view while another is crashed) and retransmission alone
      // cannot fix that.
      Instance* head = log_.head();
      bool stalled = head != nullptr && head->has_binding && !head->executed;
      if (!stalled) {
        arm_failure_timer();
        return;
      }
    }
    start_viewchange(views_.next_target());
  });
}

void PaxosReplica::note_liveness() {
  cancel_timer(failure_timer_);
  arm_failure_timer();
}

void PaxosReplica::start_viewchange(ViewId target) {
  if (!views_.begin(target)) return;
  ++stats_.view_changes;
  core::lifecycle::viewchange_start(config_.trace, now(), me_.value, target.value);

  auto viewchange = std::make_shared<msg::PaxosViewChange>();
  viewchange->from = me_;
  viewchange->target = target;
  viewchange->window_start = SeqNum{log_.next_exec()};
  for (const auto& [sqn, inst] : log_.slots()) {
    // Executed instances must be shipped too: a committed binding that
    // only this replica executed would otherwise be invisible to the new
    // leader's merge, which could then rebind the slot - a safety
    // violation.
    if (!inst.has_binding) continue;
    msg::PaxosWindowEntry entry;
    entry.sqn = SeqNum{sqn};
    entry.view = inst.view;
    entry.items = inst.requests;
    viewchange->proposals.push_back(std::move(entry));
  }
  views_.store_own(me_.value, *viewchange);
  multicast(viewchange);

  cancel_timer(failure_timer_);
  arm_failure_timer();
  maybe_become_leader(target);
}

void PaxosReplica::handle_viewchange(const msg::PaxosViewChange& viewchange) {
  if (viewchange.target <= views_.view()) return;
  views_.store(viewchange);
  // Synchronize escalating stragglers on the highest demanded target.
  if (views_.should_escalate(viewchange.target)) {
    start_viewchange(viewchange.target);
    return;
  }
  if (!views_.joined(viewchange.target) &&
      views_.matching(viewchange.target) >= config_.quorum()) {
    start_viewchange(viewchange.target);
    return;
  }
  maybe_become_leader(viewchange.target);
}

void PaxosReplica::maybe_become_leader(ViewId target) {
  if (consensus::leader_of(target, config_.n) != me_) return;
  if (views_.view() >= target) return;
  if (!views_.in_viewchange() || views_.target() != target) return;
  if (views_.matching(target) < config_.quorum()) return;

  views_.for_each_matching(target, [this](const msg::PaxosViewChange& stored) {
    for (const auto& entry : stored.proposals) {
      adopt_binding(entry.sqn.value, entry.view, entry.items);
    }
  });

  enter_view(target);

  std::uint64_t high = log_.high_watermark(
      log_.next_exec(), [](const Instance& inst) { return inst.has_binding && !inst.executed; });
  if (next_sqn_ < high) next_sqn_ = high;

  for (std::uint64_t sqn = log_.next_exec(); sqn < high; ++sqn) {
    Instance& inst = log_.at(sqn);
    if (inst.executed) continue;
    if (!inst.has_binding) {
      inst.requests.clear();  // no-op filler for window gaps
      inst.has_binding = true;
    }
    inst.view = views_.view();
    inst.accept_votes.clear();
    inst.accept_votes.insert(me_.value);
    inst.own_accept_sent = true;

    auto propose = std::make_shared<msg::PaxosPropose>();
    propose->view = views_.view();
    propose->sqn = SeqNum{sqn};
    propose->requests = inst.requests;
    multicast(std::move(propose));
    ++stats_.proposals_sent;
  }

  send_heartbeat();
  try_propose();
  try_execute();
}

void PaxosReplica::enter_view(ViewId view) {
  bool was_leader = is_leader();
  views_.enter(view);
  core::lifecycle::viewchange_done(config_.trace, now(), me_.value, view.value);
  if (was_leader && !is_leader()) {
    cancel_timer(heartbeat_timer_);
    cancel_timer(batch_timer_);
    // A demoted leader's pending queue dies with its leadership; clients
    // retransmit to the new leader.
    batch_.clear();
    queued_.clear();
    inflight_requests_ = 0;
  }
  note_liveness();
}

}  // namespace idem::paxos
