// Paxos baseline replica (Kirsch & Amir's "Paxos for System Builders"
// style), sharing the simulation substrate with IDEM so the protocols are
// directly comparable — the paper's own methodology (Section 7).
//
// Differences from IDEM that matter for the experiments:
//   - Clients talk to the *leader* only; the leader distributes the full
//     requests, so its in/out links and CPU are the bottleneck.
//   - No overload protection: the leader's pending queue is unbounded and
//     latency explodes past saturation (Figure 2 / Figure 6).
//   - Optional leader-based rejection (Paxos_LBR, paper Section 3.3): the
//     leader alone runs an acceptance test and rejects excess requests —
//     which stops working for the duration of a leader crash + view change
//     (Figure 3 / Figure 10d).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "app/state_machine.hpp"
#include "common/ids.hpp"
#include "consensus/addresses.hpp"
#include "consensus/cost_model.hpp"
#include "consensus/messages.hpp"
#include "obs/trace.hpp"
#include "sim/node.hpp"

namespace idem::paxos {

struct PaxosConfig {
  std::size_t n = 3;
  std::size_t f = 1;
  std::size_t batch_max = 32;
  /// In-flight consensus instances (relative to execution progress).
  std::uint64_t window_size = 256;
  Duration viewchange_timeout = 1500 * kMillisecond;
  Duration heartbeat_interval = 300 * kMillisecond;
  /// Leader retransmits the proposal of the oldest unexecuted instance
  /// when it makes no progress for this long (fair-loss links).
  Duration retransmit_interval = 200 * kMillisecond;
  consensus::CostModel costs;

  /// Leader-based rejection (Paxos_LBR): reject new requests when the
  /// number of accepted-but-unexecuted requests at the leader reaches this
  /// threshold. 0 disables rejection (plain Paxos).
  std::size_t reject_threshold = 0;

  /// Optional request-lifecycle trace sink (borrowed, may be null).
  obs::TraceRecorder* trace = nullptr;

  std::size_t quorum() const { return f + 1; }
};

struct PaxosStats {
  std::uint64_t requests_received = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t executed = 0;
  std::uint64_t duplicates_skipped = 0;
  std::uint64_t proposals_sent = 0;
  std::uint64_t view_changes = 0;
};

class PaxosReplica final : public sim::Node {
 public:
  PaxosReplica(sim::Runtime& sim, sim::Transport& net, ReplicaId id, PaxosConfig config,
               std::unique_ptr<app::StateMachine> state_machine);

  ReplicaId replica_id() const { return me_; }
  ViewId view() const { return view_; }
  bool is_leader() const {
    return !in_viewchange_ && consensus::leader_of(view_, config_.n) == me_;
  }
  const PaxosStats& stats() const { return stats_; }
  std::size_t backlog() const { return pending_.size(); }
  SeqNum next_execute() const { return SeqNum{next_exec_}; }

  app::StateMachine& state_machine() { return *sm_; }

  /// Test hook: invoked after each executed request with (sqn, id).
  std::function<void(SeqNum, RequestId)> on_execute;

 protected:
  void on_message(sim::NodeId from, const sim::Payload& message) override;
  void on_restart() override;
  Duration message_cost(const sim::Payload& message) const override;
  Duration send_cost(const sim::Payload& message) const override;

 private:
  struct Instance {
    ViewId view;
    std::vector<msg::Request> requests;
    bool has_binding = false;
    bool own_accept_sent = false;
    std::unordered_set<std::uint32_t> accept_votes;
    bool executed = false;
    bool quorum_traced = false;  ///< CommitQuorum trace event emitted once
  };

  void handle_request(const msg::Request& request);
  void try_propose();
  void handle_propose(const msg::PaxosPropose& propose);
  void handle_accept(const msg::PaxosAccept& accept);
  void adopt_binding(std::uint64_t sqn, ViewId view, std::vector<msg::Request> requests);
  /// Emits the CommitQuorum trace event once per instance.
  void note_accept_quorum(std::uint64_t sqn, Instance& inst);
  void try_execute();
  bool observe_view(ViewId view);

  void handle_heartbeat(const msg::PaxosHeartbeat& heartbeat);
  void send_heartbeat();
  void retransmit_tick();
  void arm_failure_timer();
  void note_liveness();
  void start_viewchange(ViewId target);
  void handle_viewchange(const msg::PaxosViewChange& viewchange);
  void maybe_become_leader(ViewId target);
  void enter_view(ViewId view);

  std::size_t active_requests() const;
  void multicast(sim::PayloadPtr message);

  PaxosConfig config_;
  ReplicaId me_;
  std::unique_ptr<app::StateMachine> sm_;

  ViewId view_;
  bool in_viewchange_ = false;
  ViewId vc_target_;

  std::deque<msg::Request> pending_;  ///< leader: accepted, not yet proposed
  std::unordered_set<RequestId> queued_;
  std::size_t inflight_requests_ = 0;  ///< proposed, not yet executed

  std::map<std::uint64_t, Instance> instances_;
  std::uint64_t next_sqn_ = 0;
  std::uint64_t next_exec_ = 0;

  std::unordered_map<std::uint64_t, std::uint64_t> last_exec_;
  std::unordered_map<std::uint64_t, std::shared_ptr<const msg::Reply>> last_reply_;

  std::unordered_map<std::uint32_t, msg::PaxosViewChange> viewchange_store_;
  sim::TimerId failure_timer_;
  sim::TimerId heartbeat_timer_;
  sim::TimerId retransmit_timer_;
  std::uint64_t retransmit_watermark_ = UINT64_MAX;

  // Service-time variability stream (CostModel::jitter).
  mutable Rng cost_rng_;

  PaxosStats stats_;
};

}  // namespace idem::paxos
