// Paxos baseline replica (Kirsch & Amir's "Paxos for System Builders"
// style), sharing the simulation substrate with IDEM so the protocols are
// directly comparable — the paper's own methodology (Section 7).
//
// Differences from IDEM that matter for the experiments:
//   - Clients talk to the *leader* only; the leader distributes the full
//     requests, so its in/out links and CPU are the bottleneck.
//   - No overload protection: the leader's pending queue is unbounded and
//     latency explodes past saturation (Figure 2 / Figure 6).
//   - Optional leader-based rejection (Paxos_LBR, paper Section 3.3): the
//     leader alone runs an acceptance test and rejects excess requests —
//     which stops working for the duration of a leader crash + view change
//     (Figure 3 / Figure 10d).
//
// Structurally a policy layer over the replication core (src/core): the
// ordered log, view engine, client table and batch pipeline are shared
// with the other protocols; Paxos contributes the leader-only intake, the
// heartbeat liveness chain and the full-request distribution.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_set>
#include <vector>

#include "app/state_machine.hpp"
#include "common/ids.hpp"
#include "consensus/addresses.hpp"
#include "consensus/cost_model.hpp"
#include "consensus/messages.hpp"
#include "core/batch_pipeline.hpp"
#include "core/client_table.hpp"
#include "core/ordered_log.hpp"
#include "core/timers.hpp"
#include "core/view_engine.hpp"
#include "obs/trace.hpp"
#include "sim/node.hpp"

namespace idem::paxos {

struct PaxosConfig {
  std::size_t n = 3;
  std::size_t f = 1;
  std::size_t batch_max = 32;
  /// Ordered-log batching (see core::BatchPipeline): cut once batch_min
  /// requests are queued or the oldest waited batch_flush_delay. Defaults
  /// (1, 0) cut immediately, i.e. legacy behavior.
  std::size_t batch_min = 1;
  Duration batch_flush_delay = 0;
  /// In-flight consensus instances (relative to execution progress).
  std::uint64_t window_size = 256;
  Duration viewchange_timeout = 1500 * kMillisecond;
  Duration heartbeat_interval = 300 * kMillisecond;
  /// Leader retransmits the proposal of the oldest unexecuted instance
  /// when it makes no progress for this long (fair-loss links).
  Duration retransmit_interval = 200 * kMillisecond;
  consensus::CostModel costs;

  /// Leader-based rejection (Paxos_LBR): reject new requests when the
  /// number of accepted-but-unexecuted requests at the leader reaches this
  /// threshold. 0 disables rejection (plain Paxos).
  std::size_t reject_threshold = 0;

  /// Optional request-lifecycle trace sink (borrowed, may be null).
  obs::TraceRecorder* trace = nullptr;

  std::size_t quorum() const { return f + 1; }
};

struct PaxosStats {
  std::uint64_t requests_received = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t executed = 0;
  std::uint64_t duplicates_skipped = 0;
  std::uint64_t proposals_sent = 0;
  std::uint64_t view_changes = 0;
};

class PaxosReplica final : public sim::Node {
 public:
  PaxosReplica(sim::Runtime& sim, sim::Transport& net, ReplicaId id, PaxosConfig config,
               std::unique_ptr<app::StateMachine> state_machine);

  ReplicaId replica_id() const { return me_; }
  ViewId view() const { return views_.view(); }
  bool is_leader() const {
    return !views_.in_viewchange() && consensus::leader_of(views_.view(), config_.n) == me_;
  }
  const PaxosStats& stats() const { return stats_; }
  std::size_t backlog() const { return batch_.size(); }
  SeqNum next_execute() const { return SeqNum{log_.next_exec()}; }

  app::StateMachine& state_machine() { return *sm_; }

  /// Test hook: invoked after each executed request with (sqn, id).
  std::function<void(SeqNum, RequestId)> on_execute;

 protected:
  void on_message(sim::NodeId from, const sim::Payload& message) override;
  void on_restart() override;
  Duration message_cost(const sim::Payload& message) const override;
  Duration send_cost(const sim::Payload& message) const override;

 private:
  struct Instance : core::SlotBase {
    ViewId view;
    std::vector<msg::Request> requests;
    bool own_accept_sent = false;
    std::unordered_set<std::uint32_t> accept_votes;
  };

  void handle_request(const msg::Request& request);
  void try_propose();
  void arm_batch_timer();
  void handle_propose(const msg::PaxosPropose& propose);
  void handle_accept(const msg::PaxosAccept& accept);
  void adopt_binding(std::uint64_t sqn, ViewId view, std::vector<msg::Request> requests);
  /// Emits the CommitQuorum trace event once per instance.
  void note_accept_quorum(std::uint64_t sqn, Instance& inst);
  void try_execute();
  bool observe_view(ViewId view);

  void handle_heartbeat(const msg::PaxosHeartbeat& heartbeat);
  void send_heartbeat();
  void retransmit_tick();
  void arm_failure_timer();
  void note_liveness();
  void start_viewchange(ViewId target);
  void handle_viewchange(const msg::PaxosViewChange& viewchange);
  void maybe_become_leader(ViewId target);
  void enter_view(ViewId view);

  std::size_t active_requests() const;
  void multicast(sim::PayloadPtr message);

  PaxosConfig config_;
  ReplicaId me_;
  std::unique_ptr<app::StateMachine> sm_;

  core::ViewEngine<msg::PaxosViewChange> views_;

  core::BatchPipeline<msg::Request> batch_;  ///< leader: accepted, not yet proposed
  std::unordered_set<RequestId> queued_;
  std::size_t inflight_requests_ = 0;  ///< proposed, not yet executed
  sim::TimerId batch_timer_;           ///< pending time-based batch cut

  core::OrderedLog<Instance> log_;
  std::uint64_t next_sqn_ = 0;

  core::ClientTable clients_;

  sim::TimerId failure_timer_;
  sim::TimerId heartbeat_timer_;
  sim::TimerId retransmit_timer_;
  core::StallWatermark retransmit_stall_;

  // Service-time variability stream (CostModel::jitter).
  mutable Rng cost_rng_;

  PaxosStats stats_;
};

}  // namespace idem::paxos
