// Paxos client: sends each request to the presumed leader only and fails
// over to the next replica on timeout (paper Section 7.8: this fail-over
// plus the view change is why Paxos_LBR cannot reject during a leader
// crash).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "consensus/addresses.hpp"
#include "consensus/messages.hpp"
#include "consensus/service_client.hpp"
#include "obs/trace.hpp"
#include "sim/node.hpp"

namespace idem::paxos {

struct PaxosClientConfig {
  std::size_t n = 3;
  /// Per-attempt timeout before the client retries (possibly at the next
  /// presumed leader).
  Duration retry_interval = 1 * kSecond;
  /// Attempts at the same presumed leader before failing over.
  std::size_t attempts_per_replica = 1;
  /// Give up entirely after this long (0 = never). Outcome::Timeout.
  Duration operation_timeout = 0;

  /// Optional request-lifecycle trace sink (borrowed, may be null).
  obs::TraceRecorder* trace = nullptr;
};

class PaxosClient final : public sim::Node, public consensus::ServiceClient {
 public:
  PaxosClient(sim::Runtime& sim, sim::Transport& net, ClientId id, PaxosClientConfig config);

  void invoke(std::vector<std::byte> command, Callback callback) override;
  void set_request_deadline(Duration deadline) override { request_deadline_ = deadline; }
  ClientId client_id() const override { return cid_; }
  bool busy() const override { return pending_.has_value(); }

  ReplicaId presumed_leader() const { return presumed_leader_; }

 protected:
  void on_message(sim::NodeId from, const sim::Payload& message) override;

 private:
  struct PendingOp {
    RequestId id;
    std::shared_ptr<const msg::Request> request;
    Callback callback;
    Time issued = 0;
    std::size_t attempts_at_current = 0;
  };

  void send_attempt();
  void complete(consensus::Outcome::Kind kind, std::vector<std::byte> result,
                std::size_t rejects);

  PaxosClientConfig config_;
  ClientId cid_;
  std::uint64_t onr_ = 0;
  Duration request_deadline_ = 0;  ///< budget stamped on subsequent invokes
  ReplicaId presumed_leader_{0};
  std::optional<PendingOp> pending_;
  sim::TimerId retry_timer_;
  sim::TimerId deadline_timer_;
};

}  // namespace idem::paxos
