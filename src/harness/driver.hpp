// Closed-loop YCSB load driver (paper Section 7.1).
//
// Every client submits one operation at a time. After a REPLY the next
// operation follows immediately (plus optional think time); after an abort
// due to rejection the client backs off for a random 50-100 ms, the
// established overload-management behaviour the paper adopts.
#pragma once

#include <cstdint>
#include <vector>

#include "app/ycsb.hpp"
#include "harness/cluster.hpp"
#include "harness/metrics.hpp"

namespace idem::harness {

struct DriverConfig {
  Duration warmup = 2 * kSecond;
  Duration measure = 10 * kSecond;
  /// Rejection backoff window (paper: 50-100 ms).
  Duration backoff_min = 50 * kMillisecond;
  Duration backoff_max = 100 * kMillisecond;
  /// Optional think time between a reply and the next operation.
  Duration think_time = 0;
  /// Timeline bucket width for the crash plots.
  Duration series_window = 100 * kMillisecond;
  /// When > 0, ignore warmup/measure and run until this many operations
  /// received replies; metrics then cover the whole run (Table 1 mode).
  std::uint64_t stop_after_replies = 0;
};

class ClosedLoopDriver {
 public:
  ClosedLoopDriver(Cluster& cluster, DriverConfig config);

  /// Starts all clients, runs the simulation, returns the metrics.
  RunMetrics run();

 private:
  struct ClientState {
    std::unique_ptr<app::YcsbWorkload> workload;
    Rng* backoff_rng = nullptr;
    Rng* deadline_rng = nullptr;  ///< only armed when request_deadline > 0
  };

  void issue(std::size_t index);
  void on_outcome(std::size_t index, const consensus::Outcome& outcome);
  bool in_measurement(Time t) const;

  Cluster& cluster_;
  DriverConfig config_;
  std::vector<ClientState> states_;
  RunMetrics metrics_;
  Time measure_start_ = 0;
  Time measure_end_ = 0;
  std::uint64_t total_replies_ = 0;
  bool stopping_ = false;
};

}  // namespace idem::harness
