// Metrics collected by the closed-loop experiment driver.
#pragma once

#include <cstdint>

#include "common/histogram.hpp"
#include "common/time.hpp"
#include "common/timeseries.hpp"
#include "sim/network.hpp"

namespace idem::harness {

struct RunMetrics {
  /// Length of the measurement window (excludes warm-up).
  Duration measured = 0;

  // Steady-state distributions over the measurement window.
  Histogram reply_latency;
  Histogram reject_latency;
  std::uint64_t replies = 0;
  std::uint64_t rejects = 0;   ///< operations aborted after rejections
  std::uint64_t timeouts = 0;  ///< operations abandoned without information
  std::uint64_t deadline_ops = 0;     ///< replies to deadline-carrying operations
  std::uint64_t deadline_misses = 0;  ///< ...that landed after their budget

  // Timelines over the *whole* run (including warm-up) for crash plots;
  // sample value = latency in milliseconds.
  TimeSeries reply_series{100 * kMillisecond};
  TimeSeries reject_series{100 * kMillisecond};

  // Network traffic accumulated during the measurement.
  sim::TrafficStats client_traffic;
  sim::TrafficStats replica_traffic;

  double reply_throughput() const {
    return measured > 0 ? static_cast<double>(replies) / to_sec(measured) : 0.0;
  }
  double reject_throughput() const {
    return measured > 0 ? static_cast<double>(rejects) / to_sec(measured) : 0.0;
  }
  double reply_latency_ms() const { return to_ms(reply_latency.mean()); }
  double reply_latency_stddev_ms() const { return to_ms(reply_latency.stddev()); }
  double reject_latency_ms() const { return to_ms(reject_latency.mean()); }
  double reject_latency_stddev_ms() const { return to_ms(reject_latency.stddev()); }

  /// Fraction of deadline-carrying replies that landed after their budget
  /// (rejected operations are the admission policy doing its job; ghosts
  /// that executed too late are the failures this measures).
  double deadline_miss_rate() const {
    return deadline_ops > 0
               ? static_cast<double>(deadline_misses) / static_cast<double>(deadline_ops)
               : 0.0;
  }

  // Tail percentiles of the reply distribution, in milliseconds.
  double reply_p50_ms() const { return to_ms(reply_latency.p50()); }
  double reply_p90_ms() const { return to_ms(reply_latency.p90()); }
  double reply_p99_ms() const { return to_ms(reply_latency.p99()); }
  double reply_p999_ms() const { return to_ms(reply_latency.p999()); }
  std::uint64_t total_bytes() const { return client_traffic.bytes + replica_traffic.bytes; }
};

}  // namespace idem::harness
