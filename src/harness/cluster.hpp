// Cluster builder: instantiates a complete replicated system (simulator,
// network, replicas, clients) for any protocol variant under test.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "app/kv_store.hpp"
#include "app/ycsb.hpp"
#include "consensus/service_client.hpp"
#include "idem/client.hpp"
#include "idem/replica.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/ticker.hpp"
#include "obs/trace.hpp"
#include "paxos/client.hpp"
#include "paxos/replica.hpp"
#include "sim/discipline.hpp"
#include "sim/fault_plan.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "smart/client.hpp"
#include "smart/replica.hpp"
#include "smart/replica_pr.hpp"

namespace idem::harness {

/// The systems evaluated in the paper (Section 7) plus the AQM ablation.
enum class Protocol {
  Idem,       ///< IDEM with the AQM-prioritized acceptance test
  IdemNoPR,   ///< IDEM with rejection disabled (accept everything)
  IdemNoAQM,  ///< IDEM with plain tail drop (no AQM, no prioritization)
  Paxos,      ///< Kirsch/Amir-style Paxos baseline
  PaxosLBR,   ///< Paxos with leader-based rejection (Section 3.3)
  Smart,      ///< BFT-SMaRt-analog in CFT mode
  SmartPR,    ///< SMaRt-analog + collaborative proactive rejection (modularity demo)
};

const char* protocol_name(Protocol protocol);

/// Observability knobs. Both sinks are off by default; enabling them must
/// not perturb the simulation (tracing adds no events, metrics sampling
/// adds only its own tick events, and neither touches any RNG stream).
struct ObsConfig {
  /// Record per-request lifecycle spans into a Cluster-owned TraceRecorder.
  bool trace = false;
  /// Ring capacity (events) of the trace recorder.
  std::size_t trace_capacity = 1u << 18;
  /// Sample the metrics registry every `metrics_interval`; 0 disables the
  /// registry entirely.
  Duration metrics_interval = 0;
  /// Sample rows pre-reserved so steady-state sampling never allocates.
  std::size_t metrics_reserve = 4096;
};

struct ClusterConfig {
  Protocol protocol = Protocol::Idem;
  std::size_t n = 3;
  std::size_t f = 1;
  std::size_t clients = 50;
  /// IDEM reject threshold r, or the Paxos_LBR leader threshold.
  std::size_t reject_threshold = 50;
  std::uint64_t seed = 1;

  /// Ordered-log batching overrides, applied to whichever protocol config
  /// is selected (core::BatchPipeline semantics). Zero keeps the protocol
  /// default — the zero/zero/zero default leaves behavior untouched.
  std::size_t batch_max = 0;
  std::size_t batch_min = 0;
  Duration batch_flush_delay = 0;

  /// Service discipline installed on every replica (Fifo keeps the
  /// default ring and its pinned trajectories).
  sim::DisciplineKind discipline = sim::DisciplineKind::Fifo;
  /// Per-operation latency budget stamped by the driver (0 = none).
  Duration request_deadline = 0;
  /// Uniform +/- jitter applied to each operation's budget.
  Duration deadline_jitter = 0;

  sim::NetworkConfig network;
  core::IdemConfig idem;              ///< n/f/reject_threshold overridden
  core::IdemClientConfig idem_client; ///< n/f overridden
  paxos::PaxosConfig paxos;
  paxos::PaxosClientConfig paxos_client;
  smart::SmartConfig smart;
  smart::SmartClientConfig smart_client;
  smart::SmartPrConfig smart_pr;

  ObsConfig obs;

  app::KvStore::Costs kv_costs;
  app::YcsbConfig workload = app::YcsbConfig::update_heavy();
  /// Records preloaded into every replica's store before the run.
  bool preload = true;

  /// Optional replacement for the default KvStore application (invoked once
  /// per replica). When set, `kv_costs`/`preload` are ignored — the factory
  /// owns initial state. Lets chaos and app-genericity tests replicate any
  /// app::StateMachine (e.g. the counter service) through the full harness.
  std::function<std::unique_ptr<app::StateMachine>()> store_factory;

  /// Optional override of the acceptance test for IDEM-family protocols
  /// (invoked once per replica). Defaults to the protocol's standard test
  /// (AQM / tail drop / never-reject).
  std::function<std::unique_ptr<core::AcceptanceTest>(std::size_t replica)>
      acceptance_factory;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  const ClusterConfig& config() const { return config_; }
  sim::Simulator& simulator() { return *sim_; }
  sim::SimNetwork& network() { return *net_; }

  /// Trace recorder shared by every replica and client, or nullptr when
  /// tracing is disabled (ObsConfig::trace == false).
  obs::TraceRecorder* trace() { return trace_.get(); }
  /// Metrics registry sampled on the simulated-time tick, or nullptr when
  /// ObsConfig::metrics_interval == 0.
  obs::MetricsRegistry* metrics() { return metrics_.get(); }

  std::size_t num_clients() const { return clients_.size(); }
  consensus::ServiceClient& client(std::size_t index) { return *clients_[index]; }

  /// Crashes replica `index` immediately.
  void crash_replica(std::size_t index);
  /// Restarts a crashed replica (durable state intact; see Node::restart).
  void restart_replica(std::size_t index);

  /// Arms a declarative fault schedule: every fault is scheduled at
  /// `offset + fault.at` and fires against this cluster (leader-relative
  /// targets resolve when the fault fires). May be called repeatedly and
  /// mid-run; windowed faults revert themselves.
  void apply(const sim::FaultPlan& plan, Time offset = 0);

  /// Index of the replica currently believing itself leader (first match).
  std::size_t leader_index() const;

  // Typed accessors (nullptr when the protocol does not match).
  core::IdemReplica* idem_replica(std::size_t index);
  paxos::PaxosReplica* paxos_replica(std::size_t index);
  smart::SmartReplica* smart_replica(std::size_t index);
  smart::SmartPrReplica* smart_pr_replica(std::size_t index);

 private:
  std::unique_ptr<app::StateMachine> make_store();
  void register_metrics();

  ClusterConfig config_;
  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<sim::SimNetwork> net_;
  std::unique_ptr<obs::TraceRecorder> trace_;
  std::unique_ptr<obs::MetricsRegistry> metrics_;
  std::unique_ptr<obs::MetricsTicker> metrics_ticker_;
  std::vector<std::unique_ptr<sim::Node>> replicas_;
  std::vector<std::unique_ptr<sim::Node>> client_nodes_;
  std::vector<consensus::ServiceClient*> clients_;
  std::vector<std::byte> preload_snapshot_;
};

}  // namespace idem::harness
