#include "harness/driver.hpp"

#include <string>

namespace idem::harness {

ClosedLoopDriver::ClosedLoopDriver(Cluster& cluster, DriverConfig config)
    : cluster_(cluster), config_(config) {
  metrics_.reply_series = TimeSeries(config_.series_window);
  metrics_.reject_series = TimeSeries(config_.series_window);
  states_.resize(cluster_.num_clients());
  for (std::size_t i = 0; i < states_.size(); ++i) {
    Rng& rng = cluster_.simulator().rng("ycsb.client." + std::to_string(i));
    states_[i].workload =
        std::make_unique<app::YcsbWorkload>(cluster_.config().workload, rng);
    states_[i].backoff_rng =
        &cluster_.simulator().rng("backoff.client." + std::to_string(i));
    if (cluster_.config().request_deadline > 0) {
      states_[i].deadline_rng =
          &cluster_.simulator().rng("deadline.client." + std::to_string(i));
    }
  }
}

bool ClosedLoopDriver::in_measurement(Time t) const {
  if (config_.stop_after_replies > 0) return true;
  return t >= measure_start_ && t < measure_end_;
}

void ClosedLoopDriver::issue(std::size_t index) {
  if (stopping_) return;
  consensus::ServiceClient& client = cluster_.client(index);
  if (client.busy()) return;
  app::KvCommand op = states_[index].workload->next_operation();
  const Duration base_deadline = cluster_.config().request_deadline;
  if (base_deadline > 0) {
    Duration deadline = base_deadline;
    const Duration jitter = cluster_.config().deadline_jitter;
    if (jitter > 0) {
      deadline += static_cast<Duration>(
                      states_[index].deadline_rng->uniform_int(0, 2 * jitter)) -
                  jitter;
      if (deadline < 1) deadline = 1;
    }
    client.set_request_deadline(deadline);
  }
  client.invoke(op.encode(), [this, index](const consensus::Outcome& outcome) {
    on_outcome(index, outcome);
  });
}

void ClosedLoopDriver::on_outcome(std::size_t index, const consensus::Outcome& outcome) {
  sim::Simulator& sim = cluster_.simulator();
  const Time t = outcome.completed;
  const double latency_ms = to_ms(outcome.latency());

  switch (outcome.kind) {
    case consensus::Outcome::Kind::Reply:
      ++total_replies_;
      metrics_.reply_series.add(t, latency_ms);
      if (in_measurement(t)) {
        ++metrics_.replies;
        metrics_.reply_latency.record(outcome.latency());
        if (outcome.deadline > 0) {
          ++metrics_.deadline_ops;
          if (outcome.deadline_missed()) ++metrics_.deadline_misses;
        }
      }
      break;
    case consensus::Outcome::Kind::Rejected:
      metrics_.reject_series.add(t, latency_ms);
      if (in_measurement(t)) {
        ++metrics_.rejects;
        metrics_.reject_latency.record(outcome.latency());
      }
      break;
    case consensus::Outcome::Kind::Timeout:
      if (in_measurement(t)) ++metrics_.timeouts;
      break;
  }

  Duration delay = config_.think_time;
  if (outcome.kind != consensus::Outcome::Kind::Reply) {
    // The client learned the system is loaded: delay the next operation
    // (random 50-100 ms, Section 7.1).
    Rng& rng = *states_[index].backoff_rng;
    delay += config_.backoff_min +
             static_cast<Duration>(rng.uniform_int(0, config_.backoff_max - config_.backoff_min));
  }
  if (delay > 0) {
    sim.schedule_after(delay, [this, index] { issue(index); });
  } else {
    // Re-issue via the event queue to keep the call stack flat.
    sim.schedule_after(0, [this, index] { issue(index); });
  }
}

RunMetrics ClosedLoopDriver::run() {
  sim::Simulator& sim = cluster_.simulator();
  sim::SimNetwork& net = cluster_.network();

  measure_start_ = sim.now() + config_.warmup;
  measure_end_ = measure_start_ + config_.measure;

  for (std::size_t i = 0; i < states_.size(); ++i) {
    // Stagger client start-up within the first millisecond so the initial
    // request burst does not arrive as one synchronized wave.
    Rng& rng = sim.rng("start.client." + std::to_string(i));
    sim.schedule_after(rng.uniform_int(0, kMillisecond), [this, i] { issue(i); });
  }

  if (config_.stop_after_replies > 0) {
    net.reset_traffic();
    sim.run_while([this] { return total_replies_ < config_.stop_after_replies; });
    metrics_.measured = sim.now() > 0 ? sim.now() : 1;
    metrics_.client_traffic = net.client_traffic();
    metrics_.replica_traffic = net.replica_traffic();
  } else {
    sim.run_until(measure_start_);
    net.reset_traffic();
    sim.run_until(measure_end_);
    metrics_.measured = config_.measure;
    metrics_.client_traffic = net.client_traffic();
    metrics_.replica_traffic = net.replica_traffic();
    // Let timelines extend past the measurement window if the experiment
    // scheduled events (e.g. crashes) beyond it.
  }
  stopping_ = true;
  return std::move(metrics_);
}

}  // namespace idem::harness
