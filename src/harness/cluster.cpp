#include "harness/cluster.hpp"

#include <cassert>

#include "idem/acceptance.hpp"

namespace idem::harness {

const char* protocol_name(Protocol protocol) {
  switch (protocol) {
    case Protocol::Idem: return "IDEM";
    case Protocol::IdemNoPR: return "IDEM_noPR";
    case Protocol::IdemNoAQM: return "IDEM_noAQM";
    case Protocol::Paxos: return "Paxos";
    case Protocol::PaxosLBR: return "Paxos_LBR";
    case Protocol::Smart: return "BFT-SMaRt";
    case Protocol::SmartPR: return "SMaRt+PR";
  }
  return "?";
}

Cluster::Cluster(ClusterConfig config) : config_(std::move(config)) {
  sim_ = std::make_unique<sim::Simulator>(config_.seed);
  net_ = std::make_unique<sim::SimNetwork>(*sim_, config_.network);
  if (config_.obs.trace) {
    trace_ = std::make_unique<obs::TraceRecorder>(config_.obs.trace_capacity);
  }

  // Preload the key-value store once and snapshot it, so every replica
  // starts from the identical state without replaying the load phase.
  if (config_.preload && !config_.store_factory) {
    app::KvStore loader(config_.kv_costs);
    Rng rng(config_.seed, /*stream=*/0x10adull);
    app::YcsbWorkload workload(config_.workload, rng);
    for (const app::KvCommand& cmd : workload.load_phase()) {
      loader.put(cmd.key, cmd.value);
    }
    preload_snapshot_ = loader.snapshot();
  }

  const std::size_t n = config_.n;
  // Cluster-level batching overrides (zero keeps the protocol default).
  auto apply_batching = [this](auto& rc) {
    if (config_.batch_max > 0) rc.batch_max = config_.batch_max;
    if (config_.batch_min > 0) rc.batch_min = config_.batch_min;
    if (config_.batch_flush_delay > 0) rc.batch_flush_delay = config_.batch_flush_delay;
  };
  switch (config_.protocol) {
    case Protocol::Idem:
    case Protocol::IdemNoPR:
    case Protocol::IdemNoAQM: {
      core::IdemConfig rc = config_.idem;
      apply_batching(rc);
      rc.n = n;
      rc.f = config_.f;
      rc.reject_threshold = config_.reject_threshold;
      rc.trace = trace_.get();
      for (std::size_t i = 0; i < n; ++i) {
        std::unique_ptr<core::AcceptanceTest> test;
        if (config_.acceptance_factory) {
          test = config_.acceptance_factory(i);
        } else {
          switch (config_.protocol) {
            case Protocol::Idem:
              test = core::make_default_acceptance(rc, config_.clients);
              break;
            case Protocol::IdemNoPR:
              test = std::make_unique<core::NeverReject>();
              break;
            default:
              test = std::make_unique<core::TailDrop>();
              break;
          }
        }
        replicas_.push_back(std::make_unique<core::IdemReplica>(
            *sim_, *net_, ReplicaId{static_cast<std::uint32_t>(i)}, rc, make_store(),
            std::move(test)));
      }
      core::IdemClientConfig cc = config_.idem_client;
      cc.n = n;
      cc.f = config_.f;
      cc.trace = trace_.get();
      for (std::size_t i = 0; i < config_.clients; ++i) {
        auto client = std::make_unique<core::IdemClient>(*sim_, *net_, ClientId{i}, cc);
        clients_.push_back(client.get());
        client_nodes_.push_back(std::move(client));
      }
      break;
    }
    case Protocol::Paxos:
    case Protocol::PaxosLBR: {
      paxos::PaxosConfig rc = config_.paxos;
      apply_batching(rc);
      rc.n = n;
      rc.f = config_.f;
      rc.reject_threshold =
          config_.protocol == Protocol::PaxosLBR ? config_.reject_threshold : 0;
      rc.trace = trace_.get();
      for (std::size_t i = 0; i < n; ++i) {
        replicas_.push_back(std::make_unique<paxos::PaxosReplica>(
            *sim_, *net_, ReplicaId{static_cast<std::uint32_t>(i)}, rc, make_store()));
      }
      paxos::PaxosClientConfig cc = config_.paxos_client;
      cc.n = n;
      cc.trace = trace_.get();
      for (std::size_t i = 0; i < config_.clients; ++i) {
        auto client = std::make_unique<paxos::PaxosClient>(*sim_, *net_, ClientId{i}, cc);
        clients_.push_back(client.get());
        client_nodes_.push_back(std::move(client));
      }
      break;
    }
    case Protocol::SmartPR: {
      smart::SmartPrConfig rc = config_.smart_pr;
      apply_batching(rc);
      rc.n = n;
      rc.f = config_.f;
      rc.reject_threshold = config_.reject_threshold;
      rc.trace = trace_.get();
      core::IdemConfig acceptance_params = config_.idem;
      acceptance_params.n = n;
      acceptance_params.f = config_.f;
      acceptance_params.reject_threshold = config_.reject_threshold;
      for (std::size_t i = 0; i < n; ++i) {
        std::unique_ptr<core::AcceptanceTest> test =
            config_.acceptance_factory
                ? config_.acceptance_factory(i)
                : core::make_default_acceptance(acceptance_params, config_.clients);
        replicas_.push_back(std::make_unique<smart::SmartPrReplica>(
            *sim_, *net_, ReplicaId{static_cast<std::uint32_t>(i)}, rc, make_store(),
            std::move(test)));
      }
      // SMaRt clients multicast; the reject-quorum client is IDEM's.
      core::IdemClientConfig cc = config_.idem_client;
      cc.n = n;
      cc.f = config_.f;
      cc.trace = trace_.get();
      for (std::size_t i = 0; i < config_.clients; ++i) {
        auto client = std::make_unique<core::IdemClient>(*sim_, *net_, ClientId{i}, cc);
        clients_.push_back(client.get());
        client_nodes_.push_back(std::move(client));
      }
      break;
    }
    case Protocol::Smart: {
      smart::SmartConfig rc = config_.smart;
      apply_batching(rc);
      rc.n = n;
      rc.f = config_.f;
      rc.trace = trace_.get();
      for (std::size_t i = 0; i < n; ++i) {
        replicas_.push_back(std::make_unique<smart::SmartReplica>(
            *sim_, *net_, ReplicaId{static_cast<std::uint32_t>(i)}, rc, make_store()));
      }
      smart::SmartClientConfig cc = config_.smart_client;
      cc.n = n;
      cc.trace = trace_.get();
      for (std::size_t i = 0; i < config_.clients; ++i) {
        auto client = std::make_unique<smart::SmartClient>(*sim_, *net_, ClientId{i}, cc);
        clients_.push_back(client.get());
        client_nodes_.push_back(std::move(client));
      }
      break;
    }
  }

  if (config_.discipline != sim::DisciplineKind::Fifo) {
    for (auto& replica : replicas_) {
      replica->set_discipline(sim::make_discipline(config_.discipline));
    }
  }

  if (config_.obs.metrics_interval > 0) {
    metrics_ = std::make_unique<obs::MetricsRegistry>();
    register_metrics();
    metrics_ticker_ = std::make_unique<obs::MetricsTicker>(*sim_, *metrics_,
                                                           config_.obs.metrics_interval);
    metrics_ticker_->start();
  }
}

Cluster::~Cluster() = default;

void Cluster::register_metrics() {
  obs::MetricsRegistry& reg = *metrics_;
  reg.add_gauge("net.dropped",
                [this] { return static_cast<double>(net_->dropped_messages()); });
  reg.add_gauge("net.client_bytes",
                [this] { return static_cast<double>(net_->client_traffic().bytes); });
  reg.add_gauge("net.replica_bytes",
                [this] { return static_cast<double>(net_->replica_traffic().bytes); });

  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    const std::string p = "r" + std::to_string(i);
    sim::Node* node = replicas_[i].get();
    reg.add_gauge(p + ".queue",
                  [node] { return static_cast<double>(node->queue_length()); });
    reg.add_gauge(p + ".tx_bytes", [this, node] {
      const sim::TrafficStats* t = net_->node_traffic(node->id());
      return t != nullptr ? static_cast<double>(t->bytes) : 0.0;
    });
    reg.add_gauge(p + ".tx_msgs", [this, node] {
      const sim::TrafficStats* t = net_->node_traffic(node->id());
      return t != nullptr ? static_cast<double>(t->messages) : 0.0;
    });

    if (auto* r = dynamic_cast<core::IdemReplica*>(node)) {
      reg.add_gauge(p + ".inflight",
                    [r] { return static_cast<double>(r->active_requests()); });
      reg.add_gauge(p + ".accepted",
                    [r] { return static_cast<double>(r->stats().accepted); });
      reg.add_gauge(p + ".rejected",
                    [r] { return static_cast<double>(r->stats().rejected); });
      reg.add_gauge(p + ".executed",
                    [r] { return static_cast<double>(r->stats().executed); });
      reg.add_gauge(p + ".view_changes",
                    [r] { return static_cast<double>(r->stats().view_changes); });
    } else if (auto* px = dynamic_cast<paxos::PaxosReplica*>(node)) {
      reg.add_gauge(p + ".inflight",
                    [px] { return static_cast<double>(px->backlog()); });
      reg.add_gauge(p + ".accepted",
                    [px] { return static_cast<double>(px->stats().accepted); });
      reg.add_gauge(p + ".rejected",
                    [px] { return static_cast<double>(px->stats().rejected); });
      reg.add_gauge(p + ".executed",
                    [px] { return static_cast<double>(px->stats().executed); });
      reg.add_gauge(p + ".view_changes",
                    [px] { return static_cast<double>(px->stats().view_changes); });
    } else if (auto* spr = dynamic_cast<smart::SmartPrReplica*>(node)) {
      reg.add_gauge(p + ".inflight",
                    [spr] { return static_cast<double>(spr->active_requests()); });
      reg.add_gauge(p + ".accepted",
                    [spr] { return static_cast<double>(spr->stats().accepted); });
      reg.add_gauge(p + ".rejected",
                    [spr] { return static_cast<double>(spr->stats().rejected); });
      reg.add_gauge(p + ".executed",
                    [spr] { return static_cast<double>(spr->stats().executed); });
    } else if (auto* s = dynamic_cast<smart::SmartReplica*>(node)) {
      reg.add_gauge(p + ".inflight",
                    [s] { return static_cast<double>(s->backlog()); });
      reg.add_gauge(p + ".executed",
                    [s] { return static_cast<double>(s->stats().executed); });
    }
  }
  reg.reserve_samples(config_.obs.metrics_reserve);
}

std::unique_ptr<app::StateMachine> Cluster::make_store() {
  if (config_.store_factory) return config_.store_factory();
  auto store = std::make_unique<app::KvStore>(config_.kv_costs);
  if (!preload_snapshot_.empty()) store->restore(preload_snapshot_);
  return store;
}

void Cluster::crash_replica(std::size_t index) {
  assert(index < replicas_.size());
  replicas_[index]->crash();
}

void Cluster::restart_replica(std::size_t index) {
  assert(index < replicas_.size());
  replicas_[index]->restart();
}

namespace {

/// Mutable context shared by every scheduled fault of one apply() call.
struct PlanState {
  int last_crashed = -1;
};

sim::NodeId fault_address(std::uint32_t endpoint) {
  return sim::fault_endpoint_is_client(endpoint)
             ? consensus::client_address(ClientId{sim::fault_endpoint_index(endpoint)})
             : consensus::replica_address(ReplicaId{sim::fault_endpoint_index(endpoint)});
}

std::vector<sim::NodeId> fault_addresses(const std::vector<std::uint32_t>& side) {
  std::vector<sim::NodeId> out;
  out.reserve(side.size());
  for (std::uint32_t e : side) out.push_back(fault_address(e));
  return out;
}

}  // namespace

void Cluster::apply(const sim::FaultPlan& plan, Time offset) {
  auto state = std::make_shared<PlanState>();

  auto resolve_target = [this, state](std::int32_t target) -> std::size_t {
    if (target == sim::Fault::kLeader) return leader_index();
    if (target == sim::Fault::kFollower) return (leader_index() + 1) % config_.n;
    if (target == sim::Fault::kLastCrashed) {
      return state->last_crashed >= 0 ? static_cast<std::size_t>(state->last_crashed) : 0;
    }
    return static_cast<std::size_t>(target);
  };

  for (const sim::Fault& fault : plan.faults) {
    sim_->schedule_at(offset + fault.at, [this, state, resolve_target, fault] {
      switch (fault.kind) {
        case sim::Fault::Kind::Crash: {
          std::size_t victim = resolve_target(fault.replica);
          if (victim >= replicas_.size() || replicas_[victim]->crashed()) return;
          replicas_[victim]->crash();
          state->last_crashed = static_cast<int>(victim);
          break;
        }
        case sim::Fault::Kind::Recover: {
          std::size_t victim = resolve_target(fault.replica);
          if (victim < replicas_.size()) replicas_[victim]->restart();
          break;
        }
        case sim::Fault::Kind::Partition:
        case sim::Fault::Kind::PartitionOneWay: {
          auto a = fault_addresses(fault.side_a);
          auto b = fault_addresses(fault.side_b);
          bool one_way = fault.kind == sim::Fault::Kind::PartitionOneWay;
          if (one_way) {
            net_->partition_one_way(a, b);
          } else {
            net_->partition(a, b);
          }
          if (fault.duration > 0) {
            sim_->schedule_after(fault.duration, [this, a, b, one_way] {
              for (sim::NodeId from : a) {
                for (sim::NodeId to : b) {
                  net_->unblock_link(from, to);
                  if (!one_way) net_->unblock_link(to, from);
                }
              }
            });
          }
          break;
        }
        case sim::Fault::Kind::Heal:
          net_->heal();
          break;
        case sim::Fault::Kind::DelaySpike: {
          if (fault.magnitude <= 0) return;
          net_->set_latency_factor(net_->latency_factor() * fault.magnitude);
          if (fault.duration > 0) {
            sim_->schedule_after(fault.duration, [this, m = fault.magnitude] {
              net_->set_latency_factor(net_->latency_factor() / m);
            });
          }
          break;
        }
        case sim::Fault::Kind::DropBurst: {
          // Track the increment actually applied so overlapping bursts (and
          // the 1.0 clamp) revert exactly.
          double current = net_->config().drop_probability;
          double applied = fault.magnitude;
          if (current + applied > 1.0) applied = 1.0 - current;
          if (applied <= 0) return;
          net_->set_drop_probability(current + applied);
          if (fault.duration > 0) {
            sim_->schedule_after(fault.duration, [this, applied] {
              double q = net_->config().drop_probability - applied;
              net_->set_drop_probability(q < 0.0 ? 0.0 : q);
            });
          }
          break;
        }
      }
    });
  }
}

std::size_t Cluster::leader_index() const {
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (replicas_[i]->crashed()) continue;
    if (const auto* r = dynamic_cast<const core::IdemReplica*>(replicas_[i].get())) {
      if (r->is_leader()) return i;
    } else if (const auto* p = dynamic_cast<const paxos::PaxosReplica*>(replicas_[i].get())) {
      if (p->is_leader()) return i;
    } else if (const auto* s = dynamic_cast<const smart::SmartReplica*>(replicas_[i].get())) {
      if (s->is_leader()) return i;
    }
  }
  return 0;
}

core::IdemReplica* Cluster::idem_replica(std::size_t index) {
  return dynamic_cast<core::IdemReplica*>(replicas_[index].get());
}

paxos::PaxosReplica* Cluster::paxos_replica(std::size_t index) {
  return dynamic_cast<paxos::PaxosReplica*>(replicas_[index].get());
}

smart::SmartReplica* Cluster::smart_replica(std::size_t index) {
  return dynamic_cast<smart::SmartReplica*>(replicas_[index].get());
}

smart::SmartPrReplica* Cluster::smart_pr_replica(std::size_t index) {
  return dynamic_cast<smart::SmartPrReplica*>(replicas_[index].get());
}

}  // namespace idem::harness
