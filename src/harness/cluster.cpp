#include "harness/cluster.hpp"

#include <cassert>

namespace idem::harness {

const char* protocol_name(Protocol protocol) {
  switch (protocol) {
    case Protocol::Idem: return "IDEM";
    case Protocol::IdemNoPR: return "IDEM_noPR";
    case Protocol::IdemNoAQM: return "IDEM_noAQM";
    case Protocol::Paxos: return "Paxos";
    case Protocol::PaxosLBR: return "Paxos_LBR";
    case Protocol::Smart: return "BFT-SMaRt";
    case Protocol::SmartPR: return "SMaRt+PR";
  }
  return "?";
}

Cluster::Cluster(ClusterConfig config) : config_(std::move(config)) {
  sim_ = std::make_unique<sim::Simulator>(config_.seed);
  net_ = std::make_unique<sim::SimNetwork>(*sim_, config_.network);
  if (config_.obs.trace) {
    trace_ = std::make_unique<obs::TraceRecorder>(config_.obs.trace_capacity);
  }

  // Preload the key-value store once and snapshot it, so every replica
  // starts from the identical state without replaying the load phase.
  if (config_.preload) {
    app::KvStore loader(config_.kv_costs);
    Rng rng(config_.seed, /*stream=*/0x10adull);
    app::YcsbWorkload workload(config_.workload, rng);
    for (const app::KvCommand& cmd : workload.load_phase()) {
      loader.put(cmd.key, cmd.value);
    }
    preload_snapshot_ = loader.snapshot();
  }

  const std::size_t n = config_.n;
  switch (config_.protocol) {
    case Protocol::Idem:
    case Protocol::IdemNoPR:
    case Protocol::IdemNoAQM: {
      core::IdemConfig rc = config_.idem;
      rc.n = n;
      rc.f = config_.f;
      rc.reject_threshold = config_.reject_threshold;
      rc.trace = trace_.get();
      for (std::size_t i = 0; i < n; ++i) {
        std::unique_ptr<core::AcceptanceTest> test;
        if (config_.acceptance_factory) {
          test = config_.acceptance_factory(i);
        } else {
          switch (config_.protocol) {
            case Protocol::Idem:
              test = core::make_default_acceptance(rc, config_.clients);
              break;
            case Protocol::IdemNoPR:
              test = std::make_unique<core::NeverReject>();
              break;
            default:
              test = std::make_unique<core::TailDrop>();
              break;
          }
        }
        replicas_.push_back(std::make_unique<core::IdemReplica>(
            *sim_, *net_, ReplicaId{static_cast<std::uint32_t>(i)}, rc, make_store(),
            std::move(test)));
      }
      core::IdemClientConfig cc = config_.idem_client;
      cc.n = n;
      cc.f = config_.f;
      cc.trace = trace_.get();
      for (std::size_t i = 0; i < config_.clients; ++i) {
        auto client = std::make_unique<core::IdemClient>(*sim_, *net_, ClientId{i}, cc);
        clients_.push_back(client.get());
        client_nodes_.push_back(std::move(client));
      }
      break;
    }
    case Protocol::Paxos:
    case Protocol::PaxosLBR: {
      paxos::PaxosConfig rc = config_.paxos;
      rc.n = n;
      rc.f = config_.f;
      rc.reject_threshold =
          config_.protocol == Protocol::PaxosLBR ? config_.reject_threshold : 0;
      rc.trace = trace_.get();
      for (std::size_t i = 0; i < n; ++i) {
        replicas_.push_back(std::make_unique<paxos::PaxosReplica>(
            *sim_, *net_, ReplicaId{static_cast<std::uint32_t>(i)}, rc, make_store()));
      }
      paxos::PaxosClientConfig cc = config_.paxos_client;
      cc.n = n;
      cc.trace = trace_.get();
      for (std::size_t i = 0; i < config_.clients; ++i) {
        auto client = std::make_unique<paxos::PaxosClient>(*sim_, *net_, ClientId{i}, cc);
        clients_.push_back(client.get());
        client_nodes_.push_back(std::move(client));
      }
      break;
    }
    case Protocol::SmartPR: {
      smart::SmartPrConfig rc = config_.smart_pr;
      rc.n = n;
      rc.f = config_.f;
      rc.reject_threshold = config_.reject_threshold;
      rc.trace = trace_.get();
      core::IdemConfig acceptance_params = config_.idem;
      acceptance_params.n = n;
      acceptance_params.f = config_.f;
      acceptance_params.reject_threshold = config_.reject_threshold;
      for (std::size_t i = 0; i < n; ++i) {
        std::unique_ptr<core::AcceptanceTest> test =
            config_.acceptance_factory
                ? config_.acceptance_factory(i)
                : core::make_default_acceptance(acceptance_params, config_.clients);
        replicas_.push_back(std::make_unique<smart::SmartPrReplica>(
            *sim_, *net_, ReplicaId{static_cast<std::uint32_t>(i)}, rc, make_store(),
            std::move(test)));
      }
      // SMaRt clients multicast; the reject-quorum client is IDEM's.
      core::IdemClientConfig cc = config_.idem_client;
      cc.n = n;
      cc.f = config_.f;
      cc.trace = trace_.get();
      for (std::size_t i = 0; i < config_.clients; ++i) {
        auto client = std::make_unique<core::IdemClient>(*sim_, *net_, ClientId{i}, cc);
        clients_.push_back(client.get());
        client_nodes_.push_back(std::move(client));
      }
      break;
    }
    case Protocol::Smart: {
      smart::SmartConfig rc = config_.smart;
      rc.n = n;
      rc.f = config_.f;
      rc.trace = trace_.get();
      for (std::size_t i = 0; i < n; ++i) {
        replicas_.push_back(std::make_unique<smart::SmartReplica>(
            *sim_, *net_, ReplicaId{static_cast<std::uint32_t>(i)}, rc, make_store()));
      }
      smart::SmartClientConfig cc = config_.smart_client;
      cc.n = n;
      cc.trace = trace_.get();
      for (std::size_t i = 0; i < config_.clients; ++i) {
        auto client = std::make_unique<smart::SmartClient>(*sim_, *net_, ClientId{i}, cc);
        clients_.push_back(client.get());
        client_nodes_.push_back(std::move(client));
      }
      break;
    }
  }

  if (config_.obs.metrics_interval > 0) {
    metrics_ = std::make_unique<obs::MetricsRegistry>();
    register_metrics();
    schedule_metrics_tick();
  }
}

Cluster::~Cluster() = default;

void Cluster::register_metrics() {
  obs::MetricsRegistry& reg = *metrics_;
  reg.add_gauge("net.dropped",
                [this] { return static_cast<double>(net_->dropped_messages()); });
  reg.add_gauge("net.client_bytes",
                [this] { return static_cast<double>(net_->client_traffic().bytes); });
  reg.add_gauge("net.replica_bytes",
                [this] { return static_cast<double>(net_->replica_traffic().bytes); });

  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    const std::string p = "r" + std::to_string(i);
    sim::Node* node = replicas_[i].get();
    reg.add_gauge(p + ".queue",
                  [node] { return static_cast<double>(node->queue_length()); });
    reg.add_gauge(p + ".tx_bytes", [this, node] {
      const sim::TrafficStats* t = net_->node_traffic(node->id());
      return t != nullptr ? static_cast<double>(t->bytes) : 0.0;
    });
    reg.add_gauge(p + ".tx_msgs", [this, node] {
      const sim::TrafficStats* t = net_->node_traffic(node->id());
      return t != nullptr ? static_cast<double>(t->messages) : 0.0;
    });

    if (auto* r = dynamic_cast<core::IdemReplica*>(node)) {
      reg.add_gauge(p + ".inflight",
                    [r] { return static_cast<double>(r->active_requests()); });
      reg.add_gauge(p + ".accepted",
                    [r] { return static_cast<double>(r->stats().accepted); });
      reg.add_gauge(p + ".rejected",
                    [r] { return static_cast<double>(r->stats().rejected); });
      reg.add_gauge(p + ".executed",
                    [r] { return static_cast<double>(r->stats().executed); });
      reg.add_gauge(p + ".view_changes",
                    [r] { return static_cast<double>(r->stats().view_changes); });
    } else if (auto* px = dynamic_cast<paxos::PaxosReplica*>(node)) {
      reg.add_gauge(p + ".inflight",
                    [px] { return static_cast<double>(px->backlog()); });
      reg.add_gauge(p + ".accepted",
                    [px] { return static_cast<double>(px->stats().accepted); });
      reg.add_gauge(p + ".rejected",
                    [px] { return static_cast<double>(px->stats().rejected); });
      reg.add_gauge(p + ".executed",
                    [px] { return static_cast<double>(px->stats().executed); });
      reg.add_gauge(p + ".view_changes",
                    [px] { return static_cast<double>(px->stats().view_changes); });
    } else if (auto* spr = dynamic_cast<smart::SmartPrReplica*>(node)) {
      reg.add_gauge(p + ".inflight",
                    [spr] { return static_cast<double>(spr->active_requests()); });
      reg.add_gauge(p + ".accepted",
                    [spr] { return static_cast<double>(spr->stats().accepted); });
      reg.add_gauge(p + ".rejected",
                    [spr] { return static_cast<double>(spr->stats().rejected); });
      reg.add_gauge(p + ".executed",
                    [spr] { return static_cast<double>(spr->stats().executed); });
    } else if (auto* s = dynamic_cast<smart::SmartReplica*>(node)) {
      reg.add_gauge(p + ".inflight",
                    [s] { return static_cast<double>(s->backlog()); });
      reg.add_gauge(p + ".executed",
                    [s] { return static_cast<double>(s->stats().executed); });
    }
  }
  reg.reserve_samples(config_.obs.metrics_reserve);
}

void Cluster::schedule_metrics_tick() {
  sim_->schedule_after(config_.obs.metrics_interval, [this] {
    metrics_->sample(sim_->now());
    schedule_metrics_tick();
  });
}

std::unique_ptr<app::StateMachine> Cluster::make_store() {
  auto store = std::make_unique<app::KvStore>(config_.kv_costs);
  if (!preload_snapshot_.empty()) store->restore(preload_snapshot_);
  return store;
}

void Cluster::crash_replica(std::size_t index) {
  assert(index < replicas_.size());
  replicas_[index]->crash();
}

void Cluster::crash_replica_at(std::size_t index, Time at) {
  assert(index < replicas_.size());
  sim::Node* node = replicas_[index].get();
  sim_->schedule_at(at, [node] { node->crash(); });
}

std::size_t Cluster::leader_index() const {
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (replicas_[i]->crashed()) continue;
    if (const auto* r = dynamic_cast<const core::IdemReplica*>(replicas_[i].get())) {
      if (r->is_leader()) return i;
    } else if (const auto* p = dynamic_cast<const paxos::PaxosReplica*>(replicas_[i].get())) {
      if (p->is_leader()) return i;
    } else if (const auto* s = dynamic_cast<const smart::SmartReplica*>(replicas_[i].get())) {
      if (s->is_leader()) return i;
    }
  }
  return 0;
}

core::IdemReplica* Cluster::idem_replica(std::size_t index) {
  return dynamic_cast<core::IdemReplica*>(replicas_[index].get());
}

paxos::PaxosReplica* Cluster::paxos_replica(std::size_t index) {
  return dynamic_cast<paxos::PaxosReplica*>(replicas_[index].get());
}

smart::SmartReplica* Cluster::smart_replica(std::size_t index) {
  return dynamic_cast<smart::SmartReplica*>(replicas_[index].get());
}

smart::SmartPrReplica* Cluster::smart_pr_replica(std::size_t index) {
  return dynamic_cast<smart::SmartPrReplica*>(replicas_[index].get());
}

}  // namespace idem::harness
