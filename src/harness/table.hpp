// Fixed-width table printer for benchmark output.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace idem::harness {

/// Collects rows of strings and prints them as an aligned table with a
/// header row, plus (optionally) as CSV for plotting.
class Table {
 public:
  explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}

  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void print(std::FILE* out = stdout) const;
  void print_csv(std::FILE* out = stdout) const;

  static std::string fmt(double value, int precision = 2);
  static std::string fmt(std::uint64_t value);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace idem::harness
