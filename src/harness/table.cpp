#include "harness/table.hpp"

#include <algorithm>
#include <cinttypes>

namespace idem::harness {

std::string Table::fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string Table::fmt(std::uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  return buf;
}

void Table::print(std::FILE* out) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      std::fprintf(out, "%c %-*s", c == 0 ? '|' : '|', static_cast<int>(widths[c]),
                   cell.c_str());
      std::fputc(' ', out);
    }
    std::fprintf(out, "|\n");
  };
  print_row(header_);
  for (std::size_t c = 0; c < widths.size(); ++c) {
    std::fputc('|', out);
    for (std::size_t i = 0; i < widths[c] + 2; ++i) std::fputc('-', out);
  }
  std::fprintf(out, "|\n");
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::FILE* out) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::fprintf(out, "%s%s", c == 0 ? "" : ",", row[c].c_str());
    }
    std::fputc('\n', out);
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace idem::harness
