#include "common/timeseries.hpp"

namespace idem {

TimeSeries::TimeSeries(Duration window) : window_(window > 0 ? window : kMillisecond) {}

void TimeSeries::add(Time t, double value) {
  if (t < 0) t = 0;
  auto idx = static_cast<std::size_t>(t / window_);
  if (idx >= buckets_.size()) {
    std::size_t old = buckets_.size();
    buckets_.resize(idx + 1);
    for (std::size_t i = old; i < buckets_.size(); ++i) {
      buckets_[i].window_start = static_cast<Time>(i) * window_;
    }
  }
  Row& row = buckets_[idx];
  if (row.count == 0) {
    row.value_min = row.value_max = value;
  } else {
    if (value < row.value_min) row.value_min = value;
    if (value > row.value_max) row.value_max = value;
  }
  row.count += 1;
  row.value_sum += value;
  total_ += 1;
}

std::vector<TimeSeries::Row> TimeSeries::rows() const { return buckets_; }

}  // namespace idem
