// Log-bucketed latency histogram (HdrHistogram-style).
//
// Records durations with bounded relative error and answers percentile,
// mean and standard-deviation queries. Used by the harness for every
// latency series the paper reports (averages with stddev error bars,
// plateaus, tail percentiles).
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.hpp"

namespace idem {

class Histogram {
 public:
  /// Buckets cover [1ns, ~9.2e18ns] with ~1.5% relative error
  /// (64 major buckets x 32 minor buckets).
  Histogram();

  void record(Duration value);
  void record_n(Duration value, std::uint64_t count);

  /// Merges another histogram into this one (used to combine per-client
  /// recorders into one experiment-wide distribution).
  void merge(const Histogram& other);

  /// Distribution of everything recorded here but not in `earlier`, where
  /// `earlier` is a past copy of this histogram (windowed snapshots:
  /// current minus previous = the last window). Counts, sums and buckets
  /// subtract exactly; min/max are approximated from the first/last
  /// nonzero delta bucket's edges (the true extremes of only-the-window
  /// are not recoverable from two cumulative states). quantile(), count()
  /// and mean() on the result are exact up to bucket resolution.
  Histogram delta(const Histogram& earlier) const;

  std::uint64_t count() const { return count_; }
  Duration min() const { return count_ ? min_ : 0; }
  Duration max() const { return count_ ? max_ : 0; }
  double mean() const;
  double stddev() const;

  /// Value at quantile q in [0, 1]; returns 0 for an empty histogram.
  /// The returned value is the upper edge of the containing bucket, so it
  /// never under-reports by more than the bucket's relative error.
  Duration quantile(double q) const;

  Duration p50() const { return quantile(0.50); }
  Duration p90() const { return quantile(0.90); }
  Duration p99() const { return quantile(0.99); }
  Duration p999() const { return quantile(0.999); }

  void clear();

 private:
  static constexpr int kMinorBits = 5;
  static constexpr std::uint32_t kMinor = 1u << kMinorBits;

  static std::uint32_t bucket_index(std::uint64_t v);
  static std::uint64_t bucket_upper_edge(std::uint32_t index);

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  Duration min_ = 0;
  Duration max_ = 0;
  double sum_ = 0;
  double sum_sq_ = 0;
};

}  // namespace idem
