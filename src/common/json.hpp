// Minimal JSON reader/writer for the repo's tooling artifacts (fault-plan
// replay files, chaos-run corpora). Hand-rolled on purpose: the container
// has no JSON dependency, the schemas are ours, and the parser only needs
// to be strict enough to round-trip what JsonWriter emits (objects, arrays,
// strings with escapes, doubles, integers, booleans, null).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace idem::json {

class Value;
using Array = std::vector<Value>;
/// Ordered map: serialization order is deterministic, which keeps replay
/// artifacts byte-stable across runs.
using Object = std::map<std::string, Value>;

enum class Type : std::uint8_t { Null, Bool, Number, String, ArrayT, ObjectT };

/// Thrown on malformed documents and type mismatches.
struct ParseError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

class Value {
 public:
  Value() = default;
  Value(std::nullptr_t) {}
  Value(bool b) : type_(Type::Bool), bool_(b) {}
  Value(double d) : type_(Type::Number), num_(d) {}
  Value(std::int64_t i) : type_(Type::Number), num_(static_cast<double>(i)) {}
  Value(std::uint64_t u) : type_(Type::Number), num_(static_cast<double>(u)) {}
  Value(int i) : Value(static_cast<std::int64_t>(i)) {}
  Value(const char* s) : type_(Type::String), str_(s) {}
  Value(std::string s) : type_(Type::String), str_(std::move(s)) {}
  Value(Array a) : type_(Type::ArrayT), array_(std::move(a)) {}
  Value(Object o) : type_(Type::ObjectT), object_(std::move(o)) {}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::Null; }

  bool as_bool() const { require(Type::Bool); return bool_; }
  double as_double() const { require(Type::Number); return num_; }
  std::int64_t as_int() const { require(Type::Number); return static_cast<std::int64_t>(num_); }
  std::uint64_t as_uint() const { require(Type::Number); return static_cast<std::uint64_t>(num_); }
  const std::string& as_string() const { require(Type::String); return str_; }
  const Array& as_array() const { require(Type::ArrayT); return array_; }
  const Object& as_object() const { require(Type::ObjectT); return object_; }
  Array& as_array() { require(Type::ArrayT); return array_; }
  Object& as_object() { require(Type::ObjectT); return object_; }

  /// Object member access; throws ParseError when absent.
  const Value& at(const std::string& key) const {
    const Object& o = as_object();
    auto it = o.find(key);
    if (it == o.end()) throw ParseError("missing key: " + key);
    return it->second;
  }
  /// Object member access with a fallback for optional fields.
  template <typename T>
  T get_or(const std::string& key, T fallback) const;
  bool contains(const std::string& key) const {
    return type_ == Type::ObjectT && object_.count(key) > 0;
  }

  /// Serializes compactly (no whitespace) — the canonical artifact form.
  std::string dump() const;
  void dump_to(std::string& out) const;

  /// Parses one document; trailing non-whitespace is an error.
  static Value parse(std::string_view text);

 private:
  void require(Type t) const {
    if (type_ != t) throw ParseError("json type mismatch");
  }

  Type type_ = Type::Null;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  Array array_;
  Object object_;
};

template <>
inline bool Value::get_or<bool>(const std::string& key, bool fallback) const {
  return contains(key) ? at(key).as_bool() : fallback;
}
template <>
inline double Value::get_or<double>(const std::string& key, double fallback) const {
  return contains(key) ? at(key).as_double() : fallback;
}
template <>
inline std::int64_t Value::get_or<std::int64_t>(const std::string& key,
                                                std::int64_t fallback) const {
  return contains(key) ? at(key).as_int() : fallback;
}
template <>
inline std::uint64_t Value::get_or<std::uint64_t>(const std::string& key,
                                                  std::uint64_t fallback) const {
  return contains(key) ? at(key).as_uint() : fallback;
}
template <>
inline std::string Value::get_or<std::string>(const std::string& key,
                                              std::string fallback) const {
  return contains(key) ? at(key).as_string() : fallback;
}

/// Escapes and quotes `s` as a JSON string literal.
void escape_string(std::string_view s, std::string& out);

}  // namespace idem::json
