// Strongly typed identifiers used across the replication protocols.
//
// Replica ids, client ids, views and sequence numbers are all integers on
// the wire, but mixing them up is a classic source of consensus bugs, so
// each gets its own thin wrapper type. The wrappers are aggregates with
// defaulted comparison so they work in maps, sets and structured bindings.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace idem {

/// Identifies one replica of the replicated service (0 .. n-1).
struct ReplicaId {
  std::uint32_t value = 0;
  auto operator<=>(const ReplicaId&) const = default;
};

/// Identifies one client of the replicated service.
struct ClientId {
  std::uint64_t value = 0;
  auto operator<=>(const ClientId&) const = default;
};

/// A view number; the leader of view v is replica (v mod n).
struct ViewId {
  std::uint64_t value = 0;
  auto operator<=>(const ViewId&) const = default;
  ViewId next() const { return ViewId{value + 1}; }
};

/// A consensus sequence number assigned by the leader.
struct SeqNum {
  std::uint64_t value = 0;
  auto operator<=>(const SeqNum&) const = default;
};

/// A client-specific, monotonically increasing operation number.
struct OpNum {
  std::uint64_t value = 0;
  auto operator<=>(const OpNum&) const = default;
};

/// Uniquely identifies a request: (client id, client operation number).
///
/// The paper (Section 4.3) assumes one pending request per client, so the
/// pair is unique system-wide and the operation number orders one client's
/// requests.
struct RequestId {
  ClientId cid;
  OpNum onr;
  auto operator<=>(const RequestId&) const = default;
};

inline std::string to_string(ReplicaId r) { return "r" + std::to_string(r.value); }
inline std::string to_string(ClientId c) { return "c" + std::to_string(c.value); }
inline std::string to_string(ViewId v) { return "v" + std::to_string(v.value); }
inline std::string to_string(SeqNum s) { return "s" + std::to_string(s.value); }
inline std::string to_string(RequestId id) {
  return to_string(id.cid) + "#" + std::to_string(id.onr.value);
}

}  // namespace idem

template <>
struct std::hash<idem::ReplicaId> {
  std::size_t operator()(idem::ReplicaId r) const noexcept {
    return std::hash<std::uint32_t>{}(r.value);
  }
};

template <>
struct std::hash<idem::ClientId> {
  std::size_t operator()(idem::ClientId c) const noexcept {
    return std::hash<std::uint64_t>{}(c.value);
  }
};

template <>
struct std::hash<idem::SeqNum> {
  std::size_t operator()(idem::SeqNum s) const noexcept {
    return std::hash<std::uint64_t>{}(s.value);
  }
};

template <>
struct std::hash<idem::RequestId> {
  std::size_t operator()(const idem::RequestId& id) const noexcept {
    // SplitMix-style combine; request ids are dense in both fields.
    std::uint64_t x = id.cid.value * 0x9E3779B97F4A7C15ull ^ id.onr.value;
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ull;
    x ^= x >> 27;
    return static_cast<std::size_t>(x);
  }
};
