// Binary serialization for wire messages.
//
// A small, explicit little-endian codec. Every protocol message implements
// encode()/decode() with it; the simulator uses the encoded size for
// network-byte accounting (Table 1 reproduces a traffic measurement), and
// the round-trip is exercised directly by the unit tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "common/ids.hpp"

namespace idem {

/// Thrown by ByteReader when a message is truncated or malformed.
class CodecError : public std::runtime_error {
 public:
  explicit CodecError(const std::string& what) : std::runtime_error(what) {}
};

/// Appends primitive values to a growing byte buffer.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(std::byte{v}); }

  void u16(std::uint16_t v) {
    u8(static_cast<std::uint8_t>(v));
    u8(static_cast<std::uint8_t>(v >> 8));
  }

  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v));
    u16(static_cast<std::uint16_t>(v >> 16));
  }

  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v));
    u32(static_cast<std::uint32_t>(v >> 32));
  }

  /// LEB128-style variable-length unsigned integer; ids and counts are
  /// usually tiny, and the paper stresses that agreement on *ids* instead of
  /// full requests keeps messages several magnitudes smaller (Section 4.2).
  void varint(std::uint64_t v) {
    while (v >= 0x80) {
      u8(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    u8(static_cast<std::uint8_t>(v));
  }

  void bytes(std::span<const std::byte> data) {
    varint(data.size());
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  void str(std::string_view s) {
    varint(s.size());
    for (char c : s) buf_.push_back(static_cast<std::byte>(c));
  }

  void request_id(RequestId id) {
    varint(id.cid.value);
    varint(id.onr.value);
  }

  const std::vector<std::byte>& data() const { return buf_; }
  std::vector<std::byte> take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  std::vector<std::byte> buf_;
};

/// Reads primitive values back out of a byte buffer, bounds-checked.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data) : data_(data) {}

  std::uint8_t u8() {
    require(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }

  std::uint16_t u16() {
    auto lo = u8();
    auto hi = u8();
    return static_cast<std::uint16_t>(lo | (hi << 8));
  }

  std::uint32_t u32() {
    std::uint32_t lo = u16();
    std::uint32_t hi = u16();
    return lo | (hi << 16);
  }

  std::uint64_t u64() {
    std::uint64_t lo = u32();
    std::uint64_t hi = u32();
    return lo | (hi << 32);
  }

  std::uint64_t varint() {
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
      if (shift > 63) throw CodecError("varint too long");
      std::uint8_t b = u8();
      v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) return v;
      shift += 7;
    }
  }

  std::vector<std::byte> bytes() {
    auto len = varint();
    require(len);
    std::vector<std::byte> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                               data_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
    pos_ += len;
    return out;
  }

  std::string str() {
    auto len = varint();
    require(len);
    std::string out;
    out.reserve(len);
    for (std::size_t i = 0; i < len; ++i) out.push_back(static_cast<char>(data_[pos_ + i]));
    pos_ += len;
    return out;
  }

  RequestId request_id() {
    RequestId id;
    id.cid.value = varint();
    id.onr.value = varint();
    return id;
  }

  bool done() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  void require(std::size_t n) const {
    if (pos_ + n > data_.size()) throw CodecError("message truncated");
  }

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

}  // namespace idem
