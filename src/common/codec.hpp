// Binary serialization for wire messages.
//
// A small, explicit little-endian codec. Every protocol message implements
// encode()/decode() with it; the simulator uses the encoded size for
// network-byte accounting (Table 1 reproduces a traffic measurement), and
// the round-trip is exercised directly by the unit tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "common/ids.hpp"

namespace idem {

/// Thrown by ByteReader when a message is truncated or malformed.
class CodecError : public std::runtime_error {
 public:
  explicit CodecError(const std::string& what) : std::runtime_error(what) {}
};

/// Appends primitive values to a growing byte buffer.
///
/// Multi-byte integers and string/byte payloads are appended as single bulk
/// writes (resize + memcpy) instead of per-byte push_back; encoders that know
/// their wire size call reserve() first so a message serializes with exactly
/// one allocation.
class ByteWriter {
 public:
  /// Pre-size the buffer for a message of known encoded length.
  void reserve(std::size_t n) { buf_.reserve(n); }

  void u8(std::uint8_t v) { buf_.push_back(std::byte{v}); }

  void u16(std::uint16_t v) {
    const std::uint8_t raw[2] = {static_cast<std::uint8_t>(v), static_cast<std::uint8_t>(v >> 8)};
    append_raw(raw, sizeof raw);
  }

  void u32(std::uint32_t v) {
    const std::uint8_t raw[4] = {
        static_cast<std::uint8_t>(v), static_cast<std::uint8_t>(v >> 8),
        static_cast<std::uint8_t>(v >> 16), static_cast<std::uint8_t>(v >> 24)};
    append_raw(raw, sizeof raw);
  }

  void u64(std::uint64_t v) {
    std::uint8_t raw[8];
    for (int i = 0; i < 8; ++i) raw[i] = static_cast<std::uint8_t>(v >> (8 * i));
    append_raw(raw, sizeof raw);
  }

  /// LEB128-style variable-length unsigned integer; ids and counts are
  /// usually tiny, and the paper stresses that agreement on *ids* instead of
  /// full requests keeps messages several magnitudes smaller (Section 4.2).
  void varint(std::uint64_t v) {
    while (v >= 0x80) {
      u8(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    u8(static_cast<std::uint8_t>(v));
  }

  void bytes(std::span<const std::byte> data) {
    varint(data.size());
    append_raw(data.data(), data.size());
  }

  void str(std::string_view s) {
    varint(s.size());
    append_raw(s.data(), s.size());
  }

  void request_id(RequestId id) {
    varint(id.cid.value);
    varint(id.onr.value);
  }

  const std::vector<std::byte>& data() const { return buf_; }
  std::vector<std::byte> take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  void append_raw(const void* src, std::size_t n) {
    if (n == 0) return;
    const std::size_t old = buf_.size();
    buf_.resize(old + n);
    std::memcpy(buf_.data() + old, src, n);
  }

  std::vector<std::byte> buf_;
};

/// Reads primitive values back out of a byte buffer, bounds-checked.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data) : data_(data) {}

  std::uint8_t u8() {
    require(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }

  std::uint16_t u16() {
    auto lo = u8();
    auto hi = u8();
    return static_cast<std::uint16_t>(lo | (hi << 8));
  }

  std::uint32_t u32() {
    std::uint32_t lo = u16();
    std::uint32_t hi = u16();
    return lo | (hi << 16);
  }

  std::uint64_t u64() {
    std::uint64_t lo = u32();
    std::uint64_t hi = u32();
    return lo | (hi << 32);
  }

  std::uint64_t varint() {
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
      if (shift > 63) throw CodecError("varint too long");
      std::uint8_t b = u8();
      v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) return v;
      shift += 7;
    }
  }

  std::vector<std::byte> bytes() {
    auto len = varint();
    require(len);
    std::vector<std::byte> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                               data_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
    pos_ += len;
    return out;
  }

  std::string str() {
    auto len = varint();
    require(len);
    std::string out(reinterpret_cast<const char*>(data_.data() + pos_), len);
    pos_ += len;
    return out;
  }

  RequestId request_id() {
    RequestId id;
    id.cid.value = varint();
    id.onr.value = varint();
    return id;
  }

  bool done() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  void require(std::size_t n) const {
    // Written as a subtraction so a hostile length prefix cannot wrap
    // `pos_ + n` past SIZE_MAX and slip under data_.size(). pos_ never
    // exceeds data_.size(), so the subtraction itself cannot underflow.
    if (n > data_.size() - pos_) throw CodecError("message truncated");
  }

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

}  // namespace idem
