// Simulated-time primitives shared by every module.
//
// All protocol and simulator code expresses time as an integral number of
// nanoseconds (`Time`). Using a plain integer instead of std::chrono keeps
// the discrete-event scheduler trivially totally ordered and serializable,
// while the literal helpers below keep call sites readable.
#pragma once

#include <cstdint>

namespace idem {

/// A point in (simulated) time, in nanoseconds since simulation start.
using Time = std::int64_t;

/// A span of (simulated) time, in nanoseconds.
using Duration = std::int64_t;

constexpr Duration kNanosecond = 1;
constexpr Duration kMicrosecond = 1000 * kNanosecond;
constexpr Duration kMillisecond = 1000 * kMicrosecond;
constexpr Duration kSecond = 1000 * kMillisecond;

constexpr Duration nanoseconds(std::int64_t n) { return n * kNanosecond; }
constexpr Duration microseconds(std::int64_t n) { return n * kMicrosecond; }
constexpr Duration milliseconds(std::int64_t n) { return n * kMillisecond; }
constexpr Duration seconds(std::int64_t n) { return n * kSecond; }

/// Converts a duration to floating-point microseconds (for reporting).
constexpr double to_us(Duration d) { return static_cast<double>(d) / kMicrosecond; }

/// Converts a duration to floating-point milliseconds (for reporting).
constexpr double to_ms(Duration d) { return static_cast<double>(d) / kMillisecond; }

/// Overloads for durations already averaged into floating point
/// (e.g. Histogram::mean()) — avoids a lossy round-trip through Duration.
constexpr double to_us(double ns) { return ns / kMicrosecond; }
constexpr double to_ms(double ns) { return ns / kMillisecond; }

/// Converts a duration to floating-point seconds (for reporting).
constexpr double to_sec(Duration d) { return static_cast<double>(d) / kSecond; }

/// Sentinel for "no deadline".
constexpr Time kTimeNever = INT64_MAX;

}  // namespace idem
