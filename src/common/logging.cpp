#include "common/logging.hpp"

#include <cstdio>

namespace idem {
namespace {

LogLevel g_level = LogLevel::Warn;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel Logger::level() { return g_level; }

void Logger::set_level(LogLevel level) { g_level = level; }

void Logger::write(LogLevel level, const std::string& component, const std::string& message) {
  std::fprintf(stderr, "[%s] %s: %s\n", level_name(level), component.c_str(), message.c_str());
}

}  // namespace idem
