// Windowed time series for timeline plots.
//
// The crash experiments (Figures 3 and 10) report throughput and latency
// *over time*: a replica is crashed mid-run and the plot shows the gap and
// recovery. TimeSeries buckets samples into fixed-width windows and later
// yields one row per window.
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.hpp"

namespace idem {

class TimeSeries {
 public:
  /// `window` is the bucket width; samples before t=0 are clamped to 0.
  explicit TimeSeries(Duration window);

  /// Adds one event at time `t` carrying `value` (e.g. a latency sample);
  /// use value=0 to count events only.
  void add(Time t, double value = 0.0);

  struct Row {
    Time window_start = 0;
    std::uint64_t count = 0;     ///< events in this window
    double value_sum = 0.0;      ///< sum of sample values
    double value_min = 0.0;
    double value_max = 0.0;

    double mean() const { return count ? value_sum / static_cast<double>(count) : 0.0; }
    /// Event rate in events per second.
    double rate(Duration window) const {
      return static_cast<double>(count) / to_sec(window);
    }
  };

  /// Rows from t=0 through the last window that received a sample;
  /// intermediate empty windows are included (count == 0).
  std::vector<Row> rows() const;

  Duration window() const { return window_; }
  std::uint64_t total() const { return total_; }

 private:
  Duration window_;
  std::vector<Row> buckets_;
  std::uint64_t total_ = 0;
};

}  // namespace idem
