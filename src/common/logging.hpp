// Minimal leveled logging.
//
// Protocol code logs through LOG_* macros; benches and tests run with the
// level raised to Warn so the hot path stays silent. The logger is a single
// process-wide sink by design — the simulator is single-threaded and the
// log is ordered by simulated event execution.
#pragma once

#include <sstream>
#include <string>

namespace idem {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

class Logger {
 public:
  static LogLevel level();
  static void set_level(LogLevel level);
  static void write(LogLevel level, const std::string& component, const std::string& message);
  static bool enabled(LogLevel level) { return level >= Logger::level(); }
};

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

/// Compile-time level floor. LOG_* calls below this level compile to
/// nothing — the format arguments are never evaluated and the branch
/// disappears entirely, so Trace/Debug statements cost zero in builds
/// that define a higher floor (Release defines 2 = Info by default).
#ifndef IDEM_LOG_COMPILE_LEVEL
#define IDEM_LOG_COMPILE_LEVEL 0
#endif

#define IDEM_LOG(level, component, ...)                                               \
  do {                                                                                \
    if constexpr (static_cast<int>(level) >= IDEM_LOG_COMPILE_LEVEL) {                \
      if (::idem::Logger::enabled(level)) {                                           \
        ::idem::Logger::write(level, component, ::idem::detail::concat(__VA_ARGS__)); \
      }                                                                               \
    }                                                                                 \
  } while (0)

#define LOG_TRACE(component, ...) IDEM_LOG(::idem::LogLevel::Trace, component, __VA_ARGS__)
#define LOG_DEBUG(component, ...) IDEM_LOG(::idem::LogLevel::Debug, component, __VA_ARGS__)
#define LOG_INFO(component, ...) IDEM_LOG(::idem::LogLevel::Info, component, __VA_ARGS__)
#define LOG_WARN(component, ...) IDEM_LOG(::idem::LogLevel::Warn, component, __VA_ARGS__)
#define LOG_ERROR(component, ...) IDEM_LOG(::idem::LogLevel::Error, component, __VA_ARGS__)

}  // namespace idem
