// Move-only callable with small-buffer-optimized storage.
//
// The discrete-event kernel fires millions of callbacks per simulated
// second; std::function heap-allocates for captures beyond ~16 bytes and
// requires copyability, which forces protocol code to shared_ptr-wrap
// state. InlineFunction stores any callable up to `InlineBytes` directly
// inside the object (no allocation on construct/move/destroy/call) and
// accepts move-only captures such as PayloadPtr. Oversized callables fall
// back to the heap so cold paths (test fixtures, harness glue) still work;
// hot paths static_assert `stores_inline` at the lambda definition site.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace idem {

template <typename Signature, std::size_t InlineBytes = 80>
class InlineFunction;

template <typename R, typename... Args, std::size_t InlineBytes>
class InlineFunction<R(Args...), InlineBytes> {
 public:
  static constexpr std::size_t kInlineBytes = InlineBytes;

  /// True when a callable of type F lives in the inline buffer (the
  /// zero-allocation guarantee the simulator's hot paths assert on).
  template <typename F>
  static constexpr bool stores_inline =
      sizeof(std::decay_t<F>) <= InlineBytes &&
      alignof(std::decay_t<F>) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<std::decay_t<F>>;

  InlineFunction() = default;
  InlineFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineFunction> &&
                                        std::is_invocable_r_v<R, D&, Args...>>>
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    if constexpr (stores_inline<F>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      invoke_ = &invoke_inline<D>;
      manage_ = &manage_inline<D>;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
      invoke_ = &invoke_heap<D>;
      manage_ = &manage_heap<D>;
    }
  }

  InlineFunction(InlineFunction&& other) noexcept { move_from(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InlineFunction& operator=(std::nullptr_t) {
    reset();
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  explicit operator bool() const { return invoke_ != nullptr; }

  R operator()(Args... args) { return invoke_(storage_, std::forward<Args>(args)...); }

 private:
  enum class Op { kRelocate, kDestroy };

  using Invoke = R (*)(void*, Args&&...);
  using Manage = void (*)(void* self, void* dest, Op op);

  template <typename D>
  static R invoke_inline(void* s, Args&&... args) {
    return (*std::launder(reinterpret_cast<D*>(s)))(std::forward<Args>(args)...);
  }

  template <typename D>
  static void manage_inline(void* s, void* dest, Op op) {
    D* self = std::launder(reinterpret_cast<D*>(s));
    if (op == Op::kRelocate) ::new (dest) D(std::move(*self));
    self->~D();
  }

  template <typename D>
  static R invoke_heap(void* s, Args&&... args) {
    return (**std::launder(reinterpret_cast<D**>(s)))(std::forward<Args>(args)...);
  }

  template <typename D>
  static void manage_heap(void* s, void* dest, Op op) {
    D** self = std::launder(reinterpret_cast<D**>(s));
    if (op == Op::kRelocate) {
      ::new (dest) D*(*self);
    } else {
      delete *self;
    }
  }

  void move_from(InlineFunction& other) noexcept {
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    if (manage_ != nullptr) manage_(other.storage_, storage_, Op::kRelocate);
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
  }

  void reset() {
    if (manage_ != nullptr) manage_(storage_, nullptr, Op::kDestroy);
    invoke_ = nullptr;
    manage_ = nullptr;
  }

  alignas(std::max_align_t) std::byte storage_[InlineBytes];
  Invoke invoke_ = nullptr;
  Manage manage_ = nullptr;
};

}  // namespace idem
