// Rejection-reason taxonomy.
//
// Turns "requests are being rejected" into "requests are being rejected
// *because*": every REJECT (and every transport-level shed that never
// reaches the protocol) is classified into one of these reasons. The
// codes ride in trace-event args, in per-reason live-metrics counters,
// and — in real mode only — on the REJECT wire message, so a client can
// distinguish a loaded replica from a stalled one.
//
// Values are stable: they appear in exported traces, in /metrics label
// values, and on the wire. Append new reasons before Count.
#pragma once

#include <cstdint>

namespace idem {

enum class RejectReason : std::uint8_t {
  None = 0,                ///< not a rejection / reason unknown (sim-mode wire)
  RtQueueFull = 1,         ///< acceptance test refused: r_now at/above threshold
  RejectedCacheHit = 2,    ///< retransmission of a request already in the rejected cache
  BackpressureShed = 3,    ///< transport dropped the frame: pending-write queue full
  OversizedFrame = 4,      ///< transport dropped the connection: frame over the size cap
  ViewChangeInProgress = 5,  ///< rejected while the replica had no installed view
  ConnectionLimit = 6,     ///< transport shed the connection at accept: the
                           ///< inbound-connection cap was reached
  WrongShard = 7,          ///< key belongs to another replication group; the
                           ///< REJECT carries the newer map epoch + home group
  DeadlineUnmeetable = 8,  ///< deadline-aware admission: the request's slack is
                           ///< below the expected queue wait, so executing it
                           ///< in time is already impossible
  Count,                   ///< one past the last valid reason
};

constexpr std::size_t kRejectReasonCount = static_cast<std::size_t>(RejectReason::Count);

/// Stable kebab-case label (Prometheus label values, trace rendering).
constexpr const char* to_label(RejectReason reason) {
  switch (reason) {
    case RejectReason::None: return "none";
    case RejectReason::RtQueueFull: return "rt-queue-full";
    case RejectReason::RejectedCacheHit: return "rejected-cache-hit";
    case RejectReason::BackpressureShed: return "backpressure-shed";
    case RejectReason::OversizedFrame: return "oversized-frame";
    case RejectReason::ViewChangeInProgress: return "view-change-in-progress";
    case RejectReason::ConnectionLimit: return "connection-limit";
    case RejectReason::WrongShard: return "wrong-shard";
    case RejectReason::DeadlineUnmeetable: return "deadline-unmeetable";
    case RejectReason::Count: break;
  }
  return "invalid";
}

/// True when `raw` names a valid reason (None included).
constexpr bool valid_reject_reason(std::uint64_t raw) {
  return raw < static_cast<std::uint64_t>(RejectReason::Count);
}

/// Decodes a wire/trace byte; out-of-range values map to None (tolerant
/// decode: an old binary reading a newer reason must not throw).
constexpr RejectReason reject_reason_from(std::uint64_t raw) {
  return valid_reject_reason(raw) ? static_cast<RejectReason>(raw) : RejectReason::None;
}

// ---------------------------------------------------------------------------
// Trace-event arg packing (see obs/trace.hpp kind docs).
//
// AcceptVerdict: bit 0 = accepted. Accepts keep the legacy arg == 1
// exactly; rejects pack the reason into bits 8+ (so the legacy "0 means
// reject" test becomes "bit 0 clear").
// RejectSeen: the rejecting replica id stays in the low 32 bits (legacy
// value), the reason — known to the client only when it arrived on the
// wire, i.e. real mode — sits in bits 32+.
// ---------------------------------------------------------------------------

constexpr std::uint64_t pack_accept_verdict(bool accepted, RejectReason reason) {
  return accepted ? 1u : (static_cast<std::uint64_t>(reason) << 8);
}

constexpr bool accept_verdict_accepted(std::uint64_t arg) { return (arg & 1) != 0; }

constexpr RejectReason accept_verdict_reason(std::uint64_t arg) {
  return reject_reason_from(arg >> 8);
}

constexpr std::uint64_t pack_reject_seen(std::uint32_t replica, RejectReason reason) {
  return static_cast<std::uint64_t>(replica) |
         (static_cast<std::uint64_t>(reason) << 32);
}

constexpr std::uint32_t reject_seen_replica(std::uint64_t arg) {
  return static_cast<std::uint32_t>(arg);
}

constexpr RejectReason reject_seen_reason(std::uint64_t arg) {
  return reject_reason_from(arg >> 32);
}

}  // namespace idem
