// Deterministic random-number generation.
//
// Every stochastic component (network latency, acceptance-test PRF, workload
// generator, client backoff) draws from its own named stream derived from a
// single experiment seed, so that (a) whole experiments are reproducible
// bit-for-bit and (b) changing how often one component draws does not
// perturb the others.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace idem {

/// SplitMix64: used to derive stream seeds and as the acceptance test's
/// per-request pseudo-random function (Section 5.1 of the paper requires a
/// PRF that yields the same value for the same request at every replica).
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// PCG32 (Melissa O'Neill's pcg32_random_r): small, fast, statistically
/// solid, and — unlike std::mt19937 — identical across standard libraries.
class Rng {
 public:
  Rng() : Rng(0xDEFA017u, 0xDA7A5EEDu) {}

  /// Creates a generator from a seed and a stream id. Distinct stream ids
  /// yield independent sequences even for the same seed.
  Rng(std::uint64_t seed, std::uint64_t stream) {
    state_ = 0u;
    inc_ = (splitmix64(stream) << 1u) | 1u;
    next_u32();
    state_ += splitmix64(seed);
    next_u32();
  }

  std::uint32_t next_u32() {
    std::uint64_t old = state_;
    state_ = old * 6364136223846793005ull + inc_;
    auto xorshifted = static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    auto rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  std::uint64_t next_u64() {
    return (static_cast<std::uint64_t>(next_u32()) << 32) | next_u32();
  }

  /// Uniform in [0, 1).
  double next_double() { return next_u32() * (1.0 / 4294967296.0); }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    auto range = static_cast<std::uint64_t>(hi - lo) + 1;
    if (range == 0) return static_cast<std::int64_t>(next_u64());  // full range
    // Lemire-style bounded draw with rejection to avoid modulo bias.
    std::uint64_t threshold = (-range) % range;
    for (;;) {
      std::uint64_t r = next_u64();
      if (r >= threshold) return lo + static_cast<std::int64_t>(r % range);
    }
  }

  /// True with probability p (clamped to [0, 1]).
  bool bernoulli(double p) { return next_double() < p; }

  /// Exponential with the given mean (> 0).
  double exponential(double mean) {
    double u = next_double();
    // Avoid log(0).
    if (u <= 0.0) u = std::numeric_limits<double>::min();
    return -mean * std::log(u);
  }

  /// Standard normal via Box–Muller (single value; the pair's twin is dropped
  /// to keep the draw count deterministic per call).
  double normal(double mean, double stddev) {
    double u1 = next_double();
    double u2 = next_double();
    if (u1 <= 0.0) u1 = std::numeric_limits<double>::min();
    double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
    return mean + stddev * z;
  }

 private:
  std::uint64_t state_ = 0;
  std::uint64_t inc_ = 0;
};

/// Derives a child seed for a named component stream.
constexpr std::uint64_t derive_seed(std::uint64_t experiment_seed, std::uint64_t component) {
  return splitmix64(experiment_seed ^ splitmix64(component));
}

}  // namespace idem
