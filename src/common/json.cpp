#include "common/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace idem::json {

void escape_string(std::string_view s, std::string& out) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void Value::dump_to(std::string& out) const {
  switch (type_) {
    case Type::Null: out += "null"; break;
    case Type::Bool: out += bool_ ? "true" : "false"; break;
    case Type::Number: {
      // Integers (the common case in our schemas) print without a decimal
      // point so artifacts stay byte-stable and greppable.
      if (num_ == std::floor(num_) && std::abs(num_) < 9.0e15) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(num_));
        out += buf;
      } else {
        char buf[40];
        std::snprintf(buf, sizeof buf, "%.17g", num_);
        out += buf;
      }
      break;
    }
    case Type::String: escape_string(str_, out); break;
    case Type::ArrayT: {
      out.push_back('[');
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out.push_back(',');
        array_[i].dump_to(out);
      }
      out.push_back(']');
      break;
    }
    case Type::ObjectT: {
      out.push_back('{');
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) out.push_back(',');
        first = false;
        escape_string(key, out);
        out.push_back(':');
        value.dump_to(out);
      }
      out.push_back('}');
      break;
    }
  }
}

std::string Value::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

namespace {

struct Parser {
  std::string_view text;
  std::size_t pos = 0;

  [[noreturn]] void fail(const char* what) {
    throw ParseError(std::string(what) + " at offset " + std::to_string(pos));
  }

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' || text[pos] == '\r')) {
      ++pos;
    }
  }

  char peek() {
    if (pos >= text.size()) fail("unexpected end of document");
    return text[pos];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos;
  }

  bool consume_literal(std::string_view lit) {
    if (text.substr(pos, lit.size()) != lit) return false;
    pos += lit.size();
    return true;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos >= text.size()) fail("unterminated string");
      char c = text[pos++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos >= text.size()) fail("unterminated escape");
      char e = text[pos++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          if (pos + 4 > text.size()) fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // Our writer only emits \u for control characters; decode the
          // BMP code point as UTF-8.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Value parse_number() {
    std::size_t start = pos;
    if (peek() == '-') ++pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) || text[pos] == '.' ||
            text[pos] == 'e' || text[pos] == 'E' || text[pos] == '+' || text[pos] == '-')) {
      ++pos;
    }
    double value = 0;
    auto result = std::from_chars(text.data() + start, text.data() + pos, value);
    if (result.ec != std::errc() || result.ptr != text.data() + pos) fail("bad number");
    return Value(value);
  }

  Value parse_value() {
    skip_ws();
    char c = peek();
    if (c == '{') {
      ++pos;
      Object object;
      skip_ws();
      if (peek() == '}') { ++pos; return Value(std::move(object)); }
      for (;;) {
        skip_ws();
        std::string key = parse_string();
        skip_ws();
        expect(':');
        object.emplace(std::move(key), parse_value());
        skip_ws();
        if (peek() == ',') { ++pos; continue; }
        expect('}');
        return Value(std::move(object));
      }
    }
    if (c == '[') {
      ++pos;
      Array array;
      skip_ws();
      if (peek() == ']') { ++pos; return Value(std::move(array)); }
      for (;;) {
        array.push_back(parse_value());
        skip_ws();
        if (peek() == ',') { ++pos; continue; }
        expect(']');
        return Value(std::move(array));
      }
    }
    if (c == '"') return Value(parse_string());
    if (consume_literal("true")) return Value(true);
    if (consume_literal("false")) return Value(false);
    if (consume_literal("null")) return Value(nullptr);
    return parse_number();
  }
};

}  // namespace

Value Value::parse(std::string_view text) {
  Parser parser{text};
  Value value = parser.parse_value();
  parser.skip_ws();
  if (parser.pos != text.size()) throw ParseError("trailing characters after document");
  return value;
}

}  // namespace idem::json
