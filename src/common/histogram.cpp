#include "common/histogram.hpp"

#include <bit>
#include <cmath>

namespace idem {

Histogram::Histogram() : buckets_(64 * kMinor, 0) {}

std::uint32_t Histogram::bucket_index(std::uint64_t v) {
  if (v < kMinor) return static_cast<std::uint32_t>(v);
  // Major bucket = position of the highest set bit; minor bucket = the next
  // kMinorBits bits below it. Values below 2^kMinorBits map 1:1 (exact).
  int high = 63 - std::countl_zero(v);
  int shift = high - kMinorBits;
  auto minor = static_cast<std::uint32_t>((v >> shift) & (kMinor - 1));
  auto major = static_cast<std::uint32_t>(high - kMinorBits + 1);
  return major * kMinor + minor;
}

std::uint64_t Histogram::bucket_upper_edge(std::uint32_t index) {
  std::uint32_t major = index / kMinor;
  std::uint32_t minor = index % kMinor;
  if (major == 0) return minor;
  int shift = static_cast<int>(major) - 1;
  // Upper edge of [ (2^kMinorBits + minor) << shift , +2^shift )
  return ((static_cast<std::uint64_t>(kMinor) + minor) << shift) + ((1ull << shift) - 1);
}

void Histogram::record(Duration value) { record_n(value, 1); }

void Histogram::record_n(Duration value, std::uint64_t count) {
  if (count == 0) return;
  if (value < 0) value = 0;
  auto v = static_cast<std::uint64_t>(value);
  std::uint32_t idx = bucket_index(v);
  if (idx >= buckets_.size()) idx = static_cast<std::uint32_t>(buckets_.size()) - 1;
  buckets_[idx] += count;
  if (count_ == 0 || value < min_) min_ = value;
  if (count_ == 0 || value > max_) max_ = value;
  count_ += count;
  sum_ += static_cast<double>(value) * static_cast<double>(count);
  sum_sq_ += static_cast<double>(value) * static_cast<double>(value) * static_cast<double>(count);
}

void Histogram::merge(const Histogram& other) {
  for (std::size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  if (other.count_ > 0) {
    if (count_ == 0 || other.min_ < min_) min_ = other.min_;
    if (count_ == 0 || other.max_ > max_) max_ = other.max_;
  }
  count_ += other.count_;
  sum_ += other.sum_;
  sum_sq_ += other.sum_sq_;
}

Histogram Histogram::delta(const Histogram& earlier) const {
  Histogram out;
  std::uint32_t first = 0, last = 0;
  bool any = false;
  for (std::uint32_t i = 0; i < buckets_.size(); ++i) {
    std::uint64_t before = earlier.buckets_[i];
    // Guard against a torn or non-prefix `earlier`: never underflow.
    std::uint64_t diff = buckets_[i] > before ? buckets_[i] - before : 0;
    out.buckets_[i] = diff;
    if (diff > 0) {
      if (!any) first = i;
      last = i;
      any = true;
    }
    out.count_ += diff;
  }
  if (!any) return out;
  // Approximate extremes from the occupied bucket range: the lower edge of
  // the first nonzero bucket and the upper edge of the last.
  std::uint64_t lower = first == 0 ? 0 : bucket_upper_edge(first - 1) + 1;
  out.min_ = static_cast<Duration>(lower);
  out.max_ = static_cast<Duration>(bucket_upper_edge(last));
  out.sum_ = sum_ > earlier.sum_ ? sum_ - earlier.sum_ : 0;
  out.sum_sq_ = sum_sq_ > earlier.sum_sq_ ? sum_sq_ - earlier.sum_sq_ : 0;
  return out;
}

double Histogram::mean() const {
  if (count_ == 0) return 0.0;
  return sum_ / static_cast<double>(count_);
}

double Histogram::stddev() const {
  if (count_ < 2) return 0.0;
  double n = static_cast<double>(count_);
  double var = (sum_sq_ - sum_ * sum_ / n) / (n - 1);
  return var > 0 ? std::sqrt(var) : 0.0;
}

Duration Histogram::quantile(double q) const {
  if (count_ == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  auto target = static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count_)));
  if (target == 0) target = 1;
  std::uint64_t seen = 0;
  for (std::uint32_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target) {
      auto edge = bucket_upper_edge(i);
      return static_cast<Duration>(edge);
    }
  }
  return max_;
}

void Histogram::clear() {
  buckets_.assign(buckets_.size(), 0);
  count_ = 0;
  min_ = max_ = 0;
  sum_ = sum_sq_ = 0;
}

}  // namespace idem
