// Deterministic state-machine interface executed by every replica.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/time.hpp"

namespace idem::app {

/// The replicated application. Implementations must be deterministic:
/// the same command sequence applied to the same initial state yields the
/// same outputs and the same snapshot on every replica.
class StateMachine {
 public:
  virtual ~StateMachine() = default;

  /// Applies one command and returns its result (the bytes sent back to
  /// the client in a REPLY).
  virtual std::vector<std::byte> execute(std::span<const std::byte> command) = 0;

  /// Serializes the complete application state (for checkpoints).
  virtual std::vector<std::byte> snapshot() const = 0;

  /// Replaces the state with a previously produced snapshot. May throw
  /// (e.g. CodecError) on a malformed snapshot, in which case the call
  /// must be strongly exception-safe: the existing state stays untouched
  /// (decode into fresh storage, then swap).
  virtual void restore(std::span<const std::byte> snapshot) = 0;

  /// Simulated CPU cost of executing `command`; drives the replica's
  /// service-queue model. Defaults to a small constant.
  virtual Duration execution_cost(std::span<const std::byte> command) const {
    (void)command;
    return 5 * kMicrosecond;
  }
};

}  // namespace idem::app
