#include "app/ycsb.hpp"

#include <algorithm>
#include <cmath>

namespace idem::app {

ZipfianGenerator::ZipfianGenerator(std::uint64_t n, double theta)
    : n_(n > 0 ? n : 1), theta_(theta) {
  zetan_ = zeta(n_, theta_);
  zeta2theta_ = zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2theta_ / zetan_);
}

double ZipfianGenerator::zeta(std::uint64_t n, double theta) {
  double sum = 0;
  for (std::uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(static_cast<double>(i), theta);
  return sum;
}

std::uint64_t ZipfianGenerator::next(Rng& rng) {
  double u = rng.next_double();
  double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  auto idx = static_cast<std::uint64_t>(static_cast<double>(n_) *
                                        std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return idx >= n_ ? n_ - 1 : idx;
}

YcsbWorkload::YcsbWorkload(YcsbConfig config, Rng& rng)
    : config_(config),
      rng_(rng),
      zipf_(config.record_count, config.zipfian_theta),
      inserted_(config.record_count) {}

std::string YcsbWorkload::key_for(std::uint64_t record) const {
  // YCSB scrambles the record index so that zipfian-hot records spread
  // across the key space instead of clustering at the front. The full
  // 64-bit hash keeps collisions negligible.
  return "user" + std::to_string(splitmix64(record));
}

std::vector<KvCommand> YcsbWorkload::load_phase() const {
  std::vector<KvCommand> cmds;
  cmds.reserve(config_.record_count);
  for (std::uint64_t i = 0; i < config_.record_count; ++i) {
    KvCommand cmd;
    cmd.op = KvOp::Put;
    cmd.key = key_for(i);
    cmd.value = std::string(config_.value_size, 'x');
    cmds.push_back(std::move(cmd));
  }
  return cmds;
}

std::uint64_t YcsbWorkload::next_record() {
  switch (config_.distribution) {
    case KeyDistribution::Uniform:
      return static_cast<std::uint64_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(inserted_) - 1));
    case KeyDistribution::Latest: {
      // YCSB's "latest": zipfian over recency rank, anchored at the most
      // recently inserted record.
      std::uint64_t back = zipf_.next(rng_);
      if (back >= inserted_) back = inserted_ - 1;
      return inserted_ - 1 - back;
    }
    case KeyDistribution::Zipfian:
      break;
  }
  return zipf_.next(rng_);
}

std::string YcsbWorkload::random_value() {
  std::size_t size = config_.value_size;
  if (config_.value_tail_prob > 0 && rng_.next_double() < config_.value_tail_prob) {
    double u = rng_.next_double();
    if (u <= 0.0) u = 1.0 / 4294967296.0;
    double factor = std::pow(u, -1.0 / config_.value_tail_alpha);
    auto scaled = static_cast<std::size_t>(static_cast<double>(size) * factor);
    size = std::min(std::max(scaled, size), config_.value_tail_cap);
  }
  std::string value(size, '\0');
  for (auto& c : value) {
    c = static_cast<char>('a' + rng_.uniform_int(0, 25));
  }
  return value;
}

KvCommand YcsbWorkload::next_operation() {
  double dice = rng_.next_double();
  KvCommand cmd;
  if (dice < config_.read_proportion) {
    cmd.op = KvOp::Get;
    cmd.key = key_for(next_record());
  } else if (dice < config_.read_proportion + config_.update_proportion) {
    cmd.op = KvOp::Put;
    cmd.key = key_for(next_record());
    cmd.value = random_value();
  } else if (dice < config_.read_proportion + config_.update_proportion +
                        config_.insert_proportion) {
    cmd.op = KvOp::Put;
    cmd.key = key_for(inserted_++);
    cmd.value = random_value();
  } else {
    cmd.op = KvOp::Scan;
    cmd.key = key_for(next_record());
    cmd.scan_len = static_cast<std::uint32_t>(
        rng_.uniform_int(1, static_cast<std::int64_t>(config_.max_scan_len)));
  }
  return cmd;
}

}  // namespace idem::app
