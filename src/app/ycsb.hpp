// YCSB-style workload generator (Cooper et al., SoCC '10).
//
// Reproduces the benchmark setup of the paper's evaluation (Section 7.1):
// an update-heavy workload against a replicated key-value store. Provides
// the classic zipfian request-key distribution with the YCSB scrambling,
// plus the standard workload mixes (A = update-heavy is the default).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "app/kv_store.hpp"
#include "common/rng.hpp"

namespace idem::app {

/// Zipfian integer generator over [0, n) with parameter theta (0.99 in
/// YCSB), using the Gray et al. rejection-free method that YCSB uses.
class ZipfianGenerator {
 public:
  ZipfianGenerator(std::uint64_t n, double theta = 0.99);

  std::uint64_t next(Rng& rng);

  std::uint64_t item_count() const { return n_; }

 private:
  static double zeta(std::uint64_t n, double theta);

  std::uint64_t n_;
  double theta_;
  double zetan_;
  double alpha_;
  double eta_;
  double zeta2theta_;
};

/// Distribution of request keys across the key space. `Latest` skews
/// toward recently inserted records (YCSB workload D).
enum class KeyDistribution : std::uint8_t { Zipfian, Uniform, Latest };

struct YcsbConfig {
  std::uint64_t record_count = 10'000;
  std::size_t value_size = 100;       ///< bytes per field (YCSB default: 10x100B; we use one field)
  double read_proportion = 0.5;       ///< YCSB-A: 50% reads
  double update_proportion = 0.5;     ///< YCSB-A: 50% updates
  double insert_proportion = 0.0;
  double scan_proportion = 0.0;
  std::uint32_t max_scan_len = 100;
  KeyDistribution distribution = KeyDistribution::Zipfian;
  double zipfian_theta = 0.99;

  /// Heavy-tailed value sizes (real-mode analog of the simulator's
  /// CostModel tail): with `value_tail_prob` a written value's size is
  /// `value_size` times a Pareto draw 1/U^(1/alpha), capped at
  /// `value_tail_cap` bytes. Serialization, replication and execution of
  /// the occasional huge value produce genuinely heavy-tailed service
  /// times. Zero probability keeps fixed-size values and adds no RNG
  /// draws, so default streams stay pinned.
  double value_tail_prob = 0.0;
  double value_tail_alpha = 1.2;
  std::size_t value_tail_cap = 64 * 1024;

  /// The paper's workload: update-heavy YCSB-A (50/50 read/update).
  static YcsbConfig update_heavy() { return YcsbConfig{}; }
  /// YCSB-B: 95/5 read/update.
  static YcsbConfig read_heavy() {
    YcsbConfig c;
    c.read_proportion = 0.95;
    c.update_proportion = 0.05;
    return c;
  }
  /// YCSB-C: read only.
  static YcsbConfig read_only() {
    YcsbConfig c;
    c.read_proportion = 1.0;
    c.update_proportion = 0.0;
    return c;
  }
  /// YCSB-D: read latest (95/5 read/insert, reads skewed to new records).
  static YcsbConfig read_latest() {
    YcsbConfig c;
    c.read_proportion = 0.95;
    c.update_proportion = 0.0;
    c.insert_proportion = 0.05;
    c.distribution = KeyDistribution::Latest;
    return c;
  }
  /// YCSB-E: short scans (95/5 scan/insert).
  static YcsbConfig scan_heavy() {
    YcsbConfig c;
    c.read_proportion = 0.0;
    c.update_proportion = 0.0;
    c.insert_proportion = 0.05;
    c.scan_proportion = 0.95;
    return c;
  }
};

class YcsbWorkload {
 public:
  YcsbWorkload(YcsbConfig config, Rng& rng);

  /// The key of record `i` ("user" + scrambled index, as in YCSB).
  std::string key_for(std::uint64_t record) const;

  /// Commands to populate the store before the measured phase.
  std::vector<KvCommand> load_phase() const;

  /// Draws the next operation of the run phase.
  KvCommand next_operation();

  const YcsbConfig& config() const { return config_; }

 private:
  std::uint64_t next_record();
  std::string random_value();

  YcsbConfig config_;
  Rng& rng_;
  ZipfianGenerator zipf_;
  std::uint64_t inserted_;  // grows with inserts
};

}  // namespace idem::app
