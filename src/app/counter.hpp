// A second, minimal replicated application: named atomic counters.
//
// Exists to demonstrate (and test) that the protocol stack is generic
// over app::StateMachine — nothing in the replicas refers to the KV
// store. Commands: ADD <name> <delta> (returns the new value) and
// READ <name>.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "app/state_machine.hpp"
#include "common/codec.hpp"

namespace idem::app {

enum class CounterOp : std::uint8_t { Add = 1, Read = 2 };

struct CounterCommand {
  CounterOp op = CounterOp::Read;
  std::string name;
  std::int64_t delta = 0;

  std::vector<std::byte> encode() const {
    ByteWriter w;
    w.u8(static_cast<std::uint8_t>(op));
    w.str(name);
    if (op == CounterOp::Add) w.u64(static_cast<std::uint64_t>(delta));
    return w.take();
  }
  static CounterCommand decode(std::span<const std::byte> data) {
    ByteReader r(data);
    CounterCommand cmd;
    cmd.op = static_cast<CounterOp>(r.u8());
    cmd.name = r.str();
    if (cmd.op == CounterOp::Add) cmd.delta = static_cast<std::int64_t>(r.u64());
    return cmd;
  }
};

class CounterService final : public StateMachine {
 public:
  std::vector<std::byte> execute(std::span<const std::byte> command) override {
    CounterCommand cmd = CounterCommand::decode(command);
    std::int64_t value = 0;
    switch (cmd.op) {
      case CounterOp::Add:
        value = (counters_[cmd.name] += cmd.delta);
        break;
      case CounterOp::Read: {
        auto it = counters_.find(cmd.name);
        value = it == counters_.end() ? 0 : it->second;
        break;
      }
    }
    ByteWriter w;
    w.u64(static_cast<std::uint64_t>(value));
    return w.take();
  }

  std::vector<std::byte> snapshot() const override {
    ByteWriter w;
    w.varint(counters_.size());
    for (const auto& [name, value] : counters_) {
      w.str(name);
      w.u64(static_cast<std::uint64_t>(value));
    }
    return w.take();
  }

  void restore(std::span<const std::byte> snapshot) override {
    ByteReader r(snapshot);
    std::map<std::string, std::int64_t> fresh;
    auto n = r.varint();
    for (std::uint64_t i = 0; i < n; ++i) {
      auto name = r.str();
      auto value = static_cast<std::int64_t>(r.u64());
      fresh.emplace(std::move(name), value);
    }
    counters_ = std::move(fresh);
  }

  Duration execution_cost(std::span<const std::byte>) const override {
    return 2 * kMicrosecond;
  }

  static std::int64_t decode_value(std::span<const std::byte> result) {
    ByteReader r(result);
    return static_cast<std::int64_t>(r.u64());
  }

 private:
  std::map<std::string, std::int64_t> counters_;
};

}  // namespace idem::app
