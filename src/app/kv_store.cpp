#include "app/kv_store.hpp"

#include "common/codec.hpp"

namespace idem::app {

std::vector<std::byte> KvCommand::encode() const {
  ByteWriter w;
  w.reserve(key.size() + value.size() + 16);
  w.u8(static_cast<std::uint8_t>(op));
  w.str(key);
  switch (op) {
    case KvOp::Put:
      w.str(value);
      break;
    case KvOp::Scan:
      w.varint(scan_len);
      break;
    case KvOp::Get:
    case KvOp::Delete:
      break;
  }
  return w.take();
}

KvCommand KvCommand::decode(std::span<const std::byte> data) {
  ByteReader r(data);
  KvCommand cmd;
  cmd.op = static_cast<KvOp>(r.u8());
  cmd.key = r.str();
  switch (cmd.op) {
    case KvOp::Put:
      cmd.value = r.str();
      break;
    case KvOp::Scan:
      cmd.scan_len = static_cast<std::uint32_t>(r.varint());
      break;
    case KvOp::Get:
    case KvOp::Delete:
      break;
  }
  return cmd;
}

std::vector<std::byte> KvResult::encode() const {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(status));
  w.varint(values.size());
  for (const auto& v : values) w.str(v);
  return w.take();
}

KvResult KvResult::decode(std::span<const std::byte> data) {
  ByteReader r(data);
  KvResult res;
  res.status = static_cast<Status>(r.u8());
  auto n = r.varint();
  res.values.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) res.values.push_back(r.str());
  return res;
}

std::vector<std::byte> KvStore::execute(std::span<const std::byte> command) {
  KvCommand cmd;
  try {
    cmd = KvCommand::decode(command);
  } catch (const CodecError&) {
    KvResult bad;
    bad.status = KvResult::Status::BadRequest;
    return bad.encode();
  }

  KvResult res;
  switch (cmd.op) {
    case KvOp::Get: {
      auto it = data_.find(cmd.key);
      if (it == data_.end()) {
        res.status = KvResult::Status::NotFound;
      } else {
        res.values.push_back(it->second);
      }
      break;
    }
    case KvOp::Put:
      data_[cmd.key] = cmd.value;
      break;
    case KvOp::Delete:
      if (data_.erase(cmd.key) == 0) res.status = KvResult::Status::NotFound;
      break;
    case KvOp::Scan: {
      auto it = data_.lower_bound(cmd.key);
      for (std::uint32_t i = 0; i < cmd.scan_len && it != data_.end(); ++i, ++it) {
        res.values.push_back(it->second);
      }
      break;
    }
    default:
      res.status = KvResult::Status::BadRequest;
  }
  return res.encode();
}

std::vector<std::byte> KvStore::snapshot() const {
  // Checkpointing serializes the whole store; size the buffer up front so the
  // snapshot is a single allocation plus memcpy-sized appends (this showed up
  // at ~28% of the fig6 overload profile before).
  std::size_t estimate = 10;
  for (const auto& [key, value] : data_) estimate += key.size() + value.size() + 20;
  ByteWriter w;
  w.reserve(estimate);
  w.varint(data_.size());
  // std::map iteration is key-ordered, so equal states serialize equally.
  for (const auto& [key, value] : data_) {
    w.str(key);
    w.str(value);
  }
  return w.take();
}

void KvStore::restore(std::span<const std::byte> snapshot) {
  ByteReader r(snapshot);
  std::map<std::string, std::string, std::less<>> fresh;
  auto n = r.varint();
  for (std::uint64_t i = 0; i < n; ++i) {
    auto key = r.str();
    auto value = r.str();
    fresh.emplace(std::move(key), std::move(value));
  }
  data_ = std::move(fresh);
}

Duration KvStore::execution_cost(std::span<const std::byte> command) const {
  Duration cost = costs_.base;
  try {
    KvCommand cmd = KvCommand::decode(command);
    if (cmd.op == KvOp::Put) {
      cost += static_cast<Duration>(costs_.ns_per_value_byte *
                                    static_cast<double>(cmd.value.size()));
    } else if (cmd.op == KvOp::Scan) {
      cost += static_cast<Duration>(cmd.scan_len) * costs_.per_scan_entry;
    }
  } catch (const CodecError&) {
    // Malformed commands still pay the base cost.
  }
  return cost;
}

std::optional<std::string> KvStore::get(std::string_view key) const {
  auto it = data_.find(key);
  if (it == data_.end()) return std::nullopt;
  return it->second;
}

void KvStore::put(std::string key, std::string value) {
  data_[std::move(key)] = std::move(value);
}

}  // namespace idem::app
