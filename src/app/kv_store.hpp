// In-memory key-value store used as the replicated application
// (the paper evaluates with YCSB against a replicated key-value store).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "app/state_machine.hpp"
#include "common/time.hpp"

namespace idem::app {

/// Wire format of KV commands and results.
enum class KvOp : std::uint8_t { Get = 1, Put = 2, Delete = 3, Scan = 4 };

struct KvCommand {
  KvOp op = KvOp::Get;
  std::string key;
  std::string value;        ///< Put only
  std::uint32_t scan_len = 0;  ///< Scan only

  std::vector<std::byte> encode() const;
  static KvCommand decode(std::span<const std::byte> data);
};

struct KvResult {
  enum class Status : std::uint8_t { Ok = 0, NotFound = 1, BadRequest = 2 };
  Status status = Status::Ok;
  std::vector<std::string> values;

  std::vector<std::byte> encode() const;
  static KvResult decode(std::span<const std::byte> data);
  bool ok() const { return status == Status::Ok; }
};

/// Ordered-map-backed store; ordering makes Scan meaningful and snapshots
/// canonical (byte-identical across replicas with equal contents).
class KvStore final : public StateMachine {
 public:
  struct Costs {
    /// Fixed per-op cost. The default is calibrated so a 3-replica cluster
    /// (execution on every replica dominating the per-request budget)
    /// saturates around the paper's ~43k requests/s.
    Duration base = 13 * kMicrosecond;
    double ns_per_value_byte = 2.0;  ///< marginal cost of value bytes
    Duration per_scan_entry = 1 * kMicrosecond;
  };

  KvStore() = default;
  explicit KvStore(Costs costs) : costs_(costs) {}

  std::vector<std::byte> execute(std::span<const std::byte> command) override;
  std::vector<std::byte> snapshot() const override;
  void restore(std::span<const std::byte> snapshot) override;
  Duration execution_cost(std::span<const std::byte> command) const override;

  // Direct (non-replicated) accessors for tests and examples.
  std::optional<std::string> get(std::string_view key) const;
  void put(std::string key, std::string value);
  std::size_t size() const { return data_.size(); }
  /// Full contents, ordered — shard-range extraction walks this to carve
  /// the migrating keys out of a quiesced source replica.
  const std::map<std::string, std::string, std::less<>>& entries() const { return data_; }

 private:
  std::map<std::string, std::string, std::less<>> data_;
  Costs costs_;
};

}  // namespace idem::app
