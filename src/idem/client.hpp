// The IDEM client (paper Sections 4.1 and 5.3).
//
// Multicasts each request to all replicas and then waits for either a
// REPLY (success) or REJECTs. With n-f rejects the client is in the
// ambivalence state: the pessimistic strategy aborts immediately, the
// optimistic one waits a configurable extra time for a late reply (or the
// remaining rejects) before aborting.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_set>
#include <vector>

#include "consensus/addresses.hpp"
#include "consensus/messages.hpp"
#include "consensus/service_client.hpp"
#include "obs/trace.hpp"
#include "sim/node.hpp"

namespace idem::core {

struct IdemClientConfig {
  std::size_t n = 3;
  std::size_t f = 1;

  enum class Strategy { Pessimistic, Optimistic };
  Strategy strategy = Strategy::Optimistic;

  /// Optimistic clients wait this long after the (n-f)th REJECT for a late
  /// reply before abandoning the operation (paper: 5 ms).
  Duration optimistic_wait = 5 * kMillisecond;

  /// Retransmit the request if nothing conclusive was heard for this long.
  Duration retry_interval = 500 * kMillisecond;

  /// Give up entirely after this long (0 = never). Outcome::Timeout.
  Duration operation_timeout = 0;

  /// Optional request-lifecycle trace sink (borrowed, may be null).
  obs::TraceRecorder* trace = nullptr;
};

class IdemClient final : public sim::Node, public consensus::ServiceClient {
 public:
  IdemClient(sim::Runtime& sim, sim::Transport& net, ClientId id, IdemClientConfig config);

  void invoke(std::vector<std::byte> command, Callback callback) override;
  void set_request_deadline(Duration deadline) override { request_deadline_ = deadline; }
  ClientId client_id() const override { return cid_; }
  bool busy() const override { return pending_.has_value(); }

  std::uint64_t operations_started() const { return onr_; }

  /// Section 5.3 optimization: invoked the moment the (n-f)th REJECT
  /// arrives (the ambivalence state), with the rejects seen so far. An
  /// optimistic client application can start *preparing* its fallback
  /// here while the client still waits for a possible late reply.
  std::function<void(std::size_t rejects_seen)> on_ambivalence;

 protected:
  void on_message(sim::NodeId from, const sim::Payload& message) override;

 private:
  struct PendingOp {
    RequestId id;
    std::shared_ptr<const msg::Request> request;
    Callback callback;
    Time issued = 0;
    std::unordered_set<std::uint32_t> rejects;
    RejectReason redirect_reason = RejectReason::None;  ///< WrongShard redirect
    std::uint64_t redirect_epoch = 0;
    std::uint32_t redirect_group = 0;
  };

  void multicast_request();
  void complete(consensus::Outcome::Kind kind, std::vector<std::byte> result);
  void arm_retry();

  IdemClientConfig config_;
  ClientId cid_;
  std::uint64_t onr_ = 0;
  Duration request_deadline_ = 0;  ///< budget stamped on subsequent invokes
  std::optional<PendingOp> pending_;
  sim::TimerId retry_timer_;
  sim::TimerId ambivalence_timer_;
  sim::TimerId deadline_timer_;
};

}  // namespace idem::core
