#include "idem/client.hpp"

#include <cassert>
#include <utility>

namespace idem::core {

IdemClient::IdemClient(sim::Runtime& sim, sim::Transport& net, ClientId id,
                       IdemClientConfig config)
    : sim::Node(sim, net, consensus::client_address(id), sim::NodeKind::Client),
      config_(config),
      cid_(id) {}

void IdemClient::invoke(std::vector<std::byte> command, Callback callback) {
  assert(!pending_ && "one pending request per client");
  ++onr_;
  PendingOp op;
  op.id = RequestId{cid_, OpNum{onr_}};
  op.request = std::make_shared<const msg::Request>(op.id, std::move(command), request_deadline_);
  op.callback = std::move(callback);
  op.issued = now();
  pending_ = std::move(op);
  IDEM_TRACE(config_.trace, now(), obs::TraceEventKind::RequestIssued, id().value, pending_->id);

  multicast_request();
  arm_retry();
  if (config_.operation_timeout > 0) {
    deadline_timer_ = set_timer(config_.operation_timeout, [this] {
      deadline_timer_ = sim::TimerId{};
      if (pending_) complete(consensus::Outcome::Kind::Timeout, {});
    });
  }
}

void IdemClient::multicast_request() {
  for (std::uint32_t i = 0; i < config_.n; ++i) {
    send(consensus::replica_address(ReplicaId{i}), pending_->request);
  }
}

void IdemClient::arm_retry() {
  cancel_timer(retry_timer_);
  if (config_.retry_interval <= 0) return;
  retry_timer_ = set_timer(config_.retry_interval, [this] {
    retry_timer_ = sim::TimerId{};
    if (!pending_) return;
    IDEM_TRACE(config_.trace, now(), obs::TraceEventKind::RequestRetry, id().value,
               pending_->id);
    // Paper Section 4.5 counts rejections "for this try": a retransmission
    // starts a new try, so rejections of the previous multicast must not
    // carry over. Without this reset, a replica whose acceptance test said
    // no under an earlier load level stays counted forever, and n distinct
    // replicas each rejecting a *different* try adds up to a bogus
    // definitive rejection of a request some replica may still execute
    // (ROADMAP item 1, pinned by the seed-4506 corpus artifact).
    pending_->rejects.clear();
    multicast_request();
    arm_retry();
  });
}

void IdemClient::on_message(sim::NodeId from, const sim::Payload& message) {
  if (!pending_) return;
  const auto* base = dynamic_cast<const msg::Message*>(&message);
  if (base == nullptr) return;

  if (base->type() == msg::Type::Reply) {
    const auto& reply = static_cast<const msg::Reply&>(*base);
    if (reply.id != pending_->id) return;  // stale reply for an older operation
    complete(consensus::Outcome::Kind::Reply, reply.result);
    return;
  }

  if (base->type() == msg::Type::Reject) {
    const auto& reject = static_cast<const msg::Reject&>(*base);
    if (reject.id != pending_->id) return;
    IDEM_TRACE(config_.trace, now(), obs::TraceEventKind::RejectSeen, id().value, pending_->id,
               pack_reject_seen(from.value, reject.reason));
    if (reject.reason == RejectReason::WrongShard) {
      // The whole group disowns the key — its gate is deterministic, so one
      // WrongShard is as conclusive as n rejects. Abort immediately and hand
      // the redirect (newer map epoch + home group) to the caller; waiting
      // for the siblings' identical verdicts would only add latency.
      pending_->redirect_reason = RejectReason::WrongShard;
      pending_->redirect_epoch = reject.map_epoch;
      pending_->redirect_group = reject.home_group;
      complete(consensus::Outcome::Kind::Rejected, {});
      return;
    }
    pending_->rejects.insert(from.value);
    const std::size_t rejects = pending_->rejects.size();

    if (rejects >= config_.n) {
      // Failure state: every replica rejected; abort immediately.
      complete(consensus::Outcome::Kind::Rejected, {});
      return;
    }
    if (rejects >= config_.n - config_.f) {
      // Ambivalence state (Section 5.3).
      if (rejects == config_.n - config_.f && on_ambivalence) on_ambivalence(rejects);
      if (config_.strategy == IdemClientConfig::Strategy::Pessimistic) {
        complete(consensus::Outcome::Kind::Rejected, {});
      } else if (!ambivalence_timer_.valid()) {
        ambivalence_timer_ = set_timer(config_.optimistic_wait, [this] {
          ambivalence_timer_ = sim::TimerId{};
          if (pending_) complete(consensus::Outcome::Kind::Rejected, {});
        });
      }
    }
  }
}

void IdemClient::complete(consensus::Outcome::Kind kind, std::vector<std::byte> result) {
  cancel_timer(retry_timer_);
  cancel_timer(ambivalence_timer_);
  cancel_timer(deadline_timer_);
  IDEM_TRACE(config_.trace, now(), obs::TraceEventKind::RequestOutcome, id().value,
             pending_->id, static_cast<std::uint64_t>(kind));

  consensus::Outcome outcome;
  outcome.kind = kind;
  outcome.issued = pending_->issued;
  outcome.completed = now();
  outcome.result = std::move(result);
  outcome.rejects_seen = pending_->rejects.size();
  outcome.definitive_failure = pending_->rejects.size() >= config_.n;
  outcome.redirect_reason = pending_->redirect_reason;
  outcome.redirect_epoch = pending_->redirect_epoch;
  outcome.redirect_group = pending_->redirect_group;
  outcome.deadline = pending_->request->deadline;

  Callback callback = std::move(pending_->callback);
  pending_.reset();
  callback(outcome);
}

}  // namespace idem::core
