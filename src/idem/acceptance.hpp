// IDEM's binding of the shared acceptance tests (src/core/acceptance.hpp):
// maps IdemConfig onto the protocol-independent AcceptanceOptions. The
// tests themselves live in the replication core so other protocols (e.g.
// SMaRt+PR) can reuse them without depending on IDEM.
#pragma once

#include <memory>

#include "core/acceptance.hpp"
#include "idem/config.hpp"

namespace idem::core {

inline std::unique_ptr<AcceptanceTest> make_default_acceptance(const IdemConfig& config,
                                                               std::size_t client_count) {
  AcceptanceOptions options;
  options.aqm_start_fraction = config.aqm_start_fraction;
  options.aqm_time_slice = config.aqm_time_slice;
  options.aqm_group_count = config.aqm_group_count;
  options.prf_seed = config.acceptance_prf_seed;
  options.reject_threshold = config.reject_threshold;
  return make_default_acceptance(options, client_count);
}

}  // namespace idem::core
