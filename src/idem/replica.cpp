#include "idem/replica.hpp"

#include <algorithm>
#include <cassert>

#include "common/logging.hpp"

namespace idem::core {

namespace {
constexpr Duration kFetchRetry = 5 * kMillisecond;
constexpr std::size_t kFetchPrefetch = 64;  // committed instances fetched ahead of the head
constexpr Duration kCheckpointBaseCost = 20 * kMicrosecond;
constexpr double kCheckpointNsPerByte = 1.0;
}  // namespace

IdemReplica::IdemReplica(sim::Runtime& sim, sim::Transport& net, ReplicaId id,
                         IdemConfig config, std::unique_ptr<app::StateMachine> state_machine,
                         std::unique_ptr<AcceptanceTest> acceptance)
    : sim::Node(sim, net, consensus::replica_address(id), sim::NodeKind::Replica),
      config_(config),
      me_(id),
      sm_(std::move(state_machine)),
      acceptance_(std::move(acceptance)),
      checkpoints_(config.checkpoint_interval),
      cost_rng_(sim.seed(), 0xC057'0000ull + id.value) {
  assert(config_.n == 2 * config_.f + 1);
  assert(sm_ != nullptr);
  assert(acceptance_ != nullptr);
}

std::optional<OpNum> IdemReplica::last_executed(ClientId cid) const {
  auto it = last_exec_.find(cid.value);
  if (it == last_exec_.end()) return std::nullopt;
  return OpNum{it->second};
}

void IdemReplica::on_restart() {
  // Timers pending at crash time fired as no-ops while the node was down;
  // drop the stale handles and re-arm the periodic machinery exactly as a
  // rebooted process (with its durable state intact) would.
  for (auto& [id, timer] : forward_timers_) cancel_timer(timer);
  forward_timers_.clear();
  cancel_timer(require_flush_timer_);
  cancel_timer(state_retry_timer_);
  cancel_timer(progress_timer_);
  arm_progress_timer();
}

Duration IdemReplica::message_cost(const sim::Payload& message) const {
  return config_.costs.cost(message, cost_rng_);
}

Duration IdemReplica::send_cost(const sim::Payload& message) const {
  return config_.costs.send_cost(message, cost_rng_);
}

void IdemReplica::multicast(sim::PayloadPtr message) {
  for (std::uint32_t i = 0; i < config_.n; ++i) {
    if (i == me_.value) continue;
    send(consensus::replica_address(ReplicaId{i}), message);
  }
}

void IdemReplica::send_to_leader(sim::PayloadPtr message) {
  ViewId v = in_viewchange_ ? vc_target_ : view_;
  ReplicaId leader = consensus::leader_of(v, config_.n);
  if (leader == me_) return;  // callers short-circuit local handling
  send(consensus::replica_address(leader), std::move(message));
}

void IdemReplica::reply_to_client(ClientId cid, sim::PayloadPtr message) {
  send(consensus::client_address(cid), std::move(message));
}

void IdemReplica::on_message(sim::NodeId from, const sim::Payload& message) {
  const auto* base = dynamic_cast<const msg::Message*>(&message);
  if (base == nullptr) return;
  switch (base->type()) {
    case msg::Type::Request:
      handle_request(static_cast<const msg::Request&>(*base));
      break;
    case msg::Type::Require: {
      const auto& require = static_cast<const msg::Require&>(*base);
      for (RequestId id : require.ids) note_require(require.from, id);
      break;
    }
    case msg::Type::Propose:
      handle_propose(static_cast<const msg::Propose&>(*base));
      break;
    case msg::Type::Commit:
      handle_commit(static_cast<const msg::Commit&>(*base));
      break;
    case msg::Type::Forward:
      handle_forward(static_cast<const msg::Forward&>(*base));
      break;
    case msg::Type::Fetch:
      handle_fetch(consensus::replica_of_address(from), static_cast<const msg::Fetch&>(*base));
      break;
    case msg::Type::ViewChange:
      handle_viewchange(static_cast<const msg::ViewChange&>(*base));
      break;
    case msg::Type::StateRequest:
      handle_state_request(static_cast<const msg::StateRequest&>(*base));
      break;
    case msg::Type::StateResponse:
      handle_state_response(static_cast<const msg::StateResponse&>(*base));
      break;
    default:
      // Messages of other protocols are ignored (shared message namespace).
      break;
  }
}

// ---------------------------------------------------------------------------
// Request intake
// ---------------------------------------------------------------------------

void IdemReplica::handle_request(const msg::Request& request) {
  ++stats_.requests_received;
  const RequestId id = request.id;

  auto last_it = last_exec_.find(id.cid.value);
  if (last_it != last_exec_.end() && id.onr.value <= last_it->second) {
    // Already executed (client retransmission): re-send the cached reply if
    // it is for exactly this operation.
    auto reply_it = last_reply_.find(id.cid.value);
    if (reply_it != last_reply_.end() && reply_it->second->id == id) {
      reply_to_client(id.cid, reply_it->second);
    }
    return;
  }

  if (requests_.contains(id)) return;  // already accepted; agreement is underway

  // A previously rejected request (still cached) is re-tested below: the
  // acceptance test is explicitly time-varying (Section 5.1), so a
  // retransmission may well be accepted now that load has dropped —
  // accept_request() then promotes the body out of the cache.

  AcceptanceContext ctx;
  ctx.active_requests = active_.size();
  ctx.reject_threshold = config_.reject_threshold;
  ctx.now = now();
  if (acceptance_->accept(id, request.command, ctx)) {
    IDEM_TRACE(config_.trace, now(), obs::TraceEventKind::AcceptVerdict, me_.value, id, 1);
    accept_request(id, request.command, /*client_issued=*/true);
  } else {
    IDEM_TRACE(config_.trace, now(), obs::TraceEventKind::AcceptVerdict, me_.value, id, 0);
    reject_request(request);
  }
}

void IdemReplica::accept_request(RequestId id, std::vector<std::byte> command,
                                 bool client_issued) {
  requests_[id] = std::move(command);
  if (auto it = rejected_index_.find(id); it != rejected_index_.end()) {
    rejected_lru_.erase(it->second);
    rejected_index_.erase(it);
  }
  if (client_issued) {
    active_.insert(id);
    ++stats_.accepted;
  } else {
    ++stats_.forward_accepted;
    IDEM_TRACE(config_.trace, now(), obs::TraceEventKind::ForwardAccepted, me_.value, id);
  }
  arm_forward_timer(id);
  queue_require(id);
  arm_progress_timer();
}

void IdemReplica::reject_request(const msg::Request& request) {
  ++stats_.rejected;
  cache_rejected(request.id, request.command);
  reply_to_client(request.id.cid, std::make_shared<const msg::Reject>(request.id));
}

void IdemReplica::queue_require(RequestId id) {
  if (is_leader()) {
    note_require(me_, id);
    return;
  }
  pending_requires_.push_back(id);
  if (pending_requires_.size() >= config_.require_batch_max) {
    flush_requires();
  } else if (!require_flush_timer_.valid()) {
    require_flush_timer_ = set_timer(config_.require_flush_interval, [this] {
      require_flush_timer_ = sim::TimerId{};
      flush_requires();
    });
  }
}

void IdemReplica::flush_requires() {
  cancel_timer(require_flush_timer_);
  if (pending_requires_.empty()) return;
  auto require = std::make_shared<msg::Require>();
  require->from = me_;
  require->ids = std::move(pending_requires_);
  pending_requires_.clear();
  if (is_leader()) {
    for (RequestId id : require->ids) note_require(me_, id);
  } else {
    send_to_leader(std::move(require));
  }
}

// ---------------------------------------------------------------------------
// Agreement
// ---------------------------------------------------------------------------

void IdemReplica::note_require(ReplicaId voter, RequestId id) {
  auto last_it = last_exec_.find(id.cid.value);
  if (last_it != last_exec_.end() && id.onr.value <= last_it->second) return;
  if (proposed_.contains(id)) return;
  IDEM_TRACE(config_.trace, now(), obs::TraceEventKind::RequireNoted, me_.value, id,
             voter.value);
  std::size_t votes = requires_.vote(id, voter);
  if (votes >= config_.quorum() && !in_eligible_.contains(id)) {
    in_eligible_.insert(id);
    eligible_.push_back(id);
    arm_progress_timer();
  }
  try_propose();
}

void IdemReplica::try_propose() {
  if (!is_leader()) return;
  if (next_sqn_ < sqn_low_) next_sqn_ = sqn_low_;
  const std::uint64_t window_end = sqn_low_ + config_.effective_window();
  while (!eligible_.empty() && next_sqn_ < window_end) {
    // Skip sequence numbers that already carry a binding (re-proposed slots
    // taken over from an earlier view).
    while (instances_.contains(next_sqn_) && instances_[next_sqn_].has_binding) ++next_sqn_;
    if (next_sqn_ >= window_end) break;

    std::vector<RequestId> batch;
    while (!eligible_.empty() && batch.size() < config_.batch_max) {
      RequestId id = eligible_.front();
      eligible_.pop_front();
      in_eligible_.erase(id);
      auto last_it = last_exec_.find(id.cid.value);
      if (last_it != last_exec_.end() && id.onr.value <= last_it->second) continue;
      if (proposed_.contains(id)) continue;
      batch.push_back(id);
    }
    if (batch.empty()) break;

    Instance& inst = instances_[next_sqn_];
    inst.view = view_;
    inst.ids = batch;
    inst.has_binding = true;
    inst.own_commit_sent = true;  // the leader's proposal counts as a commit
    inst.commit_votes.insert(me_.value);
    for (RequestId id : batch) {
      proposed_.insert(id);
      requires_.erase(id);
      IDEM_TRACE(config_.trace, now(), obs::TraceEventKind::Proposed, me_.value, id, next_sqn_);
    }
    IDEM_TRACE(config_.trace, now(), obs::TraceEventKind::ProposeReceived, me_.value, next_sqn_);
    note_commit_quorum(next_sqn_, inst);

    auto propose = std::make_shared<msg::Propose>();
    propose->view = view_;
    propose->sqn = SeqNum{next_sqn_};
    propose->ids = std::move(batch);
    multicast(std::move(propose));
    ++stats_.proposals_sent;
    ++next_sqn_;
  }
  try_execute();
}

bool IdemReplica::observe_view(ViewId view) {
  if (view < view_) return false;
  if (view == view_) return !in_viewchange_;
  enter_view(view);
  return true;
}

void IdemReplica::adopt_binding(std::uint64_t sqn, ViewId view, const std::vector<RequestId>& ids) {
  if (sqn < sqn_low_) return;
  Instance& inst = instances_[sqn];
  if (inst.executed) return;  // applied state is immutable
  if (inst.has_binding && inst.view >= view) return;
  if (!inst.has_binding) {
    IDEM_TRACE(config_.trace, now(), obs::TraceEventKind::ProposeReceived, me_.value, sqn);
  }
  inst.view = view;
  inst.ids = ids;
  inst.has_binding = true;
  inst.own_commit_sent = false;
  inst.commit_votes.clear();
}

void IdemReplica::note_commit_quorum(std::uint64_t sqn, Instance& inst) {
  if (inst.quorum_traced || inst.commit_votes.size() < config_.quorum()) return;
  inst.quorum_traced = true;
  IDEM_TRACE(config_.trace, now(), obs::TraceEventKind::CommitQuorum, me_.value, sqn);
}

void IdemReplica::add_commit_vote(std::uint64_t sqn, ReplicaId voter) {
  if (sqn < sqn_low_) return;
  auto it = instances_.find(sqn);
  if (it == instances_.end()) return;
  it->second.commit_votes.insert(voter.value);
}

void IdemReplica::handle_propose(const msg::Propose& propose) {
  if (!observe_view(propose.view)) return;
  const std::uint64_t sqn = propose.sqn.value;
  if (sqn < sqn_low_) return;

  adopt_binding(sqn, propose.view, propose.ids);
  Instance& inst = instances_[sqn];
  if (inst.view != propose.view) return;  // a newer binding superseded this

  // The leader's proposal counts as its commit.
  inst.commit_votes.insert(consensus::leader_of(propose.view, config_.n).value);
  if (!inst.own_commit_sent) {
    auto commit = std::make_shared<msg::Commit>();
    commit->from = me_;
    commit->view = inst.view;
    commit->sqn = SeqNum{sqn};
    commit->ids = inst.ids;
    multicast(std::move(commit));
    inst.own_commit_sent = true;
    inst.commit_votes.insert(me_.value);
  }
  note_commit_quorum(sqn, inst);
  observe_sequence(sqn, consensus::leader_of(propose.view, config_.n));
  try_execute();
}

void IdemReplica::handle_commit(const msg::Commit& commit) {
  if (!observe_view(commit.view)) return;
  const std::uint64_t sqn = commit.sqn.value;
  if (sqn < sqn_low_) return;

  // Commits echo the proposal, so a replica that missed the PROPOSE still
  // learns the binding here.
  adopt_binding(sqn, commit.view, commit.ids);
  Instance& inst = instances_[sqn];
  if (inst.view != commit.view) return;

  inst.commit_votes.insert(commit.from.value);
  inst.commit_votes.insert(consensus::leader_of(commit.view, config_.n).value);
  if (!inst.own_commit_sent) {
    auto own = std::make_shared<msg::Commit>();
    own->from = me_;
    own->view = inst.view;
    own->sqn = SeqNum{sqn};
    own->ids = inst.ids;
    multicast(std::move(own));
    inst.own_commit_sent = true;
    inst.commit_votes.insert(me_.value);
  }
  note_commit_quorum(sqn, inst);
  observe_sequence(sqn, commit.from);
  try_execute();
}

bool IdemReplica::fetch_missing(std::uint64_t sqn, Instance& inst) {
  std::vector<RequestId> missing;
  for (RequestId id : inst.ids) {
    auto last_it = last_exec_.find(id.cid.value);
    if (last_it != last_exec_.end() && id.onr.value <= last_it->second) continue;
    if (find_command(id) == nullptr) missing.push_back(id);
  }
  if (missing.empty()) return false;
  if (inst.fetch_sent_at >= 0 && now() - inst.fetch_sent_at < kFetchRetry) return true;
  inst.fetch_sent_at = now();
  // Ask a replica that committed this instance (it executed or will
  // execute it, so it owns the bodies or can get them).
  ReplicaId target = consensus::leader_of(inst.view, config_.n);
  for (std::uint32_t voter : inst.commit_votes) {
    if (voter != me_.value) {
      target = ReplicaId{voter};
      break;
    }
  }
  for (RequestId id : missing) {
    auto fetch = std::make_shared<msg::Fetch>();
    fetch->from = me_;
    fetch->id = id;
    send(consensus::replica_address(target), std::move(fetch));
    ++stats_.fetches_sent;
  }
  (void)sqn;
  return true;
}

void IdemReplica::try_execute() {
  for (;;) {
    auto it = instances_.find(next_exec_);
    if (it == instances_.end()) return;
    Instance& inst = it->second;
    if (!inst.has_binding || inst.executed) return;
    if (inst.commit_votes.size() < config_.quorum()) return;

    if (fetch_missing(next_exec_, inst)) {
      // The head is blocked on missing bodies. Prefetch for the committed
      // instances behind it too: fetching one instance per round trip
      // would otherwise serialize catch-up at network latency.
      std::size_t prefetched = 0;
      for (auto ahead = std::next(it);
           ahead != instances_.end() && prefetched < kFetchPrefetch; ++ahead, ++prefetched) {
        Instance& future = ahead->second;
        if (!future.has_binding || future.executed) continue;
        if (future.commit_votes.size() < config_.quorum()) continue;
        fetch_missing(ahead->first, future);
      }
      // Retry via timer in case fetch responses are lost.
      set_timer(kFetchRetry, [this] { try_execute(); });
      return;
    }

    execute_instance(next_exec_, inst);
    maybe_checkpoint(next_exec_);
    ++next_exec_;
    note_progress();
  }
}

void IdemReplica::execute_instance(std::uint64_t sqn, Instance& inst) {
  for (RequestId id : inst.ids) {
    auto last_it = last_exec_.find(id.cid.value);
    if (last_it != last_exec_.end() && id.onr.value <= last_it->second) {
      ++stats_.duplicates_skipped;
      continue;
    }
    const std::vector<std::byte>* command = find_command(id);
    assert(command != nullptr);
    charge(config_.costs.apply_jitter(sm_->execution_cost(*command), cost_rng_));
    std::vector<std::byte> result = sm_->execute(*command);
    ++stats_.executed;
    IDEM_TRACE(config_.trace, now(), obs::TraceEventKind::Executed, me_.value, id, sqn);
    last_exec_[id.cid.value] = id.onr.value;
    auto reply = std::make_shared<const msg::Reply>(id, std::move(result));
    last_reply_[id.cid.value] = reply;
    active_.erase(id);
    if (auto timer_it = forward_timers_.find(id); timer_it != forward_timers_.end()) {
      cancel_timer(timer_it->second);
      forward_timers_.erase(timer_it);
    }
    if (is_leader()) {
      reply_to_client(id.cid, reply);
      IDEM_TRACE(config_.trace, now(), obs::TraceEventKind::ReplySent, me_.value, id);
    }
    if (on_execute) on_execute(SeqNum{sqn}, id);
  }
  inst.executed = true;
}

// ---------------------------------------------------------------------------
// Availability: forwarding, rejected cache, fetch (Section 5.2)
// ---------------------------------------------------------------------------

void IdemReplica::arm_forward_timer(RequestId id) {
  if (forward_timers_.contains(id)) return;
  forward_timers_[id] = set_timer(config_.forward_timeout, [this, id] {
    forward_timers_.erase(id);
    forward_request(id);
  });
}

void IdemReplica::forward_request(RequestId id) {
  auto last_it = last_exec_.find(id.cid.value);
  if (last_it != last_exec_.end() && id.onr.value <= last_it->second) return;
  auto body_it = requests_.find(id);
  if (body_it == requests_.end()) return;

  auto forward = std::make_shared<msg::Forward>();
  forward->from = me_;
  forward->requests.emplace_back(id, body_it->second);
  multicast(std::move(forward));
  ++stats_.forwards_sent;
  // Keep relaying periodically until the request is executed (fair-loss
  // links: eventual delivery needs retransmission).
  arm_forward_timer(id);
}

void IdemReplica::handle_forward(const msg::Forward& forward) {
  for (const msg::Request& request : forward.requests) {
    auto last_it = last_exec_.find(request.id.cid.value);
    if (last_it != last_exec_.end() && request.id.onr.value <= last_it->second) continue;
    if (requests_.contains(request.id)) continue;
    // Forwarded requests are accepted regardless of the current load
    // (Section 4.3): some replica accepted them, so they must be ordered.
    accept_request(request.id, request.command, /*client_issued=*/false);
  }
}

void IdemReplica::handle_fetch(ReplicaId from, const msg::Fetch& fetch) {
  const std::vector<std::byte>* command = find_command(fetch.id);
  if (command == nullptr) return;
  auto forward = std::make_shared<msg::Forward>();
  forward->from = me_;
  forward->requests.emplace_back(fetch.id, *command);
  send(consensus::replica_address(from), std::move(forward));
}

void IdemReplica::cache_rejected(RequestId id, std::vector<std::byte> command) {
  if (config_.rejected_cache_size == 0) return;
  if (auto it = rejected_index_.find(id); it != rejected_index_.end()) {
    rejected_lru_.splice(rejected_lru_.begin(), rejected_lru_, it->second);
    return;
  }
  rejected_lru_.emplace_front(id, std::move(command));
  rejected_index_[id] = rejected_lru_.begin();
  while (rejected_lru_.size() > config_.rejected_cache_size) {
    rejected_index_.erase(rejected_lru_.back().first);
    rejected_lru_.pop_back();
  }
}

const std::vector<std::byte>* IdemReplica::find_command(RequestId id) const {
  if (auto it = requests_.find(id); it != requests_.end()) return &it->second;
  if (auto it = rejected_index_.find(id); it != rejected_index_.end()) {
    return &it->second->second;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Implicit garbage collection and checkpoints (Section 4.4)
// ---------------------------------------------------------------------------

void IdemReplica::request_state_transfer(ReplicaId source) {
  if (state_transfer_pending_) return;
  state_transfer_pending_ = true;
  state_transfer_source_ = source;
  auto request = std::make_shared<msg::StateRequest>();
  request->from = me_;
  request->have = SeqNum{next_exec_ == 0 ? 0 : next_exec_ - 1};
  send(consensus::replica_address(source), std::move(request));
  // The peer stays silent when it has no newer checkpoint (or the
  // response is lost): release the latch after a while and re-evaluate,
  // or this replica could never ask again.
  cancel_timer(state_retry_timer_);
  state_retry_timer_ = set_timer(250 * kMillisecond, [this] {
    state_retry_timer_ = sim::TimerId{};
    state_transfer_pending_ = false;
    maybe_request_state();
  });
}

void IdemReplica::maybe_request_state() {
  // A bound instance ahead of an unbound execution head means the missing
  // slots may have been garbage-collected cluster-wide: only a checkpoint
  // can bridge the gap.
  auto head = instances_.find(next_exec_);
  if (head != instances_.end() && head->second.has_binding) return;
  auto ahead = instances_.upper_bound(next_exec_);
  while (ahead != instances_.end() && !ahead->second.has_binding) ++ahead;
  if (ahead == instances_.end()) return;

  ReplicaId target = consensus::leader_of(ahead->second.view, config_.n);
  for (std::uint32_t voter : ahead->second.commit_votes) {
    if (voter != me_.value) {
      target = ReplicaId{voter};
      break;
    }
  }
  if (target == me_) {
    target = ReplicaId{static_cast<std::uint32_t>((me_.value + 1) % config_.n)};
  }
  request_state_transfer(target);
}

void IdemReplica::observe_sequence(std::uint64_t sqn, ReplicaId source) {
  const std::uint64_t r_max = config_.r_max();
  if (sqn < sqn_low_ + r_max) return;
  std::uint64_t new_low = sqn - r_max + 1;

  if (new_low > next_exec_) {
    // We are lagging: f+1 replicas have executed past our window, so the
    // old instances may be gone system-wide. Catch up via checkpoint.
    request_state_transfer(source);
    new_low = next_exec_;
  }
  if (new_low > sqn_low_) advance_window(new_low);
}

void IdemReplica::advance_window(std::uint64_t new_low) {
  for (auto it = instances_.begin(); it != instances_.end() && it->first < new_low;) {
    if (it->second.executed) {
      for (RequestId id : it->second.ids) {
        requests_.erase(id);
        proposed_.erase(id);
      }
    }
    it = instances_.erase(it);
  }
  sqn_low_ = new_low;
}

void IdemReplica::maybe_checkpoint(std::uint64_t executed_sqn) {
  if (!checkpoints_.due(SeqNum{executed_sqn})) return;
  std::vector<std::byte> snapshot = sm_->snapshot();
  charge(kCheckpointBaseCost +
         static_cast<Duration>(kCheckpointNsPerByte * static_cast<double>(snapshot.size())));
  consensus::Checkpoint checkpoint;
  checkpoint.upto = SeqNum{executed_sqn};
  checkpoint.snapshot = std::move(snapshot);
  checkpoint.last_executed = {last_exec_.begin(), last_exec_.end()};
  checkpoints_.store(std::move(checkpoint));
  ++stats_.checkpoints_created;
}

void IdemReplica::handle_state_request(const msg::StateRequest& request) {
  const auto& latest = checkpoints_.latest();
  if (!latest || latest->upto.value <= request.have.value) return;
  auto response = std::make_shared<msg::StateResponse>();
  response->from = me_;
  response->upto = latest->upto;
  response->snapshot = latest->snapshot;
  response->last_executed.reserve(latest->last_executed.size());
  for (const auto& [cid, onr] : latest->last_executed) {
    response->last_executed.emplace_back(ClientId{cid}, OpNum{onr});
  }
  send(consensus::replica_address(request.from), std::move(response));
}

void IdemReplica::handle_state_response(const msg::StateResponse& response) {
  // Only accept the response we asked for, from the replica we asked:
  // unsolicited or duplicate checkpoints must not be able to replace
  // state (a replica never needs state it did not request).
  if (!state_transfer_pending_ || response.from != state_transfer_source_) return;
  state_transfer_pending_ = false;
  if (response.upto.value < next_exec_) return;  // stale; we caught up meanwhile
  try {
    sm_->restore(response.snapshot);
  } catch (const CodecError&) {
    // Malformed snapshot (buggy or hostile sender): restore() is strongly
    // exception-safe by contract, so our state is untouched — drop it.
    return;
  }
  charge(kCheckpointBaseCost + static_cast<Duration>(kCheckpointNsPerByte *
                                                     static_cast<double>(response.snapshot.size())));
  for (const auto& [cid, onr] : response.last_executed) {
    auto& entry = last_exec_[cid.value];
    if (onr.value > entry) entry = onr.value;
  }
  // Cached replies are stale after a restore; clients retransmit if needed.
  last_reply_.clear();
  next_exec_ = response.upto.value + 1;
  if (next_exec_ > sqn_low_) advance_window(next_exec_);
  // Drop active entries that the checkpoint proves executed.
  for (auto it = active_.begin(); it != active_.end();) {
    auto last_it = last_exec_.find(it->cid.value);
    if (last_it != last_exec_.end() && it->onr.value <= last_it->second) {
      if (auto timer_it = forward_timers_.find(*it); timer_it != forward_timers_.end()) {
        cancel_timer(timer_it->second);
        forward_timers_.erase(timer_it);
      }
      it = active_.erase(it);
    } else {
      ++it;
    }
  }
  ++stats_.state_transfers;
  cancel_timer(state_retry_timer_);
  try_execute();
  // The checkpoint may still be older than the cluster's GC line (the
  // peer simply shipped its newest): if a gap remains, ask again — by
  // then the peer has likely checkpointed further.
  maybe_request_state();
}

// ---------------------------------------------------------------------------
// View change (Section 4.5)
// ---------------------------------------------------------------------------

bool IdemReplica::has_outstanding_work() const {
  if (!active_.empty() || !eligible_.empty()) return true;
  auto it = instances_.lower_bound(next_exec_);
  return it != instances_.end() && it->second.has_binding && !it->second.executed;
}

void IdemReplica::arm_progress_timer() {
  if (progress_timer_.valid()) return;
  if (!has_outstanding_work()) return;
  progress_timer_ = set_timer(config_.viewchange_timeout, [this] {
    progress_timer_ = sim::TimerId{};
    if (!has_outstanding_work()) return;
    ViewId target{(in_viewchange_ ? vc_target_.value : view_.value) + 1};
    start_viewchange(target);
  });
}

void IdemReplica::note_progress() {
  cancel_timer(progress_timer_);
  arm_progress_timer();
}

void IdemReplica::start_viewchange(ViewId target) {
  if (target <= view_) return;
  if (in_viewchange_ && vc_target_ >= target) return;
  in_viewchange_ = true;
  vc_target_ = target;
  ++stats_.view_changes;
  IDEM_TRACE(config_.trace, now(), obs::TraceEventKind::ViewChangeStart, me_.value,
             target.value);

  auto viewchange = std::make_shared<msg::ViewChange>();
  viewchange->from = me_;
  viewchange->target = target;
  viewchange->window_start = SeqNum{sqn_low_};
  for (const auto& [sqn, inst] : instances_) {
    if (!inst.has_binding) continue;
    msg::WindowEntry entry;
    entry.sqn = SeqNum{sqn};
    entry.view = inst.view;
    entry.ids = inst.ids;
    viewchange->proposals.push_back(std::move(entry));
  }
  viewchange_store_[me_.value] = *viewchange;
  multicast(viewchange);

  // Make sure the prospective leader learns about our accepted requests;
  // REQUIREs sent to the crashed leader are lost with it.
  resend_requires();

  // Safeguard: if this view change does not complete, try the next view.
  cancel_timer(progress_timer_);
  arm_progress_timer();

  maybe_become_leader(target);
}

void IdemReplica::handle_viewchange(const msg::ViewChange& viewchange) {
  if (viewchange.target <= view_) return;
  auto it = viewchange_store_.find(viewchange.from.value);
  if (it == viewchange_store_.end() || it->second.target <= viewchange.target) {
    viewchange_store_[viewchange.from.value] = viewchange;
  }

  // A replica already amid a view change adopts a higher target right
  // away: independent timeout escalation would otherwise let stragglers
  // chase each other's targets forever.
  if (in_viewchange_ && viewchange.target > vc_target_) {
    start_viewchange(viewchange.target);
    return;
  }

  // Join the view change once f+1 replicas demand it: the current view no
  // longer has enough support to make progress.
  std::size_t matching = 0;
  for (const auto& [from, stored] : viewchange_store_) {
    if (stored.target == viewchange.target) ++matching;
  }
  bool joined = in_viewchange_ && vc_target_ >= viewchange.target;
  if (!joined && matching >= config_.quorum()) {
    start_viewchange(viewchange.target);
    return;  // start_viewchange re-runs maybe_become_leader
  }
  maybe_become_leader(viewchange.target);
}

void IdemReplica::maybe_become_leader(ViewId target) {
  if (consensus::leader_of(target, config_.n) != me_) return;
  if (view_ >= target) return;
  if (!in_viewchange_ || vc_target_ != target) return;

  std::size_t matching = 0;
  for (const auto& [from, stored] : viewchange_store_) {
    if (stored.target == target) ++matching;
  }
  if (matching < config_.quorum()) return;

  // Merge the collected windows: per slot, the binding of the newest view
  // wins (adopt_binding enforces that).
  for (const auto& [from, stored] : viewchange_store_) {
    if (stored.target != target) continue;
    for (const auto& entry : stored.proposals) {
      adopt_binding(entry.sqn.value, entry.view, entry.ids);
    }
  }

  enter_view(target);

  // Determine the first free sequence number and fill binding gaps with
  // no-ops so execution cannot stall behind a hole.
  std::uint64_t high = sqn_low_ == 0 ? 0 : sqn_low_;
  for (const auto& [sqn, inst] : instances_) {
    if (inst.has_binding && sqn + 1 > high) high = sqn + 1;
  }
  if (next_sqn_ < high) next_sqn_ = high;
  if (next_sqn_ < sqn_low_) next_sqn_ = sqn_low_;

  for (std::uint64_t sqn = std::max(sqn_low_, next_exec_); sqn < high; ++sqn) {
    Instance& inst = instances_[sqn];
    if (inst.executed) continue;
    if (!inst.has_binding) {
      inst.ids.clear();  // no-op filler
      inst.has_binding = true;
    }
    // Re-propose under the new view; old-view commit votes are void.
    inst.view = view_;
    inst.commit_votes.clear();
    inst.commit_votes.insert(me_.value);
    inst.own_commit_sent = true;
    for (RequestId id : inst.ids) {
      proposed_.insert(id);
      IDEM_TRACE(config_.trace, now(), obs::TraceEventKind::Proposed, me_.value, id, sqn);
    }

    auto propose = std::make_shared<msg::Propose>();
    propose->view = view_;
    propose->sqn = SeqNum{sqn};
    propose->ids = inst.ids;
    multicast(std::move(propose));
    ++stats_.proposals_sent;
  }

  try_propose();
  try_execute();
}

void IdemReplica::enter_view(ViewId view) {
  view_ = view;
  in_viewchange_ = false;
  IDEM_TRACE(config_.trace, now(), obs::TraceEventKind::ViewChangeDone, me_.value, view.value);
  for (auto it = viewchange_store_.begin(); it != viewchange_store_.end();) {
    if (it->second.target <= view_) {
      it = viewchange_store_.erase(it);
    } else {
      ++it;
    }
  }
  resend_requires();
  note_progress();
}

void IdemReplica::resend_requires() {
  // Tell the (new) leader about every request we own that is still
  // unexecuted; its REQUIRE bookkeeping may have died with the old leader.
  std::vector<RequestId> outstanding;
  for (const auto& [id, command] : requests_) {
    auto last_it = last_exec_.find(id.cid.value);
    if (last_it != last_exec_.end() && id.onr.value <= last_it->second) continue;
    outstanding.push_back(id);
  }
  if (outstanding.empty()) return;

  ViewId v = in_viewchange_ ? vc_target_ : view_;
  if (consensus::leader_of(v, config_.n) == me_) {
    for (RequestId id : outstanding) note_require(me_, id);
  } else {
    auto require = std::make_shared<msg::Require>();
    require->from = me_;
    require->ids = std::move(outstanding);
    send_to_leader(std::move(require));
  }
}

}  // namespace idem::core
