#include "idem/replica.hpp"

#include <algorithm>
#include <cassert>

#include "common/logging.hpp"
#include "core/executor.hpp"
#include "core/lifecycle.hpp"
#include "core/sharding.hpp"

namespace idem::core {

namespace {
constexpr Duration kFetchRetry = 5 * kMillisecond;
constexpr std::size_t kFetchPrefetch = 64;  // committed instances fetched ahead of the head
constexpr Duration kCheckpointBaseCost = 20 * kMicrosecond;
constexpr double kCheckpointNsPerByte = 1.0;
}  // namespace

IdemReplica::IdemReplica(sim::Runtime& sim, sim::Transport& net, ReplicaId id,
                         IdemConfig config, std::unique_ptr<app::StateMachine> state_machine,
                         std::unique_ptr<AcceptanceTest> acceptance)
    : sim::Node(sim, net, consensus::replica_address(id), sim::NodeKind::Replica),
      config_(config),
      me_(id),
      sm_(std::move(state_machine)),
      acceptance_(std::move(acceptance)),
      rejected_(config.rejected_cache_size),
      checkpoints_(config.checkpoint_interval),
      cost_rng_(sim.seed(), 0xC057'0000ull + id.value) {
  assert(config_.n == 2 * config_.f + 1);
  assert(sm_ != nullptr);
  assert(acceptance_ != nullptr);
  batch_.configure({config_.batch_max, config_.batch_min, config_.batch_flush_delay});
}

void IdemReplica::on_restart() {
  // Timers pending at crash time fired as no-ops while the node was down;
  // drop the stale handles and re-arm the periodic machinery exactly as a
  // rebooted process (with its durable state intact) would.
  for (auto& [id, timer] : forward_timers_) cancel_timer(timer);
  forward_timers_.clear();
  cancel_timer(require_flush_timer_);
  cancel_timer(batch_timer_);
  cancel_timer(state_retry_timer_);
  cancel_timer(progress_timer_);
  arm_progress_timer();
}

Duration IdemReplica::message_cost(const sim::Payload& message) const {
  return config_.costs.cost(message, cost_rng_);
}

Duration IdemReplica::send_cost(const sim::Payload& message) const {
  return config_.costs.send_cost(message, cost_rng_);
}

Duration IdemReplica::message_deadline(const sim::Payload& message) const {
  const auto* base = dynamic_cast<const msg::Message*>(&message);
  if (base == nullptr || base->type() != msg::Type::Request) return 0;
  return static_cast<const msg::Request&>(*base).deadline;
}

void IdemReplica::multicast(sim::PayloadPtr message) {
  for (std::uint32_t i = 0; i < config_.n; ++i) {
    if (i == me_.value) continue;
    send(consensus::replica_address(ReplicaId{i}), message);
  }
}

void IdemReplica::send_to_leader(sim::PayloadPtr message) {
  ReplicaId leader = consensus::leader_of(views_.leader_view(), config_.n);
  if (leader == me_) return;  // callers short-circuit local handling
  send(consensus::replica_address(leader), std::move(message));
}

void IdemReplica::reply_to_client(ClientId cid, sim::PayloadPtr message) {
  send(consensus::client_address(cid), std::move(message));
}

void IdemReplica::on_message(sim::NodeId from, const sim::Payload& message) {
  const auto* base = dynamic_cast<const msg::Message*>(&message);
  if (base == nullptr) return;
  switch (base->type()) {
    case msg::Type::Request:
      handle_request(static_cast<const msg::Request&>(*base));
      break;
    case msg::Type::Require: {
      const auto& require = static_cast<const msg::Require&>(*base);
      for (RequestId id : require.ids) {
        maybe_adopt_required(id);
        note_require(require.from, id);
      }
      break;
    }
    case msg::Type::Propose:
      handle_propose(static_cast<const msg::Propose&>(*base));
      break;
    case msg::Type::Commit:
      handle_commit(static_cast<const msg::Commit&>(*base));
      break;
    case msg::Type::Forward:
      handle_forward(static_cast<const msg::Forward&>(*base));
      break;
    case msg::Type::Fetch:
      handle_fetch(consensus::replica_of_address(from), static_cast<const msg::Fetch&>(*base));
      break;
    case msg::Type::ViewChange:
      handle_viewchange(static_cast<const msg::ViewChange&>(*base));
      break;
    case msg::Type::StateRequest:
      handle_state_request(static_cast<const msg::StateRequest&>(*base));
      break;
    case msg::Type::StateResponse:
      handle_state_response(static_cast<const msg::StateResponse&>(*base));
      break;
    default:
      // Messages of other protocols are ignored (shared message namespace).
      break;
  }
}

// ---------------------------------------------------------------------------
// Request intake
// ---------------------------------------------------------------------------

void IdemReplica::handle_request(const msg::Request& request) {
  ++stats_.requests_received;
  const RequestId id = request.id;

  if (clients_.executed(id)) {
    // Already executed (client retransmission): re-send the cached reply if
    // it is for exactly this operation.
    if (auto reply = clients_.cached_reply(id)) reply_to_client(id.cid, std::move(reply));
    return;
  }

  // This request is proof that every lower-numbered operation of the same
  // client is resolved — reclaim any their abandoned copies still hold.
  if (config_.release_superseded) release_superseded(id);

  if (requests_.contains(id)) return;  // already accepted; agreement is underway

  // Shard admission (sharded deployments only): foreign keys are turned
  // away with a redirect before the acceptance test, frozen ranges reject
  // retryably mid-reconfiguration. Runs after duplicate suppression so a
  // retransmission of a request executed before its range moved still gets
  // the cached reply instead of a bogus redirect.
  if (config_.shard_gate != nullptr) {
    const ShardVerdict verdict = config_.shard_gate->admit(request.command);
    if (verdict.kind == ShardVerdict::Kind::WrongShard) {
      ++stats_.rejected;
      ++stats_.wrong_shard;
      config_.telemetry.count_reject(RejectReason::WrongShard);
      lifecycle::accept_verdict(config_.trace, now(), me_.value, id, false,
                                RejectReason::WrongShard);
      auto reject = std::make_shared<msg::Reject>(id, RejectReason::WrongShard);
      reject->map_epoch = verdict.map_epoch;
      reject->home_group = verdict.home_group;
      // Not cached in rejected_: the body must never be adopted into this
      // group's agreement via REQUIRE/FETCH once the key routes elsewhere.
      reply_to_client(id.cid, std::move(reject));
      return;
    }
    if (verdict.kind == ShardVerdict::Kind::Frozen) {
      lifecycle::accept_verdict(config_.trace, now(), me_.value, id, false,
                                RejectReason::ViewChangeInProgress);
      reject_request(request, RejectReason::ViewChangeInProgress);
      return;
    }
  }

  // A previously rejected request (still cached) is re-tested below: the
  // acceptance test is explicitly time-varying (Section 5.1), so a
  // retransmission may well be accepted now that load has dropped —
  // accept_request() then promotes the body out of the cache.

  AcceptanceContext ctx;
  ctx.active_requests = active_.size();
  ctx.reject_threshold = config_.reject_threshold;
  ctx.now = now();
  ctx.deadline = request.deadline;
  RejectReason reason = RejectReason::None;
  if (acceptance_->accept(id, request.command, ctx, reason)) {
    lifecycle::accept_verdict(config_.trace, now(), me_.value, id, true);
    accept_request(id, request.command, /*client_issued=*/true, request.deadline);
  } else {
    // Replica-owned classification outranks the test's generic verdict: a
    // reject during a view change names the view change, and a reject of
    // a request already sitting in the rejected cache is a retransmission
    // bouncing off it. (find() is const — classification never perturbs
    // the trajectory.)
    if (views_.in_viewchange()) {
      reason = RejectReason::ViewChangeInProgress;
    } else if (rejected_.find(id) != nullptr) {
      reason = RejectReason::RejectedCacheHit;
    }
    lifecycle::accept_verdict(config_.trace, now(), me_.value, id, false, reason);
    reject_request(request, reason);
  }
}

void IdemReplica::release_superseded(RequestId newer) {
  // Clients issue one operation at a time: an incoming (cid, onr) means
  // every (cid, onr' < onr) is resolved from the client's point of view.
  // One of those may still sit in active_ here — accepted by this replica,
  // rejected by enough others that the client gave up — where it can never
  // be executed or replied to (the client table supersedes it the moment
  // the newer operation executes, and forward/REQUIRE/propose all drop
  // superseded ids). Erase it so it stops counting against r_now; keep the
  // body findable through the rejected cache in case a concurrent binding
  // still FETCHes it.
  std::vector<RequestId> stale;  // active_ is capped at r, so the sweep is O(r)
  for (const RequestId& id : active_) {
    if (id.cid == newer.cid && id.onr.value < newer.onr.value) stale.push_back(id);
  }
  for (const RequestId& id : stale) {
    active_.erase(id);
    arrival_.erase(id);
    if (auto timer_it = forward_timers_.find(id); timer_it != forward_timers_.end()) {
      cancel_timer(timer_it->second);
      forward_timers_.erase(timer_it);
    }
    // A proposed id is bound to an instance: execution still needs the
    // body under requests_, and execute_instance does its own cleanup.
    if (auto body_it = requests_.find(id);
        body_it != requests_.end() && !proposed_.contains(id)) {
      rejected_.insert(id, std::move(body_it->second));
      requests_.erase(body_it);
    }
    ++stats_.superseded_released;
  }
}

void IdemReplica::accept_request(RequestId id, std::vector<std::byte> command,
                                 bool client_issued, Duration deadline) {
  requests_[id] = std::move(command);
  rejected_.erase(id);
  if (client_issued) {
    active_.insert(id);
    ++stats_.accepted;
    if (config_.telemetry.enabled()) config_.telemetry.count_accept();
    if (config_.telemetry.enabled() || deadline > 0) {
      arrival_[id] = Arrival{now(), deadline};
    }
  } else {
    ++stats_.forward_accepted;
    lifecycle::forward_accepted(config_.trace, now(), me_.value, id);
  }
  arm_forward_timer(id);
  queue_require(id);
  arm_progress_timer();
}

void IdemReplica::reject_request(const msg::Request& request, RejectReason reason) {
  ++stats_.rejected;
  config_.telemetry.count_reject(reason);
  rejected_.insert(request.id, request.command);
  reply_to_client(request.id.cid, std::make_shared<const msg::Reject>(request.id, reason));
}

void IdemReplica::finish_request_tracking(RequestId id, bool replied) {
  auto it = arrival_.find(id);
  if (it == arrival_.end()) return;  // arrived via FORWARD/FETCH, not a client REQUEST
  if (replied) {
    const Duration latency = now() - it->second.at;
    if (config_.telemetry.enabled()) config_.telemetry.record_reply_latency(latency);
    if (it->second.deadline > 0 && latency > it->second.deadline) {
      ++stats_.deadline_misses;
      config_.telemetry.count_deadline_miss();
    }
  }
  arrival_.erase(it);
}

void IdemReplica::queue_require(RequestId id) {
  if (is_leader()) {
    note_require(me_, id);
    return;
  }
  pending_requires_.push_back(id);
  if (pending_requires_.size() >= config_.require_batch_max) {
    flush_requires();
  } else if (!require_flush_timer_.valid()) {
    require_flush_timer_ = set_timer(config_.require_flush_interval, [this] {
      require_flush_timer_ = sim::TimerId{};
      flush_requires();
    });
  }
}

void IdemReplica::flush_requires() {
  cancel_timer(require_flush_timer_);
  if (pending_requires_.empty()) return;
  auto require = std::make_shared<msg::Require>();
  require->from = me_;
  require->ids = std::move(pending_requires_);
  pending_requires_.clear();
  if (is_leader()) {
    for (RequestId id : require->ids) note_require(me_, id);
  } else {
    send_to_leader(std::move(require));
  }
}

// ---------------------------------------------------------------------------
// Agreement
// ---------------------------------------------------------------------------

void IdemReplica::maybe_adopt_required(RequestId id) {
  if (!config_.require_adoption) return;
  if (requests_.contains(id) || clients_.executed(id) || proposed_.contains(id)) return;
  const std::vector<std::byte>* body = rejected_.find(id);
  if (body == nullptr) return;
  // The REQUIRE proves another replica accepted this request, so it must be
  // ordered regardless of our verdict — exactly the FORWARD-acceptance
  // argument, minus the forward-timeout wait. Non-client-issued: adoption
  // must not consume an r_now slot. (*body is copied into the argument
  // before accept_request evicts it from the cache.)
  accept_request(id, *body, /*client_issued=*/false);
  ++stats_.requires_adopted;
}

void IdemReplica::note_require(ReplicaId voter, RequestId id) {
  if (clients_.executed(id)) return;
  if (proposed_.contains(id)) return;
  lifecycle::require_noted(config_.trace, now(), me_.value, id, voter.value);
  std::size_t votes = requires_.vote(id, voter);
  if (votes >= config_.quorum() && !in_eligible_.contains(id)) {
    in_eligible_.insert(id);
    batch_.push(id, now());
    arm_progress_timer();
  }
  if (config_.defer_propose) {
    // Collect every quorum completed in this scheduling step into one
    // PROPOSE: the zero-delay timer fires after the step's input batch is
    // drained but before the loop sleeps, so batching costs no latency.
    if (!propose_cut_timer_.valid()) {
      propose_cut_timer_ = set_timer(0, [this] {
        propose_cut_timer_ = sim::TimerId{};
        try_propose();
      });
    }
    return;
  }
  try_propose();
}

void IdemReplica::try_propose() {
  if (!is_leader()) return;
  if (next_sqn_ < log_.low()) next_sqn_ = log_.low();
  const std::uint64_t window_end = log_.low() + config_.effective_window();
  while (!batch_.empty() && next_sqn_ < window_end) {
    if (!batch_.ready(now())) {
      arm_batch_timer();
      break;
    }
    // Skip sequence numbers that already carry a binding (re-proposed slots
    // taken over from an earlier view).
    next_sqn_ = log_.skip_bound(next_sqn_);
    if (next_sqn_ >= window_end) break;

    std::vector<RequestId> batch;
    batch_.cut([&](RequestId id) {
      in_eligible_.erase(id);
      if (clients_.executed(id) || proposed_.contains(id)) {
        return BatchPipeline<RequestId>::Verdict::Drop;
      }
      batch.push_back(id);
      return BatchPipeline<RequestId>::Verdict::Take;
    });
    if (batch.empty()) break;

    Instance& inst = log_.at(next_sqn_);
    inst.view = views_.view();
    inst.ids = batch;
    inst.has_binding = true;
    inst.own_commit_sent = true;  // the leader's proposal counts as a commit
    inst.commit_votes.insert(me_.value);
    for (RequestId id : batch) {
      proposed_.insert(id);
      requires_.erase(id);
      lifecycle::proposed(config_.trace, now(), me_.value, id, next_sqn_);
    }
    lifecycle::propose_received(config_.trace, now(), me_.value, next_sqn_);
    note_commit_quorum(next_sqn_, inst);

    auto propose = std::make_shared<msg::Propose>();
    propose->view = views_.view();
    propose->sqn = SeqNum{next_sqn_};
    propose->ids = std::move(batch);
    multicast(std::move(propose));
    ++stats_.proposals_sent;
    ++next_sqn_;
  }
  try_execute();
}

void IdemReplica::arm_batch_timer() {
  // Only reachable with batch_min > 1 and a nonzero flush delay (the
  // defaults cut every nonempty queue immediately).
  if (batch_timer_.valid()) return;
  batch_timer_ = set_timer(batch_.delay_until_ready(now()), [this] {
    batch_timer_ = sim::TimerId{};
    try_propose();
  });
}

bool IdemReplica::observe_view(ViewId view) {
  switch (views_.observe(view)) {
    case ViewEngine<msg::ViewChange>::Observe::Ignore:
      return false;
    case ViewEngine<msg::ViewChange>::Observe::Process:
      return true;
    case ViewEngine<msg::ViewChange>::Observe::Enter:
      enter_view(view);
      return true;
  }
  return false;
}

void IdemReplica::adopt_binding(std::uint64_t sqn, ViewId view, const std::vector<RequestId>& ids) {
  if (sqn < log_.low()) return;
  Instance& inst = log_.at(sqn);
  if (inst.executed) return;  // applied state is immutable
  if (inst.has_binding && inst.view >= view) return;
  if (!inst.has_binding) {
    lifecycle::propose_received(config_.trace, now(), me_.value, sqn);
  }
  inst.view = view;
  inst.ids = ids;
  inst.has_binding = true;
  inst.own_commit_sent = false;
  inst.commit_votes.clear();
}

void IdemReplica::note_commit_quorum(std::uint64_t sqn, Instance& inst) {
  lifecycle::decision_quorum(config_.trace, now(), me_.value, sqn, inst,
                             inst.commit_votes.size(), config_.quorum());
}

void IdemReplica::add_commit_vote(std::uint64_t sqn, ReplicaId voter) {
  if (sqn < log_.low()) return;
  Instance* inst = log_.find(sqn);
  if (inst == nullptr) return;
  inst->commit_votes.insert(voter.value);
}

void IdemReplica::handle_propose(const msg::Propose& propose) {
  if (!observe_view(propose.view)) return;
  const std::uint64_t sqn = propose.sqn.value;
  if (sqn < log_.low()) return;

  adopt_binding(sqn, propose.view, propose.ids);
  Instance& inst = log_.at(sqn);
  if (inst.view != propose.view) return;  // a newer binding superseded this

  // The leader's proposal counts as its commit.
  inst.commit_votes.insert(consensus::leader_of(propose.view, config_.n).value);
  if (!inst.own_commit_sent) {
    auto commit = std::make_shared<msg::Commit>();
    commit->from = me_;
    commit->view = inst.view;
    commit->sqn = SeqNum{sqn};
    commit->ids = inst.ids;
    if (config_.commit_to_leader_only && config_.f == 1 && !is_leader()) {
      send_to_leader(std::move(commit));
    } else {
      multicast(std::move(commit));
    }
    inst.own_commit_sent = true;
    inst.commit_votes.insert(me_.value);
  }
  note_commit_quorum(sqn, inst);
  observe_sequence(sqn, consensus::leader_of(propose.view, config_.n));
  try_execute();
}

void IdemReplica::handle_commit(const msg::Commit& commit) {
  if (!observe_view(commit.view)) return;
  const std::uint64_t sqn = commit.sqn.value;
  if (sqn < log_.low()) return;

  // Commits echo the proposal, so a replica that missed the PROPOSE still
  // learns the binding here.
  adopt_binding(sqn, commit.view, commit.ids);
  Instance& inst = log_.at(sqn);
  if (inst.view != commit.view) return;

  inst.commit_votes.insert(commit.from.value);
  inst.commit_votes.insert(consensus::leader_of(commit.view, config_.n).value);
  if (!inst.own_commit_sent) {
    auto own = std::make_shared<msg::Commit>();
    own->from = me_;
    own->view = inst.view;
    own->sqn = SeqNum{sqn};
    own->ids = inst.ids;
    if (config_.commit_to_leader_only && config_.f == 1 && !is_leader()) {
      send_to_leader(std::move(own));
    } else {
      multicast(std::move(own));
    }
    inst.own_commit_sent = true;
    inst.commit_votes.insert(me_.value);
  }
  note_commit_quorum(sqn, inst);
  observe_sequence(sqn, commit.from);
  try_execute();
}

bool IdemReplica::fetch_missing(std::uint64_t sqn, Instance& inst) {
  std::vector<RequestId> missing;
  for (RequestId id : inst.ids) {
    if (clients_.executed(id)) continue;
    if (find_command(id) == nullptr) missing.push_back(id);
  }
  if (missing.empty()) return false;
  if (!inst.fetch_gate.allow(now(), kFetchRetry)) return true;
  // Ask a replica that committed this instance (it executed or will
  // execute it, so it owns the bodies or can get them).
  ReplicaId target = consensus::leader_of(inst.view, config_.n);
  for (std::uint32_t voter : inst.commit_votes) {
    if (voter != me_.value) {
      target = ReplicaId{voter};
      break;
    }
  }
  for (RequestId id : missing) {
    auto fetch = std::make_shared<msg::Fetch>();
    fetch->from = me_;
    fetch->id = id;
    send(consensus::replica_address(target), std::move(fetch));
    ++stats_.fetches_sent;
  }
  (void)sqn;
  return true;
}

void IdemReplica::try_execute() {
  // While the executor holds the head instance, execution order is already
  // pinned; we resume from finish_async_execute.
  if (exec_inflight_) return;
  for (;;) {
    auto it = log_.slots().find(log_.next_exec());
    if (it == log_.slots().end()) return;
    Instance& inst = it->second;
    if (!inst.has_binding || inst.executed) return;
    if (inst.commit_votes.size() < config_.quorum()) return;

    if (fetch_missing(log_.next_exec(), inst)) {
      // The head is blocked on missing bodies. Prefetch for the committed
      // instances behind it too: fetching one instance per round trip
      // would otherwise serialize catch-up at network latency.
      std::size_t prefetched = 0;
      for (auto ahead = std::next(it);
           ahead != log_.slots().end() && prefetched < kFetchPrefetch; ++ahead, ++prefetched) {
        Instance& future = ahead->second;
        if (!future.has_binding || future.executed) continue;
        if (future.commit_votes.size() < config_.quorum()) continue;
        fetch_missing(ahead->first, future);
      }
      // Retry via timer in case fetch responses are lost.
      set_timer(kFetchRetry, [this] { try_execute(); });
      return;
    }

    if (config_.executor != nullptr) {
      begin_async_execute(log_.next_exec(), inst);
      return;
    }
    execute_instance(log_.next_exec(), inst);
    maybe_checkpoint(log_.next_exec());
    log_.advance_head();
    note_progress();
  }
}

void IdemReplica::begin_async_execute(std::uint64_t sqn, Instance& inst) {
  // Duplicates are filtered at submission (nothing can execute them in the
  // meantime: only this path executes, and only one instance is in
  // flight). Command bodies are copied because find_command may point into
  // the rejected cache, which evicts under LRU while the executor runs.
  exec_ids_.clear();
  std::vector<std::vector<std::byte>> commands;
  for (RequestId id : inst.ids) {
    if (clients_.executed(id)) {
      ++stats_.duplicates_skipped;
      continue;
    }
    const std::vector<std::byte>* command = find_command(id);
    assert(command != nullptr);
    exec_ids_.push_back(id);
    commands.push_back(*command);
  }
  // Earliest deadline across the batch, for executors shared by several
  // submitters (EDF drain order); 0 = nothing in the batch carries one.
  Time due = 0;
  for (RequestId id : exec_ids_) {
    auto it = arrival_.find(id);
    if (it == arrival_.end() || it->second.deadline <= 0) continue;
    Time candidate = it->second.at + it->second.deadline;
    if (due == 0 || candidate < due) due = candidate;
  }
  exec_inflight_ = true;
  ++stats_.exec_offloaded;
  config_.executor->execute(
      *sm_, std::move(commands), due,
      [this, sqn](std::vector<std::vector<std::byte>> results) {
        finish_async_execute(sqn, std::move(results));
      });
}

void IdemReplica::finish_async_execute(std::uint64_t sqn,
                                       std::vector<std::vector<std::byte>> results) {
  exec_inflight_ = false;
  assert(sqn == log_.next_exec());
  auto it = log_.slots().find(sqn);
  assert(it != log_.slots().end());
  Instance& inst = it->second;

  assert(results.size() == exec_ids_.size());
  for (std::size_t i = 0; i < exec_ids_.size(); ++i) {
    RequestId id = exec_ids_[i];
    ++stats_.executed;
    lifecycle::executed(config_.trace, now(), me_.value, id, sqn);
    auto reply = std::make_shared<const msg::Reply>(id, std::move(results[i]));
    clients_.record(id, reply);
    if (active_.erase(id) > 0) acceptance_->observe_execution(now(), active_.size());
    if (auto timer_it = forward_timers_.find(id); timer_it != forward_timers_.end()) {
      cancel_timer(timer_it->second);
      forward_timers_.erase(timer_it);
    }
    if (is_leader()) {
      reply_to_client(id.cid, reply);
      lifecycle::reply_sent(config_.trace, now(), me_.value, id);
    }
    finish_request_tracking(id, is_leader());
    if (on_execute) on_execute(SeqNum{sqn}, id);
  }
  exec_ids_.clear();
  inst.executed = true;
  maybe_checkpoint(sqn);
  log_.advance_head();
  note_progress();
  try_execute();
}

void IdemReplica::execute_instance(std::uint64_t sqn, Instance& inst) {
  for (RequestId id : inst.ids) {
    if (clients_.executed(id)) {
      ++stats_.duplicates_skipped;
      continue;
    }
    const std::vector<std::byte>* command = find_command(id);
    assert(command != nullptr);
    charge(config_.costs.apply_jitter(sm_->execution_cost(*command), cost_rng_));
    std::vector<std::byte> result = sm_->execute(*command);
    ++stats_.executed;
    lifecycle::executed(config_.trace, now(), me_.value, id, sqn);
    auto reply = std::make_shared<const msg::Reply>(id, std::move(result));
    clients_.record(id, reply);
    if (active_.erase(id) > 0) acceptance_->observe_execution(now(), active_.size());
    if (auto timer_it = forward_timers_.find(id); timer_it != forward_timers_.end()) {
      cancel_timer(timer_it->second);
      forward_timers_.erase(timer_it);
    }
    if (is_leader()) {
      reply_to_client(id.cid, reply);
      lifecycle::reply_sent(config_.trace, now(), me_.value, id);
    }
    finish_request_tracking(id, is_leader());
    if (on_execute) on_execute(SeqNum{sqn}, id);
  }
  inst.executed = true;
}

// ---------------------------------------------------------------------------
// Availability: forwarding, rejected cache, fetch (Section 5.2)
// ---------------------------------------------------------------------------

void IdemReplica::arm_forward_timer(RequestId id) {
  if (forward_timers_.contains(id)) return;
  forward_timers_[id] = set_timer(config_.forward_timeout, [this, id] {
    forward_timers_.erase(id);
    forward_request(id);
  });
}

void IdemReplica::forward_request(RequestId id) {
  if (clients_.executed(id)) return;
  auto body_it = requests_.find(id);
  if (body_it == requests_.end()) return;

  auto forward = std::make_shared<msg::Forward>();
  forward->from = me_;
  forward->requests.emplace_back(id, body_it->second);
  multicast(std::move(forward));
  ++stats_.forwards_sent;
  // Keep relaying periodically until the request is executed (fair-loss
  // links: eventual delivery needs retransmission).
  arm_forward_timer(id);
}

void IdemReplica::handle_forward(const msg::Forward& forward) {
  for (const msg::Request& request : forward.requests) {
    if (clients_.executed(request.id)) continue;
    if (requests_.contains(request.id)) continue;
    // Forwarded requests are accepted regardless of the current load
    // (Section 4.3): some replica accepted them, so they must be ordered.
    accept_request(request.id, request.command, /*client_issued=*/false);
  }
}

void IdemReplica::handle_fetch(ReplicaId from, const msg::Fetch& fetch) {
  const std::vector<std::byte>* command = find_command(fetch.id);
  if (command == nullptr) return;
  auto forward = std::make_shared<msg::Forward>();
  forward->from = me_;
  forward->requests.emplace_back(fetch.id, *command);
  send(consensus::replica_address(from), std::move(forward));
}

const std::vector<std::byte>* IdemReplica::find_command(RequestId id) const {
  if (auto it = requests_.find(id); it != requests_.end()) return &it->second;
  return rejected_.find(id);
}

// ---------------------------------------------------------------------------
// Implicit garbage collection and checkpoints (Section 4.4)
// ---------------------------------------------------------------------------

void IdemReplica::request_state_transfer(ReplicaId source) {
  if (state_transfer_pending_) return;
  state_transfer_pending_ = true;
  state_transfer_source_ = source;
  auto request = std::make_shared<msg::StateRequest>();
  request->from = me_;
  request->have = SeqNum{log_.next_exec() == 0 ? 0 : log_.next_exec() - 1};
  send(consensus::replica_address(source), std::move(request));
  // The peer stays silent when it has no newer checkpoint (or the
  // response is lost): release the latch after a while and re-evaluate,
  // or this replica could never ask again.
  cancel_timer(state_retry_timer_);
  state_retry_timer_ = set_timer(250 * kMillisecond, [this] {
    state_retry_timer_ = sim::TimerId{};
    state_transfer_pending_ = false;
    maybe_request_state();
  });
}

void IdemReplica::maybe_request_state() {
  // A bound instance ahead of an unbound execution head means the missing
  // slots may have been garbage-collected cluster-wide: only a checkpoint
  // can bridge the gap.
  const Instance* head = log_.find(log_.next_exec());
  if (head != nullptr && head->has_binding) return;
  auto ahead = log_.slots().upper_bound(log_.next_exec());
  while (ahead != log_.slots().end() && !ahead->second.has_binding) ++ahead;
  if (ahead == log_.slots().end()) return;

  ReplicaId target = consensus::leader_of(ahead->second.view, config_.n);
  for (std::uint32_t voter : ahead->second.commit_votes) {
    if (voter != me_.value) {
      target = ReplicaId{voter};
      break;
    }
  }
  if (target == me_) {
    target = ReplicaId{static_cast<std::uint32_t>((me_.value + 1) % config_.n)};
  }
  request_state_transfer(target);
}

void IdemReplica::observe_sequence(std::uint64_t sqn, ReplicaId source) {
  const std::uint64_t r_max = config_.r_max();
  if (sqn < log_.low() + r_max) return;
  std::uint64_t new_low = sqn - r_max + 1;

  if (new_low > log_.next_exec()) {
    // We are lagging: f+1 replicas have executed past our window, so the
    // old instances may be gone system-wide. Catch up via checkpoint.
    request_state_transfer(source);
    new_low = log_.next_exec();
  }
  if (new_low > log_.low()) advance_window(new_low);
}

void IdemReplica::advance_window(std::uint64_t new_low) {
  log_.advance_low(new_low, [this](Instance& inst) {
    for (RequestId id : inst.ids) {
      requests_.erase(id);
      proposed_.erase(id);
    }
  });
}

void IdemReplica::maybe_checkpoint(std::uint64_t executed_sqn) {
  if (!checkpoints_.due(SeqNum{executed_sqn})) return;
  std::vector<std::byte> snapshot = sm_->snapshot();
  charge(kCheckpointBaseCost +
         static_cast<Duration>(kCheckpointNsPerByte * static_cast<double>(snapshot.size())));
  consensus::Checkpoint checkpoint;
  checkpoint.upto = SeqNum{executed_sqn};
  checkpoint.snapshot = std::move(snapshot);
  checkpoint.last_executed = {clients_.sessions().begin(), clients_.sessions().end()};
  checkpoints_.store(std::move(checkpoint));
  ++stats_.checkpoints_created;
}

void IdemReplica::handle_state_request(const msg::StateRequest& request) {
  const auto& latest = checkpoints_.latest();
  if (!latest || latest->upto.value <= request.have.value) return;
  auto response = std::make_shared<msg::StateResponse>();
  response->from = me_;
  response->upto = latest->upto;
  response->snapshot = latest->snapshot;
  response->last_executed.reserve(latest->last_executed.size());
  for (const auto& [cid, onr] : latest->last_executed) {
    response->last_executed.emplace_back(ClientId{cid}, OpNum{onr});
  }
  send(consensus::replica_address(request.from), std::move(response));
}

void IdemReplica::handle_state_response(const msg::StateResponse& response) {
  // Only accept the response we asked for, from the replica we asked:
  // unsolicited or duplicate checkpoints must not be able to replace
  // state (a replica never needs state it did not request).
  if (!state_transfer_pending_ || response.from != state_transfer_source_) return;
  // restore() while the executor runs would race the state machine; keep
  // the latch set and let the retry timer ask again once execution drains.
  if (exec_inflight_) return;
  state_transfer_pending_ = false;
  if (response.upto.value < log_.next_exec()) return;  // stale; we caught up meanwhile
  try {
    sm_->restore(response.snapshot);
  } catch (const CodecError&) {
    // Malformed snapshot (buggy or hostile sender): restore() is strongly
    // exception-safe by contract, so our state is untouched — drop it.
    return;
  }
  charge(kCheckpointBaseCost + static_cast<Duration>(kCheckpointNsPerByte *
                                                     static_cast<double>(response.snapshot.size())));
  for (const auto& [cid, onr] : response.last_executed) {
    clients_.merge_executed(cid, onr);
  }
  // Cached replies are stale after a restore; clients retransmit if needed.
  clients_.clear_replies();
  log_.set_next_exec(response.upto.value + 1);
  if (log_.next_exec() > log_.low()) advance_window(log_.next_exec());
  // Drop active entries that the checkpoint proves executed.
  for (auto it = active_.begin(); it != active_.end();) {
    if (clients_.executed(*it)) {
      if (auto timer_it = forward_timers_.find(*it); timer_it != forward_timers_.end()) {
        cancel_timer(timer_it->second);
        forward_timers_.erase(timer_it);
      }
      it = active_.erase(it);
    } else {
      ++it;
    }
  }
  ++stats_.state_transfers;
  cancel_timer(state_retry_timer_);
  try_execute();
  // The checkpoint may still be older than the cluster's GC line (the
  // peer simply shipped its newest): if a gap remains, ask again — by
  // then the peer has likely checkpointed further.
  maybe_request_state();
}

// ---------------------------------------------------------------------------
// View change (Section 4.5)
// ---------------------------------------------------------------------------

bool IdemReplica::has_outstanding_work() const {
  if (!active_.empty() || !batch_.empty()) return true;
  auto it = log_.slots().lower_bound(log_.next_exec());
  return it != log_.slots().end() && it->second.has_binding && !it->second.executed;
}

void IdemReplica::arm_progress_timer() {
  if (progress_timer_.valid()) return;
  if (!has_outstanding_work()) return;
  progress_timer_ = set_timer(config_.viewchange_timeout, [this] {
    progress_timer_ = sim::TimerId{};
    if (!has_outstanding_work()) return;
    start_viewchange(views_.next_target());
  });
}

void IdemReplica::note_progress() {
  cancel_timer(progress_timer_);
  arm_progress_timer();
}

void IdemReplica::start_viewchange(ViewId target) {
  if (!views_.begin(target)) return;
  ++stats_.view_changes;
  lifecycle::viewchange_start(config_.trace, now(), me_.value, target.value);

  auto viewchange = std::make_shared<msg::ViewChange>();
  viewchange->from = me_;
  viewchange->target = target;
  viewchange->window_start = SeqNum{log_.low()};
  for (const auto& [sqn, inst] : log_.slots()) {
    if (!inst.has_binding) continue;
    msg::WindowEntry entry;
    entry.sqn = SeqNum{sqn};
    entry.view = inst.view;
    entry.items = inst.ids;
    viewchange->proposals.push_back(std::move(entry));
  }
  views_.store_own(me_.value, *viewchange);
  multicast(viewchange);

  // Make sure the prospective leader learns about our accepted requests;
  // REQUIREs sent to the crashed leader are lost with it.
  resend_requires();

  // Safeguard: if this view change does not complete, try the next view.
  cancel_timer(progress_timer_);
  arm_progress_timer();

  maybe_become_leader(target);
}

void IdemReplica::handle_viewchange(const msg::ViewChange& viewchange) {
  if (viewchange.target <= views_.view()) return;
  views_.store(viewchange);

  // A replica already amid a view change adopts a higher target right
  // away: independent timeout escalation would otherwise let stragglers
  // chase each other's targets forever.
  if (views_.should_escalate(viewchange.target)) {
    start_viewchange(viewchange.target);
    return;
  }

  // Join the view change once f+1 replicas demand it: the current view no
  // longer has enough support to make progress.
  if (!views_.joined(viewchange.target) &&
      views_.matching(viewchange.target) >= config_.quorum()) {
    start_viewchange(viewchange.target);
    return;  // start_viewchange re-runs maybe_become_leader
  }
  maybe_become_leader(viewchange.target);
}

void IdemReplica::maybe_become_leader(ViewId target) {
  if (consensus::leader_of(target, config_.n) != me_) return;
  if (views_.view() >= target) return;
  if (!views_.in_viewchange() || views_.target() != target) return;
  if (views_.matching(target) < config_.quorum()) return;

  // Merge the collected windows: per slot, the binding of the newest view
  // wins (adopt_binding enforces that).
  views_.for_each_matching(target, [this](const msg::ViewChange& stored) {
    for (const auto& entry : stored.proposals) {
      adopt_binding(entry.sqn.value, entry.view, entry.items);
    }
  });

  enter_view(target);

  // Determine the first free sequence number and fill binding gaps with
  // no-ops so execution cannot stall behind a hole.
  std::uint64_t high =
      log_.high_watermark(log_.low(), [](const Instance& inst) { return inst.has_binding; });
  if (next_sqn_ < high) next_sqn_ = high;
  if (next_sqn_ < log_.low()) next_sqn_ = log_.low();

  for (std::uint64_t sqn = std::max(log_.low(), log_.next_exec()); sqn < high; ++sqn) {
    Instance& inst = log_.at(sqn);
    if (inst.executed) continue;
    if (!inst.has_binding) {
      inst.ids.clear();  // no-op filler
      inst.has_binding = true;
    }
    // Re-propose under the new view; old-view commit votes are void.
    inst.view = views_.view();
    inst.commit_votes.clear();
    inst.commit_votes.insert(me_.value);
    inst.own_commit_sent = true;
    for (RequestId id : inst.ids) {
      proposed_.insert(id);
      lifecycle::proposed(config_.trace, now(), me_.value, id, sqn);
    }

    auto propose = std::make_shared<msg::Propose>();
    propose->view = views_.view();
    propose->sqn = SeqNum{sqn};
    propose->ids = inst.ids;
    multicast(std::move(propose));
    ++stats_.proposals_sent;
  }

  try_propose();
  try_execute();
}

void IdemReplica::enter_view(ViewId view) {
  views_.enter(view);
  lifecycle::viewchange_done(config_.trace, now(), me_.value, view.value);
  resend_requires();
  note_progress();
}

void IdemReplica::resend_requires() {
  // Tell the (new) leader about every request we own that is still
  // unexecuted; its REQUIRE bookkeeping may have died with the old leader.
  std::vector<RequestId> outstanding;
  for (const auto& [id, command] : requests_) {
    if (clients_.executed(id)) continue;
    outstanding.push_back(id);
  }
  if (outstanding.empty()) return;

  if (consensus::leader_of(views_.leader_view(), config_.n) == me_) {
    for (RequestId id : outstanding) note_require(me_, id);
  } else {
    auto require = std::make_shared<msg::Require>();
    require->from = me_;
    require->ids = std::move(outstanding);
    send_to_leader(std::move(require));
  }
}

}  // namespace idem::core
