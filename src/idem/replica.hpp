// The IDEM replica (paper Sections 4 and 5).
//
// Protocol flow for one request:
//   client --REQUEST--> every replica
//   replica: acceptance test -> REJECT to client, or accept + REQUIRE to leader
//   leader:  f+1 REQUIREs -> PROPOSE(ids, sqn, v) to all
//   replica: PROPOSE -> COMMIT to all; f+1 commits (leader's proposal counts)
//            + owning the request bodies -> execute in sqn order
//   leader:  REPLY to client
//
// Collaborative overload prevention: each replica decides locally whether
// to accept; accepted requests are kept available via delayed forwarding,
// a rejected-request cache and on-demand FETCH. Implicit garbage
// collection advances the window without dedicated progress messages, and
// a view change replaces a crashed leader.
//
// Structurally this is a policy layer over the replication core
// (src/core): the ordered log, view engine, client table, rejected cache
// and batch pipeline are shared with the baseline protocols; IDEM
// contributes the acceptance tests, the REQUIRE/REJECT collaboration and
// the rejection-aware view change.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "app/state_machine.hpp"
#include "common/ids.hpp"
#include "consensus/addresses.hpp"
#include "consensus/checkpoint.hpp"
#include "consensus/messages.hpp"
#include "consensus/quorum.hpp"
#include "core/acceptance.hpp"
#include "core/batch_pipeline.hpp"
#include "core/client_table.hpp"
#include "core/ordered_log.hpp"
#include "core/rejected_cache.hpp"
#include "core/timers.hpp"
#include "core/view_engine.hpp"
#include "idem/config.hpp"
#include "sim/node.hpp"

namespace idem::core {

/// Counters exposed to experiments and tests.
struct ReplicaStats {
  std::uint64_t requests_received = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t forward_accepted = 0;  ///< accepted via FORWARD, bypassing the test
  std::uint64_t executed = 0;          ///< requests executed (deduplicated)
  std::uint64_t duplicates_skipped = 0;
  std::uint64_t proposals_sent = 0;
  std::uint64_t forwards_sent = 0;
  std::uint64_t fetches_sent = 0;
  std::uint64_t view_changes = 0;
  std::uint64_t checkpoints_created = 0;
  std::uint64_t state_transfers = 0;
  std::uint64_t exec_offloaded = 0;   ///< instances handed to the async executor
  std::uint64_t requires_adopted = 0;  ///< rejected bodies adopted on REQUIRE evidence
  std::uint64_t superseded_released = 0;  ///< abandoned active slots released
  std::uint64_t wrong_shard = 0;  ///< REQUESTs redirected to another group
  std::uint64_t deadline_misses = 0;  ///< replies sent after the request's budget
};

class IdemReplica final : public sim::Node {
 public:
  IdemReplica(sim::Runtime& sim, sim::Transport& net, ReplicaId id, IdemConfig config,
              std::unique_ptr<app::StateMachine> state_machine,
              std::unique_ptr<AcceptanceTest> acceptance);

  ReplicaId replica_id() const { return me_; }
  ViewId view() const { return views_.view(); }
  bool is_leader() const {
    return !views_.in_viewchange() && consensus::leader_of(views_.view(), config_.n) == me_;
  }
  const ReplicaStats& stats() const { return stats_; }
  const IdemConfig& config() const { return config_; }

  /// r_now: client-issued requests accepted and not yet executed here.
  std::size_t active_requests() const { return active_.size(); }

  /// Next sequence number this replica would execute.
  SeqNum next_execute() const { return SeqNum{log_.next_exec()}; }
  /// Start of the consensus window (sqn_low).
  SeqNum window_start() const { return SeqNum{log_.low()}; }

  /// Highest executed operation number per client (duplicate detection).
  std::optional<OpNum> last_executed(ClientId cid) const { return clients_.last_executed(cid); }

  app::StateMachine& state_machine() { return *sm_; }
  const app::StateMachine& state_machine() const { return *sm_; }

  /// Test hook: invoked after each executed request with (sqn, id).
  std::function<void(SeqNum, RequestId)> on_execute;

 protected:
  void on_message(sim::NodeId from, const sim::Payload& message) override;
  void on_restart() override;
  Duration message_cost(const sim::Payload& message) const override;
  Duration send_cost(const sim::Payload& message) const override;
  /// Client REQUESTs expose their latency budget to the service discipline
  /// (EDF ordering); everything else is deadline-less.
  Duration message_deadline(const sim::Payload& message) const override;

 private:
  struct Instance : SlotBase {
    ViewId view;                 ///< view of the newest binding seen
    std::vector<RequestId> ids;  ///< empty until a PROPOSE/COMMIT arrives
    bool own_commit_sent = false;
    std::unordered_set<std::uint32_t> commit_votes;
    RetryGate fetch_gate;  ///< rate-limits FETCH rounds for this slot
  };

  // -- request intake ------------------------------------------------------
  void handle_request(const msg::Request& request);
  void release_superseded(RequestId newer);
  void accept_request(RequestId id, std::vector<std::byte> command, bool client_issued,
                      Duration deadline = 0);
  void reject_request(const msg::Request& request, RejectReason reason);
  void queue_require(RequestId id);
  void flush_requires();

  // -- agreement -----------------------------------------------------------
  void maybe_adopt_required(RequestId id);
  void note_require(ReplicaId voter, RequestId id);
  void try_propose();
  void arm_batch_timer();
  void handle_propose(const msg::Propose& propose);
  void handle_commit(const msg::Commit& commit);
  void adopt_binding(std::uint64_t sqn, ViewId view, const std::vector<RequestId>& ids);
  void add_commit_vote(std::uint64_t sqn, ReplicaId voter);
  /// Emits the CommitQuorum trace event once per instance.
  void note_commit_quorum(std::uint64_t sqn, Instance& inst);
  bool observe_view(ViewId view);  ///< true when the message should be processed
  /// Requests missing bodies for `inst` (rate-limited); true if any are
  /// still missing.
  bool fetch_missing(std::uint64_t sqn, Instance& inst);
  void try_execute();
  void execute_instance(std::uint64_t sqn, Instance& instance);
  // Async execution (config_.executor set): the head instance's commands
  // are copied out and handed to the executor; the completion callback
  // replays execute_instance's bookkeeping on the runtime thread and
  // resumes try_execute. At most one instance is in flight.
  void begin_async_execute(std::uint64_t sqn, Instance& instance);
  void finish_async_execute(std::uint64_t sqn, std::vector<std::vector<std::byte>> results);

  // -- availability (Section 5.2) -------------------------------------------
  void handle_forward(const msg::Forward& forward);
  void handle_fetch(ReplicaId from, const msg::Fetch& fetch);
  void arm_forward_timer(RequestId id);
  void forward_request(RequestId id);
  const std::vector<std::byte>* find_command(RequestId id) const;

  // -- garbage collection / checkpoints (Section 4.4) -----------------------
  void observe_sequence(std::uint64_t sqn, ReplicaId source);
  void advance_window(std::uint64_t new_low);
  void maybe_checkpoint(std::uint64_t executed_sqn);
  void handle_state_request(const msg::StateRequest& request);
  void handle_state_response(const msg::StateResponse& response);
  void request_state_transfer(ReplicaId source);
  /// Requests a checkpoint when execution is gapped below a known binding
  /// (the missing instances may be garbage-collected cluster-wide).
  void maybe_request_state();

  // -- view change (Section 4.5) --------------------------------------------
  void arm_progress_timer();
  void note_progress();
  bool has_outstanding_work() const;
  void start_viewchange(ViewId target);
  void handle_viewchange(const msg::ViewChange& viewchange);
  void maybe_become_leader(ViewId target);
  void enter_view(ViewId view);
  void resend_requires();

  void multicast(sim::PayloadPtr message);  ///< to all other replicas
  void send_to_leader(sim::PayloadPtr message);
  void reply_to_client(ClientId cid, sim::PayloadPtr message);

  /// Closes a request's arrival-side tracking: records live reply latency
  /// when this replica replied, counts a deadline miss when that reply
  /// left after the request's budget, always drops the arrival entry.
  void finish_request_tracking(RequestId id, bool replied);

  IdemConfig config_;
  ReplicaId me_;
  std::unique_ptr<app::StateMachine> sm_;
  std::unique_ptr<AcceptanceTest> acceptance_;

  ViewEngine<msg::ViewChange> views_;

  // Owned request bodies (accepted, forwarded, or fetched).
  std::unordered_map<RequestId, std::vector<std::byte>> requests_;
  // Client-issued accepted requests not yet executed (the r_now set).
  std::unordered_set<RequestId> active_;
  // Forward timers per accepted-but-unexecuted request.
  std::unordered_map<RequestId, sim::TimerId> forward_timers_;

  // REQUEST arrival times for live reply-latency measurement and deadline
  // accounting. Populated with an attached telemetry shard (real mode) or
  // when the request carries a deadline; bounded like active_ (entries die
  // at execution or supersession).
  struct Arrival {
    Time at = 0;
    Duration deadline = 0;  ///< request budget (0 = none)
  };
  std::unordered_map<RequestId, Arrival> arrival_;

  // Recently rejected requests, still available for FETCH/agreement.
  RejectedCache rejected_;

  // REQUIRE aggregation.
  std::vector<RequestId> pending_requires_;
  sim::TimerId require_flush_timer_;

  // Leader-side ordering state (maintained on every replica so a new
  // leader can take over immediately).
  consensus::QuorumTracker<RequestId> requires_;
  BatchPipeline<RequestId> batch_;  ///< ids with an f+1 REQUIRE quorum
  std::unordered_set<RequestId> in_eligible_;
  std::unordered_set<RequestId> proposed_;
  std::uint64_t next_sqn_ = 0;
  sim::TimerId batch_timer_;  ///< pending time-based batch cut
  sim::TimerId propose_cut_timer_;  ///< pending deferred cut (defer_propose)

  // Consensus instances, window [log_.low(), log_.low() + w).
  OrderedLog<Instance> log_;

  // Execution results for duplicate suppression and re-replies.
  ClientTable clients_;

  // Async execution state: the instance in flight on the executor, and the
  // ids it is executing (already filtered for duplicates).
  bool exec_inflight_ = false;
  std::vector<RequestId> exec_ids_;

  consensus::CheckpointStore checkpoints_;
  bool state_transfer_pending_ = false;
  ReplicaId state_transfer_source_;  ///< the only replica whose response we accept
  sim::TimerId state_retry_timer_;

  sim::TimerId progress_timer_;

  // Service-time variability stream (CostModel::jitter).
  mutable Rng cost_rng_;

  ReplicaStats stats_;
};

}  // namespace idem::core
