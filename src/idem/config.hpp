// Configuration of the IDEM protocol (defaults follow the paper's
// evaluation setup, Section 7.1).
#pragma once

#include <cstdint>

#include "common/time.hpp"
#include "consensus/cost_model.hpp"
#include "core/telemetry.hpp"
#include "obs/trace.hpp"

namespace idem::core {

class Executor;
class ShardGate;

struct IdemConfig {
  /// Number of replicas n = 2f + 1.
  std::size_t n = 3;
  /// Tolerated crash faults.
  std::size_t f = 1;

  /// Reject threshold r: concurrently accepted client-issued requests per
  /// replica (paper default RT = 50). The system-wide cap is r_max = n * r.
  std::size_t reject_threshold = 50;

  /// Fraction of r at which active queue management starts rejecting
  /// non-prioritized clients probabilistically (paper: 60%).
  double aqm_start_fraction = 0.6;

  /// Length of one prioritized-group time slice (paper: 2 s).
  Duration aqm_time_slice = 2 * kSecond;

  /// Number of client groups for AQM prioritization; groups hold at most r
  /// clients. 0 means "derive from the client population": the harness
  /// sets it to ceil(clients / r).
  std::size_t aqm_group_count = 0;

  /// Seed of the acceptance test's pseudo-random function. Must be equal
  /// on all replicas so they tend toward unanimous decisions (Section 5.1).
  std::uint64_t acceptance_prf_seed = 0x1DE4'5EEDull;

  /// Delay before an accepted-but-unexecuted request is forwarded to the
  /// other replicas (paper: 10 ms).
  Duration forward_timeout = 10 * kMillisecond;

  /// Capacity of the recently-rejected-request cache (Section 5.2).
  std::size_t rejected_cache_size = 1024;

  /// REQUIRE adoption: a replica that rejected a request but receives a
  /// REQUIRE for it (proof that another replica accepted it, so it must be
  /// ordered — the same argument that makes FORWARD acceptance mandatory,
  /// Section 4.3) promotes the body straight out of its rejected cache
  /// instead of waiting for the forward timeout. On the leader this turns
  /// one follower vote plus its own adoption into an immediate f+1 quorum
  /// when f = 1. This is the real-mode fix for divergent acceptance
  /// verdicts (replicas under asynchronous load see different r_now and
  /// split their votes, leaving accepted requests as slot-holding zombies
  /// until the forward fires). Default off: the simulator's lockstep
  /// replicas rarely diverge and its trajectories are pinned by tests.
  bool require_adoption = false;

  /// Release superseded accepted requests: a client issues operations one
  /// at a time, so a REQUEST with operation number onr proves every
  /// lower-numbered operation of that client is resolved — if one of them
  /// is still in the active set here (accepted by this replica alone,
  /// rejected by the client after n-f REJECTs elsewhere), it can never be
  /// replied to and would otherwise pin an r_now slot forever: every path
  /// that could order it (forward, REQUIRE, propose) drops ids the client
  /// table considers executed, but only execution itself erases active_.
  /// Leaked slots accumulate until r_now sticks at the cap and the replica
  /// hard-rejects everything — the real-mode overload goodput collapse.
  /// Default off: the simulator's lockstep replicas vote unanimously, so
  /// requests are never abandoned one-sidedly and its pinned trajectories
  /// stay untouched.
  bool release_superseded = false;

  /// Maximum request ids per PROPOSE batch.
  std::size_t batch_max = 32;

  /// Ordered-log batching: a batch is cut as soon as batch_min eligible ids
  /// are queued, or once the oldest queued id has waited batch_flush_delay.
  /// The defaults (1, 0) cut immediately, i.e. legacy behavior.
  std::size_t batch_min = 1;
  Duration batch_flush_delay = 0;

  /// REQUIRE aggregation: accepted ids are flushed to the leader when this
  /// many are pending or the flush interval elapses, whichever is first.
  /// A zero interval means "the end of the current scheduling step": on a
  /// real event loop due timers fire after the iteration's I/O batch, so
  /// every id accepted from one recv burst leaves in a single REQUIRE with
  /// no added wall-clock delay.
  std::size_t require_batch_max = 32;
  Duration require_flush_interval = 50 * kMicrosecond;

  /// Defer the leader's batch cut to a zero-delay timer instead of
  /// proposing inline from each quorum. All quorums completed within one
  /// scheduling step (one event-loop iteration's worth of REQUIREs in real
  /// mode) then fold into a single PROPOSE — and each follower answers
  /// with one COMMIT per instance, so the agreement traffic per request
  /// shrinks by the batch size. Latency cost is zero by construction: the
  /// timer fires before the loop goes back to sleep. Default off to keep
  /// simulated trajectories pinned.
  bool defer_propose = false;

  /// Followers send their COMMIT to the leader only instead of
  /// multicasting it (the Multi-Paxos ack-to-leader pattern). Correct only
  /// for f = 1, where a follower's commit quorum is already complete when
  /// the PROPOSE arrives (the leader's implicit commit plus its own vote);
  /// with f > 1 followers need each other's commits to execute, so the
  /// flag is ignored then. Follower-to-follower commits only duplicate
  /// binding dissemination that the view change and FETCH paths already
  /// guarantee — dropping them removes two messages per instance from the
  /// hot path. Default off to keep simulated trajectories pinned.
  bool commit_to_leader_only = false;

  /// Consensus window size w; must be >= r_max for implicit GC
  /// (Section 4.4). 0 means "4 * r_max".
  std::uint64_t window_size = 0;

  /// Checkpoint every this many sequence numbers.
  std::uint64_t checkpoint_interval = 256;

  /// Progress timeout before a replica abandons the view (Section 4.5).
  Duration viewchange_timeout = 1500 * kMillisecond;

  /// CPU cost model for message handling.
  consensus::CostModel costs;

  /// Optional request-lifecycle trace sink (borrowed, may be null). Hooks
  /// are passive: recording must never change the simulation trajectory.
  obs::TraceRecorder* trace = nullptr;

  /// Live-telemetry surface (real mode). Default-constructed = inert: the
  /// simulator never attaches a shard, so live sampling cannot perturb
  /// simulated trajectories.
  LiveTelemetry telemetry;

  /// Optional asynchronous state-machine executor (borrowed, may be null).
  /// When set, committed instances execute off the replica's runtime
  /// thread, one instance in flight at a time (core/executor.hpp). Real
  /// deployments set this to a real::ExecutionThread; the simulator never
  /// does, so simulated trajectories are unaffected.
  Executor* executor = nullptr;

  /// Optional shard admission gate (borrowed, may be null). Sharded
  /// deployments point every replica of a group at its gate; client
  /// REQUESTs whose key routes elsewhere are turned away with a WrongShard
  /// REJECT before the acceptance test runs (core/sharding.hpp). Null =
  /// unsharded: the intake path is untouched.
  const ShardGate* shard_gate = nullptr;

  std::size_t quorum() const { return f + 1; }
  std::size_t r_max() const { return n * reject_threshold; }
  std::uint64_t effective_window() const {
    std::uint64_t w = window_size == 0 ? 4 * r_max() : window_size;
    return w < r_max() ? r_max() : w;
  }
};

}  // namespace idem::core
