// Configuration of the IDEM protocol (defaults follow the paper's
// evaluation setup, Section 7.1).
#pragma once

#include <cstdint>

#include "common/time.hpp"
#include "consensus/cost_model.hpp"
#include "obs/trace.hpp"

namespace idem::core {

struct IdemConfig {
  /// Number of replicas n = 2f + 1.
  std::size_t n = 3;
  /// Tolerated crash faults.
  std::size_t f = 1;

  /// Reject threshold r: concurrently accepted client-issued requests per
  /// replica (paper default RT = 50). The system-wide cap is r_max = n * r.
  std::size_t reject_threshold = 50;

  /// Fraction of r at which active queue management starts rejecting
  /// non-prioritized clients probabilistically (paper: 60%).
  double aqm_start_fraction = 0.6;

  /// Length of one prioritized-group time slice (paper: 2 s).
  Duration aqm_time_slice = 2 * kSecond;

  /// Number of client groups for AQM prioritization; groups hold at most r
  /// clients. 0 means "derive from the client population": the harness
  /// sets it to ceil(clients / r).
  std::size_t aqm_group_count = 0;

  /// Seed of the acceptance test's pseudo-random function. Must be equal
  /// on all replicas so they tend toward unanimous decisions (Section 5.1).
  std::uint64_t acceptance_prf_seed = 0x1DE4'5EEDull;

  /// Delay before an accepted-but-unexecuted request is forwarded to the
  /// other replicas (paper: 10 ms).
  Duration forward_timeout = 10 * kMillisecond;

  /// Capacity of the recently-rejected-request cache (Section 5.2).
  std::size_t rejected_cache_size = 1024;

  /// Maximum request ids per PROPOSE batch.
  std::size_t batch_max = 32;

  /// Ordered-log batching: a batch is cut as soon as batch_min eligible ids
  /// are queued, or once the oldest queued id has waited batch_flush_delay.
  /// The defaults (1, 0) cut immediately, i.e. legacy behavior.
  std::size_t batch_min = 1;
  Duration batch_flush_delay = 0;

  /// REQUIRE aggregation: accepted ids are flushed to the leader when this
  /// many are pending or the flush interval elapses, whichever is first.
  std::size_t require_batch_max = 32;
  Duration require_flush_interval = 50 * kMicrosecond;

  /// Consensus window size w; must be >= r_max for implicit GC
  /// (Section 4.4). 0 means "4 * r_max".
  std::uint64_t window_size = 0;

  /// Checkpoint every this many sequence numbers.
  std::uint64_t checkpoint_interval = 256;

  /// Progress timeout before a replica abandons the view (Section 4.5).
  Duration viewchange_timeout = 1500 * kMillisecond;

  /// CPU cost model for message handling.
  consensus::CostModel costs;

  /// Optional request-lifecycle trace sink (borrowed, may be null). Hooks
  /// are passive: recording must never change the simulation trajectory.
  obs::TraceRecorder* trace = nullptr;

  std::size_t quorum() const { return f + 1; }
  std::size_t r_max() const { return n * reject_threshold; }
  std::uint64_t effective_window() const {
    std::uint64_t w = window_size == 0 ? 4 * r_max() : window_size;
    return w < r_max() ? r_max() : w;
  }
};

}  // namespace idem::core
