// Pluggable tick source for metrics sampling.
//
// MetricsRegistry::sample() needs a periodic driver, but the period lives
// in a different clock depending on the deployment: simulated time in the
// discrete-event harness, wall-clock nanoseconds on a real event loop.
// MetricsTicker schedules itself on any sim::Runtime — the same seam the
// protocol nodes use — so one implementation serves both. Timestamps of
// the recorded rows come from the runtime's now(), i.e. simulated time in
// sim mode and wall-clock nanoseconds since loop start in real mode.
//
// Thread-confinement: a ticker belongs to its runtime's thread. start()
// may be called before that thread begins running the loop (the usual
// real-mode setup path); stop() must happen on the runtime's thread or
// after its loop has terminated.
#pragma once

#include "obs/metrics_registry.hpp"
#include "sim/runtime.hpp"

namespace idem::obs {

class MetricsTicker {
 public:
  MetricsTicker(sim::Runtime& runtime, MetricsRegistry& registry, Duration interval)
      : runtime_(runtime), registry_(registry), interval_(interval) {}

  ~MetricsTicker() { stop(); }

  MetricsTicker(const MetricsTicker&) = delete;
  MetricsTicker& operator=(const MetricsTicker&) = delete;

  /// Arms the periodic sample; no-op when already running or the interval
  /// is non-positive.
  void start() {
    if (running_ || interval_ <= 0) return;
    running_ = true;
    arm();
  }

  /// Cancels the pending tick. Safe to call repeatedly.
  void stop() {
    if (!running_) return;
    running_ = false;
    if (pending_.valid()) {
      runtime_.cancel(pending_);
      pending_ = sim::EventId{};
    }
  }

  bool running() const { return running_; }

 private:
  void arm() {
    pending_ = runtime_.schedule_after(interval_, [this] {
      if (!running_) return;
      registry_.sample(runtime_.now());
      arm();
    });
  }

  sim::Runtime& runtime_;
  MetricsRegistry& registry_;
  Duration interval_;
  sim::EventId pending_{};
  bool running_ = false;
};

}  // namespace idem::obs
