// Request-lifecycle tracing: a pre-sized flat ring of POD trace events.
//
// Protocol code records one TraceEvent per lifecycle transition of a
// request — REQUEST issued, acceptance verdict per replica, REQUIRE noted
// at the leader, PROPOSE, COMMIT quorum, EXECUTE, REPLY/REJECT — through
// the IDEM_TRACE macro. The recorder is strictly passive: hooks read
// protocol state and append to a side buffer, so a traced run executes
// the exact same simulation trajectory (event count, RNG draws, metrics)
// as an untraced one. See docs/OBSERVABILITY.md for the event schema and
// DESIGN.md for the zero-overhead guarantee.
//
// Hot-path contract (enforced by tests/alloc_test.cpp):
//   - TraceEvent is trivially copyable POD; no strings, no pointers.
//   - record() is inline, noexcept, allocation-free: one bounds-free ring
//     store plus two integer updates. All memory is acquired up front.
//   - With a null recorder the macro is a single predictable branch; with
//     IDEM_TRACE_OFF defined it compiles to nothing.
#pragma once

#include <cstdint>
#include <cstddef>
#include <type_traits>
#include <vector>

#include "common/ids.hpp"
#include "common/time.hpp"

namespace idem::obs {

/// One lifecycle transition. Values are stable (they appear in exported
/// traces); append new kinds at the end.
enum class TraceEventKind : std::uint16_t {
  None = 0,
  // Client side.
  RequestIssued = 1,    ///< client sent the REQUEST (arg: 0)
  RequestRetry = 2,     ///< client retransmitted (arg: attempt irrelevant)
  RejectSeen = 3,       ///< client received a REJECT (arg: pack_reject_seen —
                        ///< low 32 bits rejecting replica, bits 32+ RejectReason)
  RequestOutcome = 4,   ///< operation finished (arg: consensus::Outcome::Kind)
  // Replica intake.
  AcceptVerdict = 10,   ///< acceptance test ran (arg: pack_accept_verdict —
                        ///< bit 0 set = accept, reject reason in bits 8+)
  ForwardAccepted = 11, ///< accepted via FORWARD, bypassing the test
  // Agreement.
  RequireNoted = 20,    ///< leader counted a REQUIRE vote (arg: voting replica)
  Proposed = 21,        ///< leader bound the request (arg: sequence number)
  ProposeReceived = 22, ///< replica adopted a binding (arg: sequence number; per instance)
  CommitQuorum = 23,    ///< instance reached commit quorum (arg: sequence number; per instance)
  // Execution / reply.
  Executed = 30,        ///< request applied to the state machine (arg: sequence number)
  ReplySent = 31,       ///< REPLY sent to the client (arg: 0)
  // View changes (per node; cid/onr are zero).
  ViewChangeStart = 40, ///< entered the view-change state (arg: target view)
  ViewChangeDone = 41,  ///< installed a view (arg: new view)
};

const char* to_string(TraceEventKind kind);

/// One recorded transition. 40 bytes of POD; the sim NodeId doubles as the
/// track id (replicas are 0..n-1, clients live at the client address base).
struct TraceEvent {
  Time at = 0;            ///< simulated time of the transition
  std::uint64_t cid = 0;  ///< client id, 0 for node-scoped events
  std::uint64_t onr = 0;  ///< client operation number, 0 for node-scoped events
  std::uint64_t arg = 0;  ///< kind-specific argument (see TraceEventKind)
  std::uint32_t node = 0; ///< sim::NodeId of the recording node
  TraceEventKind kind = TraceEventKind::None;
  std::uint16_t pad = 0;
};

static_assert(std::is_trivially_copyable_v<TraceEvent>,
              "trace events must be flat POD (memcpy-comparable, no allocation)");
static_assert(sizeof(TraceEvent) == 40, "keep the ring dense");

/// Fixed-capacity ring of trace events. When full, the oldest events are
/// overwritten (the tail of a long run is usually what matters); total_
/// keeps counting so exporters can report how much was shed.
class TraceRecorder {
 public:
  /// Default capacity: 2^18 events (~10 MB), enough for >1000 complete
  /// request lifecycles across a 3-replica cluster.
  explicit TraceRecorder(std::size_t capacity = 1u << 18)
      : ring_(capacity == 0 ? 1 : capacity) {}

  void record(Time at, TraceEventKind kind, std::uint32_t node, RequestId id,
              std::uint64_t arg = 0) noexcept {
    TraceEvent& ev = ring_[total_ % ring_.size()];
    ev.at = at;
    ev.cid = id.cid.value;
    ev.onr = id.onr.value;
    ev.arg = arg;
    ev.node = node;
    ev.kind = kind;
    ++total_;
  }

  /// Node-scoped events (view changes) carry no request id.
  void record(Time at, TraceEventKind kind, std::uint32_t node,
              std::uint64_t arg = 0) noexcept {
    record(at, kind, node, RequestId{}, arg);
  }

  std::size_t capacity() const { return ring_.size(); }
  /// Events currently held (<= capacity).
  std::size_t size() const { return total_ < ring_.size() ? total_ : ring_.size(); }
  /// Events recorded over the recorder's lifetime.
  std::uint64_t total_recorded() const { return total_; }
  /// Events lost to ring wrap-around.
  std::uint64_t overwritten() const {
    return total_ > ring_.size() ? total_ - ring_.size() : 0;
  }

  /// Events in recording order (oldest first). Copies at most capacity()
  /// events; intended for exporters and tests, not the hot path.
  std::vector<TraceEvent> snapshot() const {
    std::vector<TraceEvent> out;
    const std::size_t cap = ring_.size();
    const std::size_t n = size();
    out.reserve(n);
    // Before the first wrap events sit at [0, n); afterwards the oldest
    // surviving event is at the write cursor.
    const std::size_t first = total_ <= cap ? 0 : total_ % cap;
    for (std::size_t i = 0; i < n; ++i) out.push_back(ring_[(first + i) % cap]);
    return out;
  }

  void clear() { total_ = 0; }

 private:
  std::vector<TraceEvent> ring_;
  std::uint64_t total_ = 0;
};

/// Merges per-thread recorder snapshots (each oldest-first) into one
/// timeline ordered by timestamp. Real-mode clusters run one TraceRecorder
/// per event-loop thread; the loops share a clock epoch, so sorting on the
/// stamped time interleaves them into a coherent cluster-wide trace.
std::vector<TraceEvent> merge_trace_snapshots(std::vector<std::vector<TraceEvent>> parts);

}  // namespace idem::obs

// IDEM_TRACE(recorder, at, kind, node, ...): structured analog of LOG_*.
// `recorder` is a (possibly null) obs::TraceRecorder*. Define IDEM_TRACE_OFF
// (cmake -DIDEM_TRACE_EVENTS=OFF) to compile every trace site away.
#if defined(IDEM_TRACE_OFF)
#define IDEM_TRACE(recorder, ...) \
  do {                            \
  } while (0)
#else
#define IDEM_TRACE(recorder, ...)                        \
  do {                                                   \
    if ((recorder) != nullptr) (recorder)->record(__VA_ARGS__); \
  } while (0)
#endif
