// Chrome trace-event JSON exporter (https://ui.perfetto.dev loadable).
//
// Converts a TraceRecorder snapshot into the legacy Chrome trace format:
// one process ("track") per sim node, request lifecycles rendered as async
// span pairs (ph "b"/"e") nested by protocol phase, point events as async
// instants (ph "n"). Async events pair on (cat, id), so every id embeds the
// recording node — spans never cross tracks by accident.
//
// Span pairing (all within one node's track unless noted):
//   request    RequestIssued -> RequestOutcome          client track
//   pending    AcceptVerdict(accept)/ForwardAccepted -> Executed
//   order      first RequireNoted -> Proposed           leader track
//   agree      ProposeReceived -> CommitQuorum          per instance (sqn)
//   viewchange ViewChangeStart -> ViewChangeDone        per node
// Unpaired opens are closed at the last timestamp so begin/end counts
// always balance (tools/trace_check verifies this invariant).
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace idem::obs {

struct ChromeTraceStats {
  std::uint64_t spans = 0;          ///< matched begin/end pairs emitted
  std::uint64_t instants = 0;       ///< async instant events emitted
  std::uint64_t force_closed = 0;   ///< spans closed at end-of-trace
  std::uint64_t stray_ends = 0;     ///< ends with no matching begin (rendered as instants)
};

/// Per-process metadata embedded in the document's otherData so that
/// tools/trace_merge can stitch exports from separate processes onto one
/// wall-clock timeline: `realtime_anchor_ns` is CLOCK_REALTIME at this
/// process's trace time 0 (see rpc::realtime_anchor_ns).
struct ChromeTraceMeta {
  std::string process;                  ///< label, e.g. "idem_server r1"
  std::int64_t realtime_anchor_ns = 0;  ///< CLOCK_REALTIME at trace ts 0
};

/// Writes `events` (oldest first, as returned by TraceRecorder::snapshot())
/// as a complete Chrome trace JSON document. `client_node_base` is the sim
/// NodeId offset of client nodes (consensus::client_address); nodes at or
/// above it are labelled as clients, below as replicas.
ChromeTraceStats write_chrome_trace(std::FILE* out, const std::vector<TraceEvent>& events,
                                    std::uint32_t client_node_base = 1'000'000);

/// Same, with stitching metadata in otherData (real-mode exports).
ChromeTraceStats write_chrome_trace(std::FILE* out, const std::vector<TraceEvent>& events,
                                    const ChromeTraceMeta& meta,
                                    std::uint32_t client_node_base = 1'000'000);

}  // namespace idem::obs
