#include "obs/chrome_trace.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <string>

#include "common/reject_reason.hpp"

namespace idem::obs {

namespace {

// Span ids embed the node so async pairs (matched on (cat, id) by the
// format) never connect events from different tracks.
std::string request_key(const TraceEvent& ev) {
  return "c" + std::to_string(ev.cid) + "#" + std::to_string(ev.onr);
}

std::string span_id(const char* name, const TraceEvent& ev) {
  return std::string(name) + "/n" + std::to_string(ev.node) + "/" + request_key(ev);
}

std::string instance_id(const TraceEvent& ev) {
  // Agreement spans are per consensus instance: keyed by sequence number
  // (ev.arg), not by request (a batched PROPOSE binds many requests).
  return "agree/n" + std::to_string(ev.node) + "/s" + std::to_string(ev.arg);
}

std::string viewchange_id(const TraceEvent& ev) {
  return "viewchange/n" + std::to_string(ev.node);
}

double to_trace_us(Time t) { return static_cast<double>(t) / 1000.0; }

class Writer {
 public:
  Writer(std::FILE* out, std::uint32_t client_node_base, const ChromeTraceMeta* meta)
      : out_(out), client_node_base_(client_node_base), meta_(meta) {}

  void begin_document() { std::fputs("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", out_); }

  void end_document(std::uint64_t total_recorded, std::uint64_t overwritten) {
    std::fprintf(out_,
                 "],\"otherData\":{\"recorded\":%llu,\"overwritten\":%llu",
                 static_cast<unsigned long long>(total_recorded),
                 static_cast<unsigned long long>(overwritten));
    if (meta_ != nullptr) {
      // Stitching metadata: trace_merge aligns documents by shifting each
      // one's timestamps so that trace time 0 lands at its realtime anchor.
      std::fprintf(out_, ",\"process\":\"%s\",\"realtime_anchor_ns\":%lld",
                   meta_->process.c_str(),
                   static_cast<long long>(meta_->realtime_anchor_ns));
    }
    std::fputs("}}\n", out_);
  }

  void process_name(std::uint32_t node) {
    comma();
    if (node >= client_node_base_) {
      std::fprintf(out_,
                   "{\"ph\":\"M\",\"pid\":%u,\"name\":\"process_name\","
                   "\"args\":{\"name\":\"client c%u\"}}",
                   node, node - client_node_base_);
    } else {
      std::fprintf(out_,
                   "{\"ph\":\"M\",\"pid\":%u,\"name\":\"process_name\","
                   "\"args\":{\"name\":\"replica r%u\"}}",
                   node, node);
    }
  }

  void async(char ph, const char* name, const std::string& id, std::uint32_t node, Time at,
             const TraceEvent* ev = nullptr, const char* reason = nullptr) {
    comma();
    std::fprintf(out_,
                 "{\"ph\":\"%c\",\"cat\":\"idem\",\"name\":\"%s\",\"id\":\"%s\","
                 "\"pid\":%u,\"tid\":%u,\"ts\":%.3f",
                 ph, name, id.c_str(), node, node, to_trace_us(at));
    if (ev != nullptr) {
      std::fprintf(out_, ",\"args\":{\"req\":\"%s\",\"arg\":%llu", request_key(*ev).c_str(),
                   static_cast<unsigned long long>(ev->arg));
      if (reason != nullptr) std::fprintf(out_, ",\"reason\":\"%s\"", reason);
      std::fputc('}', out_);
    }
    std::fputc('}', out_);
  }

 private:
  void comma() {
    if (!first_) std::fputc(',', out_);
    first_ = false;
  }

  std::FILE* out_;
  std::uint32_t client_node_base_;
  const ChromeTraceMeta* meta_;
  bool first_ = true;
};

struct OpenSpan {
  const char* name;
  std::uint32_t node;
};

}  // namespace

namespace {

ChromeTraceStats write_document(std::FILE* out, const std::vector<TraceEvent>& events,
                                const ChromeTraceMeta* meta,
                                std::uint32_t client_node_base) {
  ChromeTraceStats stats;
  Writer w(out, client_node_base, meta);
  w.begin_document();

  std::set<std::uint32_t> nodes;
  for (const TraceEvent& ev : events) nodes.insert(ev.node);
  for (std::uint32_t node : nodes) w.process_name(node);

  // Open spans by id; survivors are force-closed at the final timestamp so
  // the exported begin/end counts balance even for truncated lifecycles.
  std::map<std::string, OpenSpan> open;
  Time last = events.empty() ? 0 : events.back().at;

  auto begin_span = [&](const char* name, std::string id, const TraceEvent& ev) {
    // A duplicate begin (e.g. re-accept after state transfer) would orphan
    // the earlier open; keep the first and note the repeat as an instant.
    if (!open.emplace(id, OpenSpan{name, ev.node}).second) {
      w.async('n', name, id, ev.node, ev.at, &ev);
      ++stats.instants;
      return;
    }
    w.async('b', name, id, ev.node, ev.at, &ev);
  };
  auto end_span = [&](std::string id, const TraceEvent& ev, const char* orphan_name) {
    auto it = open.find(id);
    if (it == open.end()) {
      // End without a begin — a real protocol path, not an error: e.g. a
      // replica that locally rejected a request still executes it once the
      // leader orders it, and commit quorum can be reached from COMMIT
      // votes before the PROPOSE arrives. Render as a point event so the
      // information survives without unbalancing begin/end counts.
      w.async('n', orphan_name, id, ev.node, ev.at, &ev);
      ++stats.instants;
      ++stats.stray_ends;
      return;
    }
    w.async('e', it->second.name, id, it->second.node, ev.at, &ev);
    open.erase(it);
    ++stats.spans;
  };
  auto instant = [&](const char* name, std::string id, const TraceEvent& ev) {
    w.async('n', name, id, ev.node, ev.at, &ev);
    ++stats.instants;
  };

  for (const TraceEvent& ev : events) {
    last = std::max(last, ev.at);
    switch (ev.kind) {
      case TraceEventKind::RequestIssued:
        begin_span("request", span_id("request", ev), ev);
        break;
      case TraceEventKind::RequestOutcome:
        end_span(span_id("request", ev), ev, "outcome");
        break;
      case TraceEventKind::RequestRetry:
        instant("retry", span_id("request", ev), ev);
        break;
      case TraceEventKind::RejectSeen:
        w.async('n', "reject_seen", span_id("request", ev), ev.node, ev.at, &ev,
                to_label(reject_seen_reason(ev.arg)));
        ++stats.instants;
        break;
      case TraceEventKind::AcceptVerdict:
        if (accept_verdict_accepted(ev.arg)) {
          begin_span("pending", span_id("pending", ev), ev);
        } else {
          w.async('n', "rejected", span_id("pending", ev), ev.node, ev.at, &ev,
                  to_label(accept_verdict_reason(ev.arg)));
          ++stats.instants;
        }
        break;
      case TraceEventKind::ForwardAccepted:
        begin_span("pending", span_id("pending", ev), ev);
        break;
      case TraceEventKind::RequireNoted:
        // First REQUIRE opens the leader's ordering span; later votes for
        // the same request render as instants inside it.
        if (open.count(span_id("order", ev)) == 0) {
          begin_span("order", span_id("order", ev), ev);
        } else {
          instant("require", span_id("order", ev), ev);
        }
        break;
      case TraceEventKind::Proposed:
        end_span(span_id("order", ev), ev, "proposed");
        break;
      case TraceEventKind::ProposeReceived:
        begin_span("agree", instance_id(ev), ev);
        break;
      case TraceEventKind::CommitQuorum:
        end_span(instance_id(ev), ev, "commit_quorum");
        break;
      case TraceEventKind::Executed:
        end_span(span_id("pending", ev), ev, "executed");
        break;
      case TraceEventKind::ReplySent:
        instant("reply", span_id("pending", ev), ev);
        break;
      case TraceEventKind::ViewChangeStart:
        begin_span("viewchange", viewchange_id(ev), ev);
        break;
      case TraceEventKind::ViewChangeDone:
        end_span(viewchange_id(ev), ev, "viewchange_done");
        break;
      case TraceEventKind::None:
        break;
    }
  }

  for (const auto& [id, span] : open) {
    w.async('e', span.name, id, span.node, last);
    ++stats.spans;
    ++stats.force_closed;
  }

  // otherData filled in by the caller-facing totals: the exporter only sees
  // the snapshot, so recorded == events.size() and overwritten is unknown
  // here; callers wanting exact shed counts pass the recorder totals via a
  // wrapper. Keeping the document self-contained matters more than the
  // split, so report the snapshot size.
  w.end_document(events.size(), 0);
  return stats;
}

}  // namespace

ChromeTraceStats write_chrome_trace(std::FILE* out, const std::vector<TraceEvent>& events,
                                    std::uint32_t client_node_base) {
  return write_document(out, events, nullptr, client_node_base);
}

ChromeTraceStats write_chrome_trace(std::FILE* out, const std::vector<TraceEvent>& events,
                                    const ChromeTraceMeta& meta,
                                    std::uint32_t client_node_base) {
  return write_document(out, events, &meta, client_node_base);
}

}  // namespace idem::obs
