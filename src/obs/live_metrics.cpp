#include "obs/live_metrics.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

namespace idem::obs {

namespace {

template <typename T>
T* find_series(std::vector<std::pair<std::string, T>>& series, const std::string& name) {
  for (auto& [n, value] : series) {
    if (n == name) return &value;
  }
  return nullptr;
}

/// Splits "rejects[reason=rt-queue-full]" into a sanitized metric name and
/// an optional label clause; plain names pass through.
struct PromName {
  std::string metric;
  std::string labels;  ///< rendered as-is, e.g. `{reason="rt-queue-full"}`
};

std::string sanitize(const std::string& text) {
  std::string out = text;
  for (char& c : out) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
              c == '_';
    if (!ok) c = '_';
  }
  return out;
}

PromName prom_name(const std::string& name) {
  PromName out;
  auto bracket = name.find('[');
  if (bracket == std::string::npos || name.back() != ']') {
    out.metric = "idem_" + sanitize(name);
    return out;
  }
  out.metric = "idem_" + sanitize(name.substr(0, bracket));
  // Comma-separated label clauses: "rejects[group=0,reason=wrong-shard]"
  // renders as {group="0",reason="wrong-shard"} (sharded deployments stack
  // a group label on top of the per-reason ones).
  std::string clauses = name.substr(bracket + 1, name.size() - bracket - 2);
  out.labels = "{";
  std::size_t pos = 0;
  while (pos <= clauses.size()) {
    auto comma = clauses.find(',', pos);
    std::string clause =
        clauses.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (out.labels.size() > 1) out.labels += ",";
    auto eq = clause.find('=');
    if (eq == std::string::npos) {
      out.labels += "label=\"" + clause + "\"";
    } else {
      out.labels += sanitize(clause.substr(0, eq)) + "=\"" + clause.substr(eq + 1) + "\"";
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  out.labels += "}";
  return out;
}

void append_f(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  out += buf;
}

}  // namespace

LiveShard::SeriesId LiveShard::counter(const std::string& name) {
  std::lock_guard lock(mu_);
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    if (counters_[i].first == name) return i;
  }
  counters_.emplace_back(name, 0);
  return counters_.size() - 1;
}

LiveShard::SeriesId LiveShard::histogram(const std::string& name) {
  std::lock_guard lock(mu_);
  for (std::size_t i = 0; i < histograms_.size(); ++i) {
    if (histograms_[i].first == name) return i;
  }
  histograms_.emplace_back(name, Histogram{});
  return histograms_.size() - 1;
}

void LiveShard::add(SeriesId id, std::uint64_t delta) {
  std::lock_guard lock(mu_);
  counters_[id].second += delta;
}

void LiveShard::set(SeriesId id, std::uint64_t total) {
  std::lock_guard lock(mu_);
  counters_[id].second = total;
}

void LiveShard::record(SeriesId id, Duration value) {
  std::lock_guard lock(mu_);
  histograms_[id].second.record(value);
}

LiveMetrics::LiveMetrics() : prev_at_(std::chrono::steady_clock::now()) {}

LiveShard* LiveMetrics::make_shard() {
  std::lock_guard lock(mu_);
  return &shards_.emplace_back();
}

LiveSnapshot LiveMetrics::snapshot() {
  std::lock_guard lock(mu_);
  const auto now = std::chrono::steady_clock::now();
  // Sub-millisecond windows (back-to-back scrapes) would turn rates into
  // noise; clamp the divisor, never the data.
  double elapsed = std::chrono::duration<double>(now - prev_at_).count();
  double divisor = std::max(elapsed, 1e-3);

  // Merge all shards by series name (exact: every shard lock is taken).
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, Histogram>> histograms;
  for (LiveShard& shard : shards_) {
    std::lock_guard shard_lock(shard.mu_);
    for (const auto& [name, value] : shard.counters_) {
      if (auto* merged = find_series(counters, name)) {
        *merged += value;
      } else {
        counters.emplace_back(name, value);
      }
    }
    for (const auto& [name, hist] : shard.histograms_) {
      if (auto* merged = find_series(histograms, name)) {
        merged->merge(hist);
      } else {
        histograms.emplace_back(name, hist);
      }
    }
  }

  LiveSnapshot snap;
  snap.window_seconds = elapsed;
  for (const auto& [name, total] : counters) {
    LiveSnapshot::Counter c;
    c.name = name;
    c.total = total;
    std::uint64_t before = 0;
    if (auto* prev = find_series(prev_counters_, name)) before = *prev;
    c.window = total > before ? total - before : 0;
    c.rate = static_cast<double>(c.window) / divisor;
    snap.counters.push_back(std::move(c));
  }
  for (const auto& [name, hist] : histograms) {
    LiveSnapshot::Latency l;
    l.name = name;
    l.total_count = hist.count();
    Histogram window = hist;
    if (auto* prev = find_series(prev_histograms_, name)) window = hist.delta(*prev);
    l.window_count = window.count();
    l.rate = static_cast<double>(l.window_count) / divisor;
    l.p50 = window.p50();
    l.p99 = window.p99();
    l.p999 = window.p999();
    l.mean_ns = window.mean();
    snap.latencies.push_back(std::move(l));
  }

  prev_counters_ = std::move(counters);
  prev_histograms_ = std::move(histograms);
  prev_at_ = now;
  return snap;
}

std::string LiveMetrics::render_prometheus(const LiveSnapshot& snap) {
  std::string out;
  append_f(out, "# TYPE idem_window_seconds gauge\n");
  append_f(out, "idem_window_seconds %.6f\n", snap.window_seconds);
  for (const auto& c : snap.counters) {
    PromName p = prom_name(c.name);
    append_f(out, "%s_total%s %llu\n", p.metric.c_str(), p.labels.c_str(),
             static_cast<unsigned long long>(c.total));
    append_f(out, "%s_rate%s %.3f\n", p.metric.c_str(), p.labels.c_str(), c.rate);
  }
  for (const auto& l : snap.latencies) {
    PromName p = prom_name(l.name);
    append_f(out, "%s_rate%s %.3f\n", p.metric.c_str(), p.labels.c_str(), l.rate);
    append_f(out, "%s_p50_seconds%s %.9f\n", p.metric.c_str(), p.labels.c_str(),
             static_cast<double>(l.p50) / 1e9);
    append_f(out, "%s_p99_seconds%s %.9f\n", p.metric.c_str(), p.labels.c_str(),
             static_cast<double>(l.p99) / 1e9);
    append_f(out, "%s_p999_seconds%s %.9f\n", p.metric.c_str(), p.labels.c_str(),
             static_cast<double>(l.p999) / 1e9);
    append_f(out, "%s_mean_seconds%s %.9f\n", p.metric.c_str(), p.labels.c_str(),
             l.mean_ns / 1e9);
  }
  return out;
}

std::string LiveMetrics::render_json(const LiveSnapshot& snap) {
  std::string out = "{";
  append_f(out, "\"window_seconds\": %.6f, \"counters\": {", snap.window_seconds);
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    const auto& c = snap.counters[i];
    append_f(out, "%s\"%s\": {\"total\": %llu, \"window\": %llu, \"rate\": %.3f}",
             i > 0 ? ", " : "", c.name.c_str(), static_cast<unsigned long long>(c.total),
             static_cast<unsigned long long>(c.window), c.rate);
  }
  out += "}, \"latencies\": {";
  for (std::size_t i = 0; i < snap.latencies.size(); ++i) {
    const auto& l = snap.latencies[i];
    append_f(out,
             "%s\"%s\": {\"window_count\": %llu, \"rate\": %.3f, \"p50_ms\": %.4f,"
             " \"p99_ms\": %.4f, \"p999_ms\": %.4f, \"mean_ms\": %.4f}",
             i > 0 ? ", " : "", l.name.c_str(),
             static_cast<unsigned long long>(l.window_count), l.rate,
             static_cast<double>(l.p50) / 1e6, static_cast<double>(l.p99) / 1e6,
             static_cast<double>(l.p999) / 1e6, l.mean_ns / 1e6);
  }
  out += "}}";
  return out;
}

}  // namespace idem::obs
