#include "obs/trace.hpp"

#include <algorithm>

namespace idem::obs {

const char* to_string(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::None: return "none";
    case TraceEventKind::RequestIssued: return "request_issued";
    case TraceEventKind::RequestRetry: return "request_retry";
    case TraceEventKind::RejectSeen: return "reject_seen";
    case TraceEventKind::RequestOutcome: return "request_outcome";
    case TraceEventKind::AcceptVerdict: return "accept_verdict";
    case TraceEventKind::ForwardAccepted: return "forward_accepted";
    case TraceEventKind::RequireNoted: return "require_noted";
    case TraceEventKind::Proposed: return "proposed";
    case TraceEventKind::ProposeReceived: return "propose_received";
    case TraceEventKind::CommitQuorum: return "commit_quorum";
    case TraceEventKind::Executed: return "executed";
    case TraceEventKind::ReplySent: return "reply_sent";
    case TraceEventKind::ViewChangeStart: return "viewchange_start";
    case TraceEventKind::ViewChangeDone: return "viewchange_done";
  }
  return "unknown";
}

std::vector<TraceEvent> merge_trace_snapshots(std::vector<std::vector<TraceEvent>> parts) {
  std::vector<TraceEvent> merged;
  std::size_t total = 0;
  for (const auto& part : parts) total += part.size();
  merged.reserve(total);
  for (auto& part : parts) {
    merged.insert(merged.end(), part.begin(), part.end());
  }
  // Stable: events of one recorder keep their recording order on ties, so
  // a merged timeline is still exporter-safe (begin never after end).
  std::stable_sort(merged.begin(), merged.end(),
                   [](const TraceEvent& a, const TraceEvent& b) { return a.at < b.at; });
  return merged;
}

}  // namespace idem::obs
