#include "obs/trace.hpp"

namespace idem::obs {

const char* to_string(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::None: return "none";
    case TraceEventKind::RequestIssued: return "request_issued";
    case TraceEventKind::RequestRetry: return "request_retry";
    case TraceEventKind::RejectSeen: return "reject_seen";
    case TraceEventKind::RequestOutcome: return "request_outcome";
    case TraceEventKind::AcceptVerdict: return "accept_verdict";
    case TraceEventKind::ForwardAccepted: return "forward_accepted";
    case TraceEventKind::RequireNoted: return "require_noted";
    case TraceEventKind::Proposed: return "proposed";
    case TraceEventKind::ProposeReceived: return "propose_received";
    case TraceEventKind::CommitQuorum: return "commit_quorum";
    case TraceEventKind::Executed: return "executed";
    case TraceEventKind::ReplySent: return "reply_sent";
    case TraceEventKind::ViewChangeStart: return "viewchange_start";
    case TraceEventKind::ViewChangeDone: return "viewchange_done";
  }
  return "unknown";
}

}  // namespace idem::obs
