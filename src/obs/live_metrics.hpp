// Windowed live metrics for real mode.
//
// The PR 2 observability stack (metrics_registry, trace ring) is
// export-at-end: numbers are cumulative-since-boot and only leave the
// process when someone asks at shutdown. Live telemetry inverts that: a
// running process answers "what is happening *now*" — counter rates and
// latency quantiles over the window since the previous scrape, not since
// boot.
//
// Structure:
//   LiveMetrics  — the per-process hub. Owns shards, serves snapshots.
//   LiveShard    — per-thread recording surface: named counters and
//                  common::Histogram series behind one shard mutex. The
//                  recording thread takes the (uncontended) lock per
//                  update; the snapshot reader takes it briefly per
//                  scrape, so cross-thread reads are exact and TSan-clean.
//
// Windowing: the hub remembers the merged state at the previous
// snapshot() and returns deltas — counter rate = delta / elapsed, latency
// quantiles from Histogram::delta of the bucket states. First scrape
// windows from hub creation.
//
// This subsystem is real-mode-only by construction: nothing in the
// simulator references it, so traced/untraced sim trajectories are
// untouched.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "common/histogram.hpp"
#include "common/time.hpp"

namespace idem::obs {

/// Per-thread recording surface. Obtain from LiveMetrics::make_shard();
/// register series up front (find-or-create by name), then update through
/// the returned ids on the hot path.
///
/// Naming convention: a series name may carry one Prometheus-style label
/// in brackets — "rejects[reason=rt-queue-full]" — which the Prometheus
/// renderer turns into `idem_rejects_total{reason="rt-queue-full"}`.
/// Identically named series on different shards aggregate in snapshots.
class LiveShard {
 public:
  using SeriesId = std::size_t;

  /// Find-or-create a monotonic counter / latency histogram.
  SeriesId counter(const std::string& name);
  SeriesId histogram(const std::string& name);

  /// Hot-path updates (one uncontended mutex acquisition each).
  void add(SeriesId id, std::uint64_t delta = 1);
  /// Sets a counter to an absolute value (for mirroring an externally
  /// maintained monotonic total, e.g. TransportStats, into the window
  /// machinery at scrape time).
  void set(SeriesId id, std::uint64_t total);
  void record(SeriesId id, Duration value);

 private:
  friend class LiveMetrics;
  mutable std::mutex mu_;
  std::vector<std::pair<std::string, std::uint64_t>> counters_;
  std::vector<std::pair<std::string, Histogram>> histograms_;
};

/// One scrape's view: totals plus rates/quantiles over the window since
/// the previous scrape.
struct LiveSnapshot {
  double window_seconds = 0;

  struct Counter {
    std::string name;
    std::uint64_t total = 0;      ///< cumulative since boot
    std::uint64_t window = 0;     ///< increments in this window
    double rate = 0;              ///< window / window_seconds
  };
  struct Latency {
    std::string name;
    std::uint64_t total_count = 0;
    std::uint64_t window_count = 0;
    double rate = 0;
    Duration p50 = 0;             ///< windowed quantiles (ns)
    Duration p99 = 0;
    Duration p999 = 0;
    double mean_ns = 0;
  };

  std::vector<Counter> counters;
  std::vector<Latency> latencies;
};

/// Process-wide hub: hands out shards, merges them into windowed
/// snapshots, renders exposition formats.
class LiveMetrics {
 public:
  LiveMetrics();

  /// Creates a shard (stable address for the hub's lifetime). Thread-safe.
  LiveShard* make_shard();

  /// Merges all shards and returns the window since the previous call
  /// (concurrent scrapers therefore split the stream between them).
  LiveSnapshot snapshot();

  /// Prometheus text exposition (text/plain; version=0.0.4). Counters
  /// render as `idem_<name>_total` plus `idem_<name>_rate`; latency series
  /// as `idem_<name>_{p50,p99,p999}_seconds` and `idem_<name>_rate`.
  static std::string render_prometheus(const LiveSnapshot& snap);

  /// The same snapshot as a JSON object (admin /stats building block).
  static std::string render_json(const LiveSnapshot& snap);

 private:
  std::mutex mu_;  ///< guards shards_ and the previous-window state
  std::deque<LiveShard> shards_;
  std::vector<std::pair<std::string, std::uint64_t>> prev_counters_;
  std::vector<std::pair<std::string, Histogram>> prev_histograms_;
  std::chrono::steady_clock::time_point prev_at_;
};

}  // namespace idem::obs
