// Per-replica metrics registry: named counters and gauges sampled on a
// simulated-time tick.
//
// Registration (names, gauge closures, sample-buffer reservation) happens
// at cluster setup and may allocate freely. The recording side is two
// disjoint hot paths, both allocation-free once reserved:
//   - counters: producers hold a stable std::uint64_t* and increment it;
//   - sample(): reads every series (counter load or gauge call) and
//     appends one row to the pre-reserved columnar sample store.
// Samples dump as JSONL (one object per tick) via write_jsonl(); see
// docs/OBSERVABILITY.md for the format.
#pragma once

#include <cstdint>
#include <cstdio>
#include <deque>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/time.hpp"

namespace idem::obs {

class MetricsRegistry {
 public:
  using GaugeFn = std::function<double()>;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registers a monotonically increasing counter; the returned slot is
  /// stable for the registry's lifetime (producers cache the pointer and
  /// increment it directly on the hot path).
  std::uint64_t* add_counter(std::string name) {
    counters_.push_back(0);
    series_.push_back(Series{std::move(name), nullptr, &counters_.back()});
    return &counters_.back();
  }

  /// Registers a gauge evaluated at every sample() tick. The callback must
  /// be pure observation: reading cluster state through it must not change
  /// the simulation trajectory.
  void add_gauge(std::string name, GaugeFn fn) {
    series_.push_back(Series{std::move(name), std::move(fn), nullptr});
  }

  /// Pre-sizes the sample store for `rows` ticks so steady-state sampling
  /// never reallocates (the allocation budget in tests/alloc_test.cpp).
  void reserve_samples(std::size_t rows) {
    sample_times_.reserve(rows);
    sample_values_.reserve(rows * series_.size());
  }

  /// Takes one sample row of every registered series at time `now`.
  void sample(Time now) {
    sample_times_.push_back(now);
    for (const Series& s : series_) {
      sample_values_.push_back(s.counter != nullptr ? static_cast<double>(*s.counter)
                                                    : s.gauge());
    }
  }

  std::size_t series_count() const { return series_.size(); }
  const std::string& series_name(std::size_t i) const { return series_[i].name; }
  std::size_t rows() const { return sample_times_.size(); }
  Time row_time(std::size_t row) const { return sample_times_[row]; }
  double value(std::size_t row, std::size_t series) const {
    return sample_values_[row * series_.size() + series];
  }

  /// Current value of a series by name (last resort for tests; O(n)).
  double current(std::string_view name) const {
    for (const Series& s : series_) {
      if (s.name == name) return s.counter != nullptr ? static_cast<double>(*s.counter) : s.gauge();
    }
    return 0.0;
  }

  /// Writes every sample row as one JSON object per line:
  ///   {"t_ms":12.3,"r0.queue_depth":4,...}
  void write_jsonl(std::FILE* out) const;

 private:
  struct Series {
    std::string name;
    GaugeFn gauge;            ///< non-null for gauges
    std::uint64_t* counter;   ///< non-null for counters
  };

  std::deque<std::uint64_t> counters_;  ///< deque: stable addresses
  std::vector<Series> series_;
  std::vector<Time> sample_times_;
  std::vector<double> sample_values_;   ///< row-major [row][series]
};

}  // namespace idem::obs
