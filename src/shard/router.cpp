#include "shard/router.hpp"

#include <cassert>
#include <utility>

namespace idem::shard {

ShardRouter::ShardRouter(ShardMap map, std::vector<consensus::ServiceClient*> group_clients,
                         RouterConfig config)
    : map_(std::move(map)), group_clients_(std::move(group_clients)), config_(std::move(config)) {
  assert(!group_clients_.empty());
}

void ShardRouter::invoke(std::vector<std::byte> command, Callback callback) {
  assert(!busy_ && "one pending operation per router");
  busy_ = true;
  ++stats_.operations;
  command_ = std::move(command);
  callback_ = std::move(callback);
  hops_ = 0;
  first_issued_ = 0;
  issue(route(command_));
}

GroupId ShardRouter::route(const std::vector<std::byte>& command) const {
  const auto key = peek_command_key(command);
  // Malformed commands go wherever segment 0 points; any group's state
  // machine will answer BadRequest.
  if (!key.has_value()) return map_.entries().front().group;
  return map_.group_for_key(*key);
}

void ShardRouter::issue(GroupId group) {
  last_group_ = group;
  consensus::ServiceClient* client =
      group_clients_[group < group_clients_.size() ? group : 0];
  client->invoke(command_, [this](const consensus::Outcome& outcome) {
    if (first_issued_ == 0) first_issued_ = outcome.issued;

    if (outcome.wrong_shard()) {
      ++stats_.redirects;
      if (++hops_ > config_.max_hops) {
        ++stats_.redirect_drops;
        finish(outcome);
        return;
      }
      // The rejecting group holds a newer map than ours: refresh the whole
      // cache when a source is wired, else adopt just this key's redirect.
      if (outcome.redirect_epoch > map_.epoch() && config_.map_source) {
        ShardMap fresh = config_.map_source();
        if (fresh.epoch() > map_.epoch()) {
          map_ = std::move(fresh);
          ++stats_.map_refreshes;
        }
      }
      GroupId next = static_cast<GroupId>(outcome.redirect_group);
      if (next == last_group_ || next >= group_clients_.size()) {
        // Self-redirects and out-of-range groups fall back to the cached
        // map; if that still names the group that just refused, the hop
        // budget ends the loop.
        next = route(command_);
      }
      issue(next);
      return;
    }

    finish(outcome);
  });
}

void ShardRouter::finish(const consensus::Outcome& outcome) {
  consensus::Outcome final = outcome;
  if (first_issued_ != 0) final.issued = first_issued_;  // latency spans all hops
  busy_ = false;
  Callback callback = std::move(callback_);
  callback_ = nullptr;
  command_.clear();
  callback(final);
}

void ShardRouter::install(ShardMap map) {
  if (map.epoch() <= map_.epoch()) return;
  map_ = std::move(map);
}

}  // namespace idem::shard
