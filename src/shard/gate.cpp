#include "shard/gate.hpp"

namespace idem::shard {

core::ShardVerdict GroupShardGate::admit(std::span<const std::byte> command) const {
  std::lock_guard lock(mu_);
  core::ShardVerdict verdict;
  verdict.map_epoch = map_.epoch();
  if (frozen_) {
    ++stats_.frozen;
    verdict.kind = core::ShardVerdict::Kind::Frozen;
    return verdict;
  }
  const auto key = peek_command_key(command);
  if (!key.has_value()) {
    // Malformed command: admit it and let the state machine reply
    // BadRequest — the gate must never eat an error the client expects.
    ++stats_.admitted;
    return verdict;
  }
  const GroupId home = map_.group_for_key(*key);
  if (home == group_) {
    ++stats_.admitted;
    return verdict;
  }
  ++stats_.redirected;
  verdict.kind = core::ShardVerdict::Kind::WrongShard;
  verdict.home_group = home;
  return verdict;
}

void GroupShardGate::install(ShardMap map) {
  std::lock_guard lock(mu_);
  if (map.epoch() <= map_.epoch()) return;
  map_ = std::move(map);
}

bool GroupShardGate::frozen() const {
  std::lock_guard lock(mu_);
  return frozen_;
}

std::uint64_t GroupShardGate::epoch() const {
  std::lock_guard lock(mu_);
  return map_.epoch();
}

ShardMap GroupShardGate::map() const {
  std::lock_guard lock(mu_);
  return map_;
}

GroupShardGate::Stats GroupShardGate::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

void GroupShardGate::set_frozen(bool on) {
  std::lock_guard lock(mu_);
  frozen_ = on;
}

}  // namespace idem::shard
