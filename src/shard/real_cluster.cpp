#include "shard/real_cluster.hpp"

#include <chrono>
#include <string>
#include <thread>
#include <utility>

namespace idem::shard {

ShardedRealCluster::ShardedRealCluster(ShardedRealConfig config)
    : config_(std::move(config)), map_(ShardMap::uniform(config_.groups)) {
  if (config_.admin) config_.live_metrics = true;
  if (config_.live_metrics) live_ = std::make_unique<obs::LiveMetrics>();

  gates_.reserve(config_.groups);
  clusters_.reserve(config_.groups);
  for (std::size_t g = 0; g < config_.groups; ++g) {
    gates_.push_back(std::make_unique<GroupShardGate>(static_cast<GroupId>(g), map_));

    real::RealClusterConfig cluster_config = config_.base;
    // Disjoint seed ranges per group (each cluster derives per-replica
    // seeds as seed + i).
    cluster_config.seed = config_.base.seed + g * 1000;
    cluster_config.idem.shard_gate = gates_.back().get();
    cluster_config.admin = false;  // aggregated below instead
    if (live_) {
      cluster_config.live_hub = live_.get();
      cluster_config.telemetry_labels = "group=" + std::to_string(g);
    }
    clusters_.push_back(std::make_unique<real::RealCluster>(std::move(cluster_config)));
  }

  if (config_.admin) {
    real::RealRuntimeConfig runtime_config;
    runtime_config.seed = config_.base.seed + 0xAD31u;
    admin_runtime_ = std::make_unique<real::RealRuntime>(runtime_config);
    admin_ = std::make_unique<rpc::HttpAdmin>(admin_runtime_->loop(), config_.admin_port);
    obs::LiveMetrics* hub = live_.get();
    admin_->route("/metrics", "text/plain; version=0.0.4",
                  [hub] { return obs::LiveMetrics::render_prometheus(hub->snapshot()); });
    admin_->route("/stats", "application/json", [this] { return render_stats(); });
  }
}

ShardedRealCluster::~ShardedRealCluster() { shutdown(); }

ShardMap ShardedRealCluster::map() const {
  std::lock_guard lock(map_mu_);
  return map_;
}

void ShardedRealCluster::publish(ShardMap map) {
  {
    std::lock_guard lock(map_mu_);
    if (map.epoch() <= map_.epoch()) return;
    map_ = map;
  }
  for (auto& gate : gates_) gate->install(map);
}

std::vector<std::vector<rpc::PeerAddress>> ShardedRealCluster::group_addresses() const {
  std::vector<std::vector<rpc::PeerAddress>> addresses;
  addresses.reserve(clusters_.size());
  for (const auto& cluster : clusters_) addresses.push_back(cluster->replica_addresses());
  return addresses;
}

void ShardedRealCluster::start() {
  if (started_) return;
  started_ = true;
  for (auto& cluster : clusters_) cluster->start();
  if (admin_runtime_) admin_runtime_->start();
}

void ShardedRealCluster::shutdown() {
  // Admin first: its handlers read gate state that must stay valid, and
  // nothing protocol-side depends on it.
  if (admin_runtime_) admin_runtime_->stop();
  for (auto& cluster : clusters_) cluster->shutdown();
}

std::string ShardedRealCluster::render_stats() {
  std::string out = "{\"groups\":" + std::to_string(clusters_.size());
  out += ",\"map_epoch\":" + std::to_string(map().epoch());
  out += ",\"per_group\":[";
  for (std::size_t g = 0; g < clusters_.size(); ++g) {
    const GroupShardGate::Stats stats = gates_[g]->stats();
    if (g > 0) out += ",";
    out += "{\"group\":" + std::to_string(g);
    out += ",\"epoch\":" + std::to_string(gates_[g]->epoch());
    out += ",\"frozen\":" + std::string(gates_[g]->frozen() ? "true" : "false");
    out += ",\"admitted\":" + std::to_string(stats.admitted);
    out += ",\"redirected\":" + std::to_string(stats.redirected);
    out += ",\"frozen_rejects\":" + std::to_string(stats.frozen);
    out += "}";
  }
  out += "]";
  if (live_) out += ",\"live\":" + obs::LiveMetrics::render_json(live_->snapshot());
  out += "}";
  return out;
}

bool ShardedRealCluster::drained(std::size_t group) {
  real::RealCluster& cluster = *clusters_[group];
  std::uint64_t next_exec = 0;
  bool first = true;
  for (std::size_t i = 0; i < cluster.n(); ++i) {
    if (cluster.crashed(i)) continue;
    const real::RealCluster::Quiescence q = cluster.quiescence(i);
    if (q.active != 0 || q.queue != 0) return false;
    if (first) {
      next_exec = q.next_execute;
      first = false;
    } else if (q.next_execute != next_exec) {
      return false;
    }
  }
  return !first;
}

bool ShardedRealCluster::run_split(std::uint64_t begin, std::uint64_t end, GroupId from,
                                   GroupId to, Duration drain_timeout) {
  GroupShardGate& source_gate = *gates_[from];
  source_gate.freeze();

  // Drain: frozen intake makes the source's outstanding work finite. The
  // quiescent condition must hold for a few consecutive polls — a replica
  // momentarily between messages still has agreement traffic in flight.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::nanoseconds(drain_timeout);
  int stable = 0;
  while (stable < 3) {
    if (std::chrono::steady_clock::now() >= deadline) {
      source_gate.unfreeze();
      return false;
    }
    std::this_thread::sleep_for(std::chrono::nanoseconds(config_.drain_poll));
    stable = drained(from) ? stable + 1 : 0;
  }

  // Transfer: carve the moving range out of any live source replica (all
  // live replicas agree on next_execute, so their stores match).
  real::RealCluster& source = *clusters_[from];
  std::size_t donor = source.n();
  for (std::size_t i = 0; i < source.n(); ++i) {
    if (!source.crashed(i)) {
      donor = i;
      break;
    }
  }
  if (donor == source.n()) {
    source_gate.unfreeze();
    return false;
  }
  std::vector<std::pair<std::string, std::string>> moved;
  for (auto& [key, value] : source.dump_store(donor)) {
    const std::uint64_t h = ShardMap::hash_key(key);
    if (h >= begin && (end == 0 || h < end)) moved.emplace_back(std::move(key), std::move(value));
  }

  real::RealCluster& target = *clusters_[to];
  for (std::size_t i = 0; i < target.n(); ++i) {
    if (!target.crashed(i)) target.put_entries(i, moved);
  }

  // Flip: publish the epoch+1 map to every gate strictly before lifting
  // the freeze — from the instant the source turns WrongShard redirects
  // around, the target must already own the range.
  publish(map().with_range_moved(begin, end, to));
  source_gate.unfreeze();
  return true;
}

}  // namespace idem::shard
