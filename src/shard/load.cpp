#include "shard/load.hpp"

#include <memory>
#include <string>
#include <utility>

#include "app/kv_store.hpp"
#include "consensus/addresses.hpp"

namespace idem::shard {

namespace {

/// Per-logical-client driver state; lives on the run_sharded_load stack.
struct ClientDriver {
  std::vector<std::unique_ptr<core::IdemClient>> group_clients;  ///< one per group
  std::unique_ptr<ShardRouter> router;
  std::unique_ptr<app::YcsbWorkload> workload;
  std::size_t index = 0;         ///< client index (history attribution)
  std::uint64_t seq = 0;         ///< per-client history sequence
  Rng* arrivals = nullptr;
  Rng* backoff = nullptr;
  bool arrival_pending = false;

  /// restrict_group sampling: keys must route to `restrict` under `map`.
  std::optional<GroupId> restrict;
  const ShardMap* map = nullptr;

  app::KvCommand next_operation() {
    app::KvCommand command = workload->next_operation();
    if (!restrict.has_value()) return command;
    // Resample until the key lands on the restricted group; bounded so a
    // map that gives the group nothing degrades to unrestricted load
    // instead of spinning forever.
    for (int tries = 0; tries < 1000 && map->group_for_key(command.key) != *restrict; ++tries) {
      command = workload->next_operation();
    }
    return command;
  }
};

struct RunState {
  ShardedLoadStats stats;
  bool measuring = false;
  bool issuing = true;
  bool record_history = false;
  Duration backoff_min = 0;
  Duration backoff_max = 0;
};

constexpr std::size_t kNoHistory = static_cast<std::size_t>(-1);

void issue(rpc::EventLoop& loop, ClientDriver& driver, RunState& state, double rate);

void on_outcome(rpc::EventLoop& loop, ClientDriver& driver, RunState& state, double rate,
                std::size_t hindex, const consensus::Outcome& outcome) {
  if (hindex != kNoHistory && state.record_history) {
    check::Op::Result result = check::Op::Result::Open;
    switch (outcome.kind) {
      case consensus::Outcome::Kind::Reply:
        result = check::Op::Result::Ok;
        break;
      case consensus::Outcome::Kind::Rejected:
        result = check::Op::Result::Rejected;
        break;
      case consensus::Outcome::Kind::Timeout:
        result = check::Op::Result::Timeout;
        break;
    }
    state.stats.history.complete(hindex, result, loop.now(), outcome.result,
                                 outcome.definitive_failure);
  }
  if (state.measuring) {
    real::LoadStats& load = state.stats.load;
    switch (outcome.kind) {
      case consensus::Outcome::Kind::Reply: {
        ++load.replies;
        load.reply_latency.record(outcome.latency());
        const app::KvResult result = app::KvResult::decode(outcome.result);
        if (result.status == app::KvResult::Status::BadRequest) ++load.malformed;
        break;
      }
      case consensus::Outcome::Kind::Rejected:
        ++load.rejects;
        load.reject_latency.record(outcome.latency());
        break;
      case consensus::Outcome::Kind::Timeout:
        ++load.timeouts;
        break;
    }
  }
  if (!state.issuing) return;
  if (rate > 0) {
    if (driver.arrival_pending) {
      driver.arrival_pending = false;
      issue(loop, driver, state, rate);
    }
  } else {
    // Closed loop with rejection backoff (real::run_load semantics): a
    // frozen gate mid-split or a hot group's proactive rejection both
    // surface as Rejected and both mean "come back later".
    Duration delay = 0;
    if (outcome.kind != consensus::Outcome::Kind::Reply && state.backoff_max > 0) {
      delay = state.backoff_min +
              static_cast<Duration>(
                  driver.backoff->uniform_int(0, state.backoff_max - state.backoff_min));
    }
    loop.schedule_after(delay, [&loop, &driver, &state, rate] {
      if (state.issuing) issue(loop, driver, state, rate);
    });
  }
}

void issue(rpc::EventLoop& loop, ClientDriver& driver, RunState& state, double rate) {
  if (state.measuring) ++state.stats.load.issued;
  const app::KvCommand command = driver.next_operation();
  std::vector<std::byte> bytes = command.encode();
  std::size_t hindex = kNoHistory;
  if (state.record_history && state.measuring) {
    hindex = state.stats.history.begin(driver.index, ++driver.seq, bytes, loop.now());
  }
  driver.router->invoke(std::move(bytes),
                        [&loop, &driver, &state, rate, hindex](const consensus::Outcome& outcome) {
                          on_outcome(loop, driver, state, rate, hindex, outcome);
                        });
}

void arm_arrival(rpc::EventLoop& loop, ClientDriver& driver, RunState& state, double rate) {
  const double gap_sec = driver.arrivals->exponential(1.0 / rate);
  loop.schedule_after(static_cast<Duration>(gap_sec * kSecond),
                      [&loop, &driver, &state, rate] {
                        if (!state.issuing) return;
                        if (driver.router->busy()) {
                          if (state.measuring) ++state.stats.load.deferred;
                          driver.arrival_pending = true;
                        } else {
                          issue(loop, driver, state, rate);
                        }
                        arm_arrival(loop, driver, state, rate);
                      });
}

}  // namespace

ShardedLoadStats run_sharded_load(const ShardedLoadOptions& options) {
  rpc::EventLoop loop(options.seed, options.epoch);

  // One transport per group: every group's replicas sit at the same
  // 0-based protocol addresses, so their port mappings must not share a
  // remote table.
  std::vector<std::unique_ptr<rpc::TcpTransport>> transports;
  transports.reserve(options.groups.size());
  for (const std::vector<rpc::PeerAddress>& replicas : options.groups) {
    auto transport = std::make_unique<rpc::TcpTransport>(loop);
    for (std::size_t i = 0; i < replicas.size(); ++i) {
      transport->set_remote(consensus::replica_address(ReplicaId{static_cast<std::uint32_t>(i)}),
                            replicas[i]);
    }
    transports.push_back(std::move(transport));
  }

  core::IdemClientConfig client_config = options.client;
  if (!options.groups.empty() && !options.groups[0].empty()) {
    client_config.n = options.groups[0].size();
    if (client_config.f == core::IdemClientConfig{}.f && client_config.n >= 3) {
      client_config.f = (client_config.n - 1) / 2;
    }
  }

  RunState state;
  state.backoff_min = options.backoff_min;
  state.backoff_max = options.backoff_max;
  state.record_history = options.record_history;
  const double rate = options.open_loop_rate;
  std::vector<ClientDriver> drivers(options.clients);
  for (std::size_t c = 0; c < options.clients; ++c) {
    ClientDriver& driver = drivers[c];
    driver.index = c;
    const ClientId cid{options.client_id_base + c};
    std::vector<consensus::ServiceClient*> clients;
    for (auto& transport : transports) {
      driver.group_clients.push_back(
          std::make_unique<core::IdemClient>(loop, *transport, cid, client_config));
      driver.group_clients.back()->set_inline_dispatch(true);
      clients.push_back(driver.group_clients.back().get());
    }
    driver.router = std::make_unique<ShardRouter>(options.map, std::move(clients), options.router);
    driver.restrict = options.restrict_group;
    driver.map = &options.map;
    driver.backoff = &loop.rng("shard-load.backoff.c" + std::to_string(cid.value));
    driver.workload = std::make_unique<app::YcsbWorkload>(
        options.workload, loop.rng("shard-load.c" + std::to_string(cid.value)));
    if (rate > 0) {
      driver.arrivals = &loop.rng("shard-load.arrival" + std::to_string(cid.value));
    }
  }

  state.measuring = options.warmup <= 0;
  if (options.warmup > 0) {
    loop.schedule_after(options.warmup, [&state] { state.measuring = true; });
  }
  for (ClientDriver& driver : drivers) {
    if (rate > 0) {
      arm_arrival(loop, driver, state, rate);
    } else {
      issue(loop, driver, state, rate);
    }
  }

  loop.run_for(options.warmup + options.duration);
  // Outstanding operations are abandoned; their callbacks must not record
  // into the (about-to-die) state when the loop drains during teardown.
  state.issuing = false;
  state.measuring = false;
  state.record_history = false;

  state.stats.load.measured = options.duration;
  for (ClientDriver& driver : drivers) {
    const RouterStats& r = driver.router->stats();
    state.stats.router.operations += r.operations;
    state.stats.router.redirects += r.redirects;
    state.stats.router.map_refreshes += r.map_refreshes;
    state.stats.router.redirect_drops += r.redirect_drops;
  }
  return state.stats;
}

}  // namespace idem::shard
