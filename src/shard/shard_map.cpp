#include "shard/shard_map.hpp"

#include <algorithm>
#include <cassert>

namespace idem::shard {

ShardMap::ShardMap(std::uint64_t epoch, std::vector<Entry> entries)
    : epoch_(epoch), entries_(std::move(entries)) {
  assert(valid());
}

ShardMap ShardMap::uniform(std::size_t groups, std::uint64_t epoch) {
  assert(groups > 0);
  std::vector<Entry> entries;
  entries.reserve(groups);
  // Boundary i = i * floor(2^64 / groups); the last segment absorbs the
  // remainder. Computed in steps to avoid the 2^64 overflow.
  const std::uint64_t stride = groups > 1 ? (~0ull / groups) + 1 : 0;
  for (std::size_t g = 0; g < groups; ++g) {
    entries.push_back({stride * g, static_cast<GroupId>(g)});
  }
  return ShardMap(epoch, std::move(entries));
}

std::size_t ShardMap::group_count() const {
  GroupId highest = 0;
  for (const Entry& e : entries_) highest = std::max(highest, e.group);
  return highest + 1;
}

std::uint64_t ShardMap::hash_key(std::string_view key) {
  std::uint64_t h = 14695981039346656037ull;  // FNV-1a 64-bit offset basis
  for (char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  // Raw FNV-1a clusters short sequential keys in the high bits — exactly
  // the bits range partitioning splits on ("k0".."k49" all land in the
  // lower half). The murmur3 fmix64 finalizer restores avalanche.
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 33;
  return h;
}

GroupId ShardMap::group_for_hash(std::uint64_t hash) const {
  // Last entry with begin <= hash. upper_bound finds the first begin >
  // hash; its predecessor owns the segment (entries_[0].begin == 0, so a
  // predecessor always exists).
  auto it = std::upper_bound(entries_.begin(), entries_.end(), hash,
                             [](std::uint64_t h, const Entry& e) { return h < e.begin; });
  return std::prev(it)->group;
}

ShardMap ShardMap::with_range_moved(std::uint64_t begin, std::uint64_t end, GroupId to) const {
  // Rebuild from the union of old boundaries and the moved range's edges,
  // assigning each resulting segment either `to` (inside the range) or its
  // previous owner, then coalesce equal neighbors.
  std::vector<std::uint64_t> bounds;
  bounds.reserve(entries_.size() + 2);
  for (const Entry& e : entries_) bounds.push_back(e.begin);
  bounds.push_back(begin);
  if (end != 0) bounds.push_back(end);
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());

  std::vector<Entry> next;
  next.reserve(bounds.size());
  for (std::uint64_t b : bounds) {
    const bool moved = b >= begin && (end == 0 || b < end);
    const GroupId owner = moved ? to : group_for_hash(b);
    if (!next.empty() && next.back().group == owner) continue;  // coalesce
    next.push_back({b, owner});
  }
  return ShardMap(epoch_ + 1, std::move(next));
}

bool ShardMap::valid() const {
  if (entries_.empty() || entries_[0].begin != 0) return false;
  for (std::size_t i = 1; i < entries_.size(); ++i) {
    if (entries_[i].begin <= entries_[i - 1].begin) return false;
  }
  return true;
}

json::Value ShardMap::to_json() const {
  json::Array ranges;
  for (const Entry& e : entries_) {
    json::Object range;
    // json::Value numbers are doubles; boundaries beyond the double-exact
    // integer range go out as decimal strings (from_json accepts both).
    if (e.begin > (1ull << 53)) {
      range["begin"] = json::Value(std::to_string(e.begin));
    } else {
      range["begin"] = json::Value(e.begin);
    }
    range["group"] = json::Value(static_cast<std::uint64_t>(e.group));
    ranges.push_back(json::Value(std::move(range)));
  }
  json::Object map;
  map["epoch"] = json::Value(epoch_);
  map["ranges"] = json::Value(std::move(ranges));
  return json::Value(std::move(map));
}

ShardMap ShardMap::from_json(const json::Value& value) {
  // JSON numbers are doubles: a begin above 2^53 would round on the trip.
  // Map files therefore carry begins as decimal strings when they exceed
  // the double-exact range — to_json emits numbers (uniform boundaries are
  // multiples of large powers of two, which doubles hold exactly), and
  // from_json accepts both forms.
  std::vector<Entry> entries;
  for (const json::Value& range : value.at("ranges").as_array()) {
    Entry e;
    const json::Value& b = range.at("begin");
    e.begin = b.type() == json::Type::String ? std::stoull(b.as_string()) : b.as_uint();
    e.group = static_cast<GroupId>(range.at("group").as_uint());
    entries.push_back(e);
  }
  ShardMap map;
  map.epoch_ = value.at("epoch").as_uint();
  map.entries_ = std::move(entries);
  if (!map.valid()) throw json::ParseError("shard map does not partition the hash space");
  return map;
}

std::optional<std::string_view> peek_command_key(std::span<const std::byte> command) {
  // Layout (app::KvCommand::encode): u8 op, varint key length, key bytes.
  if (command.size() < 2) return std::nullopt;
  std::size_t pos = 1;  // skip op
  std::uint64_t len = 0;
  int shift = 0;
  for (;;) {
    if (pos >= command.size() || shift > 63) return std::nullopt;
    const auto b = static_cast<std::uint8_t>(command[pos++]);
    len |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) break;
    shift += 7;
  }
  if (len > command.size() - pos) return std::nullopt;
  return std::string_view(reinterpret_cast<const char*>(command.data() + pos), len);
}

}  // namespace idem::shard
