// Per-group shard admission gate (the core::ShardGate implementation).
//
// Every replica of group G borrows one GroupShardGate: client REQUESTs
// whose key hashes outside G's ranges are answered with a WrongShard
// REJECT carrying the gate's map epoch and the key's home group. The gate
// is internally synchronized — in real mode the split coordinator swaps
// maps and toggles the freeze flag from the controller thread while the
// replica loops keep calling admit().
//
// freeze() is the first phase of the split handshake: a frozen gate turns
// every client REQUEST away with a retryable ViewChangeInProgress-class
// verdict (no redirect — the map has not changed yet), which stops new
// intake while in-flight agreement drains.
#pragma once

#include <cstdint>
#include <mutex>

#include "core/sharding.hpp"
#include "shard/shard_map.hpp"

namespace idem::shard {

class GroupShardGate final : public core::ShardGate {
 public:
  struct Stats {
    std::uint64_t admitted = 0;    ///< key routed here, passed to the acceptance test
    std::uint64_t redirected = 0;  ///< WrongShard verdicts issued
    std::uint64_t frozen = 0;      ///< REQUESTs turned away while frozen
  };

  GroupShardGate(GroupId group, ShardMap map) : group_(group), map_(std::move(map)) {}

  core::ShardVerdict admit(std::span<const std::byte> command) const override;

  /// Installs a newer map; older epochs are ignored (late coordinator
  /// messages must not roll the gate back).
  void install(ShardMap map);
  void freeze() { set_frozen(true); }
  void unfreeze() { set_frozen(false); }
  bool frozen() const;

  GroupId group() const { return group_; }
  std::uint64_t epoch() const;
  ShardMap map() const;
  Stats stats() const;

 private:
  void set_frozen(bool on);

  const GroupId group_;
  mutable std::mutex mu_;
  ShardMap map_;
  bool frozen_ = false;
  mutable Stats stats_;
};

}  // namespace idem::shard
