// Sharded multi-group real deployment.
//
// M independent real::RealCluster instances (each n replicas on their own
// loop threads, kernel TCP on loopback) run side by side in one process;
// a GroupShardGate per group — shared by that group's replicas, checked
// on their intake path — turns REQUESTs for foreign keys into WrongShard
// REJECTs carrying the map epoch and the key's home group. Groups do not
// talk to each other: the only cross-group machinery is the client-side
// router (shard/load.hpp) and the split coordinator below.
//
// Observability aggregates: every group's replica shards register on one
// obs::LiveMetrics hub with a group=<g> label, and a dedicated admin loop
// thread serves /metrics (Prometheus, group-labelled series) and /stats
// (JSON with a per-group section) for the whole deployment.
//
// Elastic reconfiguration: run_split() executes the freeze -> drain ->
// transfer -> flip handshake from the controller thread, touching replica
// state only through RealRuntime::call()-backed probes on RealCluster.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "real/cluster.hpp"
#include "real/runtime.hpp"
#include "rpc/http_admin.hpp"
#include "shard/gate.hpp"
#include "shard/shard_map.hpp"

namespace idem::shard {

struct ShardedRealConfig {
  std::size_t groups = 2;

  /// Per-group template: n, f, protocol knobs, transport hardening,
  /// preload/workload. The cluster overrides seed (disjoint per group),
  /// admin (aggregated here instead), live_hub and telemetry_labels.
  real::RealClusterConfig base;

  /// Aggregated live telemetry across all groups (implied by admin).
  bool live_metrics = false;
  /// Serve /metrics and /stats for the whole deployment from a dedicated
  /// admin loop thread; 0 binds an ephemeral port (query admin_port()).
  bool admin = false;
  std::uint16_t admin_port = 0;

  /// Split-handshake drain poll interval (wall clock).
  Duration drain_poll = kMillisecond;
};

class ShardedRealCluster {
 public:
  explicit ShardedRealCluster(ShardedRealConfig config);
  ~ShardedRealCluster();

  ShardedRealCluster(const ShardedRealCluster&) = delete;
  ShardedRealCluster& operator=(const ShardedRealCluster&) = delete;

  const ShardedRealConfig& config() const { return config_; }
  std::size_t groups() const { return clusters_.size(); }
  real::RealCluster& group(std::size_t g) { return *clusters_[g]; }
  GroupShardGate& gate(std::size_t g) { return *gates_[g]; }

  /// Current shard map (copied under the map lock — run_split() publishes
  /// from the controller thread while load threads read).
  ShardMap map() const;
  /// Installs `map` (newer epoch) into every gate and the copy served to
  /// routers. No-op for stale epochs.
  void publish(ShardMap map);

  /// Replica addresses of every group, indexed [group][replica] — the
  /// shape the sharded load generator consumes.
  std::vector<std::vector<rpc::PeerAddress>> group_addresses() const;

  void start();
  void shutdown();

  /// Bound aggregated-admin port (0 when the endpoint is off).
  std::uint16_t admin_port() const { return admin_ ? admin_->port() : 0; }
  /// Aggregated hub (nullptr unless live_metrics/admin is on).
  obs::LiveMetrics* live_metrics() { return live_.get(); }

  /// The /stats JSON body (also exposed for tests: per-group gate
  /// counters, freeze state, map epoch, plus the windowed live section).
  std::string render_stats();

  /// Elastic range migration under load, from the controller thread:
  /// freeze the source group's intake, poll (wall clock) until its
  /// in-flight agreement drains, copy the moved range's records into the
  /// target group's stores, publish the epoch+1 map, unfreeze. Returns
  /// false when the source failed to drain within `drain_timeout` (freeze
  /// lifted, map unchanged).
  bool run_split(std::uint64_t begin, std::uint64_t end, GroupId from, GroupId to,
                 Duration drain_timeout = 5 * kSecond);

 private:
  bool drained(std::size_t group);

  ShardedRealConfig config_;
  std::unique_ptr<obs::LiveMetrics> live_;
  std::vector<std::unique_ptr<GroupShardGate>> gates_;
  std::vector<std::unique_ptr<real::RealCluster>> clusters_;

  mutable std::mutex map_mu_;
  ShardMap map_;

  /// Admin rides its own loop thread (no replica shares it, so a slow
  /// scrape never delays protocol work; crash_replica on any group cannot
  /// kill it either).
  std::unique_ptr<real::RealRuntime> admin_runtime_;
  std::unique_ptr<rpc::HttpAdmin> admin_;
  bool started_ = false;
};

}  // namespace idem::shard
