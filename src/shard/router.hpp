// Client-side shard router.
//
// A ShardRouter is a consensus::ServiceClient facade over one protocol
// client per replication group: each operation's key is hashed against the
// cached ShardMap and the command goes to the owning group's client,
// unchanged. The load drivers (sim and real) therefore drive a router
// exactly as they drive a bare client.
//
// Redirect protocol: a WrongShard outcome means the cached map is stale.
// The router follows the redirect — optionally refreshing the whole map
// through RouterConfig::map_source when the rejecting replica's epoch is
// newer — and re-issues the same command at the named home group, up to
// max_hops times per operation. Inconsistent maps (two groups pointing at
// each other) therefore cannot loop: the op fails with Kind::Rejected
// after the hop budget and stats().redirect_drops counts it.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "consensus/service_client.hpp"
#include "shard/shard_map.hpp"

namespace idem::shard {

struct RouterConfig {
  /// Redirect hops allowed per operation before it fails as Rejected.
  std::size_t max_hops = 4;
  /// Optional map refresh: called when a redirect names an epoch newer
  /// than the cached map; returning an empty map (epoch 0 sentinel is not
  /// possible — epochs start at 1) or an older epoch leaves the cache
  /// untouched and the router falls back to redirect-following.
  std::function<ShardMap()> map_source;
};

struct RouterStats {
  std::uint64_t operations = 0;      ///< invoke() calls
  std::uint64_t redirects = 0;       ///< WrongShard outcomes followed
  std::uint64_t map_refreshes = 0;   ///< cached map replaced by a newer epoch
  std::uint64_t redirect_drops = 0;  ///< ops failed at the hop budget
};

class ShardRouter final : public consensus::ServiceClient {
 public:
  /// `group_clients[g]` is the protocol client wired at group g's
  /// replicas; all share one ClientId (groups have independent client
  /// tables, so the id spaces cannot collide). Borrowed pointers.
  ShardRouter(ShardMap map, std::vector<consensus::ServiceClient*> group_clients,
              RouterConfig config = {});

  void invoke(std::vector<std::byte> command, Callback callback) override;
  ClientId client_id() const override { return group_clients_[0]->client_id(); }
  bool busy() const override { return busy_; }

  /// Adopts `map` when its epoch is newer than the cached one.
  void install(ShardMap map);
  const ShardMap& map() const { return map_; }
  const RouterStats& stats() const { return stats_; }
  /// Group the last issued (or in-flight) operation was routed to.
  GroupId last_group() const { return last_group_; }

 private:
  GroupId route(const std::vector<std::byte>& command) const;
  void issue(GroupId group);
  void finish(const consensus::Outcome& outcome);

  ShardMap map_;
  std::vector<consensus::ServiceClient*> group_clients_;
  RouterConfig config_;
  RouterStats stats_;

  bool busy_ = false;
  std::vector<std::byte> command_;  ///< in-flight command (kept for re-issue)
  Callback callback_;
  std::size_t hops_ = 0;
  GroupId last_group_ = 0;
  Time first_issued_ = 0;  ///< issue time of hop 0 (outcomes report full latency)
};

}  // namespace idem::shard
