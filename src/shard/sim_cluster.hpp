// Sharded multi-group simulation harness.
//
// M independent IDEM groups share one Simulator and one SimNetwork; a
// GroupTransport per group translates between the group's pristine
// 0-based address space (replica i at replica_address(i), client c at
// client_address(c) — what all protocol code assumes) and disjoint global
// ranges on the shared network. The protocol objects are byte-identical
// to the single-group harness; nothing in src/idem knows it is sharded.
//
// Client side: each router owns one IdemClient per group (same ClientId
// everywhere — client tables are per-group) and routes by key hash.
// Load is driven closed-loop per router; per-spec stats let scenarios
// separate hot-shard traffic from sibling traffic.
//
// Elastic reconfiguration: run_split() executes the freeze -> drain ->
// transfer -> flip handshake against a live, loaded cluster, advancing
// simulated time while it polls for quiescence.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "app/kv_store.hpp"
#include "app/ycsb.hpp"
#include "check/history.hpp"
#include "idem/client.hpp"
#include "idem/config.hpp"
#include "idem/replica.hpp"
#include "shard/gate.hpp"
#include "shard/router.hpp"
#include "shard/shard_map.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace idem::shard {

/// Global-address layout on the shared network: group g's replica i lives
/// at g * kReplicaStride + i, its view of client c at
/// kClientAddressBase + g * kClientStride + c.
constexpr std::uint32_t kReplicaStride = 1024;
constexpr std::uint32_t kClientStride = 1'000'000;

/// Per-group address translator; implements sim::Transport so protocol
/// nodes register through it unchanged.
class GroupTransport final : public sim::Transport {
 public:
  GroupTransport(sim::Transport& net, GroupId group) : net_(net), group_(group) {}

  void add_node(sim::NodeId id, sim::NodeKind kind, sim::Endpoint* endpoint) override;
  void remove_node(sim::NodeId id) override;
  void send(sim::NodeId from, sim::NodeId to, sim::PayloadPtr message) override;

  sim::NodeId to_global(sim::NodeId local) const;
  sim::NodeId to_local(sim::NodeId global) const;

 private:
  struct Proxy final : sim::Endpoint {
    GroupTransport* owner = nullptr;
    sim::Endpoint* inner = nullptr;
    void deliver(sim::NodeId from, sim::PayloadPtr message) override {
      inner->deliver(owner->to_local(from), std::move(message));
    }
  };

  sim::Transport& net_;
  GroupId group_;
  std::unordered_map<std::uint32_t, std::unique_ptr<Proxy>> proxies_;  ///< by local id
};

struct ShardedSimConfig {
  std::size_t groups = 2;
  std::size_t routers = 8;
  std::uint64_t seed = 1;

  /// Per-group protocol configuration (n, f, reject_threshold, costs...).
  core::IdemConfig idem;
  core::IdemClientConfig client;  ///< n/f overridden from idem
  sim::NetworkConfig network;

  /// Client population per group the acceptance test should assume.
  std::size_t expected_clients = 0;  ///< 0 = routers

  RouterConfig router;  ///< max_hops; map_source is wired by the cluster

  /// Preload every replica's store with these records (same bytes in
  /// every group — the gate decides ownership, not the store contents).
  app::YcsbConfig workload;
  bool preload = false;

  bool record_history = false;  ///< record every op into history()
};

/// One closed-loop load stream bound to a router.
struct SimLoadSpec {
  std::size_t router = 0;
  /// Next command; drawn once per operation from a deterministic stream.
  std::function<app::KvCommand(Rng&)> command;
  /// Backoff after a non-Reply outcome, uniform in [min, max]; 0 = none.
  Duration backoff_min = 0;
  Duration backoff_max = 0;
};

struct SimLoadStats {
  std::uint64_t issued = 0;
  std::uint64_t replies = 0;
  std::uint64_t rejects = 0;
  std::uint64_t timeouts = 0;
};

class ShardedSimCluster {
 public:
  explicit ShardedSimCluster(ShardedSimConfig config);
  ~ShardedSimCluster();

  ShardedSimCluster(const ShardedSimCluster&) = delete;
  ShardedSimCluster& operator=(const ShardedSimCluster&) = delete;

  sim::Simulator& simulator() { return sim_; }
  sim::SimNetwork& network() { return *net_; }
  const ShardedSimConfig& config() const { return config_; }

  std::size_t groups() const { return groups_.size(); }
  const ShardMap& map() const { return map_; }
  GroupShardGate& gate(std::size_t group) { return *groups_[group].gate; }
  core::IdemReplica& replica(std::size_t group, std::size_t index) {
    return *groups_[group].replicas[index];
  }
  ShardRouter& router(std::size_t index) { return *routers_[index].router; }

  /// Current leader index of `group` (first live replica that believes
  /// itself leader), or n when none does.
  std::size_t leader_of(std::size_t group) const;

  /// Crashes replica `index` of `group` (per-group fault injection).
  void crash_replica(std::size_t group, std::size_t index);

  /// Publishes `map` (newer epoch) to every gate and the router map
  /// source. Routers pick it up on their next redirect.
  void publish(ShardMap map);

  /// Drives the load streams closed-loop for `duration` of simulated
  /// time; returns one stats entry per spec. May be called repeatedly.
  std::vector<SimLoadStats> run_load(const std::vector<SimLoadSpec>& specs, Duration duration);

  /// Elastic range migration under load: freeze the source group's
  /// intake, poll until its in-flight agreement drains (advancing the
  /// simulation), copy the moved range's records into the target group's
  /// stores, publish the epoch+1 map, unfreeze. Returns false when the
  /// source failed to drain within `drain_timeout` (the freeze is lifted
  /// and the map unchanged).
  bool run_split(std::uint64_t begin, std::uint64_t end, GroupId from, GroupId to,
                 Duration drain_timeout = 2 * kSecond);

  /// All recorded operations (record_history only).
  const check::History& history() const { return history_; }

 private:
  struct Group {
    std::unique_ptr<GroupTransport> transport;
    std::unique_ptr<GroupShardGate> gate;
    std::vector<std::unique_ptr<core::IdemReplica>> replicas;
    std::vector<bool> crashed;
  };

  struct Router {
    std::vector<std::unique_ptr<core::IdemClient>> clients;  ///< one per group
    std::unique_ptr<ShardRouter> router;
    std::uint64_t history_seq = 0;  ///< per-client sequence across run_load calls
  };

  struct Driver {
    SimLoadSpec spec;
    SimLoadStats stats;
    Rng* rng = nullptr;
    bool stopped = false;
  };

  bool drained(std::size_t group) const;
  void issue_next(Driver& driver);

  ShardedSimConfig config_;
  sim::Simulator sim_;
  std::unique_ptr<sim::SimNetwork> net_;
  ShardMap map_;
  std::vector<Group> groups_;
  std::vector<Router> routers_;
  /// Drivers live for the cluster's lifetime: a backoff-delayed reissue
  /// event scheduled near a run's deadline may still be pending when
  /// run_load returns, and it dereferences its driver when it fires.
  std::vector<std::unique_ptr<Driver>> drivers_;
  std::size_t outstanding_ = 0;  ///< in-flight operations across drivers
  check::History history_;
};

}  // namespace idem::shard
