// Wall-clock load generation against a sharded real deployment.
//
// run_sharded_load() mirrors real::run_load() — one EventLoop on the
// calling thread, unmodified core::IdemClient instances, closed- or
// open-loop YCSB — but each logical client is a ShardRouter over one
// protocol client per replication group (one TcpTransport per group: the
// groups' replicas all use the pristine 0-based address space, so their
// remote tables must not share a namespace). Keys route by hash against
// the cached shard map; WrongShard rejects are followed transparently and
// counted, so a mid-run split shows up as a redirect blip, not an error.
//
// Optionally records every operation into a check::History (client index,
// invoke/complete wall-clock times, result, definitive-reject flag) so a
// live split can be checked for linearizability across the epoch flip.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "app/ycsb.hpp"
#include "check/history.hpp"
#include "common/time.hpp"
#include "idem/client.hpp"
#include "real/load.hpp"
#include "rpc/event_loop.hpp"
#include "rpc/tcp_transport.hpp"
#include "shard/router.hpp"
#include "shard/shard_map.hpp"

namespace idem::shard {

struct ShardedLoadOptions {
  std::size_t clients = 4;
  /// First ClientId; concurrent generators use disjoint ranges.
  std::uint64_t client_id_base = 0;
  Duration warmup = 0;          ///< ops run but are not recorded
  Duration duration = kSecond;  ///< measured span (after warmup)
  /// Per-client open-loop arrival rate in ops/s; 0 = closed loop.
  double open_loop_rate = 0;
  std::uint64_t seed = 1;

  /// Rejection backoff, exactly as real::LoadOptions: any non-REPLY
  /// outcome (rejects, redirect-budget drops, frozen-gate retries during
  /// a split) delays the closed loop's next op by a uniform draw.
  Duration backoff_min = 50 * kMillisecond;
  Duration backoff_max = 100 * kMillisecond;

  /// Group g's replica i is reachable at groups[g][i]; every group must
  /// have the same n (they share one client configuration).
  std::vector<std::vector<rpc::PeerAddress>> groups;
  core::IdemClientConfig client;
  app::YcsbConfig workload;

  /// Initial routing map; group ids must be < groups.size().
  ShardMap map;
  /// max_hops and the optional map_source refresh callback (invoked on
  /// the load loop's thread — e.g. ShardedRealCluster::map, which copies
  /// under its own lock).
  RouterConfig router;

  /// Record every measured-span operation into the returned history.
  bool record_history = false;

  /// Aim every operation at keys this group owns (under the *initial*
  /// map): the workload resamples until the key routes there. This is how
  /// the hot-shard benchmark builds a skewed cross-group mix — one
  /// generator hammering the hot group while another measures a sibling.
  std::optional<GroupId> restrict_group;

  /// Clock epoch — pass the cluster's so timestamps are comparable.
  rpc::EventLoop::Epoch epoch = std::chrono::steady_clock::now();
};

struct ShardedLoadStats {
  real::LoadStats load;
  RouterStats router;       ///< summed across all clients
  check::History history;   ///< record_history only
};

/// Runs the load inline on the calling thread; returns when the span ends.
ShardedLoadStats run_sharded_load(const ShardedLoadOptions& options);

}  // namespace idem::shard
