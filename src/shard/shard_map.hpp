// Versioned keyspace partition: hash ranges -> replication groups.
//
// The 64-bit key-hash space [0, 2^64) is split at ordered boundaries;
// segment i covers [begin_i, begin_{i+1}) (the last runs to the top) and
// names the group that owns it. Storing only the lower bounds makes
// "covers everything, no overlap" true by construction — validation is
// just "first boundary is 0 and boundaries strictly increase".
//
// Every map carries an epoch. Reconfiguration (splitting a hot shard,
// migrating a range) publishes a successor map with epoch+1; replicas
// embed their epoch in WrongShard REJECTs so a router holding an older
// map knows its copy is stale, not merely wrong. Maps serialize to JSON
// (ordered keys, byte-stable) for CLI map files and artifacts.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.hpp"

namespace idem::shard {

using GroupId = std::uint32_t;

class ShardMap {
 public:
  struct Entry {
    std::uint64_t begin = 0;  ///< segment covers [begin, next.begin)
    GroupId group = 0;
  };

  /// Single segment: everything owned by group 0, epoch 1.
  ShardMap() : epoch_(1), entries_{{0, 0}} {}
  ShardMap(std::uint64_t epoch, std::vector<Entry> entries);

  /// M equal hash ranges, group i owning the i-th.
  static ShardMap uniform(std::size_t groups, std::uint64_t epoch = 1);

  std::uint64_t epoch() const { return epoch_; }
  const std::vector<Entry>& entries() const { return entries_; }
  /// Highest group id referenced, plus one.
  std::size_t group_count() const;

  /// Stable hash of the key bytes: FNV-1a 64 with the murmur3 fmix64
  /// finalizer (std::hash is not portable; raw FNV's high bits — the bits
  /// range partitioning splits on — cluster for short sequential keys).
  static std::uint64_t hash_key(std::string_view key);

  GroupId group_for_hash(std::uint64_t hash) const;
  GroupId group_for_key(std::string_view key) const {
    return group_for_hash(hash_key(key));
  }

  /// Successor map (epoch+1) with [begin, end) reassigned to `to`;
  /// end == 0 means "to the top of the hash space". Adjacent segments
  /// with equal owners are coalesced.
  ShardMap with_range_moved(std::uint64_t begin, std::uint64_t end, GroupId to) const;

  /// True when the entries partition the hash space (first begin == 0,
  /// strictly increasing boundaries).
  bool valid() const;

  bool operator==(const ShardMap& other) const {
    if (epoch_ != other.epoch_ || entries_.size() != other.entries_.size()) return false;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].begin != other.entries_[i].begin ||
          entries_[i].group != other.entries_[i].group) {
        return false;
      }
    }
    return true;
  }

  json::Value to_json() const;
  static ShardMap from_json(const json::Value& value);  ///< throws json::ParseError
  std::string dump() const { return to_json().dump(); }
  static ShardMap parse(std::string_view text) { return from_json(json::Value::parse(text)); }

 private:
  std::uint64_t epoch_ = 1;
  std::vector<Entry> entries_;  ///< sorted by begin; entries_[0].begin == 0
};

/// Reads the key out of an encoded app::KvCommand without copying the
/// value (u8 op, varint key length, key bytes). nullopt on anything
/// malformed — the caller treats those as "mine" and lets the state
/// machine produce its BadRequest reply.
std::optional<std::string_view> peek_command_key(std::span<const std::byte> command);

}  // namespace idem::shard
