#include "shard/sim_cluster.hpp"

#include <cassert>
#include <utility>

#include "consensus/addresses.hpp"
#include "idem/acceptance.hpp"

namespace idem::shard {

// ---------------------------------------------------------------------------
// GroupTransport
// ---------------------------------------------------------------------------

void GroupTransport::add_node(sim::NodeId id, sim::NodeKind kind, sim::Endpoint* endpoint) {
  auto proxy = std::make_unique<Proxy>();
  proxy->owner = this;
  proxy->inner = endpoint;
  net_.add_node(to_global(id), kind, proxy.get());
  proxies_[id.value] = std::move(proxy);
}

void GroupTransport::remove_node(sim::NodeId id) {
  net_.remove_node(to_global(id));
  proxies_.erase(id.value);
}

void GroupTransport::send(sim::NodeId from, sim::NodeId to, sim::PayloadPtr message) {
  net_.send(to_global(from), to_global(to), std::move(message));
}

sim::NodeId GroupTransport::to_global(sim::NodeId local) const {
  if (consensus::is_client_address(local)) {
    return sim::NodeId{consensus::kClientAddressBase + group_ * kClientStride +
                       (local.value - consensus::kClientAddressBase)};
  }
  return sim::NodeId{group_ * kReplicaStride + local.value};
}

sim::NodeId GroupTransport::to_local(sim::NodeId global) const {
  if (global.value >= consensus::kClientAddressBase) {
    return sim::NodeId{global.value - group_ * kClientStride};
  }
  return sim::NodeId{global.value - group_ * kReplicaStride};
}

// ---------------------------------------------------------------------------
// ShardedSimCluster
// ---------------------------------------------------------------------------

ShardedSimCluster::ShardedSimCluster(ShardedSimConfig config)
    : config_(std::move(config)),
      sim_(config_.seed),
      net_(std::make_unique<sim::SimNetwork>(sim_, config_.network)),
      map_(ShardMap::uniform(config_.groups)) {
  assert(config_.groups > 0 && config_.routers > 0);
  const std::size_t expected =
      config_.expected_clients > 0 ? config_.expected_clients : config_.routers;

  // Preload: one canonical record set, identical bytes in every store —
  // the gates decide ownership, so a group holding foreign records is
  // harmless (they are unreachable through it).
  std::vector<std::pair<std::string, std::string>> records;
  if (config_.preload) {
    Rng& rng = sim_.rng("shard-preload");
    app::YcsbWorkload workload(config_.workload, rng);
    for (const app::KvCommand& cmd : workload.load_phase()) {
      records.emplace_back(cmd.key, cmd.value);
    }
  }

  groups_.resize(config_.groups);
  for (std::size_t g = 0; g < config_.groups; ++g) {
    Group& group = groups_[g];
    group.transport = std::make_unique<GroupTransport>(*net_, static_cast<GroupId>(g));
    group.gate = std::make_unique<GroupShardGate>(static_cast<GroupId>(g), map_);
    group.crashed.assign(config_.idem.n, false);
    for (std::size_t i = 0; i < config_.idem.n; ++i) {
      core::IdemConfig replica_config = config_.idem;
      replica_config.shard_gate = group.gate.get();
      auto store = std::make_unique<app::KvStore>();
      for (const auto& [key, value] : records) store->put(key, value);
      group.replicas.push_back(std::make_unique<core::IdemReplica>(
          sim_, *group.transport, ReplicaId{static_cast<std::uint32_t>(i)}, replica_config,
          std::move(store), core::make_default_acceptance(replica_config, expected)));
    }
  }

  core::IdemClientConfig client_config = config_.client;
  client_config.n = config_.idem.n;
  client_config.f = config_.idem.f;
  RouterConfig router_config = config_.router;
  router_config.map_source = [this] { return map_; };

  routers_.resize(config_.routers);
  for (std::size_t r = 0; r < config_.routers; ++r) {
    Router& router = routers_[r];
    std::vector<consensus::ServiceClient*> clients;
    for (std::size_t g = 0; g < config_.groups; ++g) {
      router.clients.push_back(std::make_unique<core::IdemClient>(
          sim_, *groups_[g].transport, ClientId{r}, client_config));
      clients.push_back(router.clients.back().get());
    }
    router.router = std::make_unique<ShardRouter>(map_, std::move(clients), router_config);
  }
}

ShardedSimCluster::~ShardedSimCluster() = default;

std::size_t ShardedSimCluster::leader_of(std::size_t group) const {
  const Group& g = groups_[group];
  for (std::size_t i = 0; i < g.replicas.size(); ++i) {
    if (!g.crashed[i] && g.replicas[i]->is_leader()) return i;
  }
  return g.replicas.size();
}

void ShardedSimCluster::crash_replica(std::size_t group, std::size_t index) {
  groups_[group].crashed[index] = true;
  groups_[group].replicas[index]->crash();
}

void ShardedSimCluster::publish(ShardMap map) {
  map_ = std::move(map);
  for (Group& group : groups_) group.gate->install(map_);
}

void ShardedSimCluster::issue_next(Driver& driver) {
  if (driver.stopped) return;
  Router& router = routers_[driver.spec.router];
  app::KvCommand cmd = driver.spec.command(*driver.rng);
  std::vector<std::byte> bytes = cmd.encode();

  std::size_t hindex = static_cast<std::size_t>(-1);
  if (config_.record_history) {
    hindex = history_.begin(driver.spec.router, ++router.history_seq, bytes, sim_.now());
  }

  ++driver.stats.issued;
  ++outstanding_;
  router.router->invoke(std::move(bytes), [this, &driver, hindex](const consensus::Outcome& o) {
    --outstanding_;
    check::Op::Result result = check::Op::Result::Open;
    switch (o.kind) {
      case consensus::Outcome::Kind::Reply:
        ++driver.stats.replies;
        result = check::Op::Result::Ok;
        break;
      case consensus::Outcome::Kind::Rejected:
        ++driver.stats.rejects;
        result = check::Op::Result::Rejected;
        break;
      case consensus::Outcome::Kind::Timeout:
        ++driver.stats.timeouts;
        result = check::Op::Result::Timeout;
        break;
    }
    if (hindex != static_cast<std::size_t>(-1)) {
      history_.complete(hindex, result, sim_.now(), o.result, o.definitive_failure);
    }

    Duration delay = 0;
    if (o.kind != consensus::Outcome::Kind::Reply && driver.spec.backoff_max > 0) {
      delay = driver.spec.backoff_min;
      if (driver.spec.backoff_max > driver.spec.backoff_min) {
        delay += static_cast<Duration>(
            driver.rng->uniform_int(0, driver.spec.backoff_max - driver.spec.backoff_min));
      }
    }
    if (driver.stopped) return;
    sim_.schedule_after(delay, [this, &driver] { issue_next(driver); });
  });
}

std::vector<SimLoadStats> ShardedSimCluster::run_load(const std::vector<SimLoadSpec>& specs,
                                                      Duration duration) {
  std::vector<Driver*> round;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    auto driver = std::make_unique<Driver>();
    driver->spec = specs[i];
    driver->rng = &sim_.rng("shard-driver-" + std::to_string(drivers_.size()));
    round.push_back(driver.get());
    drivers_.push_back(std::move(driver));
  }

  const Time deadline = sim_.now() + duration;
  for (Driver* driver : round) issue_next(*driver);
  sim_.run_until(deadline);
  for (Driver* driver : round) driver->stopped = true;

  // Let in-flight operations conclude (bounded: a stuck op retries at the
  // client's interval forever, so give up after a grace period).
  const Time grace = deadline + 30 * kSecond;
  sim_.run_while([&] { return outstanding_ > 0 && sim_.now() < grace; });

  std::vector<SimLoadStats> stats;
  stats.reserve(round.size());
  for (Driver* driver : round) stats.push_back(driver->stats);
  return stats;
}

bool ShardedSimCluster::drained(std::size_t group) const {
  const Group& g = groups_[group];
  std::uint64_t next_exec = 0;
  bool first = true;
  for (std::size_t i = 0; i < g.replicas.size(); ++i) {
    if (g.crashed[i]) continue;
    const core::IdemReplica& replica = *g.replicas[i];
    if (replica.active_requests() != 0) return false;
    if (replica.queue_length() != 0) return false;
    if (first) {
      next_exec = replica.next_execute().value;
      first = false;
    } else if (replica.next_execute().value != next_exec) {
      return false;
    }
  }
  return !first;
}

bool ShardedSimCluster::run_split(std::uint64_t begin, std::uint64_t end, GroupId from,
                                  GroupId to, Duration drain_timeout) {
  Group& source = groups_[from];
  source.gate->freeze();

  // Drain: frozen intake makes the group's outstanding work finite. The
  // condition must hold for a few consecutive polls — a momentarily empty
  // replica may still have agreement messages in flight on the network.
  const Time deadline = sim_.now() + drain_timeout;
  int stable = 0;
  while (sim_.now() < deadline && stable < 3) {
    sim_.run_for(kMillisecond);
    stable = drained(from) ? stable + 1 : 0;
  }
  if (stable < 3) {
    source.gate->unfreeze();
    return false;
  }

  // Transfer: carve the moving range out of the most advanced live source
  // replica (all live replicas agree on next_execute, so any would do).
  core::IdemReplica* donor = nullptr;
  for (std::size_t i = 0; i < source.replicas.size(); ++i) {
    if (!source.crashed[i]) {
      donor = source.replicas[i].get();
      break;
    }
  }
  if (donor == nullptr) {
    source.gate->unfreeze();
    return false;
  }
  auto* donor_store = dynamic_cast<app::KvStore*>(&donor->state_machine());
  assert(donor_store != nullptr);
  std::vector<std::pair<std::string, std::string>> moved;
  for (const auto& [key, value] : donor_store->entries()) {
    const std::uint64_t h = ShardMap::hash_key(key);
    if (h >= begin && (end == 0 || h < end)) moved.emplace_back(key, value);
  }

  Group& target = groups_[to];
  for (std::size_t i = 0; i < target.replicas.size(); ++i) {
    if (target.crashed[i]) continue;
    auto* store = dynamic_cast<app::KvStore*>(&target.replicas[i]->state_machine());
    assert(store != nullptr);
    for (const auto& [key, value] : moved) store->put(key, value);
  }

  // Flip: the target's gate must own the range before the source starts
  // redirecting clients at it, so publish (which installs target-first in
  // group order... install order does not matter while the source is still
  // frozen) strictly before unfreezing.
  publish(map_.with_range_moved(begin, end, to));
  source.gate->unfreeze();
  return true;
}

}  // namespace idem::shard
