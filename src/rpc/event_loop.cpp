#include "rpc/event_loop.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>
#include <vector>

namespace idem::rpc {

namespace {

std::uint64_t hash_name(std::string_view name) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

std::int64_t realtime_anchor_ns(std::chrono::steady_clock::time_point epoch) {
  auto realtime_now = std::chrono::system_clock::now().time_since_epoch();
  auto since_epoch = std::chrono::steady_clock::now() - epoch;
  return std::chrono::duration_cast<std::chrono::nanoseconds>(realtime_now).count() -
         std::chrono::duration_cast<std::chrono::nanoseconds>(since_epoch).count();
}

EventLoop::EventLoop(std::uint64_t seed, Epoch epoch) : seed_(seed), start_(epoch) {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    throw std::runtime_error(std::string("epoll_create1: ") + std::strerror(errno));
  }
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) {
    ::close(epoll_fd_);
    throw std::runtime_error(std::string("eventfd: ") + std::strerror(errno));
  }
  // Registered directly (not via watch()) so watchers_ stays loop-private:
  // the wakeup is the one fd a foreign thread may poke.
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
}

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

Time EventLoop::now() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

sim::EventId EventLoop::schedule_after(Duration delay, sim::EventQueue::Callback fn) {
  if (delay < 0) delay = 0;
  return timers_.push(now() + delay, std::move(fn));
}

sim::EventId EventLoop::schedule_at(Time at, sim::EventQueue::Callback fn) {
  Time current = now();
  if (at < current) at = current;
  return timers_.push(at, std::move(fn));
}

bool EventLoop::cancel(sim::EventId id) { return timers_.cancel(id); }

Rng& EventLoop::rng(std::string_view name) {
  std::uint64_t key = hash_name(name);
  auto it = rngs_.find(key);
  if (it == rngs_.end()) {
    it = rngs_.emplace(key, std::make_unique<Rng>(seed_, key)).first;
  }
  return *it->second;
}

void EventLoop::watch(int fd, std::uint32_t events, IoCallback callback) {
  auto shared = std::make_shared<IoCallback>(std::move(callback));
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  int op = watchers_.contains(fd) ? EPOLL_CTL_MOD : EPOLL_CTL_ADD;
  if (::epoll_ctl(epoll_fd_, op, fd, &ev) < 0) {
    throw std::runtime_error(std::string("epoll_ctl: ") + std::strerror(errno));
  }
  watchers_[fd] = std::move(shared);
}

void EventLoop::modify(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
}

void EventLoop::unwatch(int fd) {
  if (watchers_.erase(fd) > 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  }
}

void EventLoop::post(Task task) {
  {
    std::lock_guard<std::mutex> lock(posted_mutex_);
    posted_.push_back(std::move(task));
  }
  std::uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::stop() {
  stopped_.store(true, std::memory_order_release);
  std::uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::drain_posted() {
  std::uint64_t count = 0;
  while (::read(wake_fd_, &count, sizeof(count)) > 0) {
  }
  std::vector<Task> tasks;
  {
    std::lock_guard<std::mutex> lock(posted_mutex_);
    tasks.swap(posted_);
  }
  for (Task& task : tasks) task();
}

void EventLoop::defer(Task task) { deferred_.push_back(std::move(task)); }

void EventLoop::run_deferred() {
  // Tasks deferred by a deferred task run in the next iteration; the swap
  // keeps iteration safe under such re-entrant defer() calls and hands its
  // capacity back to deferred_, so steady state never allocates.
  if (deferred_.empty()) return;
  deferred_swap_.clear();
  deferred_swap_.swap(deferred_);
  for (Task& task : deferred_swap_) task();
}

void EventLoop::fire_due_timers() {
  // Re-read the clock as we drain: handlers routinely schedule follow-up
  // work "at now" (node service queues dispatch exactly one message per
  // timer), and deferring it to the next epoll round trip would cap
  // dispatch at one message per poll — the real-mode overload collapse.
  // The burst budget keeps a busy node from starving I/O forever; due
  // timers left over make the next epoll_wait time out immediately.
  constexpr int kTimerBurst = 1024;
  for (int burst = 0; burst < kTimerBurst; ++burst) {
    if (timers_.empty() || timers_.next_time() > now()) return;
    auto event = timers_.pop();
    event.fn();
  }
}

void EventLoop::poll_once(Duration max_wait) {
  // Clamp the wait so due timers never starve behind a long epoll sleep.
  Duration until_timer = timers_.empty() ? max_wait : timers_.next_time() - now();
  Duration wait = std::min(max_wait, std::max<Duration>(0, until_timer));
  int timeout_ms = static_cast<int>((wait + kMillisecond - 1) / kMillisecond);
  if (!deferred_.empty()) timeout_ms = 0;

  epoll_event events[64];
  int ready = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
  for (int i = 0; i < ready; ++i) {
    if (events[i].data.fd == wake_fd_) {
      drain_posted();
      continue;
    }
    auto it = watchers_.find(events[i].data.fd);
    if (it == watchers_.end()) continue;
    // Hold a reference: the callback may unwatch (and erase) itself.
    auto callback = it->second;
    (*callback)(events[i].events);
  }
  fire_due_timers();
  run_deferred();
}

void EventLoop::run() {
  stopped_.store(false, std::memory_order_release);
  while (!stopped_.load(std::memory_order_acquire)) {
    poll_once(100 * kMillisecond);
  }
}

void EventLoop::run_for(Duration span) {
  stopped_.store(false, std::memory_order_release);
  Time deadline = now() + span;
  while (!stopped_.load(std::memory_order_acquire) && now() < deadline) {
    poll_once(std::min<Duration>(deadline - now(), 50 * kMillisecond));
  }
}

}  // namespace idem::rpc
