#include "rpc/http_admin.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace idem::rpc {

namespace {

/// Enough for any request line + headers we care about; a head that grows
/// past this is not a scraper talking to us.
constexpr std::size_t kMaxRequestBytes = 4096;

std::string make_response(int status, const char* reason, const std::string& content_type,
                          const std::string& body) {
  std::string head = "HTTP/1.0 " + std::to_string(status) + " " + reason +
                     "\r\nContent-Type: " + content_type +
                     "\r\nContent-Length: " + std::to_string(body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  return head + body;
}

/// Extracts the path of "GET <path> HTTP/1.x"; empty when not a GET.
std::string request_path(const std::string& head) {
  if (head.rfind("GET ", 0) != 0) return {};
  std::size_t start = 4;
  std::size_t end = head.find(' ', start);
  if (end == std::string::npos) return {};
  std::string path = head.substr(start, end - start);
  // Scrapers may append query strings; routes match on the bare path.
  if (auto query = path.find('?'); query != std::string::npos) path.resize(query);
  return path;
}

}  // namespace

HttpAdmin::HttpAdmin(EventLoop& loop, std::uint16_t port) : loop_(loop) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listen_fd_, 16) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error(std::string("admin bind/listen: ") + std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  loop_.watch(listen_fd_, EPOLLIN, [this](std::uint32_t) { accept_ready(); });
}

HttpAdmin::~HttpAdmin() {
  for (auto& [fd, connection] : connections_) {
    loop_.unwatch(fd);
    ::close(fd);
  }
  if (listen_fd_ >= 0) {
    loop_.unwatch(listen_fd_);
    ::close(listen_fd_);
  }
}

void HttpAdmin::route(const std::string& path, const std::string& content_type,
                      Handler handler) {
  routes_[path] = Route{content_type, std::move(handler)};
}

void HttpAdmin::accept_ready() {
  for (;;) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;
    Connection& connection = connections_[fd];
    connection.fd = fd;
    loop_.watch(fd, EPOLLIN, [this, fd](std::uint32_t events) { connection_ready(fd, events); });
  }
}

void HttpAdmin::close_connection(int fd) {
  loop_.unwatch(fd);
  ::close(fd);
  connections_.erase(fd);
}

void HttpAdmin::connection_ready(int fd, std::uint32_t events) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  Connection& connection = it->second;

  if (events & (EPOLLERR | EPOLLHUP)) {
    close_connection(fd);
    return;
  }

  if (connection.response.empty()) {
    char buf[1024];
    for (;;) {
      ssize_t n = ::recv(fd, buf, sizeof buf, 0);
      if (n > 0) {
        connection.request.append(buf, static_cast<std::size_t>(n));
        if (connection.request.size() > kMaxRequestBytes) {
          close_connection(fd);
          return;
        }
        if (connection.request.find("\r\n\r\n") != std::string::npos) break;
        continue;
      }
      if (n == 0 || (errno != EAGAIN && errno != EWOULDBLOCK)) close_connection(fd);
      return;  // closed, errored, or waiting for the rest of the head
    }
    respond(connection);
  }

  // Write as much of the response as the socket takes; switch to EPOLLOUT
  // for the remainder.
  while (connection.written < connection.response.size()) {
    ssize_t n = ::send(fd, connection.response.data() + connection.written,
                       connection.response.size() - connection.written, MSG_NOSIGNAL);
    if (n > 0) {
      connection.written += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      loop_.modify(fd, EPOLLOUT);
      return;
    }
    close_connection(fd);
    return;
  }
  close_connection(fd);  // HTTP/1.0: one exchange per connection
}

void HttpAdmin::respond(Connection& connection) {
  std::string path = request_path(connection.request);
  if (path.empty()) {
    connection.response = make_response(405, "Method Not Allowed", "text/plain", "GET only\n");
    return;
  }
  auto it = routes_.find(path);
  if (it == routes_.end()) {
    std::string known;
    for (const auto& [p, r] : routes_) known += p + "\n";
    connection.response = make_response(404, "Not Found", "text/plain", "routes:\n" + known);
    return;
  }
  ++served_;
  connection.response =
      make_response(200, "OK", it->second.content_type, it->second.handler());
}

}  // namespace idem::rpc
