// Minimal HTTP/1.0 admin responder on an rpc::EventLoop.
//
// Serves registered GET routes — /metrics (Prometheus text), /stats
// (JSON), /trace (Chrome trace dump) — from the same epoll loop that runs
// the protocol, so a scrape observes the node exactly as the protocol
// thread sees it, with no extra threads or synchronization. Handlers run
// on the loop thread and return the full response body; the responder
// adds Content-Length and closes the connection (HTTP/1.0 semantics —
// curl and Prometheus both speak it).
//
// Deliberately not a web server: GET only, no keep-alive, request heads
// over 4 KB are rejected, and anything but a registered route is 404.
//
// Thread contract (same as TcpTransport): construct, register routes and
// destroy on the loop thread, or while the loop thread is not running.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "rpc/event_loop.hpp"

namespace idem::rpc {

class HttpAdmin {
 public:
  /// Handler: returns the response body for one GET of its route.
  using Handler = std::function<std::string()>;

  /// Binds `port` on 127.0.0.1 (0 = ephemeral; query with port()).
  /// Throws std::runtime_error when the bind fails.
  HttpAdmin(EventLoop& loop, std::uint16_t port);
  ~HttpAdmin();

  HttpAdmin(const HttpAdmin&) = delete;
  HttpAdmin& operator=(const HttpAdmin&) = delete;

  /// Registers `handler` for GET <path> (exact match, e.g. "/metrics").
  void route(const std::string& path, const std::string& content_type, Handler handler);

  std::uint16_t port() const { return port_; }

  std::uint64_t requests_served() const { return served_; }

 private:
  struct Connection {
    int fd = -1;
    std::string request;   ///< bytes read so far (head only; capped)
    std::string response;  ///< fully rendered response once routed
    std::size_t written = 0;
  };

  void accept_ready();
  void connection_ready(int fd, std::uint32_t events);
  void respond(Connection& connection);
  void close_connection(int fd);

  EventLoop& loop_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::uint64_t served_ = 0;
  struct Route {
    std::string content_type;
    Handler handler;
  };
  std::unordered_map<std::string, Route> routes_;
  std::unordered_map<int, Connection> connections_;
};

}  // namespace idem::rpc
