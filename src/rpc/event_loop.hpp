// Real-time event loop: epoll-driven I/O plus a timer wheel, implementing
// sim::Runtime against the steady clock. The same protocol code that runs
// in the deterministic simulator runs here over real sockets.
//
// Single-threaded by design: protocol nodes are not thread-safe, and the
// paper's replicas are single event loops too. All I/O callbacks and
// timers fire on the thread that calls run()/run_for().
//
// Multi-loop deployments (src/real) run one EventLoop per thread. The only
// thread-safe entry points are post() — which enqueues a task for the loop
// thread and wakes it through an eventfd — and stop(). Everything else
// (watch, schedule_*, transports, protocol nodes) must either happen on
// the loop thread or before the loop thread starts running.
#pragma once

#include <chrono>
#include <cstdint>
#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "sim/event_queue.hpp"
#include "sim/runtime.hpp"

namespace idem::rpc {

/// CLOCK_REALTIME (ns since the Unix epoch) at the moment a loop epoch's
/// trace time 0 occurred: realtime-now minus how far the steady clock has
/// advanced past `epoch`. Each process stamps this into its trace export
/// so tools/trace_merge can stitch independently started processes onto
/// one wall-clock timeline (accurate to the clocks' mutual drift, which
/// on one host is negligible over a run).
std::int64_t realtime_anchor_ns(std::chrono::steady_clock::time_point epoch);

class EventLoop final : public sim::Runtime {
 public:
  using IoCallback = std::function<void(std::uint32_t epoll_events)>;
  using Task = std::function<void()>;
  using Epoch = std::chrono::steady_clock::time_point;

  /// `epoch` anchors now() == 0. Loops that share an epoch (real clusters
  /// hosting several loops in one process) produce mutually comparable
  /// timestamps, so per-thread trace rings merge into one coherent timeline.
  explicit EventLoop(std::uint64_t seed = 1, Epoch epoch = std::chrono::steady_clock::now());
  ~EventLoop() override;

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // --- sim::Runtime ---
  Time now() const override;
  sim::EventId schedule_after(Duration delay, sim::EventQueue::Callback fn) override;
  sim::EventId schedule_at(Time at, sim::EventQueue::Callback fn) override;
  bool cancel(sim::EventId id) override;
  Rng& rng(std::string_view name) override;
  std::uint64_t seed() const override { return seed_; }

  // --- I/O ---
  /// Registers interest in `events` (EPOLLIN/EPOLLOUT/...) on `fd`.
  /// Replaces any previous registration for the fd.
  void watch(int fd, std::uint32_t events, IoCallback callback);
  /// Updates the event mask of an already-watched fd.
  void modify(int fd, std::uint32_t events);
  void unwatch(int fd);

  // --- cross-thread ---
  /// Enqueues `task` to run on the loop thread and wakes the loop if it is
  /// blocked in epoll_wait. Safe to call from any thread; tasks run in
  /// post order. May also be called before run() — queued tasks execute as
  /// soon as the loop starts polling.
  void post(Task task);

  // --- same-thread deferral ---
  /// Runs `task` at the end of the current poll iteration, after I/O
  /// handlers and due timers but before the next epoll_wait. Loop-thread
  /// only (no locking); tasks deferred while the loop is idle run on the
  /// next iteration. This is the transport's write-coalescing hook: every
  /// send during one iteration queues frames, one deferred flush per
  /// connection writes them with a single syscall.
  void defer(Task task);

  // --- driving ---
  /// Processes I/O and timers until stop() is called.
  void run();
  /// Processes I/O and timers for (roughly) `span` of wall-clock time.
  void run_for(Duration span);
  /// Requests the loop to return from run()/run_for(). Safe from any
  /// thread; cross-thread stops wake a sleeping loop promptly.
  void stop();

 private:
  void poll_once(Duration max_wait);
  void fire_due_timers();
  void drain_posted();
  void run_deferred();

  std::uint64_t seed_;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  ///< eventfd: written by post()/stop(), drained by the loop
  std::atomic<bool> stopped_{false};
  Epoch start_;
  sim::EventQueue timers_;
  std::unordered_map<int, std::shared_ptr<IoCallback>> watchers_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Rng>> rngs_;
  std::mutex posted_mutex_;
  std::vector<Task> posted_;
  std::vector<Task> deferred_;       ///< loop-thread-only end-of-iteration tasks
  std::vector<Task> deferred_swap_;  ///< reused scratch so run_deferred never allocates
};

}  // namespace idem::rpc
