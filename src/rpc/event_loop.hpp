// Real-time event loop: epoll-driven I/O plus a timer wheel, implementing
// sim::Runtime against the steady clock. The same protocol code that runs
// in the deterministic simulator runs here over real sockets.
//
// Single-threaded by design: protocol nodes are not thread-safe, and the
// paper's replicas are single event loops too. All I/O callbacks and
// timers fire on the thread that calls run()/run_for().
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>
#include <unordered_map>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "sim/event_queue.hpp"
#include "sim/runtime.hpp"

namespace idem::rpc {

class EventLoop final : public sim::Runtime {
 public:
  using IoCallback = std::function<void(std::uint32_t epoll_events)>;

  explicit EventLoop(std::uint64_t seed = 1);
  ~EventLoop() override;

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // --- sim::Runtime ---
  Time now() const override;
  sim::EventId schedule_after(Duration delay, sim::EventQueue::Callback fn) override;
  sim::EventId schedule_at(Time at, sim::EventQueue::Callback fn) override;
  bool cancel(sim::EventId id) override;
  Rng& rng(std::string_view name) override;
  std::uint64_t seed() const override { return seed_; }

  // --- I/O ---
  /// Registers interest in `events` (EPOLLIN/EPOLLOUT/...) on `fd`.
  /// Replaces any previous registration for the fd.
  void watch(int fd, std::uint32_t events, IoCallback callback);
  /// Updates the event mask of an already-watched fd.
  void modify(int fd, std::uint32_t events);
  void unwatch(int fd);

  // --- driving ---
  /// Processes I/O and timers until stop() is called.
  void run();
  /// Processes I/O and timers for (roughly) `span` of wall-clock time.
  void run_for(Duration span);
  void stop() { stopped_ = true; }

 private:
  void poll_once(Duration max_wait);
  void fire_due_timers();

  std::uint64_t seed_;
  int epoll_fd_ = -1;
  bool stopped_ = false;
  std::chrono::steady_clock::time_point start_;
  sim::EventQueue timers_;
  std::unordered_map<int, std::shared_ptr<IoCallback>> watchers_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Rng>> rngs_;
};

}  // namespace idem::rpc
