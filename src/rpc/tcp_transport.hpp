// Real TCP transport implementing sim::Transport.
//
// Every registered node gets its own listener; send() lazily opens one
// outgoing connection per destination node and writes length-prefixed
// frames (rpc/framing.hpp) carrying consensus::messages encodings.
// Connections are unidirectional: replies travel over the peer's own
// outgoing connection to our listener, mirroring how the protocols treat
// links as independent fair-loss channels.
//
// Failure semantics match the protocols' fair-loss assumption: a send to
// an unknown, crashed or unreachable node is silently dropped (and
// counted); a broken connection is torn down and re-established on the
// next send. Malformed inbound streams (oversized length headers,
// connections closed mid-frame) are counted in TransportStats::
// decode_errors and the connection is dropped.
//
// Addressing: nodes on this transport bind `listen_host` (loopback by
// default; "0.0.0.0" for multi-host deployments). Remote nodes are
// declared with set_remote() as host:port pairs, so a deployment can span
// machines — the loopback-port overload remains for single-host setups.
//
// Single-threaded: all calls must happen on the EventLoop thread (or
// before that thread starts running the loop).
#pragma once

#include <sys/uio.h>

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "rpc/event_loop.hpp"
#include "rpc/framing.hpp"
#include "sim/transport.hpp"

namespace idem::rpc {

struct TransportStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t dropped = 0;        ///< unknown destination / send failure
  std::uint64_t decode_errors = 0;  ///< malformed frames received (bad
                                    ///< encoding, oversized, truncated)
  std::uint64_t write_syscalls = 0;    ///< sendmsg calls that moved bytes;
                                       ///< messages_sent / write_syscalls is
                                       ///< the coalescing ratio
  std::uint64_t send_queue_overflows = 0;  ///< frames dropped because a
                                           ///< connection's pending-write
                                           ///< queue hit its byte bound
  std::uint64_t accepted_connections = 0;  ///< inbound connections accepted
  std::uint64_t oversized_frames = 0;      ///< connections dropped for a frame
                                           ///< over max_frame_bytes (also
                                           ///< counted in decode_errors)
};

/// Upper bound on iovec entries per flush; writev/sendmsg reject more
/// than IOV_MAX (1024 on Linux), and 64 frames per syscall already
/// amortizes the syscall to noise.
constexpr std::size_t kMaxFlushIov = 64;

/// Per-connection queue of encoded frames awaiting transmission, flushed
/// with one sendmsg per event-loop iteration. Frames keep their identity
/// (no flattening copy) and `front_offset` tracks how far a partial write
/// got into the front frame, so resumption after EAGAIN mid-iovec is
/// exact. Separate from the socket code so tests can drive partial-write
/// sequences without a kernel.
struct PendingWrites {
  std::deque<std::vector<std::byte>> frames;
  std::size_t front_offset = 0;  ///< bytes of frames.front() already written
  std::size_t total_bytes = 0;   ///< unwritten bytes across all frames

  bool empty() const { return frames.empty(); }

  void push(std::vector<std::byte> frame) {
    total_bytes += frame.size();
    frames.push_back(std::move(frame));
  }

  /// Fills up to `max` iovec entries with the unwritten byte ranges,
  /// starting mid-frame if a previous write stopped there. Returns the
  /// number of entries filled.
  std::size_t fill_iovec(iovec* iov, std::size_t max) const;

  /// Advances past `written` bytes: fully-written frames are released,
  /// a partially-written front frame is remembered via front_offset.
  void consume(std::size_t written);

  void clear() {
    frames.clear();
    front_offset = 0;
    total_bytes = 0;
  }
};

/// Where a node can be reached: numeric IPv4 host + TCP port.
struct PeerAddress {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

/// Parses "host:port" (host optional: ":9100" and "9100" mean loopback).
/// Returns nullopt on malformed input or a port outside [1, 65535].
std::optional<PeerAddress> parse_address(const std::string& text);

struct TcpTransportConfig {
  /// When non-zero, the first locally registered node binds this port
  /// instead of an ephemeral one (multi-process deployments agree on
  /// fixed ports up front). Further nodes keep getting ephemeral ports.
  std::uint16_t fixed_port = 0;
  /// Numeric IPv4 address the listeners bind ("0.0.0.0" to accept
  /// non-local peers).
  std::string listen_host = "127.0.0.1";
  /// Maximum accepted inbound frame payload; larger length headers count
  /// as decode errors and drop the connection.
  std::size_t max_frame_bytes = kMaxFrameBytes;
  /// Byte bound on each connection's pending-write queue. A frame that
  /// would push the queue past this is dropped (fair loss) and counted in
  /// TransportStats::send_queue_overflows — backpressure instead of
  /// unbounded buffering when a peer stops reading.
  std::size_t max_pending_write_bytes = 8 * 1024 * 1024;
};

class TcpTransport final : public sim::Transport {
 public:
  explicit TcpTransport(EventLoop& loop, TcpTransportConfig config = {});
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  // --- sim::Transport ---
  /// Registers a local node: binds a listener on `listen_host` (ephemeral
  /// port; query it with port_of).
  void add_node(sim::NodeId id, sim::NodeKind kind, sim::Endpoint* endpoint) override;
  /// Unregisters a node: closes its listener and all its connections
  /// (peers see resets/refusals — exactly what a crash looks like).
  void remove_node(sim::NodeId id) override;
  void send(sim::NodeId from, sim::NodeId to, sim::PayloadPtr message) override;

  /// Listening port of a locally registered node (0 if unknown).
  std::uint16_t port_of(sim::NodeId id) const;

  /// Declares where a non-local node can be reached, enabling multi-
  /// process and multi-host deployments (every process registers its own
  /// nodes and the addresses of the others).
  void set_remote(sim::NodeId id, const PeerAddress& address);
  /// Loopback convenience for single-host deployments.
  void set_remote(sim::NodeId id, std::uint16_t port) {
    set_remote(id, PeerAddress{"127.0.0.1", port});
  }

  const TransportStats& stats() const { return stats_; }

  /// Bytes queued but not yet written across all outbound connections —
  /// the live backpressure signal (admin /stats).
  std::size_t pending_write_bytes() const;

  /// Open connection counts (admin /stats).
  std::size_t inbound_connections() const { return inbound_.size(); }
  std::size_t outbound_connections() const { return outbound_.size(); }

 private:
  struct LocalNode;
  struct InboundConnection;
  struct OutboundConnection;

  void accept_ready(LocalNode& node);
  void inbound_ready(int fd);
  void close_inbound(int fd, InboundConnection& connection);
  void outbound_ready(std::uint32_t dest, std::uint32_t events);
  OutboundConnection* connect_to(std::uint32_t dest, const PeerAddress& address);
  void drop_outbound(std::uint32_t dest);
  void schedule_flush(OutboundConnection& connection);
  void flush(OutboundConnection& connection);

  EventLoop& loop_;
  TcpTransportConfig config_;
  bool fixed_port_used_ = false;
  std::unordered_map<std::uint32_t, std::unique_ptr<LocalNode>> locals_;
  std::unordered_map<std::uint32_t, PeerAddress> remotes_;
  std::unordered_map<std::uint32_t, std::unique_ptr<OutboundConnection>> outbound_;
  std::unordered_map<int, std::unique_ptr<InboundConnection>> inbound_;
  TransportStats stats_;
};

}  // namespace idem::rpc
