// Real TCP transport implementing sim::Transport.
//
// Every registered node gets its own listener; send() lazily opens one
// outgoing connection per destination node and writes length-prefixed
// frames (rpc/framing.hpp) carrying consensus::messages encodings.
// Connections are unidirectional by default: replies travel over the
// peer's own outgoing connection to our listener, mirroring how the
// protocols treat links as independent fair-loss channels. Peers without
// a listener of their own (storm clients multiplexing thousands of
// sessions) advertise sender-port 0 in their frames, and replies to them
// are routed back over the same inbound connection instead — one socket
// per session instead of a listener plus a dial-back each.
//
// Failure semantics match the protocols' fair-loss assumption: a send to
// an unknown, crashed or unreachable node is silently dropped (and
// counted); a broken connection is torn down and re-established on the
// next send. Malformed inbound streams (oversized length headers,
// connections closed mid-frame) are counted in TransportStats::
// decode_errors and the connection is dropped.
//
// Addressing: nodes on this transport bind `listen_host` (loopback by
// default; "0.0.0.0" for multi-host deployments). Remote nodes are
// declared with set_remote() as host:port pairs, so a deployment can span
// machines — the loopback-port overload remains for single-host setups.
//
// Single-threaded: all calls must happen on the EventLoop thread (or
// before that thread starts running the loop).
#pragma once

#include <sys/uio.h>

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "rpc/event_loop.hpp"
#include "rpc/framing.hpp"
#include "sim/transport.hpp"

namespace idem::rpc {

struct TransportStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t dropped = 0;        ///< unknown destination / send failure
  std::uint64_t decode_errors = 0;  ///< malformed frames received (bad
                                    ///< encoding, oversized, truncated)
  std::uint64_t write_syscalls = 0;    ///< sendmsg calls that moved bytes;
                                       ///< messages_sent / write_syscalls is
                                       ///< the coalescing ratio
  std::uint64_t send_queue_overflows = 0;  ///< frames dropped because a
                                           ///< connection's pending-write
                                           ///< queue hit its byte bound
  std::uint64_t accepted_connections = 0;  ///< inbound connections accepted
  std::uint64_t oversized_frames = 0;      ///< connections dropped for a frame
                                           ///< over max_frame_bytes (also
                                           ///< counted in decode_errors)
  std::uint64_t connection_limit_sheds = 0;  ///< inbound connections closed at
                                             ///< accept because the connection
                                             ///< cap was reached
                                             ///< (RejectReason::ConnectionLimit)
  std::uint64_t idle_evictions = 0;       ///< inbound connections evicted for
                                          ///< sending nothing for idle_timeout
  std::uint64_t half_open_evictions = 0;  ///< inbound connections evicted for
                                          ///< holding a partial frame past
                                          ///< half_open_timeout (slow loris)
};

/// Point-in-time memory footprint of the transport's connection state —
/// the per-connection accounting the admin endpoints surface. Buffer
/// bytes are capacities (what the process actually holds), not fill
/// levels, so a storm of mostly-idle connections is charged honestly.
struct TransportMemory {
  std::size_t inbound_connections = 0;
  std::size_t outbound_connections = 0;
  std::size_t inbound_buffer_bytes = 0;   ///< receive-buffer capacity across
                                          ///< inbound connections
  std::size_t pending_write_bytes = 0;    ///< unsent bytes queued across all
                                          ///< connections (both directions)

  std::size_t total_bytes() const { return inbound_buffer_bytes + pending_write_bytes; }
  /// Average bytes held per open connection (0 when none are open).
  double per_connection() const {
    std::size_t conns = inbound_connections + outbound_connections;
    return conns == 0 ? 0.0 : static_cast<double>(total_bytes()) / static_cast<double>(conns);
  }
};

/// Upper bound on iovec entries per flush; writev/sendmsg reject more
/// than IOV_MAX (1024 on Linux), and 64 frames per syscall already
/// amortizes the syscall to noise.
constexpr std::size_t kMaxFlushIov = 64;

/// Per-connection queue of encoded frames awaiting transmission, flushed
/// with one sendmsg per event-loop iteration. Frames keep their identity
/// (no flattening copy) and `front_offset` tracks how far a partial write
/// got into the front frame, so resumption after EAGAIN mid-iovec is
/// exact. Separate from the socket code so tests can drive partial-write
/// sequences without a kernel.
struct PendingWrites {
  std::deque<std::vector<std::byte>> frames;
  std::size_t front_offset = 0;  ///< bytes of frames.front() already written
  std::size_t total_bytes = 0;   ///< unwritten bytes across all frames

  bool empty() const { return frames.empty(); }

  void push(std::vector<std::byte> frame) {
    total_bytes += frame.size();
    frames.push_back(std::move(frame));
  }

  /// Fills up to `max` iovec entries with the unwritten byte ranges,
  /// starting mid-frame if a previous write stopped there. Returns the
  /// number of entries filled.
  std::size_t fill_iovec(iovec* iov, std::size_t max) const;

  /// Advances past `written` bytes: fully-written frames are released,
  /// a partially-written front frame is remembered via front_offset.
  void consume(std::size_t written);

  void clear() {
    frames.clear();
    front_offset = 0;
    total_bytes = 0;
  }
};

/// Where a node can be reached: numeric IPv4 host + TCP port.
struct PeerAddress {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

/// Parses "host:port" (host optional: ":9100" and "9100" mean loopback).
/// Returns nullopt on malformed input or a port outside [1, 65535].
std::optional<PeerAddress> parse_address(const std::string& text);

struct TcpTransportConfig {
  /// When non-zero, the first locally registered node binds this port
  /// instead of an ephemeral one (multi-process deployments agree on
  /// fixed ports up front). Further nodes keep getting ephemeral ports.
  std::uint16_t fixed_port = 0;
  /// Numeric IPv4 address the listeners bind ("0.0.0.0" to accept
  /// non-local peers).
  std::string listen_host = "127.0.0.1";
  /// Maximum accepted inbound frame payload; larger length headers count
  /// as decode errors and drop the connection.
  std::size_t max_frame_bytes = kMaxFrameBytes;
  /// Byte bound on each connection's pending-write queue. A frame that
  /// would push the queue past this is dropped (fair loss) and counted in
  /// TransportStats::send_queue_overflows — backpressure instead of
  /// unbounded buffering when a peer stops reading.
  std::size_t max_pending_write_bytes = 8 * 1024 * 1024;

  // --- accept-path hardening (connection storms) ---

  /// Maximum connections accepted per listener readiness pass. A SYN
  /// flood's backlog is drained in bursts of this size with a deferred
  /// continuation between bursts, so accepting thousands of connections
  /// never starves the established connections' I/O or due timers.
  std::size_t accept_burst = 256;
  /// Cap on concurrently open inbound connections across the transport
  /// (0 = unlimited). At the cap, newly accepted connections are closed
  /// immediately — an early shed the peer observes as a reset, counted in
  /// TransportStats::connection_limit_sheds and classified as
  /// RejectReason::ConnectionLimit in telemetry.
  std::size_t max_inbound_connections = 0;
  /// Initial receive-buffer capacity per inbound connection (also the
  /// recv chunk size). The default suits a handful of replica peers;
  /// servers expecting thousands of small-frame client connections shrink
  /// it so per-connection memory stays bounded. Buffers still grow on
  /// demand up to max_frame_bytes.
  std::size_t read_buffer_bytes = kReadChunkBytes;
  /// Evict an inbound connection that has sent nothing for this long
  /// (0 = never). Off by default: replica peers are legitimately silent
  /// between bursts. Client-facing servers enable it to reclaim
  /// connections from hosts that connect and hold.
  Duration idle_timeout = 0;
  /// Evict an inbound connection that has held an incomplete frame for
  /// this long (0 = never) — the slow-loris defence: trickling one byte
  /// per second through a frame does not reset the clock, only a
  /// completed frame does.
  Duration half_open_timeout = 0;
  /// How often the eviction sweep runs; 0 derives it from the enabled
  /// timeouts (a quarter of the shortest, clamped to [10ms, 1s]).
  Duration sweep_interval = 0;
};

class TcpTransport final : public sim::Transport {
 public:
  explicit TcpTransport(EventLoop& loop, TcpTransportConfig config = {});
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  // --- sim::Transport ---
  /// Registers a local node: binds a listener on `listen_host` (ephemeral
  /// port; query it with port_of).
  void add_node(sim::NodeId id, sim::NodeKind kind, sim::Endpoint* endpoint) override;
  /// Unregisters a node: closes its listener and all its connections
  /// (peers see resets/refusals — exactly what a crash looks like).
  void remove_node(sim::NodeId id) override;
  void send(sim::NodeId from, sim::NodeId to, sim::PayloadPtr message) override;

  /// Listening port of a locally registered node (0 if unknown).
  std::uint16_t port_of(sim::NodeId id) const;

  /// Declares where a non-local node can be reached, enabling multi-
  /// process and multi-host deployments (every process registers its own
  /// nodes and the addresses of the others).
  void set_remote(sim::NodeId id, const PeerAddress& address);
  /// Loopback convenience for single-host deployments.
  void set_remote(sim::NodeId id, std::uint16_t port) {
    set_remote(id, PeerAddress{"127.0.0.1", port});
  }

  const TransportStats& stats() const { return stats_; }

  /// Bytes queued but not yet written across all outbound connections —
  /// the live backpressure signal (admin /stats).
  std::size_t pending_write_bytes() const;

  /// Open connection counts (admin /stats).
  std::size_t inbound_connections() const { return inbound_.size(); }
  std::size_t outbound_connections() const { return outbound_.size(); }

  /// Per-connection memory accounting (admin /stats, /metrics gauges).
  TransportMemory memory() const;

 private:
  struct LocalNode;
  struct InboundConnection;
  struct OutboundConnection;

  void accept_ready(LocalNode& node);
  void inbound_event(int fd, std::uint32_t events);
  void inbound_ready(int fd);
  void close_inbound(int fd, InboundConnection& connection);
  void outbound_ready(std::uint32_t dest, std::uint32_t events);
  OutboundConnection* connect_to(std::uint32_t dest, const PeerAddress& address);
  void drop_outbound(std::uint32_t dest);
  void schedule_flush(OutboundConnection& connection);
  void flush(OutboundConnection& connection);
  void schedule_inbound_flush(InboundConnection& connection);
  void flush_inbound(InboundConnection& connection);
  void arm_sweep();
  void sweep_connections();

  EventLoop& loop_;
  TcpTransportConfig config_;
  bool fixed_port_used_ = false;
  std::unordered_map<std::uint32_t, std::unique_ptr<LocalNode>> locals_;
  std::unordered_map<std::uint32_t, PeerAddress> remotes_;
  std::unordered_map<std::uint32_t, std::unique_ptr<OutboundConnection>> outbound_;
  std::unordered_map<int, std::unique_ptr<InboundConnection>> inbound_;
  /// Listener-less senders (frames advertising port 0): node id → the
  /// inbound fd whose connection replies to that node travel back over.
  std::unordered_map<std::uint32_t, int> inbound_routes_;
  sim::EventId sweep_timer_;
  TransportStats stats_;
};

}  // namespace idem::rpc
