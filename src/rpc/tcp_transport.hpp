// Real TCP transport implementing sim::Transport.
//
// Every registered node gets its own loopback listener; send() lazily
// opens one outgoing connection per destination node and writes
// length-prefixed frames (rpc/framing.hpp) carrying consensus::messages
// encodings. Connections are unidirectional: replies travel over the
// peer's own outgoing connection to our listener, mirroring how the
// protocols treat links as independent fair-loss channels.
//
// Failure semantics match the protocols' fair-loss assumption: a send to
// an unknown, crashed or unreachable node is silently dropped (and
// counted); a broken connection is torn down and re-established on the
// next send.
//
// Single-threaded: all calls must happen on the EventLoop thread.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "rpc/event_loop.hpp"
#include "rpc/framing.hpp"
#include "sim/transport.hpp"

namespace idem::rpc {

struct TransportStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t dropped = 0;        ///< unknown destination / send failure
  std::uint64_t decode_errors = 0;  ///< malformed frames received
};

struct TcpTransportConfig {
  /// When non-zero, the first locally registered node binds this port
  /// instead of an ephemeral one (multi-process deployments agree on
  /// fixed ports up front). Further nodes keep getting ephemeral ports.
  std::uint16_t fixed_port = 0;
};

class TcpTransport final : public sim::Transport {
 public:
  explicit TcpTransport(EventLoop& loop, TcpTransportConfig config = {});
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  // --- sim::Transport ---
  /// Registers a local node: binds a listener on 127.0.0.1 (ephemeral
  /// port; query it with port_of).
  void add_node(sim::NodeId id, sim::NodeKind kind, sim::Endpoint* endpoint) override;
  /// Unregisters a node: closes its listener and all its connections
  /// (peers see resets/refusals — exactly what a crash looks like).
  void remove_node(sim::NodeId id) override;
  void send(sim::NodeId from, sim::NodeId to, sim::PayloadPtr message) override;

  /// Listening port of a locally registered node (0 if unknown).
  std::uint16_t port_of(sim::NodeId id) const;

  /// Declares where a non-local node can be reached, enabling multi-
  /// process deployments (every process registers its own nodes and the
  /// remote ports of the others).
  void set_remote(sim::NodeId id, std::uint16_t port);

  const TransportStats& stats() const { return stats_; }

 private:
  struct LocalNode;
  struct InboundConnection;
  struct OutboundConnection;

  void accept_ready(LocalNode& node);
  void inbound_ready(int fd);
  void outbound_ready(std::uint32_t dest, std::uint32_t events);
  OutboundConnection* connect_to(std::uint32_t dest, std::uint16_t port);
  void drop_outbound(std::uint32_t dest);
  void flush(OutboundConnection& connection);

  EventLoop& loop_;
  TcpTransportConfig config_;
  bool fixed_port_used_ = false;
  std::unordered_map<std::uint32_t, std::unique_ptr<LocalNode>> locals_;
  std::unordered_map<std::uint32_t, std::uint16_t> remote_ports_;
  std::unordered_map<std::uint32_t, std::unique_ptr<OutboundConnection>> outbound_;
  std::unordered_map<int, std::unique_ptr<InboundConnection>> inbound_;
  TransportStats stats_;
};

}  // namespace idem::rpc
