// Wire framing for the TCP transport.
//
// Every frame is [u32 length][u32 sender-node-id][u32 sender-listen-port]
// [payload bytes], with the payload being a consensus::messages binary
// encoding. Carrying the sender's listening port lets receivers learn
// return addresses automatically (a replica can answer a client it has
// never been configured with). FrameReader reassembles frames from an
// arbitrary stream of socket reads.
//
// Hardening: decode enforces a maximum frame size (configurable per
// reader; kMaxFrameBytes by default) so one malformed or hostile length
// header cannot make a replica buffer gigabytes. The reader reports *why*
// it gave up (error()) and whether a closed stream ended mid-frame
// (truncated()), so transports can count both conditions instead of
// dropping connections silently.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

namespace idem::rpc {

constexpr std::size_t kFrameHeaderBytes = 12;  // u32 length + u32 sender + u32 port
constexpr std::size_t kMaxFrameBytes = 64 * 1024 * 1024;

/// Builds one frame ready for transmission. `sender_port` is the port on
/// which the sending node accepts connections (0 when unknown).
inline std::vector<std::byte> encode_frame(std::uint32_t sender, std::uint32_t sender_port,
                                           std::span<const std::byte> payload) {
  std::vector<std::byte> out;
  out.reserve(kFrameHeaderBytes + payload.size());
  auto push_u32 = [&out](std::uint32_t v) {
    out.push_back(std::byte(v & 0xFF));
    out.push_back(std::byte((v >> 8) & 0xFF));
    out.push_back(std::byte((v >> 16) & 0xFF));
    out.push_back(std::byte((v >> 24) & 0xFF));
  };
  push_u32(static_cast<std::uint32_t>(payload.size()));
  push_u32(sender);
  push_u32(sender_port);
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

/// Incremental frame decoder: feed() raw bytes, get complete frames back
/// through the callback. Tolerates frames split across any number of
/// reads, and multiple frames per read.
class FrameReader {
 public:
  using FrameCallback = std::function<void(std::uint32_t sender, std::uint32_t sender_port,
                                           std::span<const std::byte> payload)>;

  enum class Error : std::uint8_t {
    None = 0,
    Oversized,  ///< a length header exceeded the frame-size bound
  };

  /// `max_frame` bounds the payload size decode will accept; larger length
  /// headers poison the stream (feed() returns false and stays false).
  explicit FrameReader(std::size_t max_frame = kMaxFrameBytes) : max_frame_(max_frame) {}

  /// Appends `data` and invokes `callback` for every completed frame.
  /// Returns false if the stream is malformed (oversized frame; see
  /// error()) — the caller should drop the connection and account for the
  /// bad frame.
  bool feed(std::span<const std::byte> data, const FrameCallback& callback) {
    if (error_ != Error::None) return false;
    buffer_.insert(buffer_.end(), data.begin(), data.end());
    std::size_t offset = 0;
    while (buffer_.size() - offset >= kFrameHeaderBytes) {
      std::uint32_t length = read_u32(offset);
      std::uint32_t sender = read_u32(offset + 4);
      std::uint32_t sender_port = read_u32(offset + 8);
      if (length > max_frame_) {
        error_ = Error::Oversized;
        buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(offset));
        return false;
      }
      if (buffer_.size() - offset - kFrameHeaderBytes < length) break;
      callback(sender, sender_port,
               std::span<const std::byte>(buffer_.data() + offset + kFrameHeaderBytes, length));
      offset += kFrameHeaderBytes + length;
    }
    buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(offset));
    return true;
  }

  std::size_t buffered() const { return buffer_.size(); }
  std::size_t max_frame() const { return max_frame_; }
  Error error() const { return error_; }

  /// True when the stream holds a partial frame — meaningful when the
  /// peer closed the connection: the frame in flight was truncated.
  bool truncated() const { return !buffer_.empty(); }

 private:
  std::uint32_t read_u32(std::size_t at) const {
    return static_cast<std::uint32_t>(buffer_[at]) |
           (static_cast<std::uint32_t>(buffer_[at + 1]) << 8) |
           (static_cast<std::uint32_t>(buffer_[at + 2]) << 16) |
           (static_cast<std::uint32_t>(buffer_[at + 3]) << 24);
  }

  std::size_t max_frame_;
  Error error_ = Error::None;
  std::vector<std::byte> buffer_;
};

}  // namespace idem::rpc
