// Wire framing for the TCP transport.
//
// Every frame is [u32 length][u32 sender-node-id][u32 sender-listen-port]
// [payload bytes], with the payload being a consensus::messages binary
// encoding. Carrying the sender's listening port lets receivers learn
// return addresses automatically (a replica can answer a client it has
// never been configured with). FrameReader reassembles frames from an
// arbitrary stream of socket reads.
//
// Hot-path shape: the reader owns one grow-only buffer that sockets recv
// directly into (write_span()/commit()), and parsing tracks a head offset
// instead of erasing consumed bytes from the front — so the steady state
// does zero allocation and zero per-frame memmove. The buffer compacts
// (one memmove of the partial-frame tail) only when a frame straddles the
// buffer end, and grows only when a frame is larger than anything seen
// before on this connection.
//
// Hardening: decode enforces a maximum frame size (configurable per
// reader; kMaxFrameBytes by default) so one malformed or hostile length
// header cannot make a replica buffer gigabytes. The reader reports *why*
// it gave up (error()) and whether a closed stream ended mid-frame
// (truncated()), so transports can count both conditions instead of
// dropping connections silently.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <span>
#include <vector>

namespace idem::rpc {

constexpr std::size_t kFrameHeaderBytes = 12;  // u32 length + u32 sender + u32 port
constexpr std::size_t kMaxFrameBytes = 64 * 1024 * 1024;

/// Default size of the span write_span() offers to recv into; also the
/// reader's initial buffer capacity, so typical connections never grow.
constexpr std::size_t kReadChunkBytes = 16 * 1024;

/// Builds one frame ready for transmission. `sender_port` is the port on
/// which the sending node accepts connections (0 when unknown).
inline std::vector<std::byte> encode_frame(std::uint32_t sender, std::uint32_t sender_port,
                                           std::span<const std::byte> payload) {
  std::vector<std::byte> out;
  out.reserve(kFrameHeaderBytes + payload.size());
  auto push_u32 = [&out](std::uint32_t v) {
    out.push_back(std::byte(v & 0xFF));
    out.push_back(std::byte((v >> 8) & 0xFF));
    out.push_back(std::byte((v >> 16) & 0xFF));
    out.push_back(std::byte((v >> 24) & 0xFF));
  };
  push_u32(static_cast<std::uint32_t>(payload.size()));
  push_u32(sender);
  push_u32(sender_port);
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

/// Incremental frame decoder: recv into write_span(), commit() the byte
/// count, then drain() complete frames through the callback. feed() wraps
/// the three for callers that already hold the bytes. Tolerates frames
/// split across any number of reads, and multiple frames per read.
class FrameReader {
 public:
  using FrameCallback = std::function<void(std::uint32_t sender, std::uint32_t sender_port,
                                           std::span<const std::byte> payload)>;

  enum class Error : std::uint8_t {
    None = 0,
    Oversized,  ///< a length header exceeded the frame-size bound
  };

  /// `max_frame` bounds the payload size decode will accept; larger length
  /// headers poison the stream (drain() returns false and stays false).
  /// The buffer is pre-sized to `initial_capacity` so steady-state reads
  /// never allocate.
  explicit FrameReader(std::size_t max_frame = kMaxFrameBytes,
                       std::size_t initial_capacity = kReadChunkBytes)
      : max_frame_(max_frame) {
    buffer_.resize(initial_capacity);
  }

  /// Writable space to recv into, at least `min_bytes` long. Compacts the
  /// buffered partial frame to the front if the tail space ran out, and
  /// grows the buffer only if even a compacted buffer cannot hold
  /// `min_bytes` more.
  std::span<std::byte> write_span(std::size_t min_bytes = kReadChunkBytes) {
    if (buffer_.size() - fill_ < min_bytes) {
      compact();
      if (buffer_.size() - fill_ < min_bytes) {
        std::size_t grown = std::max(buffer_.size() * 2, fill_ + min_bytes);
        buffer_.resize(grown);
      }
    }
    return std::span<std::byte>(buffer_.data() + fill_, buffer_.size() - fill_);
  }

  /// Marks `n` bytes of the last write_span() as filled by the socket.
  void commit(std::size_t n) { fill_ += n; }

  /// Parses every complete frame out of the buffer, invoking `callback`
  /// for each. Returns false if the stream is malformed (oversized frame;
  /// see error()) — the caller should drop the connection and account for
  /// the bad frame. Templated on the callback so hot-path callers pass a
  /// raw lambda with no std::function conversion (which could allocate).
  template <typename Callback>
  bool drain(const Callback& callback) {
    if (error_ != Error::None) return false;
    while (fill_ - head_ >= kFrameHeaderBytes) {
      std::uint32_t length = read_u32(head_);
      std::uint32_t sender = read_u32(head_ + 4);
      std::uint32_t sender_port = read_u32(head_ + 8);
      if (length > max_frame_) {
        error_ = Error::Oversized;
        return false;
      }
      if (fill_ - head_ - kFrameHeaderBytes < length) break;
      callback(sender, sender_port,
               std::span<const std::byte>(buffer_.data() + head_ + kFrameHeaderBytes, length));
      head_ += kFrameHeaderBytes + length;
    }
    if (head_ == fill_) {
      // Everything parsed: rewind for free instead of compacting later.
      head_ = 0;
      fill_ = 0;
    }
    return true;
  }

  /// Appends `data` and parses; equivalent to write_span+memcpy+commit+
  /// drain. Kept for callers (and tests) that already hold the bytes.
  template <typename Callback>
  bool feed(std::span<const std::byte> data, const Callback& callback) {
    if (error_ != Error::None) return false;
    if (!data.empty()) {
      std::span<std::byte> dst = write_span(data.size());
      std::memcpy(dst.data(), data.data(), data.size());
      commit(data.size());
    }
    return drain(callback);
  }

  /// Bytes received but not yet consumed as complete frames.
  std::size_t buffered() const { return fill_ - head_; }
  /// Current buffer capacity — stable across reads once warmed up.
  std::size_t capacity() const { return buffer_.size(); }
  std::size_t max_frame() const { return max_frame_; }
  Error error() const { return error_; }

  /// True when the stream holds a partial frame — meaningful when the
  /// peer closed the connection: the frame in flight was truncated.
  bool truncated() const { return buffered() != 0; }

 private:
  void compact() {
    if (head_ == 0) return;
    std::memmove(buffer_.data(), buffer_.data() + head_, fill_ - head_);
    fill_ -= head_;
    head_ = 0;
  }

  std::uint32_t read_u32(std::size_t at) const {
    return static_cast<std::uint32_t>(buffer_[at]) |
           (static_cast<std::uint32_t>(buffer_[at + 1]) << 8) |
           (static_cast<std::uint32_t>(buffer_[at + 2]) << 16) |
           (static_cast<std::uint32_t>(buffer_[at + 3]) << 24);
  }

  std::size_t max_frame_;
  Error error_ = Error::None;
  std::vector<std::byte> buffer_;
  std::size_t head_ = 0;  ///< start of unparsed bytes
  std::size_t fill_ = 0;  ///< end of valid bytes
};

}  // namespace idem::rpc
