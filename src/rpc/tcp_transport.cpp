#include "rpc/tcp_transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "common/logging.hpp"
#include "consensus/messages.hpp"

namespace idem::rpc {

namespace {

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

bool resolve(const std::string& host, std::uint16_t port, sockaddr_in& out) {
  out = sockaddr_in{};
  out.sin_family = AF_INET;
  out.sin_port = htons(port);
  if (host.empty() || host == "localhost") {
    out.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    return true;
  }
  return ::inet_pton(AF_INET, host.c_str(), &out.sin_addr) == 1;
}

}  // namespace

std::optional<PeerAddress> parse_address(const std::string& text) {
  PeerAddress address;
  std::string port_part = text;
  std::size_t colon = text.rfind(':');
  if (colon != std::string::npos) {
    address.host = text.substr(0, colon);
    port_part = text.substr(colon + 1);
  }
  if (address.host.empty()) address.host = "127.0.0.1";
  if (port_part.empty()) return std::nullopt;
  char* end = nullptr;
  unsigned long port = std::strtoul(port_part.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || port == 0 || port > 65535) return std::nullopt;
  sockaddr_in probe;
  if (!resolve(address.host, 1, probe)) return std::nullopt;
  address.port = static_cast<std::uint16_t>(port);
  return address;
}

struct TcpTransport::LocalNode {
  sim::NodeId id;
  sim::NodeKind kind = sim::NodeKind::Replica;
  sim::Endpoint* endpoint = nullptr;
  int listen_fd = -1;
  std::uint16_t port = 0;
  std::vector<int> inbound_fds;  // accepted connections delivering to this node
};

struct TcpTransport::InboundConnection {
  static constexpr Time kNoPartial = -1;

  int fd = -1;
  std::uint32_t local_node = 0;  // destination of the frames on this connection
  std::string peer_host;         // learned at accept; return address for senders
  FrameReader reader;
  /// Listener-less senders (port-0 frames) whose replies route back over
  /// this connection; one entry in practice (one session per socket).
  std::vector<std::uint32_t> route_nodes;
  PendingWrites out;             // reply-over-inbound frames awaiting write
  bool flush_scheduled = false;  ///< a deferred end-of-iteration flush is queued
  Time last_activity = 0;        ///< accept time, then the last recv that moved bytes
  Time partial_since = kNoPartial;  ///< when the currently buffered partial
                                    ///< frame started (completed frames reset it)

  InboundConnection(std::size_t max_frame, std::size_t initial_capacity)
      : reader(max_frame, initial_capacity) {}
};

std::size_t PendingWrites::fill_iovec(iovec* iov, std::size_t max) const {
  std::size_t n = 0;
  for (const std::vector<std::byte>& frame : frames) {
    if (n == max) break;
    std::size_t skip = (n == 0) ? front_offset : 0;
    iov[n].iov_base = const_cast<std::byte*>(frame.data() + skip);
    iov[n].iov_len = frame.size() - skip;
    ++n;
  }
  return n;
}

void PendingWrites::consume(std::size_t written) {
  total_bytes -= written;
  while (written > 0) {
    std::size_t front_left = frames.front().size() - front_offset;
    if (written < front_left) {
      front_offset += written;
      return;
    }
    written -= front_left;
    frames.pop_front();
    front_offset = 0;
  }
}

struct TcpTransport::OutboundConnection {
  int fd = -1;
  std::uint32_t dest = 0;
  bool connected = false;
  bool flush_scheduled = false;  ///< a deferred end-of-iteration flush is queued
  PendingWrites out;
};

TcpTransport::TcpTransport(EventLoop& loop, TcpTransportConfig config)
    : loop_(loop), config_(std::move(config)) {
  arm_sweep();
}

TcpTransport::~TcpTransport() {
  if (sweep_timer_.valid()) loop_.cancel(sweep_timer_);
  for (auto& [fd, connection] : inbound_) {
    loop_.unwatch(fd);
    ::close(fd);
  }
  for (auto& [dest, connection] : outbound_) {
    if (connection->fd >= 0) {
      loop_.unwatch(connection->fd);
      ::close(connection->fd);
    }
  }
  for (auto& [id, node] : locals_) {
    if (node->listen_fd >= 0) {
      loop_.unwatch(node->listen_fd);
      ::close(node->listen_fd);
    }
  }
}

void TcpTransport::add_node(sim::NodeId id, sim::NodeKind kind, sim::Endpoint* endpoint) {
  auto node = std::make_unique<LocalNode>();
  node->id = id;
  node->kind = kind;
  node->endpoint = endpoint;

  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  std::uint16_t requested = 0;
  if (config_.fixed_port != 0 && !fixed_port_used_) {
    requested = config_.fixed_port;
    fixed_port_used_ = true;
  }
  sockaddr_in addr;
  if (!resolve(config_.listen_host, requested, addr)) {
    ::close(fd);
    throw std::runtime_error("listen_host is not a numeric IPv4 address: " +
                             config_.listen_host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 128) < 0) {
    ::close(fd);
    throw std::runtime_error(std::string("bind/listen: ") + std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  node->listen_fd = fd;
  node->port = ntohs(addr.sin_port);

  LocalNode* raw = node.get();
  loop_.watch(fd, EPOLLIN, [this, raw](std::uint32_t) { accept_ready(*raw); });
  locals_[id.value] = std::move(node);
}

void TcpTransport::remove_node(sim::NodeId id) {
  auto it = locals_.find(id.value);
  if (it == locals_.end()) return;
  LocalNode& node = *it->second;
  if (node.listen_fd >= 0) {
    loop_.unwatch(node.listen_fd);
    ::close(node.listen_fd);
  }
  for (int fd : node.inbound_fds) {
    auto conn_it = inbound_.find(fd);
    if (conn_it != inbound_.end()) {
      loop_.unwatch(fd);
      ::close(fd);
      inbound_.erase(conn_it);
    }
  }
  locals_.erase(it);
}

std::uint16_t TcpTransport::port_of(sim::NodeId id) const {
  auto it = locals_.find(id.value);
  return it == locals_.end() ? 0 : it->second->port;
}

void TcpTransport::set_remote(sim::NodeId id, const PeerAddress& address) {
  remotes_[id.value] = address;
}

void TcpTransport::accept_ready(LocalNode& node) {
  for (std::size_t accepted = 0; accepted < config_.accept_burst; ++accepted) {
    sockaddr_in peer{};
    socklen_t peer_len = sizeof(peer);
    int fd = ::accept4(node.listen_fd, reinterpret_cast<sockaddr*>(&peer), &peer_len,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or error: backlog drained for now
    if (config_.max_inbound_connections != 0 &&
        inbound_.size() >= config_.max_inbound_connections) {
      // At the connection cap: shed at accept, before the connection costs
      // a buffer or a watch. The peer sees an immediate close (reset once
      // it writes) — the connection-limit early rejection
      // (RejectReason::ConnectionLimit in the telemetry mirrors).
      ++stats_.connection_limit_sheds;
      ::close(fd);
      continue;
    }
    set_nodelay(fd);
    auto connection = std::make_unique<InboundConnection>(config_.max_frame_bytes,
                                                          config_.read_buffer_bytes);
    connection->fd = fd;
    connection->local_node = node.id.value;
    connection->last_activity = loop_.now();
    char host[INET_ADDRSTRLEN] = "127.0.0.1";
    if (peer.sin_family == AF_INET) {
      ::inet_ntop(AF_INET, &peer.sin_addr, host, sizeof(host));
    }
    connection->peer_host = host;
    ++stats_.accepted_connections;
    node.inbound_fds.push_back(fd);
    inbound_[fd] = std::move(connection);
    loop_.watch(fd, EPOLLIN, [this, fd](std::uint32_t events) { inbound_event(fd, events); });
  }
  // Burst budget spent with the backlog possibly non-empty: continue in
  // the next loop iteration (deferred tasks deferred from a deferred task
  // run one iteration later), so a connect flood drains in bounded slices
  // and established connections' I/O and due timers run in between.
  std::uint32_t id = node.id.value;
  loop_.defer([this, id] {
    if (auto it = locals_.find(id); it != locals_.end()) accept_ready(*it->second);
  });
}

void TcpTransport::close_inbound(int fd, InboundConnection& connection) {
  loop_.unwatch(fd);
  ::close(fd);
  // Detach from the owning node so remove_node never touches a recycled
  // fd number.
  if (auto local_it = locals_.find(connection.local_node); local_it != locals_.end()) {
    auto& fds = local_it->second->inbound_fds;
    std::erase(fds, fd);
  }
  // Retire reply routes that still point at this connection (a reconnect
  // may already have repointed them at a newer fd — leave those alone).
  for (std::uint32_t node : connection.route_nodes) {
    if (auto route = inbound_routes_.find(node);
        route != inbound_routes_.end() && route->second == fd) {
      inbound_routes_.erase(route);
    }
  }
  inbound_.erase(fd);
}

void TcpTransport::inbound_event(int fd, std::uint32_t events) {
  if (events & EPOLLOUT) {
    auto it = inbound_.find(fd);
    if (it == inbound_.end()) return;
    flush_inbound(*it->second);         // may close the connection on error
    if (!inbound_.contains(fd)) return;
  }
  if (events & (EPOLLIN | EPOLLERR | EPOLLHUP)) inbound_ready(fd);
}

void TcpTransport::inbound_ready(int fd) {
  auto it = inbound_.find(fd);
  if (it == inbound_.end()) return;
  InboundConnection& connection = *it->second;

  for (;;) {
    // Recv straight into the reader's reuse buffer: no intermediate copy,
    // and no allocation once the buffer has warmed up to the connection's
    // largest frame.
    std::span<std::byte> dst = connection.reader.write_span(config_.read_buffer_bytes);
    ssize_t n = ::recv(fd, dst.data(), dst.size(), 0);
    if (n > 0) {
      connection.reader.commit(static_cast<std::size_t>(n));
      connection.last_activity = loop_.now();
      bool completed_frame = false;
      bool ok = connection.reader.drain(
          [&](std::uint32_t sender, std::uint32_t sender_port,
              std::span<const std::byte> payload) {
            completed_frame = true;
            // Learn the sender's return address (self-advertised port, peer
            // IP from the socket): this is how replicas can answer clients
            // they were never configured with in multi-process deployments.
            // Port 0 means the sender has no listener at all — replies to
            // it go back over this very connection.
            if (!locals_.contains(sender)) {
              if (sender_port != 0) {
                remotes_[sender] =
                    PeerAddress{connection.peer_host, static_cast<std::uint16_t>(sender_port)};
              } else {
                inbound_routes_[sender] = fd;  // newest connection wins
                auto& routed = connection.route_nodes;
                if (std::find(routed.begin(), routed.end(), sender) == routed.end()) {
                  routed.push_back(sender);
                }
              }
            }
            auto local_it = locals_.find(connection.local_node);
            if (local_it == locals_.end()) return;
            try {
              auto message = msg::decode(payload);
              ++stats_.messages_delivered;
              local_it->second->endpoint->deliver(sim::NodeId{sender}, std::move(message));
            } catch (const CodecError&) {
              ++stats_.decode_errors;
            }
          });
      // Half-open tracking: a buffered partial frame starts (or keeps) the
      // eviction clock; completing any frame restarts it — so pipelined
      // bursts are safe while a trickled never-ending frame is not.
      if (!connection.reader.truncated()) {
        connection.partial_since = InboundConnection::kNoPartial;
      } else if (completed_frame ||
                 connection.partial_since == InboundConnection::kNoPartial) {
        connection.partial_since = loop_.now();
      }
      if (!ok) {
        // Oversized length header: poisoned stream, count and drop it.
        ++stats_.decode_errors;
        ++stats_.oversized_frames;
        LOG_WARN("tcp", "dropping connection to node ", connection.local_node,
                 " (oversized frame)");
        close_inbound(fd, connection);
        return;
      }
      continue;
    }
    if (n == 0 || (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK)) {
      // Peer closed or reset. Bytes of an unfinished frame mean the stream
      // was cut mid-message: account for the truncated frame.
      if (connection.reader.truncated()) ++stats_.decode_errors;
      close_inbound(fd, connection);
      return;
    }
    return;  // EAGAIN: wait for more data
  }
}

TcpTransport::OutboundConnection* TcpTransport::connect_to(std::uint32_t dest,
                                                           const PeerAddress& address) {
  sockaddr_in addr;
  if (!resolve(address.host, address.port, addr)) return nullptr;

  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return nullptr;
  set_nodelay(fd);

  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc < 0 && errno != EINPROGRESS) {
    ::close(fd);
    return nullptr;
  }

  auto connection = std::make_unique<OutboundConnection>();
  connection->fd = fd;
  connection->dest = dest;
  connection->connected = (rc == 0);
  OutboundConnection* raw = connection.get();
  outbound_[dest] = std::move(connection);
  loop_.watch(fd, EPOLLOUT, [this, dest](std::uint32_t events) { outbound_ready(dest, events); });
  return raw;
}

void TcpTransport::drop_outbound(std::uint32_t dest) {
  auto it = outbound_.find(dest);
  if (it == outbound_.end()) return;
  if (it->second->fd >= 0) {
    loop_.unwatch(it->second->fd);
    ::close(it->second->fd);
  }
  outbound_.erase(it);
}

void TcpTransport::outbound_ready(std::uint32_t dest, std::uint32_t events) {
  auto it = outbound_.find(dest);
  if (it == outbound_.end()) return;
  OutboundConnection& connection = *it->second;

  if (events & (EPOLLERR | EPOLLHUP)) {
    // Connection refused / reset: fair-loss drop of everything queued.
    drop_outbound(dest);
    return;
  }
  if (!connection.connected) {
    int error = 0;
    socklen_t len = sizeof(error);
    ::getsockopt(connection.fd, SOL_SOCKET, SO_ERROR, &error, &len);
    if (error != 0) {
      drop_outbound(dest);
      return;
    }
    connection.connected = true;
  }
  flush(connection);
}

void TcpTransport::schedule_flush(OutboundConnection& connection) {
  // Coalescing point: every send during this loop iteration appends to the
  // pending queue, and one deferred flush writes them all with a single
  // sendmsg. The deferred task re-resolves the connection by destination —
  // it may have been dropped (or dropped and re-established) before the
  // end of the iteration.
  if (connection.flush_scheduled) return;
  connection.flush_scheduled = true;
  std::uint32_t dest = connection.dest;
  loop_.defer([this, dest] {
    auto it = outbound_.find(dest);
    if (it == outbound_.end()) return;
    it->second->flush_scheduled = false;
    if (it->second->connected) flush(*it->second);
  });
}

void TcpTransport::flush(OutboundConnection& connection) {
  while (!connection.out.empty()) {
    iovec iov[kMaxFlushIov];
    std::size_t n_iov = connection.out.fill_iovec(iov, kMaxFlushIov);
    msghdr header{};
    header.msg_iov = iov;
    header.msg_iovlen = n_iov;
    ssize_t n = ::sendmsg(connection.fd, &header, MSG_NOSIGNAL);
    if (n > 0) {
      ++stats_.write_syscalls;
      connection.out.consume(static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      loop_.modify(connection.fd, EPOLLOUT);
      return;
    }
    drop_outbound(connection.dest);  // invalidates `connection`
    return;
  }
  // Fully flushed: only wake on errors until there is more to send.
  loop_.modify(connection.fd, 0);
}

void TcpTransport::schedule_inbound_flush(InboundConnection& connection) {
  // Same write-coalescing shape as outbound: replies queued during one
  // loop iteration leave in a single sendmsg. The deferred task re-resolves
  // the connection by fd — it may have been closed (and the fd recycled)
  // before the end of the iteration, in which case flushing the new
  // connection's (empty) queue is a harmless no-op.
  if (connection.flush_scheduled) return;
  connection.flush_scheduled = true;
  int fd = connection.fd;
  loop_.defer([this, fd] {
    auto it = inbound_.find(fd);
    if (it == inbound_.end()) return;
    it->second->flush_scheduled = false;
    flush_inbound(*it->second);
  });
}

void TcpTransport::flush_inbound(InboundConnection& connection) {
  while (!connection.out.empty()) {
    iovec iov[kMaxFlushIov];
    std::size_t n_iov = connection.out.fill_iovec(iov, kMaxFlushIov);
    msghdr header{};
    header.msg_iov = iov;
    header.msg_iovlen = n_iov;
    ssize_t n = ::sendmsg(connection.fd, &header, MSG_NOSIGNAL);
    if (n > 0) {
      ++stats_.write_syscalls;
      connection.out.consume(static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      loop_.modify(connection.fd, EPOLLIN | EPOLLOUT);
      return;
    }
    close_inbound(connection.fd, connection);  // peer gone; invalidates `connection`
    return;
  }
  loop_.modify(connection.fd, EPOLLIN);
}

void TcpTransport::arm_sweep() {
  if (config_.idle_timeout <= 0 && config_.half_open_timeout <= 0) return;
  Duration interval = config_.sweep_interval;
  if (interval <= 0) {
    Duration shortest = config_.idle_timeout > 0 ? config_.idle_timeout : 0;
    if (config_.half_open_timeout > 0 &&
        (shortest == 0 || config_.half_open_timeout < shortest)) {
      shortest = config_.half_open_timeout;
    }
    interval = std::clamp<Duration>(shortest / 4, 10 * kMillisecond, kSecond);
  }
  sweep_timer_ = loop_.schedule_after(interval, [this] {
    sweep_connections();
    arm_sweep();
  });
}

void TcpTransport::sweep_connections() {
  const Time now = loop_.now();
  // Two-phase: collect first, then evict — close_inbound mutates inbound_.
  std::vector<int> half_open;
  std::vector<int> idle;
  for (const auto& [fd, connection] : inbound_) {
    if (config_.half_open_timeout > 0 &&
        connection->partial_since != InboundConnection::kNoPartial &&
        now - connection->partial_since >= config_.half_open_timeout) {
      half_open.push_back(fd);
    } else if (config_.idle_timeout > 0 &&
               now - connection->last_activity >= config_.idle_timeout) {
      idle.push_back(fd);
    }
  }
  for (int fd : half_open) {
    if (auto it = inbound_.find(fd); it != inbound_.end()) {
      ++stats_.half_open_evictions;
      ++stats_.decode_errors;  // the trickled frame dies truncated
      close_inbound(fd, *it->second);
    }
  }
  for (int fd : idle) {
    if (auto it = inbound_.find(fd); it != inbound_.end()) {
      ++stats_.idle_evictions;
      close_inbound(fd, *it->second);
    }
  }
}

std::size_t TcpTransport::pending_write_bytes() const {
  std::size_t total = 0;
  for (const auto& [dest, connection] : outbound_) total += connection->out.total_bytes;
  for (const auto& [fd, connection] : inbound_) total += connection->out.total_bytes;
  return total;
}

TransportMemory TcpTransport::memory() const {
  TransportMemory memory;
  memory.inbound_connections = inbound_.size();
  memory.outbound_connections = outbound_.size();
  for (const auto& [fd, connection] : inbound_) {
    memory.inbound_buffer_bytes += connection->reader.capacity();
    memory.pending_write_bytes += connection->out.total_bytes;
  }
  for (const auto& [dest, connection] : outbound_) {
    memory.pending_write_bytes += connection->out.total_bytes;
  }
  return memory;
}

void TcpTransport::send(sim::NodeId from, sim::NodeId to, sim::PayloadPtr message) {
  const auto* typed = dynamic_cast<const msg::Message*>(message.get());
  if (typed == nullptr) {
    ++stats_.dropped;
    return;
  }

  std::uint32_t sender_port_adv = 0;
  if (auto sender_it = locals_.find(from.value); sender_it != locals_.end()) {
    sender_port_adv = sender_it->second->port;
  }

  PeerAddress address;
  if (auto it = locals_.find(to.value); it != locals_.end()) {
    address = PeerAddress{"127.0.0.1", it->second->port};
  } else if (auto remote = remotes_.find(to.value); remote != remotes_.end()) {
    address = remote->second;
  }
  if (address.port == 0) {
    // Not dialable — but a listener-less peer (port-0 frames) may have an
    // inbound connection we can answer over.
    if (auto route = inbound_routes_.find(to.value); route != inbound_routes_.end()) {
      if (auto conn_it = inbound_.find(route->second); conn_it != inbound_.end()) {
        InboundConnection& connection = *conn_it->second;
        std::vector<std::byte> frame =
            encode_frame(from.value, sender_port_adv, typed->encode());
        if (connection.out.total_bytes + frame.size() > config_.max_pending_write_bytes) {
          ++stats_.send_queue_overflows;
          ++stats_.dropped;
          return;
        }
        stats_.messages_sent += 1;
        stats_.bytes_sent += frame.size();
        connection.out.push(std::move(frame));
        schedule_inbound_flush(connection);
        return;
      }
    }
    ++stats_.dropped;
    return;
  }

  auto it = outbound_.find(to.value);
  OutboundConnection* connection =
      it != outbound_.end() ? it->second.get() : connect_to(to.value, address);
  if (connection == nullptr) {
    ++stats_.dropped;
    return;
  }

  std::vector<std::byte> frame = encode_frame(from.value, sender_port_adv, typed->encode());
  if (connection->out.total_bytes + frame.size() > config_.max_pending_write_bytes) {
    // The peer stopped draining: shed this frame (fair loss) rather than
    // buffer without bound.
    ++stats_.send_queue_overflows;
    ++stats_.dropped;
    return;
  }
  stats_.messages_sent += 1;
  stats_.bytes_sent += frame.size();
  connection->out.push(std::move(frame));
  if (connection->connected) schedule_flush(*connection);
  // Not yet connected: the EPOLLOUT watcher flushes once the connect
  // completes.
}

}  // namespace idem::rpc
