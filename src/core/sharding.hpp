// Shard admission hook for the replica's request-intake path.
//
// A sharded deployment partitions the keyspace across M independent
// replication groups; each group's replicas carry a ShardGate that answers
// one question per client REQUEST: does this key belong to my group under
// the map I hold? The gate sits between the duplicate-suppression check
// and the acceptance test, so retransmissions of already-executed requests
// still get their cached replies (no double execution across a range
// move), while foreign keys are turned away with a WrongShard REJECT that
// carries the gate's map epoch and the key's home group — the client-side
// router uses it to refresh a stale map and re-issue.
//
// The gate is deliberately a narrow interface in src/core rather than a
// dependency on src/shard: the replica stays ignorant of maps, epochs and
// splits. Default nullptr = unsharded, bit-identical to the seed path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace idem::core {

struct ShardVerdict {
  enum class Kind : std::uint8_t {
    Mine,        ///< the key routes here; run the acceptance test
    Frozen,      ///< mid-reconfiguration: reject retryably, no redirect
    WrongShard,  ///< the key belongs to home_group under epoch map_epoch
  };

  Kind kind = Kind::Mine;
  std::uint64_t map_epoch = 0;  ///< epoch of the map behind the verdict
  std::uint32_t home_group = 0;  ///< owning group (WrongShard only)
};

/// Per-replica shard admission. admit() runs on the replica's runtime
/// thread for every client-issued REQUEST; implementations must be cheap
/// (a hash + a range lookup) and, in real mode, internally synchronized —
/// the split coordinator swaps maps from the controller thread.
class ShardGate {
 public:
  virtual ~ShardGate() = default;
  virtual ShardVerdict admit(std::span<const std::byte> command) const = 0;
};

}  // namespace idem::core
