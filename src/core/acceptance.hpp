// Acceptance tests (paper Section 5.1).
//
// Whenever a replica receives a new client request it consults its
// acceptance test. The test is local, pluggable, and explicitly allowed to
// be non-deterministic. Implementations provided:
//   - NeverReject:      disables proactive rejection (the IDEM_noPR baseline)
//   - TailDrop:         reject iff the active-request count reached r
//   - AqmPrioritized:   the paper's default — active queue management with
//                       rotating prioritized client groups and a shared PRF
//   - PriorityClasses:  Section 5.1 "further options": per-client priority
//                       categories with per-class admission levels
//   - CostAware:        Section 5.1 "further options": admission based on
//                       the estimated resource cost of the request
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/ids.hpp"
#include "common/reject_reason.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"

namespace idem::core {

/// Everything a test may consult about the replica's current load.
struct AcceptanceContext {
  /// Requests this replica has accepted and not yet seen executed (r_now).
  std::size_t active_requests = 0;
  /// The configured reject threshold r.
  std::size_t reject_threshold = 0;
  /// Current (simulated) time — drives AQM time slices.
  Time now = 0;
};

class AcceptanceTest {
 public:
  virtual ~AcceptanceTest() = default;

  /// True = accept the request, false = send a REJECT. `command` is the
  /// request payload, available for cost- or content-sensitive policies.
  virtual bool accept(RequestId id, std::span<const std::byte> command,
                      const AcceptanceContext& ctx) = 0;

  /// Classified variant: same verdict as accept(), but on refusal `reason`
  /// names why. Every built-in test refuses for load, so the default
  /// classification is RtQueueFull; a policy with another failure mode
  /// overrides classify_rejection(). (Cache-hit and view-change rejects
  /// are classified by the replica, which owns that state.)
  bool accept(RequestId id, std::span<const std::byte> command,
              const AcceptanceContext& ctx, RejectReason& reason) {
    if (accept(id, command, ctx)) {
      reason = RejectReason::None;
      return true;
    }
    reason = classify_rejection(id, command, ctx);
    return false;
  }

  /// Display name for experiment output.
  virtual const char* name() const = 0;

 protected:
  /// Why the test just said no. Only consulted after accept() refused.
  virtual RejectReason classify_rejection(RequestId, std::span<const std::byte>,
                                          const AcceptanceContext&) const {
    return RejectReason::RtQueueFull;
  }
};

/// Accepts everything: IDEM with the rejection mechanism disabled.
class NeverReject final : public AcceptanceTest {
 public:
  bool accept(RequestId, std::span<const std::byte>, const AcceptanceContext&) override {
    return true;
  }
  const char* name() const override { return "never-reject"; }
};

/// Classic tail drop: accept while r_now < r.
class TailDrop final : public AcceptanceTest {
 public:
  bool accept(RequestId, std::span<const std::byte>,
              const AcceptanceContext& ctx) override {
    return ctx.active_requests < ctx.reject_threshold;
  }
  const char* name() const override { return "tail-drop"; }
};

/// The paper's acceptance test: below 60% of r everything is accepted;
/// above it, clients of the currently prioritized group are tail-dropped
/// at r while all other clients are rejected with probability
/// p = r_now / r, decided by a PRF keyed on (seed, request id) so that all
/// replicas tend toward the same verdict.
class AqmPrioritized final : public AcceptanceTest {
 public:
  struct Params {
    double start_fraction = 0.6;
    Duration time_slice = 2 * kSecond;
    std::size_t group_count = 1;
    std::uint64_t prf_seed = 0;
  };

  explicit AqmPrioritized(Params params);

  bool accept(RequestId id, std::span<const std::byte> command,
              const AcceptanceContext& ctx) override;
  const char* name() const override { return "aqm-prioritized"; }

  /// Group of a client: at most r clients per group, assigned statically
  /// by client id. Exposed for tests.
  std::size_t group_of(ClientId cid, std::size_t r) const;

  /// Group prioritized at time `now`.
  std::size_t prioritized_group(Time now) const;

  /// The shared PRF: uniform in [0,1), identical across replicas.
  double prf(RequestId id) const;

 private:
  Params params_;
};

/// Priority categories (Section 5.1, "further options"): a classifier maps
/// each client to a priority class; class k is admitted while
/// r_now < admission_fraction[k] * r. The highest class is always
/// tail-dropped at r, so critical clients are the last to be rejected.
class PriorityClasses final : public AcceptanceTest {
 public:
  using Classifier = std::function<std::size_t(ClientId)>;

  /// `admission_fractions[k]` is the fill level (relative to r) at which
  /// class k stops being admitted; must be ascending. Classes beyond the
  /// vector use 1.0 (tail drop at r).
  PriorityClasses(Classifier classifier, std::vector<double> admission_fractions);

  bool accept(RequestId id, std::span<const std::byte> command,
              const AcceptanceContext& ctx) override;
  const char* name() const override { return "priority-classes"; }

 private:
  Classifier classifier_;
  std::vector<double> admission_fractions_;
};

/// Cost-aware admission (Section 5.1, "further options"): an estimator
/// prices each request; expensive requests are rejected earlier than
/// cheap ones, keeping capacity for lightweight traffic under pressure.
class CostAware final : public AcceptanceTest {
 public:
  using CostEstimator = std::function<Duration(std::span<const std::byte>)>;

  /// Requests at or below `cheap_cost` are admitted until r; the admission
  /// level decreases linearly to `min_fraction * r` for requests at
  /// `expensive_cost` and beyond.
  CostAware(CostEstimator estimator, Duration cheap_cost, Duration expensive_cost,
            double min_fraction = 0.25);

  bool accept(RequestId id, std::span<const std::byte> command,
              const AcceptanceContext& ctx) override;
  const char* name() const override { return "cost-aware"; }

  /// Admission threshold (in request slots) for a given estimated cost.
  std::size_t admission_limit(Duration cost, std::size_t r) const;

 private:
  CostEstimator estimator_;
  Duration cheap_cost_;
  Duration expensive_cost_;
  double min_fraction_;
};

/// Protocol-independent knobs for the default (AQM) acceptance test; each
/// protocol maps its own config onto this (e.g. IdemConfig in
/// idem/acceptance.hpp).
struct AcceptanceOptions {
  double aqm_start_fraction = 0.6;
  Duration aqm_time_slice = 2 * kSecond;
  /// 0 means "derive from the client population": ceil(clients / r).
  std::size_t aqm_group_count = 0;
  std::uint64_t prf_seed = 0x1DE4'5EEDull;
  std::size_t reject_threshold = 50;
};

/// Builds the paper's default acceptance test (AqmPrioritized) with group
/// count resolved against the expected client population.
std::unique_ptr<AcceptanceTest> make_default_acceptance(const AcceptanceOptions& options,
                                                        std::size_t client_count);

}  // namespace idem::core
