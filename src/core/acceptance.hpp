// Acceptance tests (paper Section 5.1).
//
// Whenever a replica receives a new client request it consults its
// acceptance test. The test is local, pluggable, and explicitly allowed to
// be non-deterministic. Implementations provided:
//   - NeverReject:      disables proactive rejection (the IDEM_noPR baseline)
//   - TailDrop:         reject iff the active-request count reached r
//   - AqmPrioritized:   the paper's default — active queue management with
//                       rotating prioritized client groups and a shared PRF
//   - PriorityClasses:  Section 5.1 "further options": per-client priority
//                       categories with per-class admission levels
//   - CostAware:        Section 5.1 "further options": admission based on
//                       the estimated resource cost of the request
//   - DeadlineAware:    beyond the paper — rejects exactly the requests
//                       whose deadline is already un-meetable, using an
//                       online queue-wait estimator (DESIGN.md Section 15)
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/ids.hpp"
#include "common/reject_reason.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"

namespace idem::core {

/// Everything a test may consult about the replica's current load.
struct AcceptanceContext {
  /// Requests this replica has accepted and not yet seen executed (r_now).
  std::size_t active_requests = 0;
  /// The configured reject threshold r.
  std::size_t reject_threshold = 0;
  /// Current (simulated) time — drives AQM time slices.
  Time now = 0;
  /// Remaining latency budget of the request (0 = none attached). Measured
  /// against the expected queue wait by deadline-aware policies.
  Duration deadline = 0;
};

/// One verdict, one classification: a policy that says no always says why.
/// (The old split accept()/classify_rejection() double dispatch let new
/// policies forget the classification and re-walked the policy on refusal.)
struct AcceptanceVerdict {
  bool accepted = true;
  RejectReason reason = RejectReason::None;

  static constexpr AcceptanceVerdict yes() { return {true, RejectReason::None}; }
  static constexpr AcceptanceVerdict no(RejectReason why = RejectReason::RtQueueFull) {
    return {false, why};
  }
};

class AcceptanceTest {
 public:
  virtual ~AcceptanceTest() = default;

  /// The single policy entry point: verdict plus, on refusal, the reason.
  /// (Cache-hit and view-change rejects are reclassified by the replica,
  /// which owns that state.)
  virtual AcceptanceVerdict evaluate(RequestId id, std::span<const std::byte> command,
                                     const AcceptanceContext& ctx) = 0;

  /// Convenience wrapper: verdict only.
  bool accept(RequestId id, std::span<const std::byte> command,
              const AcceptanceContext& ctx) {
    return evaluate(id, command, ctx).accepted;
  }

  /// Convenience wrapper: verdict, with the reason written through.
  bool accept(RequestId id, std::span<const std::byte> command,
              const AcceptanceContext& ctx, RejectReason& reason) {
    AcceptanceVerdict verdict = evaluate(id, command, ctx);
    reason = verdict.reason;
    return verdict.accepted;
  }

  /// Execution feedback for policies that estimate queue waits: invoked by
  /// the replica each time a client-issued request finishes executing, with
  /// `backlog` the number of accepted-but-unexecuted requests left (r_now
  /// after the completion). Default: ignored.
  virtual void observe_execution(Time now, std::size_t backlog) {
    (void)now;
    (void)backlog;
  }

  /// Display name for experiment output.
  virtual const char* name() const = 0;
};

/// Accepts everything: IDEM with the rejection mechanism disabled.
class NeverReject final : public AcceptanceTest {
 public:
  AcceptanceVerdict evaluate(RequestId, std::span<const std::byte>,
                             const AcceptanceContext&) override {
    return AcceptanceVerdict::yes();
  }
  const char* name() const override { return "never-reject"; }
};

/// Classic tail drop: accept while r_now < r.
class TailDrop final : public AcceptanceTest {
 public:
  AcceptanceVerdict evaluate(RequestId, std::span<const std::byte>,
                             const AcceptanceContext& ctx) override {
    return ctx.active_requests < ctx.reject_threshold ? AcceptanceVerdict::yes()
                                                      : AcceptanceVerdict::no();
  }
  const char* name() const override { return "tail-drop"; }
};

/// The paper's acceptance test: below 60% of r everything is accepted;
/// above it, clients of the currently prioritized group are tail-dropped
/// at r while all other clients are rejected with probability
/// p = r_now / r, decided by a PRF keyed on (seed, request id) so that all
/// replicas tend toward the same verdict.
class AqmPrioritized final : public AcceptanceTest {
 public:
  struct Params {
    double start_fraction = 0.6;
    Duration time_slice = 2 * kSecond;
    std::size_t group_count = 1;
    std::uint64_t prf_seed = 0;
  };

  explicit AqmPrioritized(Params params);

  AcceptanceVerdict evaluate(RequestId id, std::span<const std::byte> command,
                             const AcceptanceContext& ctx) override;
  const char* name() const override { return "aqm-prioritized"; }

  /// Group of a client: at most r clients per group, assigned statically
  /// by client id. Exposed for tests.
  std::size_t group_of(ClientId cid, std::size_t r) const;

  /// Group prioritized at time `now`.
  std::size_t prioritized_group(Time now) const;

  /// The shared PRF: uniform in [0,1), identical across replicas.
  double prf(RequestId id) const;

 private:
  Params params_;
};

/// Priority categories (Section 5.1, "further options"): a classifier maps
/// each client to a priority class; class k is admitted while
/// r_now < admission_fraction[k] * r. The highest class is always
/// tail-dropped at r, so critical clients are the last to be rejected.
class PriorityClasses final : public AcceptanceTest {
 public:
  using Classifier = std::function<std::size_t(ClientId)>;

  /// `admission_fractions[k]` is the fill level (relative to r) at which
  /// class k stops being admitted; must be ascending. Classes beyond the
  /// vector use 1.0 (tail drop at r).
  PriorityClasses(Classifier classifier, std::vector<double> admission_fractions);

  AcceptanceVerdict evaluate(RequestId id, std::span<const std::byte> command,
                             const AcceptanceContext& ctx) override;
  const char* name() const override { return "priority-classes"; }

 private:
  Classifier classifier_;
  std::vector<double> admission_fractions_;
};

/// Cost-aware admission (Section 5.1, "further options"): an estimator
/// prices each request; expensive requests are rejected earlier than
/// cheap ones, keeping capacity for lightweight traffic under pressure.
class CostAware final : public AcceptanceTest {
 public:
  using CostEstimator = std::function<Duration(std::span<const std::byte>)>;

  /// Requests at or below `cheap_cost` are admitted until r; the admission
  /// level decreases linearly to `min_fraction * r` for requests at
  /// `expensive_cost` and beyond.
  CostAware(CostEstimator estimator, Duration cheap_cost, Duration expensive_cost,
            double min_fraction = 0.25);

  AcceptanceVerdict evaluate(RequestId id, std::span<const std::byte> command,
                             const AcceptanceContext& ctx) override;
  const char* name() const override { return "cost-aware"; }

  /// Admission threshold (in request slots) for a given estimated cost.
  std::size_t admission_limit(Duration cost, std::size_t r) const;

 private:
  CostEstimator estimator_;
  Duration cheap_cost_;
  Duration expensive_cost_;
  double min_fraction_;
};

/// Deadline-aware admission (DESIGN.md Section 15): rejects exactly the
/// requests whose remaining budget cannot cover the expected queue wait —
/// `slack <= (r_now + 1) * service-time-quantile` — instead of
/// tail-dropping blind at r. The wait estimator is a windowed log-bucketed
/// histogram of recent per-request service times, sampled from
/// inter-completion gaps during busy periods (an idle gap says nothing
/// about service time and is skipped), aged out over two rotating
/// half-window epochs. Requests without a deadline fall through to a
/// conventional fallback policy (TailDrop unless another is supplied), and
/// the r cap always holds — deadline traffic cannot starve the protocol of
/// slots.
class DeadlineAware final : public AcceptanceTest {
 public:
  struct Params {
    /// Sliding estimator window; samples older than this are gone after at
    /// most 1.5x (two half-window epochs rotate).
    Duration window = 1 * kSecond;
    /// Cold start: with fewer samples in the window the estimator has no
    /// evidence, so deadline-carrying requests are admitted (up to r).
    std::size_t min_samples = 32;
    /// Service-time quantile backing the wait bound. 0.9 targets the tail
    /// (a mean would repeat the Jensen gap this policy exists to close).
    double quantile = 0.9;
    /// Extra slack demanded beyond the expected wait.
    Duration safety_margin = 0;
  };

  /// `fallback` handles deadline-less requests; defaults to TailDrop.
  explicit DeadlineAware(Params params, std::unique_ptr<AcceptanceTest> fallback = nullptr);

  AcceptanceVerdict evaluate(RequestId id, std::span<const std::byte> command,
                             const AcceptanceContext& ctx) override;
  void observe_execution(Time now, std::size_t backlog) override;
  const char* name() const override { return "deadline-aware"; }

  // -- estimator internals, exposed for tests and experiment output --------

  /// Expected time until a request admitted at depth `depth` (its own slot
  /// included) has executed: depth * service-time quantile.
  Duration expected_wait(std::size_t depth, Time now);

  /// Current per-request service-time estimate (the configured quantile
  /// over the windowed samples); 0 while cold.
  Duration service_quantile(Time now);

  /// Samples currently inside the window (both epochs).
  std::uint64_t sample_count(Time now);

  /// Feeds one service-time sample directly (tests; observe_execution is
  /// the production path).
  void record_sample(Time now, Duration service);

  /// Log-bucketed histogram: bucket b holds samples in [2^b, 2^(b+1)),
  /// with the bucket midpoint as its representative value. 48 buckets
  /// cover 1 ns .. ~78 h.
  static constexpr std::size_t kBuckets = 48;

 private:
  struct Epoch {
    std::array<std::uint32_t, kBuckets> buckets{};
    std::uint64_t total = 0;
  };

  void maybe_rotate(Time now);

  Params params_;
  std::unique_ptr<AcceptanceTest> fallback_;
  Epoch current_;
  Epoch previous_;
  Time epoch_start_ = 0;
  bool epoch_started_ = false;
  // Completion tracking: a gap between consecutive completions is a
  // service-time sample only when the earlier completion left work queued
  // (busy period).
  Time last_completion_ = 0;
  bool have_completion_ = false;
  std::size_t last_backlog_ = 0;
};

/// Protocol-independent knobs for the default (AQM) acceptance test; each
/// protocol maps its own config onto this (e.g. IdemConfig in
/// idem/acceptance.hpp).
struct AcceptanceOptions {
  double aqm_start_fraction = 0.6;
  Duration aqm_time_slice = 2 * kSecond;
  /// 0 means "derive from the client population": ceil(clients / r).
  std::size_t aqm_group_count = 0;
  std::uint64_t prf_seed = 0x1DE4'5EEDull;
  std::size_t reject_threshold = 50;
};

/// Builds the paper's default acceptance test (AqmPrioritized) with group
/// count resolved against the expected client population.
std::unique_ptr<AcceptanceTest> make_default_acceptance(const AcceptanceOptions& options,
                                                        std::size_t client_count);

}  // namespace idem::core
