// Leader-side request batching with a size- or time-based cut.
//
// All four protocols queue proposal candidates (request ids or full
// requests) and cut batches of at most batch_max off the head. This class
// owns the queue and the cut policy; the protocol supplies a per-item
// verdict when cutting:
//   Take  — include in the current batch (counts toward batch_max)
//   Drop  — discard (already executed or proposed)
//   Defer — keep queued behind the current tail (body not yet available)
//
// The time-based cut is the batching feature on top: with batch_min > 1 a
// leader holds the cut until batch_min items are queued or the oldest one
// has waited flush_delay, trading a bounded latency add for fewer, fuller
// consensus instances. The defaults (batch_min = 1, flush_delay = 0)
// reproduce the legacy opportunistic cut exactly: every nonempty queue is
// ready immediately and the timestamps are never consulted.
#pragma once

#include <cstddef>
#include <deque>
#include <utility>

#include "common/time.hpp"

namespace idem::core {

template <typename Item>
class BatchPipeline {
 public:
  struct Policy {
    std::size_t batch_max = 32;
    std::size_t batch_min = 1;  ///< cut as soon as this many items queued...
    Duration flush_delay = 0;   ///< ...or the oldest item waited this long
  };

  void configure(const Policy& policy) { policy_ = policy; }
  const Policy& policy() const { return policy_; }

  void push(Item item, Time now) {
    queue_.push_back(std::move(item));
    enqueued_.push_back(now);
  }

  bool empty() const { return queue_.empty(); }
  std::size_t size() const { return queue_.size(); }

  void clear() {
    queue_.clear();
    enqueued_.clear();
  }

  /// True when a batch may be cut now.
  bool ready(Time now) const {
    if (queue_.empty()) return false;
    if (queue_.size() >= policy_.batch_min) return true;
    return now - enqueued_.front() >= policy_.flush_delay;
  }

  /// Time until the queued items become ready by flush delay alone (for
  /// arming a flush timer). Only meaningful when ready() is false.
  Duration delay_until_ready(Time now) const {
    if (queue_.empty() || ready(now)) return 0;
    return policy_.flush_delay - (now - enqueued_.front());
  }

  enum class Verdict { Take, Drop, Defer };

  /// Cuts one batch off the queue head: pops items until batch_max have
  /// been taken or the queue is empty, invoking `verdict` on each. Taken
  /// items are typically moved out by the verdict callback itself;
  /// deferred items are re-queued behind the tail in their original
  /// relative order. Returns the number taken.
  template <typename F>
  std::size_t cut(F&& verdict) {
    std::size_t taken = 0;
    std::deque<Item> deferred;
    std::deque<Time> deferred_at;
    while (!queue_.empty() && taken < policy_.batch_max) {
      Item item = std::move(queue_.front());
      Time at = enqueued_.front();
      queue_.pop_front();
      enqueued_.pop_front();
      switch (verdict(item)) {
        case Verdict::Take:
          ++taken;
          break;
        case Verdict::Drop:
          break;
        case Verdict::Defer:
          deferred.push_back(std::move(item));
          deferred_at.push_back(at);
          break;
      }
    }
    while (!deferred.empty()) {
      queue_.push_back(std::move(deferred.front()));
      enqueued_.push_back(deferred_at.front());
      deferred.pop_front();
      deferred_at.pop_front();
    }
    return taken;
  }

 private:
  Policy policy_;
  std::deque<Item> queue_;
  std::deque<Time> enqueued_;  ///< parallel enqueue timestamps
};

}  // namespace idem::core
