// The ordered log every protocol agrees on: a sparse slot map keyed by
// sequence number, an execution cursor, and a window low watermark for
// garbage collection.
//
// The slot payload is protocol-specific (IDEM slots carry request ids and
// commit votes, Paxos/SMaRt slots carry full requests and their own vote
// sets), so the log is templated over it. Slots embed SlotBase for the
// lifecycle flags every protocol shares. The log owns structure and
// cursor motion; quorum policy and execution stay with the protocol.
#pragma once

#include <cstdint>
#include <map>
#include <utility>

namespace idem::core {

/// Lifecycle flags common to every protocol's consensus slot.
struct SlotBase {
  bool has_binding = false;  ///< a proposal has bound requests to this slot
  bool executed = false;     ///< applied to the state machine (immutable now)
  bool quorum_traced = false;  ///< decision-quorum trace event emitted once
};

template <typename Slot>
class OrderedLog {
 public:
  using Map = std::map<std::uint64_t, Slot>;

  /// The slot for `sqn`, created on first touch.
  Slot& at(std::uint64_t sqn) { return slots_[sqn]; }

  Slot* find(std::uint64_t sqn) {
    auto it = slots_.find(sqn);
    return it == slots_.end() ? nullptr : &it->second;
  }
  const Slot* find(std::uint64_t sqn) const {
    auto it = slots_.find(sqn);
    return it == slots_.end() ? nullptr : &it->second;
  }
  bool contains(std::uint64_t sqn) const { return slots_.contains(sqn); }

  /// Raw slot map, for protocol-specific scans (fetch prefetch, view-change
  /// window assembly, gap analysis).
  Map& slots() { return slots_; }
  const Map& slots() const { return slots_; }

  /// Next sequence number to execute.
  std::uint64_t next_exec() const { return next_exec_; }
  void set_next_exec(std::uint64_t sqn) { next_exec_ = sqn; }
  void advance_head() { ++next_exec_; }

  /// Start of the consensus window (instances below are collected).
  std::uint64_t low() const { return low_; }

  /// The slot at the execution cursor, or null.
  Slot* head() { return find(next_exec_); }

  /// First sequence number >= `sqn` without a binding — new proposals must
  /// skip slots taken over from an earlier view.
  std::uint64_t skip_bound(std::uint64_t sqn) const {
    for (;;) {
      auto it = slots_.find(sqn);
      if (it == slots_.end() || !it->second.has_binding) return sqn;
      ++sqn;
    }
  }

  /// One past the highest slot matching `pred`, but at least `floor` — the
  /// first free sequence number a new leader may propose into.
  template <typename P>
  std::uint64_t high_watermark(std::uint64_t floor, P&& pred) const {
    std::uint64_t high = floor;
    for (const auto& [sqn, slot] : slots_) {
      if (pred(slot) && sqn + 1 > high) high = sqn + 1;
    }
    return high;
  }

  /// Advances the window: drops every slot below `new_low`, invoking
  /// `on_executed(slot)` for executed ones first (so the protocol can
  /// release per-request state).
  template <typename F>
  void advance_low(std::uint64_t new_low, F&& on_executed) {
    for (auto it = slots_.begin(); it != slots_.end() && it->first < new_low;) {
      if (it->second.executed) on_executed(it->second);
      it = slots_.erase(it);
    }
    low_ = new_low;
  }

  /// Baseline-style GC: keep the trailing 2 * `window_size` executed slots
  /// (enough to answer retransmitted proposals), drop everything older.
  void gc_executed(std::uint64_t window_size) {
    if (next_exec_ >= 2 * window_size) {
      slots_.erase(slots_.begin(), slots_.lower_bound(next_exec_ - 2 * window_size));
    }
  }

 private:
  Map slots_;
  std::uint64_t next_exec_ = 0;
  std::uint64_t low_ = 0;
};

}  // namespace idem::core
