// Timeout bookkeeping shared by the protocol replicas.
//
// Every replica used to hand-roll the same three patterns: the
// view-change escalation target, the "head of the log has not moved for a
// full timer interval" stall check behind retransmission, and the
// once-per-interval rate limit on retried actions (FETCH, state
// transfer). One implementation each, unit-tested in tests/core_test.cpp.
#pragma once

#include <cstdint>

#include "common/ids.hpp"
#include "common/time.hpp"

namespace idem::core {

/// The escalation rule of Section 4.5: a progress timeout amid a view
/// change targets the view after the one already being established, so
/// stragglers escalate monotonically instead of re-demanding view_ + 1.
inline ViewId next_view_target(bool in_viewchange, ViewId view, ViewId vc_target) {
  return ViewId{(in_viewchange ? vc_target.value : view.value) + 1};
}

/// Stall detector for the leader's retransmission tick: the head of the
/// log is considered stalled when two consecutive observations (one timer
/// interval apart) see the same unexecuted sequence number.
class StallWatermark {
 public:
  /// No head to watch (not leader, head executed, ...).
  void reset() { mark_ = kIdle; }

  /// Observes the current head; true when it has not moved since the
  /// previous observation.
  bool stalled_at(std::uint64_t head) {
    bool stalled = mark_ == head;
    mark_ = head;
    return stalled;
  }

 private:
  static constexpr std::uint64_t kIdle = UINT64_MAX;
  std::uint64_t mark_ = kIdle;
};

/// Rate limit for retried actions on fair-loss links: the first allow()
/// passes, further ones only after `interval` has elapsed.
class RetryGate {
 public:
  bool allow(Time now, Duration interval) {
    if (last_ >= 0 && now - last_ < interval) return false;
    last_ = now;
    return true;
  }

  void reset() { last_ = -1; }

 private:
  Time last_ = -1;
};

}  // namespace idem::core
