// LRU cache of recently rejected request bodies (paper Section 5.2).
//
// A rejection is *ambivalent* until the client has collected n rejects
// (Section 4.5): any other replica may have accepted the request, in which
// case it will be ordered and this replica must be able to supply the body
// to FETCH and agreement. The cache therefore keeps rejected bodies
// available, and a repeat rejection refreshes the entry's recency instead
// of letting it age out — as long as the client retries, the request can
// still execute.
#pragma once

#include <cstddef>
#include <list>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/ids.hpp"

namespace idem::core {

class RejectedCache {
 public:
  explicit RejectedCache(std::size_t capacity = 0) : capacity_(capacity) {}

  void set_capacity(std::size_t capacity) { capacity_ = capacity; }
  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return lru_.size(); }

  /// Inserts `id` at the front, or refreshes its LRU position when already
  /// cached (the repeat-rejection rule above). Evicts from the back.
  void insert(RequestId id, std::vector<std::byte> command) {
    if (capacity_ == 0) return;
    if (auto it = index_.find(id); it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      return;
    }
    lru_.emplace_front(id, std::move(command));
    index_[id] = lru_.begin();
    while (lru_.size() > capacity_) {
      index_.erase(lru_.back().first);
      lru_.pop_back();
    }
  }

  /// Drops `id`, typically because it was promoted to an accepted request.
  void erase(RequestId id) {
    if (auto it = index_.find(id); it != index_.end()) {
      lru_.erase(it->second);
      index_.erase(it);
    }
  }

  bool contains(RequestId id) const { return index_.contains(id); }

  const std::vector<std::byte>* find(RequestId id) const {
    auto it = index_.find(id);
    return it == index_.end() ? nullptr : &it->second->second;
  }

 private:
  std::size_t capacity_ = 0;
  std::list<std::pair<RequestId, std::vector<std::byte>>> lru_;
  std::unordered_map<RequestId,
                     std::list<std::pair<RequestId, std::vector<std::byte>>>::iterator>
      index_;
};

}  // namespace idem::core
