// Asynchronous state-machine execution for deployments that split a
// replica across a network thread and an execution thread.
//
// The replica stays single-threaded in its own view: it submits at most
// one batch at a time (the commands of one committed consensus instance)
// and does not touch the state machine again until the completion callback
// has run — the implementation must invoke `done` back on the replica's
// runtime thread. That one-in-flight contract is what makes the handoff a
// plain SPSC exchange and keeps snapshot()/restore() (checkpoints, state
// transfer) safe without locking inside the state machine.
//
// Simulation never sets an executor (IdemConfig::executor == nullptr), so
// the deterministic trajectories are untouched; real deployments opt in
// per replica (real::ExecutionThread).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "app/state_machine.hpp"
#include "common/time.hpp"

namespace idem::core {

class Executor {
 public:
  virtual ~Executor() = default;

  /// `done(results)` receives one result per command, in order, and must be
  /// invoked on the submitting replica's runtime thread.
  using Done = std::function<void(std::vector<std::vector<std::byte>> results)>;

  /// Executes `commands` against `sm` in order, then reports back. The
  /// caller guarantees no concurrent access to `sm` and no further
  /// execute() call until `done` has run. `due` is the earliest deadline of
  /// any command in the batch (0 = none): an executor shared by several
  /// submitters serves pending batches earliest-due first, mirroring the
  /// EDF service discipline of the delivery path; with a single submitter
  /// the one-in-flight contract makes it moot.
  virtual void execute(app::StateMachine& sm, std::vector<std::vector<std::byte>> commands,
                       Time due, Done done) = 0;
};

}  // namespace idem::core
