#include "core/acceptance.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace idem::core {

AqmPrioritized::AqmPrioritized(Params params) : params_(params) {
  if (params_.group_count == 0) params_.group_count = 1;
  if (params_.time_slice <= 0) params_.time_slice = 2 * kSecond;
}

std::size_t AqmPrioritized::group_of(ClientId cid, std::size_t r) const {
  if (r == 0) return 0;
  return (cid.value / r) % params_.group_count;
}

std::size_t AqmPrioritized::prioritized_group(Time now) const {
  auto slice = static_cast<std::uint64_t>(now / params_.time_slice);
  return slice % params_.group_count;
}

double AqmPrioritized::prf(RequestId id) const {
  std::uint64_t h = splitmix64(params_.prf_seed ^ splitmix64(id.cid.value) ^
                               splitmix64(id.onr.value * 0x9E3779B97F4A7C15ull));
  return static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);  // 53-bit mantissa
}

AcceptanceVerdict AqmPrioritized::evaluate(RequestId id, std::span<const std::byte>,
                                           const AcceptanceContext& ctx) {
  std::size_t r = ctx.reject_threshold;
  if (r == 0) return AcceptanceVerdict::no();
  std::size_t r_now = ctx.active_requests;

  // Hard cap: never exceed r concurrently accepted client requests.
  if (r_now >= r) return AcceptanceVerdict::no();

  // Below the AQM activation point everyone is accepted.
  auto start = static_cast<std::size_t>(params_.start_fraction * static_cast<double>(r));
  if (r_now < start) return AcceptanceVerdict::yes();

  // Prioritized clients are treated as in tail drop (accepted until r).
  if (group_of(id.cid, r) == prioritized_group(ctx.now)) return AcceptanceVerdict::yes();

  // Non-prioritized clients: reject with probability p = r_now / r, using
  // the shared PRF so replicas reach the same verdict for the same request.
  double p = static_cast<double>(r_now) / static_cast<double>(r);
  return prf(id) >= p ? AcceptanceVerdict::yes() : AcceptanceVerdict::no();
}

PriorityClasses::PriorityClasses(Classifier classifier, std::vector<double> admission_fractions)
    : classifier_(std::move(classifier)),
      admission_fractions_(std::move(admission_fractions)) {}

AcceptanceVerdict PriorityClasses::evaluate(RequestId id, std::span<const std::byte>,
                                            const AcceptanceContext& ctx) {
  std::size_t r = ctx.reject_threshold;
  if (r == 0) return AcceptanceVerdict::no();
  if (ctx.active_requests >= r) return AcceptanceVerdict::no();

  std::size_t klass = classifier_ ? classifier_(id.cid) : 0;
  double fraction =
      klass < admission_fractions_.size() ? admission_fractions_[klass] : 1.0;
  auto limit = static_cast<std::size_t>(fraction * static_cast<double>(r));
  return ctx.active_requests < limit ? AcceptanceVerdict::yes() : AcceptanceVerdict::no();
}

CostAware::CostAware(CostEstimator estimator, Duration cheap_cost, Duration expensive_cost,
                     double min_fraction)
    : estimator_(std::move(estimator)),
      cheap_cost_(cheap_cost),
      expensive_cost_(std::max(expensive_cost, cheap_cost + 1)),
      min_fraction_(std::clamp(min_fraction, 0.0, 1.0)) {}

std::size_t CostAware::admission_limit(Duration cost, std::size_t r) const {
  if (cost <= cheap_cost_) return r;
  double span = static_cast<double>(expensive_cost_ - cheap_cost_);
  double excess = std::min(1.0, static_cast<double>(cost - cheap_cost_) / span);
  double fraction = 1.0 - excess * (1.0 - min_fraction_);
  return static_cast<std::size_t>(std::llround(fraction * static_cast<double>(r)));
}

AcceptanceVerdict CostAware::evaluate(RequestId, std::span<const std::byte> command,
                                      const AcceptanceContext& ctx) {
  std::size_t r = ctx.reject_threshold;
  if (r == 0) return AcceptanceVerdict::no();
  if (ctx.active_requests >= r) return AcceptanceVerdict::no();
  Duration cost = estimator_ ? estimator_(command) : 0;
  return ctx.active_requests < admission_limit(cost, r) ? AcceptanceVerdict::yes()
                                                        : AcceptanceVerdict::no();
}

// ---------------------------------------------------------------------------
// DeadlineAware
// ---------------------------------------------------------------------------

namespace {

constexpr std::size_t kLastBucket = DeadlineAware::kBuckets - 1;

std::size_t bucket_of(Duration service) {
  if (service <= 0) return 0;
  auto bits = static_cast<std::size_t>(
      std::bit_width(static_cast<std::uint64_t>(service)));
  return std::min(bits - 1, kLastBucket);
}

Duration bucket_mid(std::size_t bucket) {
  // Midpoint of [2^b, 2^(b+1)): 1.5 * 2^b.
  return static_cast<Duration>(3ull << bucket) / 2;
}

}  // namespace

DeadlineAware::DeadlineAware(Params params, std::unique_ptr<AcceptanceTest> fallback)
    : params_(params), fallback_(std::move(fallback)) {
  if (params_.window <= 0) params_.window = 1 * kSecond;
  params_.quantile = std::clamp(params_.quantile, 0.0, 1.0);
  if (fallback_ == nullptr) fallback_ = std::make_unique<TailDrop>();
}

void DeadlineAware::maybe_rotate(Time now) {
  if (!epoch_started_) {
    epoch_started_ = true;
    epoch_start_ = now;
    return;
  }
  const Duration half = params_.window / 2;
  if (half <= 0) return;
  while (now - epoch_start_ >= half) {
    previous_ = current_;
    current_ = Epoch{};
    epoch_start_ += half;
    if (previous_.total == 0 && current_.total == 0) {
      // Both epochs drained: jump straight to now instead of spinning
      // through a long idle gap half-window by half-window.
      epoch_start_ = now;
      break;
    }
  }
}

void DeadlineAware::record_sample(Time now, Duration service) {
  maybe_rotate(now);
  ++current_.buckets[bucket_of(service)];
  ++current_.total;
}

void DeadlineAware::observe_execution(Time now, std::size_t backlog) {
  // A gap between consecutive completions approximates one request's
  // service time only while the replica stayed busy: the previous
  // completion must have left accepted work behind.
  if (have_completion_ && last_backlog_ > 0 && now >= last_completion_) {
    record_sample(now, now - last_completion_);
  } else {
    maybe_rotate(now);
  }
  have_completion_ = true;
  last_completion_ = now;
  last_backlog_ = backlog;
}

std::uint64_t DeadlineAware::sample_count(Time now) {
  maybe_rotate(now);
  return current_.total + previous_.total;
}

Duration DeadlineAware::service_quantile(Time now) {
  maybe_rotate(now);
  const std::uint64_t total = current_.total + previous_.total;
  if (total == 0) return 0;
  const auto rank = static_cast<std::uint64_t>(
      params_.quantile * static_cast<double>(total - 1));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += current_.buckets[b] + previous_.buckets[b];
    if (seen > rank) return bucket_mid(b);
  }
  return bucket_mid(kBuckets - 1);
}

Duration DeadlineAware::expected_wait(std::size_t depth, Time now) {
  return static_cast<Duration>(depth) * service_quantile(now);
}

AcceptanceVerdict DeadlineAware::evaluate(RequestId id, std::span<const std::byte> command,
                                          const AcceptanceContext& ctx) {
  // Deadline-less traffic is not ours to judge.
  if (ctx.deadline <= 0) return fallback_->evaluate(id, command, ctx);

  // The r cap binds regardless of slack: accepted slots are the protocol's
  // overload contract (r_max = n * r system-wide).
  if (ctx.reject_threshold == 0) return AcceptanceVerdict::no();
  if (ctx.active_requests >= ctx.reject_threshold) return AcceptanceVerdict::no();

  // Cold start: no evidence about service times yet, so no grounds to
  // declare any deadline un-meetable.
  if (sample_count(ctx.now) < params_.min_samples) return AcceptanceVerdict::yes();

  const Duration wait = expected_wait(ctx.active_requests + 1, ctx.now);
  if (ctx.deadline <= wait + params_.safety_margin) {
    return AcceptanceVerdict::no(RejectReason::DeadlineUnmeetable);
  }
  return AcceptanceVerdict::yes();
}

std::unique_ptr<AcceptanceTest> make_default_acceptance(const AcceptanceOptions& options,
                                                        std::size_t client_count) {
  AqmPrioritized::Params params;
  params.start_fraction = options.aqm_start_fraction;
  params.time_slice = options.aqm_time_slice;
  params.prf_seed = options.prf_seed;
  std::size_t r = options.reject_threshold;
  if (options.aqm_group_count > 0) {
    params.group_count = options.aqm_group_count;
  } else if (r > 0 && client_count > 0) {
    params.group_count = (client_count + r - 1) / r;
  } else {
    params.group_count = 1;
  }
  return std::make_unique<AqmPrioritized>(params);
}

}  // namespace idem::core
