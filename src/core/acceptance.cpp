#include "core/acceptance.hpp"

#include <algorithm>
#include <cmath>

namespace idem::core {

AqmPrioritized::AqmPrioritized(Params params) : params_(params) {
  if (params_.group_count == 0) params_.group_count = 1;
  if (params_.time_slice <= 0) params_.time_slice = 2 * kSecond;
}

std::size_t AqmPrioritized::group_of(ClientId cid, std::size_t r) const {
  if (r == 0) return 0;
  return (cid.value / r) % params_.group_count;
}

std::size_t AqmPrioritized::prioritized_group(Time now) const {
  auto slice = static_cast<std::uint64_t>(now / params_.time_slice);
  return slice % params_.group_count;
}

double AqmPrioritized::prf(RequestId id) const {
  std::uint64_t h = splitmix64(params_.prf_seed ^ splitmix64(id.cid.value) ^
                               splitmix64(id.onr.value * 0x9E3779B97F4A7C15ull));
  return static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);  // 53-bit mantissa
}

bool AqmPrioritized::accept(RequestId id, std::span<const std::byte>,
                            const AcceptanceContext& ctx) {
  std::size_t r = ctx.reject_threshold;
  if (r == 0) return false;
  std::size_t r_now = ctx.active_requests;

  // Hard cap: never exceed r concurrently accepted client requests.
  if (r_now >= r) return false;

  // Below the AQM activation point everyone is accepted.
  auto start = static_cast<std::size_t>(params_.start_fraction * static_cast<double>(r));
  if (r_now < start) return true;

  // Prioritized clients are treated as in tail drop (accepted until r).
  if (group_of(id.cid, r) == prioritized_group(ctx.now)) return true;

  // Non-prioritized clients: reject with probability p = r_now / r, using
  // the shared PRF so replicas reach the same verdict for the same request.
  double p = static_cast<double>(r_now) / static_cast<double>(r);
  return prf(id) >= p;
}

PriorityClasses::PriorityClasses(Classifier classifier, std::vector<double> admission_fractions)
    : classifier_(std::move(classifier)),
      admission_fractions_(std::move(admission_fractions)) {}

bool PriorityClasses::accept(RequestId id, std::span<const std::byte>,
                             const AcceptanceContext& ctx) {
  std::size_t r = ctx.reject_threshold;
  if (r == 0) return false;
  if (ctx.active_requests >= r) return false;

  std::size_t klass = classifier_ ? classifier_(id.cid) : 0;
  double fraction =
      klass < admission_fractions_.size() ? admission_fractions_[klass] : 1.0;
  auto limit = static_cast<std::size_t>(fraction * static_cast<double>(r));
  return ctx.active_requests < limit;
}

CostAware::CostAware(CostEstimator estimator, Duration cheap_cost, Duration expensive_cost,
                     double min_fraction)
    : estimator_(std::move(estimator)),
      cheap_cost_(cheap_cost),
      expensive_cost_(std::max(expensive_cost, cheap_cost + 1)),
      min_fraction_(std::clamp(min_fraction, 0.0, 1.0)) {}

std::size_t CostAware::admission_limit(Duration cost, std::size_t r) const {
  if (cost <= cheap_cost_) return r;
  double span = static_cast<double>(expensive_cost_ - cheap_cost_);
  double excess = std::min(1.0, static_cast<double>(cost - cheap_cost_) / span);
  double fraction = 1.0 - excess * (1.0 - min_fraction_);
  return static_cast<std::size_t>(std::llround(fraction * static_cast<double>(r)));
}

bool CostAware::accept(RequestId, std::span<const std::byte> command,
                       const AcceptanceContext& ctx) {
  std::size_t r = ctx.reject_threshold;
  if (r == 0) return false;
  if (ctx.active_requests >= r) return false;
  Duration cost = estimator_ ? estimator_(command) : 0;
  return ctx.active_requests < admission_limit(cost, r);
}

std::unique_ptr<AcceptanceTest> make_default_acceptance(const AcceptanceOptions& options,
                                                        std::size_t client_count) {
  AqmPrioritized::Params params;
  params.start_fraction = options.aqm_start_fraction;
  params.time_slice = options.aqm_time_slice;
  params.prf_seed = options.prf_seed;
  std::size_t r = options.reject_threshold;
  if (options.aqm_group_count > 0) {
    params.group_count = options.aqm_group_count;
  } else if (r > 0 && client_count > 0) {
    params.group_count = (client_count + r - 1) / r;
  } else {
    params.group_count = 1;
  }
  return std::make_unique<AqmPrioritized>(params);
}

}  // namespace idem::core
