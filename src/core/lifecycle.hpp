// Request-lifecycle trace points, hoisted out of the protocol replicas.
//
// Every protocol emits the same span skeleton — accept verdict, proposal,
// decision quorum, execution, reply — so the exporters and the fig6/fig10
// plots work on any protocol's trace unchanged. Keeping the emission
// helpers here (instead of four copies of the IDEM_TRACE incantations)
// makes that invariant structural: a new protocol gets identical lifecycle
// spans by calling these.
//
// All helpers are passive pass-throughs to IDEM_TRACE: they must never
// change the simulation trajectory.
#pragma once

#include <cstdint>

#include "common/ids.hpp"
#include "common/reject_reason.hpp"
#include "common/time.hpp"
#include "obs/trace.hpp"

namespace idem::core::lifecycle {

/// Accepts keep arg == 1 exactly (legacy encoding, pinned by trace
/// consumers); rejects carry their RejectReason in arg bits 8+.
inline void accept_verdict([[maybe_unused]] obs::TraceRecorder* trace,
                           [[maybe_unused]] Time now, [[maybe_unused]] std::uint32_t me,
                           [[maybe_unused]] RequestId id, [[maybe_unused]] bool accepted,
                           [[maybe_unused]] RejectReason reason = RejectReason::None) {
  IDEM_TRACE(trace, now, obs::TraceEventKind::AcceptVerdict, me, id,
             pack_accept_verdict(accepted, reason));
}

inline void forward_accepted([[maybe_unused]] obs::TraceRecorder* trace,
                             [[maybe_unused]] Time now, [[maybe_unused]] std::uint32_t me,
                             [[maybe_unused]] RequestId id) {
  IDEM_TRACE(trace, now, obs::TraceEventKind::ForwardAccepted, me, id);
}

inline void require_noted([[maybe_unused]] obs::TraceRecorder* trace,
                          [[maybe_unused]] Time now, [[maybe_unused]] std::uint32_t me,
                          [[maybe_unused]] RequestId id, [[maybe_unused]] std::uint32_t voter) {
  IDEM_TRACE(trace, now, obs::TraceEventKind::RequireNoted, me, id, voter);
}

inline void proposed([[maybe_unused]] obs::TraceRecorder* trace, [[maybe_unused]] Time now,
                     [[maybe_unused]] std::uint32_t me, [[maybe_unused]] RequestId id,
                     [[maybe_unused]] std::uint64_t sqn) {
  IDEM_TRACE(trace, now, obs::TraceEventKind::Proposed, me, id, sqn);
}

inline void propose_received([[maybe_unused]] obs::TraceRecorder* trace,
                             [[maybe_unused]] Time now, [[maybe_unused]] std::uint32_t me,
                             [[maybe_unused]] std::uint64_t sqn) {
  IDEM_TRACE(trace, now, obs::TraceEventKind::ProposeReceived, me, sqn);
}

/// Emits the decision-quorum event once per slot (any protocol: commit
/// votes, accept votes, ...). `votes` is the current vote count.
template <typename Slot>
inline void decision_quorum([[maybe_unused]] obs::TraceRecorder* trace,
                            [[maybe_unused]] Time now, [[maybe_unused]] std::uint32_t me,
                            [[maybe_unused]] std::uint64_t sqn, Slot& slot, std::size_t votes,
                            std::size_t quorum) {
  if (slot.quorum_traced || votes < quorum) return;
  slot.quorum_traced = true;
  IDEM_TRACE(trace, now, obs::TraceEventKind::CommitQuorum, me, sqn);
}

inline void executed([[maybe_unused]] obs::TraceRecorder* trace, [[maybe_unused]] Time now,
                     [[maybe_unused]] std::uint32_t me, [[maybe_unused]] RequestId id,
                     [[maybe_unused]] std::uint64_t sqn) {
  IDEM_TRACE(trace, now, obs::TraceEventKind::Executed, me, id, sqn);
}

inline void reply_sent([[maybe_unused]] obs::TraceRecorder* trace, [[maybe_unused]] Time now,
                       [[maybe_unused]] std::uint32_t me, [[maybe_unused]] RequestId id) {
  IDEM_TRACE(trace, now, obs::TraceEventKind::ReplySent, me, id);
}

inline void viewchange_start([[maybe_unused]] obs::TraceRecorder* trace,
                             [[maybe_unused]] Time now, [[maybe_unused]] std::uint32_t me,
                             [[maybe_unused]] std::uint64_t target) {
  IDEM_TRACE(trace, now, obs::TraceEventKind::ViewChangeStart, me, target);
}

inline void viewchange_done([[maybe_unused]] obs::TraceRecorder* trace,
                            [[maybe_unused]] Time now, [[maybe_unused]] std::uint32_t me,
                            [[maybe_unused]] std::uint64_t view) {
  IDEM_TRACE(trace, now, obs::TraceEventKind::ViewChangeDone, me, view);
}

}  // namespace idem::core::lifecycle
