// Per-replica live-telemetry surface (real mode only).
//
// A replica's hot path updates live series through this struct: every
// series is pre-registered at attach() time so updates are id-indexed,
// and a default-constructed (shard == nullptr) instance no-ops, which is
// what the simulator always runs with — live telemetry cannot perturb
// simulated trajectories by construction.
#pragma once

#include <string>

#include "common/reject_reason.hpp"
#include "common/time.hpp"
#include "obs/live_metrics.hpp"

namespace idem::core {

struct LiveTelemetry {
  obs::LiveShard* shard = nullptr;  ///< borrowed from the process hub; may be null
  obs::LiveShard::SeriesId accepts = 0;
  obs::LiveShard::SeriesId replies = 0;
  obs::LiveShard::SeriesId rejects[kRejectReasonCount] = {};
  obs::LiveShard::SeriesId reply_latency = 0;
  obs::LiveShard::SeriesId deadline_miss = 0;

  /// Registers the replica series on `shard` (null → inert instance).
  /// Identical names across replicas aggregate cluster-wide in snapshots.
  /// `labels` ("group=0") prefixes every series' label set, so a sharded
  /// deployment's groups stay distinguishable on one shared hub.
  static LiveTelemetry attach(obs::LiveShard* shard, const std::string& labels = "") {
    LiveTelemetry t;
    t.shard = shard;
    if (shard == nullptr) return t;
    const std::string plain = labels.empty() ? "" : "[" + labels + "]";
    t.accepts = shard->counter("accepts" + plain);
    t.replies = shard->counter("replies" + plain);
    for (std::size_t i = 0; i < kRejectReasonCount; ++i) {
      const std::string reason = to_label(static_cast<RejectReason>(i));
      t.rejects[i] = shard->counter(labels.empty()
                                        ? "rejects[reason=" + reason + "]"
                                        : "rejects[" + labels + ",reason=" + reason + "]");
    }
    t.reply_latency = shard->histogram("reply_latency" + plain);
    t.deadline_miss = shard->counter("deadline_miss" + plain);
    return t;
  }

  bool enabled() const { return shard != nullptr; }

  void count_accept() {
    if (shard != nullptr) shard->add(accepts);
  }
  void count_reject(RejectReason reason) {
    if (shard != nullptr) shard->add(rejects[static_cast<std::size_t>(reason)]);
  }
  /// Server-side reply latency: REPLY sent minus REQUEST arrival.
  void record_reply_latency(Duration value) {
    if (shard != nullptr) {
      shard->add(replies);
      shard->record(reply_latency, value);
    }
  }
  /// A REPLY left after the request's deadline had already passed.
  void count_deadline_miss() {
    if (shard != nullptr) shard->add(deadline_miss);
  }
};

}  // namespace idem::core
