// View tracking and VIEWCHANGE collection (paper Section 4.5), shared by
// every protocol with leader fail-over.
//
// The engine owns the pure state machine: current view, in-progress
// target, and the per-sender store of the newest VIEWCHANGE message. The
// protocol keeps the policy around it — when to start a view change, what
// the messages carry, and the new leader's log merge (driven through
// for_each_matching). Template parameter: the protocol's VIEWCHANGE
// message type (it must expose `.target`, a ViewId).
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/ids.hpp"
#include "core/timers.hpp"

namespace idem::core {

template <typename VCMessage>
class ViewEngine {
 public:
  ViewId view() const { return view_; }
  bool in_viewchange() const { return in_viewchange_; }
  ViewId target() const { return vc_target_; }

  /// The view whose leader new intake traffic should be routed to: the
  /// target amid a view change (the old leader is presumed dead).
  ViewId leader_view() const { return in_viewchange_ ? vc_target_ : view_; }

  /// Escalation target for a fresh progress timeout.
  ViewId next_target() const { return next_view_target(in_viewchange_, view_, vc_target_); }

  enum class Observe {
    Ignore,   ///< stale view, or current view while a view change is pending
    Process,  ///< current view, business as usual
    Enter,    ///< newer view: the caller must enter it, then process
  };

  /// Classifies a view stamped on an incoming protocol message.
  Observe observe(ViewId view) const {
    if (view < view_) return Observe::Ignore;
    if (view == view_) return in_viewchange_ ? Observe::Ignore : Observe::Process;
    return Observe::Enter;
  }

  /// Starts (or escalates to) a view change toward `target`. False when
  /// the target is stale or already being established.
  bool begin(ViewId target) {
    if (target <= view_) return false;
    if (in_viewchange_ && vc_target_ >= target) return false;
    in_viewchange_ = true;
    vc_target_ = target;
    return true;
  }

  /// Keeps the newest VIEWCHANGE per sender (by target view).
  void store(const VCMessage& viewchange) {
    auto it = store_.find(viewchange.from.value);
    if (it == store_.end() || it->second.target <= viewchange.target) {
      store_[viewchange.from.value] = viewchange;
    }
  }

  /// Unconditionally records our own VIEWCHANGE.
  void store_own(std::uint32_t me, const VCMessage& viewchange) { store_[me] = viewchange; }

  /// Replicas currently demanding exactly `target`.
  std::size_t matching(ViewId target) const {
    std::size_t count = 0;
    for (const auto& [from, stored] : store_) {
      if (stored.target == target) ++count;
    }
    return count;
  }

  /// Invokes `f` on every stored VIEWCHANGE demanding exactly `target` —
  /// the new leader's window merge.
  template <typename F>
  void for_each_matching(ViewId target, F&& f) const {
    for (const auto& [from, stored] : store_) {
      if (stored.target == target) f(stored);
    }
  }

  /// A peer demands a higher target than the one we are establishing:
  /// adopt it, or independent timeout escalation chases forever.
  bool should_escalate(ViewId target) const { return in_viewchange_ && target > vc_target_; }

  /// Already part of the view change toward (at least) `target`.
  bool joined(ViewId target) const { return in_viewchange_ && vc_target_ >= target; }

  /// Completes the view change: adopts `view` and prunes obsolete
  /// VIEWCHANGE messages.
  void enter(ViewId view) {
    view_ = view;
    in_viewchange_ = false;
    for (auto it = store_.begin(); it != store_.end();) {
      if (it->second.target <= view_) {
        it = store_.erase(it);
      } else {
        ++it;
      }
    }
  }

 private:
  ViewId view_;
  bool in_viewchange_ = false;
  ViewId vc_target_;
  std::unordered_map<std::uint32_t, VCMessage> store_;  ///< newest per sender
};

}  // namespace idem::core
