// Per-client session state shared by every protocol in this tree.
//
// All four replicas need the same two maps: the highest executed operation
// number per client (duplicate suppression — a slot may commit a request
// that already executed under an earlier slot) and the last reply per
// client (client retransmissions are answered from this cache and must
// never trigger re-execution). This class is the single implementation of
// that pair; the protocols differ only in *when* they consult it.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>

#include "common/ids.hpp"
#include "consensus/messages.hpp"

namespace idem::core {

class ClientTable {
 public:
  /// True when `id` — or a newer operation of the same client — has
  /// already executed here.
  bool executed(RequestId id) const {
    auto it = last_exec_.find(id.cid.value);
    return it != last_exec_.end() && id.onr.value <= it->second;
  }

  /// Highest executed operation number of `cid`, if any.
  std::optional<OpNum> last_executed(ClientId cid) const {
    auto it = last_exec_.find(cid.value);
    if (it == last_exec_.end()) return std::nullopt;
    return OpNum{it->second};
  }

  /// The cached reply for exactly `id`, or null. An older reply of the
  /// same client must not answer a newer retransmission, so the id is
  /// matched in full.
  std::shared_ptr<const msg::Reply> cached_reply(RequestId id) const {
    auto it = last_reply_.find(id.cid.value);
    if (it != last_reply_.end() && it->second->id == id) return it->second;
    return nullptr;
  }

  /// Records an execution: advances the client's session and caches the
  /// reply for retransmissions.
  void record(RequestId id, std::shared_ptr<const msg::Reply> reply) {
    last_exec_[id.cid.value] = id.onr.value;
    last_reply_[id.cid.value] = std::move(reply);
  }

  /// Checkpoint restore: adopt the newer of our and the checkpoint's
  /// per-client progress.
  void merge_executed(ClientId cid, OpNum onr) {
    auto& entry = last_exec_[cid.value];
    if (onr.value > entry) entry = onr.value;
  }

  /// Cached replies are stale after a snapshot restore; clients retransmit
  /// if they still need one.
  void clear_replies() { last_reply_.clear(); }

  /// The raw session map (cid -> onr), e.g. for checkpoint metadata.
  const std::unordered_map<std::uint64_t, std::uint64_t>& sessions() const {
    return last_exec_;
  }

 private:
  std::unordered_map<std::uint64_t, std::uint64_t> last_exec_;  // cid -> onr
  std::unordered_map<std::uint64_t, std::shared_ptr<const msg::Reply>> last_reply_;
};

}  // namespace idem::core
