// CPU cost model for protocol message handling.
//
// Each replica charges a fixed per-message cost plus a size-proportional
// term for every message it processes (deserialization, bookkeeping), on
// top of application execution costs. The defaults are calibrated so a
// 3-replica cluster saturates around the paper's ~43k requests/s with 50
// closed-loop clients (see EXPERIMENTS.md for the calibration numbers).
#pragma once

#include <cmath>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "sim/payload.hpp"

namespace idem::consensus {

/// Heavy-tail service-cost distribution (workload knob for deadline and
/// admission experiments). None keeps the classic uniform-jitter model
/// and draws nothing extra from the RNG stream, so default trajectories
/// stay pinned.
enum class TailShape {
  None,       ///< uniform jitter + stragglers only (default)
  Pareto,     ///< multiplier scale/U^(1/alpha): polynomial tail
  LogNormal,  ///< multiplier exp(N(mu, sigma)): subexponential tail
};

struct CostModel {
  Duration per_message = 1500;  // 1.5 us
  double ns_per_byte = 4.0;
  Duration send_per_message = 1 * kMicrosecond;
  double send_ns_per_byte = 1.0;
  /// Multiplicative service-time variability: each cost is scaled by a
  /// uniform factor in [1-jitter, 1+jitter]. Real servers see this from
  /// scheduling, cache misses and GC; it also produces the latency
  /// standard deviations the paper's error bars show.
  double jitter = 0.25;
  /// Occasional slow operations (cache misses, allocator stalls, GC-like
  /// pauses): with `straggler_prob` a cost is multiplied by
  /// `straggler_factor`. Queueing amplifies these under load, producing
  /// the growing latency variance the paper's error bars show (Figure 2).
  double straggler_prob = 0.01;
  double straggler_factor = 6.0;

  /// Heavy-tailed per-op service costs: with `tail_prob`, a cost draws an
  /// extra multiplier from the configured tail distribution. Unlike the
  /// bounded straggler knob this produces the unbounded tails (Pareto /
  /// log-normal) that make naive FIFO queues blow up p99.9 — the regime
  /// where deadline-aware admission and EDF earn their keep.
  TailShape tail = TailShape::None;
  double tail_prob = 0.05;
  double pareto_alpha = 1.5;   ///< shape; <2 = infinite variance
  double pareto_scale = 4.0;   ///< tail multiplier floor
  double lognormal_mu = 1.5;   ///< of the multiplier's natural log
  double lognormal_sigma = 1.0;

  double tail_multiplier(Rng& rng) const {
    if (tail == TailShape::Pareto) {
      double u = rng.next_double();
      if (u <= 0.0) u = 1.0 / 4294967296.0;
      return pareto_scale * std::pow(u, -1.0 / pareto_alpha);
    }
    return std::exp(rng.normal(lognormal_mu, lognormal_sigma));
  }

  Duration apply_jitter(Duration base, Rng& rng) const {
    if (base <= 0) return base;
    if (jitter <= 0 && tail == TailShape::None) return base;
    double factor = 1.0;
    if (jitter > 0) {
      factor = 1.0 + jitter * (2.0 * rng.next_double() - 1.0);
      if (straggler_prob > 0 && rng.next_double() < straggler_prob) {
        factor *= straggler_factor;
      }
    }
    if (tail != TailShape::None && tail_prob > 0 && rng.next_double() < tail_prob) {
      factor *= tail_multiplier(rng);
    }
    return static_cast<Duration>(static_cast<double>(base) * factor);
  }

  Duration cost(const sim::Payload& message, Rng& rng) const {
    Duration base = per_message + static_cast<Duration>(
                                      ns_per_byte * static_cast<double>(message.wire_size()));
    return apply_jitter(base, rng);
  }

  Duration send_cost(const sim::Payload& message, Rng& rng) const {
    Duration base = send_per_message +
                    static_cast<Duration>(send_ns_per_byte *
                                          static_cast<double>(message.wire_size()));
    return apply_jitter(base, rng);
  }
};

}  // namespace idem::consensus
