// Protocol-independent client interface.
//
// The harness drives every protocol's client through this interface so
// experiments (closed-loop load, rejection backoff, latency recording)
// are identical across IDEM, Paxos and the SMaRt analog.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "common/ids.hpp"
#include "common/reject_reason.hpp"
#include "common/time.hpp"

namespace idem::consensus {

/// Final state of one operation, mirroring the client-side semantics of
/// the paper (Section 5.3): a REPLY (success), an abort after rejection
/// notifications (ambivalence/failure), or a local timeout.
struct Outcome {
  enum class Kind {
    Reply,     ///< success: the request was agreed on and executed
    Rejected,  ///< aborted after n-f (ambivalence) or n (failure) REJECTs
    Timeout,   ///< gave up without conclusive information
  };

  Kind kind = Kind::Reply;
  Time issued = 0;
  Time completed = 0;
  std::vector<std::byte> result;   ///< Reply only
  std::size_t rejects_seen = 0;
  bool definitive_failure = false;  ///< true when all n replicas rejected

  /// Sharded deployments: a WrongShard REJECT aborts the operation
  /// immediately (Kind::Rejected) and reports the rejecting replica's map
  /// epoch + the group that owns the key, so a router can refresh its map
  /// and re-issue. None for ordinary rejections.
  RejectReason redirect_reason = RejectReason::None;
  std::uint64_t redirect_epoch = 0;
  std::uint32_t redirect_group = 0;
  bool wrong_shard() const { return redirect_reason == RejectReason::WrongShard; }

  /// The latency budget this operation was issued with (0 = none). A
  /// Reply that lands after the budget is a deadline miss: the request
  /// executed, but too late to be useful to the caller.
  Duration deadline = 0;

  Duration latency() const { return completed - issued; }
  bool deadline_missed() const {
    return kind == Kind::Reply && deadline > 0 && latency() > deadline;
  }
};

class ServiceClient {
 public:
  virtual ~ServiceClient() = default;

  using Callback = std::function<void(const Outcome&)>;

  /// Submits one operation. At most one operation may be outstanding per
  /// client (paper Section 4.3); `callback` fires exactly once.
  virtual void invoke(std::vector<std::byte> command, Callback callback) = 0;

  /// Latency budget attached to subsequent invoke()s (0 = none). Carried
  /// on the wire when the deadline extension is armed; deadline-aware
  /// replicas reject requests whose budget cannot be met and EDF
  /// disciplines order by it. Default ignores the budget.
  virtual void set_request_deadline(Duration) {}

  virtual ClientId client_id() const = 0;
  virtual bool busy() const = 0;
};

}  // namespace idem::consensus
