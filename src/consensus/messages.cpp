#include "consensus/messages.hpp"

#include <atomic>
#include <memory>

namespace idem::msg {

namespace {

// Process-wide, set once by real-mode entry points before loop threads
// exist; relaxed loads keep the encode hot path branch-predictable and
// TSan-clean.
std::atomic<bool> g_wire_reject_reasons{false};
std::atomic<bool> g_wire_request_deadlines{false};

}  // namespace

void set_wire_reject_reasons(bool enabled) {
  g_wire_reject_reasons.store(enabled, std::memory_order_relaxed);
}

bool wire_reject_reasons() { return g_wire_reject_reasons.load(std::memory_order_relaxed); }

void set_wire_request_deadlines(bool enabled) {
  g_wire_request_deadlines.store(enabled, std::memory_order_relaxed);
}

bool wire_request_deadlines() {
  return g_wire_request_deadlines.load(std::memory_order_relaxed);
}

namespace {

template <typename M>
std::shared_ptr<const Message> make(ByteReader& r) {
  return std::make_shared<const M>(M::decode_body(r));
}

}  // namespace

std::shared_ptr<const Message> decode(std::span<const std::byte> data) {
  ByteReader r(data);
  auto type = static_cast<Type>(r.u8());
  switch (type) {
    case Type::Request: return make<Request>(r);
    case Type::Reply: return make<Reply>(r);
    case Type::Reject: return make<Reject>(r);
    case Type::Require: return make<Require>(r);
    case Type::Propose: return make<Propose>(r);
    case Type::Commit: return make<Commit>(r);
    case Type::Forward: return make<Forward>(r);
    case Type::Fetch: return make<Fetch>(r);
    case Type::ViewChange: return make<ViewChange>(r);
    case Type::StateRequest: return make<StateRequest>(r);
    case Type::StateResponse: return make<StateResponse>(r);
    case Type::PaxosPropose: return make<PaxosPropose>(r);
    case Type::PaxosAccept: return make<PaxosAccept>(r);
    case Type::PaxosViewChange: return make<PaxosViewChange>(r);
    case Type::PaxosHeartbeat: return make<PaxosHeartbeat>(r);
    case Type::SmartPropose: return make<SmartPropose>(r);
    case Type::SmartWrite: return make<SmartWrite>(r);
    case Type::SmartAccept: return make<SmartAccept>(r);
  }
  throw CodecError("unknown message type " + std::to_string(static_cast<int>(type)));
}

}  // namespace idem::msg
