#include "consensus/messages.hpp"

#include <memory>

namespace idem::msg {

namespace {

template <typename M>
std::shared_ptr<const Message> make(ByteReader& r) {
  return std::make_shared<const M>(M::decode_body(r));
}

}  // namespace

std::shared_ptr<const Message> decode(std::span<const std::byte> data) {
  ByteReader r(data);
  auto type = static_cast<Type>(r.u8());
  switch (type) {
    case Type::Request: return make<Request>(r);
    case Type::Reply: return make<Reply>(r);
    case Type::Reject: return make<Reject>(r);
    case Type::Require: return make<Require>(r);
    case Type::Propose: return make<Propose>(r);
    case Type::Commit: return make<Commit>(r);
    case Type::Forward: return make<Forward>(r);
    case Type::Fetch: return make<Fetch>(r);
    case Type::ViewChange: return make<ViewChange>(r);
    case Type::StateRequest: return make<StateRequest>(r);
    case Type::StateResponse: return make<StateResponse>(r);
    case Type::PaxosPropose: return make<PaxosPropose>(r);
    case Type::PaxosAccept: return make<PaxosAccept>(r);
    case Type::PaxosViewChange: return make<PaxosViewChange>(r);
    case Type::PaxosHeartbeat: return make<PaxosHeartbeat>(r);
    case Type::SmartPropose: return make<SmartPropose>(r);
    case Type::SmartWrite: return make<SmartWrite>(r);
    case Type::SmartAccept: return make<SmartAccept>(r);
  }
  throw CodecError("unknown message type " + std::to_string(static_cast<int>(type)));
}

}  // namespace idem::msg
