// Wire messages for all protocols in this repository.
//
// Every message derives sim::Payload, carries a full binary encoding
// (exercised by tests and used for byte accounting), and caches its wire
// size. IDEM messages follow Sections 4-5 of the paper; the Paxos and
// SMaRt messages serve the baseline protocols.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/codec.hpp"
#include "common/ids.hpp"
#include "common/reject_reason.hpp"
#include "common/time.hpp"
#include "sim/payload.hpp"

namespace idem::msg {

// ---------------------------------------------------------------------------
// Real-mode wire extension gate
//
// REJECT carries its RejectReason as a trailing byte — but only when this
// process-wide flag is set. The simulator's cost model charges
// per_message + ns_per_byte * wire_size() for every send, so growing
// REJECT unconditionally would perturb every pinned simulated trajectory
// (determinism tests, the hash-stamped replay corpus). Real-mode entry
// points (RealCluster, idem_server, run_load) set the flag before any
// loop thread starts; decoding tolerates both forms unconditionally, so
// mixed deployments interoperate.
// ---------------------------------------------------------------------------

/// Enables the REJECT reason byte on the wire for this process. Call
/// before protocol threads start (reads are relaxed-atomic).
void set_wire_reject_reasons(bool enabled);
bool wire_reject_reasons();

/// Enables the REQUEST deadline varint on the wire, same contract as the
/// REJECT reason byte: armed once by real-mode entry points, tolerant
/// decode, off by default so simulated trajectories stay pinned.
void set_wire_request_deadlines(bool enabled);
bool wire_request_deadlines();

enum class Type : std::uint8_t {
  // Client <-> replica (shared by all protocols)
  Request = 1,
  Reply = 2,
  Reject = 3,  // IDEM + Paxos_LBR: proactive rejection notification
  // IDEM replica <-> replica
  Require = 10,
  Propose = 11,
  Commit = 12,
  Forward = 13,
  Fetch = 14,
  ViewChange = 15,
  StateRequest = 16,
  StateResponse = 17,
  // Paxos (Kirsch/Amir-style, leader distributes full requests)
  PaxosPropose = 30,
  PaxosAccept = 31,
  PaxosViewChange = 32,
  PaxosHeartbeat = 33,
  // BFT-SMaRt-analog (CFT mode)
  SmartPropose = 40,
  SmartWrite = 41,
  SmartAccept = 42,
};

// ---------------------------------------------------------------------------
// Shared item codec
//
// Several messages carry "a count followed by items", where an item is
// either a bare RequestId (IDEM agrees on ids) or a full Request (the
// baselines ship bodies). One overload set keeps the wire format in one
// place; encode_items/decode_items add the varint length prefix.
// ---------------------------------------------------------------------------

struct Request;  // defined below

inline void encode_item(ByteWriter& w, RequestId id) { w.request_id(id); }
inline void decode_item(ByteReader& r, RequestId& id) { id = r.request_id(); }
void encode_item(ByteWriter& w, const Request& req);
void decode_item(ByteReader& r, Request& req);

template <typename Item>
void encode_items(ByteWriter& w, const std::vector<Item>& items) {
  w.varint(items.size());
  for (const Item& item : items) encode_item(w, item);
}

template <typename Item>
std::vector<Item> decode_items(ByteReader& r) {
  auto n = r.varint();
  std::vector<Item> items;
  items.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) decode_item(r, items.emplace_back());
  return items;
}

/// Base for all messages: encodes lazily, caches the wire size.
class Message : public sim::Payload {
 public:
  virtual Type type() const = 0;

  std::size_t wire_size() const final {
    if (!size_) size_ = encode().size();
    return *size_;
  }

  /// Full binary encoding including the leading type byte. Also primes the
  /// wire-size cache, and uses it when already known: the network layer
  /// calls wire_size() on every send, so a later encode of the same message
  /// serializes into an exactly-sized buffer in one allocation.
  std::vector<std::byte> encode() const {
    ByteWriter w;
    if (size_) w.reserve(*size_);
    w.u8(static_cast<std::uint8_t>(type()));
    encode_body(w);
    if (!size_) size_ = w.size();
    return w.take();
  }

 protected:
  virtual void encode_body(ByteWriter& w) const = 0;

 private:
  mutable std::optional<std::size_t> size_;
};

// ---------------------------------------------------------------------------
// Client-facing messages
// ---------------------------------------------------------------------------

/// <REQUEST, id, command[, deadline]> — multicast by IDEM/SMaRt clients to
/// all replicas, sent by Paxos clients to the (presumed) leader.
///
/// `deadline` is the client's latency budget for this attempt, in
/// nanoseconds relative to transmission (0 = none). It rides the wire only
/// when set_wire_request_deadlines() armed it (real mode) *and* it is
/// nonzero; the decoder accepts both forms, so a deadline-less binary
/// interoperates. In sim the shared message object carries the field
/// directly, exactly like Reject's map_epoch. Embedded Requests
/// (FORWARD / baseline proposals) never carry it: by then admission has
/// happened and agreement must not drop the body.
struct Request final : Message {
  RequestId id;
  std::vector<std::byte> command;
  Duration deadline = 0;

  Request() = default;
  Request(RequestId id_, std::vector<std::byte> command_, Duration deadline_ = 0)
      : id(id_), command(std::move(command_)), deadline(deadline_) {}

  Type type() const override { return Type::Request; }
  std::string kind() const override { return "REQUEST"; }
  void encode_body(ByteWriter& w) const override {
    w.request_id(id);
    w.bytes(command);
    if (wire_request_deadlines() && deadline > 0) {
      w.varint(static_cast<std::uint64_t>(deadline));
    }
  }
  static Request decode_body(ByteReader& r) {
    Request m;
    m.id = r.request_id();
    m.command = r.bytes();
    if (r.remaining() > 0) m.deadline = static_cast<Duration>(r.varint());
    return m;
  }
};

inline void encode_item(ByteWriter& w, const Request& req) {
  w.request_id(req.id);
  w.bytes(req.command);
}
inline void decode_item(ByteReader& r, Request& req) {
  req.id = r.request_id();
  req.command = r.bytes();
}

/// <REPLY, id, result>
struct Reply final : Message {
  RequestId id;
  std::vector<std::byte> result;

  Reply() = default;
  Reply(RequestId id_, std::vector<std::byte> result_) : id(id_), result(std::move(result_)) {}

  Type type() const override { return Type::Reply; }
  std::string kind() const override { return "REPLY"; }
  void encode_body(ByteWriter& w) const override {
    w.request_id(id);
    w.bytes(result);
  }
  static Reply decode_body(ByteReader& r) {
    Reply m;
    m.id = r.request_id();
    m.result = r.bytes();
    return m;
  }
};

/// <REJECT, id[, reason]> — a replica opted not to process this request
/// any further. The reason byte is appended only when
/// set_wire_reject_reasons() armed it (real mode); the decoder accepts
/// both forms, and absent/unknown bytes decode as RejectReason::None.
struct Reject final : Message {
  RequestId id;
  RejectReason reason = RejectReason::None;
  /// WrongShard only: epoch of the map the rejecting replica holds and the
  /// group that owns the key under that map. Rides the wire after the
  /// reason byte (real mode); in sim the message object carries them as-is.
  std::uint64_t map_epoch = 0;
  std::uint32_t home_group = 0;

  Reject() = default;
  explicit Reject(RequestId id_, RejectReason reason_ = RejectReason::None)
      : id(id_), reason(reason_) {}

  Type type() const override { return Type::Reject; }
  std::string kind() const override { return "REJECT"; }
  void encode_body(ByteWriter& w) const override {
    w.request_id(id);
    if (wire_reject_reasons()) {
      w.u8(static_cast<std::uint8_t>(reason));
      if (reason == RejectReason::WrongShard) {
        w.varint(map_epoch);
        w.varint(home_group);
      }
    }
  }
  static Reject decode_body(ByteReader& r) {
    Reject m;
    m.id = r.request_id();
    if (r.remaining() > 0) m.reason = reject_reason_from(r.u8());
    if (m.reason == RejectReason::WrongShard && r.remaining() > 0) {
      m.map_epoch = r.varint();
      m.home_group = static_cast<std::uint32_t>(r.varint());
    }
    return m;
  }
};

// ---------------------------------------------------------------------------
// IDEM replica-to-replica messages (Section 4.3)
// ---------------------------------------------------------------------------

/// <REQUIRE, ids> — replica tells the leader it has accepted these requests.
/// Batching several ids into one REQUIRE is an aggregation optimization;
/// semantically each id counts as its own REQUIRE.
struct Require final : Message {
  ReplicaId from;
  std::vector<RequestId> ids;

  Type type() const override { return Type::Require; }
  std::string kind() const override { return "REQUIRE"; }
  void encode_body(ByteWriter& w) const override {
    w.u32(from.value);
    encode_items(w, ids);
  }
  static Require decode_body(ByteReader& r) {
    Require m;
    m.from.value = r.u32();
    m.ids = decode_items<RequestId>(r);
    return m;
  }
};

/// <PROPOSE, ids, sqn, v> — the leader binds a batch of request ids to a
/// sequence number. Agreement is on ids, not full requests (Section 4.2).
struct Propose final : Message {
  ViewId view;
  SeqNum sqn;
  std::vector<RequestId> ids;

  Type type() const override { return Type::Propose; }
  std::string kind() const override { return "PROPOSE"; }
  void encode_body(ByteWriter& w) const override {
    w.varint(view.value);
    w.varint(sqn.value);
    encode_items(w, ids);
  }
  static Propose decode_body(ByteReader& r) {
    Propose m;
    m.view.value = r.varint();
    m.sqn.value = r.varint();
    m.ids = decode_items<RequestId>(r);
    return m;
  }
};

/// <COMMIT, ids, sqn, v> — echoes the proposal so receivers that missed the
/// PROPOSE still learn the binding.
struct Commit final : Message {
  ReplicaId from;
  ViewId view;
  SeqNum sqn;
  std::vector<RequestId> ids;

  Type type() const override { return Type::Commit; }
  std::string kind() const override { return "COMMIT"; }
  void encode_body(ByteWriter& w) const override {
    w.u32(from.value);
    w.varint(view.value);
    w.varint(sqn.value);
    encode_items(w, ids);
  }
  static Commit decode_body(ByteReader& r) {
    Commit m;
    m.from.value = r.u32();
    m.view.value = r.varint();
    m.sqn.value = r.varint();
    m.ids = decode_items<RequestId>(r);
    return m;
  }
};

/// Relays full requests to replicas that may not own them (Section 5.2).
struct Forward final : Message {
  ReplicaId from;
  std::vector<Request> requests;

  Type type() const override { return Type::Forward; }
  std::string kind() const override { return "FORWARD"; }
  void encode_body(ByteWriter& w) const override {
    w.u32(from.value);
    encode_items(w, requests);
  }
  static Forward decode_body(ByteReader& r) {
    Forward m;
    m.from.value = r.u32();
    m.requests = decode_items<Request>(r);
    return m;
  }
};

/// <FETCH, id> — explicit on-demand request for a forward (Section 5.2).
struct Fetch final : Message {
  ReplicaId from;
  RequestId id;

  Type type() const override { return Type::Fetch; }
  std::string kind() const override { return "FETCH"; }
  void encode_body(ByteWriter& w) const override {
    w.u32(from.value);
    w.request_id(id);
  }
  static Fetch decode_body(ByteReader& r) {
    Fetch m;
    m.from.value = r.u32();
    m.id = r.request_id();
    return m;
  }
};

/// One slot of a replica's proposal window, shipped in view-change
/// messages: the newest binding the sender has seen for `sqn`, with the
/// view it was proposed in (merge recency). IDEM windows carry bare ids;
/// the baselines carry full requests — the codec is the same either way.
template <typename Item>
struct BasicWindowEntry {
  SeqNum sqn;
  ViewId view;  ///< view of the newest PROPOSE seen for this slot
  std::vector<Item> items;

  void encode(ByteWriter& w) const {
    w.varint(sqn.value);
    w.varint(view.value);
    encode_items(w, items);
  }
  static BasicWindowEntry decode(ByteReader& r) {
    BasicWindowEntry e;
    e.sqn.value = r.varint();
    e.view.value = r.varint();
    e.items = decode_items<Item>(r);
    return e;
  }
};

using WindowEntry = BasicWindowEntry<RequestId>;
using PaxosWindowEntry = BasicWindowEntry<Request>;

/// <VIEWCHANGE, v_t, proposals> (Section 4.5).
struct ViewChange final : Message {
  ReplicaId from;
  ViewId target;
  SeqNum window_start;
  std::vector<WindowEntry> proposals;

  Type type() const override { return Type::ViewChange; }
  std::string kind() const override { return "VIEWCHANGE"; }
  void encode_body(ByteWriter& w) const override {
    w.u32(from.value);
    w.varint(target.value);
    w.varint(window_start.value);
    w.varint(proposals.size());
    for (const auto& p : proposals) p.encode(w);
  }
  static ViewChange decode_body(ByteReader& r) {
    ViewChange m;
    m.from.value = r.u32();
    m.target.value = r.varint();
    m.window_start.value = r.varint();
    auto n = r.varint();
    m.proposals.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) m.proposals.push_back(WindowEntry::decode(r));
    return m;
  }
};

/// Lagging replica asks a peer for the newest checkpoint (Section 4.4).
struct StateRequest final : Message {
  ReplicaId from;
  SeqNum have;  ///< highest sequence number already applied locally

  Type type() const override { return Type::StateRequest; }
  std::string kind() const override { return "STATE-REQ"; }
  void encode_body(ByteWriter& w) const override {
    w.u32(from.value);
    w.varint(have.value);
  }
  static StateRequest decode_body(ByteReader& r) {
    StateRequest m;
    m.from.value = r.u32();
    m.have.value = r.varint();
    return m;
  }
};

/// Checkpoint shipment: application snapshot + duplicate-detection metadata.
struct StateResponse final : Message {
  ReplicaId from;
  SeqNum upto;  ///< checkpoint covers all sequence numbers <= upto
  std::vector<std::byte> snapshot;
  std::vector<std::pair<ClientId, OpNum>> last_executed;

  Type type() const override { return Type::StateResponse; }
  std::string kind() const override { return "STATE-RESP"; }
  void encode_body(ByteWriter& w) const override {
    w.u32(from.value);
    w.varint(upto.value);
    w.bytes(snapshot);
    w.varint(last_executed.size());
    for (const auto& [cid, onr] : last_executed) {
      w.varint(cid.value);
      w.varint(onr.value);
    }
  }
  static StateResponse decode_body(ByteReader& r) {
    StateResponse m;
    m.from.value = r.u32();
    m.upto.value = r.varint();
    m.snapshot = r.bytes();
    auto n = r.varint();
    m.last_executed.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      ClientId cid{r.varint()};
      OpNum onr{r.varint()};
      m.last_executed.emplace_back(cid, onr);
    }
    return m;
  }
};

// ---------------------------------------------------------------------------
// Paxos baseline (leader distributes full requests)
// ---------------------------------------------------------------------------

/// Leader's proposal carrying the full request batch.
struct PaxosPropose final : Message {
  ViewId view;
  SeqNum sqn;
  std::vector<Request> requests;

  Type type() const override { return Type::PaxosPropose; }
  std::string kind() const override { return "PAXOS-PROPOSE"; }
  void encode_body(ByteWriter& w) const override {
    w.varint(view.value);
    w.varint(sqn.value);
    encode_items(w, requests);
  }
  static PaxosPropose decode_body(ByteReader& r) {
    PaxosPropose m;
    m.view.value = r.varint();
    m.sqn.value = r.varint();
    m.requests = decode_items<Request>(r);
    return m;
  }
};

struct PaxosAccept final : Message {
  ReplicaId from;
  ViewId view;
  SeqNum sqn;

  Type type() const override { return Type::PaxosAccept; }
  std::string kind() const override { return "PAXOS-ACCEPT"; }
  void encode_body(ByteWriter& w) const override {
    w.u32(from.value);
    w.varint(view.value);
    w.varint(sqn.value);
  }
  static PaxosAccept decode_body(ByteReader& r) {
    PaxosAccept m;
    m.from.value = r.u32();
    m.view.value = r.varint();
    m.sqn.value = r.varint();
    return m;
  }
};

/// Paxos view change: carries the full proposals (requests) of the window.
struct PaxosViewChange final : Message {
  ReplicaId from;
  ViewId target;
  SeqNum window_start;
  std::vector<PaxosWindowEntry> proposals;

  Type type() const override { return Type::PaxosViewChange; }
  std::string kind() const override { return "PAXOS-VIEWCHANGE"; }
  void encode_body(ByteWriter& w) const override {
    w.u32(from.value);
    w.varint(target.value);
    w.varint(window_start.value);
    w.varint(proposals.size());
    for (const auto& entry : proposals) entry.encode(w);
  }
  static PaxosViewChange decode_body(ByteReader& r) {
    PaxosViewChange m;
    m.from.value = r.u32();
    m.target.value = r.varint();
    m.window_start.value = r.varint();
    auto n = r.varint();
    m.proposals.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) m.proposals.push_back(PaxosWindowEntry::decode(r));
    return m;
  }
};

/// Leader liveness signal: followers without client contact need it to
/// detect a crashed leader (Paxos clients talk to the leader only).
struct PaxosHeartbeat final : Message {
  ReplicaId from;
  ViewId view;

  Type type() const override { return Type::PaxosHeartbeat; }
  std::string kind() const override { return "PAXOS-HEARTBEAT"; }
  void encode_body(ByteWriter& w) const override {
    w.u32(from.value);
    w.varint(view.value);
  }
  static PaxosHeartbeat decode_body(ByteReader& r) {
    PaxosHeartbeat m;
    m.from.value = r.u32();
    m.view.value = r.varint();
    return m;
  }
};

// ---------------------------------------------------------------------------
// BFT-SMaRt-analog (CFT mode): PROPOSE / WRITE / ACCEPT
// ---------------------------------------------------------------------------

struct SmartPropose final : Message {
  ViewId view;
  SeqNum sqn;
  std::vector<Request> requests;

  Type type() const override { return Type::SmartPropose; }
  std::string kind() const override { return "SMART-PROPOSE"; }
  void encode_body(ByteWriter& w) const override {
    w.varint(view.value);
    w.varint(sqn.value);
    encode_items(w, requests);
  }
  static SmartPropose decode_body(ByteReader& r) {
    SmartPropose m;
    m.view.value = r.varint();
    m.sqn.value = r.varint();
    m.requests = decode_items<Request>(r);
    return m;
  }
};

struct SmartWrite final : Message {
  ReplicaId from;
  ViewId view;
  SeqNum sqn;

  Type type() const override { return Type::SmartWrite; }
  std::string kind() const override { return "SMART-WRITE"; }
  void encode_body(ByteWriter& w) const override {
    w.u32(from.value);
    w.varint(view.value);
    w.varint(sqn.value);
  }
  static SmartWrite decode_body(ByteReader& r) {
    SmartWrite m;
    m.from.value = r.u32();
    m.view.value = r.varint();
    m.sqn.value = r.varint();
    return m;
  }
};

struct SmartAccept final : Message {
  ReplicaId from;
  ViewId view;
  SeqNum sqn;

  Type type() const override { return Type::SmartAccept; }
  std::string kind() const override { return "SMART-ACCEPT"; }
  void encode_body(ByteWriter& w) const override {
    w.u32(from.value);
    w.varint(view.value);
    w.varint(sqn.value);
  }
  static SmartAccept decode_body(ByteReader& r) {
    SmartAccept m;
    m.from.value = r.u32();
    m.view.value = r.varint();
    m.sqn.value = r.varint();
    return m;
  }
};

/// Decodes a full message buffer (type byte + body) back into a typed
/// message. Throws CodecError for unknown types or malformed bodies.
/// Returns a shared_ptr<const Message> suitable for sim transport.
std::shared_ptr<const Message> decode(std::span<const std::byte> data);

}  // namespace idem::msg
