// Checkpoints: application snapshot plus duplicate-detection metadata
// (paper Section 4.4).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "common/ids.hpp"
#include "common/time.hpp"

namespace idem::consensus {

/// State of the replicated service after executing every sequence number
/// up to and including `upto`.
struct Checkpoint {
  SeqNum upto;
  std::vector<std::byte> snapshot;
  /// Highest executed operation number per client — used to suppress
  /// duplicate execution after state transfer.
  std::map<std::uint64_t, std::uint64_t> last_executed;
};

/// Keeps the most recent checkpoint; creation interval is the caller's
/// policy (IDEM checkpoints periodically by sequence number).
class CheckpointStore {
 public:
  explicit CheckpointStore(std::uint64_t interval = 256) : interval_(interval ? interval : 1) {}

  /// True when executing `sqn` should trigger a new checkpoint.
  bool due(SeqNum sqn) const { return (sqn.value + 1) % interval_ == 0; }

  void store(Checkpoint checkpoint) {
    if (!latest_ || checkpoint.upto > latest_->upto) latest_ = std::move(checkpoint);
  }

  const std::optional<Checkpoint>& latest() const { return latest_; }
  std::uint64_t interval() const { return interval_; }

 private:
  std::uint64_t interval_;
  std::optional<Checkpoint> latest_;
};

}  // namespace idem::consensus
