// Small helpers for counting votes from distinct replicas.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "common/ids.hpp"

namespace idem::consensus {

/// Counts distinct replica votes per key (e.g. REQUIREs per request id,
/// COMMITs per sequence number). Double votes from the same replica are
/// idempotent.
template <typename Key>
class QuorumTracker {
 public:
  /// Registers a vote; returns the number of distinct voters for `key`
  /// after the insertion.
  std::size_t vote(const Key& key, ReplicaId voter) {
    auto& voters = votes_[key];
    voters.insert(voter.value);
    return voters.size();
  }

  std::size_t count(const Key& key) const {
    auto it = votes_.find(key);
    return it == votes_.end() ? 0 : it->second.size();
  }

  bool reached(const Key& key, std::size_t quorum) const { return count(key) >= quorum; }

  void erase(const Key& key) { votes_.erase(key); }
  void clear() { votes_.clear(); }
  std::size_t keys() const { return votes_.size(); }

 private:
  std::unordered_map<Key, std::unordered_set<std::uint32_t>> votes_;
};

}  // namespace idem::consensus
