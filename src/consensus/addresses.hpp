// Node-id conventions shared by all protocol implementations.
//
// Replica i lives at transport address i; client c lives at a fixed offset
// so the two id spaces can never collide.
#pragma once

#include "common/ids.hpp"
#include "sim/network.hpp"

namespace idem::consensus {

constexpr std::uint32_t kClientAddressBase = 1'000'000;

inline sim::NodeId replica_address(ReplicaId r) { return sim::NodeId{r.value}; }

inline sim::NodeId client_address(ClientId c) {
  return sim::NodeId{kClientAddressBase + static_cast<std::uint32_t>(c.value)};
}

inline bool is_client_address(sim::NodeId id) { return id.value >= kClientAddressBase; }

inline ClientId client_of_address(sim::NodeId id) {
  return ClientId{id.value - kClientAddressBase};
}

inline ReplicaId replica_of_address(sim::NodeId id) { return ReplicaId{id.value}; }

/// Leader of view v in all round-robin protocols here: replica (v mod n).
inline ReplicaId leader_of(ViewId v, std::size_t n) {
  return ReplicaId{static_cast<std::uint32_t>(v.value % n)};
}

}  // namespace idem::consensus
