// BFT-SMaRt-analog replica in its crash-fault-tolerant configuration.
//
// Stands in for the production-grade BFT-SMaRt library the paper compares
// against (Section 7): clients multicast their requests to all replicas,
// the leader batches and proposes full requests, agreement runs through
// Mod-SMaRt-style PROPOSE / WRITE / ACCEPT phases, and every replica
// replies to the client (which needs just one reply in CFT mode). Like
// the original, it has no overload protection — request buffers grow
// without bound and latency explodes past saturation, which is the
// behaviour Figures 2 and 6 capture. Leader fail-over is out of scope for
// this baseline (the paper's crash experiments only involve IDEM variants
// and Paxos_LBR); see DESIGN.md.
//
// Structurally a policy layer over the replication core (src/core): the
// ordered log, client table and batch pipeline are shared with the other
// protocols; SMaRt contributes the three-phase agreement.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_set>
#include <vector>

#include "app/state_machine.hpp"
#include "common/ids.hpp"
#include "consensus/addresses.hpp"
#include "consensus/cost_model.hpp"
#include "consensus/messages.hpp"
#include "core/batch_pipeline.hpp"
#include "core/client_table.hpp"
#include "core/ordered_log.hpp"
#include "core/timers.hpp"
#include "obs/trace.hpp"
#include "sim/node.hpp"

namespace idem::smart {

struct SmartConfig {
  std::size_t n = 3;
  std::size_t f = 1;
  std::size_t batch_max = 32;
  /// Ordered-log batching (see core::BatchPipeline): cut once batch_min
  /// requests are queued or the oldest waited batch_flush_delay. Defaults
  /// (1, 0) cut immediately, i.e. legacy behavior.
  std::size_t batch_min = 1;
  Duration batch_flush_delay = 0;
  std::uint64_t window_size = 256;
  /// Leader retransmits the proposal of the oldest unexecuted instance
  /// when it makes no progress for this long (fair-loss links).
  Duration retransmit_interval = 200 * kMillisecond;
  consensus::CostModel costs;

  /// Optional request-lifecycle trace sink (borrowed, may be null).
  obs::TraceRecorder* trace = nullptr;

  std::size_t quorum() const { return f + 1; }
};

struct SmartStats {
  std::uint64_t requests_received = 0;
  std::uint64_t executed = 0;
  std::uint64_t duplicates_skipped = 0;
  std::uint64_t proposals_sent = 0;
};

/// The three-phase consensus slot, shared with the proactive-rejection
/// variant (smart/replica_pr.hpp) whose agreement path is identical.
struct SmartSlot : core::SlotBase {
  std::vector<msg::Request> requests;
  bool own_write_sent = false;
  bool own_accept_sent = false;
  std::unordered_set<std::uint32_t> write_votes;
  std::unordered_set<std::uint32_t> accept_votes;
};

class SmartReplica final : public sim::Node {
 public:
  SmartReplica(sim::Runtime& sim, sim::Transport& net, ReplicaId id, SmartConfig config,
               std::unique_ptr<app::StateMachine> state_machine);

  ReplicaId replica_id() const { return me_; }
  bool is_leader() const { return consensus::leader_of(view_, config_.n) == me_; }
  const SmartStats& stats() const { return stats_; }
  std::size_t backlog() const { return batch_.size(); }
  SeqNum next_execute() const { return SeqNum{log_.next_exec()}; }

  app::StateMachine& state_machine() { return *sm_; }

  std::function<void(SeqNum, RequestId)> on_execute;

 protected:
  void on_message(sim::NodeId from, const sim::Payload& message) override;
  void on_restart() override;
  Duration message_cost(const sim::Payload& message) const override;
  Duration send_cost(const sim::Payload& message) const override;

 private:
  using Instance = SmartSlot;

  void handle_request(const msg::Request& request);
  void try_propose();
  void arm_batch_timer();
  void handle_propose(const msg::SmartPropose& propose);
  void handle_write(const msg::SmartWrite& write);
  void handle_accept(const msg::SmartAccept& accept);
  void maybe_advance(std::uint64_t sqn);
  /// Emits the CommitQuorum trace event once per instance.
  void note_accept_quorum(std::uint64_t sqn, Instance& inst);
  void try_execute();
  void retransmit_tick();
  void multicast(sim::PayloadPtr message);

  SmartConfig config_;
  ReplicaId me_;
  std::unique_ptr<app::StateMachine> sm_;
  ViewId view_;

  core::BatchPipeline<msg::Request> batch_;  ///< leader's unbounded request buffer
  std::unordered_set<RequestId> queued_;
  sim::TimerId batch_timer_;  ///< pending time-based batch cut

  core::OrderedLog<Instance> log_;
  std::uint64_t next_sqn_ = 0;

  core::ClientTable clients_;

  sim::TimerId retransmit_timer_;
  core::StallWatermark retransmit_stall_;

  // Service-time variability stream (CostModel::jitter).
  mutable Rng cost_rng_;

  SmartStats stats_;
};

}  // namespace idem::smart
