// Collaborative proactive rejection retrofitted onto the SMaRt-analog
// protocol — the modularity claim of paper Section 4.2 ("implementing
// overload prevention in the form of an individual phase ... makes it
// easier to combine our approach with other consensus protocols"), made
// concrete.
//
// The composition keeps Mod-SMaRt's agreement (PROPOSE / WRITE / ACCEPT
// on full request batches) untouched and bolts IDEM's intake phase in
// front of it:
//   - every replica runs a local acceptance test on each REQUEST and
//     either REJECTs to the client or stores the request and REQUIREs it
//     at the leader;
//   - the leader proposes a request once f+1 replicas REQUIREd it (and
//     it owns the body — clients multicast in SMaRt, so it normally does);
//   - accepted-but-unfinished requests are forwarded after a timeout, and
//     rejected bodies stay in a cache, preserving IDEM's liveness
//     guarantee (a request accepted anywhere eventually executes).
// Clients use core::IdemClient: SMaRt clients already multicast, and the
// reject-quorum semantics (Section 5.3) are protocol-independent. The
// rejected cache is core::RejectedCache, which refreshes an entry on
// repeat rejection — paper Section 4.5: a rejection is ambivalent until
// all n replicas rejected, so the body of a request the client is still
// retrying must not age out beneath it.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "app/state_machine.hpp"
#include "common/ids.hpp"
#include "consensus/addresses.hpp"
#include "consensus/quorum.hpp"
#include "core/acceptance.hpp"
#include "core/batch_pipeline.hpp"
#include "core/client_table.hpp"
#include "core/ordered_log.hpp"
#include "core/rejected_cache.hpp"
#include "core/timers.hpp"
#include "smart/replica.hpp"

namespace idem::smart {

struct SmartPrConfig {
  std::size_t n = 3;
  std::size_t f = 1;
  std::size_t batch_max = 32;
  /// Ordered-log batching (see core::BatchPipeline): cut once batch_min
  /// requests are queued or the oldest waited batch_flush_delay. Defaults
  /// (1, 0) cut immediately, i.e. legacy behavior.
  std::size_t batch_min = 1;
  Duration batch_flush_delay = 0;
  std::uint64_t window_size = 256;
  Duration retransmit_interval = 200 * kMillisecond;
  consensus::CostModel costs;

  /// Intake phase (IDEM parameters).
  std::size_t reject_threshold = 50;
  Duration forward_timeout = 10 * kMillisecond;
  std::size_t rejected_cache_size = 1024;

  /// Optional request-lifecycle trace sink (borrowed, may be null).
  obs::TraceRecorder* trace = nullptr;

  std::size_t quorum() const { return f + 1; }
};

struct SmartPrStats {
  std::uint64_t requests_received = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t forward_accepted = 0;
  std::uint64_t executed = 0;
  std::uint64_t duplicates_skipped = 0;
  std::uint64_t proposals_sent = 0;
  std::uint64_t forwards_sent = 0;
};

class SmartPrReplica final : public sim::Node {
 public:
  SmartPrReplica(sim::Runtime& sim, sim::Transport& net, ReplicaId id, SmartPrConfig config,
                 std::unique_ptr<app::StateMachine> state_machine,
                 std::unique_ptr<core::AcceptanceTest> acceptance);

  ReplicaId replica_id() const { return me_; }
  bool is_leader() const { return consensus::leader_of(view_, config_.n) == me_; }
  const SmartPrStats& stats() const { return stats_; }
  std::size_t active_requests() const { return active_.size(); }
  SeqNum next_execute() const { return SeqNum{log_.next_exec()}; }

  app::StateMachine& state_machine() { return *sm_; }

  std::function<void(SeqNum, RequestId)> on_execute;

 protected:
  void on_message(sim::NodeId from, const sim::Payload& message) override;
  void on_restart() override;
  Duration message_cost(const sim::Payload& message) const override;
  Duration send_cost(const sim::Payload& message) const override;

 private:
  using Instance = SmartSlot;  ///< agreement state shared with SmartReplica

  // Intake phase (IDEM, Section 4.3 / 5.1 / 5.2).
  void handle_request(const msg::Request& request);
  void accept_request(RequestId id, std::vector<std::byte> command, bool client_issued);
  void note_require(ReplicaId voter, RequestId id);
  void handle_forward(const msg::Forward& forward);
  void arm_forward_timer(RequestId id);
  void forward_request(RequestId id);
  const std::vector<std::byte>* find_command(RequestId id) const;

  // Unmodified Mod-SMaRt-style agreement.
  void try_propose();
  void arm_batch_timer();
  void handle_propose(const msg::SmartPropose& propose);
  void handle_write(const msg::SmartWrite& write);
  void handle_accept(const msg::SmartAccept& accept);
  void maybe_advance(std::uint64_t sqn);
  /// Emits the CommitQuorum trace event once per instance.
  void note_accept_quorum(std::uint64_t sqn, Instance& inst);
  void try_execute();
  void retransmit_tick();
  void multicast(sim::PayloadPtr message);

  SmartPrConfig config_;
  ReplicaId me_;
  std::unique_ptr<app::StateMachine> sm_;
  std::unique_ptr<core::AcceptanceTest> acceptance_;
  ViewId view_;

  // Intake state.
  std::unordered_map<RequestId, std::vector<std::byte>> requests_;
  std::unordered_set<RequestId> active_;
  std::unordered_map<RequestId, sim::TimerId> forward_timers_;
  core::RejectedCache rejected_;
  consensus::QuorumTracker<RequestId> requires_;
  core::BatchPipeline<RequestId> batch_;  ///< ids with an f+1 REQUIRE quorum
  std::unordered_set<RequestId> in_eligible_;
  std::unordered_set<RequestId> proposed_;
  sim::TimerId batch_timer_;  ///< pending time-based batch cut

  // Agreement state.
  core::OrderedLog<Instance> log_;
  std::uint64_t next_sqn_ = 0;
  core::ClientTable clients_;
  sim::TimerId retransmit_timer_;
  core::StallWatermark retransmit_stall_;

  mutable Rng cost_rng_;
  SmartPrStats stats_;
};

}  // namespace idem::smart
