#include "smart/replica.hpp"

#include <cassert>

#include "core/lifecycle.hpp"

namespace idem::smart {

namespace core = idem::core;

SmartReplica::SmartReplica(sim::Runtime& sim, sim::Transport& net, ReplicaId id,
                           SmartConfig config, std::unique_ptr<app::StateMachine> state_machine)
    : sim::Node(sim, net, consensus::replica_address(id), sim::NodeKind::Replica),
      config_(config),
      me_(id),
      sm_(std::move(state_machine)),
      cost_rng_(sim.seed(), 0xC057'2000ull + id.value) {
  assert(config_.n == 2 * config_.f + 1);
  batch_.configure({config_.batch_max, config_.batch_min, config_.batch_flush_delay});
  retransmit_tick();
}

void SmartReplica::on_restart() {
  cancel_timer(retransmit_timer_);
  cancel_timer(batch_timer_);
  retransmit_tick();
}

void SmartReplica::retransmit_tick() {
  retransmit_timer_ = set_timer(config_.retransmit_interval, [this] { retransmit_tick(); });
  if (!is_leader()) return;
  Instance* head = log_.head();
  if (head == nullptr || !head->has_binding || head->executed) {
    retransmit_stall_.reset();
    return;
  }
  if (retransmit_stall_.stalled_at(log_.next_exec())) {
    auto propose = std::make_shared<msg::SmartPropose>();
    propose->view = view_;
    propose->sqn = SeqNum{log_.next_exec()};
    propose->requests = head->requests;
    multicast(std::move(propose));
  }
}

Duration SmartReplica::message_cost(const sim::Payload& message) const {
  return config_.costs.cost(message, cost_rng_);
}

Duration SmartReplica::send_cost(const sim::Payload& message) const {
  return config_.costs.send_cost(message, cost_rng_);
}

void SmartReplica::multicast(sim::PayloadPtr message) {
  for (std::uint32_t i = 0; i < config_.n; ++i) {
    if (i == me_.value) continue;
    send(consensus::replica_address(ReplicaId{i}), message);
  }
}

void SmartReplica::on_message(sim::NodeId from, const sim::Payload& message) {
  (void)from;
  const auto* base = dynamic_cast<const msg::Message*>(&message);
  if (base == nullptr) return;
  switch (base->type()) {
    case msg::Type::Request:
      handle_request(static_cast<const msg::Request&>(*base));
      break;
    case msg::Type::SmartPropose:
      handle_propose(static_cast<const msg::SmartPropose&>(*base));
      break;
    case msg::Type::SmartWrite:
      handle_write(static_cast<const msg::SmartWrite&>(*base));
      break;
    case msg::Type::SmartAccept:
      handle_accept(static_cast<const msg::SmartAccept&>(*base));
      break;
    default:
      break;
  }
}

void SmartReplica::handle_request(const msg::Request& request) {
  ++stats_.requests_received;
  const RequestId id = request.id;
  if (clients_.executed(id)) {
    if (auto reply = clients_.cached_reply(id)) {
      send(consensus::client_address(id.cid), std::move(reply));
    }
    return;
  }
  if (!is_leader()) return;  // followers see the request again in the PROPOSE
  if (queued_.contains(id)) return;
  // No acceptance test: the leader takes everything (accepted always).
  core::lifecycle::accept_verdict(config_.trace, now(), me_.value, id, true);
  queued_.insert(id);
  batch_.push(request, now());  // unbounded: no overload protection
  try_propose();
}

void SmartReplica::try_propose() {
  if (!is_leader()) return;
  const std::uint64_t window_end = log_.next_exec() + config_.window_size;
  while (!batch_.empty() && next_sqn_ < window_end) {
    if (!batch_.ready(now())) {
      arm_batch_timer();
      break;
    }
    std::vector<msg::Request> batch;
    batch_.cut([&](msg::Request& request) {
      batch.push_back(std::move(request));
      return core::BatchPipeline<msg::Request>::Verdict::Take;
    });

    Instance& inst = log_.at(next_sqn_);
    inst.requests = batch;
    inst.has_binding = true;
    inst.own_write_sent = true;  // the leader's proposal implies its WRITE
    inst.write_votes.insert(me_.value);
    for (const msg::Request& request : inst.requests) {
      core::lifecycle::proposed(config_.trace, now(), me_.value, request.id, next_sqn_);
    }
    core::lifecycle::propose_received(config_.trace, now(), me_.value, next_sqn_);

    auto propose = std::make_shared<msg::SmartPropose>();
    propose->view = view_;
    propose->sqn = SeqNum{next_sqn_};
    propose->requests = std::move(batch);
    multicast(std::move(propose));
    ++stats_.proposals_sent;
    maybe_advance(next_sqn_);
    ++next_sqn_;
  }
  try_execute();
}

void SmartReplica::arm_batch_timer() {
  // Only reachable with batch_min > 1 and a nonzero flush delay.
  if (batch_timer_.valid()) return;
  batch_timer_ = set_timer(batch_.delay_until_ready(now()), [this] {
    batch_timer_ = sim::TimerId{};
    try_propose();
  });
}

void SmartReplica::handle_propose(const msg::SmartPropose& propose) {
  const std::uint64_t sqn = propose.sqn.value;
  if (sqn < log_.next_exec()) {
    // Retransmission for an executed instance: the sender lost our votes;
    // repeat WRITE and ACCEPT (idempotent) so it can catch up.
    if (log_.contains(sqn)) {
      auto write = std::make_shared<msg::SmartWrite>();
      write->from = me_;
      write->view = propose.view;
      write->sqn = SeqNum{sqn};
      multicast(std::move(write));
      auto accept = std::make_shared<msg::SmartAccept>();
      accept->from = me_;
      accept->view = propose.view;
      accept->sqn = SeqNum{sqn};
      multicast(std::move(accept));
    }
    return;
  }
  Instance& inst = log_.at(sqn);
  if (!inst.has_binding) {
    inst.requests = propose.requests;
    inst.has_binding = true;
    core::lifecycle::propose_received(config_.trace, now(), me_.value, sqn);
  }
  inst.write_votes.insert(consensus::leader_of(propose.view, config_.n).value);
  // Sent unconditionally: a duplicate PROPOSE is the leader's loss-recovery
  // retransmission, so our WRITE/ACCEPT may have been lost too.
  auto write = std::make_shared<msg::SmartWrite>();
  write->from = me_;
  write->view = propose.view;
  write->sqn = SeqNum{sqn};
  multicast(std::move(write));
  inst.own_write_sent = true;
  inst.write_votes.insert(me_.value);
  if (inst.own_accept_sent) {
    auto accept = std::make_shared<msg::SmartAccept>();
    accept->from = me_;
    accept->view = view_;
    accept->sqn = SeqNum{sqn};
    multicast(std::move(accept));
  }
  maybe_advance(sqn);
  try_execute();
}

void SmartReplica::handle_write(const msg::SmartWrite& write) {
  const std::uint64_t sqn = write.sqn.value;
  if (sqn < log_.next_exec()) return;
  Instance& inst = log_.at(sqn);
  inst.write_votes.insert(write.from.value);
  maybe_advance(sqn);
  try_execute();
}

void SmartReplica::maybe_advance(std::uint64_t sqn) {
  Instance& inst = log_.at(sqn);
  if (inst.write_votes.size() >= config_.quorum() && !inst.own_accept_sent) {
    auto accept = std::make_shared<msg::SmartAccept>();
    accept->from = me_;
    accept->view = view_;
    accept->sqn = SeqNum{sqn};
    multicast(std::move(accept));
    inst.own_accept_sent = true;
    inst.accept_votes.insert(me_.value);
    note_accept_quorum(sqn, inst);
  }
}

void SmartReplica::note_accept_quorum(std::uint64_t sqn, Instance& inst) {
  core::lifecycle::decision_quorum(config_.trace, now(), me_.value, sqn, inst,
                                   inst.accept_votes.size(), config_.quorum());
}

void SmartReplica::handle_accept(const msg::SmartAccept& accept) {
  const std::uint64_t sqn = accept.sqn.value;
  if (sqn < log_.next_exec()) return;
  Instance& inst = log_.at(sqn);
  inst.accept_votes.insert(accept.from.value);
  note_accept_quorum(sqn, inst);
  try_execute();
}

void SmartReplica::try_execute() {
  for (;;) {
    Instance* inst = log_.head();
    if (inst == nullptr) return;
    if (!inst->has_binding || inst->executed) return;
    if (inst->accept_votes.size() < config_.quorum()) return;

    for (const msg::Request& request : inst->requests) {
      const RequestId id = request.id;
      if (clients_.executed(id)) {
        ++stats_.duplicates_skipped;
        continue;
      }
      charge(config_.costs.apply_jitter(sm_->execution_cost(request.command), cost_rng_));
      std::vector<std::byte> result = sm_->execute(request.command);
      ++stats_.executed;
      core::lifecycle::executed(config_.trace, now(), me_.value, id, log_.next_exec());
      auto reply = std::make_shared<const msg::Reply>(id, std::move(result));
      clients_.record(id, reply);
      queued_.erase(id);
      // All replicas reply; a CFT client needs just one reply.
      send(consensus::client_address(id.cid), reply);
      core::lifecycle::reply_sent(config_.trace, now(), me_.value, id);
      if (on_execute) on_execute(SeqNum{log_.next_exec()}, id);
    }
    inst->executed = true;
    log_.gc_executed(config_.window_size);
    log_.advance_head();
  }
}

}  // namespace idem::smart
