#include "smart/replica.hpp"

#include <cassert>

namespace idem::smart {

SmartReplica::SmartReplica(sim::Runtime& sim, sim::Transport& net, ReplicaId id,
                           SmartConfig config, std::unique_ptr<app::StateMachine> state_machine)
    : sim::Node(sim, net, consensus::replica_address(id), sim::NodeKind::Replica),
      config_(config),
      me_(id),
      sm_(std::move(state_machine)),
      cost_rng_(sim.seed(), 0xC057'2000ull + id.value) {
  assert(config_.n == 2 * config_.f + 1);
  retransmit_tick();
}

void SmartReplica::on_restart() {
  cancel_timer(retransmit_timer_);
  retransmit_tick();
}

void SmartReplica::retransmit_tick() {
  retransmit_timer_ = set_timer(config_.retransmit_interval, [this] { retransmit_tick(); });
  if (!is_leader()) return;
  auto it = instances_.find(next_exec_);
  if (it == instances_.end() || !it->second.has_binding || it->second.executed) {
    retransmit_watermark_ = UINT64_MAX;
    return;
  }
  if (retransmit_watermark_ == next_exec_) {
    auto propose = std::make_shared<msg::SmartPropose>();
    propose->view = view_;
    propose->sqn = SeqNum{next_exec_};
    propose->requests = it->second.requests;
    multicast(std::move(propose));
  }
  retransmit_watermark_ = next_exec_;
}

Duration SmartReplica::message_cost(const sim::Payload& message) const {
  return config_.costs.cost(message, cost_rng_);
}

Duration SmartReplica::send_cost(const sim::Payload& message) const {
  return config_.costs.send_cost(message, cost_rng_);
}

void SmartReplica::multicast(sim::PayloadPtr message) {
  for (std::uint32_t i = 0; i < config_.n; ++i) {
    if (i == me_.value) continue;
    send(consensus::replica_address(ReplicaId{i}), message);
  }
}

void SmartReplica::on_message(sim::NodeId from, const sim::Payload& message) {
  (void)from;
  const auto* base = dynamic_cast<const msg::Message*>(&message);
  if (base == nullptr) return;
  switch (base->type()) {
    case msg::Type::Request:
      handle_request(static_cast<const msg::Request&>(*base));
      break;
    case msg::Type::SmartPropose:
      handle_propose(static_cast<const msg::SmartPropose&>(*base));
      break;
    case msg::Type::SmartWrite:
      handle_write(static_cast<const msg::SmartWrite&>(*base));
      break;
    case msg::Type::SmartAccept:
      handle_accept(static_cast<const msg::SmartAccept&>(*base));
      break;
    default:
      break;
  }
}

void SmartReplica::handle_request(const msg::Request& request) {
  ++stats_.requests_received;
  const RequestId id = request.id;
  auto last_it = last_exec_.find(id.cid.value);
  if (last_it != last_exec_.end() && id.onr.value <= last_it->second) {
    auto reply_it = last_reply_.find(id.cid.value);
    if (reply_it != last_reply_.end() && reply_it->second->id == id) {
      send(consensus::client_address(id.cid), reply_it->second);
    }
    return;
  }
  if (!is_leader()) return;  // followers see the request again in the PROPOSE
  if (queued_.contains(id)) return;
  // No acceptance test: the leader takes everything (arg=1 always).
  IDEM_TRACE(config_.trace, now(), obs::TraceEventKind::AcceptVerdict, me_.value, id, 1);
  queued_.insert(id);
  pending_.push_back(request);  // unbounded: no overload protection
  try_propose();
}

void SmartReplica::try_propose() {
  if (!is_leader()) return;
  const std::uint64_t window_end = next_exec_ + config_.window_size;
  while (!pending_.empty() && next_sqn_ < window_end) {
    std::vector<msg::Request> batch;
    while (!pending_.empty() && batch.size() < config_.batch_max) {
      batch.push_back(std::move(pending_.front()));
      pending_.pop_front();
    }

    Instance& inst = instances_[next_sqn_];
    inst.requests = batch;
    inst.has_binding = true;
    inst.own_write_sent = true;  // the leader's proposal implies its WRITE
    inst.write_votes.insert(me_.value);
    for (const msg::Request& request : inst.requests) {
      IDEM_TRACE(config_.trace, now(), obs::TraceEventKind::Proposed, me_.value, request.id,
                 next_sqn_);
    }
    IDEM_TRACE(config_.trace, now(), obs::TraceEventKind::ProposeReceived, me_.value, next_sqn_);

    auto propose = std::make_shared<msg::SmartPropose>();
    propose->view = view_;
    propose->sqn = SeqNum{next_sqn_};
    propose->requests = std::move(batch);
    multicast(std::move(propose));
    ++stats_.proposals_sent;
    maybe_advance(next_sqn_);
    ++next_sqn_;
  }
  try_execute();
}

void SmartReplica::handle_propose(const msg::SmartPropose& propose) {
  const std::uint64_t sqn = propose.sqn.value;
  if (sqn < next_exec_) {
    // Retransmission for an executed instance: the sender lost our votes;
    // repeat WRITE and ACCEPT (idempotent) so it can catch up.
    if (instances_.contains(sqn)) {
      auto write = std::make_shared<msg::SmartWrite>();
      write->from = me_;
      write->view = propose.view;
      write->sqn = SeqNum{sqn};
      multicast(std::move(write));
      auto accept = std::make_shared<msg::SmartAccept>();
      accept->from = me_;
      accept->view = propose.view;
      accept->sqn = SeqNum{sqn};
      multicast(std::move(accept));
    }
    return;
  }
  Instance& inst = instances_[sqn];
  if (!inst.has_binding) {
    inst.requests = propose.requests;
    inst.has_binding = true;
    IDEM_TRACE(config_.trace, now(), obs::TraceEventKind::ProposeReceived, me_.value, sqn);
  }
  inst.write_votes.insert(consensus::leader_of(propose.view, config_.n).value);
  // Sent unconditionally: a duplicate PROPOSE is the leader's loss-recovery
  // retransmission, so our WRITE/ACCEPT may have been lost too.
  auto write = std::make_shared<msg::SmartWrite>();
  write->from = me_;
  write->view = propose.view;
  write->sqn = SeqNum{sqn};
  multicast(std::move(write));
  inst.own_write_sent = true;
  inst.write_votes.insert(me_.value);
  if (inst.own_accept_sent) {
    auto accept = std::make_shared<msg::SmartAccept>();
    accept->from = me_;
    accept->view = view_;
    accept->sqn = SeqNum{sqn};
    multicast(std::move(accept));
  }
  maybe_advance(sqn);
  try_execute();
}

void SmartReplica::handle_write(const msg::SmartWrite& write) {
  const std::uint64_t sqn = write.sqn.value;
  if (sqn < next_exec_) return;
  Instance& inst = instances_[sqn];
  inst.write_votes.insert(write.from.value);
  maybe_advance(sqn);
  try_execute();
}

void SmartReplica::maybe_advance(std::uint64_t sqn) {
  Instance& inst = instances_[sqn];
  if (inst.write_votes.size() >= config_.quorum() && !inst.own_accept_sent) {
    auto accept = std::make_shared<msg::SmartAccept>();
    accept->from = me_;
    accept->view = view_;
    accept->sqn = SeqNum{sqn};
    multicast(std::move(accept));
    inst.own_accept_sent = true;
    inst.accept_votes.insert(me_.value);
    note_accept_quorum(sqn, inst);
  }
}

void SmartReplica::note_accept_quorum(std::uint64_t sqn, Instance& inst) {
  if (inst.quorum_traced || inst.accept_votes.size() < config_.quorum()) return;
  inst.quorum_traced = true;
  IDEM_TRACE(config_.trace, now(), obs::TraceEventKind::CommitQuorum, me_.value, sqn);
}

void SmartReplica::handle_accept(const msg::SmartAccept& accept) {
  const std::uint64_t sqn = accept.sqn.value;
  if (sqn < next_exec_) return;
  Instance& inst = instances_[sqn];
  inst.accept_votes.insert(accept.from.value);
  note_accept_quorum(sqn, inst);
  try_execute();
}

void SmartReplica::try_execute() {
  for (;;) {
    auto it = instances_.find(next_exec_);
    if (it == instances_.end()) return;
    Instance& inst = it->second;
    if (!inst.has_binding || inst.executed) return;
    if (inst.accept_votes.size() < config_.quorum()) return;

    for (const msg::Request& request : inst.requests) {
      const RequestId id = request.id;
      auto last_it = last_exec_.find(id.cid.value);
      if (last_it != last_exec_.end() && id.onr.value <= last_it->second) {
        ++stats_.duplicates_skipped;
        continue;
      }
      charge(config_.costs.apply_jitter(sm_->execution_cost(request.command), cost_rng_));
      std::vector<std::byte> result = sm_->execute(request.command);
      ++stats_.executed;
      IDEM_TRACE(config_.trace, now(), obs::TraceEventKind::Executed, me_.value, id, next_exec_);
      last_exec_[id.cid.value] = id.onr.value;
      auto reply = std::make_shared<const msg::Reply>(id, std::move(result));
      last_reply_[id.cid.value] = reply;
      queued_.erase(id);
      // All replicas reply; a CFT client needs just one reply.
      send(consensus::client_address(id.cid), reply);
      IDEM_TRACE(config_.trace, now(), obs::TraceEventKind::ReplySent, me_.value, id);
      if (on_execute) on_execute(SeqNum{next_exec_}, id);
    }
    inst.executed = true;
    if (next_exec_ >= 2 * config_.window_size) {
      instances_.erase(instances_.begin(),
                       instances_.lower_bound(next_exec_ - 2 * config_.window_size));
    }
    ++next_exec_;
  }
}

}  // namespace idem::smart
