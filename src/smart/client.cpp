#include "smart/client.hpp"

#include <cassert>

namespace idem::smart {

SmartClient::SmartClient(sim::Runtime& sim, sim::Transport& net, ClientId id,
                         SmartClientConfig config)
    : sim::Node(sim, net, consensus::client_address(id), sim::NodeKind::Client),
      config_(config),
      cid_(id) {}

void SmartClient::invoke(std::vector<std::byte> command, Callback callback) {
  assert(!pending_ && "one pending request per client");
  ++onr_;
  PendingOp op;
  op.id = RequestId{cid_, OpNum{onr_}};
  op.request = std::make_shared<const msg::Request>(op.id, std::move(command), request_deadline_);
  op.callback = std::move(callback);
  op.issued = now();
  pending_ = std::move(op);
  IDEM_TRACE(config_.trace, now(), obs::TraceEventKind::RequestIssued, id().value, pending_->id);

  multicast_request();
  arm_retry();
  if (config_.operation_timeout > 0) {
    deadline_timer_ = set_timer(config_.operation_timeout, [this] {
      deadline_timer_ = sim::TimerId{};
      if (pending_) complete(consensus::Outcome::Kind::Timeout, {});
    });
  }
}

void SmartClient::arm_retry() {
  cancel_timer(retry_timer_);
  if (config_.retry_interval <= 0) return;
  retry_timer_ = set_timer(config_.retry_interval, [this] {
    retry_timer_ = sim::TimerId{};
    if (!pending_) return;
    IDEM_TRACE(config_.trace, now(), obs::TraceEventKind::RequestRetry, id().value,
               pending_->id);
    multicast_request();
    arm_retry();
  });
}

void SmartClient::multicast_request() {
  for (std::uint32_t i = 0; i < config_.n; ++i) {
    send(consensus::replica_address(ReplicaId{i}), pending_->request);
  }
}

void SmartClient::on_message(sim::NodeId from, const sim::Payload& message) {
  (void)from;
  if (!pending_) return;
  const auto* base = dynamic_cast<const msg::Message*>(&message);
  if (base == nullptr || base->type() != msg::Type::Reply) return;
  const auto& reply = static_cast<const msg::Reply&>(*base);
  if (reply.id != pending_->id) return;
  complete(consensus::Outcome::Kind::Reply, reply.result);
}

void SmartClient::complete(consensus::Outcome::Kind kind, std::vector<std::byte> result) {
  cancel_timer(retry_timer_);
  cancel_timer(deadline_timer_);
  IDEM_TRACE(config_.trace, now(), obs::TraceEventKind::RequestOutcome, id().value,
             pending_->id, static_cast<std::uint64_t>(kind));

  consensus::Outcome outcome;
  outcome.kind = kind;
  outcome.issued = pending_->issued;
  outcome.completed = now();
  outcome.result = std::move(result);
  outcome.deadline = pending_->request->deadline;

  Callback callback = std::move(pending_->callback);
  pending_.reset();
  callback(outcome);
}

}  // namespace idem::smart
