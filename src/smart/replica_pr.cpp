#include "smart/replica_pr.hpp"

#include <cassert>

#include "core/lifecycle.hpp"

namespace idem::smart {

namespace core = idem::core;

SmartPrReplica::SmartPrReplica(sim::Runtime& sim, sim::Transport& net, ReplicaId id,
                               SmartPrConfig config,
                               std::unique_ptr<app::StateMachine> state_machine,
                               std::unique_ptr<core::AcceptanceTest> acceptance)
    : sim::Node(sim, net, consensus::replica_address(id), sim::NodeKind::Replica),
      config_(config),
      me_(id),
      sm_(std::move(state_machine)),
      acceptance_(std::move(acceptance)),
      rejected_(config.rejected_cache_size),
      cost_rng_(sim.seed(), 0xC057'3000ull + id.value) {
  assert(config_.n == 2 * config_.f + 1);
  batch_.configure({config_.batch_max, config_.batch_min, config_.batch_flush_delay});
  retransmit_tick();
}

Duration SmartPrReplica::message_cost(const sim::Payload& message) const {
  return config_.costs.cost(message, cost_rng_);
}

Duration SmartPrReplica::send_cost(const sim::Payload& message) const {
  return config_.costs.send_cost(message, cost_rng_);
}

void SmartPrReplica::multicast(sim::PayloadPtr message) {
  for (std::uint32_t i = 0; i < config_.n; ++i) {
    if (i == me_.value) continue;
    send(consensus::replica_address(ReplicaId{i}), message);
  }
}

void SmartPrReplica::on_message(sim::NodeId from, const sim::Payload& message) {
  (void)from;
  const auto* base = dynamic_cast<const msg::Message*>(&message);
  if (base == nullptr) return;
  switch (base->type()) {
    case msg::Type::Request:
      handle_request(static_cast<const msg::Request&>(*base));
      break;
    case msg::Type::Require: {
      const auto& require = static_cast<const msg::Require&>(*base);
      for (RequestId id : require.ids) note_require(require.from, id);
      break;
    }
    case msg::Type::Forward:
      handle_forward(static_cast<const msg::Forward&>(*base));
      break;
    case msg::Type::SmartPropose:
      handle_propose(static_cast<const msg::SmartPropose&>(*base));
      break;
    case msg::Type::SmartWrite:
      handle_write(static_cast<const msg::SmartWrite&>(*base));
      break;
    case msg::Type::SmartAccept:
      handle_accept(static_cast<const msg::SmartAccept&>(*base));
      break;
    default:
      break;
  }
}

// ---------------------------------------------------------------------------
// Intake phase (collaborative proactive rejection)
// ---------------------------------------------------------------------------

void SmartPrReplica::handle_request(const msg::Request& request) {
  ++stats_.requests_received;
  const RequestId id = request.id;
  if (clients_.executed(id)) {
    if (auto reply = clients_.cached_reply(id)) {
      send(consensus::client_address(id.cid), std::move(reply));
    }
    return;
  }
  if (requests_.contains(id)) return;
  // Requests in the rejected cache are re-tested: the acceptance test is
  // time-varying, so a retransmission may pass now.

  core::AcceptanceContext ctx;
  ctx.active_requests = active_.size();
  ctx.reject_threshold = config_.reject_threshold;
  ctx.now = now();
  ctx.deadline = request.deadline;
  RejectReason reason = RejectReason::None;
  if (acceptance_->accept(id, request.command, ctx, reason)) {
    core::lifecycle::accept_verdict(config_.trace, now(), me_.value, id, true);
    accept_request(id, request.command, /*client_issued=*/true);
  } else {
    ++stats_.rejected;
    // A reject of a request already in the rejected cache is a
    // retransmission bouncing off it — classify it as such.
    if (rejected_.find(id) != nullptr) reason = RejectReason::RejectedCacheHit;
    core::lifecycle::accept_verdict(config_.trace, now(), me_.value, id, false, reason);
    // insert() refreshes an already-cached entry to the LRU front: every
    // retransmission of an ambivalently rejected request (Section 4.5)
    // keeps its body fetchable.
    rejected_.insert(id, request.command);
    send(consensus::client_address(id.cid), std::make_shared<const msg::Reject>(id, reason));
  }
}

void SmartPrReplica::accept_request(RequestId id, std::vector<std::byte> command,
                                    bool client_issued) {
  requests_[id] = std::move(command);
  rejected_.erase(id);
  if (client_issued) {
    active_.insert(id);
    ++stats_.accepted;
  } else {
    ++stats_.forward_accepted;
    core::lifecycle::forward_accepted(config_.trace, now(), me_.value, id);
  }
  arm_forward_timer(id);
  if (is_leader()) {
    note_require(me_, id);
  } else {
    auto require = std::make_shared<msg::Require>();
    require->from = me_;
    require->ids = {id};
    send(consensus::replica_address(consensus::leader_of(view_, config_.n)),
         std::move(require));
  }
}

void SmartPrReplica::note_require(ReplicaId voter, RequestId id) {
  if (clients_.executed(id) || proposed_.contains(id)) return;
  core::lifecycle::require_noted(config_.trace, now(), me_.value, id, voter.value);
  std::size_t votes = requires_.vote(id, voter);
  if (votes >= config_.quorum() && !in_eligible_.contains(id)) {
    in_eligible_.insert(id);
    batch_.push(id, now());
  }
  try_propose();
}

void SmartPrReplica::handle_forward(const msg::Forward& forward) {
  for (const msg::Request& request : forward.requests) {
    if (clients_.executed(request.id) || requests_.contains(request.id)) continue;
    accept_request(request.id, request.command, /*client_issued=*/false);
  }
}

void SmartPrReplica::arm_forward_timer(RequestId id) {
  if (forward_timers_.contains(id)) return;
  forward_timers_[id] = set_timer(config_.forward_timeout, [this, id] {
    forward_timers_.erase(id);
    forward_request(id);
  });
}

void SmartPrReplica::forward_request(RequestId id) {
  if (clients_.executed(id)) return;
  auto it = requests_.find(id);
  if (it == requests_.end()) return;
  auto forward = std::make_shared<msg::Forward>();
  forward->from = me_;
  forward->requests.emplace_back(id, it->second);
  multicast(std::move(forward));
  ++stats_.forwards_sent;
  // The request is overdue, so our REQUIRE may have been lost too
  // (fair-loss links); repeat it alongside the relays.
  if (is_leader()) {
    note_require(me_, id);
  } else {
    auto require = std::make_shared<msg::Require>();
    require->from = me_;
    require->ids = {id};
    send(consensus::replica_address(consensus::leader_of(view_, config_.n)),
         std::move(require));
  }
  arm_forward_timer(id);
}

const std::vector<std::byte>* SmartPrReplica::find_command(RequestId id) const {
  if (auto it = requests_.find(id); it != requests_.end()) return &it->second;
  return rejected_.find(id);
}

// ---------------------------------------------------------------------------
// Mod-SMaRt agreement — unchanged except that the leader only proposes
// REQUIREd requests whose body it owns (accepted or cached).
// ---------------------------------------------------------------------------

void SmartPrReplica::try_propose() {
  if (!is_leader()) return;
  const std::uint64_t window_end = log_.next_exec() + config_.window_size;
  while (!batch_.empty() && next_sqn_ < window_end) {
    if (!batch_.ready(now())) {
      arm_batch_timer();
      break;
    }
    std::vector<msg::Request> batch;
    batch_.cut([&](RequestId id) {
      if (clients_.executed(id) || proposed_.contains(id)) {
        in_eligible_.erase(id);
        return core::BatchPipeline<RequestId>::Verdict::Drop;
      }
      const std::vector<std::byte>* body = find_command(id);
      if (body == nullptr) {
        // Required by f+1 replicas but the body has not reached us yet;
        // the forwarding mechanism will deliver it. Keep it eligible.
        return core::BatchPipeline<RequestId>::Verdict::Defer;
      }
      in_eligible_.erase(id);
      proposed_.insert(id);
      requires_.erase(id);
      core::lifecycle::proposed(config_.trace, now(), me_.value, id, next_sqn_);
      batch.emplace_back(id, *body);
      return core::BatchPipeline<RequestId>::Verdict::Take;
    });
    if (batch.empty()) break;

    Instance& inst = log_.at(next_sqn_);
    inst.requests = batch;
    inst.has_binding = true;
    inst.own_write_sent = true;
    inst.write_votes.insert(me_.value);
    core::lifecycle::propose_received(config_.trace, now(), me_.value, next_sqn_);

    auto propose = std::make_shared<msg::SmartPropose>();
    propose->view = view_;
    propose->sqn = SeqNum{next_sqn_};
    propose->requests = std::move(batch);
    multicast(std::move(propose));
    ++stats_.proposals_sent;
    maybe_advance(next_sqn_);
    ++next_sqn_;
  }
  try_execute();
}

void SmartPrReplica::arm_batch_timer() {
  // Only reachable with batch_min > 1 and a nonzero flush delay.
  if (batch_timer_.valid()) return;
  batch_timer_ = set_timer(batch_.delay_until_ready(now()), [this] {
    batch_timer_ = sim::TimerId{};
    try_propose();
  });
}

void SmartPrReplica::handle_propose(const msg::SmartPropose& propose) {
  const std::uint64_t sqn = propose.sqn.value;
  if (sqn < log_.next_exec()) {
    // Retransmission for an executed instance: the sender lost our votes;
    // repeat WRITE and ACCEPT (idempotent) so it can catch up.
    if (log_.contains(sqn)) {
      auto write = std::make_shared<msg::SmartWrite>();
      write->from = me_;
      write->view = propose.view;
      write->sqn = SeqNum{sqn};
      multicast(std::move(write));
      auto accept = std::make_shared<msg::SmartAccept>();
      accept->from = me_;
      accept->view = propose.view;
      accept->sqn = SeqNum{sqn};
      multicast(std::move(accept));
    }
    return;
  }
  Instance& inst = log_.at(sqn);
  if (!inst.has_binding) {
    inst.requests = propose.requests;
    inst.has_binding = true;
    core::lifecycle::propose_received(config_.trace, now(), me_.value, sqn);
  }
  inst.write_votes.insert(consensus::leader_of(propose.view, config_.n).value);
  auto write = std::make_shared<msg::SmartWrite>();
  write->from = me_;
  write->view = propose.view;
  write->sqn = SeqNum{sqn};
  multicast(std::move(write));
  inst.own_write_sent = true;
  inst.write_votes.insert(me_.value);
  if (inst.own_accept_sent) {
    auto accept = std::make_shared<msg::SmartAccept>();
    accept->from = me_;
    accept->view = view_;
    accept->sqn = SeqNum{sqn};
    multicast(std::move(accept));
  }
  maybe_advance(sqn);
  try_execute();
}

void SmartPrReplica::handle_write(const msg::SmartWrite& write) {
  const std::uint64_t sqn = write.sqn.value;
  if (sqn < log_.next_exec()) return;
  Instance& inst = log_.at(sqn);
  inst.write_votes.insert(write.from.value);
  maybe_advance(sqn);
  try_execute();
}

void SmartPrReplica::maybe_advance(std::uint64_t sqn) {
  Instance& inst = log_.at(sqn);
  if (inst.write_votes.size() >= config_.quorum() && !inst.own_accept_sent) {
    auto accept = std::make_shared<msg::SmartAccept>();
    accept->from = me_;
    accept->view = view_;
    accept->sqn = SeqNum{sqn};
    multicast(std::move(accept));
    inst.own_accept_sent = true;
    inst.accept_votes.insert(me_.value);
    note_accept_quorum(sqn, inst);
  }
}

void SmartPrReplica::note_accept_quorum(std::uint64_t sqn, Instance& inst) {
  core::lifecycle::decision_quorum(config_.trace, now(), me_.value, sqn, inst,
                                   inst.accept_votes.size(), config_.quorum());
}

void SmartPrReplica::handle_accept(const msg::SmartAccept& accept) {
  const std::uint64_t sqn = accept.sqn.value;
  if (sqn < log_.next_exec()) return;
  Instance& inst = log_.at(sqn);
  inst.accept_votes.insert(accept.from.value);
  note_accept_quorum(sqn, inst);
  try_execute();
}

void SmartPrReplica::try_execute() {
  for (;;) {
    Instance* inst = log_.head();
    if (inst == nullptr) return;
    if (!inst->has_binding || inst->executed) return;
    if (inst->accept_votes.size() < config_.quorum()) return;

    for (const msg::Request& request : inst->requests) {
      const RequestId id = request.id;
      if (clients_.executed(id)) {
        ++stats_.duplicates_skipped;
        continue;
      }
      charge(config_.costs.apply_jitter(sm_->execution_cost(request.command), cost_rng_));
      std::vector<std::byte> result = sm_->execute(request.command);
      ++stats_.executed;
      core::lifecycle::executed(config_.trace, now(), me_.value, id, log_.next_exec());
      auto reply = std::make_shared<const msg::Reply>(id, std::move(result));
      clients_.record(id, reply);
      // Free the intake slot and stop the forwarding of this request.
      if (active_.erase(id) > 0) acceptance_->observe_execution(now(), active_.size());
      requests_.erase(id);
      if (auto timer_it = forward_timers_.find(id); timer_it != forward_timers_.end()) {
        cancel_timer(timer_it->second);
        forward_timers_.erase(timer_it);
      }
      send(consensus::client_address(id.cid), reply);
      core::lifecycle::reply_sent(config_.trace, now(), me_.value, id);
      if (on_execute) on_execute(SeqNum{log_.next_exec()}, id);
    }
    inst->executed = true;
    log_.gc_executed(config_.window_size);
    log_.advance_head();
  }
}

void SmartPrReplica::on_restart() {
  for (auto& [id, timer] : forward_timers_) cancel_timer(timer);
  forward_timers_.clear();
  cancel_timer(retransmit_timer_);
  cancel_timer(batch_timer_);
  retransmit_tick();
}

void SmartPrReplica::retransmit_tick() {
  retransmit_timer_ =
      set_timer(config_.retransmit_interval, [this] { retransmit_tick(); });
  if (!is_leader()) return;
  Instance* head = log_.head();
  if (head == nullptr || !head->has_binding || head->executed) {
    retransmit_stall_.reset();
    return;
  }
  if (retransmit_stall_.stalled_at(log_.next_exec())) {
    auto propose = std::make_shared<msg::SmartPropose>();
    propose->view = view_;
    propose->sqn = SeqNum{log_.next_exec()};
    propose->requests = head->requests;
    multicast(std::move(propose));
  }
}

}  // namespace idem::smart
