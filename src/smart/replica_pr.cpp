#include "smart/replica_pr.hpp"

#include <cassert>

namespace idem::smart {

SmartPrReplica::SmartPrReplica(sim::Runtime& sim, sim::Transport& net, ReplicaId id,
                               SmartPrConfig config,
                               std::unique_ptr<app::StateMachine> state_machine,
                               std::unique_ptr<core::AcceptanceTest> acceptance)
    : sim::Node(sim, net, consensus::replica_address(id), sim::NodeKind::Replica),
      config_(config),
      me_(id),
      sm_(std::move(state_machine)),
      acceptance_(std::move(acceptance)),
      cost_rng_(sim.seed(), 0xC057'3000ull + id.value) {
  assert(config_.n == 2 * config_.f + 1);
  retransmit_tick();
}

Duration SmartPrReplica::message_cost(const sim::Payload& message) const {
  return config_.costs.cost(message, cost_rng_);
}

Duration SmartPrReplica::send_cost(const sim::Payload& message) const {
  return config_.costs.send_cost(message, cost_rng_);
}

void SmartPrReplica::multicast(sim::PayloadPtr message) {
  for (std::uint32_t i = 0; i < config_.n; ++i) {
    if (i == me_.value) continue;
    send(consensus::replica_address(ReplicaId{i}), message);
  }
}

void SmartPrReplica::on_message(sim::NodeId from, const sim::Payload& message) {
  (void)from;
  const auto* base = dynamic_cast<const msg::Message*>(&message);
  if (base == nullptr) return;
  switch (base->type()) {
    case msg::Type::Request:
      handle_request(static_cast<const msg::Request&>(*base));
      break;
    case msg::Type::Require: {
      const auto& require = static_cast<const msg::Require&>(*base);
      for (RequestId id : require.ids) note_require(require.from, id);
      break;
    }
    case msg::Type::Forward:
      handle_forward(static_cast<const msg::Forward&>(*base));
      break;
    case msg::Type::SmartPropose:
      handle_propose(static_cast<const msg::SmartPropose&>(*base));
      break;
    case msg::Type::SmartWrite:
      handle_write(static_cast<const msg::SmartWrite&>(*base));
      break;
    case msg::Type::SmartAccept:
      handle_accept(static_cast<const msg::SmartAccept&>(*base));
      break;
    default:
      break;
  }
}

// ---------------------------------------------------------------------------
// Intake phase (collaborative proactive rejection)
// ---------------------------------------------------------------------------

bool SmartPrReplica::already_executed(RequestId id) const {
  auto it = last_exec_.find(id.cid.value);
  return it != last_exec_.end() && id.onr.value <= it->second;
}

void SmartPrReplica::handle_request(const msg::Request& request) {
  ++stats_.requests_received;
  const RequestId id = request.id;
  if (already_executed(id)) {
    auto reply_it = last_reply_.find(id.cid.value);
    if (reply_it != last_reply_.end() && reply_it->second->id == id) {
      send(consensus::client_address(id.cid), reply_it->second);
    }
    return;
  }
  if (requests_.contains(id)) return;
  // Requests in the rejected cache are re-tested: the acceptance test is
  // time-varying, so a retransmission may pass now.

  core::AcceptanceContext ctx;
  ctx.active_requests = active_.size();
  ctx.reject_threshold = config_.reject_threshold;
  ctx.now = now();
  if (acceptance_->accept(id, request.command, ctx)) {
    IDEM_TRACE(config_.trace, now(), obs::TraceEventKind::AcceptVerdict, me_.value, id, 1);
    accept_request(id, request.command, /*client_issued=*/true);
  } else {
    ++stats_.rejected;
    IDEM_TRACE(config_.trace, now(), obs::TraceEventKind::AcceptVerdict, me_.value, id, 0);
    cache_rejected(id, request.command);
    send(consensus::client_address(id.cid), std::make_shared<const msg::Reject>(id));
  }
}

void SmartPrReplica::accept_request(RequestId id, std::vector<std::byte> command,
                                    bool client_issued) {
  requests_[id] = std::move(command);
  if (auto it = rejected_index_.find(id); it != rejected_index_.end()) {
    rejected_lru_.erase(it->second);
    rejected_index_.erase(it);
  }
  if (client_issued) {
    active_.insert(id);
    ++stats_.accepted;
  } else {
    ++stats_.forward_accepted;
    IDEM_TRACE(config_.trace, now(), obs::TraceEventKind::ForwardAccepted, me_.value, id);
  }
  arm_forward_timer(id);
  if (is_leader()) {
    note_require(me_, id);
  } else {
    auto require = std::make_shared<msg::Require>();
    require->from = me_;
    require->ids = {id};
    send(consensus::replica_address(consensus::leader_of(view_, config_.n)),
         std::move(require));
  }
}

void SmartPrReplica::note_require(ReplicaId voter, RequestId id) {
  if (already_executed(id) || proposed_.contains(id)) return;
  IDEM_TRACE(config_.trace, now(), obs::TraceEventKind::RequireNoted, me_.value, id,
             voter.value);
  std::size_t votes = requires_.vote(id, voter);
  if (votes >= config_.quorum() && !in_eligible_.contains(id)) {
    in_eligible_.insert(id);
    eligible_.push_back(id);
  }
  try_propose();
}

void SmartPrReplica::handle_forward(const msg::Forward& forward) {
  for (const msg::Request& request : forward.requests) {
    if (already_executed(request.id) || requests_.contains(request.id)) continue;
    accept_request(request.id, request.command, /*client_issued=*/false);
  }
}

void SmartPrReplica::arm_forward_timer(RequestId id) {
  if (forward_timers_.contains(id)) return;
  forward_timers_[id] = set_timer(config_.forward_timeout, [this, id] {
    forward_timers_.erase(id);
    forward_request(id);
  });
}

void SmartPrReplica::forward_request(RequestId id) {
  if (already_executed(id)) return;
  auto it = requests_.find(id);
  if (it == requests_.end()) return;
  auto forward = std::make_shared<msg::Forward>();
  forward->from = me_;
  forward->requests.emplace_back(id, it->second);
  multicast(std::move(forward));
  ++stats_.forwards_sent;
  // The request is overdue, so our REQUIRE may have been lost too
  // (fair-loss links); repeat it alongside the relays.
  if (is_leader()) {
    note_require(me_, id);
  } else {
    auto require = std::make_shared<msg::Require>();
    require->from = me_;
    require->ids = {id};
    send(consensus::replica_address(consensus::leader_of(view_, config_.n)),
         std::move(require));
  }
  arm_forward_timer(id);
}

void SmartPrReplica::cache_rejected(RequestId id, std::vector<std::byte> command) {
  if (config_.rejected_cache_size == 0) return;
  if (rejected_index_.contains(id)) return;
  rejected_lru_.emplace_front(id, std::move(command));
  rejected_index_[id] = rejected_lru_.begin();
  while (rejected_lru_.size() > config_.rejected_cache_size) {
    rejected_index_.erase(rejected_lru_.back().first);
    rejected_lru_.pop_back();
  }
}

const std::vector<std::byte>* SmartPrReplica::find_command(RequestId id) const {
  if (auto it = requests_.find(id); it != requests_.end()) return &it->second;
  if (auto it = rejected_index_.find(id); it != rejected_index_.end()) {
    return &it->second->second;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Mod-SMaRt agreement — unchanged except that the leader only proposes
// REQUIREd requests whose body it owns (accepted or cached).
// ---------------------------------------------------------------------------

void SmartPrReplica::try_propose() {
  if (!is_leader()) return;
  const std::uint64_t window_end = next_exec_ + config_.window_size;
  while (!eligible_.empty() && next_sqn_ < window_end) {
    std::vector<msg::Request> batch;
    std::deque<RequestId> deferred;
    while (!eligible_.empty() && batch.size() < config_.batch_max) {
      RequestId id = eligible_.front();
      eligible_.pop_front();
      if (already_executed(id) || proposed_.contains(id)) {
        in_eligible_.erase(id);
        continue;
      }
      const std::vector<std::byte>* body = find_command(id);
      if (body == nullptr) {
        // Required by f+1 replicas but the body has not reached us yet;
        // the forwarding mechanism will deliver it. Keep it eligible.
        deferred.push_back(id);
        continue;
      }
      in_eligible_.erase(id);
      proposed_.insert(id);
      requires_.erase(id);
      IDEM_TRACE(config_.trace, now(), obs::TraceEventKind::Proposed, me_.value, id, next_sqn_);
      batch.emplace_back(id, *body);
    }
    for (RequestId id : deferred) eligible_.push_back(id);
    if (batch.empty()) break;

    Instance& inst = instances_[next_sqn_];
    inst.requests = batch;
    inst.has_binding = true;
    inst.own_write_sent = true;
    inst.write_votes.insert(me_.value);
    IDEM_TRACE(config_.trace, now(), obs::TraceEventKind::ProposeReceived, me_.value, next_sqn_);

    auto propose = std::make_shared<msg::SmartPropose>();
    propose->view = view_;
    propose->sqn = SeqNum{next_sqn_};
    propose->requests = std::move(batch);
    multicast(std::move(propose));
    ++stats_.proposals_sent;
    maybe_advance(next_sqn_);
    ++next_sqn_;
  }
  try_execute();
}

void SmartPrReplica::handle_propose(const msg::SmartPropose& propose) {
  const std::uint64_t sqn = propose.sqn.value;
  if (sqn < next_exec_) {
    // Retransmission for an executed instance: the sender lost our votes;
    // repeat WRITE and ACCEPT (idempotent) so it can catch up.
    if (instances_.contains(sqn)) {
      auto write = std::make_shared<msg::SmartWrite>();
      write->from = me_;
      write->view = propose.view;
      write->sqn = SeqNum{sqn};
      multicast(std::move(write));
      auto accept = std::make_shared<msg::SmartAccept>();
      accept->from = me_;
      accept->view = propose.view;
      accept->sqn = SeqNum{sqn};
      multicast(std::move(accept));
    }
    return;
  }
  Instance& inst = instances_[sqn];
  if (!inst.has_binding) {
    inst.requests = propose.requests;
    inst.has_binding = true;
    IDEM_TRACE(config_.trace, now(), obs::TraceEventKind::ProposeReceived, me_.value, sqn);
  }
  inst.write_votes.insert(consensus::leader_of(propose.view, config_.n).value);
  auto write = std::make_shared<msg::SmartWrite>();
  write->from = me_;
  write->view = propose.view;
  write->sqn = SeqNum{sqn};
  multicast(std::move(write));
  inst.own_write_sent = true;
  inst.write_votes.insert(me_.value);
  if (inst.own_accept_sent) {
    auto accept = std::make_shared<msg::SmartAccept>();
    accept->from = me_;
    accept->view = view_;
    accept->sqn = SeqNum{sqn};
    multicast(std::move(accept));
  }
  maybe_advance(sqn);
  try_execute();
}

void SmartPrReplica::handle_write(const msg::SmartWrite& write) {
  const std::uint64_t sqn = write.sqn.value;
  if (sqn < next_exec_) return;
  Instance& inst = instances_[sqn];
  inst.write_votes.insert(write.from.value);
  maybe_advance(sqn);
  try_execute();
}

void SmartPrReplica::maybe_advance(std::uint64_t sqn) {
  Instance& inst = instances_[sqn];
  if (inst.write_votes.size() >= config_.quorum() && !inst.own_accept_sent) {
    auto accept = std::make_shared<msg::SmartAccept>();
    accept->from = me_;
    accept->view = view_;
    accept->sqn = SeqNum{sqn};
    multicast(std::move(accept));
    inst.own_accept_sent = true;
    inst.accept_votes.insert(me_.value);
    note_accept_quorum(sqn, inst);
  }
}

void SmartPrReplica::note_accept_quorum(std::uint64_t sqn, Instance& inst) {
  if (inst.quorum_traced || inst.accept_votes.size() < config_.quorum()) return;
  inst.quorum_traced = true;
  IDEM_TRACE(config_.trace, now(), obs::TraceEventKind::CommitQuorum, me_.value, sqn);
}

void SmartPrReplica::handle_accept(const msg::SmartAccept& accept) {
  const std::uint64_t sqn = accept.sqn.value;
  if (sqn < next_exec_) return;
  Instance& inst = instances_[sqn];
  inst.accept_votes.insert(accept.from.value);
  note_accept_quorum(sqn, inst);
  try_execute();
}

void SmartPrReplica::try_execute() {
  for (;;) {
    auto it = instances_.find(next_exec_);
    if (it == instances_.end()) return;
    Instance& inst = it->second;
    if (!inst.has_binding || inst.executed) return;
    if (inst.accept_votes.size() < config_.quorum()) return;

    for (const msg::Request& request : inst.requests) {
      const RequestId id = request.id;
      if (already_executed(id)) {
        ++stats_.duplicates_skipped;
        continue;
      }
      charge(config_.costs.apply_jitter(sm_->execution_cost(request.command), cost_rng_));
      std::vector<std::byte> result = sm_->execute(request.command);
      ++stats_.executed;
      IDEM_TRACE(config_.trace, now(), obs::TraceEventKind::Executed, me_.value, id, next_exec_);
      last_exec_[id.cid.value] = id.onr.value;
      auto reply = std::make_shared<const msg::Reply>(id, std::move(result));
      last_reply_[id.cid.value] = reply;
      // Free the intake slot and stop the forwarding of this request.
      active_.erase(id);
      requests_.erase(id);
      if (auto timer_it = forward_timers_.find(id); timer_it != forward_timers_.end()) {
        cancel_timer(timer_it->second);
        forward_timers_.erase(timer_it);
      }
      send(consensus::client_address(id.cid), reply);
      IDEM_TRACE(config_.trace, now(), obs::TraceEventKind::ReplySent, me_.value, id);
      if (on_execute) on_execute(SeqNum{next_exec_}, id);
    }
    inst.executed = true;
    if (next_exec_ >= 2 * config_.window_size) {
      instances_.erase(instances_.begin(),
                       instances_.lower_bound(next_exec_ - 2 * config_.window_size));
    }
    ++next_exec_;
  }
}

void SmartPrReplica::on_restart() {
  for (auto& [id, timer] : forward_timers_) cancel_timer(timer);
  forward_timers_.clear();
  cancel_timer(retransmit_timer_);
  retransmit_tick();
}

void SmartPrReplica::retransmit_tick() {
  retransmit_timer_ =
      set_timer(config_.retransmit_interval, [this] { retransmit_tick(); });
  if (!is_leader()) return;
  auto it = instances_.find(next_exec_);
  if (it == instances_.end() || !it->second.has_binding || it->second.executed) {
    retransmit_watermark_ = UINT64_MAX;
    return;
  }
  if (retransmit_watermark_ == next_exec_) {
    auto propose = std::make_shared<msg::SmartPropose>();
    propose->view = view_;
    propose->sqn = SeqNum{next_exec_};
    propose->requests = it->second.requests;
    multicast(std::move(propose));
  }
  retransmit_watermark_ = next_exec_;
}

}  // namespace idem::smart
