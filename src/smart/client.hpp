// SMaRt client: multicasts each request to all replicas and completes on
// the first reply (CFT mode needs no vote over replies).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "consensus/addresses.hpp"
#include "consensus/messages.hpp"
#include "consensus/service_client.hpp"
#include "obs/trace.hpp"
#include "sim/node.hpp"

namespace idem::smart {

struct SmartClientConfig {
  std::size_t n = 3;
  Duration retry_interval = 1 * kSecond;
  Duration operation_timeout = 0;

  /// Optional request-lifecycle trace sink (borrowed, may be null).
  obs::TraceRecorder* trace = nullptr;
};

class SmartClient final : public sim::Node, public consensus::ServiceClient {
 public:
  SmartClient(sim::Runtime& sim, sim::Transport& net, ClientId id, SmartClientConfig config);

  void invoke(std::vector<std::byte> command, Callback callback) override;
  void set_request_deadline(Duration deadline) override { request_deadline_ = deadline; }
  ClientId client_id() const override { return cid_; }
  bool busy() const override { return pending_.has_value(); }

 protected:
  void on_message(sim::NodeId from, const sim::Payload& message) override;

 private:
  struct PendingOp {
    RequestId id;
    std::shared_ptr<const msg::Request> request;
    Callback callback;
    Time issued = 0;
  };

  void multicast_request();
  void arm_retry();
  void complete(consensus::Outcome::Kind kind, std::vector<std::byte> result);

  SmartClientConfig config_;
  ClientId cid_;
  std::uint64_t onr_ = 0;
  Duration request_deadline_ = 0;  ///< budget stamped on subsequent invokes
  std::optional<PendingOp> pending_;
  sim::TimerId retry_timer_;
  sim::TimerId deadline_timer_;
};

}  // namespace idem::smart
