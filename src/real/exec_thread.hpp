// Per-replica execution thread: the real-mode implementation of
// core::Executor.
//
// The replica's event-loop thread stays latency-bound (decode, acceptance
// test, reject, agreement) while state-machine execution — the
// throughput-bound work — runs on this dedicated worker. The handoff is a
// single-producer/single-consumer slot of depth one: the protocol submits
// at most one instance at a time and does not touch the state machine
// until the completion lands back on its loop (EventLoop::post), so a
// mutex+condvar slot is a complete SPSC queue here and trivially
// TSan-clean.
//
// Lifecycle: construct against the replica's loop, submit from that loop's
// thread only, stop() (or destroy) after the loop thread has been joined —
// RealCluster declares the executor after the replica so teardown joins
// the worker before the replica and its state machine die. A completion
// posted to a stopped loop is simply never run, which is safe: the
// replica it targets is only destroyed afterwards, and by then the
// callback is just a discarded closure.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "core/executor.hpp"
#include "rpc/event_loop.hpp"

namespace idem::real {

class ExecutionThread final : public core::Executor {
 public:
  /// `loop` is the submitting replica's event loop; completions are posted
  /// to it. The worker thread starts immediately.
  explicit ExecutionThread(rpc::EventLoop& loop);
  ~ExecutionThread() override;

  ExecutionThread(const ExecutionThread&) = delete;
  ExecutionThread& operator=(const ExecutionThread&) = delete;

  // --- core::Executor ---
  void execute(app::StateMachine& sm, std::vector<std::vector<std::byte>> commands,
               Done done) override;

  /// Joins the worker; a job still in the slot is executed first (the
  /// completion may land on a stopped loop — see file comment). Idempotent.
  void stop();

  /// Batches executed so far. Safe to read from any thread.
  std::uint64_t batches_executed() const {
    return batches_executed_.load(std::memory_order_relaxed);
  }

 private:
  struct Job {
    app::StateMachine* sm = nullptr;
    std::vector<std::vector<std::byte>> commands;
    Done done;
  };

  void worker_main();

  rpc::EventLoop& loop_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::optional<Job> slot_;  ///< depth-1 SPSC handoff
  bool stopping_ = false;
  std::atomic<std::uint64_t> batches_executed_{0};
  std::thread worker_;
};

}  // namespace idem::real
