// Per-replica execution thread: the real-mode implementation of
// core::Executor.
//
// The replica's event-loop thread stays latency-bound (decode, acceptance
// test, reject, agreement) while state-machine execution — the
// throughput-bound work — runs on this dedicated worker. The handoff is a
// mutex+condvar job queue ordered earliest-due-first (the same EDF order
// the delivery path's ServiceDiscipline uses); each submitter's
// one-in-flight contract (core/executor.hpp) bounds its own backlog at
// one, so with the usual one-replica-per-executor deployment the queue
// never holds more than one job and behaves exactly like the depth-one
// SPSC slot it used to be — and stays trivially TSan-clean.
//
// Lifecycle: construct against the replica's loop, submit from that loop's
// thread only, stop() (or destroy) after the loop thread has been joined —
// RealCluster declares the executor after the replica so teardown joins
// the worker before the replica and its state machine die. A completion
// posted to a stopped loop is simply never run, which is safe: the
// replica it targets is only destroyed afterwards, and by then the
// callback is just a discarded closure.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "core/executor.hpp"
#include "rpc/event_loop.hpp"

namespace idem::real {

class ExecutionThread final : public core::Executor {
 public:
  /// `loop` is the submitting replica's event loop; completions are posted
  /// to it. The worker thread starts immediately.
  explicit ExecutionThread(rpc::EventLoop& loop);
  ~ExecutionThread() override;

  ExecutionThread(const ExecutionThread&) = delete;
  ExecutionThread& operator=(const ExecutionThread&) = delete;

  // --- core::Executor ---
  void execute(app::StateMachine& sm, std::vector<std::vector<std::byte>> commands,
               Time due, Done done) override;

  /// Joins the worker; jobs still queued are executed first (their
  /// completions may land on a stopped loop — see file comment). Idempotent.
  void stop();

  /// Batches executed so far. Safe to read from any thread.
  std::uint64_t batches_executed() const {
    return batches_executed_.load(std::memory_order_relaxed);
  }

 private:
  struct Job {
    app::StateMachine* sm = nullptr;
    std::vector<std::vector<std::byte>> commands;
    Time due = 0;           ///< earliest deadline in the batch; 0 = none
    std::uint64_t seq = 0;  ///< submission order, the EDF tie-break
    Done done;

    /// Max-heap inversion: earliest (due, seq) at the top; due 0 means "due
    /// now" and sorts first, so deadline-less batches never starve.
    bool operator<(const Job& other) const {
      if (due != other.due) return due > other.due;
      return seq > other.seq;
    }
  };

  void worker_main();

  rpc::EventLoop& loop_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::vector<Job> queue_;  ///< heap ordered by Job::operator< (earliest due first)
  std::uint64_t next_seq_ = 0;
  bool stopping_ = false;
  std::atomic<std::uint64_t> batches_executed_{0};
  std::thread worker_;
};

}  // namespace idem::real
