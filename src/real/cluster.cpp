#include "real/cluster.hpp"

#include <string>

#include "app/kv_store.hpp"
#include "consensus/addresses.hpp"
#include "consensus/messages.hpp"
#include "idem/acceptance.hpp"

namespace idem::real {

RealCluster::RealCluster(RealClusterConfig config)
    : config_(std::move(config)), epoch_(std::chrono::steady_clock::now()) {
  idem_ = config_.idem;
  idem_.n = config_.n;
  idem_.f = config_.f;
  idem_.reject_threshold = config_.reject_threshold;
  // Real time is the cost model: message handling occupies the loop thread
  // for however long it actually takes, so the simulated CPU charges and
  // their jitter/straggler knobs must be off.
  idem_.costs = consensus::CostModel{0, 0.0, 0, 0.0, 0.0, 0.0, 1.0};
  // REQUIRE flushes and leader batch cuts happen at end-of-iteration by
  // default (zero-delay timers fire after the iteration's I/O phase): one
  // recv burst of accepts leaves as one REQUIRE, one burst of quorums as
  // one PROPOSE, without adding wall-clock latency anywhere.
  if (config_.require_batch_max != 0) {
    idem_.require_batch_max = config_.require_batch_max;
    idem_.require_flush_interval = config_.require_flush_interval;
  }
  idem_.defer_propose = config_.defer_propose;
  idem_.commit_to_leader_only = config_.commit_to_leader_only;
  idem_.require_adoption = config_.require_adoption;
  idem_.release_superseded = config_.release_superseded;

  // Real mode ships the reason byte on REJECT and the deadline field on
  // REQUEST; the sim keeps both flags off so its wire-size cost charges
  // stay pinned.
  msg::set_wire_reject_reasons(true);
  msg::set_wire_request_deadlines(true);
  if (config_.admin || config_.live_hub != nullptr) config_.live_metrics = true;
  if (config_.live_hub != nullptr) {
    hub_ = config_.live_hub;
  } else if (config_.live_metrics) {
    live_ = std::make_unique<obs::LiveMetrics>();
    hub_ = live_.get();
  }

  members_.resize(config_.n);
  for (std::size_t i = 0; i < config_.n; ++i) {
    Member& member = members_[i];
    RealRuntimeConfig runtime_config;
    runtime_config.seed = config_.seed + i;
    runtime_config.epoch = epoch_;
    runtime_config.transport = config_.transport;
    runtime_config.transport.fixed_port = 0;  // loopback mesh: always ephemeral
    runtime_config.transport.listen_host = "127.0.0.1";
    member.runtime = std::make_unique<RealRuntime>(runtime_config);

    core::IdemConfig replica_config = idem_;
    if (config_.trace) {
      member.trace = std::make_unique<obs::TraceRecorder>(config_.trace_capacity);
      replica_config.trace = member.trace.get();
    }
    if (hub_ != nullptr) {
      // Identical series names across replicas aggregate cluster-wide.
      replica_config.telemetry =
          core::LiveTelemetry::attach(hub_->make_shard(), config_.telemetry_labels);
    }
    if (config_.execution_thread) {
      member.executor = std::make_unique<ExecutionThread>(member.runtime->loop());
      replica_config.executor = member.executor.get();
    }
    std::unique_ptr<core::AcceptanceTest> acceptance =
        core::make_default_acceptance(replica_config, config_.expected_clients);
    if (config_.deadline_aware) {
      acceptance = std::make_unique<core::DeadlineAware>(config_.deadline_params,
                                                         std::move(acceptance));
    }
    member.replica = std::make_unique<core::IdemReplica>(
        *member.runtime, member.runtime->transport(),
        ReplicaId{static_cast<std::uint32_t>(i)}, replica_config, make_store(),
        std::move(acceptance));
    if (config_.discipline != sim::DisciplineKind::Fifo) {
      member.replica->set_discipline(sim::make_discipline(config_.discipline));
    }
    if (config_.inline_dispatch) member.replica->set_inline_dispatch(true);
    if (config_.peer_priority) {
      // Agreement traffic ahead of the client-REQUEST flood: the sender id
      // distinguishes the two, replicas live below kClientAddressBase.
      member.replica->set_urgent_classifier(
          [](sim::NodeId from) { return !consensus::is_client_address(from); });
    }
    member.port = member.runtime->transport().port_of(
        consensus::replica_address(ReplicaId{static_cast<std::uint32_t>(i)}));

    if (config_.metrics_interval > 0) {
      member.metrics = std::make_unique<obs::MetricsRegistry>();
      register_metrics(member, i);
      member.metrics->reserve_samples(config_.metrics_reserve);
      member.ticker = std::make_unique<obs::MetricsTicker>(
          *member.runtime, *member.metrics, config_.metrics_interval);
      // Armed pre-start; the timer fires on the member's own loop thread.
      member.ticker->start();
    }
  }

  // Full mesh: every replica knows every peer's loopback port.
  for (std::size_t i = 0; i < config_.n; ++i) {
    for (std::size_t j = 0; j < config_.n; ++j) {
      if (i == j) continue;
      members_[i].runtime->transport().set_remote(
          consensus::replica_address(ReplicaId{static_cast<std::uint32_t>(j)}),
          members_[j].port);
    }
  }

  if (config_.admin) {
    // Rides member 0's loop; the shards behind the hub are mutex-backed,
    // so a scrape observes every replica without cross-thread hazards.
    admin_ = std::make_unique<rpc::HttpAdmin>(members_[0].runtime->loop(), config_.admin_port);
    obs::LiveMetrics* hub = hub_;
    admin_->route("/metrics", "text/plain; version=0.0.4",
                  [hub] { return obs::LiveMetrics::render_prometheus(hub->snapshot()); });
    admin_->route("/stats", "application/json",
                  [hub] { return obs::LiveMetrics::render_json(hub->snapshot()); });
  }
}

RealCluster::~RealCluster() { shutdown(); }

std::unique_ptr<app::StateMachine> RealCluster::make_store() const {
  // Zero modelled costs: execution takes whatever it actually takes.
  auto store = std::make_unique<app::KvStore>(app::KvStore::Costs{0, 0.0, 0});
  if (config_.preload) {
    // Same config + const load phase => byte-identical content everywhere.
    Rng rng(config_.seed, /*stream=*/0x10ADull);
    app::YcsbWorkload workload(config_.workload, rng);
    for (const app::KvCommand& command : workload.load_phase()) {
      store->execute(command.encode());
    }
  }
  return store;
}

void RealCluster::register_metrics(Member& member, std::size_t index) {
  // Same naming scheme as the sim harness so exporters and plots work on
  // either mode's JSONL unchanged.
  const std::string prefix = "r" + std::to_string(index) + ".";
  core::IdemReplica* replica = member.replica.get();
  member.metrics->add_gauge(prefix + "queue",
                            [replica] { return static_cast<double>(replica->queue_length()); });
  member.metrics->add_gauge(prefix + "active", [replica] {
    return static_cast<double>(replica->active_requests());
  });
  member.metrics->add_gauge(prefix + "executed", [replica] {
    return static_cast<double>(replica->stats().executed);
  });
  member.metrics->add_gauge(prefix + "rejected", [replica] {
    return static_cast<double>(replica->stats().rejected);
  });
  member.metrics->add_gauge(prefix + "view", [replica] {
    return static_cast<double>(replica->view().value);
  });
}

void RealCluster::start() {
  if (started_) return;
  started_ = true;
  for (Member& member : members_) {
    if (!member.crashed) member.runtime->start();
  }
}

void RealCluster::shutdown() {
  for (Member& member : members_) {
    if (member.runtime) member.runtime->stop();
  }
}

void RealCluster::crash_replica(std::size_t index) {
  Member& member = members_[index];
  if (member.crashed) return;
  member.runtime->stop();
  // The admin endpoint's sockets live on member 0's loop; tear it down
  // before that loop object dies.
  if (index == 0) admin_.reset();
  // Loop thread is gone; reading and tearing down on this thread is safe.
  // The executor joins before the replica dies — a completion it posted to
  // the stopped loop is never run.
  if (member.executor) member.executor->stop();
  member.final_stats = member.replica->stats();
  member.final_transport = member.runtime->transport().stats();
  if (member.ticker) member.ticker->stop();
  member.executor.reset();
  member.replica.reset();   // unregisters from the transport
  member.runtime.reset();   // closes all sockets: peers see a crash
  member.port = 0;
  member.crashed = true;
}

std::vector<rpc::PeerAddress> RealCluster::replica_addresses() const {
  std::vector<rpc::PeerAddress> addresses;
  addresses.reserve(members_.size());
  for (const Member& member : members_) {
    addresses.push_back(rpc::PeerAddress{"127.0.0.1", member.port});
  }
  return addresses;
}

core::IdemClientConfig RealCluster::client_config() const {
  core::IdemClientConfig client;
  client.n = config_.n;
  client.f = config_.f;
  return client;
}

core::ReplicaStats RealCluster::replica_stats(std::size_t index) {
  Member& member = members_[index];
  if (member.crashed) return member.final_stats;
  return member.runtime->call([&member] { return member.replica->stats(); });
}

rpc::TransportStats RealCluster::transport_stats(std::size_t index) {
  Member& member = members_[index];
  if (member.crashed) return member.final_transport;
  return member.runtime->call([&member] { return member.runtime->transport().stats(); });
}

rpc::TransportMemory RealCluster::transport_memory(std::size_t index) {
  Member& member = members_[index];
  if (member.crashed) return {};
  return member.runtime->call([&member] { return member.runtime->transport().memory(); });
}

RealCluster::Quiescence RealCluster::quiescence(std::size_t index) {
  Member& member = members_[index];
  if (member.crashed) return {};
  return member.runtime->call([&member] {
    Quiescence q;
    q.active = member.replica->active_requests();
    q.queue = member.replica->queue_length();
    q.next_execute = member.replica->next_execute().value;
    return q;
  });
}

std::vector<std::pair<std::string, std::string>> RealCluster::dump_store(std::size_t index) {
  Member& member = members_[index];
  if (member.crashed) return {};
  return member.runtime->call([&member] {
    auto* store = dynamic_cast<app::KvStore*>(&member.replica->state_machine());
    std::vector<std::pair<std::string, std::string>> entries;
    if (store == nullptr) return entries;
    entries.reserve(store->entries().size());
    for (const auto& [key, value] : store->entries()) entries.emplace_back(key, value);
    return entries;
  });
}

void RealCluster::put_entries(std::size_t index,
                              const std::vector<std::pair<std::string, std::string>>& entries) {
  Member& member = members_[index];
  if (member.crashed) return;
  member.runtime->call([&member, &entries] {
    auto* store = dynamic_cast<app::KvStore*>(&member.replica->state_machine());
    if (store == nullptr) return;
    for (const auto& [key, value] : entries) store->put(key, value);
  });
}

std::size_t RealCluster::leader_index() {
  for (std::size_t i = 0; i < members_.size(); ++i) {
    Member& member = members_[i];
    if (member.crashed) continue;
    bool leads = member.runtime->call([&member] { return member.replica->is_leader(); });
    if (leads) return i;
  }
  return members_.size();
}

std::vector<std::vector<obs::TraceEvent>> RealCluster::trace_snapshots() {
  std::vector<std::vector<obs::TraceEvent>> parts;
  for (Member& member : members_) {
    if (!member.trace) continue;
    if (member.crashed || !member.runtime) {
      parts.push_back(member.trace->snapshot());
    } else {
      parts.push_back(
          member.runtime->call([&member] { return member.trace->snapshot(); }));
    }
  }
  return parts;
}

std::vector<obs::TraceEvent> RealCluster::merged_trace() {
  return obs::merge_trace_snapshots(trace_snapshots());
}

}  // namespace idem::real
