#include "real/storm.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstring>
#include <string>
#include <utility>

#include "consensus/addresses.hpp"
#include "consensus/messages.hpp"

namespace idem::real {

namespace {

/// Sessions spawned or destroyed per reconciliation step outside a ramp —
/// a flash crowd arrives in bursts of this size with an event-loop
/// iteration between bursts, so established sessions' I/O keeps running.
constexpr std::size_t kSpawnChunk = 256;

/// Minimum gap between ramp steps; finer ramps batch several spawns per
/// step instead of scheduling sub-millisecond timers.
constexpr Duration kMinRampStep = 2 * kMillisecond;

/// Payload bytes a loris session's forever-unfinished frame claims.
constexpr std::size_t kLorisClaim = 64;

}  // namespace

/// One TCP connection of a session (session → one replica).
struct StormEngine::Conn {
  enum class State : std::uint8_t { Dead, Connecting, Connected };

  explicit Conn(std::size_t read_buffer)
      : reader(rpc::kMaxFrameBytes, read_buffer) {}

  int fd = -1;
  State state = State::Dead;
  std::uint32_t replica = 0;  ///< index into options_.replicas
  bool want_write = false;    ///< EPOLLOUT currently armed
  Time connect_started = 0;
  rpc::FrameReader reader;
  rpc::PendingWrites out;
};

/// One client session: per-session protocol state machine.
struct StormEngine::Session {
  std::size_t index = 0;
  ClientId cid;
  bool loris = false;
  bool active = false;  ///< at least one connection established
  /// Bumped by every teardown; lets re-entrant paths (drain callbacks that
  /// complete an operation which tears the connections down) detect that
  /// the connection they were reading from is gone.
  std::uint64_t conn_epoch = 0;
  std::vector<Conn> conns;

  // In-flight operation (one at a time, like the real client).
  std::uint64_t onr = 0;
  bool pending = false;
  RequestId pending_id;
  Time issued_at = 0;
  std::vector<std::byte> pending_frame;  ///< kept for retransmission
  std::uint64_t reject_mask = 0;  ///< replicas that rejected *this try*
  bool ambiv_armed = false;
  std::size_t ops_since_connect = 0;
  bool arrival_pending = false;  ///< open loop: an arrival found us busy

  std::unique_ptr<app::YcsbWorkload> workload;
  Rng* arrivals = nullptr;

  // Slow loris: the partial frame being trickled.
  std::vector<std::byte> loris_frame;
  std::size_t loris_sent = 0;

  sim::EventId retry_timer;
  sim::EventId timeout_timer;
  sim::EventId ambiv_timer;
  sim::EventId backoff_timer;
  sim::EventId arrival_timer;
  sim::EventId reconnect_timer;
  sim::EventId loris_timer;
};

StormEngine::StormEngine(StormOptions options)
    : options_(std::move(options)), loop_(options_.seed, options_.epoch) {
  const std::size_t n = options_.replicas.size();
  f_ = options_.f != std::size_t(-1) ? options_.f : (n >= 3 ? (n - 1) / 2 : 0);
  issue_rate_ = options_.issue_rate;
  jitter_ = &loop_.rng("storm.jitter");
}

StormEngine::~StormEngine() {
  for (auto& session : sessions_) destroy_session(*session);
  sessions_.clear();
}

std::size_t StormEngine::raise_fd_limit(std::size_t fds) {
  rlimit lim{};
  if (::getrlimit(RLIMIT_NOFILE, &lim) != 0) return 0;
  if (lim.rlim_cur >= fds) return lim.rlim_cur;
  rlimit want = lim;
  want.rlim_cur = fds;
  if (want.rlim_max < fds) want.rlim_max = fds;  // root may raise the hard cap
  if (::setrlimit(RLIMIT_NOFILE, &want) == 0) return want.rlim_cur;
  // Raising the hard limit needs privilege; settle for the existing cap.
  want.rlim_cur = lim.rlim_max;
  want.rlim_max = lim.rlim_max;
  if (::setrlimit(RLIMIT_NOFILE, &want) == 0) return want.rlim_cur;
  return lim.rlim_cur;
}

void StormEngine::start() {
  target_ = options_.sessions;
  ramp_active_ = options_.ramp > 0 && target_ > 0;
  if (ramp_active_) {
    const Duration per_session = options_.ramp / static_cast<Duration>(target_);
    if (per_session >= kMinRampStep) {
      ramp_chunk_ = 1;
      ramp_interval_ = per_session;
    } else {
      ramp_interval_ = kMinRampStep;
      ramp_chunk_ = per_session > 0
                        ? (kMinRampStep + per_session - 1) / per_session
                        : target_;
    }
  }
  schedule_spawn_step();
}

void StormEngine::run_for(Duration span) { loop_.run_for(span); }

void StormEngine::set_target_sessions(std::size_t n) {
  target_ = n;
  ramp_active_ = false;  // population jumps reconcile in chunked bursts
  schedule_spawn_step();
}

void StormEngine::set_issue_rate(double ops_per_sec) {
  issue_rate_ = ops_per_sec;
  for (auto& owned : sessions_) {
    Session& session = *owned;
    if (session.arrival_timer.valid()) {
      loop_.cancel(session.arrival_timer);
      session.arrival_timer = {};
    }
    if (!session.active || session.loris) continue;
    if (issue_rate_ > 0) {
      arm_arrival(session);
    } else if (!session.pending && !session.backoff_timer.valid()) {
      // Closed loop restarts from a completion; kick the idle sessions.
      Session* s = &session;
      session.backoff_timer = loop_.schedule_after(0, [this, s] {
        s->backoff_timer = {};
        if (s->active && !s->pending) issue_op(*s);
      });
    }
  }
}

void StormEngine::reconnect_all() {
  for (auto& owned : sessions_) {
    if (!owned->reconnect_timer.valid()) teardown_conns(*owned, /*reconnect=*/true);
  }
}

StormGauges StormEngine::gauges() const {
  StormGauges g;
  g.target_sessions = target_;
  g.sessions = sessions_.size();
  g.open_connections = open_connections_;
  g.connecting = connecting_;
  return g;
}

Duration StormEngine::reconnect_jitter() {
  const Duration lo = options_.reconnect_delay_min;
  const Duration hi = std::max(options_.reconnect_delay_max, lo);
  Duration delay = hi > lo ? lo + jitter_->uniform_int(0, hi - lo) : lo;
  return std::max<Duration>(delay, kMillisecond);
}

// --- population reconciliation -------------------------------------------

void StormEngine::schedule_spawn_step() {
  if (spawn_scheduled_) return;
  spawn_scheduled_ = true;
  if (ramp_active_ && ramp_interval_ > 0) {
    loop_.schedule_after(ramp_interval_, [this] { spawn_step(); });
  } else {
    loop_.defer([this] { spawn_step(); });
  }
}

void StormEngine::spawn_step() {
  spawn_scheduled_ = false;
  const std::size_t chunk = ramp_active_ ? ramp_chunk_ : kSpawnChunk;
  std::size_t moved = 0;
  while (sessions_.size() > target_ && moved < chunk) {
    destroy_session(*sessions_.back());
    sessions_.pop_back();
    ++moved;
  }
  while (sessions_.size() < target_ && moved < chunk) {
    spawn_session();
    ++moved;
  }
  if (sessions_.size() != target_) {
    schedule_spawn_step();
  } else {
    ramp_active_ = false;
  }
}

void StormEngine::spawn_session() {
  auto owned = std::make_unique<Session>();
  Session& session = *owned;
  session.index = next_index_++;
  session.cid = ClientId{options_.client_id_base + session.index};
  // Deterministic interleaved striping instead of a random draw: every
  // prefix of the population carries (about) the configured loris
  // fraction, so small runs still mix both kinds.
  const double frac = options_.slow_loris_fraction;
  session.loris =
      frac > 0 && static_cast<std::uint64_t>(static_cast<double>(session.index + 1) * frac) >
                      static_cast<std::uint64_t>(static_cast<double>(session.index) * frac);
  if (!session.loris) {
    session.workload = std::make_unique<app::YcsbWorkload>(
        options_.workload, loop_.rng("storm.wl.c" + std::to_string(session.cid.value)));
    if (options_.issue_rate > 0 || issue_rate_ > 0) {
      session.arrivals = &loop_.rng("storm.arr.c" + std::to_string(session.cid.value));
    }
  }
  sessions_.push_back(std::move(owned));
  connect_session(*sessions_.back());
}

void StormEngine::destroy_session(Session& session) {
  teardown_conns(session, /*reconnect=*/false);
  if (session.reconnect_timer.valid()) {
    loop_.cancel(session.reconnect_timer);
    session.reconnect_timer = {};
  }
}

// --- connection lifecycle -------------------------------------------------

void StormEngine::connect_session(Session& session) {
  session.ops_since_connect = 0;
  const std::size_t n = options_.replicas.size();
  const std::size_t targets = session.loris ? 1 : n;
  session.conns.clear();
  session.conns.reserve(targets);
  for (std::size_t ci = 0; ci < targets; ++ci) {
    Conn& conn = session.conns.emplace_back(options_.read_buffer_bytes);
    // Loris sessions hold one connection each, striped across replicas.
    conn.replica = session.loris
                       ? static_cast<std::uint32_t>(session.index % n)
                       : static_cast<std::uint32_t>(ci);
  }
  for (std::size_t ci = 0; ci < session.conns.size(); ++ci) open_conn(session, ci);
  // Whole cluster unreachable (or fd exhaustion): retry later instead of
  // leaving the session permanently dark.
  bool any = false;
  for (const Conn& conn : session.conns) any |= conn.state != Conn::State::Dead;
  if (!any && !session.reconnect_timer.valid()) {
    Session* s = &session;
    session.reconnect_timer = loop_.schedule_after(reconnect_jitter(), [this, s] {
      s->reconnect_timer = {};
      connect_session(*s);
    });
  }
}

void StormEngine::open_conn(Session& session, std::size_t ci) {
  Conn& conn = session.conns[ci];
  const rpc::PeerAddress& address = options_.replicas[conn.replica];
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    ++window_.connect_failures;
    return;
  }
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(address.port);
  if (::inet_pton(AF_INET, address.host.c_str(), &sa.sin_addr) != 1) {
    ::close(fd);
    ++window_.connect_failures;
    return;
  }
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof sa);
  if (rc != 0 && errno != EINPROGRESS) {
    ::close(fd);
    ++window_.connect_failures;
    return;
  }
  conn.fd = fd;
  conn.state = Conn::State::Connecting;
  conn.connect_started = loop_.now();
  ++connecting_;
  Session* s = &session;
  loop_.watch(fd, EPOLLOUT,
              [this, s, ci](std::uint32_t events) { conn_event(*s, ci, events); });
}

void StormEngine::teardown_conns(Session& session, bool reconnect) {
  ++session.conn_epoch;
  cancel_op_timers(session);
  if (session.arrival_timer.valid()) {
    loop_.cancel(session.arrival_timer);
    session.arrival_timer = {};
  }
  if (session.loris_timer.valid()) {
    loop_.cancel(session.loris_timer);
    session.loris_timer = {};
  }
  session.pending = false;
  session.arrival_pending = false;
  session.active = false;
  for (Conn& conn : session.conns) {
    if (conn.fd >= 0) {
      loop_.unwatch(conn.fd);
      ::close(conn.fd);
      conn.fd = -1;
    }
    if (conn.state == Conn::State::Connected) --open_connections_;
    if (conn.state == Conn::State::Connecting) --connecting_;
    conn.state = Conn::State::Dead;
    conn.out.clear();
  }
  if (reconnect && !session.reconnect_timer.valid()) {
    Session* s = &session;
    session.reconnect_timer = loop_.schedule_after(reconnect_jitter(), [this, s] {
      s->reconnect_timer = {};
      connect_session(*s);
    });
  }
}

void StormEngine::cancel_op_timers(Session& session) {
  for (sim::EventId* timer : {&session.retry_timer, &session.timeout_timer,
                              &session.ambiv_timer, &session.backoff_timer}) {
    if (timer->valid()) {
      loop_.cancel(*timer);
      *timer = {};
    }
  }
}

void StormEngine::conn_event(Session& session, std::size_t ci, std::uint32_t events) {
  Conn& conn = session.conns[ci];
  if (conn.state == Conn::State::Connecting) {
    int err = 0;
    socklen_t len = sizeof err;
    if ((events & (EPOLLERR | EPOLLHUP)) != 0 ||
        ::getsockopt(conn.fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      ++window_.connect_failures;
      loop_.unwatch(conn.fd);
      ::close(conn.fd);
      conn.fd = -1;
      conn.state = Conn::State::Dead;
      --connecting_;
      conn.out.clear();
      // A refused replica (crashed leader after a stampede) is left dead —
      // the session carries on with the survivors. Only a fully dark
      // session retries from scratch.
      bool any = false;
      for (const Conn& c : session.conns) any |= c.state != Conn::State::Dead;
      if (!any) teardown_conns(session, /*reconnect=*/true);
      return;
    }
    conn_established(session, ci);
    return;
  }
  if (conn.state != Conn::State::Connected) return;
  if ((events & (EPOLLERR | EPOLLHUP)) != 0) {
    on_reset(session, ci);
    return;
  }
  if ((events & EPOLLOUT) != 0) {
    if (!flush_conn(session, ci)) return;
  }
  if ((events & EPOLLIN) != 0) conn_readable(session, ci);
}

void StormEngine::conn_established(Session& session, std::size_t ci) {
  Conn& conn = session.conns[ci];
  conn.state = Conn::State::Connected;
  --connecting_;
  ++open_connections_;
  ++window_.connects;
  window_.connect_latency.record(loop_.now() - conn.connect_started);
  int one = 1;
  ::setsockopt(conn.fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  conn.want_write = !conn.out.empty();
  loop_.modify(conn.fd, EPOLLIN | (conn.want_write ? EPOLLOUT : 0u));
  if (session.loris) {
    loris_start(session, ci);
    return;
  }
  if (!session.active) session_active(session);
}

void StormEngine::on_reset(Session& session, std::size_t ci) {
  ++window_.resets;
  if (session.loris) ++window_.loris_evictions;
  (void)ci;
  // Any established connection dropping makes the session reconnect all of
  // them after a jittered delay — the behavior that turns a replica crash
  // into a reconnect stampede.
  teardown_conns(session, /*reconnect=*/true);
}

// --- data path ------------------------------------------------------------

bool StormEngine::flush_conn(Session& session, std::size_t ci) {
  Conn& conn = session.conns[ci];
  while (!conn.out.empty()) {
    iovec iov[rpc::kMaxFlushIov];
    const std::size_t count = conn.out.fill_iovec(iov, rpc::kMaxFlushIov);
    msghdr mh{};
    mh.msg_iov = iov;
    mh.msg_iovlen = count;
    const ssize_t written = ::sendmsg(conn.fd, &mh, MSG_NOSIGNAL);
    if (written < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!conn.want_write) {
          conn.want_write = true;
          loop_.modify(conn.fd, EPOLLIN | EPOLLOUT);
        }
        return true;
      }
      on_reset(session, ci);
      return false;
    }
    conn.out.consume(static_cast<std::size_t>(written));
  }
  if (conn.want_write) {
    conn.want_write = false;
    loop_.modify(conn.fd, EPOLLIN);
  }
  return true;
}

void StormEngine::conn_readable(Session& session, std::size_t ci) {
  Conn& conn = session.conns[ci];
  const std::uint64_t epoch = session.conn_epoch;
  // One recv per readiness: level-triggered epoll re-arms if more bytes
  // wait, which keeps one chatty connection from starving 10k quiet ones.
  std::span<std::byte> span = conn.reader.write_span(options_.read_buffer_bytes);
  const ssize_t received = ::recv(conn.fd, span.data(), span.size(), 0);
  if (received == 0) {
    on_reset(session, ci);
    return;
  }
  if (received < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
    on_reset(session, ci);
    return;
  }
  conn.reader.commit(static_cast<std::size_t>(received));
  const bool ok = conn.reader.drain(
      [this, &session, epoch](std::uint32_t sender, std::uint32_t /*sender_port*/,
                              std::span<const std::byte> payload) {
        // A frame earlier in this batch may have completed the operation
        // and torn the connections down (reconnect_every_ops churn).
        if (session.conn_epoch != epoch) return;
        on_frame(session, sender, payload);
      });
  if (session.conn_epoch != epoch) return;
  if (!ok) on_reset(session, ci);
}

void StormEngine::on_frame(Session& session, std::uint32_t sender,
                           std::span<const std::byte> payload) {
  if (!session.pending) return;
  std::shared_ptr<const msg::Message> message;
  try {
    message = msg::decode(payload);
  } catch (const std::exception&) {
    return;  // replicas don't send malformed frames; tolerate anyway
  }
  switch (message->type()) {
    case msg::Type::Reply: {
      const auto& reply = static_cast<const msg::Reply&>(*message);
      if (reply.id != session.pending_id) return;
      ++window_.replies;
      window_.reply_latency.record(loop_.now() - session.issued_at);
      complete_op(session, /*was_reply=*/true);
      return;
    }
    case msg::Type::Reject: {
      const auto& reject = static_cast<const msg::Reject&>(*message);
      if (reject.id != session.pending_id) return;
      on_reject(session, sender);
      return;
    }
    default:
      return;
  }
}

void StormEngine::on_reject(Session& session, std::uint32_t replica) {
  if (replica < 64) session.reject_mask |= 1ull << replica;
  const std::size_t distinct =
      static_cast<std::size_t>(std::popcount(session.reject_mask));
  const std::size_t n = options_.replicas.size();
  if (distinct >= n) {
    // Unanimous for this try: definitive rejection, notification latency
    // runs from issue to the n-th distinct REJECT.
    ++window_.rejects;
    window_.reject_latency.record(loop_.now() - session.issued_at);
    complete_op(session, /*was_reply=*/false);
    return;
  }
  if (!session.ambiv_armed && distinct >= n - f_) {
    // Ambivalence (paper Section 4.5): n-f rejections can never become a
    // reply unless a retry lands; wait out the optimistic window, then
    // treat it as rejected.
    session.ambiv_armed = true;
    Session* s = &session;
    session.ambiv_timer = loop_.schedule_after(options_.optimistic_wait, [this, s] {
      s->ambiv_timer = {};
      if (!s->pending) return;
      ++window_.rejects;
      window_.reject_latency.record(loop_.now() - s->issued_at);
      complete_op(*s, /*was_reply=*/false);
    });
  }
}

void StormEngine::session_active(Session& session) {
  session.active = true;
  if (session.loris) return;
  if (issue_rate_ > 0) {
    arm_arrival(session);
  } else if (!session.pending) {
    issue_op(session);
  }
}

void StormEngine::issue_op(Session& session) {
  ++session.onr;
  session.pending_id = RequestId{session.cid, OpNum{session.onr}};
  const msg::Request request(session.pending_id,
                             session.workload->next_operation().encode());
  // Sender-port 0: replicas route the REPLY/REJECT back over this very
  // connection instead of dialing a listener we don't have.
  session.pending_frame =
      rpc::encode_frame(consensus::client_address(session.cid).value, 0, request.encode());
  session.pending = true;
  session.issued_at = loop_.now();
  session.reject_mask = 0;
  session.ambiv_armed = false;
  ++window_.issued;
  send_pending_frame(session);
  Session* s = &session;
  if (options_.retry_interval > 0) arm_retry(session);
  if (options_.op_timeout > 0) {
    session.timeout_timer = loop_.schedule_after(options_.op_timeout, [this, s] {
      s->timeout_timer = {};
      if (!s->pending) return;
      ++window_.timeouts;
      complete_op(*s, /*was_reply=*/false);
    });
  }
}

void StormEngine::arm_retry(Session& session) {
  Session* s = &session;
  session.retry_timer = loop_.schedule_after(options_.retry_interval, [this, s] {
    s->retry_timer = {};
    if (!s->pending) return;
    // A retransmission is a new try: rejections of the previous multicast
    // no longer count (paper Section 4.5, same rule as the core client).
    s->reject_mask = 0;
    ++window_.retransmits;
    send_pending_frame(*s);
    if (s->pending) arm_retry(*s);
  });
}

void StormEngine::send_pending_frame(Session& session) {
  for (std::size_t ci = 0; ci < session.conns.size(); ++ci) {
    Conn& conn = session.conns[ci];
    if (conn.state == Conn::State::Dead) continue;
    conn.out.push(session.pending_frame);
    // Connecting conns flush when the handshake completes.
    if (conn.state == Conn::State::Connected) {
      if (!flush_conn(session, ci)) return;
    }
  }
}

void StormEngine::complete_op(Session& session, bool was_reply) {
  cancel_op_timers(session);
  session.pending = false;
  ++session.ops_since_connect;
  if (options_.reconnect_every_ops != 0 &&
      session.ops_since_connect >= options_.reconnect_every_ops) {
    teardown_conns(session, /*reconnect=*/true);
    return;
  }
  if (issue_rate_ > 0) {
    if (session.arrival_pending) {
      session.arrival_pending = false;
      issue_op(session);
    }
    return;
  }
  // Closed loop: zero think time, but back off after a non-REPLY outcome
  // (paper Section 7.1). Issue through the loop so the stack unwinds.
  Duration delay = 0;
  if (!was_reply && options_.backoff_max > 0) {
    delay = options_.backoff_min +
            jitter_->uniform_int(0, std::max<Duration>(
                                        options_.backoff_max - options_.backoff_min, 0));
  }
  Session* s = &session;
  session.backoff_timer = loop_.schedule_after(delay, [this, s] {
    s->backoff_timer = {};
    if (s->active && !s->pending) issue_op(*s);
  });
}

void StormEngine::arm_arrival(Session& session) {
  if (issue_rate_ <= 0 || session.arrivals == nullptr) return;
  const double gap_sec = session.arrivals->exponential(1.0 / issue_rate_);
  Session* s = &session;
  session.arrival_timer = loop_.schedule_after(
      static_cast<Duration>(gap_sec * kSecond), [this, s] {
        s->arrival_timer = {};
        if (!s->active) return;  // re-armed by session_active on reconnect
        if (s->pending) {
          s->arrival_pending = true;
        } else {
          issue_op(*s);
        }
        arm_arrival(*s);
      });
}

// --- slow loris -----------------------------------------------------------

void StormEngine::loris_start(Session& session, std::size_t ci) {
  Conn& conn = session.conns[ci];
  const std::vector<std::byte> claim(kLorisClaim, std::byte{0});
  session.loris_frame =
      rpc::encode_frame(consensus::client_address(session.cid).value, 0, claim);
  session.loris_sent = 0;
  // Ship the header plus the first payload byte at once — from here on the
  // server is holding an incomplete frame.
  const std::size_t head = rpc::kFrameHeaderBytes + 1;
  const ssize_t sent = ::send(conn.fd, session.loris_frame.data(), head, MSG_NOSIGNAL);
  if (sent < 0 && errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
    on_reset(session, ci);
    return;
  }
  session.loris_sent = sent > 0 ? static_cast<std::size_t>(sent) : 0;
  Session* s = &session;
  session.loris_timer = loop_.schedule_after(options_.loris_trickle, [this, s] {
    s->loris_timer = {};
    loris_tick(*s);
  });
}

void StormEngine::loris_tick(Session& session) {
  if (session.conns.empty() || session.conns[0].state != Conn::State::Connected) return;
  // Trickle one byte per tick, but never the last one: the frame must stay
  // incomplete so only the half-open eviction can reclaim the connection.
  if (session.loris_sent + 1 < session.loris_frame.size()) {
    const ssize_t sent = ::send(session.conns[0].fd,
                                session.loris_frame.data() + session.loris_sent, 1,
                                MSG_NOSIGNAL);
    if (sent < 0 && errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
      on_reset(session, 0);
      return;
    }
    if (sent > 0) ++session.loris_sent;
  }
  Session* s = &session;
  session.loris_timer = loop_.schedule_after(options_.loris_trickle, [this, s] {
    s->loris_timer = {};
    loris_tick(*s);
  });
}

}  // namespace idem::real
