// In-process real cluster: n IDEM replicas, each on its own EventLoop
// thread, talking over kernel TCP on loopback.
//
// The replicas are the byte-identical core::IdemReplica the simulator
// benchmarks — only the Runtime (wall clock), Transport (TCP) and CPU
// model (real message handling instead of simulated charges) differ.
// Observability mirrors sim mode: one TraceRecorder and MetricsRegistry
// per replica thread (strict thread confinement, so TSAN-clean), stamped
// from a shared clock epoch so the per-thread rings merge into one
// coherent timeline after shutdown.
//
// Thread protocol: the constructor builds everything on the controller
// thread (no loop threads exist yet); start() hands each replica to its
// loop thread; after that the controller touches replica state only via
// RealRuntime::call(). crash_replica() tears the member's loop down and
// destroys it — peers observe TCP resets, exactly a process crash.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "app/ycsb.hpp"
#include "idem/client.hpp"
#include "idem/config.hpp"
#include "idem/replica.hpp"
#include "obs/live_metrics.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/ticker.hpp"
#include "obs/trace.hpp"
#include "real/exec_thread.hpp"
#include "sim/discipline.hpp"
#include "real/runtime.hpp"
#include "rpc/http_admin.hpp"

namespace idem::real {

struct RealClusterConfig {
  std::size_t n = 3;
  std::size_t f = 1;
  std::size_t reject_threshold = 50;
  std::uint64_t seed = 1;

  /// Base protocol configuration; n/f/reject_threshold, the CPU cost model
  /// (zeroed: real time is the cost), require batching (flushed inline:
  /// timer granularity on a real loop is milliseconds) and the trace sink
  /// are overridden per replica.
  core::IdemConfig idem;

  /// Client population the acceptance test should assume (sizes the AQM
  /// prioritization groups, exactly like the sim harness does).
  std::size_t expected_clients = 16;

  /// Per-replica transport knobs: accept-path hardening (connection cap,
  /// idle/half-open eviction, accept burst, receive-buffer sizing) for
  /// storm scenarios. fixed_port/listen_host are managed by the cluster.
  rpc::TcpTransportConfig transport;

  /// Service-queue prioritization: dispatch replica-to-replica (agreement)
  /// traffic ahead of client REQUESTs. This is the overload-starvation fix
  /// — without it a REQUEST flood FIFO-queues ahead of the REQUIREs,
  /// PROPOSEs and COMMITs that would drain the accepted requests, and
  /// goodput collapses while rejects still flow. On by default in real
  /// mode; the simulator keeps its pinned single-lane FIFO.
  bool peer_priority = true;

  /// Followers ack instances to the leader only
  /// (IdemConfig::commit_to_leader_only; f = 1 deployments). Two fewer
  /// messages per instance on the wire.
  bool commit_to_leader_only = true;

  /// Dispatch deliveries inline while a replica is idle
  /// (sim::Node::set_inline_dispatch): real mode models no service time,
  /// so the schedule-at-now event-queue hop per message is pure overhead.
  bool inline_dispatch = true;

  /// Run each replica's state-machine execution on a dedicated thread
  /// (real::ExecutionThread) so the loop thread stays latency-bound. Off
  /// by default: it only pays off with spare cores.
  bool execution_thread = false;

  /// REQUIRE aggregation for the real path: accepted ids are flushed to
  /// the leader once this many are pending or the flush interval elapses.
  /// 0 keeps whatever `idem` says. The zero default interval flushes at
  /// the end of the current event-loop iteration — every id accepted from
  /// one recv burst leaves in one REQUIRE at no added latency (due timers
  /// run after the iteration's I/O phase).
  std::size_t require_batch_max = 32;
  Duration require_flush_interval = 0;

  /// Cut leader batches once per event-loop iteration instead of proposing
  /// from each quorum inline (IdemConfig::defer_propose). Folds all
  /// quorums of one input burst into a single PROPOSE / one COMMIT per
  /// follower; zero latency cost, large cut in agreement messages per op.
  bool defer_propose = true;

  /// Promote rejected-cache bodies on REQUIRE evidence
  /// (IdemConfig::require_adoption). On by default in real mode: replicas
  /// under asynchronous load split their acceptance votes, and without
  /// adoption the divergently-accepted requests pin r_now slots for the
  /// forward timeout — the overload goodput collapse.
  bool require_adoption = true;

  /// Release abandoned active slots on client progress
  /// (IdemConfig::release_superseded). On by default in real mode: a
  /// request accepted by one replica but rejected by the rest is given up
  /// by its client, and without this sweep the accepting replica's r_now
  /// slot leaks permanently — a few dozen such leaks pin r_now at the cap
  /// and goodput collapses to the reject stream.
  bool release_superseded = true;

  /// Per-replica request-lifecycle tracing (wall-clock timestamps).
  bool trace = false;
  std::size_t trace_capacity = 1u << 16;

  /// Windowed live telemetry: one obs::LiveMetrics hub for the process,
  /// one shard per replica (core::LiveTelemetry). Shards are mutex-backed,
  /// so scraping from any thread is safe while the loops run.
  bool live_metrics = false;
  /// External hub to register the replica shards on instead of owning one
  /// (sharded deployments aggregate every group into one /metrics).
  /// Implies live_metrics; must outlive the cluster.
  obs::LiveMetrics* live_hub = nullptr;
  /// Label set stamped into every telemetry series ("group=0"), so groups
  /// sharing a hub stay distinguishable.
  std::string telemetry_labels;
  /// Serve /metrics (Prometheus) and /stats (JSON) over HTTP from member
  /// 0's loop; implies live_metrics. 0 binds an ephemeral port — query
  /// admin_port() after construction.
  bool admin = false;
  std::uint16_t admin_port = 0;

  /// Per-replica metrics sampling interval; 0 disables the registries.
  Duration metrics_interval = 0;
  std::size_t metrics_reserve = 4096;

  /// Preload every replica's store with the workload's YCSB records so
  /// reads hit existing keys (same content on every replica).
  bool preload = false;
  app::YcsbConfig workload;

  /// Service discipline for each replica's software queue. Edf drains
  /// deadline-carrying REQUESTs earliest-due-first from the deferred
  /// phase; Fifo keeps the default inline path.
  sim::DisciplineKind discipline = sim::DisciplineKind::Fifo;
  /// Wrap the acceptance test in core::DeadlineAware: budgets the online
  /// wait estimator says cannot be met are rejected up front
  /// (RejectReason::DeadlineUnmeetable) instead of executing late.
  bool deadline_aware = false;
  core::DeadlineAware::Params deadline_params;
};

class RealCluster {
 public:
  explicit RealCluster(RealClusterConfig config);
  ~RealCluster();

  RealCluster(const RealCluster&) = delete;
  RealCluster& operator=(const RealCluster&) = delete;

  const RealClusterConfig& config() const { return config_; }
  /// The effective per-replica protocol configuration (costs zeroed etc.).
  const core::IdemConfig& idem_config() const { return idem_; }
  /// Clock epoch shared by every loop; load generators join it so client
  /// and replica timestamps are mutually comparable.
  rpc::EventLoop::Epoch epoch() const { return epoch_; }

  std::size_t n() const { return members_.size(); }

  /// Starts every replica's loop thread. Idempotent.
  void start();
  /// Stops every live loop thread and joins it. State (stats, traces,
  /// metrics) stays inspectable afterwards. Idempotent; also runs from the
  /// destructor.
  void shutdown();

  /// Tears replica `index` down: stops its loop, then destroys the node
  /// and its sockets — to the surviving peers this is a process crash.
  void crash_replica(std::size_t index);
  bool crashed(std::size_t index) const { return members_[index].crashed; }

  /// Loopback listening port of replica `index` (0 after a crash).
  std::uint16_t port_of(std::size_t index) const { return members_[index].port; }
  /// host:port of every replica, indexed by replica id — the shape load
  /// generators and remote clients consume.
  std::vector<rpc::PeerAddress> replica_addresses() const;

  /// Client configuration matching this cluster (n/f prefilled).
  core::IdemClientConfig client_config() const;

  /// Protocol counters of replica `index`; live replicas are sampled on
  /// their own loop thread, crashed ones return the values captured at
  /// crash time.
  core::ReplicaStats replica_stats(std::size_t index);
  rpc::TransportStats transport_stats(std::size_t index);
  /// Connection counts + buffer bytes of replica `index`'s transport
  /// (zeroes after a crash — the sockets are gone).
  rpc::TransportMemory transport_memory(std::size_t index);
  /// Index of the first live replica that believes itself leader, or n().
  std::size_t leader_index();

  /// Metrics registry of replica `index` (nullptr when sampling is off).
  /// Safe to read after shutdown(); while loops run, use run-time access
  /// only through RealRuntime::call().
  obs::MetricsRegistry* metrics(std::size_t index) { return members_[index].metrics.get(); }

  /// Live-telemetry hub (nullptr unless live_metrics/admin is on); the
  /// external hub when config.live_hub was set. Snapshotting is
  /// thread-safe; note each snapshot consumes the window.
  obs::LiveMetrics* live_metrics() { return hub_; }

  /// Quiescence probe for drain coordination (split handshake): sampled on
  /// the owning loop thread. `settled` additionally requires the member to
  /// believe a leader exists (agreement can make progress).
  struct Quiescence {
    std::uint64_t active = 0;        ///< active (accepted, unexecuted) requests
    std::uint64_t queue = 0;         ///< service-queue backlog
    std::uint64_t next_execute = 0;  ///< execution frontier (instance id)
  };
  Quiescence quiescence(std::size_t index);

  /// Store surgery for elastic reconfiguration, run on the owning loop
  /// thread. dump_store() copies replica `index`'s KvStore entries out;
  /// put_entries() writes records directly into replica `index`'s store,
  /// bypassing agreement — only sound while no client can reach those keys
  /// through this group (the shard-map flip has not happened yet).
  std::vector<std::pair<std::string, std::string>> dump_store(std::size_t index);
  void put_entries(std::size_t index,
                   const std::vector<std::pair<std::string, std::string>>& entries);
  /// Bound admin port (0 when the admin endpoint is off).
  std::uint16_t admin_port() const { return admin_ ? admin_->port() : 0; }

  /// Per-replica trace snapshots (each oldest-first), taken on the owning
  /// loop thread when live. Merge with client-side rings via
  /// obs::merge_trace_snapshots.
  std::vector<std::vector<obs::TraceEvent>> trace_snapshots();
  /// The replicas' rings merged into one timeline.
  std::vector<obs::TraceEvent> merged_trace();

 private:
  struct Member {
    // Declaration order doubles as teardown order (reversed): the executor
    // worker must join before the replica (and its state machine) dies,
    // and the replica must unregister from the transport before the
    // runtime dies.
    std::unique_ptr<RealRuntime> runtime;
    std::unique_ptr<obs::TraceRecorder> trace;
    std::unique_ptr<obs::MetricsRegistry> metrics;
    std::unique_ptr<obs::MetricsTicker> ticker;
    std::unique_ptr<core::IdemReplica> replica;
    std::unique_ptr<ExecutionThread> executor;
    std::uint16_t port = 0;
    bool crashed = false;
    core::ReplicaStats final_stats;        ///< captured when crashed
    rpc::TransportStats final_transport;   ///< captured when crashed
  };

  std::unique_ptr<app::StateMachine> make_store() const;
  void register_metrics(Member& member, std::size_t index);

  RealClusterConfig config_;
  core::IdemConfig idem_;
  rpc::EventLoop::Epoch epoch_;
  std::unique_ptr<obs::LiveMetrics> live_;  ///< owned hub (no external live_hub)
  obs::LiveMetrics* hub_ = nullptr;         ///< effective hub (owned or external)
  std::vector<Member> members_;
  /// Declared after members_ so it tears down first (it holds fds
  /// registered with member 0's loop, which must still exist).
  std::unique_ptr<rpc::HttpAdmin> admin_;
  bool started_ = false;
};

}  // namespace idem::real
