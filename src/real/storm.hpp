// Connection-storm driver: thousands of client sessions multiplexed on
// one epoll thread.
//
// run_load() hosts full core::IdemClient instances — faithful, but each
// client owns a listener-backed transport, which tops out at a few
// hundred sessions per process. StormEngine is the 10k-session
// counterpart: raw nonblocking sockets on a single rpc::EventLoop, one
// lean state machine per session (connect → warm → issue → reconnect),
// speaking the IDEM wire protocol directly (rpc/framing.hpp frames
// carrying msg::Request/Reply/Reject). Sessions advertise sender-port 0,
// so replicas answer over the same inbound connection (the transport's
// reply-over-inbound route) — no listener and no dial-back per session.
//
// The request lifecycle mirrors the fixed IdemClient: REQUESTs are
// multicast to every replica, rejections are counted per try (a
// retransmission clears the reject set — paper Section 4.5 "for this
// try"), n distinct rejections complete the operation as definitively
// rejected, n-f start the ambivalence wait. The measured
// rejection-notification latency is issue → that completion.
//
// Behaviors, all per-session and mixable in one storm:
//   - ramp: session spawns spread evenly across StormOptions::ramp;
//   - flash crowd: set_target_sessions() jumps the population mid-run
//     (spawns happen in bounded per-iteration chunks);
//   - reconnect stampede: a reset on any established connection tears the
//     session's connections down and reconnects them all after a jittered
//     delay — a leader crash turns the whole population over at once;
//   - slow loris: a configurable fraction of sessions hold a forever-
//     unfinished frame, trickling one byte per interval (what the
//     transport's half_open_timeout evicts).
//
// Single-threaded like run_load: the engine owns an EventLoop driven by
// the calling thread via run_for(); window()/gauges() are safe between
// run_for() calls. Several engines can run on separate threads with
// disjoint client_id_base ranges.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "app/ycsb.hpp"
#include "common/histogram.hpp"
#include "common/time.hpp"
#include "rpc/event_loop.hpp"
#include "rpc/tcp_transport.hpp"

namespace idem::real {

struct StormOptions {
  /// Replica i is reachable at replicas[i]; size sets n. Normal sessions
  /// open one connection per replica; loris sessions one in total.
  std::vector<rpc::PeerAddress> replicas;
  /// Crash faults the ambivalence rule assumes; default (n-1)/2.
  std::size_t f = std::size_t(-1);

  std::size_t sessions = 100;        ///< initial target population
  /// First ClientId; offset past run_load's range so mixed drivers never
  /// collide.
  std::uint64_t client_id_base = 1 << 20;
  Duration ramp = 0;                 ///< spread initial spawns over this span

  /// Per-session open-loop Poisson arrival rate in ops/s; 0 = closed loop.
  double issue_rate = 0;
  /// Closed-loop backoff after a non-REPLY outcome (paper Section 7.1).
  Duration backoff_min = 50 * kMillisecond;
  Duration backoff_max = 100 * kMillisecond;

  /// Churn: close and re-establish the session's connections after this
  /// many completed operations (0 = never).
  std::size_t reconnect_every_ops = 0;
  /// Jittered delay before re-establishing after a reset or churn point —
  /// the knob that keeps a stampede from being perfectly synchronized.
  Duration reconnect_delay_min = 10 * kMillisecond;
  Duration reconnect_delay_max = 200 * kMillisecond;

  Duration retry_interval = 500 * kMillisecond;  ///< retransmit cadence (0 = off)
  Duration optimistic_wait = 200 * kMillisecond; ///< ambivalence wait (n-f rejects)
  Duration op_timeout = 5 * kSecond;             ///< abandon an operation

  /// Fraction of sessions in slow-loris mode ([0, 1]).
  double slow_loris_fraction = 0;
  Duration loris_trickle = 500 * kMillisecond;   ///< one byte per interval

  /// Receive-buffer bytes per connection (replies are small; 10k sessions
  /// at the FrameReader default of 16 KiB would cost 480 MiB).
  std::size_t read_buffer_bytes = 1024;

  std::uint64_t seed = 1;
  app::YcsbConfig workload;
  rpc::EventLoop::Epoch epoch = std::chrono::steady_clock::now();
};

/// Phase measurements; reset_window() zeroes everything for the next
/// scenario phase.
struct StormWindow {
  Histogram connect_latency;  ///< nonblocking connect() → socket writable
  Histogram reply_latency;    ///< issue → REPLY
  Histogram reject_latency;   ///< issue → definitive-rejection notification
  std::uint64_t issued = 0;
  std::uint64_t replies = 0;
  std::uint64_t rejects = 0;      ///< definitively rejected operations
  std::uint64_t timeouts = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t connects = 0;          ///< connections established
  std::uint64_t connect_failures = 0;  ///< refused / failed handshakes
  std::uint64_t resets = 0;            ///< established connections dropped by peer
  std::uint64_t loris_evictions = 0;   ///< loris connections the server closed

  double reply_rate(Duration span) const {
    return span > 0 ? replies / to_sec(span) : 0.0;
  }
};

/// Point-in-time population state.
struct StormGauges {
  std::size_t target_sessions = 0;
  std::size_t sessions = 0;           ///< spawned (live or reconnecting)
  std::size_t open_connections = 0;   ///< established TCP connections
  std::size_t connecting = 0;         ///< handshakes in flight
};

class StormEngine {
 public:
  explicit StormEngine(StormOptions options);
  ~StormEngine();

  StormEngine(const StormEngine&) = delete;
  StormEngine& operator=(const StormEngine&) = delete;

  rpc::EventLoop& loop() { return loop_; }

  /// Begins ramping toward options.sessions. Call once.
  void start();
  /// Drives the loop on the calling thread for `span` of wall-clock time.
  void run_for(Duration span);

  /// Changes the target population; spawns (in bounded chunks) or
  /// destroys (newest first) sessions until it is met.
  void set_target_sessions(std::size_t n);
  /// Changes the per-session open-loop rate for existing + future
  /// sessions (0 = closed loop for future completions).
  void set_issue_rate(double ops_per_sec);
  /// Tears down every session's connections; each reconnects after its
  /// jittered delay — a forced full stampede.
  void reconnect_all();

  void reset_window() { window_ = StormWindow{}; }
  const StormWindow& window() const { return window_; }
  StormGauges gauges() const;

  /// Raises RLIMIT_NOFILE to at least `fds` (as far as the hard limit —
  /// or, for root, /proc/sys/fs/nr_open — allows). Returns the achieved
  /// soft limit. 10k loopback sessions need ~2 fds each across client and
  /// server processes, far past the usual 1024 default.
  static std::size_t raise_fd_limit(std::size_t fds);

 private:
  struct Conn;
  struct Session;

  void spawn_step();
  void schedule_spawn_step();
  void spawn_session();
  void destroy_session(Session& session);
  void connect_session(Session& session);
  void open_conn(Session& session, std::size_t ci);
  void teardown_conns(Session& session, bool reconnect);
  void cancel_op_timers(Session& session);
  void conn_event(Session& session, std::size_t ci, std::uint32_t events);
  void conn_established(Session& session, std::size_t ci);
  void conn_readable(Session& session, std::size_t ci);
  void on_reset(Session& session, std::size_t ci);
  void on_frame(Session& session, std::uint32_t sender, std::span<const std::byte> payload);
  void on_reject(Session& session, std::uint32_t replica);
  void session_active(Session& session);
  void issue_op(Session& session);
  void arm_retry(Session& session);
  void send_pending_frame(Session& session);
  /// Returns false when the write failed and the session's connections
  /// were torn down (the caller must not touch the connection again).
  bool flush_conn(Session& session, std::size_t ci);
  void complete_op(Session& session, bool was_reply);
  void arm_arrival(Session& session);
  void loris_start(Session& session, std::size_t ci);
  void loris_tick(Session& session);
  Duration reconnect_jitter();

  StormOptions options_;
  std::size_t f_ = 1;
  rpc::EventLoop loop_;
  std::vector<std::unique_ptr<Session>> sessions_;
  std::size_t target_ = 0;
  std::size_t next_index_ = 0;
  bool spawn_scheduled_ = false;
  bool ramp_active_ = false;
  Duration ramp_interval_ = 0;
  std::size_t ramp_chunk_ = 1;
  std::size_t open_connections_ = 0;
  std::size_t connecting_ = 0;
  double issue_rate_ = 0;
  StormWindow window_;
  Rng* jitter_ = nullptr;
};

}  // namespace idem::real
