// Wall-clock load generation against a real IDEM cluster.
//
// run_load() hosts a set of unmodified core::IdemClient instances on an
// EventLoop owned by the *calling* thread and drives YCSB operations at
// them for a fixed wall-clock span: closed-loop (each client re-issues the
// moment its previous operation concludes) or open-loop (per-client
// Poisson arrivals — under overload an arrival that finds its client busy
// is deferred until the outstanding operation concludes, and counted).
//
// Several generators may run concurrently on separate threads (the CLIs
// and benchmarks do this) as long as their client_id_base ranges do not
// overlap; each call is fully self-contained — own loop, own transport,
// own trace ring — so generators share nothing but the kernel.
#pragma once

#include <cstdint>
#include <vector>

#include "app/ycsb.hpp"
#include "common/histogram.hpp"
#include "common/time.hpp"
#include "idem/client.hpp"
#include "obs/trace.hpp"
#include "rpc/event_loop.hpp"
#include "rpc/tcp_transport.hpp"

namespace idem::real {

struct LoadOptions {
  std::size_t clients = 4;
  /// First ClientId; concurrent generators use disjoint ranges.
  std::uint64_t client_id_base = 0;
  Duration warmup = 0;          ///< ops run but are not recorded
  Duration duration = kSecond;  ///< measured span (after warmup)
  /// Per-client open-loop arrival rate in ops/s; 0 = closed loop.
  double open_loop_rate = 0;
  std::uint64_t seed = 1;

  /// Rejection backoff (paper Section 7.1): a closed-loop client whose
  /// operation ends in anything but a REPLY waits a uniform draw from
  /// [backoff_min, backoff_max] before its next operation — the client
  /// learned the system is overloaded and stops hammering it. Mirrors
  /// harness::DriverConfig so sim and real load react identically;
  /// backoff_max = 0 disables. Open-loop arrivals are not delayed (the
  /// arrival process models demand, not politeness).
  Duration backoff_min = 50 * kMillisecond;
  Duration backoff_max = 100 * kMillisecond;

  /// Per-operation latency budget stamped on each REQUEST (0 = none).
  /// Deadline-aware replicas reject budgets they cannot meet; EDF
  /// disciplines order by them; replies past budget count as misses.
  Duration request_deadline = 0;
  /// Uniform +/- jitter applied to each operation's budget.
  Duration deadline_jitter = 0;

  /// Replica i is reachable at replicas[i]; size sets the client's n.
  std::vector<rpc::PeerAddress> replicas;
  /// f and client strategy knobs; n/f default from replicas.size() when
  /// left at their defaults, trace is overridden.
  core::IdemClientConfig client;
  app::YcsbConfig workload;

  /// Record client-side request lifecycles into the returned snapshot.
  bool trace = false;
  std::size_t trace_capacity = 1u << 16;
  /// Clock epoch — pass RealCluster::epoch() so client and replica trace
  /// timestamps are mutually comparable.
  rpc::EventLoop::Epoch epoch = std::chrono::steady_clock::now();
};

struct LoadStats {
  Histogram reply_latency;
  Histogram reject_latency;
  std::uint64_t issued = 0;     ///< operations started in the measured span
  std::uint64_t replies = 0;
  std::uint64_t rejects = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t malformed = 0;  ///< replies whose KvResult failed to decode
  std::uint64_t deferred = 0;   ///< open-loop arrivals that found the client busy
  std::uint64_t deadline_ops = 0;     ///< replies to deadline-carrying operations
  std::uint64_t deadline_misses = 0;  ///< ...that landed after their budget
  Duration measured = 0;        ///< wall-clock span the rates refer to

  std::vector<obs::TraceEvent> trace;  ///< client-side ring (when enabled)

  double reply_rate() const { return measured > 0 ? replies / to_sec(measured) : 0.0; }
  double reject_rate() const { return measured > 0 ? rejects / to_sec(measured) : 0.0; }
  double deadline_miss_rate() const {
    return deadline_ops > 0
               ? static_cast<double>(deadline_misses) / static_cast<double>(deadline_ops)
               : 0.0;
  }
};

/// Runs the load inline on the calling thread; returns when the span ends.
LoadStats run_load(const LoadOptions& options);

}  // namespace idem::real
