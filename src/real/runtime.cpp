#include "real/runtime.hpp"

namespace idem::real {

RealRuntime::RealRuntime(RealRuntimeConfig config)
    : loop_(config.seed, config.epoch), transport_(loop_, config.transport) {}

RealRuntime::~RealRuntime() { stop(); }

void RealRuntime::start() {
  if (running()) return;
  thread_ = std::thread([this] { loop_.run(); });
}

void RealRuntime::stop() {
  if (!running()) return;
  // Posted rather than called directly: run() resets the stop flag on
  // entry, so a raw stop() racing with a just-starting thread could be
  // lost. A posted task always executes inside the running loop.
  loop_.post([this] { loop_.stop(); });
  thread_.join();
}

}  // namespace idem::real
