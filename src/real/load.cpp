#include "real/load.hpp"

#include <memory>
#include <string>

#include "app/kv_store.hpp"
#include "consensus/addresses.hpp"

namespace idem::real {

namespace {

/// Per-client driver state; lives on the run_load stack.
struct ClientDriver {
  std::unique_ptr<core::IdemClient> client;
  std::unique_ptr<app::YcsbWorkload> workload;
  Rng* arrivals = nullptr;   ///< open-loop inter-arrival stream
  Rng* backoff = nullptr;    ///< rejection-backoff draw stream
  Rng* deadlines = nullptr;  ///< per-op budget jitter (deadlines armed only)
  bool arrival_pending = false;  ///< open loop: an arrival found us busy
};

struct RunState {
  LoadStats stats;
  bool measuring = false;
  bool issuing = true;
  Duration backoff_min = 0;
  Duration backoff_max = 0;
  Duration request_deadline = 0;
  Duration deadline_jitter = 0;
};

void issue(rpc::EventLoop& loop, ClientDriver& driver, RunState& state, double rate);

void on_outcome(rpc::EventLoop& loop, ClientDriver& driver, RunState& state, double rate,
                const consensus::Outcome& outcome) {
  if (state.measuring) {
    switch (outcome.kind) {
      case consensus::Outcome::Kind::Reply: {
        ++state.stats.replies;
        state.stats.reply_latency.record(outcome.latency());
        if (outcome.deadline > 0) {
          ++state.stats.deadline_ops;
          if (outcome.deadline_missed()) ++state.stats.deadline_misses;
        }
        const app::KvResult result = app::KvResult::decode(outcome.result);
        if (result.status == app::KvResult::Status::BadRequest) ++state.stats.malformed;
        break;
      }
      case consensus::Outcome::Kind::Rejected:
        ++state.stats.rejects;
        state.stats.reject_latency.record(outcome.latency());
        break;
      case consensus::Outcome::Kind::Timeout:
        ++state.stats.timeouts;
        break;
    }
  }
  if (!state.issuing) return;
  if (rate > 0) {
    // Open loop: only re-issue when an arrival queued up behind us.
    if (driver.arrival_pending) {
      driver.arrival_pending = false;
      issue(loop, driver, state, rate);
    }
  } else {
    // Closed loop: think time zero, but a non-REPLY outcome means the
    // system is overloaded — back off 50-100 ms (paper Section 7.1)
    // before the next operation. Issue through the loop either way so the
    // stack unwinds between operations.
    Duration delay = 0;
    if (outcome.kind != consensus::Outcome::Kind::Reply && state.backoff_max > 0) {
      delay = state.backoff_min +
              static_cast<Duration>(
                  driver.backoff->uniform_int(0, state.backoff_max - state.backoff_min));
    }
    loop.schedule_after(delay, [&loop, &driver, &state, rate] {
      if (state.issuing) issue(loop, driver, state, rate);
    });
  }
}

void issue(rpc::EventLoop& loop, ClientDriver& driver, RunState& state, double rate) {
  if (state.measuring) ++state.stats.issued;
  if (state.request_deadline > 0) {
    Duration deadline = state.request_deadline;
    if (state.deadline_jitter > 0) {
      deadline += static_cast<Duration>(
                      driver.deadlines->uniform_int(0, 2 * state.deadline_jitter)) -
                  state.deadline_jitter;
      if (deadline < 1) deadline = 1;
    }
    driver.client->set_request_deadline(deadline);
  }
  const app::KvCommand command = driver.workload->next_operation();
  driver.client->invoke(command.encode(),
                        [&loop, &driver, &state, rate](const consensus::Outcome& outcome) {
                          on_outcome(loop, driver, state, rate, outcome);
                        });
}

/// Open loop: one independent Poisson arrival process per client.
void arm_arrival(rpc::EventLoop& loop, ClientDriver& driver, RunState& state, double rate) {
  const double gap_sec = driver.arrivals->exponential(1.0 / rate);
  loop.schedule_after(static_cast<Duration>(gap_sec * kSecond),
                      [&loop, &driver, &state, rate] {
                        if (!state.issuing) return;
                        if (driver.client->busy()) {
                          if (state.measuring) ++state.stats.deferred;
                          driver.arrival_pending = true;
                        } else {
                          issue(loop, driver, state, rate);
                        }
                        arm_arrival(loop, driver, state, rate);
                      });
}

}  // namespace

LoadStats run_load(const LoadOptions& options) {
  // Real-mode entry point: ship the REQUEST deadline field (no-op bytes
  // when no budget is set; the sim never arms this).
  msg::set_wire_request_deadlines(true);
  rpc::EventLoop loop(options.seed, options.epoch);
  rpc::TcpTransport transport(loop);
  for (std::size_t i = 0; i < options.replicas.size(); ++i) {
    transport.set_remote(consensus::replica_address(ReplicaId{static_cast<std::uint32_t>(i)}),
                         options.replicas[i]);
  }

  obs::TraceRecorder recorder(options.trace ? options.trace_capacity : 1);

  core::IdemClientConfig client_config = options.client;
  if (!options.replicas.empty()) {
    client_config.n = options.replicas.size();
    if (client_config.f == core::IdemClientConfig{}.f && client_config.n >= 3) {
      client_config.f = (client_config.n - 1) / 2;
    }
  }
  client_config.trace = options.trace ? &recorder : nullptr;

  RunState state;
  state.backoff_min = options.backoff_min;
  state.backoff_max = options.backoff_max;
  state.request_deadline = options.request_deadline;
  state.deadline_jitter = options.deadline_jitter;
  const double rate = options.open_loop_rate;
  std::vector<ClientDriver> drivers(options.clients);
  for (std::size_t c = 0; c < options.clients; ++c) {
    ClientDriver& driver = drivers[c];
    const ClientId cid{options.client_id_base + c};
    driver.client =
        std::make_unique<core::IdemClient>(loop, transport, cid, client_config);
    // Real transport, zero modelled service time: skip the event-queue hop
    // per delivered REPLY/REJECT.
    driver.client->set_inline_dispatch(true);
    driver.backoff = &loop.rng("load.backoff.c" + std::to_string(cid.value));
    driver.workload = std::make_unique<app::YcsbWorkload>(
        options.workload, loop.rng("load.c" + std::to_string(cid.value)));
    if (rate > 0) {
      driver.arrivals = &loop.rng("load.arrival" + std::to_string(cid.value));
    }
    if (options.request_deadline > 0) {
      driver.deadlines = &loop.rng("load.deadline.c" + std::to_string(cid.value));
    }
  }

  state.measuring = options.warmup <= 0;
  if (options.warmup > 0) {
    loop.schedule_after(options.warmup, [&state] { state.measuring = true; });
  }
  for (ClientDriver& driver : drivers) {
    if (rate > 0) {
      arm_arrival(loop, driver, state, rate);
    } else {
      issue(loop, driver, state, rate);
    }
  }

  loop.run_for(options.warmup + options.duration);
  // Outstanding operations are abandoned; their callbacks must not record
  // into the (about-to-die) state when the loop drains during teardown.
  state.issuing = false;
  state.measuring = false;

  state.stats.measured = options.duration;
  if (options.trace) state.stats.trace = recorder.snapshot();
  return state.stats;
}

}  // namespace idem::real
