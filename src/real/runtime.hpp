// One replica-hosting thread of a real deployment.
//
// RealRuntime pairs an rpc::EventLoop with an rpc::TcpTransport and a
// dedicated std::thread, exposing the sim::Runtime seam by delegation so
// the unmodified protocol nodes (IdemReplica, IdemClient, ...) can be
// constructed directly against it. The intended lifecycle is:
//
//   1. construct the runtime (loop + transport exist, no thread yet);
//   2. construct protocol nodes against it and wire set_remote() — all on
//      the controller thread, which is safe because the loop thread does
//      not exist yet;
//   3. start(): the thread runs loop().run() and from then on owns every
//      node, timer and socket;
//   4. cross-thread access only through post() / call();
//   5. stop(): posts a loop-thread stop and joins. Destroying the runtime
//      afterwards closes all sockets — to TCP peers that is
//      indistinguishable from a crash, which is exactly the fault model
//      the protocols assume.
#pragma once

#include <functional>
#include <future>
#include <thread>
#include <type_traits>
#include <utility>

#include "rpc/event_loop.hpp"
#include "rpc/tcp_transport.hpp"
#include "sim/runtime.hpp"

namespace idem::real {

struct RealRuntimeConfig {
  std::uint64_t seed = 1;
  /// Shared across every runtime of one deployment so now() values (and
  /// therefore per-thread trace rings) merge into one coherent timeline.
  rpc::EventLoop::Epoch epoch = std::chrono::steady_clock::now();
  rpc::TcpTransportConfig transport;
};

class RealRuntime final : public sim::Runtime {
 public:
  explicit RealRuntime(RealRuntimeConfig config = {});
  ~RealRuntime() override;

  RealRuntime(const RealRuntime&) = delete;
  RealRuntime& operator=(const RealRuntime&) = delete;

  rpc::EventLoop& loop() { return loop_; }
  rpc::TcpTransport& transport() { return transport_; }

  // --- sim::Runtime (delegates to the event loop) ---
  // Like every Runtime, these must be used from the owning (loop) thread,
  // or before start().
  Time now() const override { return loop_.now(); }
  sim::EventId schedule_after(Duration delay, sim::EventQueue::Callback fn) override {
    return loop_.schedule_after(delay, std::move(fn));
  }
  sim::EventId schedule_at(Time at, sim::EventQueue::Callback fn) override {
    return loop_.schedule_at(at, std::move(fn));
  }
  bool cancel(sim::EventId id) override { return loop_.cancel(id); }
  Rng& rng(std::string_view name) override { return loop_.rng(name); }
  std::uint64_t seed() const override { return loop_.seed(); }

  // --- thread lifecycle ---
  /// Spawns the loop thread. No-op when already running.
  void start();
  /// Stops the loop and joins the thread. Safe to call repeatedly and from
  /// the destructor; must not be called from the loop thread itself.
  void stop();
  bool running() const { return thread_.joinable(); }

  /// Enqueues `task` on the loop thread (fire-and-forget).
  void post(std::function<void()> task) { loop_.post(std::move(task)); }

  /// Runs `fn` on the loop thread and returns its result, blocking the
  /// caller until it ran. When the loop thread is not running (before
  /// start() or after stop()) the callable runs inline instead — nothing
  /// else can touch loop state then, so this is safe and keeps setup and
  /// post-shutdown inspection free of special cases.
  template <typename Fn>
  auto call(Fn&& fn) -> std::invoke_result_t<Fn> {
    using Result = std::invoke_result_t<Fn>;
    if (!running()) return std::forward<Fn>(fn)();
    std::promise<Result> promise;
    std::future<Result> future = promise.get_future();
    loop_.post([&promise, &fn] {
      if constexpr (std::is_void_v<Result>) {
        fn();
        promise.set_value();
      } else {
        promise.set_value(fn());
      }
    });
    return future.get();
  }

 private:
  rpc::EventLoop loop_;
  rpc::TcpTransport transport_;
  std::thread thread_;
};

}  // namespace idem::real
