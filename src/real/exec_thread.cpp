#include "real/exec_thread.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace idem::real {

ExecutionThread::ExecutionThread(rpc::EventLoop& loop) : loop_(loop) {
  worker_ = std::thread([this] { worker_main(); });
}

ExecutionThread::~ExecutionThread() { stop(); }

void ExecutionThread::execute(app::StateMachine& sm,
                              std::vector<std::vector<std::byte>> commands, Time due,
                              Done done) {
  Job job;
  job.sm = &sm;
  job.commands = std::move(commands);
  job.due = due;
  job.done = std::move(done);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job.seq = next_seq_++;
    queue_.push_back(std::move(job));
    std::push_heap(queue_.begin(), queue_.end());
  }
  wake_.notify_one();
}

void ExecutionThread::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      if (worker_.joinable()) worker_.join();
      return;
    }
    stopping_ = true;
  }
  wake_.notify_one();
  if (worker_.joinable()) worker_.join();
}

void ExecutionThread::worker_main() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return !queue_.empty() || stopping_; });
      if (queue_.empty()) return;  // stopping with an empty queue
      std::pop_heap(queue_.begin(), queue_.end());
      job = std::move(queue_.back());
      queue_.pop_back();
    }
    std::vector<std::vector<std::byte>> results;
    results.reserve(job.commands.size());
    for (const std::vector<std::byte>& command : job.commands) {
      results.push_back(job.sm->execute(command));
    }
    batches_executed_.fetch_add(1, std::memory_order_relaxed);
    // Hand the results back to the replica's thread. post() is the one
    // cross-thread-safe EventLoop entry point; if the loop has already
    // stopped the task is parked forever, which teardown ordering makes
    // safe (see header).
    loop_.post([done = std::move(job.done), results = std::move(results)]() mutable {
      done(std::move(results));
    });
  }
}

}  // namespace idem::real
