// Client-observed operation history.
//
// A History records every operation a chaos workload invokes — who issued
// it, when it was invoked and completed (in simulated time), how it ended
// (reply / rejection / timeout / still open), the encoded command and,
// for successful operations, the observed result bytes. It is the input
// to the linearizability checker and the unit of replay artifacts: a
// history serializes to canonical JSON whose FNV-1a hash stamps a run so
// a replay can prove it reproduced the exact same observable behavior.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/time.hpp"

namespace idem::check {

/// One client-observed operation.
struct Op {
  /// How the operation ended, as seen by the client.
  enum class Result : std::uint8_t {
    Open,      ///< never completed before the run ended (maybe executed)
    Ok,        ///< REPLY: executed, `output` holds the observed result
    Rejected,  ///< aborted after rejection notifications
    Timeout,   ///< local client timeout (maybe executed)
  };

  std::uint64_t client = 0;  ///< client index in the cluster
  std::uint64_t seq = 0;     ///< per-client sequence number (1-based = onr)
  Time invoke = 0;
  Time complete = -1;  ///< -1 while Open
  Result result = Result::Open;
  /// Rejected only: all n replicas rejected, so the operation is *known*
  /// never to have executed (paper Sec. 5.3 "failure"). A rejection with
  /// only n-f notifications leaves the client ambivalent: the operation
  /// may still have executed, and the checker must treat it like a
  /// timeout.
  bool definitive_reject = false;
  std::vector<std::byte> command;
  std::vector<std::byte> output;  ///< Ok only

  bool maybe_executed() const {
    switch (result) {
      case Result::Ok:
        return true;
      case Result::Rejected:
        return !definitive_reject;
      case Result::Timeout:
      case Result::Open:
        return true;
    }
    return true;
  }

  json::Value to_json() const;
  static Op from_json(const json::Value& value);
  bool operator==(const Op&) const = default;
};

const char* op_result_name(Op::Result result);

/// An append-only recording of client-observed operations.
class History {
 public:
  /// Starts recording an operation; returns its index for complete().
  std::size_t begin(std::uint64_t client, std::uint64_t seq,
                    std::span<const std::byte> command, Time now);
  void complete(std::size_t index, Op::Result result, Time now,
                std::span<const std::byte> output, bool definitive_reject = false);

  const std::vector<Op>& ops() const { return ops_; }
  std::vector<Op>& ops() { return ops_; }
  std::size_t size() const { return ops_.size(); }
  bool empty() const { return ops_.empty(); }
  const Op& operator[](std::size_t i) const { return ops_[i]; }

  std::size_t count(Op::Result result) const;

  /// FNV-1a over the canonical JSON dump: equal hashes <=> equal
  /// client-observable behavior. Stamped into replay artifacts.
  std::uint64_t hash() const;

  json::Value to_json() const;
  static History from_json(const json::Value& value);

  bool operator==(const History&) const = default;

 private:
  std::vector<Op> ops_;
};

}  // namespace idem::check
