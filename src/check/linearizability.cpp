#include "check/linearizability.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "app/counter.hpp"
#include "app/kv_store.hpp"
#include "common/codec.hpp"

namespace idem::check {

namespace {

// ---------------------------------------------------------------------------
// KV model
// ---------------------------------------------------------------------------

// Per-key partition state: "-" = absent, "+<value>" = present. The global
// (scan-containing) mode serializes the whole ordered map with length
// prefixes so arbitrary key/value bytes stay unambiguous.

std::string dump_map(const std::map<std::string, std::string>& map) {
  std::string out;
  for (const auto& [key, value] : map) {
    out += std::to_string(key.size());
    out += ':';
    out += key;
    out += std::to_string(value.size());
    out += ':';
    out += value;
  }
  return out;
}

std::map<std::string, std::string> parse_map(const std::string& state) {
  std::map<std::string, std::string> map;
  std::size_t pos = 0;
  auto field = [&]() {
    std::size_t colon = state.find(':', pos);
    std::size_t len = std::stoul(state.substr(pos, colon - pos));
    std::string out = state.substr(colon + 1, len);
    pos = colon + 1 + len;
    return out;
  };
  while (pos < state.size()) {
    std::string key = field();
    std::string value = field();
    map.emplace(std::move(key), std::move(value));
  }
  return map;
}

}  // namespace

std::optional<std::string> KvModel::key(std::span<const std::byte> command) const {
  app::KvCommand cmd = app::KvCommand::decode(command);
  if (cmd.op == app::KvOp::Scan) return std::nullopt;
  return cmd.key;
}

std::string KvModel::initial_state(const std::string& key) const {
  return key.empty() ? std::string() : std::string("-");
}

Model::Applied KvModel::apply(const std::string& state, const std::string& key,
                              std::span<const std::byte> command) const {
  app::KvCommand cmd = app::KvCommand::decode(command);
  app::KvResult res;
  if (key.empty()) {
    // Global mode: state is the whole store (scans present in history).
    auto map = parse_map(state);
    switch (cmd.op) {
      case app::KvOp::Get: {
        auto it = map.find(cmd.key);
        if (it == map.end()) {
          res.status = app::KvResult::Status::NotFound;
        } else {
          res.values.push_back(it->second);
        }
        break;
      }
      case app::KvOp::Put:
        map[cmd.key] = cmd.value;
        break;
      case app::KvOp::Delete:
        if (map.erase(cmd.key) == 0) res.status = app::KvResult::Status::NotFound;
        break;
      case app::KvOp::Scan: {
        auto it = map.lower_bound(cmd.key);
        for (std::uint32_t i = 0; i < cmd.scan_len && it != map.end(); ++i, ++it) {
          res.values.push_back(it->second);
        }
        break;
      }
    }
    return {dump_map(map), res.encode()};
  }

  // Per-key mode: state is this key's cell.
  std::string next = state;
  switch (cmd.op) {
    case app::KvOp::Get:
      if (state == "-") {
        res.status = app::KvResult::Status::NotFound;
      } else {
        res.values.push_back(state.substr(1));
      }
      break;
    case app::KvOp::Put:
      next = "+" + cmd.value;
      break;
    case app::KvOp::Delete:
      if (state == "-") {
        res.status = app::KvResult::Status::NotFound;
      } else {
        next = "-";
      }
      break;
    case app::KvOp::Scan:
      break;  // unreachable: scans force global mode
  }
  return {std::move(next), res.encode()};
}

// ---------------------------------------------------------------------------
// Counter model
// ---------------------------------------------------------------------------

std::optional<std::string> CounterModel::key(std::span<const std::byte> command) const {
  return app::CounterCommand::decode(command).name;
}

std::string CounterModel::initial_state(const std::string&) const { return "0"; }

Model::Applied CounterModel::apply(const std::string& state, const std::string&,
                                   std::span<const std::byte> command) const {
  app::CounterCommand cmd = app::CounterCommand::decode(command);
  std::int64_t value = std::stoll(state);
  if (cmd.op == app::CounterOp::Add) value += cmd.delta;
  ByteWriter w;
  w.u64(static_cast<std::uint64_t>(value));
  return {std::to_string(value), w.take()};
}

// ---------------------------------------------------------------------------
// Wing & Gong search
// ---------------------------------------------------------------------------

namespace {

constexpr Time kNever = std::numeric_limits<Time>::max();

/// Partition-local view of one operation.
struct POp {
  const Op* op;
  bool mandatory;            ///< Ok: must linearize, output checked
  Time effective_complete;   ///< kNever for maybe-executed ops
};

struct Partition {
  std::string key;
  std::vector<POp> ops;
};

class Search {
 public:
  Search(const Partition& partition, const Model& model, std::size_t max_states,
         std::size_t& states_explored)
      : partition_(partition),
        model_(model),
        max_states_(max_states),
        states_explored_(states_explored) {
    done_.assign(partition.ops.size(), false);
  }

  bool run(std::string* error) {
    budget_exceeded_ = false;
    bool ok = dfs(model_.initial_state(partition_.key));
    if (!ok && error != nullptr) {
      *error = budget_exceeded_ ? "search budget exceeded" : describe_failure();
    }
    return ok;
  }

 private:
  bool dfs(const std::string& state) {
    // Once every mandatory op is linearized, any leftover maybe-executed
    // ops can be declared never-executed — done.
    if (remaining_mandatory() == 0) return true;
    if (max_states_ != 0 && states_explored_ >= max_states_) {
      budget_exceeded_ = true;
      return false;
    }
    std::string memo_key = mask_bytes() + '\0' + state;
    if (!visited_.insert(std::move(memo_key)).second) return false;
    ++states_explored_;

    // No unlinearized op may have completed before a candidate's invoke.
    Time frontier = kNever;
    for (std::size_t i = 0; i < partition_.ops.size(); ++i) {
      if (!done_[i]) frontier = std::min(frontier, partition_.ops[i].effective_complete);
    }
    for (std::size_t i = 0; i < partition_.ops.size(); ++i) {
      if (done_[i]) continue;
      const POp& pop = partition_.ops[i];
      if (pop.op->invoke > frontier) continue;

      done_[i] = true;
      Model::Applied applied = model_.apply(state, partition_.key, pop.op->command);
      if (pop.mandatory) {
        if (applied.output == pop.op->output && dfs(applied.state)) return true;
      } else {
        // Maybe-executed: took effect now (output unobserved) ...
        if (dfs(applied.state)) return true;
        // ... or never took effect at all.
        if (dfs(state)) return true;
      }
      done_[i] = false;
    }
    return false;
  }

  std::size_t remaining_mandatory() const {
    std::size_t count = 0;
    for (std::size_t i = 0; i < partition_.ops.size(); ++i) {
      if (!done_[i] && partition_.ops[i].mandatory) ++count;
    }
    return count;
  }

  std::string mask_bytes() const {
    std::string bytes((done_.size() + 7) / 8, '\0');
    for (std::size_t i = 0; i < done_.size(); ++i) {
      if (done_[i]) bytes[i / 8] |= static_cast<char>(1u << (i % 8));
    }
    return bytes;
  }

  std::string describe_failure() const {
    std::ostringstream os;
    os << "no valid linearization of " << partition_.ops.size() << " ops";
    std::size_t shown = 0;
    for (const POp& pop : partition_.ops) {
      if (shown++ >= 12) {
        os << " ...";
        break;
      }
      os << "\n  c" << pop.op->client << "#" << pop.op->seq << " ["
         << op_result_name(pop.op->result) << "] invoke=" << pop.op->invoke
         << " complete=" << pop.op->complete;
    }
    return os.str();
  }

  const Partition& partition_;
  const Model& model_;
  const std::size_t max_states_;
  std::size_t& states_explored_;
  std::vector<bool> done_;
  std::unordered_set<std::string> visited_;
  bool budget_exceeded_ = false;
};

}  // namespace

CheckResult check_linearizable(const History& history, const Model& model,
                               std::size_t max_states) {
  CheckResult result;

  // Partition by key; a single multi-key command collapses everything
  // into one global partition.
  bool global = false;
  for (const Op& op : history.ops()) {
    if (op.result == Op::Result::Rejected && op.definitive_reject) continue;
    if (!model.key(op.command).has_value()) {
      global = true;
      break;
    }
  }

  std::map<std::string, Partition> partitions;
  for (const Op& op : history.ops()) {
    // Known never-executed: impose no constraints, take no effect.
    if (op.result == Op::Result::Rejected && op.definitive_reject) continue;
    std::string key = global ? std::string() : *model.key(op.command);
    Partition& partition = partitions[key];
    partition.key = key;
    POp pop;
    pop.op = &op;
    pop.mandatory = op.result == Op::Result::Ok;
    pop.effective_complete = pop.mandatory ? op.complete : kNever;
    partition.ops.push_back(pop);
  }

  for (auto& [key, partition] : partitions) {
    std::sort(partition.ops.begin(), partition.ops.end(),
              [](const POp& a, const POp& b) { return a.op->invoke < b.op->invoke; });
    ++result.partitions_checked;
    Search search(partition, model, max_states, result.states_explored);
    std::string error;
    if (!search.run(&error)) {
      result.linearizable = false;
      result.partition = key;
      result.error = "partition '" + key + "': " + error;
      return result;
    }
  }
  return result;
}

std::unique_ptr<Model> make_model(const std::string& app) {
  if (app == "kv") return std::make_unique<KvModel>();
  if (app == "counter") return std::make_unique<CounterModel>();
  return nullptr;
}

}  // namespace idem::check
