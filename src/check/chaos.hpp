// Chaos experiments: seeded random fault schedules driven against a full
// cluster, with the client-observed history recorded and checked for
// linearizability plus replica execution-log cross-invariants.
//
// Everything here is deterministic in (config, seed): replaying the same
// ChaosConfig reproduces the identical history bit for bit, which is what
// the replay artifacts in tests/corpus/ assert via the history hash.
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "check/history.hpp"
#include "check/linearizability.hpp"
#include "harness/cluster.hpp"
#include "sim/fault_plan.hpp"

namespace idem::check {

/// Full description of one chaos experiment (serializable; the `config`
/// half of a replay artifact).
struct ChaosConfig {
  std::string protocol = "idem";  ///< idem|idem-nopr|idem-noaqm|paxos|paxos-lbr|smart|smart-pr
  std::string app = "kv";         ///< kv | counter
  std::uint64_t seed = 1;
  std::size_t clients = 4;
  std::size_t ops_per_client = 16;  ///< invokes per client (retries are new ops)
  std::size_t keys = 3;             ///< workload key-space size
  std::size_t reject_threshold = 5;
  /// Rejected-bodies cache capacity for the proactive-rejection protocols
  /// (0 keeps the protocol default). Tiny values force LRU evictions and
  /// make the Section 4.5 refresh-on-repeat-rejection rule observable.
  std::size_t rejected_cache = 0;
  double read_fraction = 0.35;
  /// Think time between a client's operations, uniform in [min, max].
  /// Paces the workload across the fault schedule — without it a small
  /// workload finishes before the first fault fires.
  Duration think_min = 50 * kMillisecond;
  Duration think_max = 300 * kMillisecond;
  Duration op_timeout = 2 * kSecond;  ///< client operation timeout
  Duration horizon = 60 * kSecond;    ///< hard stop; unfinished ops stay Open
  /// Service-queue order on the replicas: "fifo" (default, bit-identical
  /// to the pre-discipline kernel) or "edf" (earliest-deadline-first).
  std::string discipline = "fifo";
  /// When nonzero, every client op carries this latency budget, so the
  /// fault schedule runs against deadline-carrying traffic. A reply past
  /// its budget is still an Ok outcome for the checker — the safety
  /// property under test is that budget pressure only ever produces
  /// rejections, never duplicate or ghost executions.
  Duration request_deadline = 0;
  /// Wraps each replica's acceptance test in core::DeadlineAware.
  bool deadline_aware = false;
  sim::FaultPlan plan;

  json::Value to_json() const;
  static ChaosConfig from_json(const json::Value& value);
};

struct ChaosResult {
  History history;
  CheckResult check;
  std::uint64_t history_hash = 0;
  std::size_t ok = 0, rejected = 0, timeouts = 0, open = 0;
  /// Replica execution-log cross-invariants: agreement (same sequence
  /// number => same request everywhere), exactly-once per replica, every
  /// Ok op executed somewhere, and no definitively-rejected op executed
  /// anywhere.
  bool exec_ok = true;
  std::string exec_error;

  bool passed() const { return check.linearizable && exec_ok; }
};

/// Runs one chaos experiment to completion. Deterministic.
ChaosResult run_chaos(const ChaosConfig& config);

/// Constraints for the random schedule generator.
struct PlanGenConfig {
  std::size_t max_faults = 4;
  Time start = 200 * kMillisecond;          ///< earliest fault
  Duration spread = 3 * kSecond;            ///< faults land in [start, start+spread)
  Duration max_window = 1500 * kMillisecond; ///< longest auto-revert window
  std::size_t n = 3;
  std::size_t f = 1;  ///< never more than f replicas down at once
  /// SMaRt-analog clusters have no view change: never crash replica 0.
  bool allow_leader_crash = true;
  std::size_t client_count = 4;
};

/// Generates a random-but-valid fault schedule: at most f concurrent
/// crashes, every crash eventually recovered, every window reverting
/// before `start + spread + max_window`.
sim::FaultPlan random_plan(std::uint64_t seed, const PlanGenConfig& gen);

/// Replay artifact: {"config": ..., "expect": {hash + outcome counts}}.
json::Value make_artifact(const ChaosConfig& config, const ChaosResult& result);

struct ReplayResult {
  ChaosResult result;
  bool hash_matched = true;  ///< history hash equals the artifact's stamp
  std::string error;
  bool passed() const { return result.passed() && hash_matched; }
};

/// Re-runs an artifact's config and verifies the stamped history hash.
ReplayResult replay_artifact(const json::Value& artifact);

/// Greedy shrink: repeatedly drop whole faults, then halve windows, while
/// `still_fails` keeps returning true. The predicate is arbitrary so tests
/// can shrink against synthetic bugs.
sim::FaultPlan shrink_plan(sim::FaultPlan plan,
                           const std::function<bool(const sim::FaultPlan&)>& still_fails);

std::optional<harness::Protocol> protocol_from_name(const std::string& name);

}  // namespace idem::check
