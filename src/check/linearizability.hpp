// Linearizability checker for client-observed histories.
//
// Implements the Wing & Gong search: try to order all operations into a
// sequential execution of a model state machine such that (a) every
// response matches what the model produces and (b) the order respects
// real-time precedence (op A before op B whenever A completed before B
// was invoked). The search runs per partition (per key, when the model
// supports it), memoizes visited (linearized-set, model-state) pairs, and
// walks candidates in invocation order — the classic optimizations that
// make the exponential worst case a non-issue for test-sized histories.
//
// Operation semantics (matching the paper's client states, Sec. 5.3):
//   - Ok: must linearize exactly once, and the model output must equal
//     the observed output bytes.
//   - Rejected with definitive_reject (all n replicas rejected): must
//     never linearize — the client *knows* the op did not execute.
//   - Rejected without definitive (ambivalence, n-f rejects), Timeout,
//     Open: *maybe executed*. The search may linearize the op once (with
//     unchecked output) or decide it never took effect. Its completion
//     also does not constrain later ops: an op the client gave up on can
//     still take effect arbitrarily late.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "check/history.hpp"

namespace idem::check {

/// Sequential specification used by the checker. State is encoded as an
/// opaque canonical string so memoization and partitioning stay generic.
class Model {
 public:
  virtual ~Model() = default;

  /// Partition key of an encoded command, or nullopt when the command
  /// spans keys (e.g. a KV scan) — any nullopt disables partitioning and
  /// the whole history is checked as one partition over full state.
  virtual std::optional<std::string> key(std::span<const std::byte> command) const = 0;

  /// Canonical state of one partition before any operation.
  virtual std::string initial_state(const std::string& key) const = 0;

  struct Applied {
    std::string state;
    std::vector<std::byte> output;
  };
  /// Runs one command against a partition state.
  virtual Applied apply(const std::string& state, const std::string& key,
                        std::span<const std::byte> command) const = 0;
};

/// Model of app::KvStore restricted to single-key commands
/// (Get/Put/Delete partition per key; Scan disables partitioning and is
/// checked against the full ordered map).
class KvModel final : public Model {
 public:
  std::optional<std::string> key(std::span<const std::byte> command) const override;
  std::string initial_state(const std::string& key) const override;
  Applied apply(const std::string& state, const std::string& key,
                std::span<const std::byte> command) const override;
};

/// Model of app::CounterService (partitioned per counter name).
class CounterModel final : public Model {
 public:
  std::optional<std::string> key(std::span<const std::byte> command) const override;
  std::string initial_state(const std::string& key) const override;
  Applied apply(const std::string& state, const std::string& key,
                std::span<const std::byte> command) const override;
};

struct CheckResult {
  bool linearizable = true;
  /// Human-readable description of the first violating partition.
  std::string error;
  /// Partition key the violation was found in (empty if global).
  std::string partition;
  std::size_t partitions_checked = 0;
  std::size_t states_explored = 0;

  explicit operator bool() const { return linearizable; }
};

/// Checks `history` against `model`. `max_states` bounds the search per
/// partition (0 = unbounded); exceeding it reports non-linearizable with
/// an explicit "search budget exceeded" error rather than false success.
CheckResult check_linearizable(const History& history, const Model& model,
                               std::size_t max_states = 0);

/// Convenience: picks the model by app name ("kv" or "counter").
std::unique_ptr<Model> make_model(const std::string& app);

}  // namespace idem::check
