#include "check/chaos.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "app/counter.hpp"
#include "app/kv_store.hpp"
#include "common/rng.hpp"
#include "core/acceptance.hpp"

namespace idem::check {

namespace {

/// Search budget per run: generous for test-sized histories, but bounded
/// so a pathological all-timeout partition reports "budget exceeded"
/// instead of hanging the sweep.
constexpr std::size_t kMaxSearchStates = 4'000'000;

std::string hash_string(std::uint64_t hash) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(hash));
  return buf;
}

}  // namespace

std::optional<harness::Protocol> protocol_from_name(const std::string& name) {
  if (name == "idem") return harness::Protocol::Idem;
  if (name == "idem-nopr") return harness::Protocol::IdemNoPR;
  if (name == "idem-noaqm") return harness::Protocol::IdemNoAQM;
  if (name == "paxos") return harness::Protocol::Paxos;
  if (name == "paxos-lbr") return harness::Protocol::PaxosLBR;
  if (name == "smart") return harness::Protocol::Smart;
  if (name == "smart-pr") return harness::Protocol::SmartPR;
  return std::nullopt;
}

json::Value ChaosConfig::to_json() const {
  json::Object obj;
  obj["protocol"] = json::Value(protocol);
  obj["app"] = json::Value(app);
  obj["seed"] = json::Value(seed);
  obj["clients"] = json::Value(static_cast<std::uint64_t>(clients));
  obj["ops_per_client"] = json::Value(static_cast<std::uint64_t>(ops_per_client));
  obj["keys"] = json::Value(static_cast<std::uint64_t>(keys));
  obj["reject_threshold"] = json::Value(static_cast<std::uint64_t>(reject_threshold));
  if (rejected_cache > 0) {
    obj["rejected_cache"] = json::Value(static_cast<std::uint64_t>(rejected_cache));
  }
  obj["read_fraction"] = json::Value(read_fraction);
  obj["think_min_ns"] = json::Value(static_cast<std::int64_t>(think_min));
  obj["think_max_ns"] = json::Value(static_cast<std::int64_t>(think_max));
  obj["op_timeout_ns"] = json::Value(static_cast<std::int64_t>(op_timeout));
  obj["horizon_ns"] = json::Value(static_cast<std::int64_t>(horizon));
  // Deadline knobs are emitted only when armed, so artifacts from
  // deadline-less runs (the whole existing corpus) stay byte-stable.
  if (discipline != "fifo") obj["discipline"] = json::Value(discipline);
  if (request_deadline > 0) {
    obj["request_deadline_ns"] = json::Value(static_cast<std::int64_t>(request_deadline));
  }
  if (deadline_aware) obj["deadline_aware"] = json::Value(true);
  obj["plan"] = plan.to_json();
  return json::Value(std::move(obj));
}

ChaosConfig ChaosConfig::from_json(const json::Value& value) {
  ChaosConfig config;
  config.protocol = value.get_or<std::string>("protocol", "idem");
  config.app = value.get_or<std::string>("app", "kv");
  config.seed = value.get_or<std::uint64_t>("seed", 1);
  config.clients = value.get_or<std::uint64_t>("clients", 4);
  config.ops_per_client = value.get_or<std::uint64_t>("ops_per_client", 16);
  config.keys = value.get_or<std::uint64_t>("keys", 3);
  config.reject_threshold = value.get_or<std::uint64_t>("reject_threshold", 5);
  config.rejected_cache = value.get_or<std::uint64_t>("rejected_cache", 0);
  config.read_fraction = value.get_or<double>("read_fraction", 0.35);
  config.think_min = value.get_or<std::int64_t>("think_min_ns", 50 * kMillisecond);
  config.think_max = value.get_or<std::int64_t>("think_max_ns", 300 * kMillisecond);
  config.op_timeout = value.get_or<std::int64_t>("op_timeout_ns", 2 * kSecond);
  config.horizon = value.get_or<std::int64_t>("horizon_ns", 60 * kSecond);
  config.discipline = value.get_or<std::string>("discipline", "fifo");
  config.request_deadline = value.get_or<std::int64_t>("request_deadline_ns", 0);
  config.deadline_aware = value.get_or<bool>("deadline_aware", false);
  if (value.contains("plan")) config.plan = sim::FaultPlan::from_json(value.at("plan"));
  return config;
}

namespace {

/// Mirrors tests' ExecutionRecorder, minus gtest: collects (sqn, id)
/// execution logs from every replica type.
class ExecLog {
 public:
  explicit ExecLog(harness::Cluster& cluster) {
    logs_.resize(cluster.config().n);
    for (std::size_t i = 0; i < logs_.size(); ++i) {
      auto hook = [this, i](SeqNum sqn, RequestId id) { logs_[i].push_back({sqn, id}); };
      if (auto* r = cluster.idem_replica(i)) {
        r->on_execute = hook;
      } else if (auto* p = cluster.paxos_replica(i)) {
        p->on_execute = hook;
      } else if (auto* s = cluster.smart_replica(i)) {
        s->on_execute = hook;
      } else if (auto* sp = cluster.smart_pr_replica(i)) {
        sp->on_execute = hook;
      }
    }
  }

  const std::vector<std::vector<std::pair<SeqNum, RequestId>>>& logs() const { return logs_; }

 private:
  std::vector<std::vector<std::pair<SeqNum, RequestId>>> logs_;
};

std::vector<std::byte> make_command(const ChaosConfig& config, Rng& rng, std::uint64_t client,
                                    std::uint64_t seq) {
  const std::string key = "k" + std::to_string(rng.uniform_int(0, static_cast<std::int64_t>(
                                                                      config.keys) - 1));
  const double coin = rng.next_double();
  if (config.app == "counter") {
    app::CounterCommand cmd;
    cmd.name = key;
    if (coin < config.read_fraction) {
      cmd.op = app::CounterOp::Read;
    } else {
      cmd.op = app::CounterOp::Add;
      cmd.delta = rng.uniform_int(1, 5);
    }
    return cmd.encode();
  }
  app::KvCommand cmd;
  cmd.key = key;
  if (coin < config.read_fraction) {
    cmd.op = app::KvOp::Get;
  } else if (coin < config.read_fraction + 0.1) {
    cmd.op = app::KvOp::Delete;
  } else {
    cmd.op = app::KvOp::Put;
    // Unique value per invoke: gives the checker discriminative power.
    cmd.value = "c" + std::to_string(client) + "-s" + std::to_string(seq);
  }
  return cmd.encode();
}

/// Cross-checks the replica execution logs against the history.
void check_exec_logs(const ExecLog& exec, const History& history, ChaosResult& result) {
  std::ostringstream err;
  std::set<RequestId> executed_anywhere;
  for (std::size_t r = 0; r < exec.logs().size(); ++r) {
    std::set<RequestId> seen;
    for (const auto& [sqn, id] : exec.logs()[r]) {
      if (!seen.insert(id).second) {
        err << "replica " << r << ": " << to_string(id) << " executed twice; ";
      }
      executed_anywhere.insert(id);
    }
  }
  // Agreement, tolerant to batching and checkpoint catch-up skips: any
  // two replicas execute their *common* requests in the same order.
  for (std::size_t a = 0; a < exec.logs().size(); ++a) {
    for (std::size_t b = a + 1; b < exec.logs().size(); ++b) {
      std::map<RequestId, std::size_t> pos_b;
      for (std::size_t i = 0; i < exec.logs()[b].size(); ++i) {
        pos_b.emplace(exec.logs()[b][i].second, i);
      }
      std::size_t last = 0;
      bool first = true;
      for (const auto& [sqn, id] : exec.logs()[a]) {
        auto it = pos_b.find(id);
        if (it == pos_b.end()) continue;
        if (!first && it->second <= last) {
          err << "replicas " << a << " and " << b << " disagree on execution order around "
              << to_string(id) << "; ";
          break;
        }
        last = it->second;
        first = false;
      }
    }
  }
  for (const Op& op : history.ops()) {
    RequestId id{ClientId{op.client}, OpNum{op.seq}};
    const bool executed = executed_anywhere.count(id) > 0;
    if (op.result == Op::Result::Ok && !executed) {
      err << to_string(id) << " replied Ok but never executed; ";
    }
    if (op.result == Op::Result::Rejected && op.definitive_reject && executed) {
      err << to_string(id) << " was definitively rejected (all n) yet executed; ";
    }
  }
  result.exec_error = err.str();
  result.exec_ok = result.exec_error.empty();
}

}  // namespace

ChaosResult run_chaos(const ChaosConfig& config) {
  harness::ClusterConfig cluster_config;
  auto protocol = protocol_from_name(config.protocol);
  if (!protocol) throw std::runtime_error("chaos: unknown protocol '" + config.protocol + "'");
  cluster_config.protocol = *protocol;
  cluster_config.clients = config.clients;
  cluster_config.reject_threshold = config.reject_threshold;
  cluster_config.seed = config.seed;
  cluster_config.preload = false;
  if (config.app == "counter") {
    cluster_config.store_factory = [] { return std::make_unique<app::CounterService>(); };
  } else if (config.app == "kv") {
    cluster_config.store_factory = [] { return std::make_unique<app::KvStore>(); };
  } else {
    throw std::runtime_error("chaos: unknown app '" + config.app + "'");
  }
  if (config.rejected_cache > 0) {
    cluster_config.idem.rejected_cache_size = config.rejected_cache;
    cluster_config.smart_pr.rejected_cache_size = config.rejected_cache;
  }
  if (config.discipline == "edf") {
    cluster_config.discipline = sim::DisciplineKind::Edf;
  } else if (config.discipline != "fifo") {
    throw std::runtime_error("chaos: unknown discipline '" + config.discipline + "'");
  }
  if (config.deadline_aware) {
    cluster_config.acceptance_factory = [](std::size_t) {
      return std::unique_ptr<core::AcceptanceTest>(
          new core::DeadlineAware(core::DeadlineAware::Params{}));
    };
  }
  // Fast failover so crashes resolve well inside the horizon.
  cluster_config.idem.viewchange_timeout = 300 * kMillisecond;
  cluster_config.paxos.viewchange_timeout = 300 * kMillisecond;
  cluster_config.paxos.heartbeat_interval = 100 * kMillisecond;
  cluster_config.idem_client.retry_interval = 200 * kMillisecond;
  cluster_config.paxos_client.retry_interval = 250 * kMillisecond;
  cluster_config.smart_client.retry_interval = 250 * kMillisecond;
  cluster_config.idem_client.operation_timeout = config.op_timeout;
  cluster_config.paxos_client.operation_timeout = config.op_timeout;
  cluster_config.smart_client.operation_timeout = config.op_timeout;

  harness::Cluster cluster(cluster_config);
  ExecLog exec(cluster);
  cluster.apply(config.plan);

  ChaosResult result;
  History& history = result.history;

  struct ClientState {
    Rng rng{0, 0};
    std::uint64_t issued = 0;     ///< invokes started
    std::uint64_t completed = 0;  ///< outcomes observed
  };
  std::vector<ClientState> states(config.clients);
  for (std::size_t c = 0; c < config.clients; ++c) {
    states[c].rng = Rng(config.seed, 0x51A05u + c);
  }

  bool recording = true;
  std::function<void(std::size_t)> issue = [&](std::size_t c) {
    ClientState& state = states[c];
    if (!recording || state.issued >= config.ops_per_client) return;
    const std::uint64_t seq = ++state.issued;
    std::vector<std::byte> command = make_command(config, state.rng, c, seq);
    if (config.request_deadline > 0) {
      cluster.client(c).set_request_deadline(config.request_deadline);
    }
    const std::size_t index = history.begin(c, seq, command, cluster.simulator().now());
    cluster.client(c).invoke(std::move(command), [&, c, index](const consensus::Outcome& o) {
      ClientState& st = states[c];
      ++st.completed;
      if (recording) {
        Op::Result r = Op::Result::Ok;
        switch (o.kind) {
          case consensus::Outcome::Kind::Reply:
            r = Op::Result::Ok;
            break;
          case consensus::Outcome::Kind::Rejected:
            r = Op::Result::Rejected;
            break;
          case consensus::Outcome::Kind::Timeout:
            r = Op::Result::Timeout;
            break;
        }
        history.complete(index, r, cluster.simulator().now(), o.result, o.definitive_failure);
      }
      // Think time paces the workload across the fault schedule; rejected
      // clients additionally back off (rejection = overload signal).
      Duration delay = config.think_min +
                       st.rng.uniform_int(0, std::max<Duration>(0, config.think_max -
                                                                       config.think_min));
      if (o.kind == consensus::Outcome::Kind::Rejected) delay += 20 * kMillisecond;
      cluster.simulator().schedule_after(delay, [&, c] { issue(c); });
    });
  };
  for (std::size_t c = 0; c < config.clients; ++c) issue(c);

  cluster.simulator().run_while([&] {
    if (cluster.simulator().now() >= config.horizon) return false;
    for (const ClientState& state : states) {
      if (state.completed < config.ops_per_client) return true;
    }
    return false;
  });
  recording = false;
  // Let in-flight agreement and lagging replicas drain so the execution
  // logs are as complete as the simulation can make them.
  cluster.simulator().run_for(kSecond);

  result.ok = history.count(Op::Result::Ok);
  result.rejected = history.count(Op::Result::Rejected);
  result.timeouts = history.count(Op::Result::Timeout);
  result.open = history.count(Op::Result::Open);
  result.history_hash = history.hash();

  auto model = make_model(config.app);
  result.check = check_linearizable(history, *model, kMaxSearchStates);
  check_exec_logs(exec, history, result);
  return result;
}

sim::FaultPlan random_plan(std::uint64_t seed, const PlanGenConfig& gen) {
  Rng rng(seed, 0xC4A05u);
  sim::FaultPlan plan;
  const std::size_t count = 1 + static_cast<std::size_t>(rng.uniform_int(
                                    0, static_cast<std::int64_t>(gen.max_faults) - 1));

  std::set<std::uint32_t> crashed;
  Time t = gen.start;
  const Duration step = gen.spread / static_cast<Duration>(count + 1);
  for (std::size_t i = 0; i < count; ++i) {
    t = std::min(t + step / 2 + rng.uniform_int(0, step), gen.start + gen.spread);
    const Duration window =
        50 * kMillisecond +
        rng.uniform_int(0, std::max<Duration>(0, gen.max_window - 50 * kMillisecond));

    // Pick a kind the current state allows.
    for (int attempt = 0; attempt < 8; ++attempt) {
      const int kind = static_cast<int>(rng.uniform_int(0, 5));
      if (kind == 0) {  // crash
        if (crashed.size() >= gen.f) continue;
        const std::uint32_t lo = gen.allow_leader_crash ? 0 : 1;
        auto victim = static_cast<std::uint32_t>(
            rng.uniform_int(lo, static_cast<std::int64_t>(gen.n) - 1));
        if (crashed.count(victim)) continue;
        plan.add(sim::Fault::crash(t, static_cast<std::int32_t>(victim)));
        crashed.insert(victim);
      } else if (kind == 1) {  // recover
        if (crashed.empty()) continue;
        const std::uint32_t victim = *crashed.begin();
        plan.add(sim::Fault::recover(t, static_cast<std::int32_t>(victim)));
        crashed.erase(victim);
      } else if (kind == 2 || kind == 3) {  // partition (symmetric / one-way)
        const std::uint32_t lo = gen.allow_leader_crash ? 0 : 1;
        auto isolated = static_cast<std::uint32_t>(
            rng.uniform_int(lo, static_cast<std::int64_t>(gen.n) - 1));
        std::vector<std::uint32_t> side_a{sim::fault_endpoint_replica(isolated)};
        std::vector<std::uint32_t> side_b;
        for (std::uint32_t r = 0; r < gen.n; ++r) {
          if (r != isolated) side_b.push_back(sim::fault_endpoint_replica(r));
        }
        for (std::uint32_t c = 0; c < gen.client_count; ++c) {
          side_b.push_back(sim::fault_endpoint_client(c));
        }
        if (kind == 2) {
          plan.add(sim::Fault::partition(t, side_a, side_b, window));
        } else if (rng.next_double() < 0.5) {
          plan.add(sim::Fault::partition_one_way(t, side_a, side_b, window));
        } else {
          plan.add(sim::Fault::partition_one_way(t, side_b, side_a, window));
        }
      } else if (kind == 4) {  // delay spike
        const double factor = 2.0 + 8.0 * rng.next_double();
        plan.add(sim::Fault::delay_spike(t, factor, window));
      } else {  // drop burst
        const double p = 0.1 + 0.4 * rng.next_double();
        plan.add(sim::Fault::drop_burst(t, p, window));
      }
      break;
    }
  }
  // Every crash recovers: a permanently-down replica turns schedule bugs
  // into protocol-liveness noise.
  for (std::uint32_t victim : crashed) {
    t = std::min(t + step, gen.start + gen.spread + gen.max_window);
    plan.add(sim::Fault::recover(t, static_cast<std::int32_t>(victim)));
  }
  return plan;
}

json::Value make_artifact(const ChaosConfig& config, const ChaosResult& result) {
  json::Object expect;
  expect["history_hash"] = json::Value(hash_string(result.history_hash));
  expect["ok"] = json::Value(static_cast<std::uint64_t>(result.ok));
  expect["rejected"] = json::Value(static_cast<std::uint64_t>(result.rejected));
  expect["timeouts"] = json::Value(static_cast<std::uint64_t>(result.timeouts));
  expect["open"] = json::Value(static_cast<std::uint64_t>(result.open));
  expect["linearizable"] = json::Value(result.check.linearizable);
  json::Object obj;
  obj["config"] = config.to_json();
  obj["expect"] = json::Value(std::move(expect));
  return json::Value(std::move(obj));
}

ReplayResult replay_artifact(const json::Value& artifact) {
  const json::Value& config_json =
      artifact.contains("config") ? artifact.at("config") : artifact;
  ChaosConfig config = ChaosConfig::from_json(config_json);

  ReplayResult replay;
  replay.result = run_chaos(config);
  if (artifact.contains("expect")) {
    const json::Value& expect = artifact.at("expect");
    std::string want = expect.get_or<std::string>("history_hash", "");
    std::string got = hash_string(replay.result.history_hash);
    if (!want.empty() && want != got) {
      replay.hash_matched = false;
      replay.error = "history hash mismatch: artifact " + want + " vs replay " + got;
    }
  }
  if (!replay.result.check.linearizable) {
    replay.error += (replay.error.empty() ? "" : "; ") + replay.result.check.error;
  }
  if (!replay.result.exec_ok) {
    replay.error += (replay.error.empty() ? "" : "; ") + replay.result.exec_error;
  }
  return replay;
}

sim::FaultPlan shrink_plan(sim::FaultPlan plan,
                           const std::function<bool(const sim::FaultPlan&)>& still_fails) {
  bool changed = true;
  while (changed) {
    changed = false;
    // Pass 1: drop whole faults.
    for (std::size_t i = 0; i < plan.faults.size();) {
      sim::FaultPlan candidate = plan;
      candidate.faults.erase(candidate.faults.begin() + static_cast<std::ptrdiff_t>(i));
      if (still_fails(candidate)) {
        plan = std::move(candidate);
        changed = true;
      } else {
        ++i;
      }
    }
    // Pass 2: shorten windows.
    for (std::size_t i = 0; i < plan.faults.size(); ++i) {
      while (plan.faults[i].duration >= 20 * kMillisecond) {
        sim::FaultPlan candidate = plan;
        candidate.faults[i].duration /= 2;
        if (!still_fails(candidate)) break;
        plan = std::move(candidate);
        changed = true;
      }
    }
  }
  return plan;
}

}  // namespace idem::check
