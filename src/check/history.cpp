#include "check/history.hpp"

#include <stdexcept>

namespace idem::check {

namespace {

std::string to_hex(std::span<const std::byte> bytes) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (std::byte b : bytes) {
    out.push_back(kDigits[std::to_integer<unsigned>(b) >> 4]);
    out.push_back(kDigits[std::to_integer<unsigned>(b) & 0xF]);
  }
  return out;
}

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw std::runtime_error("history: invalid hex digit");
}

std::vector<std::byte> from_hex(const std::string& hex) {
  if (hex.size() % 2 != 0) throw std::runtime_error("history: odd hex length");
  std::vector<std::byte> out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    out.push_back(static_cast<std::byte>((hex_digit(hex[i]) << 4) | hex_digit(hex[i + 1])));
  }
  return out;
}

Op::Result result_from_name(const std::string& name) {
  if (name == "open") return Op::Result::Open;
  if (name == "ok") return Op::Result::Ok;
  if (name == "rejected") return Op::Result::Rejected;
  if (name == "timeout") return Op::Result::Timeout;
  throw std::runtime_error("history: unknown op result '" + name + "'");
}

}  // namespace

const char* op_result_name(Op::Result result) {
  switch (result) {
    case Op::Result::Open:
      return "open";
    case Op::Result::Ok:
      return "ok";
    case Op::Result::Rejected:
      return "rejected";
    case Op::Result::Timeout:
      return "timeout";
  }
  return "?";
}

json::Value Op::to_json() const {
  json::Object obj;
  obj["client"] = json::Value(static_cast<std::uint64_t>(client));
  obj["seq"] = json::Value(static_cast<std::uint64_t>(seq));
  obj["invoke_ns"] = json::Value(static_cast<std::int64_t>(invoke));
  obj["complete_ns"] = json::Value(static_cast<std::int64_t>(complete));
  obj["result"] = json::Value(std::string(op_result_name(result)));
  if (definitive_reject) obj["definitive"] = json::Value(true);
  obj["command"] = json::Value(to_hex(command));
  if (!output.empty()) obj["output"] = json::Value(to_hex(output));
  return json::Value(std::move(obj));
}

Op Op::from_json(const json::Value& value) {
  Op op;
  op.client = value.get_or<std::uint64_t>("client", 0);
  op.seq = value.get_or<std::uint64_t>("seq", 0);
  op.invoke = value.get_or<std::int64_t>("invoke_ns", 0);
  op.complete = value.get_or<std::int64_t>("complete_ns", -1);
  op.result = result_from_name(value.get_or<std::string>("result", "open"));
  op.definitive_reject = value.get_or<bool>("definitive", false);
  op.command = from_hex(value.get_or<std::string>("command", ""));
  op.output = from_hex(value.get_or<std::string>("output", ""));
  return op;
}

std::size_t History::begin(std::uint64_t client, std::uint64_t seq,
                           std::span<const std::byte> command, Time now) {
  Op op;
  op.client = client;
  op.seq = seq;
  op.invoke = now;
  op.command.assign(command.begin(), command.end());
  ops_.push_back(std::move(op));
  return ops_.size() - 1;
}

void History::complete(std::size_t index, Op::Result result, Time now,
                       std::span<const std::byte> output, bool definitive_reject) {
  Op& op = ops_.at(index);
  op.result = result;
  op.complete = now;
  op.output.assign(output.begin(), output.end());
  op.definitive_reject = definitive_reject;
}

std::size_t History::count(Op::Result result) const {
  std::size_t n = 0;
  for (const Op& op : ops_) {
    if (op.result == result) ++n;
  }
  return n;
}

std::uint64_t History::hash() const {
  std::string dump = to_json().dump();
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a 64-bit offset basis
  for (char c : dump) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

json::Value History::to_json() const {
  json::Array ops;
  ops.reserve(ops_.size());
  for (const Op& op : ops_) ops.push_back(op.to_json());
  json::Object obj;
  obj["ops"] = json::Value(std::move(ops));
  return json::Value(std::move(obj));
}

History History::from_json(const json::Value& value) {
  History history;
  for (const json::Value& op : value.at("ops").as_array()) {
    history.ops_.push_back(Op::from_json(op));
  }
  return history;
}

}  // namespace idem::check
