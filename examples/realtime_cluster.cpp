// Real-time cluster: the same IDEM implementation that runs in the
// deterministic simulator, here running over real kernel TCP sockets on
// an epoll event loop — including a live leader crash with view change.
//
//   ./build/examples/realtime_cluster
#include <cstdio>
#include <memory>
#include <vector>

#include "app/kv_store.hpp"
#include "common/histogram.hpp"
#include "idem/acceptance.hpp"
#include "idem/client.hpp"
#include "idem/replica.hpp"
#include "rpc/event_loop.hpp"
#include "rpc/tcp_transport.hpp"

using namespace idem;

namespace {

struct LoadState {
  Histogram latency;
  std::uint64_t replies = 0;
  std::uint64_t rejects = 0;
};

/// Closed-loop driver for one client on the real event loop.
void drive(rpc::EventLoop& loop, core::IdemClient& client, LoadState& state,
           std::uint64_t index) {
  app::KvCommand cmd;
  cmd.op = app::KvOp::Put;
  cmd.key = "key" + std::to_string(index % 64);
  cmd.value = "value-" + std::to_string(index);
  client.invoke(cmd.encode(), [&, index](const consensus::Outcome& outcome) {
    state.latency.record(outcome.latency());
    if (outcome.kind == consensus::Outcome::Kind::Reply) {
      ++state.replies;
    } else {
      ++state.rejects;
    }
    loop.schedule_after(0, [&, index] { drive(loop, client, state, index + 1); });
  });
}

}  // namespace

int main() {
  std::printf("== IDEM over real TCP (loopback, epoll event loop) ==\n\n");

  rpc::EventLoop loop(/*seed=*/42);
  rpc::TcpTransport transport(loop);

  core::IdemConfig config;
  config.n = 3;
  config.f = 1;
  config.reject_threshold = 50;
  config.viewchange_timeout = 500 * kMillisecond;
  // Real time is the cost model here; disable the simulated CPU charges,
  // and flush REQUIREs inline (timer granularity on the real loop is ms).
  config.costs = consensus::CostModel{0, 0, 0, 0, 0, 0, 1};
  config.require_batch_max = 1;

  std::vector<std::unique_ptr<core::IdemReplica>> replicas;
  for (std::uint32_t i = 0; i < 3; ++i) {
    replicas.push_back(std::make_unique<core::IdemReplica>(
        loop, transport, ReplicaId{i}, config,
        std::make_unique<app::KvStore>(app::KvStore::Costs{0, 0, 0}),
        core::make_default_acceptance(config, 4)));
    std::printf("replica %u listening on 127.0.0.1:%u\n", i,
                transport.port_of(consensus::replica_address(ReplicaId{i})));
  }

  const std::size_t num_clients = 4;
  core::IdemClientConfig client_config;
  client_config.retry_interval = 300 * kMillisecond;
  std::vector<std::unique_ptr<core::IdemClient>> clients;
  LoadState state;
  for (std::size_t c = 0; c < num_clients; ++c) {
    clients.push_back(
        std::make_unique<core::IdemClient>(loop, transport, ClientId{c}, client_config));
  }

  std::printf("\nphase 1: %zu closed-loop clients for 2 s of wall-clock time ...\n",
              num_clients);
  for (auto& client : clients) drive(loop, *client, state, 0);
  loop.run_for(2 * kSecond);

  std::printf("  %llu replies (%.0f ops/s), %llu rejects | latency p50 %.0f us,"
              " p99 %.0f us\n",
              static_cast<unsigned long long>(state.replies),
              static_cast<double>(state.replies) / 2.0,
              static_cast<unsigned long long>(state.rejects),
              to_us(state.latency.p50()), to_us(state.latency.p99()));

  std::printf("\nphase 2: crashing the leader (replica 0) live ...\n");
  replicas[0]->crash();
  // The running drivers capture `state` by reference; reset it in place.
  state = LoadState{};
  loop.run_for(2 * kSecond);

  std::printf("  view change completed: replica 1 leader = %s (view %llu)\n",
              replicas[1]->is_leader() ? "yes" : "no",
              static_cast<unsigned long long>(replicas[1]->view().value));
  std::printf("  %llu replies after the crash | latency p50 %.0f us, p99 %.0f us\n",
              static_cast<unsigned long long>(state.replies),
              to_us(state.latency.p50()), to_us(state.latency.p99()));

  std::printf("\nThe protocol stack (replica + client code) is byte-identical to the\n"
              "one the simulator benchmarks — only Runtime and Transport differ.\n");
  return 0;
}
