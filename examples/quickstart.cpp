// Quickstart: bring up a 3-replica IDEM cluster, run a few key-value
// operations through the replicated service, and show what a rejection
// looks like when the service is saturated.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>
#include <string>

#include "app/kv_store.hpp"
#include "harness/cluster.hpp"

using namespace idem;

int main() {
  // A cluster of n = 2f+1 = 3 replicas and a single client.
  harness::ClusterConfig config;
  config.protocol = harness::Protocol::Idem;
  config.clients = 1;
  config.reject_threshold = 50;  // the paper's default RT
  config.preload = false;
  harness::Cluster cluster(config);

  auto& sim = cluster.simulator();
  auto& client = cluster.client(0);

  auto run_op = [&](app::KvCommand cmd) {
    std::string label = cmd.op == app::KvOp::Put ? "PUT " + cmd.key + "=" + cmd.value
                                                 : "GET " + cmd.key;
    client.invoke(cmd.encode(), [&, label](const consensus::Outcome& outcome) {
      switch (outcome.kind) {
        case consensus::Outcome::Kind::Reply: {
          auto result = app::KvResult::decode(outcome.result);
          std::printf("%-28s -> reply in %.3f ms", label.c_str(), to_ms(outcome.latency()));
          if (!result.values.empty()) std::printf(" (value: %s)", result.values[0].c_str());
          if (result.status == app::KvResult::Status::NotFound) std::printf(" (not found)");
          std::printf("\n");
          break;
        }
        case consensus::Outcome::Kind::Rejected:
          std::printf("%-28s -> REJECTED in %.3f ms (fallback time!)\n", label.c_str(),
                      to_ms(outcome.latency()));
          break;
        case consensus::Outcome::Kind::Timeout:
          std::printf("%-28s -> timed out\n", label.c_str());
          break;
      }
    });
    // Run the simulation until the operation completes.
    sim.run_while([&] { return client.busy(); });
  };

  std::printf("== IDEM quickstart: replicated key-value store ==\n\n");

  app::KvCommand put;
  put.op = app::KvOp::Put;
  put.key = "greeting";
  put.value = "hello-idem";
  run_op(put);

  app::KvCommand get;
  get.op = app::KvOp::Get;
  get.key = "greeting";
  run_op(get);

  app::KvCommand missing;
  missing.op = app::KvOp::Get;
  missing.key = "nothing-here";
  run_op(missing);

  // Crash a follower: the service keeps running with f = 1 tolerance.
  std::printf("\ncrashing follower replica 2 ...\n");
  cluster.crash_replica(2);
  get.key = "greeting";
  run_op(get);

  std::printf("\nDone. See examples/robot_warehouse.cpp for proactive\n"
              "rejection under a load spike, and bench/ for the paper's\n"
              "experiments.\n");
  return 0;
}
