// Massive multiplayer online gaming (paper Section 2.3, third example).
//
// Only the replicated game service knows the authoritative positions of
// all players; clients can bridge gaps with local movement *prediction*,
// which is cheap-ish but wrong whenever someone changes direction. A
// login wave doubles the player count in seconds — the classic overload
// burst. With IDEM, clients whose state-sync requests are rejected
// switch to prediction for one tick and immediately relieve the servers;
// with a traditional protocol every client's sync just queues up and the
// whole match lags.
#include <cstdio>
#include <string>
#include <vector>

#include "app/kv_store.hpp"
#include "common/histogram.hpp"
#include "harness/cluster.hpp"

using namespace idem;

namespace {

struct MatchStats {
  std::uint64_t synced = 0;     ///< tick used authoritative server state
  std::uint64_t predicted = 0;  ///< tick used local movement prediction
  std::uint64_t lagged = 0;     ///< tick deadline missed entirely (visible lag)
  Histogram tick_wait;
};

class Player {
 public:
  Player(harness::Cluster& cluster, std::size_t index, MatchStats& stats)
      : cluster_(cluster), index_(index), stats_(stats) {}

  void join() {
    // Desynchronize: players start at a random point inside the tick so
    // the fleet does not fire synchronized request waves.
    Duration offset = cluster_.simulator().rng("game.join").uniform_int(0, kTick);
    cluster_.simulator().schedule_after(offset, [this] { tick(); });
  }

 private:
  static constexpr Duration kTick = 50 * kMillisecond;      // 20 ticks/s
  static constexpr Duration kTickDeadline = 30 * kMillisecond;

  void tick() {
    app::KvCommand cmd;
    cmd.op = app::KvOp::Put;
    cmd.key = "player" + std::to_string(index_);
    cmd.value = "state:" + std::to_string(frame_);
    issued_ = cluster_.simulator().now();
    cluster_.client(index_).invoke(
        cmd.encode(), [this](const consensus::Outcome& outcome) { on_outcome(outcome); });
  }

  void on_outcome(const consensus::Outcome& outcome) {
    ++frame_;
    Duration waited = outcome.completed - issued_;
    stats_.tick_wait.record(waited);
    if (outcome.kind == consensus::Outcome::Kind::Reply && waited <= kTickDeadline) {
      ++stats_.synced;
    } else if (outcome.kind == consensus::Outcome::Kind::Rejected &&
               waited <= kTickDeadline) {
      // Early rejection: run movement prediction for this frame.
      ++stats_.predicted;
    } else {
      // Late reply, late rejection, or timeout: the frame already
      // rendered without fresh data — that's user-visible lag.
      ++stats_.lagged;
    }
    // Next tick starts on the fixed cadence.
    Duration since_issue = cluster_.simulator().now() - issued_;
    Duration wait = since_issue >= kTick ? 0 : kTick - since_issue;
    cluster_.simulator().schedule_after(wait, [this] { tick(); });
  }

  harness::Cluster& cluster_;
  std::size_t index_;
  MatchStats& stats_;
  Time issued_ = 0;
  std::uint64_t frame_ = 0;
};

void report(const char* label, const MatchStats& stats) {
  std::uint64_t total = stats.synced + stats.predicted + stats.lagged;
  if (total == 0) total = 1;
  std::printf("  %-26s %7llu ticks: %5.1f%% synced, %5.1f%% predicted, %5.1f%% LAGGED"
              " | p99 wait %.1f ms\n",
              label, static_cast<unsigned long long>(total), 100.0 * stats.synced / total,
              100.0 * stats.predicted / total, 100.0 * stats.lagged / total,
              to_ms(stats.tick_wait.p99()));
}

void run_match(harness::Protocol protocol, const char* label) {
  const std::size_t base_players = 100;
  const std::size_t wave_players = 2900;  // login wave: 30x the base
  harness::ClusterConfig config;
  config.protocol = protocol;
  config.clients = base_players + wave_players;
  config.reject_threshold = 50;
  config.preload = false;
  config.idem_client.operation_timeout = 500 * kMillisecond;
  config.paxos_client.operation_timeout = 500 * kMillisecond;
  config.smart_client.operation_timeout = 500 * kMillisecond;
  harness::Cluster cluster(config);

  MatchStats stats;
  std::vector<Player> players;
  players.reserve(config.clients);
  for (std::size_t i = 0; i < config.clients; ++i) players.emplace_back(cluster, i, stats);

  std::printf("%s:\n", label);
  for (std::size_t i = 0; i < base_players; ++i) players[i].join();
  cluster.simulator().run_for(4 * kSecond);
  report("steady match (100 players)", stats);

  stats = MatchStats{};
  for (std::size_t i = base_players; i < players.size(); ++i) players[i].join();
  cluster.simulator().run_for(6 * kSecond);
  report("login wave (3000 players)", stats);
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("== MMO match: 20 ticks/s state sync through a login wave ==\n");
  std::printf("(a tick is LAGGED when neither server state nor a rejection arrived\n"
              " within the 30 ms frame deadline)\n\n");

  run_match(harness::Protocol::Idem, "IDEM (proactive rejection)");
  run_match(harness::Protocol::Smart, "BFT-SMaRt-analog (no overload protection)");

  std::printf("IDEM keeps the match playable through the wave: overload turns into\n"
              "*predicted* frames (good enough) instead of *lagged* frames (visible\n"
              "stutter), because rejections arrive within the frame budget.\n");
  return 0;
}
