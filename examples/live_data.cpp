// Live data / web frontends (paper Section 2.3, second example).
//
// Web clients (chat, newsfeeds) should mask *short* delays by showing
// slightly stale data, and show a loading indicator only for *long*
// delays. For that, the client logic must distinguish the two cases
// early. IDEM's rejection notifications deliver exactly that signal:
// instead of waiting on a timeout, the frontend knows within ~2 ms that
// this refresh won't be served and keeps showing cached data.
//
// The demo compares the user experience of IDEM and Paxos frontends
// through an overload phase, measuring how long the UI was blocked
// waiting without information.
#include <cstdio>
#include <string>
#include <vector>

#include "app/kv_store.hpp"
#include "common/histogram.hpp"
#include "harness/cluster.hpp"

using namespace idem;

namespace {

struct UxStats {
  std::uint64_t fresh = 0;           ///< refresh served in time
  std::uint64_t cached_informed = 0; ///< rejection -> showed cache, no spinner
  std::uint64_t spinner = 0;         ///< waited blind past the spinner deadline
  Histogram wait;                    ///< time until the UI knew what to render
};

class Frontend {
 public:
  Frontend(harness::Cluster& cluster, std::size_t index, UxStats& stats)
      : cluster_(cluster), index_(index), stats_(stats) {}

  void start() { refresh(); }

 private:
  static constexpr Duration kSpinnerDeadline = 100 * kMillisecond;

  void refresh() {
    app::KvCommand cmd;
    cmd.op = app::KvOp::Get;
    cmd.key = "feed" + std::to_string(index_ % 16);
    issued_ = cluster_.simulator().now();
    cluster_.client(index_).invoke(
        cmd.encode(), [this](const consensus::Outcome& outcome) { on_outcome(outcome); });
  }

  void on_outcome(const consensus::Outcome& outcome) {
    Duration waited = outcome.completed - issued_;
    stats_.wait.record(waited);
    Duration next = 200 * kMillisecond;  // refresh cadence
    if (outcome.kind == consensus::Outcome::Kind::Reply) {
      if (waited <= kSpinnerDeadline) {
        ++stats_.fresh;
      } else {
        ++stats_.spinner;  // user already saw a loading animation
      }
    } else {
      // Rejection: the UI *knows* and simply keeps the cached feed —
      // no spinner, no frustration. Retry a bit later.
      ++stats_.cached_informed;
      next += 100 * kMillisecond;
    }
    cluster_.simulator().schedule_after(next, [this] { refresh(); });
  }

  harness::Cluster& cluster_;
  std::size_t index_;
  UxStats& stats_;
  Time issued_ = 0;
};

UxStats run_scenario(harness::Protocol protocol, const char* label) {
  const std::size_t users = 800;  // a traffic spike far beyond capacity
  harness::ClusterConfig config;
  config.protocol = protocol;
  config.clients = users;
  config.reject_threshold = 50;
  config.preload = false;
  // Web clients would give up eventually; model a 1 s hard timeout.
  config.idem_client.operation_timeout = kSecond;
  config.paxos_client.operation_timeout = kSecond;
  harness::Cluster cluster(config);

  // Seed the feeds.
  for (int i = 0; i < 16; ++i) {
    app::KvCommand seed;
    seed.op = app::KvOp::Put;
    seed.key = "feed" + std::to_string(i);
    seed.value = std::string(100, 'n');
    cluster.client(0).invoke(seed.encode(), [](const consensus::Outcome&) {});
    cluster.simulator().run_while([&] { return cluster.client(0).busy(); });
  }

  UxStats stats;
  std::vector<Frontend> frontends;
  frontends.reserve(users);
  for (std::size_t i = 0; i < users; ++i) frontends.emplace_back(cluster, i, stats);
  for (auto& frontend : frontends) frontend.start();
  cluster.simulator().run_for(10 * kSecond);

  std::uint64_t total = stats.fresh + stats.cached_informed + stats.spinner;
  if (total == 0) total = 1;
  std::printf("%-10s %7llu refreshes: %5.1f%% fresh, %5.1f%% cached-but-informed,"
              " %5.1f%% spinner | know-what-to-render p99: %.1f ms\n",
              label, static_cast<unsigned long long>(total), 100.0 * stats.fresh / total,
              100.0 * stats.cached_informed / total, 100.0 * stats.spinner / total,
              to_ms(stats.wait.p99()));
  return stats;
}

}  // namespace

int main() {
  std::printf("== Live data: feed refreshes during a traffic spike (800 users) ==\n\n");
  std::printf("'spinner' = the UI waited >100 ms with no information.\n\n");

  run_scenario(harness::Protocol::Idem, "IDEM");
  run_scenario(harness::Protocol::Paxos, "Paxos");

  std::printf("\nIDEM converts almost every would-be spinner into an *informed* cache\n"
              "display: the user sees slightly stale data instead of a loading animation,\n"
              "because the service said 'not now' within milliseconds.\n");
  return 0;
}
