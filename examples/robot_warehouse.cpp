// Robot warehouse (paper Section 2.3, first example).
//
// Semi-autonomous robots transport goods inside a warehouse. A replicated
// route-planning service knows every robot's position and destination and
// computes globally efficient routes. When the service is overloaded and
// *proactively rejects* a robot's routing request, the robot instantly
// falls back to local Lidar-based navigation: functional, but less
// efficient (it cannot see other robots' plans).
//
// The demo drives a fleet through a load spike and reports, for every
// phase, how many navigation decisions used the optimal replicated
// planner vs. the local fallback — and crucially how *quickly* the robots
// learned that they had to fall back (the paper's "middle tier").
#include <cstdio>
#include <string>
#include <vector>

#include "app/kv_store.hpp"
#include "common/histogram.hpp"
#include "harness/cluster.hpp"

using namespace idem;

namespace {

struct RobotFleetStats {
  std::uint64_t planned = 0;        ///< decisions from the replicated planner
  std::uint64_t fallback = 0;       ///< local sensor-based decisions
  std::uint64_t stale = 0;          ///< planner answer came too late to use
  Histogram decision_latency;       ///< time until the robot could act
};

/// One warehouse robot: repeatedly asks the planner for its next route
/// segment; on rejection it navigates by local sensors and retries later.
class Robot {
 public:
  Robot(harness::Cluster& cluster, std::size_t index, RobotFleetStats& stats,
        Duration deadline)
      : cluster_(cluster), index_(index), stats_(stats), deadline_(deadline) {}

  void start() { request_route(); }

 private:
  void request_route() {
    // The robot uploads its position and asks for the next segment. A
    // put models the position update + route query round trip.
    app::KvCommand cmd;
    cmd.op = app::KvOp::Put;
    cmd.key = "robot" + std::to_string(index_);
    cmd.value = "pos:" + std::to_string(step_);
    cluster_.client(index_).invoke(
        cmd.encode(), [this](const consensus::Outcome& outcome) { on_outcome(outcome); });
  }

  void on_outcome(const consensus::Outcome& outcome) {
    ++step_;
    stats_.decision_latency.record(outcome.latency());
    Duration next_in = 10 * kMillisecond;  // robots re-plan 100x/second
    if (outcome.kind == consensus::Outcome::Kind::Reply) {
      if (outcome.latency() <= deadline_) {
        ++stats_.planned;
      } else {
        // A late route is useless: the robot has already moved on.
        ++stats_.stale;
      }
    } else {
      // Rejected: navigate by Lidar and give the planner some air
      // (Section 7.1's 50-100 ms backoff).
      ++stats_.fallback;
      next_in += 50 * kMillisecond +
                 cluster_.simulator().rng("robot.backoff").uniform_int(0, 50) * kMillisecond /
                     50;
    }
    cluster_.simulator().schedule_after(next_in, [this] { request_route(); });
  }

  harness::Cluster& cluster_;
  std::size_t index_;
  RobotFleetStats& stats_;
  Duration deadline_;
  std::uint64_t step_ = 0;
};

void report(const char* phase, const RobotFleetStats& stats) {
  std::uint64_t total = stats.planned + stats.fallback + stats.stale;
  if (total == 0) total = 1;
  std::printf("%-28s %6llu decisions: %4.1f%% planned, %4.1f%% fallback, %4.1f%% stale"
              " | decision latency p99 %.2f ms\n",
              phase, static_cast<unsigned long long>(total),
              100.0 * stats.planned / total, 100.0 * stats.fallback / total,
              100.0 * stats.stale / total, to_ms(stats.decision_latency.p99()));
}

}  // namespace

int main() {
  std::printf("== Robot warehouse: route planning with proactive rejection ==\n\n");

  // 800 robots share a 3-replica IDEM planner sized for steady-state
  // operation (not for the rush-hour peak).
  const std::size_t fleet_size = 800;
  harness::ClusterConfig config;
  config.protocol = harness::Protocol::Idem;
  config.clients = fleet_size;
  config.reject_threshold = 50;
  config.preload = false;
  harness::Cluster cluster(config);

  const Duration route_deadline = 20 * kMillisecond;  // route useless after this
  RobotFleetStats stats;
  std::vector<Robot> robots;
  robots.reserve(fleet_size);
  for (std::size_t i = 0; i < fleet_size; ++i) {
    robots.emplace_back(cluster, i, stats, route_deadline);
  }

  auto run_phase = [&](const char* name, Duration duration) {
    stats = RobotFleetStats{};
    cluster.simulator().run_for(duration);
    report(name, stats);
  };

  // Phase 1: normal operation, 40 robots active.
  for (std::size_t i = 0; i < 40; ++i) robots[i].start();
  run_phase("normal operation (40 bots)", 5 * kSecond);

  // Phase 2: rush hour — the whole fleet comes online at once.
  for (std::size_t i = 40; i < fleet_size; ++i) robots[i].start();
  run_phase("rush hour (800 bots)", 5 * kSecond);

  // Phase 3: what matters is how FAST robots learned to fall back. A
  // rejected robot keeps moving; a robot waiting on a timed-out planner
  // would stall. p99 decision latency stays in the milliseconds.
  run_phase("sustained peak (800 bots)", 5 * kSecond);

  std::printf("\nWith IDEM, overloaded robots get an answer ('rejected') within ~2 ms and\n"
              "switch to Lidar navigation immediately. With a traditional protocol they\n"
              "would wait on a growing queue (or a timeout) before every single decision.\n");
  return 0;
}
