// Multi-process IDEM deployment: run each replica (and the client) as its
// own OS process, communicating over real TCP.
//
// Terminal 1:  ./realtime_node replica 0 9100 9101 9102
// Terminal 2:  ./realtime_node replica 1 9100 9101 9102
// Terminal 3:  ./realtime_node replica 2 9100 9101 9102
// Terminal 4:  ./realtime_node client 9100 9101 9102
//
// The replica index selects which port this process binds; the full port
// list tells it where its peers live. The client issues a small stream of
// KV operations and prints every outcome.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "app/kv_store.hpp"
#include "idem/acceptance.hpp"
#include "idem/client.hpp"
#include "idem/replica.hpp"
#include "rpc/event_loop.hpp"
#include "rpc/tcp_transport.hpp"

using namespace idem;

namespace {

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

core::IdemConfig protocol_config(std::size_t n) {
  core::IdemConfig config;
  config.n = n;
  config.f = (n - 1) / 2;
  config.reject_threshold = 50;
  config.viewchange_timeout = 2 * kSecond;
  config.require_batch_max = 1;  // inline flush: real time is the cost model
  config.costs = consensus::CostModel{0, 0, 0, 0, 0, 0, 1};
  return config;
}

int run_replica(std::uint32_t index, const std::vector<std::uint16_t>& ports) {
  const std::size_t n = ports.size();
  rpc::EventLoop loop(1000 + index);
  rpc::TcpTransportConfig tcfg;
  tcfg.fixed_port = ports[index];
  rpc::TcpTransport transport(loop, tcfg);

  core::IdemConfig config = protocol_config(n);
  core::IdemReplica replica(loop, transport, ReplicaId{index}, config,
                            std::make_unique<app::KvStore>(app::KvStore::Costs{0, 0, 0}),
                            core::make_default_acceptance(config, 16));
  for (std::uint32_t i = 0; i < n; ++i) {
    if (i == index) continue;
    transport.set_remote(consensus::replica_address(ReplicaId{i}), ports[i]);
  }
  std::printf("replica %u up on 127.0.0.1:%u (leader of view 0: replica 0)\n", index,
              transport.port_of(replica.id()));
  std::fflush(stdout);

  while (!g_stop) {
    loop.run_for(500 * kMillisecond);
    std::printf("replica %u: view=%llu leader=%s executed=%llu rejected=%llu\r", index,
                static_cast<unsigned long long>(replica.view().value),
                replica.is_leader() ? "yes" : "no ",
                static_cast<unsigned long long>(replica.stats().executed),
                static_cast<unsigned long long>(replica.stats().rejected));
    std::fflush(stdout);
  }
  std::printf("\nreplica %u shutting down\n", index);
  return 0;
}

int run_client(const std::vector<std::uint16_t>& ports) {
  const std::size_t n = ports.size();
  rpc::EventLoop loop(777);
  rpc::TcpTransport transport(loop);

  for (std::uint32_t i = 0; i < n; ++i) {
    transport.set_remote(consensus::replica_address(ReplicaId{i}), ports[i]);
  }

  core::IdemClientConfig client_config;
  client_config.n = n;
  client_config.f = (n - 1) / 2;
  client_config.retry_interval = 500 * kMillisecond;
  core::IdemClient client(loop, transport, ClientId{1}, client_config);

  std::uint64_t issued = 0;
  std::function<void()> next = [&] {
    if (g_stop) {
      loop.stop();
      return;
    }
    app::KvCommand cmd;
    cmd.op = (issued % 2 == 0) ? app::KvOp::Put : app::KvOp::Get;
    cmd.key = "item" + std::to_string(issued % 8);
    if (cmd.op == app::KvOp::Put) cmd.value = "v" + std::to_string(issued);
    ++issued;
    client.invoke(cmd.encode(), [&](const consensus::Outcome& outcome) {
      const char* what = outcome.kind == consensus::Outcome::Kind::Reply      ? "reply"
                         : outcome.kind == consensus::Outcome::Kind::Rejected ? "REJECT"
                                                                              : "timeout";
      std::printf("op %llu -> %s in %.2f ms\n", static_cast<unsigned long long>(issued),
                  what, to_ms(outcome.latency()));
      loop.schedule_after(250 * kMillisecond, next);
    });
  };
  next();
  loop.run();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  auto usage = [&] {
    std::fprintf(stderr,
                 "usage:\n"
                 "  %s replica <index> <port0> <port1> ... <portN-1>\n"
                 "  %s client <port0> <port1> ... <portN-1>\n",
                 argv[0], argv[0]);
    return 2;
  };
  if (argc < 3) return usage();

  if (std::strcmp(argv[1], "replica") == 0) {
    if (argc < 5) return usage();
    std::uint32_t index = static_cast<std::uint32_t>(std::strtoul(argv[2], nullptr, 10));
    std::vector<std::uint16_t> ports;
    for (int i = 3; i < argc; ++i) {
      ports.push_back(static_cast<std::uint16_t>(std::strtoul(argv[i], nullptr, 10)));
    }
    if (index >= ports.size()) return usage();
    return run_replica(index, ports);
  }
  if (std::strcmp(argv[1], "client") == 0) {
    std::vector<std::uint16_t> ports;
    for (int i = 2; i < argc; ++i) {
      ports.push_back(static_cast<std::uint16_t>(std::strtoul(argv[i], nullptr, 10)));
    }
    if (ports.size() < 3) return usage();
    return run_client(ports);
  }
  return usage();
}
