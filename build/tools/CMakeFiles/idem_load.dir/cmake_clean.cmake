file(REMOVE_RECURSE
  "CMakeFiles/idem_load.dir/idem_load.cpp.o"
  "CMakeFiles/idem_load.dir/idem_load.cpp.o.d"
  "idem_load"
  "idem_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idem_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
