# Empty dependencies file for idem_load.
# This may be replaced when dependencies are built.
