# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/app_test[1]_include.cmake")
include("/root/repo/build/tests/messages_test[1]_include.cmake")
include("/root/repo/build/tests/acceptance_test[1]_include.cmake")
include("/root/repo/build/tests/idem_integration_test[1]_include.cmake")
include("/root/repo/build/tests/paxos_test[1]_include.cmake")
include("/root/repo/build/tests/smart_test[1]_include.cmake")
include("/root/repo/build/tests/properties_test[1]_include.cmake")
include("/root/repo/build/tests/client_test[1]_include.cmake")
include("/root/repo/build/tests/rpc_test[1]_include.cmake")
include("/root/repo/build/tests/idem_replica_unit_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/counter_test[1]_include.cmake")
include("/root/repo/build/tests/smart_pr_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/partition_test[1]_include.cmake")
