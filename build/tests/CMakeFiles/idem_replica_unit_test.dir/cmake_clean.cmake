file(REMOVE_RECURSE
  "CMakeFiles/idem_replica_unit_test.dir/idem_replica_unit_test.cpp.o"
  "CMakeFiles/idem_replica_unit_test.dir/idem_replica_unit_test.cpp.o.d"
  "idem_replica_unit_test"
  "idem_replica_unit_test.pdb"
  "idem_replica_unit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idem_replica_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
