# Empty compiler generated dependencies file for idem_replica_unit_test.
# This may be replaced when dependencies are built.
