# Empty dependencies file for smart_pr_test.
# This may be replaced when dependencies are built.
