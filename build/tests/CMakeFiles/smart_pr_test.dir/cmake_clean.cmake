file(REMOVE_RECURSE
  "CMakeFiles/smart_pr_test.dir/smart_pr_test.cpp.o"
  "CMakeFiles/smart_pr_test.dir/smart_pr_test.cpp.o.d"
  "smart_pr_test"
  "smart_pr_test.pdb"
  "smart_pr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smart_pr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
