
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/counter_test.cpp" "tests/CMakeFiles/counter_test.dir/counter_test.cpp.o" "gcc" "tests/CMakeFiles/counter_test.dir/counter_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/idem_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/idem_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/paxos/CMakeFiles/idem_paxos.dir/DependInfo.cmake"
  "/root/repo/build/src/smart/CMakeFiles/idem_smart.dir/DependInfo.cmake"
  "/root/repo/build/src/idem/CMakeFiles/idem_core.dir/DependInfo.cmake"
  "/root/repo/build/src/app/CMakeFiles/idem_app.dir/DependInfo.cmake"
  "/root/repo/build/src/consensus/CMakeFiles/idem_consensus.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/idem_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/idem_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
