file(REMOVE_RECURSE
  "CMakeFiles/idem_integration_test.dir/idem_integration_test.cpp.o"
  "CMakeFiles/idem_integration_test.dir/idem_integration_test.cpp.o.d"
  "idem_integration_test"
  "idem_integration_test.pdb"
  "idem_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idem_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
