# Empty compiler generated dependencies file for idem_integration_test.
# This may be replaced when dependencies are built.
