file(REMOVE_RECURSE
  "CMakeFiles/robot_warehouse.dir/robot_warehouse.cpp.o"
  "CMakeFiles/robot_warehouse.dir/robot_warehouse.cpp.o.d"
  "robot_warehouse"
  "robot_warehouse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robot_warehouse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
