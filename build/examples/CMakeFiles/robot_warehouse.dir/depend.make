# Empty dependencies file for robot_warehouse.
# This may be replaced when dependencies are built.
