# Empty dependencies file for realtime_node.
# This may be replaced when dependencies are built.
