file(REMOVE_RECURSE
  "CMakeFiles/realtime_node.dir/realtime_node.cpp.o"
  "CMakeFiles/realtime_node.dir/realtime_node.cpp.o.d"
  "realtime_node"
  "realtime_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/realtime_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
