
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/realtime_node.cpp" "examples/CMakeFiles/realtime_node.dir/realtime_node.cpp.o" "gcc" "examples/CMakeFiles/realtime_node.dir/realtime_node.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/idem/CMakeFiles/idem_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/idem_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/app/CMakeFiles/idem_app.dir/DependInfo.cmake"
  "/root/repo/build/src/consensus/CMakeFiles/idem_consensus.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/idem_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/idem_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
