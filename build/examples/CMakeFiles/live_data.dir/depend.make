# Empty dependencies file for live_data.
# This may be replaced when dependencies are built.
