file(REMOVE_RECURSE
  "CMakeFiles/live_data.dir/live_data.cpp.o"
  "CMakeFiles/live_data.dir/live_data.cpp.o.d"
  "live_data"
  "live_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
