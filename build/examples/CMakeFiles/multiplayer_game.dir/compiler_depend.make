# Empty compiler generated dependencies file for multiplayer_game.
# This may be replaced when dependencies are built.
