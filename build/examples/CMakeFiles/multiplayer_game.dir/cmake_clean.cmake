file(REMOVE_RECURSE
  "CMakeFiles/multiplayer_game.dir/multiplayer_game.cpp.o"
  "CMakeFiles/multiplayer_game.dir/multiplayer_game.cpp.o.d"
  "multiplayer_game"
  "multiplayer_game.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiplayer_game.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
