# Empty dependencies file for idem_rpc.
# This may be replaced when dependencies are built.
