file(REMOVE_RECURSE
  "CMakeFiles/idem_rpc.dir/event_loop.cpp.o"
  "CMakeFiles/idem_rpc.dir/event_loop.cpp.o.d"
  "CMakeFiles/idem_rpc.dir/tcp_transport.cpp.o"
  "CMakeFiles/idem_rpc.dir/tcp_transport.cpp.o.d"
  "libidem_rpc.a"
  "libidem_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idem_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
