file(REMOVE_RECURSE
  "libidem_rpc.a"
)
