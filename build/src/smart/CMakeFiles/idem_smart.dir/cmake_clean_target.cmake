file(REMOVE_RECURSE
  "libidem_smart.a"
)
