file(REMOVE_RECURSE
  "CMakeFiles/idem_smart.dir/client.cpp.o"
  "CMakeFiles/idem_smart.dir/client.cpp.o.d"
  "CMakeFiles/idem_smart.dir/replica.cpp.o"
  "CMakeFiles/idem_smart.dir/replica.cpp.o.d"
  "CMakeFiles/idem_smart.dir/replica_pr.cpp.o"
  "CMakeFiles/idem_smart.dir/replica_pr.cpp.o.d"
  "libidem_smart.a"
  "libidem_smart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idem_smart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
