# Empty dependencies file for idem_smart.
# This may be replaced when dependencies are built.
