
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/smart/client.cpp" "src/smart/CMakeFiles/idem_smart.dir/client.cpp.o" "gcc" "src/smart/CMakeFiles/idem_smart.dir/client.cpp.o.d"
  "/root/repo/src/smart/replica.cpp" "src/smart/CMakeFiles/idem_smart.dir/replica.cpp.o" "gcc" "src/smart/CMakeFiles/idem_smart.dir/replica.cpp.o.d"
  "/root/repo/src/smart/replica_pr.cpp" "src/smart/CMakeFiles/idem_smart.dir/replica_pr.cpp.o" "gcc" "src/smart/CMakeFiles/idem_smart.dir/replica_pr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/consensus/CMakeFiles/idem_consensus.dir/DependInfo.cmake"
  "/root/repo/build/src/app/CMakeFiles/idem_app.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/idem_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/idem_common.dir/DependInfo.cmake"
  "/root/repo/build/src/idem/CMakeFiles/idem_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
