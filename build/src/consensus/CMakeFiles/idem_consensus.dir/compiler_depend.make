# Empty compiler generated dependencies file for idem_consensus.
# This may be replaced when dependencies are built.
