file(REMOVE_RECURSE
  "libidem_consensus.a"
)
