file(REMOVE_RECURSE
  "CMakeFiles/idem_consensus.dir/messages.cpp.o"
  "CMakeFiles/idem_consensus.dir/messages.cpp.o.d"
  "libidem_consensus.a"
  "libidem_consensus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idem_consensus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
