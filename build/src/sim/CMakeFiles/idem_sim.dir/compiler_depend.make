# Empty compiler generated dependencies file for idem_sim.
# This may be replaced when dependencies are built.
