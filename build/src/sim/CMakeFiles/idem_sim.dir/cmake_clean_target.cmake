file(REMOVE_RECURSE
  "libidem_sim.a"
)
