file(REMOVE_RECURSE
  "CMakeFiles/idem_sim.dir/network.cpp.o"
  "CMakeFiles/idem_sim.dir/network.cpp.o.d"
  "CMakeFiles/idem_sim.dir/node.cpp.o"
  "CMakeFiles/idem_sim.dir/node.cpp.o.d"
  "libidem_sim.a"
  "libidem_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idem_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
