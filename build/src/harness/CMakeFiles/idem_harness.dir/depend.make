# Empty dependencies file for idem_harness.
# This may be replaced when dependencies are built.
