file(REMOVE_RECURSE
  "libidem_harness.a"
)
