file(REMOVE_RECURSE
  "CMakeFiles/idem_harness.dir/cluster.cpp.o"
  "CMakeFiles/idem_harness.dir/cluster.cpp.o.d"
  "CMakeFiles/idem_harness.dir/driver.cpp.o"
  "CMakeFiles/idem_harness.dir/driver.cpp.o.d"
  "CMakeFiles/idem_harness.dir/table.cpp.o"
  "CMakeFiles/idem_harness.dir/table.cpp.o.d"
  "libidem_harness.a"
  "libidem_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idem_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
