file(REMOVE_RECURSE
  "libidem_core.a"
)
