file(REMOVE_RECURSE
  "CMakeFiles/idem_core.dir/acceptance.cpp.o"
  "CMakeFiles/idem_core.dir/acceptance.cpp.o.d"
  "CMakeFiles/idem_core.dir/client.cpp.o"
  "CMakeFiles/idem_core.dir/client.cpp.o.d"
  "CMakeFiles/idem_core.dir/replica.cpp.o"
  "CMakeFiles/idem_core.dir/replica.cpp.o.d"
  "libidem_core.a"
  "libidem_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idem_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
