# Empty compiler generated dependencies file for idem_core.
# This may be replaced when dependencies are built.
