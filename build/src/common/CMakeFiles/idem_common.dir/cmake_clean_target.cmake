file(REMOVE_RECURSE
  "libidem_common.a"
)
