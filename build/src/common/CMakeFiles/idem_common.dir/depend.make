# Empty dependencies file for idem_common.
# This may be replaced when dependencies are built.
