file(REMOVE_RECURSE
  "CMakeFiles/idem_common.dir/histogram.cpp.o"
  "CMakeFiles/idem_common.dir/histogram.cpp.o.d"
  "CMakeFiles/idem_common.dir/logging.cpp.o"
  "CMakeFiles/idem_common.dir/logging.cpp.o.d"
  "CMakeFiles/idem_common.dir/timeseries.cpp.o"
  "CMakeFiles/idem_common.dir/timeseries.cpp.o.d"
  "libidem_common.a"
  "libidem_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idem_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
