file(REMOVE_RECURSE
  "CMakeFiles/idem_app.dir/kv_store.cpp.o"
  "CMakeFiles/idem_app.dir/kv_store.cpp.o.d"
  "CMakeFiles/idem_app.dir/ycsb.cpp.o"
  "CMakeFiles/idem_app.dir/ycsb.cpp.o.d"
  "libidem_app.a"
  "libidem_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idem_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
