file(REMOVE_RECURSE
  "libidem_app.a"
)
