# Empty compiler generated dependencies file for idem_app.
# This may be replaced when dependencies are built.
