file(REMOVE_RECURSE
  "libidem_paxos.a"
)
