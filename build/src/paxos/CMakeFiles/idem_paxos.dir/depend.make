# Empty dependencies file for idem_paxos.
# This may be replaced when dependencies are built.
