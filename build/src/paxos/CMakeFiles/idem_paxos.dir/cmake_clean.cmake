file(REMOVE_RECURSE
  "CMakeFiles/idem_paxos.dir/client.cpp.o"
  "CMakeFiles/idem_paxos.dir/client.cpp.o.d"
  "CMakeFiles/idem_paxos.dir/replica.cpp.o"
  "CMakeFiles/idem_paxos.dir/replica.cpp.o.d"
  "libidem_paxos.a"
  "libidem_paxos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idem_paxos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
