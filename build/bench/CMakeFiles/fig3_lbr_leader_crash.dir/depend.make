# Empty dependencies file for fig3_lbr_leader_crash.
# This may be replaced when dependencies are built.
