file(REMOVE_RECURSE
  "CMakeFiles/fig3_lbr_leader_crash.dir/fig3_lbr_leader_crash.cpp.o"
  "CMakeFiles/fig3_lbr_leader_crash.dir/fig3_lbr_leader_crash.cpp.o.d"
  "fig3_lbr_leader_crash"
  "fig3_lbr_leader_crash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_lbr_leader_crash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
