file(REMOVE_RECURSE
  "CMakeFiles/fig8_reject_threshold.dir/fig8_reject_threshold.cpp.o"
  "CMakeFiles/fig8_reject_threshold.dir/fig8_reject_threshold.cpp.o.d"
  "fig8_reject_threshold"
  "fig8_reject_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_reject_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
