# Empty dependencies file for fig8_reject_threshold.
# This may be replaced when dependencies are built.
