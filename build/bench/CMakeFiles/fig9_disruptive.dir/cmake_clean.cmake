file(REMOVE_RECURSE
  "CMakeFiles/fig9_disruptive.dir/fig9_disruptive.cpp.o"
  "CMakeFiles/fig9_disruptive.dir/fig9_disruptive.cpp.o.d"
  "fig9_disruptive"
  "fig9_disruptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_disruptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
