# Empty dependencies file for fig9_disruptive.
# This may be replaced when dependencies are built.
