# Empty dependencies file for extension_smart_pr.
# This may be replaced when dependencies are built.
