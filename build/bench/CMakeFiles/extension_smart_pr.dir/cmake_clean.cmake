file(REMOVE_RECURSE
  "CMakeFiles/extension_smart_pr.dir/extension_smart_pr.cpp.o"
  "CMakeFiles/extension_smart_pr.dir/extension_smart_pr.cpp.o.d"
  "extension_smart_pr"
  "extension_smart_pr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_smart_pr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
