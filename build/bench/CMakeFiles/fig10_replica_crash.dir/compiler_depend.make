# Empty compiler generated dependencies file for fig10_replica_crash.
# This may be replaced when dependencies are built.
