file(REMOVE_RECURSE
  "CMakeFiles/fig10_replica_crash.dir/fig10_replica_crash.cpp.o"
  "CMakeFiles/fig10_replica_crash.dir/fig10_replica_crash.cpp.o.d"
  "fig10_replica_crash"
  "fig10_replica_crash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_replica_crash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
