# Empty dependencies file for fig6_increasing_load.
# This may be replaced when dependencies are built.
