file(REMOVE_RECURSE
  "CMakeFiles/fig7_reject_behavior.dir/fig7_reject_behavior.cpp.o"
  "CMakeFiles/fig7_reject_behavior.dir/fig7_reject_behavior.cpp.o.d"
  "fig7_reject_behavior"
  "fig7_reject_behavior.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_reject_behavior.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
