# Empty dependencies file for table1_rejection_overhead.
# This may be replaced when dependencies are built.
