# Empty compiler generated dependencies file for extension_replica_count.
# This may be replaced when dependencies are built.
