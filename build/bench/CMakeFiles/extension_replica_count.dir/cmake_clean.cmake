file(REMOVE_RECURSE
  "CMakeFiles/extension_replica_count.dir/extension_replica_count.cpp.o"
  "CMakeFiles/extension_replica_count.dir/extension_replica_count.cpp.o.d"
  "extension_replica_count"
  "extension_replica_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_replica_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
