file(REMOVE_RECURSE
  "CMakeFiles/extension_cost_aware.dir/extension_cost_aware.cpp.o"
  "CMakeFiles/extension_cost_aware.dir/extension_cost_aware.cpp.o.d"
  "extension_cost_aware"
  "extension_cost_aware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_cost_aware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
