# Empty compiler generated dependencies file for extension_cost_aware.
# This may be replaced when dependencies are built.
