// Simulation-kernel microbenchmark: tracks the wall-clock throughput of the
// discrete-event core from PR to PR.
//
// Three sections:
//   1. queue: raw EventQueue push -> pop -> fire dispatch rate
//   2. timers: EventQueue push + cancel rate (the Node timer pattern:
//      protocols arm a timeout per request and cancel it on the reply)
//   3. fig6: end-to-end wall-clock of a fixed fig6-style 4x-overload run
//      (IDEM, 200 closed-loop clients vs. a 1x baseline of 50)
//
// Emits machine-readable JSON (default ./BENCH_simcore.json, override with
// IDEM_SIMCORE_JSON) so results can be compared across commits; see
// EXPERIMENTS.md. IDEM_SIMCORE_SMOKE=1 shrinks everything for CI smoke runs.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "sim/event_queue.hpp"

using namespace idem;

namespace {

using Clock = std::chrono::steady_clock;

double elapsed_seconds(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

bool smoke() { return std::getenv("IDEM_SIMCORE_SMOKE") != nullptr; }

/// IDEM_SIMCORE_SECTIONS: comma-separated subset of queue,timers,fig6
/// (default: all). Handy for profiling one section in isolation.
bool section_enabled(const char* name) {
  const char* sections = std::getenv("IDEM_SIMCORE_SECTIONS");
  if (sections == nullptr || *sections == '\0') return true;
  return std::string(sections).find(name) != std::string::npos;
}

/// Best-of-`reps` measurement (min wall time) to damp scheduler noise.
template <typename F>
double best_rate(int reps, std::uint64_t ops, F&& body) {
  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    auto start = Clock::now();
    body();
    double rate = static_cast<double>(ops) / elapsed_seconds(start);
    if (rate > best) best = rate;
  }
  return best;
}

/// Section 1: push/pop/fire dispatch rate with node-sized callbacks.
double bench_queue_dispatch(std::uint64_t total) {
  const std::uint64_t batch = 1024;
  return best_rate(3, total, [&] {
    sim::EventQueue q;
    Rng rng(42, 7);
    std::uint64_t fired = 0;
    Time now = 0;
    std::uint64_t remaining = total;
    while (remaining > 0) {
      std::uint64_t n = remaining < batch ? remaining : batch;
      for (std::uint64_t i = 0; i < n; ++i) {
        // Delay pattern similar to the simulator's mix: mostly short
        // network/CPU delays, occasionally a long protocol timeout.
        Duration delay = static_cast<Duration>(rng.uniform_int(1, 400 * kMicrosecond));
        if ((i & 63) == 0) delay += 50 * kMillisecond;
        q.push(now + delay, [&fired] { ++fired; });
      }
      for (std::uint64_t i = 0; i < n; ++i) {
        auto ev = q.pop();
        now = ev.at;
        ev.fn();
      }
      remaining -= n;
    }
    if (fired != total) std::abort();  // defeat over-optimization
  });
}

/// Section 2: timer arm/cancel rate (one "op" = one push + one cancel).
double bench_timer_set_cancel(std::uint64_t total) {
  const std::uint64_t batch = 1024;
  return best_rate(3, total, [&] {
    sim::EventQueue q;
    Rng rng(43, 11);
    std::vector<sim::EventId> ids(batch);
    std::uint64_t cancelled = 0;
    std::uint64_t remaining = total;
    Time now = 0;
    while (remaining > 0) {
      std::uint64_t n = remaining < batch ? remaining : batch;
      for (std::uint64_t i = 0; i < n; ++i) {
        Duration delay = static_cast<Duration>(rng.uniform_int(kMillisecond, 100 * kMillisecond));
        ids[i] = q.push(now + delay, [] {});
      }
      // Cancel in a shuffled-ish order (reverse) so the heap does real work.
      for (std::uint64_t i = n; i-- > 0;) {
        if (q.cancel(ids[i])) ++cancelled;
      }
      now += kMillisecond;
      remaining -= n;
    }
    if (cancelled != total) std::abort();
  });
}

struct Fig6Result {
  double wall_s = 0;
  double events = 0;
  double events_per_sec = 0;
  double reply_kops = 0;
};

/// One fig6-style 4x-overload run (IDEM, 200 clients). With `traced` it
/// records the full request-lifecycle trace; the wall-clock delta against
/// the untraced run is the tracer's overhead (the simulated trajectory
/// itself must be identical — see obs_test).
Fig6Result run_fig6_once(Duration warmup, Duration measure, bool traced) {
  harness::ClusterConfig config;
  config.protocol = harness::Protocol::Idem;
  config.clients = 200;  // 4x the fig6 1x-baseline of 50 clients
  config.reject_threshold = 50;
  config.seed = 1;
  config.obs.trace = traced;

  harness::DriverConfig driver;
  driver.warmup = warmup;
  driver.measure = measure;

  Fig6Result out;
  auto start = Clock::now();
  harness::Cluster cluster(config);
  harness::ClosedLoopDriver loop(cluster, driver);
  harness::RunMetrics metrics = loop.run();
  out.wall_s = elapsed_seconds(start);
  out.events = static_cast<double>(cluster.simulator().events_executed());
  out.events_per_sec = out.events / out.wall_s;
  out.reply_kops = metrics.reply_throughput() / 1000.0;
  return out;
}

/// Section 3: best-of-`reps` untraced and traced fig6 runs, interleaved
/// (untraced, traced, untraced, ...) so background-load bursts hit both
/// variants alike — a single run's wall clock is far noisier than the
/// tracer cost being measured.
void bench_fig6_overload(Duration warmup, Duration measure, int reps, Fig6Result& untraced,
                         Fig6Result& traced) {
  for (int rep = 0; rep < reps; ++rep) {
    Fig6Result plain = run_fig6_once(warmup, measure, false);
    if (rep == 0 || plain.wall_s < untraced.wall_s) untraced = plain;
    Fig6Result rec = run_fig6_once(warmup, measure, true);
    if (rep == 0 || rec.wall_s < traced.wall_s) traced = rec;
  }
}

}  // namespace

int main() {
  const bool quick = smoke();
  const std::uint64_t queue_ops = quick ? 200'000 : 4'000'000;
  const std::uint64_t timer_ops = quick ? 200'000 : 2'000'000;
  const Duration warmup = quick ? 100 * kMillisecond : 500 * kMillisecond;
  const Duration measure = quick ? 200 * kMillisecond : 2 * kSecond;

  std::printf("=== sim-core microbenchmark (%s) ===\n", quick ? "smoke" : "full");

  double dispatch = 0;
  if (section_enabled("queue")) {
    dispatch = bench_queue_dispatch(queue_ops);
    std::printf("queue dispatch      : %10.2f M events/s  (%llu events)\n", dispatch / 1e6,
                static_cast<unsigned long long>(queue_ops));
  }

  double timers = 0;
  if (section_enabled("timers")) {
    timers = bench_timer_set_cancel(timer_ops);
    std::printf("timer set+cancel    : %10.2f M pairs/s   (%llu pairs)\n", timers / 1e6,
                static_cast<unsigned long long>(timer_ops));
  }

  Fig6Result fig6;
  Fig6Result fig6_traced;
  double trace_overhead_pct = 0;
  if (section_enabled("fig6")) {
    bench_fig6_overload(warmup, measure, /*reps=*/quick ? 3 : 5, fig6, fig6_traced);
    std::printf("fig6 4x overload    : %10.2f M events/s  (%.0f events, %.3f s wall, %.1f kreq/s)\n",
                fig6.events_per_sec / 1e6, fig6.events, fig6.wall_s, fig6.reply_kops);
    trace_overhead_pct = (fig6_traced.wall_s - fig6.wall_s) / fig6.wall_s * 100.0;
    std::printf("fig6 traced         : %10.2f M events/s  (%.3f s wall, %+.1f%% overhead)\n",
                fig6_traced.events_per_sec / 1e6, fig6_traced.wall_s, trace_overhead_pct);
    if (fig6_traced.events != fig6.events) {
      std::fprintf(stderr, "WARNING: traced run diverged (%.0f vs %.0f sim events)\n",
                   fig6_traced.events, fig6.events);
      return 1;
    }
  }

  const char* path = std::getenv("IDEM_SIMCORE_JSON");
  if (path == nullptr || *path == '\0') path = "BENCH_simcore.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"micro_simcore\",\n"
               "  \"mode\": \"%s\",\n"
               "  \"queue_dispatch_events_per_sec\": %.0f,\n"
               "  \"timer_set_cancel_pairs_per_sec\": %.0f,\n"
               "  \"fig6_overload\": {\n"
               "    \"clients\": 200,\n"
               "    \"sim_events\": %.0f,\n"
               "    \"wall_seconds\": %.4f,\n"
               "    \"events_per_sec\": %.0f,\n"
               "    \"reply_kops\": %.2f\n"
               "  },\n"
               "  \"fig6_traced\": {\n"
               "    \"wall_seconds\": %.4f,\n"
               "    \"events_per_sec\": %.0f,\n"
               "    \"trace_overhead_pct\": %.1f\n"
               "  }\n"
               "}\n",
               quick ? "smoke" : "full", dispatch, timers, fig6.events, fig6.wall_s,
               fig6.events_per_sec, fig6.reply_kops, fig6_traced.wall_s,
               fig6_traced.events_per_sec, trace_overhead_pct);
  std::fclose(f);
  std::printf("wrote %s\n", path);
  return 0;
}
