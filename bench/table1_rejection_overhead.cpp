// Table 1: overhead of IDEM's rejection mechanism.
//
// Paper method: issue a fixed number of requests (1,000,000) under three
// load levels (0.5x, 1x, 4x of the 50-client baseline) and compare the
// total network traffic of IDEM vs IDEM_noPR. A request only counts when
// it completes successfully; rejected operations are retried. Paper
// result: the difference is within measurement noise (~2-3%) — the
// rejected-request cache and lazy forwarding keep the mechanism's
// traffic negligible.
//
// The request count is configurable (IDEM_TABLE1_REQUESTS, default
// 200,000) because a simulated million-request run is slow; traffic per
// request is load-dependent but count-independent, so the comparison is
// unaffected.
#include <cstdio>
#include <cstdlib>

#include "bench_util.hpp"

using namespace idem;

namespace {

std::uint64_t completed_requests() {
  const char* env = std::getenv("IDEM_TABLE1_REQUESTS");
  if (env != nullptr && *env != '\0') return std::strtoull(env, nullptr, 10);
  return 200'000;
}

double run_traffic_gb(harness::Protocol protocol, std::size_t clients, std::uint64_t requests,
                      double* reject_share) {
  harness::ClusterConfig base;
  base.protocol = protocol;
  base.reject_threshold = 50;
  base.clients = clients;
  harness::Cluster cluster(base);
  harness::DriverConfig driver;
  driver.stop_after_replies = requests;
  harness::ClosedLoopDriver loop(cluster, driver);
  harness::RunMetrics metrics = loop.run();
  if (reject_share != nullptr) {
    *reject_share = 100.0 * static_cast<double>(metrics.rejects) /
                    static_cast<double>(metrics.replies + metrics.rejects);
  }
  return static_cast<double>(metrics.total_bytes()) / 1e9;
}

}  // namespace

int main() {
  const std::uint64_t requests = completed_requests();
  std::printf("=== Table 1: rejection-mechanism overhead (network traffic for %llu"
              " completed requests) ===\n\n",
              static_cast<unsigned long long>(requests));

  struct LoadLevel {
    const char* name;
    std::size_t clients;
  };
  const LoadLevel levels[] = {{"Medium Load (0.5x)", 25}, {"High Load (1x)", 50},
                              {"Overload (4x)", 200}};

  harness::Table table({"system", "Medium Load", "High Load", "Overload"});
  double idem_gb[3], nopr_gb[3], reject_share[3];

  {
    std::vector<std::string> row = {"IDEM_noPR"};
    for (int i = 0; i < 3; ++i) {
      nopr_gb[i] = run_traffic_gb(harness::Protocol::IdemNoPR, levels[i].clients, requests,
                                  nullptr);
      row.push_back(harness::Table::fmt(nopr_gb[i], 3) + " GB");
    }
    table.add_row(std::move(row));
  }
  {
    std::vector<std::string> row = {"IDEM"};
    for (int i = 0; i < 3; ++i) {
      idem_gb[i] = run_traffic_gb(harness::Protocol::Idem, levels[i].clients, requests,
                                  &reject_share[i]);
      row.push_back(harness::Table::fmt(idem_gb[i], 3) + " GB");
    }
    table.add_row(std::move(row));
  }
  bench::print_table(table);

  std::printf("relative traffic difference (IDEM vs IDEM_noPR):\n");
  bool all_small = true;
  for (int i = 0; i < 3; ++i) {
    double diff = 100.0 * (idem_gb[i] - nopr_gb[i]) / nopr_gb[i];
    std::printf("  %-20s %+5.2f%%  (reject share of operations: %.1f%%)\n", levels[i].name,
                diff, reject_share[i]);
    if (diff > 5.0) all_small = false;
  }
  std::printf("shape check: overhead within noise (paper: ~2-3%% variation) -> %s\n",
              all_small ? "OK" : "MISS");
  return 0;
}
