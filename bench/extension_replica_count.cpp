// Extension experiment (beyond the paper): group-size scalability.
//
// The paper evaluates n = 3 (f = 1). This bench sweeps n ∈ {3, 5, 7}
// under normal load and overload: execution on every replica plus the
// client multicast fan-out make throughput drop with n, while the reject
// plateau — the property that matters — holds at every size. Crash
// tolerance scales with f (the n=7 cluster tolerates three crashes).
#include <cstdio>

#include "bench_util.hpp"

using namespace idem;

int main() {
  std::printf("=== Extension: IDEM at larger group sizes ===\n\n");

  harness::DriverConfig driver;
  driver.warmup = bench::warmup_duration();
  driver.measure = bench::measure_duration();

  harness::Table table({"n", "f", "clients", "throughput[kreq/s]", "latency[ms]",
                        "reject[kreq/s]"});
  struct Point {
    double kops;
    double ms;
  };
  Point plateau[3];
  int row = 0;
  for (std::size_t n : {3u, 5u, 7u}) {
    harness::ClusterConfig base;
    base.protocol = harness::Protocol::Idem;
    base.n = n;
    base.f = (n - 1) / 2;
    base.reject_threshold = 50;
    for (std::size_t clients : {25u, 50u, 200u}) {
      bench::LoadPoint point = bench::run_load_point(base, clients, driver);
      if (clients == 200) plateau[row] = {point.reply_kops, point.reply_ms};
      table.add_row({harness::Table::fmt(std::uint64_t(n)),
                     harness::Table::fmt(std::uint64_t(base.f)),
                     harness::Table::fmt(std::uint64_t(clients)),
                     harness::Table::fmt(point.reply_kops),
                     harness::Table::fmt(point.reply_ms, 3),
                     harness::Table::fmt(point.reject_kops, 2)});
    }
    ++row;
  }
  bench::print_table(table);

  std::printf("shape checks:\n");
  std::printf(" - throughput decreases with n (%.1f > %.1f > %.1f kreq/s) -> %s\n",
              plateau[0].kops, plateau[1].kops, plateau[2].kops,
              plateau[0].kops > plateau[1].kops && plateau[1].kops > plateau[2].kops
                  ? "OK"
                  : "MISS");
  bool plateaus = true;
  for (int i = 0; i < 3; ++i) {
    if (plateau[i].ms > 4.0) plateaus = false;
  }
  std::printf(" - the overload plateau holds at every n (all <= 4 ms at 4x) -> %s\n",
              plateaus ? "OK" : "MISS");
  return 0;
}
