// Google-benchmark micro-benchmarks for the building blocks: codec,
// histogram, acceptance test, KV store, zipfian generator, event queue,
// and the simulated network hot path.
#include <benchmark/benchmark.h>

#include "app/kv_store.hpp"
#include "app/ycsb.hpp"
#include "common/codec.hpp"
#include "common/histogram.hpp"
#include "common/rng.hpp"
#include "consensus/messages.hpp"
#include "idem/acceptance.hpp"
#include "sim/event_queue.hpp"
#include "sim/network.hpp"
#include "sim/node.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace idem;

void BM_CodecEncodeRequest(benchmark::State& state) {
  std::vector<std::byte> command(static_cast<std::size_t>(state.range(0)), std::byte{'x'});
  msg::Request request(RequestId{ClientId{42}, OpNum{7}}, command);
  for (auto _ : state) {
    benchmark::DoNotOptimize(request.encode());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CodecEncodeRequest)->Arg(100)->Arg(1000)->Arg(10000);

void BM_CodecDecodeRequest(benchmark::State& state) {
  std::vector<std::byte> command(static_cast<std::size_t>(state.range(0)), std::byte{'x'});
  msg::Request request(RequestId{ClientId{42}, OpNum{7}}, command);
  auto encoded = request.encode();
  for (auto _ : state) {
    benchmark::DoNotOptimize(msg::decode(encoded));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CodecDecodeRequest)->Arg(100)->Arg(1000)->Arg(10000);

void BM_HistogramRecord(benchmark::State& state) {
  Histogram histogram;
  Rng rng(1, 1);
  std::uint64_t i = 0;
  for (auto _ : state) {
    histogram.record(static_cast<Duration>(1000 + (i++ % 100000)));
  }
  benchmark::DoNotOptimize(histogram.count());
}
BENCHMARK(BM_HistogramRecord);

void BM_HistogramQuantile(benchmark::State& state) {
  Histogram histogram;
  Rng rng(1, 1);
  for (int i = 0; i < 100000; ++i) {
    histogram.record(static_cast<Duration>(rng.exponential(1e6)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(histogram.quantile(0.99));
  }
}
BENCHMARK(BM_HistogramQuantile);

void BM_AcceptanceTestAqm(benchmark::State& state) {
  core::AqmPrioritized::Params params;
  params.group_count = 4;
  core::AqmPrioritized test(params);
  core::AcceptanceContext ctx;
  ctx.reject_threshold = 50;
  ctx.active_requests = static_cast<std::size_t>(state.range(0));
  std::uint64_t onr = 0;
  std::span<const std::byte> no_command;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        test.accept(RequestId{ClientId{onr % 200}, OpNum{onr}}, no_command, ctx));
    ++onr;
  }
}
BENCHMARK(BM_AcceptanceTestAqm)->Arg(10)->Arg(40)->Arg(49);

void BM_KvStoreExecute(benchmark::State& state) {
  app::KvStore store;
  Rng rng(3, 3);
  app::YcsbConfig config;
  config.record_count = 10000;
  app::YcsbWorkload workload(config, rng);
  for (const auto& cmd : workload.load_phase()) store.put(cmd.key, cmd.value);
  std::vector<std::vector<std::byte>> ops;
  for (int i = 0; i < 1024; ++i) ops.push_back(workload.next_operation().encode());
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.execute(ops[i++ % ops.size()]));
  }
}
BENCHMARK(BM_KvStoreExecute);

void BM_KvStoreSnapshot(benchmark::State& state) {
  app::KvStore store;
  for (int i = 0; i < state.range(0); ++i) {
    store.put("key" + std::to_string(i), std::string(100, 'v'));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.snapshot());
  }
}
BENCHMARK(BM_KvStoreSnapshot)->Arg(1000)->Arg(10000);

void BM_ZipfianNext(benchmark::State& state) {
  Rng rng(4, 4);
  app::ZipfianGenerator zipf(1'000'000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.next(rng));
  }
}
BENCHMARK(BM_ZipfianNext);

void BM_EventQueuePushPop(benchmark::State& state) {
  sim::EventQueue queue;
  Rng rng(5, 5);
  Time now = 0;
  // Keep a steady-state queue of 10k events.
  for (int i = 0; i < 10000; ++i) {
    queue.push(now + rng.uniform_int(1, 1000000), [] {});
  }
  for (auto _ : state) {
    auto popped = queue.pop();
    now = popped.at;
    queue.push(now + rng.uniform_int(1, 1000000), [] {});
  }
}
BENCHMARK(BM_EventQueuePushPop);

class NullEndpoint final : public sim::Endpoint {
 public:
  void deliver(sim::NodeId, sim::PayloadPtr) override {}
};

void BM_NetworkSend(benchmark::State& state) {
  sim::Simulator sim(1);
  sim::SimNetwork net(sim, {});
  NullEndpoint a, b;
  net.add_node(sim::NodeId{1}, sim::NodeKind::Replica, &a);
  net.add_node(sim::NodeId{2}, sim::NodeKind::Replica, &b);
  auto payload = std::make_shared<msg::Reject>(RequestId{ClientId{1}, OpNum{1}});
  for (auto _ : state) {
    net.send(sim::NodeId{1}, sim::NodeId{2}, payload);
    if (sim.pending_events() > 4096) sim.run_until(sim.now() + kSecond);
  }
}
BENCHMARK(BM_NetworkSend);

}  // namespace

BENCHMARK_MAIN();
