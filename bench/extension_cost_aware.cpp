// Extension experiment (beyond the paper): cost-aware admission under a
// mixed cheap/expensive workload.
//
// Section 5.1 names "an analysis of the request depending on the
// estimated resource costs" as a further acceptance-test option. Here the
// workload mixes cheap point operations with expensive scans (YCSB-E
// style, ~25x the execution cost). Under overload, the default AQM test
// admits by client identity only, so scans hog the capacity; the
// CostAware test admits expensive requests only while the system is
// lightly loaded, keeping cheap traffic flowing.
#include <cstdio>

#include "app/kv_store.hpp"
#include "bench_util.hpp"

using namespace idem;

namespace {

/// Prices a command for admission: scans cost their length, everything
/// else is cheap. Mirrors KvStore::execution_cost without decoding twice.
Duration estimate_cost(std::span<const std::byte> command) {
  try {
    app::KvCommand cmd = app::KvCommand::decode(command);
    if (cmd.op == app::KvOp::Scan) {
      return 4 * kMicrosecond + static_cast<Duration>(cmd.scan_len) * kMicrosecond;
    }
  } catch (const CodecError&) {
  }
  return 4 * kMicrosecond;
}

struct MixResult {
  double reply_kops = 0;
  double reject_kops = 0;
  double reply_ms = 0;
  double p99_ms = 0;
};

MixResult run_mix(bool cost_aware, std::size_t clients, harness::DriverConfig driver) {
  harness::ClusterConfig config;
  config.protocol = harness::Protocol::Idem;
  config.reject_threshold = 50;
  config.clients = clients;
  // Mixed workload: 80% point ops, 20% scans of up to 100 records.
  config.workload = app::YcsbConfig::update_heavy();
  config.workload.read_proportion = 0.4;
  config.workload.update_proportion = 0.4;
  config.workload.scan_proportion = 0.2;
  config.workload.max_scan_len = 100;
  if (cost_aware) {
    config.acceptance_factory = [](std::size_t) {
      return std::make_unique<core::CostAware>(estimate_cost, /*cheap=*/10 * kMicrosecond,
                                               /*expensive=*/100 * kMicrosecond,
                                               /*min_fraction=*/0.2);
    };
  }
  harness::Cluster cluster(config);
  harness::ClosedLoopDriver loop(cluster, driver);
  harness::RunMetrics metrics = loop.run();
  MixResult result;
  result.reply_kops = metrics.reply_throughput() / 1000.0;
  result.reject_kops = metrics.reject_throughput() / 1000.0;
  result.reply_ms = metrics.reply_latency_ms();
  result.p99_ms = to_ms(metrics.reply_latency.p99());
  return result;
}

}  // namespace

int main() {
  std::printf("=== Extension: cost-aware admission (Section 5.1 'further options') ===\n");
  std::printf("(80%% point ops + 20%% scans of up to 100 records; overload sweep)\n\n");

  harness::DriverConfig driver;
  driver.warmup = bench::warmup_duration();
  driver.measure = bench::measure_duration();

  harness::Table table({"clients", "test", "throughput[kreq/s]", "latency[ms]", "p99[ms]",
                        "rejects[kreq/s]"});
  MixResult aqm_hi, cost_hi;
  for (std::size_t clients : {25u, 50u, 100u, 200u}) {
    MixResult aqm = run_mix(false, clients, driver);
    MixResult cost = run_mix(true, clients, driver);
    if (clients == 200) {
      aqm_hi = aqm;
      cost_hi = cost;
    }
    table.add_row({harness::Table::fmt(std::uint64_t(clients)), "AQM (default)",
                   harness::Table::fmt(aqm.reply_kops), harness::Table::fmt(aqm.reply_ms, 3),
                   harness::Table::fmt(aqm.p99_ms, 3),
                   harness::Table::fmt(aqm.reject_kops, 2)});
    table.add_row({harness::Table::fmt(std::uint64_t(clients)), "CostAware",
                   harness::Table::fmt(cost.reply_kops),
                   harness::Table::fmt(cost.reply_ms, 3),
                   harness::Table::fmt(cost.p99_ms, 3),
                   harness::Table::fmt(cost.reject_kops, 2)});
  }
  bench::print_table(table);

  std::printf("shape checks:\n");
  std::printf(" - CostAware serves more operations under overload (%.1f vs %.1f kreq/s)"
              " -> %s\n",
              cost_hi.reply_kops, aqm_hi.reply_kops,
              cost_hi.reply_kops > aqm_hi.reply_kops ? "OK" : "MISS");
  std::printf(" - CostAware lowers overload latency (%.2f vs %.2f ms) -> %s\n",
              cost_hi.reply_ms, aqm_hi.reply_ms,
              cost_hi.reply_ms < aqm_hi.reply_ms ? "OK" : "MISS");
  return 0;
}
