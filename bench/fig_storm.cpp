// Connection-storm scenario suite: proves timely rejection at 100x the
// paper's client count (Section 7 runs ~100 clients; the ramp scenario
// here holds 10,000 concurrent loopback connections).
//
// Four scenarios against an in-process 3-replica RealCluster, driven by
// real::StormEngine (one epoll thread multiplexing every session):
//
//   ramp      - grow to ~10k connections; measure connect (accept-path)
//               latency p50/p99.9 and per-connection server memory.
//   flash     - a small closed-loop population measures the pre-storm
//               peak, then the population jumps 4x past it; replies must
//               hold >= 50% of the pre-storm peak and the rejection-
//               notification p99.9 must stay bounded.
//   stampede  - crash the leader under a 1k-session population; every
//               session reconnects (jittered) while the survivors run a
//               view change; replies must resume after recovery.
//   loris     - slow-loris sessions trickle forever-unfinished frames;
//               the transport's half-open eviction must reclaim them
//               while normal sessions keep getting replies.
//
// Emits machine-readable JSON (default ./BENCH_storm.json, override with
// IDEM_STORM_JSON); the CI perf gate checks the flash scenario's
// reply_kops via bench_compare --peak.
//
// Environment knobs (all optional): IDEM_STORM_SESSIONS (ramp population,
// default 3334 => 10k connections), IDEM_STORM_RAMP_SECONDS (default 5),
// IDEM_STORM_SCENARIOS (comma list of ramp,flash,stampede,loris),
// IDEM_STORM_FLASH_BASE (default 32), IDEM_STORM_STAMPEDE_SESSIONS
// (default 1000), IDEM_STORM_RT (reject threshold, default 24),
// IDEM_STORM_SECONDS (measure span scale, default 1.0).
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "harness/table.hpp"
#include "real/cluster.hpp"
#include "real/storm.hpp"

using namespace idem;

namespace {

double env_double(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::atof(value);
}

bool scenario_enabled(const char* name) {
  const char* list = std::getenv("IDEM_STORM_SCENARIOS");
  if (list == nullptr || *list == '\0') return true;
  std::string text = list;
  for (std::size_t start = 0; start < text.size();) {
    std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) comma = text.size();
    if (text.substr(start, comma - start) == name) return true;
    start = comma + 1;
  }
  return false;
}

struct StormPoint {
  std::string name;
  std::size_t sessions = 0;
  std::size_t connections = 0;       ///< peak established TCP connections
  double connect_p50_ms = 0;
  double connect_p999_ms = 0;
  double reply_kops = 0;
  double reject_kops = 0;
  double reject_p999_ms = 0;         ///< rejection-notification tail
  double per_conn_bytes = 0;         ///< server-side memory per connection
  std::uint64_t timeouts = 0;
  std::uint64_t resets = 0;
  std::uint64_t half_open_evictions = 0;
};

bool g_shape_ok = true;

void check(bool ok, const char* what) {
  std::printf(" - %s %s\n", ok ? "ok  " : "FAIL", what);
  if (!ok) g_shape_ok = false;
}

real::RealClusterConfig base_cluster_config(std::uint64_t seed, std::size_t reject_threshold,
                                            std::size_t expected_clients) {
  real::RealClusterConfig config;
  config.n = 3;
  config.f = 1;
  config.reject_threshold = reject_threshold;
  config.seed = seed;
  config.expected_clients = expected_clients;
  config.preload = true;
  config.workload.record_count = 1000;
  // Thousands of small-frame client connections: a 16 KiB receive buffer
  // each would cost the server ~160 MB at 10k connections. 1 KiB holds
  // any client REQUEST here and keeps per-connection memory honest.
  config.transport.read_buffer_bytes = 1024;
  return config;
}

double cluster_per_conn_bytes(real::RealCluster& cluster) {
  rpc::TransportMemory total;
  for (std::size_t i = 0; i < cluster.n(); ++i) {
    rpc::TransportMemory m = cluster.transport_memory(i);
    total.inbound_connections += m.inbound_connections;
    total.outbound_connections += m.outbound_connections;
    total.inbound_buffer_bytes += m.inbound_buffer_bytes;
    total.pending_write_bytes += m.pending_write_bytes;
  }
  return total.per_connection();
}

// --- scenario: ramp to 10k connections ------------------------------------
//
// Split across two processes: 10k loopback connections are 20k fd ends,
// more than any one process may hold under this machine's immovable
// 20000-fd cap (the sandbox masks CAP_SYS_RESOURCE, so even root cannot
// raise the hard limit). The child re-execs this binary in cluster-host
// mode (IDEM_STORM_HOST) and owns the inbound ends; the storm engine in
// the parent owns the client ends — which is also the honest shape:
// client and server never share an fd budget in a real deployment. The
// two talk over pipes with a three-verb line protocol (PORTS/MEM/QUIT).

int run_cluster_host() {
  real::StormEngine::raise_fd_limit(65536);
  real::RealClusterConfig config = base_cluster_config(11, 24, 64);
  real::RealCluster cluster(config);
  cluster.start();
  std::printf("PORTS");
  for (std::size_t i = 0; i < cluster.n(); ++i) {
    std::printf(" %u", static_cast<unsigned>(cluster.port_of(i)));
  }
  std::printf("\n");
  std::fflush(stdout);
  char line[256];
  while (std::fgets(line, sizeof line, stdin) != nullptr) {
    if (std::strncmp(line, "MEM", 3) == 0) {
      std::size_t inbound = 0;
      for (std::size_t i = 0; i < cluster.n(); ++i) {
        inbound += cluster.transport_memory(i).inbound_connections;
      }
      std::printf("MEM %.0f %zu\n", cluster_per_conn_bytes(cluster), inbound);
      std::fflush(stdout);
    } else if (std::strncmp(line, "QUIT", 4) == 0) {
      break;
    }
  }
  cluster.shutdown();
  return 0;
}

struct ClusterHost {
  pid_t pid = -1;
  std::FILE* command = nullptr;  ///< child stdin: MEM / QUIT
  std::FILE* reply = nullptr;    ///< child stdout: PORTS / MEM lines
};

ClusterHost spawn_cluster_host(std::vector<rpc::PeerAddress>& replicas) {
  int to_child[2];
  int from_child[2];
  if (::pipe(to_child) != 0 || ::pipe(from_child) != 0) {
    std::perror("pipe");
    std::exit(1);
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    std::perror("fork");
    std::exit(1);
  }
  if (pid == 0) {
    ::dup2(to_child[0], 0);
    ::dup2(from_child[1], 1);
    ::close(to_child[0]);
    ::close(to_child[1]);
    ::close(from_child[0]);
    ::close(from_child[1]);
    ::setenv("IDEM_STORM_HOST", "1", 1);
    ::execl("/proc/self/exe", "fig_storm-host", static_cast<char*>(nullptr));
    std::perror("execl");
    ::_exit(127);
  }
  ::close(to_child[0]);
  ::close(from_child[1]);
  ClusterHost host;
  host.pid = pid;
  host.command = ::fdopen(to_child[1], "w");
  host.reply = ::fdopen(from_child[0], "r");
  char line[512];
  if (host.command == nullptr || host.reply == nullptr ||
      std::fgets(line, sizeof line, host.reply) == nullptr) {
    std::fprintf(stderr, "cluster host did not come up\n");
    std::exit(1);
  }
  std::istringstream ports(line);
  std::string tag;
  ports >> tag;
  unsigned port = 0;
  while (ports >> port) {
    replicas.push_back({"127.0.0.1", static_cast<std::uint16_t>(port)});
  }
  if (tag != "PORTS" || replicas.size() != 3) {
    std::fprintf(stderr, "bad cluster-host handshake: %s\n", line);
    std::exit(1);
  }
  return host;
}

StormPoint run_ramp(std::size_t sessions, Duration ramp, Duration hold) {
  std::vector<rpc::PeerAddress> replicas;
  ClusterHost host = spawn_cluster_host(replicas);

  real::StormOptions options;
  options.replicas = replicas;
  options.sessions = sessions;
  options.ramp = ramp;
  options.issue_rate = 0.5;  // open loop: a trickle per session, 10k alive
  options.seed = 11;
  options.workload = base_cluster_config(11, 24, 64).workload;
  real::StormEngine storm(options);
  storm.start();
  storm.run_for(ramp + hold);

  // Query server-side memory while every connection is still open.
  std::fprintf(host.command, "MEM\n");
  std::fflush(host.command);
  double per_conn = 0;
  std::size_t inbound = 0;
  char line[256];
  if (std::fgets(line, sizeof line, host.reply) != nullptr) {
    std::sscanf(line, "MEM %lf %zu", &per_conn, &inbound);
  }

  const real::StormWindow& w = storm.window();
  real::StormGauges g = storm.gauges();
  StormPoint point;
  point.name = "ramp";
  point.sessions = sessions;
  point.connections = g.open_connections;
  point.connect_p50_ms = to_ms(w.connect_latency.p50());
  point.connect_p999_ms = to_ms(w.connect_latency.p999());
  point.reply_kops = w.reply_rate(ramp + hold) / 1000.0;
  point.reject_kops = w.rejects / to_sec(ramp + hold) / 1000.0;
  if (w.rejects > 0) point.reject_p999_ms = to_ms(w.reject_latency.p999());
  point.per_conn_bytes = per_conn;
  point.timeouts = w.timeouts;
  point.resets = w.resets;

  std::fprintf(host.command, "QUIT\n");
  std::fflush(host.command);
  std::fclose(host.command);
  std::fclose(host.reply);
  int status = 0;
  ::waitpid(host.pid, &status, 0);

  std::printf("\nshape checks (ramp):\n");
  const std::size_t want = sessions * 3;
  check(point.connections >= want - want / 50,
        "ramp establishes (almost) every connection (>= 98% of 3 per session)");
  check(inbound >= want - want / 50,
        "the cluster host holds the full population's inbound ends");
  check(point.connect_p999_ms > 0, "connect latency p99.9 is measured");
  check(point.per_conn_bytes > 0 && point.per_conn_bytes <= 8192,
        "server memory stays under 8 KiB per connection");
  return point;
}

// --- scenario: flash crowd at 4x overload ---------------------------------

StormPoint run_flash(std::size_t base_sessions, double overload_factor, Duration pre,
                     Duration storm_span) {
  const std::size_t storm_sessions =
      static_cast<std::size_t>(static_cast<double>(base_sessions) * overload_factor);
  real::RealClusterConfig config = base_cluster_config(13, 24, storm_sessions);
  real::RealCluster cluster(config);
  cluster.start();

  real::StormOptions options;
  options.replicas = cluster.replica_addresses();
  options.sessions = base_sessions;
  options.issue_rate = 0;  // closed loop: population size IS the load
  options.seed = 13;
  options.workload = config.workload;
  options.epoch = cluster.epoch();
  real::StormEngine storm(options);
  storm.start();
  storm.run_for(pre / 2);  // settle
  storm.reset_window();
  storm.run_for(pre / 2);  // measure the pre-storm peak
  const double pre_peak = storm.window().reply_rate(pre / 2);

  storm.set_target_sessions(storm_sessions);
  storm.reset_window();
  storm.run_for(storm_span);
  const real::StormWindow& w = storm.window();

  StormPoint point;
  point.name = "flash";
  point.sessions = storm_sessions;
  point.connections = storm.gauges().open_connections;
  point.connect_p50_ms = to_ms(w.connect_latency.p50());
  point.connect_p999_ms = to_ms(w.connect_latency.p999());
  point.reply_kops = w.reply_rate(storm_span) / 1000.0;
  point.reject_kops = w.rejects / to_sec(storm_span) / 1000.0;
  if (w.rejects > 0) point.reject_p999_ms = to_ms(w.reject_latency.p999());
  point.per_conn_bytes = cluster_per_conn_bytes(cluster);
  point.timeouts = w.timeouts;
  point.resets = w.resets;
  cluster.shutdown();

  std::printf("\nshape checks (flash crowd, pre-storm peak %.1f kreq/s):\n", pre_peak / 1000.0);
  check(w.rejects > 0, "proactive rejection engages under the flash crowd");
  check(point.reply_kops * 1000.0 >= 0.5 * pre_peak,
        "goodput holds during the storm (replies >= 50% of pre-storm peak)");
  check(w.rejects == 0 || point.reject_p999_ms <= 1000.0,
        "rejection-notification p99.9 stays bounded (<= 1 s)");
  return point;
}

// --- scenario: reconnect stampede after a leader crash --------------------

StormPoint run_stampede(std::size_t sessions, Duration settle, Duration crash_span,
                        Duration recover_span) {
  real::RealClusterConfig config = base_cluster_config(17, 24, 64);
  // The survivors need outstanding work plus this progress timeout to
  // elect a new leader (same knob the real-cluster crash test uses).
  config.idem.viewchange_timeout = 250 * kMillisecond;
  real::RealCluster cluster(config);
  cluster.start();

  real::StormOptions options;
  options.replicas = cluster.replica_addresses();
  options.sessions = sessions;
  options.ramp = settle / 2;
  options.issue_rate = 2.0;
  options.seed = 17;
  options.workload = config.workload;
  options.epoch = cluster.epoch();
  real::StormEngine storm(options);
  storm.start();
  storm.run_for(settle);

  const std::size_t leader = cluster.leader_index();
  std::printf("(crashing leader, replica %zu)\n", leader);
  cluster.crash_replica(leader);
  storm.reset_window();
  storm.run_for(crash_span);  // resets -> jittered reconnects -> view change
  const std::uint64_t stampede_connects = storm.window().connects;
  const std::uint64_t stampede_resets = storm.window().resets;

  storm.reset_window();
  storm.run_for(recover_span);
  const real::StormWindow& w = storm.window();

  StormPoint point;
  point.name = "stampede";
  point.sessions = sessions;
  point.connections = storm.gauges().open_connections;
  point.connect_p50_ms = to_ms(w.connect_latency.p50());
  point.connect_p999_ms = to_ms(w.connect_latency.p999());
  point.reply_kops = w.reply_rate(recover_span) / 1000.0;
  point.reject_kops = w.rejects / to_sec(recover_span) / 1000.0;
  if (w.rejects > 0) point.reject_p999_ms = to_ms(w.reject_latency.p999());
  point.per_conn_bytes = cluster_per_conn_bytes(cluster);
  point.timeouts = w.timeouts;
  point.resets = stampede_resets;
  cluster.shutdown();

  std::printf("\nshape checks (stampede: %llu resets, %llu reconnects during the crash window):\n",
              static_cast<unsigned long long>(stampede_resets),
              static_cast<unsigned long long>(stampede_connects));
  check(stampede_resets >= sessions,
        "the crash resets every session (stampede actually happened)");
  check(stampede_connects >= sessions,
        "sessions re-established connections during the crash window");
  check(w.replies > 0, "replies resume after the view change");
  check(point.connections >= sessions * 2 - sessions / 10,
        "sessions hold connections to both survivors after recovery");
  return point;
}

// --- scenario: slow-loris holds -------------------------------------------

StormPoint run_loris(std::size_t sessions, Duration span) {
  real::RealClusterConfig config = base_cluster_config(19, 24, 64);
  config.transport.half_open_timeout = 300 * kMillisecond;
  real::RealCluster cluster(config);
  cluster.start();

  real::StormOptions options;
  options.replicas = cluster.replica_addresses();
  options.sessions = sessions;
  options.issue_rate = 0;  // normal half: closed loop
  options.slow_loris_fraction = 0.5;
  options.loris_trickle = 100 * kMillisecond;
  options.seed = 19;
  options.workload = config.workload;
  options.epoch = cluster.epoch();
  real::StormEngine storm(options);
  storm.start();
  storm.run_for(span);

  const real::StormWindow& w = storm.window();
  std::uint64_t evicted = 0;
  for (std::size_t i = 0; i < cluster.n(); ++i) {
    evicted += cluster.transport_stats(i).half_open_evictions;
  }

  StormPoint point;
  point.name = "loris";
  point.sessions = sessions;
  point.connections = storm.gauges().open_connections;
  point.connect_p50_ms = to_ms(w.connect_latency.p50());
  point.connect_p999_ms = to_ms(w.connect_latency.p999());
  point.reply_kops = w.reply_rate(span) / 1000.0;
  point.reject_kops = w.rejects / to_sec(span) / 1000.0;
  if (w.rejects > 0) point.reject_p999_ms = to_ms(w.reject_latency.p999());
  point.per_conn_bytes = cluster_per_conn_bytes(cluster);
  point.timeouts = w.timeouts;
  point.resets = w.resets;
  point.half_open_evictions = evicted;
  cluster.shutdown();

  const std::size_t loris_sessions = sessions / 2;
  std::printf("\nshape checks (loris, %zu trickling sessions):\n", loris_sessions);
  check(evicted >= loris_sessions,
        "half-open eviction reclaims the trickling connections");
  check(w.loris_evictions > 0, "loris clients observe their evictions as resets");
  check(w.replies > 0, "normal sessions keep getting replies alongside the loris hold");
  return point;
}

}  // namespace

int main() {
  if (std::getenv("IDEM_STORM_HOST") != nullptr) return run_cluster_host();
  const std::size_t fd_limit = real::StormEngine::raise_fd_limit(65536);
  const double scale = env_double("IDEM_STORM_SECONDS", 1.0);
  auto scaled = [scale](double seconds) {
    return static_cast<Duration>(seconds * scale * kSecond);
  };
  std::size_t ramp_sessions =
      static_cast<std::size_t>(env_double("IDEM_STORM_SESSIONS", 3334));
  // The ramp's cluster ends live in the forked host's own fd budget, so
  // the storm process pays 3 client fds per session plus slack; the other
  // scenarios are small enough to run cluster-in-process.
  const std::size_t max_sessions = fd_limit > 1024 ? (fd_limit - 1024) / 3 : 256;
  if (ramp_sessions > max_sessions) {
    std::printf("(fd limit %zu caps the ramp at %zu sessions, wanted %zu)\n", fd_limit,
                max_sessions, ramp_sessions);
    ramp_sessions = max_sessions;
  }
  const std::size_t flash_base =
      static_cast<std::size_t>(env_double("IDEM_STORM_FLASH_BASE", 32));
  const std::size_t stampede_sessions =
      static_cast<std::size_t>(env_double("IDEM_STORM_STAMPEDE_SESSIONS", 1000));

  std::printf("=== Connection storms: accept-path hardening at 10k sessions ===\n");
  std::printf("(3 replicas; storm driver multiplexes every session on one epoll thread;"
              " fd limit %zu)\n", fd_limit);

  std::vector<StormPoint> points;
  if (scenario_enabled("ramp")) {
    std::printf("\n--- ramp: %zu sessions -> %zu connections ---\n", ramp_sessions,
                ramp_sessions * 3);
    points.push_back(run_ramp(ramp_sessions,
                              scaled(env_double("IDEM_STORM_RAMP_SECONDS", 5.0)),
                              scaled(2.0)));
  }
  if (scenario_enabled("flash")) {
    std::printf("\n--- flash crowd: %zu -> %zu closed-loop sessions ---\n", flash_base,
                flash_base * 4);
    points.push_back(run_flash(flash_base, 4.0, scaled(2.0), scaled(3.0)));
  }
  if (scenario_enabled("stampede")) {
    std::printf("\n--- reconnect stampede: leader crash under %zu sessions ---\n",
                stampede_sessions);
    points.push_back(
        run_stampede(stampede_sessions, scaled(1.5), scaled(3.0), scaled(2.0)));
  }
  if (scenario_enabled("loris")) {
    std::printf("\n--- slow loris: half of 64 sessions trickle forever ---\n");
    points.push_back(run_loris(64, scaled(3.0)));
  }

  harness::Table table({"scenario", "sessions", "conns", "connect p50[ms]",
                        "connect p99.9[ms]", "replies[kreq/s]", "rejects[kreq/s]",
                        "reject p99.9[ms]", "B/conn"});
  for (const StormPoint& p : points) {
    table.add_row({p.name, harness::Table::fmt(std::uint64_t(p.sessions)),
                   harness::Table::fmt(std::uint64_t(p.connections)),
                   harness::Table::fmt(p.connect_p50_ms, 3),
                   harness::Table::fmt(p.connect_p999_ms, 3),
                   harness::Table::fmt(p.reply_kops),
                   harness::Table::fmt(p.reject_kops),
                   harness::Table::fmt(p.reject_p999_ms, 3),
                   harness::Table::fmt(p.per_conn_bytes, 0)});
  }
  std::printf("\n");
  table.print();

  if (!g_shape_ok) {
    std::fprintf(stderr, "fig_storm: shape check failed\n");
    return 1;
  }

  const char* path = std::getenv("IDEM_STORM_JSON");
  if (path == nullptr || *path == '\0') path = "BENCH_storm.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"fig_storm\",\n  \"n\": 3,\n  \"points\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const StormPoint& p = points[i];
    std::fprintf(f,
                 "    {\"scenario\": \"%s\", \"clients\": %zu, \"connections\": %zu,"
                 " \"connect_p50_ms\": %.4f, \"connect_p999_ms\": %.4f,"
                 " \"reply_kops\": %.3f, \"reject_kops\": %.3f, \"reject_p999_ms\": %.4f,"
                 " \"per_conn_bytes\": %.0f, \"timeouts\": %llu, \"resets\": %llu,"
                 " \"half_open_evictions\": %llu}%s\n",
                 p.name.c_str(), p.sessions, p.connections, p.connect_p50_ms,
                 p.connect_p999_ms, p.reply_kops, p.reject_kops, p.reject_p999_ms,
                 p.per_conn_bytes, static_cast<unsigned long long>(p.timeouts),
                 static_cast<unsigned long long>(p.resets),
                 static_cast<unsigned long long>(p.half_open_evictions),
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
  return 0;
}
