// Figure 2: behavior of existing replication protocols under load.
//
// Paper result: a two-tier quality of service. Below saturation (the
// "good tier") Paxos answers with low, stable latency; past the
// saturation point requests queue up and the average latency — and its
// standard deviation — escalate (the "bad tier").
#include <cstdio>

#include "bench_util.hpp"

using namespace idem;

int main() {
  std::printf("=== Figure 2: state-of-the-art protocols under load (Paxos) ===\n");
  std::printf("(average latency and standard deviation vs achieved throughput)\n\n");

  harness::ClusterConfig base;
  base.protocol = harness::Protocol::Paxos;

  harness::DriverConfig driver;
  driver.warmup = bench::warmup_duration();
  driver.measure = bench::measure_duration();

  harness::Table table({"clients", "throughput[kreq/s]", "latency[ms]", "stddev[ms]",
                        "p99[ms]", "tier"});
  double saturation_kops = 0;
  std::vector<bench::LoadPoint> points;
  for (std::size_t clients : {5u, 10u, 20u, 30u, 40u, 50u, 60u, 80u, 100u, 150u, 200u}) {
    bench::LoadPoint point = bench::run_load_point(base, clients, driver);
    points.push_back(point);
    saturation_kops = std::max(saturation_kops, point.reply_kops);
  }
  for (const auto& point : points) {
    // Good tier: the system still converts added clients into throughput.
    bool saturated = point.reply_kops < saturation_kops * 0.98 &&
                     point.reply_ms > points.front().reply_ms * 2;
    table.add_row({harness::Table::fmt(std::uint64_t(point.clients)),
                   harness::Table::fmt(point.reply_kops),
                   harness::Table::fmt(point.reply_ms, 3),
                   harness::Table::fmt(point.reply_stddev_ms, 3),
                   harness::Table::fmt(point.reply_p99_ms, 3),
                   saturated ? "bad (overload)" : "good"});
  }
  bench::print_table(table);

  const auto& low = points.front();
  const auto& high = points.back();
  std::printf("latency blow-up at ~4x saturation load: %.0f%% of low-load latency\n",
              100.0 * high.reply_ms / low.reply_ms);
  std::printf("shape check: blow-up >> 600%% (paper Section 7.2) -> %s\n",
              high.reply_ms > 6 * low.reply_ms ? "OK" : "MISS");
  return 0;
}
