// Calibration helper: runs a single load point and prints the measured
// saturation numbers plus simulator statistics. Not part of the paper's
// experiment set; useful when tuning cost-model constants.
//
// Usage: calibrate [protocol] [clients] [seconds] [reject_threshold]
//   protocol: idem | idem-nopr | idem-noaqm | paxos | paxos-lbr | smart
#include <cstdio>
#include <cstring>

#include "bench_util.hpp"

using namespace idem;

int main(int argc, char** argv) {
  harness::Protocol protocol = harness::Protocol::Idem;
  if (argc > 1) {
    if (!std::strcmp(argv[1], "paxos")) protocol = harness::Protocol::Paxos;
    else if (!std::strcmp(argv[1], "paxos-lbr")) protocol = harness::Protocol::PaxosLBR;
    else if (!std::strcmp(argv[1], "smart")) protocol = harness::Protocol::Smart;
    else if (!std::strcmp(argv[1], "idem-nopr")) protocol = harness::Protocol::IdemNoPR;
    else if (!std::strcmp(argv[1], "idem-noaqm")) protocol = harness::Protocol::IdemNoAQM;
  }
  std::size_t clients = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 50;
  double seconds = argc > 3 ? std::atof(argv[3]) : 3.0;
  std::size_t rt = argc > 4 ? std::strtoul(argv[4], nullptr, 10) : 50;

  harness::ClusterConfig config;
  config.protocol = protocol;
  config.clients = clients;
  config.reject_threshold = rt;
  harness::Cluster cluster(config);

  harness::DriverConfig driver_config;
  driver_config.warmup = kSecond;
  driver_config.measure = static_cast<Duration>(seconds * kSecond);
  harness::ClosedLoopDriver driver(cluster, driver_config);
  harness::RunMetrics metrics = driver.run();

  std::printf("%s  clients=%zu rt=%zu\n", harness::protocol_name(protocol), clients, rt);
  std::printf("  replies:  %.2f kreq/s  latency %.3f ms (stddev %.3f, p99 %.3f)\n",
              metrics.reply_throughput() / 1000.0, metrics.reply_latency_ms(),
              metrics.reply_latency_stddev_ms(), to_ms(metrics.reply_latency.p99()));
  std::printf("  rejects:  %.2f kreq/s  latency %.3f ms (stddev %.3f)\n",
              metrics.reject_throughput() / 1000.0, metrics.reject_latency_ms(),
              metrics.reject_latency_stddev_ms());
  std::printf("  timeouts: %llu\n", static_cast<unsigned long long>(metrics.timeouts));
  std::printf("  traffic:  client %.1f MB, replica %.1f MB\n",
              metrics.client_traffic.bytes / 1e6, metrics.replica_traffic.bytes / 1e6);
  return 0;
}
