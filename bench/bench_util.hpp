// Shared helpers for the experiment binaries.
//
// Environment knobs (all optional):
//   IDEM_BENCH_SECONDS      measurement seconds per data point (default 5)
//   IDEM_BENCH_WARMUP       warm-up seconds per data point (default 1)
//   IDEM_BENCH_RUNS         independent runs (seeds) averaged per point (default 1)
//   IDEM_BENCH_CSV          when set, also print CSV after each table
//   IDEM_BENCH_TRACE_OUT    record request lifecycles and write a Chrome
//                           trace JSON per load point; "-c<clients>" (and
//                           "-r<run>" when IDEM_BENCH_RUNS > 1) is inserted
//                           before the extension, so a sweep keeps every
//                           point instead of the last one overwriting
//   IDEM_BENCH_METRICS_OUT  sample per-replica metrics every 100 ms and
//                           write JSONL per load point (same suffixing)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "harness/cluster.hpp"
#include "harness/driver.hpp"
#include "harness/metrics.hpp"
#include "harness/table.hpp"
#include "obs/chrome_trace.hpp"

namespace idem::bench {

inline double env_double(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::atof(value);
}

inline int env_int(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::atoi(value);
}

inline Duration measure_duration() {
  return static_cast<Duration>(env_double("IDEM_BENCH_SECONDS", 5.0) * kSecond);
}

inline Duration warmup_duration() {
  return static_cast<Duration>(env_double("IDEM_BENCH_WARMUP", 1.0) * kSecond);
}

inline int bench_runs() { return env_int("IDEM_BENCH_RUNS", 1); }

inline bool csv_enabled() { return std::getenv("IDEM_BENCH_CSV") != nullptr; }

inline const char* env_path(const char* name) {
  const char* value = std::getenv(name);
  return (value != nullptr && *value != '\0') ? value : nullptr;
}

/// Applies the IDEM_BENCH_TRACE_OUT / IDEM_BENCH_METRICS_OUT knobs.
inline void apply_obs_env(harness::ClusterConfig& config) {
  if (env_path("IDEM_BENCH_TRACE_OUT") != nullptr) config.obs.trace = true;
  if (env_path("IDEM_BENCH_METRICS_OUT") != nullptr) {
    config.obs.metrics_interval = 100 * kMillisecond;
  }
}

/// Inserts `suffix` before `path`'s extension: ("sweep.json", "-c8") ->
/// "sweep-c8.json"; extensionless paths just get the suffix appended.
inline std::string suffixed_path(const char* path, const std::string& suffix) {
  std::string p = path;
  std::size_t dot = p.rfind('.');
  std::size_t slash = p.rfind('/');
  if (dot == std::string::npos || (slash != std::string::npos && dot < slash)) {
    return p + suffix;
  }
  return p.substr(0, dot) + suffix + p.substr(dot);
}

/// Writes the obs sinks of a finished run to the env-selected paths,
/// `suffix` distinguishing load points so a sweep keeps all of them.
inline void export_obs_env(harness::Cluster& cluster, const std::string& suffix = "") {
  if (const char* path = env_path("IDEM_BENCH_TRACE_OUT");
      path != nullptr && cluster.trace() != nullptr) {
    if (std::FILE* f = std::fopen(suffixed_path(path, suffix).c_str(), "w")) {
      obs::write_chrome_trace(f, cluster.trace()->snapshot());
      std::fclose(f);
    }
  }
  if (const char* path = env_path("IDEM_BENCH_METRICS_OUT");
      path != nullptr && cluster.metrics() != nullptr) {
    if (std::FILE* f = std::fopen(suffixed_path(path, suffix).c_str(), "w")) {
      cluster.metrics()->write_jsonl(f);
      std::fclose(f);
    }
  }
}

/// Metrics of one load point averaged over `runs` independent seeds.
struct LoadPoint {
  std::size_t clients = 0;
  double reply_kops = 0;        ///< successful requests per second / 1000
  double reject_kops = 0;       ///< rejections per second / 1000
  double reply_ms = 0;          ///< mean reply latency
  double reply_stddev_ms = 0;
  double reply_p50_ms = 0;
  double reply_p90_ms = 0;
  double reply_p99_ms = 0;
  double reply_p999_ms = 0;
  double reject_ms = 0;         ///< mean reject latency
  double reject_stddev_ms = 0;
  double timeouts_per_s = 0;
  double deadline_miss_pct = 0;  ///< % of deadline-carrying replies past budget
};

/// Runs one steady-state load point: `clients` closed-loop YCSB clients
/// against a fresh cluster; repeated for `runs` seeds and averaged.
inline LoadPoint run_load_point(harness::ClusterConfig base, std::size_t clients,
                                harness::DriverConfig driver_config, int runs = 0) {
  if (runs <= 0) runs = bench_runs();
  LoadPoint point;
  point.clients = clients;
  for (int run = 0; run < runs; ++run) {
    harness::ClusterConfig config = base;
    config.clients = clients;
    config.seed = base.seed + static_cast<std::uint64_t>(run) * 7919;
    apply_obs_env(config);
    harness::Cluster cluster(config);
    harness::ClosedLoopDriver driver(cluster, driver_config);
    harness::RunMetrics metrics = driver.run();
    std::string suffix = "-c" + std::to_string(clients);
    if (runs > 1) suffix += "-r" + std::to_string(run);
    export_obs_env(cluster, suffix);

    point.reply_kops += metrics.reply_throughput() / 1000.0;
    point.reject_kops += metrics.reject_throughput() / 1000.0;
    point.reply_ms += metrics.reply_latency_ms();
    point.reply_stddev_ms += metrics.reply_latency_stddev_ms();
    point.reply_p50_ms += metrics.reply_p50_ms();
    point.reply_p90_ms += metrics.reply_p90_ms();
    point.reply_p99_ms += metrics.reply_p99_ms();
    point.reply_p999_ms += metrics.reply_p999_ms();
    point.reject_ms += metrics.reject_latency_ms();
    point.reject_stddev_ms += metrics.reject_latency_stddev_ms();
    point.timeouts_per_s += static_cast<double>(metrics.timeouts) / to_sec(metrics.measured);
    point.deadline_miss_pct += 100.0 * metrics.deadline_miss_rate();
  }
  const double inv = 1.0 / runs;
  point.reply_kops *= inv;
  point.reject_kops *= inv;
  point.reply_ms *= inv;
  point.reply_stddev_ms *= inv;
  point.reply_p50_ms *= inv;
  point.reply_p90_ms *= inv;
  point.reply_p99_ms *= inv;
  point.reply_p999_ms *= inv;
  point.reject_ms *= inv;
  point.reject_stddev_ms *= inv;
  point.timeouts_per_s *= inv;
  point.deadline_miss_pct *= inv;
  return point;
}

inline void print_table(const harness::Table& table);

/// Runs `clients` closed-loop clients for `duration` and crashes one
/// replica at `crash_at` (the current leader when `crash_leader`, else a
/// follower). Returns the full-run metrics; the time series cover the
/// whole run, which is what the crash figures plot.
inline harness::RunMetrics run_crash_timeline(harness::ClusterConfig base, std::size_t clients,
                                              Duration duration, Duration crash_at,
                                              bool crash_leader) {
  base.clients = clients;
  harness::Cluster cluster(base);
  harness::DriverConfig driver;
  driver.warmup = 0;
  driver.measure = duration;
  cluster.apply({sim::Fault::crash(
      crash_at, crash_leader ? sim::Fault::kLeader : sim::Fault::kFollower)});
  harness::ClosedLoopDriver loop(cluster, driver);
  return loop.run();
}

/// Prints a reply/reject timeline aggregated into `bucket`-sized rows.
inline void print_timeline(const harness::RunMetrics& metrics, Duration bucket,
                           Time crash_at = -1) {
  harness::Table table({"t[s]", "reply[kreq/s]", "latency[ms]", "reject[kreq/s]",
                        "rej-latency[ms]", "event"});
  auto replies = metrics.reply_series.rows();
  auto rejects = metrics.reject_series.rows();
  Duration window = metrics.reply_series.window();
  std::size_t per_bucket = static_cast<std::size_t>(bucket / window);
  if (per_bucket == 0) per_bucket = 1;
  std::size_t rows = std::max(replies.size(), rejects.size());
  for (std::size_t start = 0; start < rows; start += per_bucket) {
    std::uint64_t reply_count = 0, reject_count = 0;
    double reply_lat = 0, reject_lat = 0;
    for (std::size_t i = start; i < std::min(start + per_bucket, rows); ++i) {
      if (i < replies.size()) {
        reply_count += replies[i].count;
        reply_lat += replies[i].value_sum;
      }
      if (i < rejects.size()) {
        reject_count += rejects[i].count;
        reject_lat += rejects[i].value_sum;
      }
    }
    Time t0 = static_cast<Time>(start) * window;
    bool crash_here = crash_at >= 0 && crash_at >= t0 && crash_at < t0 + static_cast<Time>(per_bucket) * window;
    table.add_row({harness::Table::fmt(to_sec(t0), 1),
                   harness::Table::fmt(reply_count / to_sec(bucket) / 1000.0),
                   harness::Table::fmt(reply_count ? reply_lat / reply_count : 0.0, 3),
                   harness::Table::fmt(reject_count / to_sec(bucket) / 1000.0),
                   harness::Table::fmt(reject_count ? reject_lat / reject_count : 0.0, 3),
                   crash_here ? "<- crash" : ""});
  }
  print_table(table);
}

inline void print_table(const harness::Table& table) {
  table.print();
  if (csv_enabled()) {
    std::printf("\ncsv:\n");
    table.print_csv();
  }
  std::printf("\n");
}

}  // namespace idem::bench
