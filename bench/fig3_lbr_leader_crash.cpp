// Figure 3: impact of a leader crash on rejections in Paxos_LBR.
//
// Paper result: with leader-based rejection, a leader crash silences the
// rejection mechanism entirely — clients receive neither replies nor
// rejection notifications until the view change completes AND they have
// failed over to the new leader (~4 s of reject downtime). This is the
// motivating experiment for IDEM's collaborative (decentralized)
// approach.
#include <cstdio>

#include "bench_util.hpp"

using namespace idem;

int main() {
  std::printf("=== Figure 3: leader crash under Paxos_LBR (leader-based rejection) ===\n");
  std::printf("(2x overload; leader crashed mid-run; timeline of replies and rejects)\n\n");

  harness::ClusterConfig base;
  base.protocol = harness::Protocol::PaxosLBR;
  // LBR leader threshold: with 100 closed-loop clients the leader keeps
  // ~50 requests in flight and proactively rejects the excess.
  base.reject_threshold = 50;

  const Duration duration =
      std::max<Duration>(2 * bench::measure_duration() + 10 * kSecond, 20 * kSecond);
  const Duration crash_at = duration / 2;
  const std::size_t clients = 100;  // 2x the 50-client baseline

  harness::RunMetrics metrics = bench::run_crash_timeline(base, clients, duration, crash_at,
                                                          /*crash_leader=*/true);
  bench::print_timeline(metrics, 500 * kMillisecond, crash_at);

  // Measure the reject gap: longest run of reject-free windows after the crash.
  auto rejects = metrics.reject_series.rows();
  Duration window = metrics.reject_series.window();
  Time gap_start = -1, gap_end = -1;
  Time longest = 0;
  Time run_start = -1;
  for (std::size_t i = static_cast<std::size_t>(crash_at / window); i < rejects.size(); ++i) {
    if (rejects[i].count == 0) {
      if (run_start < 0) run_start = rejects[i].window_start;
    } else if (run_start >= 0) {
      Time len = rejects[i].window_start - run_start;
      if (len > longest) {
        longest = len;
        gap_start = run_start;
        gap_end = rejects[i].window_start;
      }
      run_start = -1;
    }
  }
  std::printf("reject downtime after leader crash: %.1f s (t=%.1fs .. t=%.1fs)\n",
              to_sec(longest), to_sec(gap_start), to_sec(gap_end));
  std::printf("shape check: multi-second reject outage (paper: ~4 s) -> %s\n",
              longest >= 2 * kSecond ? "OK" : "MISS");
  return 0;
}
