// Figure 9: IDEM under disruptive conditions.
//
// (a) Misconfigured threshold (RT=100, far above capacity): the system
//     reaches overload before rejection can prevent it; latency climbs to
//     ~2 ms, the increase slows once rejection activates, and only under
//     severe overload does it creep up again. Still no Paxos-style
//     explosion.
// (b) Extreme load (up to 14x the baseline): throughput degrades
//     gracefully (to ~55% of peak in the paper) while latency stays low,
//     because most clients see rejects and back off.
#include <cstdio>

#include "bench_util.hpp"

using namespace idem;

int main() {
  harness::DriverConfig driver;
  driver.warmup = bench::warmup_duration();
  driver.measure = bench::measure_duration();

  // -------------------------------------------------------------------
  std::printf("=== Figure 9a: misconfigured reject threshold (RT=100) ===\n\n");
  {
    harness::ClusterConfig base;
    base.protocol = harness::Protocol::Idem;
    base.reject_threshold = 100;

    harness::Table table({"load", "clients", "throughput[kreq/s]", "latency[ms]",
                          "stddev[ms]", "reject[kreq/s]"});
    std::vector<bench::LoadPoint> points;
    for (double factor : {1.0, 2.0, 4.0, 6.0, 8.0}) {
      std::size_t clients = static_cast<std::size_t>(50 * factor);
      bench::LoadPoint point = bench::run_load_point(base, clients, driver);
      points.push_back(point);
      char label[16];
      std::snprintf(label, sizeof(label), "%.0fx", factor);
      table.add_row({label, harness::Table::fmt(std::uint64_t(clients)),
                     harness::Table::fmt(point.reply_kops),
                     harness::Table::fmt(point.reply_ms, 3),
                     harness::Table::fmt(point.reply_stddev_ms, 3),
                     harness::Table::fmt(point.reject_kops, 2)});
    }
    bench::print_table(table);
    double ratio_4x_to_1x = points[2].reply_ms / points[0].reply_ms;
    std::printf("shape checks:\n");
    std::printf(" - latency rises past the well-configured plateau -> %s\n",
                points[2].reply_ms > 1.6 ? "OK" : "MISS");
    std::printf(" - but no state-of-the-art explosion (4x/1x latency = %.1fx, Paxos-style"
                " would be ~4x) -> %s\n",
                ratio_4x_to_1x, ratio_4x_to_1x < 3.0 ? "OK" : "MISS");
  }

  // -------------------------------------------------------------------
  std::printf("\n=== Figure 9b: extreme load (up to 14x baseline) ===\n\n");
  {
    harness::ClusterConfig base;
    base.protocol = harness::Protocol::Idem;
    base.reject_threshold = 50;

    harness::Table table({"load", "clients", "throughput[kreq/s]", "latency[ms]",
                          "stddev[ms]", "reject[kreq/s]"});
    double peak = 0, at_14x_kops = 0, at_14x_ms = 0;
    for (double factor : {2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0}) {
      std::size_t clients = static_cast<std::size_t>(50 * factor);
      bench::LoadPoint point = bench::run_load_point(base, clients, driver);
      peak = std::max(peak, point.reply_kops);
      at_14x_kops = point.reply_kops;
      at_14x_ms = point.reply_ms;
      char label[16];
      std::snprintf(label, sizeof(label), "%.0fx", factor);
      table.add_row({label, harness::Table::fmt(std::uint64_t(clients)),
                     harness::Table::fmt(point.reply_kops),
                     harness::Table::fmt(point.reply_ms, 3),
                     harness::Table::fmt(point.reply_stddev_ms, 3),
                     harness::Table::fmt(point.reject_kops, 2)});
    }
    bench::print_table(table);
    std::printf("shape checks:\n");
    std::printf(" - throughput at 14x degrades gracefully (%.0f%% of peak; paper: ~55%%)"
                " -> %s\n",
                100.0 * at_14x_kops / peak, at_14x_kops > 0.35 * peak ? "OK" : "MISS");
    std::printf(" - latency at 14x stays low (%.2f ms; paper: ~0.9 ms) -> %s\n", at_14x_ms,
                at_14x_ms < 2.5 ? "OK" : "MISS");
  }
  return 0;
}
