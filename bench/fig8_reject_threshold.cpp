// Figure 8: variation of the reject threshold in IDEM.
//
// Paper result: the reject threshold RT trades throughput for latency.
//   RT=20 (far below capacity): throughput capped (~65% of max) but very
//          low and stable latency (<~0.6 ms in the paper's setup);
//   RT=50 (just below the edge): good throughput, latency plateau;
//   RT=75 (slightly above the edge): highest throughput, slightly higher
//          plateau.
// Below the threshold, all configurations perform identically.
#include <cstdio>

#include "bench_util.hpp"

using namespace idem;

int main() {
  std::printf("=== Figure 8: variation of the reject threshold RT in IDEM ===\n\n");

  harness::DriverConfig driver;
  driver.warmup = bench::warmup_duration();
  driver.measure = bench::measure_duration();

  const std::vector<std::size_t> client_counts = {10, 25, 50, 100, 200, 300, 400};

  struct Summary {
    std::size_t rt;
    double max_kops = 0;
    double plateau_ms = 0;  // latency at highest load
    double low_load_ms = 0;
  };
  std::vector<Summary> summaries;

  for (std::size_t rt : {20u, 50u, 75u}) {
    harness::ClusterConfig base;
    base.protocol = harness::Protocol::Idem;
    base.reject_threshold = rt;

    harness::Table table({"RT", "clients", "throughput[kreq/s]", "latency[ms]", "stddev[ms]",
                          "reject[kreq/s]"});
    Summary summary;
    summary.rt = rt;
    for (std::size_t clients : client_counts) {
      bench::LoadPoint point = bench::run_load_point(base, clients, driver);
      summary.max_kops = std::max(summary.max_kops, point.reply_kops);
      summary.plateau_ms = point.reply_ms;
      if (clients == client_counts.front()) summary.low_load_ms = point.reply_ms;
      table.add_row({harness::Table::fmt(std::uint64_t(rt)),
                     harness::Table::fmt(std::uint64_t(clients)),
                     harness::Table::fmt(point.reply_kops),
                     harness::Table::fmt(point.reply_ms, 3),
                     harness::Table::fmt(point.reply_stddev_ms, 3),
                     harness::Table::fmt(point.reject_kops, 2)});
    }
    bench::print_table(table);
    summaries.push_back(summary);
  }

  std::printf("summary:\n");
  for (const auto& s : summaries) {
    std::printf("  RT=%-3zu max throughput %.1f kreq/s, latency plateau %.2f ms\n", s.rt,
                s.max_kops, s.plateau_ms);
  }
  std::printf("shape checks:\n");
  std::printf(" - RT=20 caps throughput below RT=50 -> %s\n",
              summaries[0].max_kops < 0.92 * summaries[1].max_kops ? "OK" : "MISS");
  std::printf(" - RT=20 has the lowest latency plateau -> %s\n",
              summaries[0].plateau_ms < summaries[1].plateau_ms &&
                      summaries[0].plateau_ms < summaries[2].plateau_ms
                  ? "OK"
                  : "MISS");
  std::printf(" - RT=75 reaches the highest throughput -> %s\n",
              summaries[2].max_kops >= summaries[1].max_kops ? "OK" : "MISS");
  std::printf(" - identical low-load behavior across RT -> %s\n",
              std::abs(summaries[0].low_load_ms - summaries[2].low_load_ms) < 0.15 ? "OK"
                                                                                   : "MISS");
  return 0;
}
