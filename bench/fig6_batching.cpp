// Figure 6 batching sweep: the increasing-load experiment with ordered-log
// batching enabled (core::BatchPipeline batch_min / batch_flush_delay).
//
// Batching amortizes the per-instance agreement cost (one PROPOSE/COMMIT
// round carries batch_min requests instead of one), so the saturation
// throughput should rise with the batch size while the Figure 6 rejection
// shape — rejects appear once offered load crosses the reject threshold
// and grow with it — is preserved: the acceptance test runs before the
// batch pipeline and is untouched by it.
//
// Emits machine-readable JSON (default ./BENCH_batching.json, override with
// IDEM_BATCHING_JSON) so CI can assert the batch>=4 saturation win; see
// EXPERIMENTS.md.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_util.hpp"

using namespace idem;

namespace {

struct BatchSetting {
  std::size_t batch_min;
  Duration flush_delay;
};

struct SweepPoint {
  std::size_t clients = 0;
  bench::LoadPoint load;
};

struct SweepResult {
  BatchSetting setting;
  std::vector<SweepPoint> points;
  double saturation_kops = 0;  ///< max reply throughput across the sweep
};

}  // namespace

int main() {
  std::printf("=== Figure 6 + batching: load sweep at batch 1 / 4 / 16 ===\n");
  std::printf("(IDEM, YCSB update-heavy, closed loop; baseline 1x = 50 clients)\n\n");

  // Batch 1 is the legacy cut-immediately configuration; the batched
  // settings hold the cut for batch_min requests or 200 us, whichever
  // comes first, so low-load latency stays bounded.
  const std::vector<BatchSetting> settings = {
      {1, 0}, {4, 200 * kMicrosecond}, {16, 200 * kMicrosecond}};
  const std::vector<std::size_t> client_counts = {10, 25, 50, 100, 150, 200};

  harness::DriverConfig driver;
  driver.warmup = bench::warmup_duration();
  driver.measure = bench::measure_duration();

  std::vector<SweepResult> results;
  for (const BatchSetting& setting : settings) {
    harness::ClusterConfig base;
    base.protocol = harness::Protocol::Idem;
    base.reject_threshold = 50;
    base.batch_min = setting.batch_min;
    base.batch_flush_delay = setting.flush_delay;
    // batch_max must admit the target batch size.
    base.batch_max = std::max<std::size_t>(32, setting.batch_min);

    SweepResult result;
    result.setting = setting;
    harness::Table table({"batch", "clients", "throughput[kreq/s]", "latency[ms]", "p50[ms]",
                          "p99[ms]", "rejects[kreq/s]"});
    for (std::size_t clients : client_counts) {
      SweepPoint point;
      point.clients = clients;
      point.load = bench::run_load_point(base, clients, driver);
      result.saturation_kops = std::max(result.saturation_kops, point.load.reply_kops);
      table.add_row({harness::Table::fmt(std::uint64_t(setting.batch_min)),
                     harness::Table::fmt(std::uint64_t(clients)),
                     harness::Table::fmt(point.load.reply_kops),
                     harness::Table::fmt(point.load.reply_ms, 3),
                     harness::Table::fmt(point.load.reply_p50_ms, 3),
                     harness::Table::fmt(point.load.reply_p99_ms, 3),
                     harness::Table::fmt(point.load.reject_kops)});
      result.points.push_back(point);
    }
    bench::print_table(table);
    results.push_back(std::move(result));
  }

  const char* path = std::getenv("IDEM_BATCHING_JSON");
  if (path == nullptr || *path == '\0') path = "BENCH_batching.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"fig6_batching\",\n  \"protocol\": \"IDEM\",\n");
  std::fprintf(f, "  \"sweeps\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const SweepResult& r = results[i];
    std::fprintf(f,
                 "    {\n      \"batch_min\": %zu,\n      \"flush_delay_us\": %.0f,\n"
                 "      \"saturation_kops\": %.2f,\n      \"points\": [\n",
                 r.setting.batch_min, to_us(r.setting.flush_delay), r.saturation_kops);
    for (std::size_t j = 0; j < r.points.size(); ++j) {
      const SweepPoint& p = r.points[j];
      std::fprintf(f,
                   "        {\"clients\": %zu, \"reply_kops\": %.2f, \"reject_kops\": %.2f, "
                   "\"latency_ms\": %.3f, \"p50_ms\": %.3f, \"p99_ms\": %.3f}%s\n",
                   p.clients, p.load.reply_kops, p.load.reject_kops, p.load.reply_ms,
                   p.load.reply_p50_ms, p.load.reply_p99_ms,
                   j + 1 < r.points.size() ? "," : "");
    }
    std::fprintf(f, "      ]\n    }%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);

  // Shape checks (mirrored by tools/ci.sh against the JSON):
  //  - saturation throughput grows with the batch size;
  //  - rejection rate at 4x baseline stays substantial for every batch
  //    (the acceptance test, not the pipeline, sheds the overload).
  bool ok = true;
  const SweepResult& b1 = results.front();
  for (std::size_t i = 1; i < results.size(); ++i) {
    const SweepResult& r = results[i];
    std::printf("batch %2zu saturation: %.2f kreq/s (batch 1: %.2f) %s\n",
                r.setting.batch_min, r.saturation_kops, b1.saturation_kops,
                r.saturation_kops > b1.saturation_kops ? "[higher]" : "[NOT higher]");
    if (r.saturation_kops <= b1.saturation_kops) ok = false;
    const SweepPoint& overload = r.points.back();
    if (overload.load.reject_kops <= 0.0) {
      std::printf("batch %2zu: no rejects at %zu clients — Figure 6 shape lost\n",
                  r.setting.batch_min, overload.clients);
      ok = false;
    }
  }
  if (!ok) {
    std::printf("shape check FAILED\n");
    return 1;
  }
  std::printf("shape check passed\n");
  return 0;
}
