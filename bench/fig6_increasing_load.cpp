// Figure 6: performance comparison under increasing request load.
//
// Paper result: Paxos and BFT-SMaRt saturate and their latency escalates
// (>600% of normal) once offered load exceeds the maximum throughput.
// IDEM behaves identically to IDEM_noPR until the reject threshold is
// reached (~43k requests/s), then the latency *plateaus* (~1.3 ms) because
// collaborative overload prevention caps the number of active requests.
#include <cstdio>

#include "bench_util.hpp"

using namespace idem;

int main() {
  std::printf("=== Figure 6: performance under increasing load ===\n");
  std::printf("(YCSB update-heavy, closed loop; load = number of clients; baseline 1x = 50)\n\n");

  const std::vector<std::size_t> client_counts = {5, 10, 20, 30, 40, 50, 65, 80, 100, 150, 200};
  const std::vector<harness::Protocol> protocols = {
      harness::Protocol::Paxos, harness::Protocol::Smart, harness::Protocol::IdemNoPR,
      harness::Protocol::Idem};

  harness::DriverConfig driver;
  driver.warmup = bench::warmup_duration();
  driver.measure = bench::measure_duration();

  for (harness::Protocol protocol : protocols) {
    harness::ClusterConfig base;
    base.protocol = protocol;
    base.reject_threshold = 50;

    harness::Table table({"system", "clients", "throughput[kreq/s]", "latency[ms]",
                          "stddev[ms]", "p50[ms]", "p90[ms]", "p99[ms]", "p99.9[ms]",
                          "rejects[kreq/s]"});
    for (std::size_t clients : client_counts) {
      bench::LoadPoint point = bench::run_load_point(base, clients, driver);
      table.add_row({harness::protocol_name(protocol), harness::Table::fmt(std::uint64_t(clients)),
                     harness::Table::fmt(point.reply_kops), harness::Table::fmt(point.reply_ms, 3),
                     harness::Table::fmt(point.reply_stddev_ms, 3),
                     harness::Table::fmt(point.reply_p50_ms, 3),
                     harness::Table::fmt(point.reply_p90_ms, 3),
                     harness::Table::fmt(point.reply_p99_ms, 3),
                     harness::Table::fmt(point.reply_p999_ms, 3),
                     harness::Table::fmt(point.reject_kops)});
    }
    bench::print_table(table);
  }

  std::printf("shape checks (see EXPERIMENTS.md):\n"
              " - Paxos / BFT-SMaRt latency at 4x baseline >> 6x their low-load latency\n"
              " - IDEM latency plateaus near its saturation point\n"
              " - IDEM and IDEM_noPR match below the reject threshold\n");
  return 0;
}
