// Figure 7: reject behavior in IDEM under increasing load.
//
// Paper result: reject latency stays stable around 1.3-1.5 ms even at 8x
// the baseline client load — in the same range as a timely reply, so
// clients can switch to their fallback quickly. Because rejected clients
// back off (50-100 ms), the reject *rate* stays a small share of total
// throughput (<3% at moderate overload, ~10% at 8x).
#include <cstdio>

#include "bench_util.hpp"

using namespace idem;

int main() {
  std::printf("=== Figure 7: reject behavior in IDEM under increasing load ===\n");
  std::printf("(client-load factor 1x = 50 clients; optimistic clients, 5 ms wait)\n\n");

  harness::ClusterConfig base;
  base.protocol = harness::Protocol::Idem;
  base.reject_threshold = 50;

  harness::DriverConfig driver;
  driver.warmup = bench::warmup_duration();
  driver.measure = bench::measure_duration();

  harness::Table table({"load", "clients", "reply[kreq/s]", "latency[ms]", "reject[kreq/s]",
                        "rej-latency[ms]", "rej-stddev[ms]", "reject-share[%]"});
  double max_reject_ms = 0, min_reject_ms = 1e9;
  double share_at_8x = 0;
  for (double factor : {1.0, 2.0, 3.0, 4.0, 6.0, 8.0}) {
    std::size_t clients = static_cast<std::size_t>(50 * factor);
    bench::LoadPoint point = bench::run_load_point(base, clients, driver);
    double share = 100.0 * point.reject_kops / std::max(1e-9, point.reply_kops + point.reject_kops);
    if (factor >= 2 && point.reject_kops > 0.05) {
      max_reject_ms = std::max(max_reject_ms, point.reject_ms);
      min_reject_ms = std::min(min_reject_ms, point.reject_ms);
    }
    if (factor == 8.0) share_at_8x = share;
    char label[16];
    std::snprintf(label, sizeof(label), "%.0fx", factor);
    table.add_row({label, harness::Table::fmt(std::uint64_t(clients)),
                   harness::Table::fmt(point.reply_kops),
                   harness::Table::fmt(point.reply_ms, 3),
                   harness::Table::fmt(point.reject_kops, 2),
                   harness::Table::fmt(point.reject_ms, 3),
                   harness::Table::fmt(point.reject_stddev_ms, 3),
                   harness::Table::fmt(share, 1)});
  }
  bench::print_table(table);

  std::printf("shape checks:\n");
  std::printf(" - reject latency stable across overload (%.2f..%.2f ms) -> %s\n",
              min_reject_ms, max_reject_ms,
              (max_reject_ms - min_reject_ms) < 1.5 ? "OK" : "MISS");
  std::printf(" - rejects remain a small share of throughput at 8x (%.1f%%, paper ~10%%) -> %s\n",
              share_at_8x, share_at_8x < 25.0 ? "OK" : "MISS");
  return 0;
}
