// Figure 10: impact of replica crashes on IDEM.
//
// (a-c) Leader and follower crashes under normal load (50 clients) and
//       overload (100 clients), for IDEM and IDEM_noAQM (tail drop, no
//       prioritized groups). Paper results: the view change takes ~1.5 s
//       (mostly the timeout); afterwards IDEM runs stably with a slight
//       throughput decrease, while IDEM_noAQM becomes unstable because
//       the f+1 survivors accept diverging request subsets and constantly
//       wait out the 10 ms forward timeout. AQM's shared-PRF unanimity
//       avoids exactly that.
// (d)   Reject latency under crashes: IDEM vs Paxos_LBR in overload.
//       Paxos_LBR cannot reject at all for ~4 s after a leader crash;
//       IDEM keeps rejecting continuously.
#include <cstdio>

#include "bench_util.hpp"

using namespace idem;

namespace {

struct CrashRun {
  harness::RunMetrics metrics;
  Duration crash_at;
};

CrashRun run(harness::Protocol protocol, std::size_t clients, bool crash_leader,
             std::size_t reject_threshold = 50) {
  harness::ClusterConfig base;
  base.protocol = protocol;
  base.reject_threshold = reject_threshold;
  const Duration duration =
      std::max<Duration>(2 * bench::measure_duration() + 8 * kSecond, 16 * kSecond);
  const Duration crash_at = duration / 2;
  return {bench::run_crash_timeline(base, clients, duration, crash_at, crash_leader),
          crash_at};
}

/// Mean reply throughput/latency in [from, to).
struct Window {
  double kops = 0;
  double latency_ms = 0;
  double latency_spread = 0;  // max-min of per-bucket means, instability measure
};

Window summarize(const harness::RunMetrics& metrics, Time from, Time to) {
  auto rows = metrics.reply_series.rows();
  Duration window = metrics.reply_series.window();
  std::uint64_t count = 0;
  double lat_sum = 0;
  double mean_min = 1e18, mean_max = 0;
  std::uint64_t buckets = 0;
  for (const auto& row : rows) {
    if (row.window_start < from || row.window_start >= to) continue;
    count += row.count;
    lat_sum += row.value_sum;
    ++buckets;
    if (row.count > 0) {
      mean_min = std::min(mean_min, row.mean());
      mean_max = std::max(mean_max, row.mean());
    }
  }
  Window out;
  if (buckets == 0) return out;
  out.kops = count / to_sec(static_cast<Duration>(buckets) * window) / 1000.0;
  out.latency_ms = count ? lat_sum / count : 0;
  out.latency_spread = mean_max > mean_min ? mean_max - mean_min : 0;
  return out;
}

void crash_experiment(const char* title, harness::Protocol protocol, std::size_t clients,
                      bool crash_leader) {
  std::printf("--- %s ---\n", title);
  CrashRun r = run(protocol, clients, crash_leader);
  bench::print_timeline(r.metrics, kSecond, r.crash_at);

  Window before = summarize(r.metrics, kSecond, r.crash_at);
  Window after = summarize(r.metrics, r.crash_at + 3 * kSecond,
                           r.crash_at + 3 * kSecond + 5 * kSecond);
  std::printf("before crash: %.1f kreq/s @ %.2f ms | after recovery: %.1f kreq/s @ %.2f ms "
              "(latency instability %.2f ms)\n\n",
              before.kops, before.latency_ms, after.kops, after.latency_ms,
              after.latency_spread);
}

}  // namespace

int main() {
  std::printf("=== Figure 10a-c: replica crashes, IDEM vs IDEM_noAQM ===\n");
  std::printf("(crash mid-run; normal load = 50 clients, overload = 100 clients)\n\n");

  crash_experiment("IDEM, leader crash, normal load", harness::Protocol::Idem, 50, true);
  crash_experiment("IDEM, leader crash, overload", harness::Protocol::Idem, 100, true);
  crash_experiment("IDEM_noAQM, leader crash, overload", harness::Protocol::IdemNoAQM, 100,
                   true);
  crash_experiment("IDEM, follower crash, overload", harness::Protocol::Idem, 100, false);
  crash_experiment("IDEM_noAQM, follower crash, overload", harness::Protocol::IdemNoAQM, 100,
                   false);

  std::printf("=== Figure 10d: reject latency under crashes, IDEM vs Paxos_LBR ===\n\n");
  for (bool crash_leader : {true, false}) {
    for (harness::Protocol protocol :
         {harness::Protocol::Idem, harness::Protocol::PaxosLBR}) {
      std::size_t rt = 50;
      std::printf("--- %s, %s crash, overload (rejects only) ---\n",
                  harness::protocol_name(protocol), crash_leader ? "leader" : "follower");
      CrashRun r = run(protocol, 150, crash_leader, rt);

      // Reject timeline around the crash.
      auto rows = r.metrics.reject_series.rows();
      Duration window = r.metrics.reject_series.window();
      harness::Table table({"t[s]", "reject[req/s]", "rej-latency[ms]"});
      Time t_from = r.crash_at - 3 * kSecond;
      Time t_to = r.crash_at + 8 * kSecond;
      Duration bucket = kSecond;
      for (Time t0 = t_from; t0 < t_to; t0 += bucket) {
        std::uint64_t count = 0;
        double lat = 0;
        for (const auto& row : rows) {
          if (row.window_start >= t0 && row.window_start < t0 + bucket) {
            count += row.count;
            lat += row.value_sum;
          }
        }
        (void)window;
        table.add_row({harness::Table::fmt(to_sec(t0), 1),
                       harness::Table::fmt(count / to_sec(bucket), 0),
                       harness::Table::fmt(count ? lat / count : 0.0, 3)});
      }
      bench::print_table(table);
    }
  }

  std::printf("shape checks (see EXPERIMENTS.md):\n"
              " - IDEM: ~1.5 s service gap on leader crash, then stable operation\n"
              " - IDEM_noAQM: unstable latency after a crash (forward-timeout stalls)\n"
              " - Fig 10d: Paxos_LBR rejects stop for seconds on leader crash; IDEM"
              " rejects continuously\n");
  return 0;
}
