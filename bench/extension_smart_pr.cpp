// Extension experiment (beyond the paper): collaborative proactive
// rejection composed with a different consensus protocol.
//
// The paper argues (Section 4.2) that implementing overload prevention as
// a separate protocol phase makes it portable across consensus protocols.
// This bench validates the claim on the Mod-SMaRt-style baseline: SMaRt
// alone explodes past saturation; SMaRt+PR — identical agreement, IDEM's
// intake phase bolted on — plateaus like IDEM does.
#include <cstdio>

#include "bench_util.hpp"

using namespace idem;

int main() {
  std::printf("=== Extension: proactive rejection on a different consensus protocol ===\n");
  std::printf("(SMaRt agreement unchanged; IDEM's intake phase composed in front)\n\n");

  harness::DriverConfig driver;
  driver.warmup = bench::warmup_duration();
  driver.measure = bench::measure_duration();

  struct Row {
    std::size_t clients;
    bench::LoadPoint smart;
    bench::LoadPoint smart_pr;
  };
  std::vector<Row> rows;
  for (std::size_t clients : {10u, 25u, 50u, 100u, 200u}) {
    Row row;
    row.clients = clients;
    harness::ClusterConfig base;
    base.reject_threshold = 50;
    base.protocol = harness::Protocol::Smart;
    row.smart = bench::run_load_point(base, clients, driver);
    base.protocol = harness::Protocol::SmartPR;
    row.smart_pr = bench::run_load_point(base, clients, driver);
    rows.push_back(row);
  }

  harness::Table table({"clients", "SMaRt[kreq/s]", "SMaRt lat[ms]", "SMaRt+PR[kreq/s]",
                        "SMaRt+PR lat[ms]", "SMaRt+PR rejects[kreq/s]"});
  for (const Row& row : rows) {
    table.add_row({harness::Table::fmt(std::uint64_t(row.clients)),
                   harness::Table::fmt(row.smart.reply_kops),
                   harness::Table::fmt(row.smart.reply_ms, 3),
                   harness::Table::fmt(row.smart_pr.reply_kops),
                   harness::Table::fmt(row.smart_pr.reply_ms, 3),
                   harness::Table::fmt(row.smart_pr.reject_kops, 2)});
  }
  bench::print_table(table);

  const Row& overload = rows.back();
  const Row& low = rows.front();
  std::printf("shape checks:\n");
  std::printf(" - SMaRt explodes at 4x (%.1fx of low-load latency) -> %s\n",
              overload.smart.reply_ms / low.smart.reply_ms,
              overload.smart.reply_ms > 3 * low.smart.reply_ms ? "OK" : "MISS");
  std::printf(" - SMaRt+PR plateaus (%.2f ms at 4x, <2x of its knee) -> %s\n",
              overload.smart_pr.reply_ms,
              overload.smart_pr.reply_ms < 2 * rows[2].smart_pr.reply_ms ? "OK" : "MISS");
  std::printf(" - identical below saturation -> %s\n",
              std::abs(low.smart.reply_ms - low.smart_pr.reply_ms) < 0.2 ? "OK" : "MISS");
  return 0;
}
