// Figure 6, real mode: the increasing-load sweep of fig6_increasing_load
// run against an actual 3-replica TCP cluster (one event-loop thread per
// replica, loopback sockets, wall-clock time) instead of the simulator.
//
// Expected shape (EXPERIMENTS.md "Sim vs real"): median latency stays
// flat below saturation, and once the offered load crosses the reject
// threshold r the rejection rate engages instead of the latency
// exploding — the same qualitative plateau the simulated Figure 6 shows,
// at whatever absolute throughput this machine's loopback stack delivers.
//
// Emits machine-readable JSON (default ./BENCH_real.json, override with
// IDEM_REAL_JSON) so real-mode results can be compared across commits.
//
// Environment knobs: IDEM_BENCH_SECONDS (default 2), IDEM_BENCH_WARMUP
// (default 0.5), IDEM_REAL_RT (reject threshold, default 8),
// IDEM_REAL_CLIENTS (comma list overriding the sweep), IDEM_REAL_LIVE=1
// (run with live telemetry armed — windowed shards recording on the hot
// path plus the admin endpoint — to measure its overhead against a plain
// run). The measured and warm-up spans can also be set on the command
// line (--measure-seconds S, --warmup S), which wins over the environment.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "harness/table.hpp"
#include "real/cluster.hpp"
#include "real/load.hpp"

using namespace idem;

namespace {

double env_double(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::atof(value);
}

std::vector<std::size_t> client_sweep() {
  std::vector<std::size_t> counts;
  if (const char* list = std::getenv("IDEM_REAL_CLIENTS"); list != nullptr && *list != '\0') {
    std::string text = list;
    for (std::size_t start = 0; start < text.size();) {
      std::size_t comma = text.find(',', start);
      if (comma == std::string::npos) comma = text.size();
      counts.push_back(std::strtoul(text.substr(start, comma - start).c_str(), nullptr, 10));
      start = comma + 1;
    }
    return counts;
  }
  return {1, 2, 4, 8, 16, 32, 64};
}

struct RealPoint {
  std::size_t clients = 0;
  double reply_kops = 0;
  double reject_kops = 0;
  double p50_ms = 0;
  double p90_ms = 0;
  double p99_ms = 0;
  double mean_ms = 0;
  double reject_p99_ms = 0;  ///< reject-notification tail (0 when no rejects)
};

}  // namespace

int main(int argc, char** argv) {
  double warmup_sec = env_double("IDEM_BENCH_WARMUP", 0.5);
  double measure_sec = env_double("IDEM_BENCH_SECONDS", 2.0);
  for (int i = 1; i < argc; ++i) {
    auto value = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (!std::strcmp(argv[i], "--measure-seconds")) {
      if (const char* v = value()) measure_sec = std::atof(v);
    } else if (!std::strcmp(argv[i], "--warmup")) {
      if (const char* v = value()) warmup_sec = std::atof(v);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--measure-seconds S] [--warmup S]\n"
                   "(env: IDEM_BENCH_SECONDS, IDEM_BENCH_WARMUP, IDEM_REAL_RT,"
                   " IDEM_REAL_CLIENTS, IDEM_REAL_LIVE, IDEM_REAL_JSON)\n",
                   argv[0]);
      return 2;
    }
  }
  const auto warmup = static_cast<Duration>(warmup_sec * kSecond);
  const auto measure = static_cast<Duration>(measure_sec * kSecond);
  const auto reject_threshold =
      static_cast<std::size_t>(env_double("IDEM_REAL_RT", 8));
  const bool live = env_double("IDEM_REAL_LIVE", 0) != 0;
  const std::vector<std::size_t> client_counts = client_sweep();
  std::size_t max_clients = 0;
  for (std::size_t c : client_counts) max_clients = std::max(max_clients, c);

  std::printf("=== Figure 6 (real mode): IDEM over loopback TCP under increasing load ===\n");
  std::printf("(3 replicas, one event-loop thread each; closed-loop YCSB-A clients; r=%zu%s)\n\n",
              reject_threshold, live ? "; live telemetry on" : "");

  harness::Table table({"clients", "throughput[kreq/s]", "latency[ms]", "p50[ms]", "p90[ms]",
                        "p99[ms]", "rejects[kreq/s]", "reject p99[ms]"});
  std::vector<RealPoint> points;
  for (std::size_t clients : client_counts) {
    real::RealClusterConfig config;
    config.n = 3;
    config.f = 1;
    config.reject_threshold = reject_threshold;
    config.seed = 1 + clients;
    config.expected_clients = max_clients;
    config.preload = true;
    config.workload.record_count = 1000;
    config.live_metrics = live;
    config.admin = live;
    real::RealCluster cluster(config);
    cluster.start();

    real::LoadOptions load;
    load.clients = clients;
    load.warmup = warmup;
    load.duration = measure;
    load.seed = 1 + clients;
    load.workload = config.workload;
    load.replicas = cluster.replica_addresses();
    load.client = cluster.client_config();
    load.epoch = cluster.epoch();
    real::LoadStats stats = real::run_load(load);
    cluster.shutdown();

    RealPoint point;
    point.clients = clients;
    point.reply_kops = stats.reply_rate() / 1000.0;
    point.reject_kops = stats.reject_rate() / 1000.0;
    point.p50_ms = to_ms(stats.reply_latency.p50());
    point.p90_ms = to_ms(stats.reply_latency.p90());
    point.p99_ms = to_ms(stats.reply_latency.p99());
    point.mean_ms = stats.reply_latency.mean() / static_cast<double>(kMillisecond);
    if (stats.rejects > 0) point.reject_p99_ms = to_ms(stats.reject_latency.p99());
    points.push_back(point);

    table.add_row({harness::Table::fmt(std::uint64_t(clients)),
                   harness::Table::fmt(point.reply_kops), harness::Table::fmt(point.mean_ms, 3),
                   harness::Table::fmt(point.p50_ms, 3), harness::Table::fmt(point.p90_ms, 3),
                   harness::Table::fmt(point.p99_ms, 3),
                   harness::Table::fmt(point.reject_kops),
                   harness::Table::fmt(point.reject_p99_ms, 3)});
  }
  table.print();

  // Shape assertions — machine-independent (all ratios, no absolute
  // rates), so they hold on any host where the relative Figure 6 shape
  // survives. Three ways overload handling can rot, each caught here:
  // queueing delay leaking into latency (p50 blow-up), proactive
  // rejection never engaging past the knee, and the goodput collapse
  // (served throughput falling off a cliff once rejects start).
  bool shape_ok = true;
  auto check = [&shape_ok](bool ok, const char* what) {
    std::printf(" - %s %s\n", ok ? "ok  " : "FAIL", what);
    if (!ok) shape_ok = false;
  };
  double peak_kops = 0;
  double floor_p50 = points.front().p50_ms;
  double worst_p50 = 0;
  double min_over_kops = -1;
  bool rejects_past_knee = false;
  for (const RealPoint& p : points) {
    peak_kops = std::max(peak_kops, p.reply_kops);
    worst_p50 = std::max(worst_p50, p.p50_ms);
    if (p.clients > reject_threshold) {
      if (p.reject_kops > 0) rejects_past_knee = true;
      if (min_over_kops < 0 || p.reply_kops < min_over_kops) min_over_kops = p.reply_kops;
    }
  }
  std::printf("\nshape checks (r = %zu):\n", reject_threshold);
  check(worst_p50 <= 5.0 * floor_p50,
        "p50 stays flat through overload (worst <= 5x the 1-client floor)");
  if (min_over_kops >= 0) {
    check(rejects_past_knee, "rejections engage once concurrent clients exceed r");
    check(min_over_kops >= 0.5 * peak_kops,
          "goodput holds past the knee (every overloaded point >= 50% of peak)");
  }
  if (!shape_ok) {
    std::fprintf(stderr, "fig6_real: shape check failed\n");
    return 1;
  }

  const char* path = std::getenv("IDEM_REAL_JSON");
  if (path == nullptr || *path == '\0') path = "BENCH_real.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"fig6_real\",\n"
               "  \"n\": 3,\n"
               "  \"reject_threshold\": %zu,\n"
               "  \"measure_seconds\": %.2f,\n"
               "  \"points\": [\n",
               reject_threshold, to_sec(measure));
  for (std::size_t i = 0; i < points.size(); ++i) {
    const RealPoint& p = points[i];
    std::fprintf(f,
                 "    {\"clients\": %zu, \"reply_kops\": %.3f, \"reject_kops\": %.3f,"
                 " \"mean_ms\": %.4f, \"p50_ms\": %.4f, \"p90_ms\": %.4f, \"p99_ms\": %.4f,"
                 " \"reject_p99_ms\": %.4f}%s\n",
                 p.clients, p.reply_kops, p.reject_kops, p.mean_ms, p.p50_ms, p.p90_ms,
                 p.p99_ms, p.reject_p99_ms, i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
  return 0;
}
