// Ablations for IDEM's design choices (beyond the paper's figures):
//
//   A. Forward timeout (Section 5.2 "delayed forwarding"): how the delay
//      before relaying accepted requests trades forwarding traffic
//      against the latency of divergently-accepted requests.
//   B. Rejected-request cache (Section 5.2): disabling the cache forces
//      FETCH round trips / forwards for every divergent acceptance.
//   C. REQUIRE aggregation: flushing accepted ids to the leader per
//      request vs. micro-batched.
//   D. PROPOSE batching: agreement batch size vs. throughput.
//   E. AQM time slice: fairness across clients (per-client success-share
//      spread) as the prioritization rotation slows down.
//
// Each section prints a table plus the metric the design choice targets.
#include <cstdio>

#include "bench_util.hpp"

using namespace idem;

namespace {

struct AblationResult {
  bench::LoadPoint point;
  std::uint64_t forwards = 0;
  std::uint64_t fetches = 0;
  std::uint64_t replica_bytes = 0;
};

AblationResult run_one(harness::ClusterConfig config, std::size_t clients,
                       harness::DriverConfig driver) {
  config.clients = clients;
  harness::Cluster cluster(config);
  harness::ClosedLoopDriver loop(cluster, driver);
  harness::RunMetrics metrics = loop.run();

  AblationResult result;
  result.point.clients = clients;
  result.point.reply_kops = metrics.reply_throughput() / 1000.0;
  result.point.reject_kops = metrics.reject_throughput() / 1000.0;
  result.point.reply_ms = metrics.reply_latency_ms();
  result.point.reply_p99_ms = to_ms(metrics.reply_latency.p99());
  result.replica_bytes = metrics.replica_traffic.bytes;
  for (std::size_t i = 0; i < config.n; ++i) {
    if (auto* replica = cluster.idem_replica(i)) {
      result.forwards += replica->stats().forwards_sent;
      result.fetches += replica->stats().fetches_sent;
    }
  }
  return result;
}

}  // namespace

int main() {
  harness::DriverConfig driver;
  driver.warmup = bench::warmup_duration();
  driver.measure = bench::measure_duration();

  // -- A: forward timeout ------------------------------------------------
  std::printf("=== Ablation A: forward timeout (delayed forwarding, Section 5.2) ===\n");
  std::printf("(IDEM_noAQM at 2x overload: tail drop makes replicas accept diverging\n"
              " subsets, so divergent requests wait out the forward timeout)\n\n");
  {
    harness::Table table({"forward-timeout[ms]", "throughput[kreq/s]", "latency[ms]",
                          "p99[ms]", "forwards", "replica-MB"});
    for (Duration timeout : {kMillisecond, 5 * kMillisecond, 10 * kMillisecond,
                             50 * kMillisecond}) {
      harness::ClusterConfig config;
      config.protocol = harness::Protocol::IdemNoAQM;
      config.reject_threshold = 50;
      config.idem.forward_timeout = timeout;
      AblationResult r = run_one(config, 100, driver);
      table.add_row({harness::Table::fmt(to_ms(timeout), 0),
                     harness::Table::fmt(r.point.reply_kops),
                     harness::Table::fmt(r.point.reply_ms, 3),
                     harness::Table::fmt(r.point.reply_p99_ms, 3),
                     harness::Table::fmt(r.forwards),
                     harness::Table::fmt(static_cast<double>(r.replica_bytes) / 1e6, 1)});
    }
    bench::print_table(table);
    std::printf("expected: a too-short timeout floods the network with relays (and the\n"
                "extra traffic costs CPU and latency); very long timeouts leave divergent\n"
                "requests blocked. The paper's 10 ms sits on the flat part.\n\n");
  }

  // -- B: rejected-request cache ------------------------------------------
  std::printf("=== Ablation B: rejected-request cache (Section 5.2) ===\n\n");
  {
    harness::Table table({"cache-size", "throughput[kreq/s]", "latency[ms]", "p99[ms]",
                          "forwards", "fetches"});
    for (std::size_t cache : {std::size_t{0}, std::size_t{16}, std::size_t{1024}}) {
      harness::ClusterConfig config;
      config.protocol = harness::Protocol::Idem;
      config.reject_threshold = 50;
      config.idem.rejected_cache_size = cache;
      AblationResult r = run_one(config, 200, driver);
      table.add_row({harness::Table::fmt(std::uint64_t(cache)),
                     harness::Table::fmt(r.point.reply_kops),
                     harness::Table::fmt(r.point.reply_ms, 3),
                     harness::Table::fmt(r.point.reply_p99_ms, 3),
                     harness::Table::fmt(r.forwards), harness::Table::fmt(r.fetches)});
    }
    bench::print_table(table);
    std::printf("expected: without the cache, requests rejected here but accepted\n"
                "elsewhere need a forward/fetch before execution.\n\n");
  }

  // -- C: REQUIRE aggregation ----------------------------------------------
  std::printf("=== Ablation C: REQUIRE aggregation ===\n\n");
  {
    harness::Table table({"flush", "batch", "throughput[kreq/s]", "latency[ms]"});
    struct Setting {
      Duration interval;
      std::size_t batch;
      const char* label;
    };
    for (Setting s : {Setting{0, 1, "immediate"}, Setting{50 * kMicrosecond, 32, "50us/32"},
                      Setting{500 * kMicrosecond, 256, "500us/256"}}) {
      harness::ClusterConfig config;
      config.protocol = harness::Protocol::Idem;
      config.reject_threshold = 50;
      config.idem.require_flush_interval = s.interval;
      config.idem.require_batch_max = s.batch;
      AblationResult r = run_one(config, 50, driver);
      table.add_row({s.label, harness::Table::fmt(std::uint64_t(s.batch)),
                     harness::Table::fmt(r.point.reply_kops),
                     harness::Table::fmt(r.point.reply_ms, 3)});
    }
    bench::print_table(table);
    std::printf("expected: per-request REQUIREs burn leader CPU (lower max throughput);\n"
                "very coarse aggregation adds latency at low load.\n\n");
  }

  // -- D: PROPOSE batch size ------------------------------------------------
  std::printf("=== Ablation D: PROPOSE batch size ===\n\n");
  {
    harness::Table table({"batch_max", "throughput[kreq/s]", "latency[ms]"});
    for (std::size_t batch : {std::size_t{1}, std::size_t{8}, std::size_t{32},
                              std::size_t{128}}) {
      harness::ClusterConfig config;
      config.protocol = harness::Protocol::Idem;
      config.reject_threshold = 50;
      config.idem.batch_max = batch;
      AblationResult r = run_one(config, 50, driver);
      table.add_row({harness::Table::fmt(std::uint64_t(batch)),
                     harness::Table::fmt(r.point.reply_kops),
                     harness::Table::fmt(r.point.reply_ms, 3)});
    }
    bench::print_table(table);
  }

  // -- E: AQM time slice ------------------------------------------------
  std::printf("=== Ablation E: AQM time slice vs. client fairness ===\n\n");
  {
    harness::Table table({"time-slice[s]", "throughput[kreq/s]", "reject[kreq/s]",
                          "client success-share spread"});
    for (Duration slice : {500 * kMillisecond, 2 * kSecond, 8 * kSecond}) {
      harness::ClusterConfig config;
      config.protocol = harness::Protocol::Idem;
      config.reject_threshold = 50;
      config.idem.aqm_time_slice = slice;
      config.clients = 150;
      harness::Cluster cluster(config);

      // Count per-client successes directly.
      std::vector<std::uint64_t> successes(config.clients, 0);
      harness::DriverConfig fair_driver = driver;
      // Give every slice configuration the same number of full rotations:
      // 3 groups x slice x 2 rotations.
      fair_driver.measure = std::max<Duration>(driver.measure, 6 * slice);
      harness::ClosedLoopDriver loop(cluster, fair_driver);
      // The driver does not expose per-client stats; sample them from the
      // replicas' duplicate table after the run instead.
      harness::RunMetrics metrics = loop.run();
      for (std::size_t c = 0; c < config.clients; ++c) {
        if (auto last = cluster.idem_replica(0)->last_executed(ClientId{c})) {
          successes[c] = last->value;
        }
      }
      std::uint64_t lo = UINT64_MAX, hi = 0;
      for (auto s : successes) {
        lo = std::min(lo, s);
        hi = std::max(hi, s);
      }
      double spread = lo > 0 ? static_cast<double>(hi) / static_cast<double>(lo) : 0.0;
      table.add_row({harness::Table::fmt(to_sec(slice), 1),
                     harness::Table::fmt(metrics.reply_throughput() / 1000.0),
                     harness::Table::fmt(metrics.reject_throughput() / 1000.0, 2),
                     harness::Table::fmt(spread, 2)});
    }
    bench::print_table(table);
    std::printf("spread = max/min of per-client completed operations; close to 1 means\n"
                "the rotating prioritization shares capacity fairly (paper Section 5.1).\n");
  }
  return 0;
}
