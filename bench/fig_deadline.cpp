// Deadline-aware admission sweep: tail-drop vs AQM vs deadline-aware
// (+EDF) under a heavy-tailed (Pareto) service-cost workload.
//
// Every operation carries a latency budget (request_deadline +/- jitter).
// The policies differ only in what a replica does with that information:
//
//   tail-drop       ignores budgets; accepts until r_now = r.
//   AQM             ignores budgets; the paper's prioritized AQM.
//   deadline-aware  core::DeadlineAware — an online queue-wait estimator
//                   (windowed service-time quantile x depth) rejects
//                   budgets it cannot meet (RejectReason::
//                   DeadlineUnmeetable) — plus the EDF service discipline,
//                   so admitted requests drain earliest-due-first.
//
// A rejected operation is the admission policy doing its job: the client
// backs off and retries, having spent one RTT. A reply past its budget is
// the failure mode — the system burned a full execution on work the
// caller could no longer use. Under >= 2x overload with Pareto tails the
// deadline-aware stack should beat both baselines on p99.9 reply latency
// AND deadline-miss rate; that is the shape this benchmark asserts.
//
// Emits machine-readable JSON (default ./BENCH_deadline.json, override
// with IDEM_DEADLINE_JSON) so CI can gate on the win; see EXPERIMENTS.md.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "idem/acceptance.hpp"
#include "sim/discipline.hpp"

using namespace idem;

namespace {

enum class Policy { TailDrop, Aqm, DeadlineAware };

const char* policy_name(Policy policy) {
  switch (policy) {
    case Policy::TailDrop: return "tail-drop";
    case Policy::Aqm: return "AQM";
    case Policy::DeadlineAware: return "deadline-aware";
  }
  return "?";
}

struct SweepPoint {
  std::size_t clients = 0;
  bench::LoadPoint load;
};

struct SweepResult {
  Policy policy = Policy::TailDrop;
  std::vector<SweepPoint> points;
};

}  // namespace

int main() {
  std::printf("=== Deadline-aware admission: tail-drop vs AQM vs deadline-aware+EDF ===\n");
  std::printf("(IDEM, YCSB update-heavy, Pareto service tails, 8 ms +/- 4 ms budgets;\n");
  std::printf(" baseline 1x = 50 clients)\n\n");

  const std::vector<Policy> policies = {Policy::TailDrop, Policy::Aqm,
                                        Policy::DeadlineAware};
  const std::vector<std::size_t> client_counts = {25, 50, 100, 200};

  harness::DriverConfig driver;
  driver.warmup = bench::warmup_duration();
  driver.measure = bench::measure_duration();

  std::vector<SweepResult> results;
  for (Policy policy : policies) {
    harness::ClusterConfig base;
    base.protocol = harness::Protocol::Idem;
    base.reject_threshold = 50;
    // Heavy-tailed per-op service costs: ~10% of costs draw a Pareto
    // multiplier (alpha 1.3 => infinite variance). Queueing amplifies
    // each burst into a latency spike that FIFO spreads across every
    // queued request behind it.
    base.idem.costs.tail = consensus::TailShape::Pareto;
    base.idem.costs.tail_prob = 0.1;
    base.idem.costs.pareto_alpha = 1.3;
    base.idem.costs.pareto_scale = 6.0;
    // Every operation carries a budget tight enough that overload queueing
    // actually threatens it.
    base.request_deadline = 8 * kMillisecond;
    base.deadline_jitter = 4 * kMillisecond;

    switch (policy) {
      case Policy::TailDrop:
        base.acceptance_factory = [](std::size_t) {
          return std::unique_ptr<core::AcceptanceTest>(new core::TailDrop());
        };
        break;
      case Policy::Aqm:
        // Protocol::Idem default: make_default_acceptance (AQM).
        break;
      case Policy::DeadlineAware: {
        core::DeadlineAware::Params params;
        params.quantile = 0.95;
        params.safety_margin = 1 * kMillisecond;
        base.acceptance_factory = [params](std::size_t) {
          return std::unique_ptr<core::AcceptanceTest>(new core::DeadlineAware(params));
        };
        base.discipline = sim::DisciplineKind::Edf;
        break;
      }
    }

    SweepResult result;
    result.policy = policy;
    harness::Table table({"policy", "clients", "throughput[kreq/s]", "rejects[kreq/s]",
                          "p99[ms]", "p99.9[ms]", "miss[%]"});
    for (std::size_t clients : client_counts) {
      SweepPoint point;
      point.clients = clients;
      point.load = bench::run_load_point(base, clients, driver);
      table.add_row({policy_name(policy), harness::Table::fmt(std::uint64_t(clients)),
                     harness::Table::fmt(point.load.reply_kops),
                     harness::Table::fmt(point.load.reject_kops),
                     harness::Table::fmt(point.load.reply_p99_ms, 3),
                     harness::Table::fmt(point.load.reply_p999_ms, 3),
                     harness::Table::fmt(point.load.deadline_miss_pct, 2)});
      result.points.push_back(point);
    }
    bench::print_table(table);
    results.push_back(std::move(result));
  }

  const char* path = std::getenv("IDEM_DEADLINE_JSON");
  if (path == nullptr || *path == '\0') path = "BENCH_deadline.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"fig_deadline\",\n  \"protocol\": \"IDEM\",\n");
  std::fprintf(f, "  \"deadline_ms\": 8, \"deadline_jitter_ms\": 4,\n");
  std::fprintf(f, "  \"sweeps\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const SweepResult& r = results[i];
    std::fprintf(f, "    {\n      \"policy\": \"%s\",\n      \"points\": [\n",
                 policy_name(r.policy));
    for (std::size_t j = 0; j < r.points.size(); ++j) {
      const SweepPoint& p = r.points[j];
      std::fprintf(f,
                   "        {\"clients\": %zu, \"reply_kops\": %.2f, \"reject_kops\": %.2f, "
                   "\"p99_ms\": %.3f, \"p999_ms\": %.3f, \"miss_pct\": %.3f}%s\n",
                   p.clients, p.load.reply_kops, p.load.reject_kops, p.load.reply_p99_ms,
                   p.load.reply_p999_ms, p.load.deadline_miss_pct,
                   j + 1 < r.points.size() ? "," : "");
    }
    std::fprintf(f, "      ]\n    }%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);

  // Shape checks (mirrored by tools/ci.sh via bench_compare on the JSON):
  // at >= 2x overload (100 and 200 clients) the deadline-aware stack must
  // beat BOTH budget-blind baselines on p99.9 reply latency and on the
  // deadline-miss rate, while still delivering useful goodput.
  bool ok = true;
  const SweepResult& da = results.back();
  for (std::size_t j = 2; j < client_counts.size(); ++j) {
    const SweepPoint& mine = da.points[j];
    for (std::size_t i = 0; i + 1 < results.size(); ++i) {
      const SweepPoint& other = results[i].points[j];
      const char* vs = policy_name(results[i].policy);
      std::printf("%zu clients vs %s: p99.9 %.2f/%.2f ms, miss %.2f/%.2f%% %s\n",
                  mine.clients, vs, mine.load.reply_p999_ms, other.load.reply_p999_ms,
                  mine.load.deadline_miss_pct, other.load.deadline_miss_pct,
                  mine.load.reply_p999_ms < other.load.reply_p999_ms &&
                          mine.load.deadline_miss_pct < other.load.deadline_miss_pct
                      ? "[better]"
                      : "[NOT better]");
      if (mine.load.reply_p999_ms >= other.load.reply_p999_ms) ok = false;
      if (mine.load.deadline_miss_pct >= other.load.deadline_miss_pct) ok = false;
    }
    if (mine.load.reply_kops <= 0.0) {
      std::printf("%zu clients: deadline-aware delivered no goodput\n", mine.clients);
      ok = false;
    }
  }
  if (!ok) {
    std::printf("shape check FAILED\n");
    return 1;
  }
  std::printf("shape check passed\n");
  return 0;
}
