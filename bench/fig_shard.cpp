// Shard scale-out benchmark: the sharded real-mode deployment (M
// independent replication groups on loopback TCP, client-side hash
// routing) measured three ways.
//
//   1. Scale sweep M in {1, 2, 4}: saturating closed-loop load across M
//      groups of 3 replicas each. On a machine with cores to spare the
//      4-group deployment must deliver >= 3x the single-group reply
//      throughput (groups share nothing); on a starved host (this repo's
//      CI container has one core) the sweep still runs and the
//      machine-independent invariants (every group serving, no redirect
//      drops) still gate, but the scaling ratio is reported, not asserted.
//   2. Hot-shard isolation: one generator hammers the group owning the
//      hot keys far past its reject threshold while a second, rate-limited
//      generator measures a sibling group. Per-group proactive rejection
//      must engage on the hot group only, and the sibling must hold >= 95%
//      of the goodput it delivers with the hot load absent.
//   3. Live split: half the hash space migrates to an idle group while
//      operations are in flight (freeze -> drain -> transfer -> flip);
//      the recorded history must stay linearizable across the epoch flip.
//
// Emits BENCH_shard.json (override with IDEM_SHARD_JSON); the CI perf
// gate compares the sweep's peak reply_kops against the committed
// baseline (bench_compare --peak reply_kops).
//
// Environment knobs: IDEM_BENCH_SECONDS (default 2), IDEM_BENCH_WARMUP
// (default 0.5), IDEM_SHARD_RT (hot-shard reject threshold, default 8),
// IDEM_SHARD_STRICT=1 (assert the >= 3x scaling ratio even on a starved
// host).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "check/linearizability.hpp"
#include "harness/table.hpp"
#include "shard/load.hpp"
#include "shard/real_cluster.hpp"

using namespace idem;

namespace {

double env_double(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::atof(value);
}

struct SweepPoint {
  std::size_t shards = 0;
  std::size_t clients = 0;
  double reply_kops = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  std::uint64_t redirects = 0;
};

bool g_ok = true;

void shape_check(bool ok, const char* what) {
  std::printf(" - %s %s\n", ok ? "ok  " : "FAIL", what);
  if (!ok) g_ok = false;
}

shard::ShardedRealConfig cluster_config(std::size_t groups, std::uint64_t seed) {
  shard::ShardedRealConfig config;
  config.groups = groups;
  config.base.n = 3;
  config.base.f = 1;
  config.base.seed = seed;
  config.base.preload = true;
  config.base.workload.record_count = 1000;
  return config;
}

shard::ShardedLoadOptions load_options(shard::ShardedRealCluster& cluster, std::size_t clients,
                                       Duration warmup, Duration measure, std::uint64_t seed) {
  shard::ShardedLoadOptions options;
  options.clients = clients;
  options.warmup = warmup;
  options.duration = measure;
  options.seed = seed;
  options.groups = cluster.group_addresses();
  options.map = cluster.map();
  options.router.map_source = [&cluster] { return cluster.map(); };
  options.workload = cluster.config().base.workload;
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  double warmup_sec = env_double("IDEM_BENCH_WARMUP", 0.5);
  double measure_sec = env_double("IDEM_BENCH_SECONDS", 2.0);
  for (int i = 1; i < argc; ++i) {
    auto value = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (!std::strcmp(argv[i], "--measure-seconds")) {
      if (const char* v = value()) measure_sec = std::atof(v);
    } else if (!std::strcmp(argv[i], "--warmup")) {
      if (const char* v = value()) warmup_sec = std::atof(v);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--measure-seconds S] [--warmup S]\n"
                   "(env: IDEM_BENCH_SECONDS, IDEM_BENCH_WARMUP, IDEM_SHARD_RT,"
                   " IDEM_SHARD_STRICT, IDEM_SHARD_JSON)\n",
                   argv[0]);
      return 2;
    }
  }
  const auto warmup = static_cast<Duration>(warmup_sec * kSecond);
  const auto measure = static_cast<Duration>(measure_sec * kSecond);

  // --- 1. Scale sweep ------------------------------------------------
  std::printf("=== Shard scale-out (real mode): M groups x 3 replicas over loopback TCP ===\n\n");
  harness::Table table({"shards", "clients", "throughput[kreq/s]", "p50[ms]", "p99[ms]",
                        "redirects"});
  std::vector<SweepPoint> points;
  for (std::size_t shards : {1u, 2u, 4u}) {
    shard::ShardedRealCluster cluster(cluster_config(shards, 100 + shards));
    cluster.start();
    shard::ShardedLoadOptions load =
        load_options(cluster, 4 * shards, warmup, measure, 100 + shards);
    const shard::ShardedLoadStats stats = shard::run_sharded_load(load);

    SweepPoint point;
    point.shards = shards;
    point.clients = load.clients;
    point.reply_kops = stats.load.reply_rate() / 1000.0;
    point.p50_ms = to_ms(stats.load.reply_latency.p50());
    point.p99_ms = to_ms(stats.load.reply_latency.p99());
    point.redirects = stats.router.redirects;
    points.push_back(point);
    table.add_row({harness::Table::fmt(std::uint64_t(shards)),
                   harness::Table::fmt(std::uint64_t(point.clients)),
                   harness::Table::fmt(point.reply_kops), harness::Table::fmt(point.p50_ms, 3),
                   harness::Table::fmt(point.p99_ms, 3),
                   harness::Table::fmt(point.redirects)});

    // Machine-independent invariants: every group serves its slice of a
    // fresh uniform map with no redirects and no hop-budget drops.
    if (stats.load.replies == 0) { g_ok = false; }
    if (stats.router.redirects != 0 || stats.router.redirect_drops != 0) { g_ok = false; }
    for (std::size_t g = 0; g < shards; ++g) {
      if (cluster.gate(g).stats().admitted == 0) { g_ok = false; }
    }
    cluster.shutdown();
  }
  table.print();

  const double scale_ratio = points.front().reply_kops > 0
                                 ? points.back().reply_kops / points.front().reply_kops
                                 : 0;
  // 4 groups x 3 replica threads + the load loop want ~13 runnable
  // threads; below that the groups time-slice one another and the ratio
  // measures the scheduler, not the sharding.
  const bool cores_for_scaling = std::thread::hardware_concurrency() >= 14;
  const bool strict = env_double("IDEM_SHARD_STRICT", 0) != 0;
  std::printf("\nshape checks:\n");
  shape_check(points.back().reply_kops > 0 && points.front().reply_kops > 0,
        "every sweep point served traffic from all groups (no redirects, no drops)");
  if (cores_for_scaling || strict) {
    std::printf("   (4-shard / 1-shard reply throughput: %.2fx)\n", scale_ratio);
    shape_check(scale_ratio >= 3.0, "4 groups deliver >= 3x single-group reply throughput");
  } else {
    std::printf(" - info 4-shard / 1-shard reply throughput: %.2fx (%u cores: groups"
                " time-slice, ratio not asserted)\n",
                scale_ratio, std::thread::hardware_concurrency());
  }

  // --- 2. Hot-shard isolation ----------------------------------------
  const auto hot_rt = static_cast<std::size_t>(env_double("IDEM_SHARD_RT", 8));
  std::printf("\n=== Hot-shard isolation (2 groups, hot group driven past r=%zu) ===\n", hot_rt);
  double baseline_kops = 0, sibling_kops = 0, hot_reply_kops = 0, hot_reject_kops = 0;
  std::uint64_t sibling_rejects = 0, hot_rejects = 0;
  {
    shard::ShardedRealConfig config = cluster_config(2, 300);
    config.base.reject_threshold = hot_rt;
    shard::ShardedRealCluster cluster(config);
    cluster.start();

    // Sibling load: 2 open-loop clients at a demand far below capacity,
    // restricted to group 1's keys. First alone (the baseline), then with
    // the hot generator hammering group 0 from a second thread.
    auto sibling = load_options(cluster, 2, warmup, measure, 301);
    sibling.client_id_base = 100;
    sibling.open_loop_rate = 150;
    sibling.restrict_group = 1;
    baseline_kops = shard::run_sharded_load(sibling).load.reply_rate() / 1000.0;

    shard::ShardedLoadStats hot_stats;
    std::thread hot([&] {
      auto hot_load = load_options(cluster, 24, warmup, measure, 302);
      hot_load.client_id_base = 1000;
      hot_load.restrict_group = 0;
      // Default 50-100ms rejection backoff (paper Section 7.1): overload
      // pressure comes from 24 clients > r, not from a tight retry spin —
      // rejected clients yield, so the sibling group keeps its CPU share
      // even on a starved host.
      hot_stats = shard::run_sharded_load(hot_load);
    });
    // Fresh client ids: the replicas' duplicate suppression remembers the
    // baseline generation's sequence numbers.
    sibling.client_id_base = 200;
    const shard::ShardedLoadStats contended = shard::run_sharded_load(sibling);
    hot.join();
    cluster.shutdown();

    sibling_kops = contended.load.reply_rate() / 1000.0;
    sibling_rejects = contended.load.rejects;
    hot_reply_kops = hot_stats.load.reply_rate() / 1000.0;
    hot_reject_kops = hot_stats.load.reject_rate() / 1000.0;
    hot_rejects = hot_stats.load.rejects;
  }
  const double sibling_ratio = baseline_kops > 0 ? sibling_kops / baseline_kops : 0;
  std::printf("sibling alone %.3f kreq/s | contended %.3f kreq/s (%.1f%%) |"
              " hot group %.3f kreq/s replies, %.3f kreq/s rejects\n",
              baseline_kops, sibling_kops, sibling_ratio * 100.0, hot_reply_kops,
              hot_reject_kops);
  shape_check(hot_rejects > 0, "proactive rejection engages on the overloaded group");
  shape_check(sibling_rejects == 0, "the sibling group rejects nothing");
  // Like the scale sweep: goodput isolation is a statement about
  // independent groups, which needs cores for the groups to be
  // independent on. Starved of CPU, the ratio measures the kernel
  // scheduler, not the rejection layer.
  const bool cores_for_isolation = std::thread::hardware_concurrency() >= 8;
  if (cores_for_isolation || strict) {
    shape_check(sibling_ratio >= 0.95, "sibling goodput holds >= 95% of its unloaded baseline");
  } else {
    std::printf(" - info sibling goodput %.1f%% of baseline (%u cores: groups time-slice,"
                " ratio not asserted)\n",
                sibling_ratio * 100.0, std::thread::hardware_concurrency());
  }

  // --- 3. Live split under load --------------------------------------
  std::printf("\n=== Live split (half the hash space migrates under load) ===\n");
  bool split_ok = false;
  bool linearizable = false;
  double split_ms = 0;
  std::uint64_t split_replies = 0, split_redirects = 0, split_epoch = 0;
  {
    shard::ShardedRealConfig config = cluster_config(2, 400);
    config.base.workload.record_count = 50;
    // The linearizability check models an initially-empty store.
    config.base.preload = false;
    shard::ShardedRealCluster cluster(config);
    cluster.publish(cluster.map().with_range_moved(0, 0, 0));  // all keys -> group 0
    cluster.start();

    auto load = load_options(cluster, 3, 0, measure, 401);
    load.map = cluster.map();
    load.workload.record_count = 50;
    load.record_history = true;
    load.backoff_min = kMillisecond;
    load.backoff_max = 5 * kMillisecond;

    shard::ShardedLoadStats stats;
    std::thread loader([&] { stats = shard::run_sharded_load(load); });
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    const auto split_start = std::chrono::steady_clock::now();
    split_ok = cluster.run_split(1ull << 63, 0, 0, 1, 5 * kSecond);
    split_ms = std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                         split_start)
                   .count();
    loader.join();
    split_epoch = cluster.map().epoch();
    split_replies = stats.load.replies;
    split_redirects = stats.router.redirects;
    const bool new_owner_serving = cluster.gate(1).stats().admitted > 0;
    cluster.shutdown();

    const auto result = check::check_linearizable(stats.history, check::KvModel{});
    linearizable = result.linearizable;
    std::printf("split %s in %.1f ms | epoch %llu | %llu replies, %llu redirects\n",
                split_ok ? "completed" : "FAILED", split_ms,
                static_cast<unsigned long long>(split_epoch),
                static_cast<unsigned long long>(split_replies),
                static_cast<unsigned long long>(split_redirects));
    shape_check(split_ok, "freeze -> drain -> transfer -> flip completed under load");
    shape_check(split_epoch == 3, "the published map advanced one epoch past the all-to-0 map");
    shape_check(new_owner_serving && split_redirects > 0,
          "post-flip traffic redirected to and served by the new owner");
    shape_check(linearizable, "history linearizable across the epoch flip");
  }

  if (!g_ok) {
    std::fprintf(stderr, "fig_shard: shape check failed\n");
    return 1;
  }

  const char* path = std::getenv("IDEM_SHARD_JSON");
  if (path == nullptr || *path == '\0') path = "BENCH_shard.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"fig_shard\",\n"
               "  \"n_per_group\": 3,\n"
               "  \"measure_seconds\": %.2f,\n"
               "  \"points\": [\n",
               to_sec(measure));
  for (std::size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    std::fprintf(f,
                 "    {\"shards\": %zu, \"clients\": %zu, \"reply_kops\": %.3f,"
                 " \"p50_ms\": %.4f, \"p99_ms\": %.4f}%s\n",
                 p.shards, p.clients, p.reply_kops, p.p50_ms, p.p99_ms,
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n"
               "  \"scale_ratio_4x\": %.3f,\n"
               "  \"hot_shard\": {\n"
               "    \"reject_threshold\": %zu,\n"
               "    \"baseline_sibling_kops\": %.3f,\n"
               "    \"contended_sibling_kops\": %.3f,\n"
               "    \"sibling_goodput_fraction\": %.4f,\n"
               "    \"hot_reply_kops\": %.3f,\n"
               "    \"hot_reject_kops\": %.3f\n"
               "  },\n"
               "  \"split\": {\"ok\": %d, \"duration_ms\": %.1f, \"epoch\": %llu,"
               " \"linearizable\": %d}\n"
               "}\n",
               scale_ratio, hot_rt, baseline_kops, sibling_kops, sibling_ratio, hot_reply_kops,
               hot_reject_kops, split_ok ? 1 : 0, split_ms,
               static_cast<unsigned long long>(split_epoch), linearizable ? 1 : 0);
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
  return 0;
}
