// bench-compare: diffs a freshly produced benchmark JSON against a
// committed baseline and fails on regressions beyond a tolerance.
//
//   bench_compare --baseline BENCH_real.json --fresh /tmp/fresh.json \
//                 [--tolerance 0.10] [--label real]
//
// Works on any of the repo's benchmark emissions (BENCH_real.json,
// BENCH_simcore.json, BENCH_batching.json): both documents are walked in
// parallel and every numeric leaf present in both is compared. Array
// entries are matched positionally, except arrays of objects carrying a
// "clients" field (the sweep shape), which are matched by that key so
// adding or reordering sweep points does not misalign the comparison.
//
// Which direction is "worse" is inferred from the metric name:
//   higher is better:  *kops*, *per_sec*, *rate*        (throughput)
//   lower is better:   p50_ms, mean_ms                  (stable latencies)
//   informational:     everything else — printed, never gated. This
//     includes tail percentiles (p90/p99: too noisy for a 10% gate on a
//     shared machine), reject_* (the reject rate tracks offered load, not
//     quality), and configuration echoes like "clients" or "n".
// Baselines below an absolute floor are also not gated: the relative
// error on a near-zero value is meaningless.
//
// --throughput-only demotes the lower-is-better latency metrics to
// informational too. Wall-clock benches on a shared machine inflate
// absolute latency by tens of percent whenever the host is contended,
// while throughput at saturation is far steadier — so the real-mode
// gate checks only throughput and leaves latency shape assertions to
// the bench binary itself.
//
// --gate-tails promotes p999_ms and miss_pct to lower-is-better. The
// deadline-admission sweep (BENCH_deadline.json) exists to pin a tail
// and a miss-rate win, so its gate must fail when either regresses —
// the sweep runs in the deterministic sim harness, where tail
// percentiles repeat run to run and the usual noise argument does not
// apply.
//
// --peak KEY compares a single number instead of every leaf: the maximum
// of the numeric leaves named KEY in each document (higher is better).
// Point-by-point diffs are too noisy for a tight tolerance — a sweep's
// individual points wander several percent run to run while the peak
// (the saturated plateau) is steady — so overhead guards like the
// live-telemetry <=2% check gate on the peak alone.
//
// Exit code 0 when no gated metric regressed, 1 on regression (or a
// metric missing from the fresh run), 2 on usage/IO/parse errors.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "json_util.hpp"

using idem::tooljson::JsonValue;

namespace {

enum class Direction { HigherIsBetter, LowerIsBetter, Informational };

bool contains(const std::string& haystack, const char* needle) {
  return haystack.find(needle) != std::string::npos;
}

bool g_throughput_only = false;
bool g_gate_tails = false;

Direction direction_of(const std::string& key) {
  // Reject-side metrics track offered load and client patience, not
  // server quality — a faster server rejects *less*. Never gate them.
  if (contains(key, "reject")) return Direction::Informational;
  if (g_gate_tails && (key == "p999_ms" || key == "miss_pct")) {
    return Direction::LowerIsBetter;
  }
  if (contains(key, "kops") || contains(key, "per_sec") || contains(key, "rate")) {
    return Direction::HigherIsBetter;
  }
  if (key == "p50_ms" || key == "mean_ms") {
    return g_throughput_only ? Direction::Informational : Direction::LowerIsBetter;
  }
  return Direction::Informational;
}

/// Relative values this small carry no meaningful relative error.
constexpr double kAbsoluteFloor = 0.05;

struct Report {
  double tolerance = 0.10;
  std::size_t compared = 0;  ///< gated metrics that were checked
  std::size_t failed = 0;
  std::size_t missing = 0;   ///< gated baseline metrics absent from fresh

  void leaf(const std::string& path, const std::string& key, double base, double fresh) {
    const Direction dir = direction_of(key);
    const bool gated = dir != Direction::Informational && std::fabs(base) >= kAbsoluteFloor;
    double delta = 0;
    if (std::fabs(base) > 0) delta = (fresh - base) / std::fabs(base);
    bool bad = false;
    if (gated) {
      ++compared;
      bad = dir == Direction::HigherIsBetter ? delta < -tolerance : delta > tolerance;
      if (bad) ++failed;
    }
    std::printf("  %-4s %-40s %12.4f -> %12.4f  (%+.1f%%)\n",
                bad ? "FAIL" : (gated ? "ok" : "info"), path.c_str(), base, fresh,
                delta * 100.0);
  }

  void absent(const std::string& path, const std::string& key) {
    if (direction_of(key) == Direction::Informational) return;
    ++missing;
    std::printf("  FAIL %-40s missing from fresh run\n", path.c_str());
  }
};

/// Maximum over every numeric leaf named `key`, at any depth.
double max_leaf(const JsonValue& value, const char* key, bool& found) {
  double best = 0;
  if (value.kind == JsonValue::Kind::Object) {
    for (const auto& [k, v] : value.object) {
      if (k == key && v.kind == JsonValue::Kind::Number) {
        if (!found || v.number > best) best = v.number;
        found = true;
      } else {
        bool sub_found = false;
        double sub = max_leaf(v, key, sub_found);
        if (sub_found && (!found || sub > best)) best = sub;
        found = found || sub_found;
      }
    }
  } else if (value.kind == JsonValue::Kind::Array) {
    for (const JsonValue& entry : value.array) {
      bool sub_found = false;
      double sub = max_leaf(entry, key, sub_found);
      if (sub_found && (!found || sub > best)) best = sub;
      found = found || sub_found;
    }
  }
  return best;
}

std::string point_key(const JsonValue& entry) {
  if (entry.kind != JsonValue::Kind::Object) return {};
  const JsonValue* clients = entry.find("clients");
  if (clients == nullptr || clients->kind != JsonValue::Kind::Number) return {};
  return "clients=" + std::to_string(static_cast<long long>(clients->number));
}

void walk(const std::string& path, const std::string& key, const JsonValue& base,
          const JsonValue* fresh, Report& report) {
  if (base.kind == JsonValue::Kind::Number) {
    if (fresh == nullptr || fresh->kind != JsonValue::Kind::Number) {
      report.absent(path, key);
    } else {
      report.leaf(path, key, base.number, fresh->number);
    }
    return;
  }
  if (base.kind == JsonValue::Kind::Object) {
    for (const auto& [k, v] : base.object) {
      const JsonValue* twin =
          (fresh != nullptr && fresh->kind == JsonValue::Kind::Object) ? fresh->find(k.c_str())
                                                                       : nullptr;
      walk(path.empty() ? k : path + "." + k, k, v, twin, report);
    }
    return;
  }
  if (base.kind == JsonValue::Kind::Array) {
    for (std::size_t i = 0; i < base.array.size(); ++i) {
      const JsonValue& entry = base.array[i];
      const JsonValue* twin = nullptr;
      std::string label = point_key(entry);
      if (fresh != nullptr && fresh->kind == JsonValue::Kind::Array) {
        if (!label.empty()) {
          for (const JsonValue& candidate : fresh->array) {
            if (point_key(candidate) == label) { twin = &candidate; break; }
          }
        } else if (i < fresh->array.size()) {
          twin = &fresh->array[i];
          label = "[" + std::to_string(i) + "]";
        }
      }
      if (label.empty()) label = "[" + std::to_string(i) + "]";
      walk(path + "." + label, key, entry, twin, report);
    }
    return;
  }
  // Strings/bools/nulls (bench names, modes) are identification, not data.
}

}  // namespace

int main(int argc, char** argv) {
  const char* baseline_path = nullptr;
  const char* fresh_path = nullptr;
  const char* label = nullptr;
  const char* peak_key = nullptr;
  double tolerance = 0.10;
  for (int i = 1; i < argc; ++i) {
    auto value = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (!std::strcmp(argv[i], "--baseline")) {
      baseline_path = value();
    } else if (!std::strcmp(argv[i], "--fresh")) {
      fresh_path = value();
    } else if (!std::strcmp(argv[i], "--tolerance")) {
      if (const char* v = value()) tolerance = std::atof(v);
    } else if (!std::strcmp(argv[i], "--label")) {
      label = value();
    } else if (!std::strcmp(argv[i], "--throughput-only")) {
      g_throughput_only = true;
    } else if (!std::strcmp(argv[i], "--gate-tails")) {
      g_gate_tails = true;
    } else if (!std::strcmp(argv[i], "--peak")) {
      peak_key = value();
    } else {
      baseline_path = nullptr;
      break;
    }
  }
  if (baseline_path == nullptr || fresh_path == nullptr || tolerance <= 0) {
    std::fprintf(stderr,
                 "usage: %s --baseline FILE --fresh FILE [--tolerance T] [--label NAME]\n"
                 "       [--throughput-only] [--gate-tails] [--peak KEY]\n"
                 "fails (exit 1) when a throughput metric drops, or a gated latency\n"
                 "metric rises, by more than T (default 0.10) relative to baseline;\n"
                 "--throughput-only gates throughput metrics alone; --peak KEY gates\n"
                 "only the maximum of the numeric leaves named KEY (higher is better)\n",
                 argv[0]);
    return 2;
  }

  JsonValue baseline, fresh;
  std::string error;
  if (!idem::tooljson::parse_file(baseline_path, baseline, error)) {
    std::fprintf(stderr, "%s: %s: %s\n", argv[0], baseline_path, error.c_str());
    return 2;
  }
  if (!idem::tooljson::parse_file(fresh_path, fresh, error)) {
    std::fprintf(stderr, "%s: %s: %s\n", argv[0], fresh_path, error.c_str());
    return 2;
  }

  if (peak_key != nullptr) {
    bool base_found = false, fresh_found = false;
    double base_peak = max_leaf(baseline, peak_key, base_found);
    double fresh_peak = max_leaf(fresh, peak_key, fresh_found);
    if (!base_found || !fresh_found) {
      std::fprintf(stderr, "%s: no numeric leaf named \"%s\" in %s\n", argv[0], peak_key,
                   base_found ? fresh_path : baseline_path);
      return 2;
    }
    double delta = base_peak != 0 ? (fresh_peak - base_peak) / std::fabs(base_peak) : 0;
    bool bad = delta < -tolerance;
    std::printf("bench_compare%s%s: peak %s %.4f -> %.4f (%+.2f%%, tolerance %.1f%%)\n",
                label != nullptr ? " " : "", label != nullptr ? label : "", peak_key,
                base_peak, fresh_peak, delta * 100.0, tolerance * 100.0);
    std::printf(bad ? "REGRESSION: peak dropped beyond tolerance\n" : "PASS\n");
    return bad ? 1 : 0;
  }

  std::printf("bench_compare%s%s: %s vs %s (tolerance %.0f%%)\n", label != nullptr ? " " : "",
              label != nullptr ? label : "", baseline_path, fresh_path, tolerance * 100.0);
  Report report;
  report.tolerance = tolerance;
  walk("", "", baseline, &fresh, report);

  if (report.failed > 0 || report.missing > 0) {
    std::printf("REGRESSION: %zu of %zu gated metrics beyond -%.0f%%, %zu missing\n",
                report.failed, report.compared, tolerance * 100.0, report.missing);
    return 1;
  }
  std::printf("PASS: %zu gated metrics within %.0f%% of baseline\n", report.compared,
              tolerance * 100.0);
  return 0;
}
